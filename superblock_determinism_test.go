package kahrisma_test

import (
	"context"
	"testing"

	kahrisma "repro"
	"repro/internal/prof"
	"repro/internal/workloads"
)

// TestSuperblockDeterminismMatrix is the determinism gate of the
// superblock trace executor (docs/interp.md): every workload of the
// paper's evaluation, on every processor instance plus a mixed-ISA
// build, runs once through superblock traces and once through the
// stepwise interpreter. Any difference in cycles, output, instruction
// counts, or the full microarchitectural profile fails the gate.
// CI runs this as its own `determinism` job.
func TestSuperblockDeterminismMatrix(t *testing.T) {
	sys := newSys(t)
	isas := sys.ISAs()
	apps := workloads.All()
	if testing.Short() {
		isas = isas[:2]
		apps = apps[:2]
	}

	var onProfiles, offProfiles []*kahrisma.Profile
	runBoth := func(t *testing.T, exe *kahrisma.Executable, expected string) {
		t.Helper()
		opts := []kahrisma.Option{
			kahrisma.WithModels("ILP", "DOE"), kahrisma.WithProfiling(),
		}
		on, err := exe.Run(context.Background(), opts...)
		if err != nil {
			t.Fatalf("superblock run: %v", err)
		}
		off, err := exe.Run(context.Background(), append(opts, kahrisma.WithoutSuperblocks())...)
		if err != nil {
			t.Fatalf("stepwise run: %v", err)
		}
		if on.Instructions != off.Instructions || on.Operations != off.Operations {
			t.Errorf("instruction counts diverge: %d/%d vs %d/%d",
				on.Instructions, on.Operations, off.Instructions, off.Operations)
		}
		if on.Output != off.Output || on.ExitCode != off.ExitCode {
			t.Errorf("output/exit diverge: %q/%d vs %q/%d",
				on.Output, on.ExitCode, off.Output, off.ExitCode)
		}
		if expected != "" && on.Output != expected {
			t.Errorf("output does not match the reference implementation")
		}
		for _, m := range []string{"ILP", "DOE"} {
			if on.Cycles[m] != off.Cycles[m] {
				t.Errorf("%s cycles diverge: %d vs %d", m, on.Cycles[m], off.Cycles[m])
			}
		}
		if on.Profile == nil || off.Profile == nil {
			t.Fatal("profiled run returned no profile")
		}
		if err := prof.Equal(on.Profile, off.Profile); err != nil {
			t.Errorf("profiles diverge: %v", err)
		}
		onProfiles = append(onProfiles, on.Profile)
		offProfiles = append(offProfiles, off.Profile)
	}

	for _, w := range apps {
		files := map[string]string{}
		for _, s := range w.Sources {
			files[s.Name] = s.Text
		}
		for _, isaName := range isas {
			t.Run(w.Name+"/"+isaName, func(t *testing.T) {
				exe, err := sys.BuildC(isaName, files)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				runBoth(t, exe, w.Expected)
			})
		}
	}

	// A mixed-ISA executable adds run-time ISA switches — the trace
	// boundary superblocks must never chain across.
	t.Run("mixed/RISC+VLIW4", func(t *testing.T) {
		exe, err := sys.BuildCMixed("RISC", map[string]string{"work": "VLIW4"},
			map[string]string{"p.c": facadeProg})
		if err != nil {
			t.Fatalf("mixed build: %v", err)
		}
		runBoth(t, exe, "")
	})

	// The merged aggregates across the whole matrix agree too — the
	// shape CI publishes and operators compare across runs.
	if len(onProfiles) > 0 {
		if err := prof.Equal(kahrisma.MergeProfiles(onProfiles...),
			kahrisma.MergeProfiles(offProfiles...)); err != nil {
			t.Errorf("merged matrix profiles diverge: %v", err)
		}
	}
}
