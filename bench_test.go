// Benchmarks regenerating the paper's evaluation (Sec. VII):
//
//	BenchmarkTable1/*  — simulator throughput (MIPS) per configuration
//	                     and per cycle model (Table I rows)
//	BenchmarkFigure4/* — operations/cycle of every application on every
//	                     processor instance plus the theoretical ILP
//	BenchmarkTable2/*  — heuristic DOE vs cycle-accurate RTL on DCT
//	BenchmarkAblation/* — design-choice ablations called out in DESIGN.md
//
// Absolute MIPS values are host-dependent; the custom metrics (mips,
// cycles, opc, errpct) carry the reproduced quantities. Run with:
//
//	go test -bench=. -benchmem
package kahrisma_test

import (
	"context"
	"io"
	"runtime"
	"testing"

	kahrisma "repro"
	"repro/internal/cc"
	"repro/internal/cycle"
	"repro/internal/driver"
	"repro/internal/mem"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/targetgen"
	"repro/internal/workloads"
)

// buildProg compiles a workload once (outside the timed region).
func buildProg(b *testing.B, w *workloads.Workload, isaName string) *sim.Program {
	b.Helper()
	m, err := targetgen.Kahrisma()
	if err != nil {
		b.Fatal(err)
	}
	p, err := driver.Load(m, isaName, w.Sources...)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// runOnce executes the program with the given options and observers.
func runOnce(b *testing.B, p *sim.Program, opts sim.Options, obs ...sim.Observer) *sim.CPU {
	b.Helper()
	m := targetgen.MustKahrisma()
	opts.Stdout = io.Discard
	if opts.MaxInstructions == 0 {
		opts.MaxInstructions = 2_000_000_000
	}
	c, err := sim.New(m, p, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range obs {
		c.Attach(o)
	}
	if _, err := c.Run(); err != nil {
		b.Fatal(err)
	}
	return c
}

// reportMIPS converts the benchmark timing into the paper's MIPS metric.
func reportMIPS(b *testing.B, instructions uint64) {
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(uint64(b.N)*instructions)
	b.ReportMetric(1e3/perOp, "mips")
	b.ReportMetric(perOp, "ns/instr")
}

// BenchmarkTable1 reproduces the simulator-performance rows of Table I
// on the JPEG encoder compiled for the RISC instance.
func BenchmarkTable1(b *testing.B) {
	cjpeg := workloads.CJpeg()
	prog := buildProg(b, cjpeg, "RISC")
	var instructions uint64

	b.Run("NoDecodeCache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := runOnce(b, prog, sim.Options{})
			instructions = c.Stats.Instructions
		}
		reportMIPS(b, instructions)
	})
	b.Run("DecodeCache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := runOnce(b, prog, sim.Options{DecodeCache: true})
			instructions = c.Stats.Instructions
		}
		reportMIPS(b, instructions)
	})
	b.Run("DecodeCachePrediction", func(b *testing.B) {
		// The paper's configuration of Table 1: decode cache plus
		// next-instruction prediction, stepwise dispatch (superblock
		// traces off).
		var stats sim.Stats
		for i := 0; i < b.N; i++ {
			c := runOnce(b, prog, sim.Options{DecodeCache: true, Prediction: true})
			stats = c.Stats
			instructions = stats.Instructions
		}
		reportMIPS(b, instructions)
		b.ReportMetric(100*(1-float64(stats.Detected)/float64(stats.Instructions)), "decode-avoided-%")
		b.ReportMetric(100*(1-float64(stats.CacheLookups)/float64(stats.Instructions)), "lookups-avoided-%")
	})
	b.Run("Superblocks", func(b *testing.B) {
		// Everything on (the default): prediction chains replayed as
		// superblock decode traces (docs/interp.md).
		var stats sim.Stats
		for i := 0; i < b.N; i++ {
			c := runOnce(b, prog, sim.DefaultOptions())
			stats = c.Stats
			instructions = stats.Instructions
		}
		reportMIPS(b, instructions)
		b.ReportMetric(100*float64(stats.PredHits)/float64(stats.Instructions), "chained-%")
	})
	b.Run("ILP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := runOnce(b, prog, sim.DefaultOptions(), cycle.NewILP(targetgen.MustKahrisma()))
			instructions = c.Stats.Instructions
		}
		reportMIPS(b, instructions)
	})
	b.Run("AIE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := runOnce(b, prog, sim.DefaultOptions(), cycle.NewAIE(mem.Paper()))
			instructions = c.Stats.Instructions
		}
		reportMIPS(b, instructions)
	})
	b.Run("DOE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := runOnce(b, prog, sim.DefaultOptions(),
				cycle.NewDOE(targetgen.MustKahrisma(), mem.Paper()))
			instructions = c.Stats.Instructions
		}
		reportMIPS(b, instructions)
	})
}

// BenchmarkFigure4 reproduces the ILP-vs-measured series: for every
// application, the theoretical ILP (RISC input) and the DOE-measured
// operations/cycle of every processor instance.
func BenchmarkFigure4(b *testing.B) {
	m := targetgen.MustKahrisma()
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name+"/ILP", func(b *testing.B) {
			prog := buildProg(b, w, "RISC")
			var ilp *cycle.ILP
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ilp = cycle.NewILP(m)
				runOnce(b, prog, sim.DefaultOptions(), ilp)
			}
			b.ReportMetric(cycle.OPC(ilp), "opc")
		})
		for _, isaName := range []string{"RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8"} {
			isaName := isaName
			b.Run(w.Name+"/"+isaName, func(b *testing.B) {
				prog := buildProg(b, w, isaName)
				var doe *cycle.DOE
				var h *mem.Hierarchy
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h = mem.Paper()
					doe = cycle.NewDOE(m, h)
					runOnce(b, prog, sim.DefaultOptions(), doe)
				}
				b.ReportMetric(cycle.OPC(doe), "opc")
				b.ReportMetric(float64(doe.Cycles()), "cycles")
				b.ReportMetric(100*h.L1.MissRate(), "l1miss-%")
			})
		}
	}
}

// BenchmarkTable2 reproduces the DOE-vs-RTL accuracy comparison on the
// DCT workload (perfect branch prediction on both sides).
func BenchmarkTable2(b *testing.B) {
	m := targetgen.MustKahrisma()
	dct := workloads.DCT()
	for _, isaName := range []string{"RISC", "VLIW2", "VLIW4", "VLIW8"} {
		isaName := isaName
		b.Run(isaName+"/DOE", func(b *testing.B) {
			prog := buildProg(b, dct, isaName)
			var doe *cycle.DOE
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				doe = cycle.NewDOE(m, mem.Paper())
				runOnce(b, prog, sim.DefaultOptions(), doe)
			}
			b.ReportMetric(float64(doe.Cycles()), "cycles")
		})
		b.Run(isaName+"/RTL", func(b *testing.B) {
			prog := buildProg(b, dct, isaName)
			var pipe *rtl.Pipeline
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := rtl.DefaultConfig()
				cfg.Hierarchy = mem.Paper()
				pipe = rtl.New(m, cfg)
				runOnce(b, prog, sim.DefaultOptions(), pipe)
				pipe.Drain()
			}
			b.ReportMetric(float64(pipe.Cycles()), "cycles")
		})
	}
}

// BenchmarkAblation measures the design choices DESIGN.md calls out.
func BenchmarkAblation(b *testing.B) {
	m := targetgen.MustKahrisma()
	dct := workloads.DCT()

	// The single L1 port: start-only claims (the evaluation's "one
	// access per cycle") versus the stricter Sec. VI-D behaviour where
	// completions reserve the port too.
	for _, claim := range []struct {
		name  string
		claim bool
	}{{"PortStartOnly", false}, {"PortClaimsCompletion", true}} {
		claim := claim
		b.Run("L1Port/"+claim.name, func(b *testing.B) {
			prog := buildProg(b, dct, "VLIW8")
			var doe *cycle.DOE
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := mem.Paper()
				h.Lim.ClaimCompletion = claim.claim
				doe = cycle.NewDOE(m, h)
				runOnce(b, prog, sim.DefaultOptions(), doe)
			}
			b.ReportMetric(float64(doe.Cycles()), "cycles")
		})
	}

	// RTL drift window: how strongly the hardware's bounded slot drift
	// (for precise interrupts) limits the dynamic-issue win.
	for _, drift := range []int{1, 4, 8, 32} {
		drift := drift
		b.Run("RTLDrift/"+itoa(drift), func(b *testing.B) {
			prog := buildProg(b, dct, "VLIW8")
			var pipe *rtl.Pipeline
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := rtl.DefaultConfig()
				cfg.Hierarchy = mem.Paper()
				cfg.MaxDriftInstrs = drift
				if drift > cfg.QueueDepth {
					cfg.QueueDepth = drift
				}
				pipe = rtl.New(m, cfg)
				runOnce(b, prog, sim.DefaultOptions(), pipe)
				pipe.Drain()
			}
			b.ReportMetric(float64(pipe.Cycles()), "cycles")
		})
	}

	// Compiler scheduling: memory operations packed per bundle. The
	// paper's single L1 port is a dynamic resource; the static cap
	// spreads accesses so the port is not hit in bursts.
	for _, cap := range []int{1, 2, 0} {
		cap := cap
		name := "unlimited"
		if cap > 0 {
			name = string(rune('0' + cap))
		}
		b.Run("SchedMemCap/"+name, func(b *testing.B) {
			cc.SetMemCap(cap)
			defer cc.SetMemCap(2)
			prog := buildProg(b, dct, "VLIW8")
			var doe *cycle.DOE
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				doe = cycle.NewDOE(m, mem.Paper())
				runOnce(b, prog, sim.DefaultOptions(), doe)
			}
			b.ReportMetric(float64(doe.Cycles()), "cycles")
		})
	}

	// Compiler optimization passes (copy propagation + dead code
	// elimination) on and off.
	for _, on := range []struct {
		name string
		on   bool
	}{{"On", true}, {"Off", false}} {
		on := on
		b.Run("CompilerOpt/"+on.name, func(b *testing.B) {
			cc.SetOptimize(on.on)
			defer cc.SetOptimize(true)
			prog := buildProg(b, dct, "VLIW8")
			var doe *cycle.DOE
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				doe = cycle.NewDOE(m, mem.Paper())
				runOnce(b, prog, sim.DefaultOptions(), doe)
			}
			b.ReportMetric(float64(doe.Cycles()), "cycles")
		})
	}

	// Branch misprediction model (the paper's future work): DOE with a
	// bimodal predictor and an 8-cycle refill penalty versus the
	// perfect-prediction setup of the evaluation.
	for _, penalty := range []uint64{0, 8} {
		penalty := penalty
		name := "Perfect"
		if penalty > 0 {
			name = "Bimodal8"
		}
		b.Run("BranchPrediction/"+name, func(b *testing.B) {
			prog := buildProg(b, workloads.Qsort(), "RISC")
			var doe *cycle.DOE
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				doe = cycle.NewDOE(m, mem.Paper())
				if penalty > 0 {
					doe.Pred = cycle.NewBranchPredictor(512)
					doe.MispredictPenalty = penalty
				}
				runOnce(b, prog, sim.DefaultOptions(), doe)
			}
			b.ReportMetric(float64(doe.Cycles()), "cycles")
			if doe.Pred != nil {
				b.ReportMetric(100*doe.Pred.MissRate(), "mispredict-%")
			}
		})
	}

	// Memory model cost in isolation (Table I's "Memory Model" row):
	// time the hierarchy against the recorded access stream of cjpeg.
	b.Run("MemoryModelReplay", func(b *testing.B) {
		prog := buildProg(b, workloads.CJpeg(), "RISC")
		type access struct {
			addr  uint32
			write bool
			slot  uint8
		}
		var stream []access
		rec := obsFunc(func(r *sim.ExecRecord) {
			for i := range r.D.Ops {
				if mm := r.Mem[i]; mm.Valid {
					stream = append(stream, access{mm.Addr, mm.Write, r.D.Ops[i].Slot})
				}
			}
		})
		c := runOnce(b, prog, sim.DefaultOptions(), rec)
		instr := c.Stats.Instructions
		h := mem.Paper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Reset()
			cur := uint64(0)
			for _, a := range stream {
				cur = h.Access(a.addr, a.write, int(a.slot), cur) - 2
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*instr), "ns/instr")
		b.ReportMetric(100*float64(len(stream))/float64(instr), "mem-instr-%")
	})
}

// BenchmarkPoolScaling measures the batch simulation engine: a fixed
// batch of qsort+DOE jobs pushed through kahrisma.Pool at increasing
// worker counts. The jobs/s metric should scale near-linearly up to
// the physical core count (the per-job work is identical; the shared
// Model/Program are read-only). Every job's DOE cycle count is checked
// against the serial baseline, so the benchmark doubles as a
// determinism regression.
func BenchmarkPoolScaling(b *testing.B) {
	sys, err := kahrisma.New()
	if err != nil {
		b.Fatal(err)
	}
	qsort := workloads.Qsort()
	files := map[string]string{}
	for _, s := range qsort.Sources {
		files[s.Name] = s.Text
	}
	exe, err := sys.BuildC("RISC", files)
	if err != nil {
		b.Fatal(err)
	}
	baseline, err := exe.Run(context.Background(), kahrisma.WithModels("DOE"))
	if err != nil {
		b.Fatal(err)
	}

	// All worker counts run even on small hosts (extra workers are
	// harmless there); the ≥2.5x step from 1 to 4 workers only shows on
	// ≥4 physical cores, so compare against GOMAXPROCS when reading the
	// numbers.
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	const jobsPerBatch = 16
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			pool := kahrisma.NewPool(workers)
			defer pool.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs := make([]*kahrisma.Job, jobsPerBatch)
				for j := range jobs {
					jobs[j] = pool.Submit(context.Background(), exe, kahrisma.WithModels("DOE"))
				}
				for j, job := range jobs {
					res, err := job.Wait()
					if err != nil {
						b.Fatal(err)
					}
					if res.Cycles["DOE"] != baseline.Cycles["DOE"] {
						b.Fatalf("job %d: DOE %d cycles, serial baseline %d — concurrent run not bit-identical",
							j, res.Cycles["DOE"], baseline.Cycles["DOE"])
					}
				}
			}
			b.StopTimer()
			jobs := float64(b.N * jobsPerBatch)
			b.ReportMetric(jobs/b.Elapsed().Seconds(), "jobs/s")
			st := pool.Stats()
			b.ReportMetric(float64(st.Instructions)/b.Elapsed().Seconds()/1e6, "agg-mips")
		})
	}
}

type obsFunc func(*sim.ExecRecord)

func (f obsFunc) Instruction(r *sim.ExecRecord) { f(r) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
