package adl_test

import (
	"strings"
	"testing"

	"repro/internal/adl"
)

func TestParseBuiltin(t *testing.T) {
	doc, err := adl.Parse(adl.Kahrisma)
	if err != nil {
		t.Fatalf("Parse(Kahrisma): %v", err)
	}
	if doc.Architecture != "KAHRISMA" {
		t.Errorf("architecture = %q", doc.Architecture)
	}
	if doc.Registers == nil || doc.Registers.Count != 32 {
		t.Fatalf("registers block wrong: %+v", doc.Registers)
	}
	if len(doc.Formats) != 10 {
		t.Errorf("formats = %d, want 10", len(doc.Formats))
	}
	if len(doc.ISAs) != 5 {
		t.Errorf("ISAs = %d, want 5", len(doc.ISAs))
	}
	// Spot-check an operation.
	var swt *adl.OperationDecl
	for _, op := range doc.Operations {
		if op.Name == "SWT" {
			swt = op
		}
	}
	if swt == nil {
		t.Fatal("SWT not parsed")
	}
	if swt.Format != "SYS" || swt.Class != "sys" || swt.Sem != "swt" {
		t.Errorf("SWT = %+v", swt)
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	doc, err := adl.Parse(adl.Kahrisma)
	if err != nil {
		t.Fatal(err)
	}
	text := doc.String()
	doc2, err := adl.Parse(text)
	if err != nil {
		t.Fatalf("re-parsing rendered document: %v\n%s", err, text)
	}
	if doc2.String() != text {
		t.Error("String() is not a fixed point under Parse")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unexpected token", "architecture X\nbogus Y {}", "unexpected token"},
		{"bad char", "architecture X\n@", "unexpected character"},
		{"missing brace", "format R field x 1:0 const", `expected "{"`},
		{"bad number", "isa A { id zz }", "expected number"},
		{"unknown op key", "operation X { frobnicate 3 }", "unknown operation key"},
		{"empty reads", "operation X { reads writes ip }", "empty reads list"},
		{"unknown field modifier", "format R { field x 31:0 imm weird }", "unknown field modifier"},
		{"unknown isa key", "isa A { colour 3 }", "unknown isa key"},
		{"unknown registers key", "registers G { size 3 }", "unknown registers key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := adl.Parse(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestCommentsAndHexNumbers(t *testing.T) {
	src := `
# leading comment
architecture T # trailing comment
isa A { id 0x10 issue 2 }
`
	doc, err := adl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ISAs[0].ID != 16 {
		t.Errorf("hex id = %d, want 16", doc.ISAs[0].ID)
	}
}

func TestNegativeNumbers(t *testing.T) {
	doc, err := adl.Parse("architecture T\nisa A { id -1 issue 1 }")
	if err != nil {
		t.Fatal(err)
	}
	if doc.ISAs[0].ID != -1 {
		t.Errorf("id = %d, want -1", doc.ISAs[0].ID)
	}
}
