package adl

// Kahrisma is the built-in ADL description of the KAHRISMA architecture
// used throughout this repository: the K-ISA operation set shared by the
// RISC (1-issue) and 2/4/6/8-issue VLIW instruction formats.
//
// Encodings follow the repository's K-ISA definition (DESIGN.md Sec. 5):
// 32-bit operation words; a VLIW-n instruction is n consecutive words.
const Kahrisma = `
architecture KAHRISMA

registers GPR {
  count 32
  width 32
  zero  r0
  alias zero = r0
  alias ra = r1
  alias sp = r2
  alias fp = r3
  alias a0 = r4
  alias a1 = r5
  alias a2 = r6
  alias a3 = r7
  alias t0 = r8
  alias t1 = r9
  alias t2 = r10
  alias t3 = r11
  alias t4 = r12
  alias t5 = r13
  alias t6 = r14
  alias t7 = r15
  alias s0 = r16
  alias s1 = r17
  alias s2 = r18
  alias s3 = r19
  alias s4 = r20
  alias s5 = r21
  alias s6 = r22
  alias s7 = r23
  alias s8 = r24
  alias s9 = r25
  alias s10 = r26
  alias s11 = r27
  alias t8 = r28
  alias t9 = r29
  alias t10 = r30
  alias t11 = r31
}

# Three-register arithmetic: opcode 0x00, func selects the operation.
format R {
  field opcode 31:26 const
  field rd     25:21 reg dst
  field rs1    20:16 reg src1
  field rs2    15:11 reg src2
  field func   10:0  const
}

# Register-immediate arithmetic and loads (sign-extended immediate).
format I {
  field opcode 31:26 const
  field rd     25:21 reg dst
  field rs1    20:16 reg src1
  field imm    15:0  imm imm signed
}

# Register-immediate logic and shifts (zero-extended immediate, so that
# LUI+ORI materializes arbitrary 32-bit constants and %lo relocations).
format IU {
  field opcode 31:26 const
  field rd     25:21 reg dst
  field rs1    20:16 reg src1
  field imm    15:0  imm imm
}

# Upper-immediate: rd = imm << 16.
format U {
  field opcode 31:26 const
  field rd     25:21 reg dst
  field pad    20:16 const
  field imm    15:0  imm imm
}

# Stores: mem[rs1+imm] = rs2.
format S {
  field opcode 31:26 const
  field rs2    25:21 reg src2
  field rs1    20:16 reg src1
  field imm    15:0  imm imm signed
}

# Conditional branches: target = instr_addr + imm*4.
format B {
  field opcode 31:26 const
  field rs1    25:21 reg src1
  field rs2    20:16 reg src2
  field imm    15:0  imm imm signed
}

# Absolute jumps: target = imm*4.
format J {
  field opcode 31:26 const
  field imm    25:0  imm imm
}

# Register-indirect jump and link: rd = return address, ip = rs1.
format JR {
  field opcode 31:26 const
  field rd     25:21 reg dst
  field rs1    20:16 reg src1
  field pad    15:0  const
}

# System operations carrying one unsigned immediate (SWT, SIMCALL).
format SYS {
  field opcode 31:26 const
  field imm    25:0  imm imm
}

# Zero-operand operations (NOP, HALT).
format N0 {
  field opcode 31:26 const
  field pad    25:0  const
}

operation ADD   { format R set opcode = 0x00 set func = 0  class alu latency 1 sem add }
operation SUB   { format R set opcode = 0x00 set func = 1  class alu latency 1 sem sub }
operation MUL   { format R set opcode = 0x00 set func = 2  class mul latency 3 sem mul }
operation MULHU { format R set opcode = 0x00 set func = 3  class mul latency 3 sem mulhu }
operation DIV   { format R set opcode = 0x00 set func = 4  class div latency 12 sem div }
operation DIVU  { format R set opcode = 0x00 set func = 5  class div latency 12 sem divu }
operation REM   { format R set opcode = 0x00 set func = 6  class div latency 12 sem rem }
operation REMU  { format R set opcode = 0x00 set func = 7  class div latency 12 sem remu }
operation AND   { format R set opcode = 0x00 set func = 8  class alu latency 1 sem and }
operation OR    { format R set opcode = 0x00 set func = 9  class alu latency 1 sem or }
operation XOR   { format R set opcode = 0x00 set func = 10 class alu latency 1 sem xor }
operation SLL   { format R set opcode = 0x00 set func = 11 class alu latency 1 sem sll }
operation SRL   { format R set opcode = 0x00 set func = 12 class alu latency 1 sem srl }
operation SRA   { format R set opcode = 0x00 set func = 13 class alu latency 1 sem sra }
operation SLT   { format R set opcode = 0x00 set func = 14 class alu latency 1 sem slt }
operation SLTU  { format R set opcode = 0x00 set func = 15 class alu latency 1 sem sltu }

operation ADDI  { format I  set opcode = 0x01 class alu latency 1 sem addi }
operation ANDI  { format IU set opcode = 0x02 class alu latency 1 sem andi }
operation ORI   { format IU set opcode = 0x03 class alu latency 1 sem ori }
operation XORI  { format IU set opcode = 0x04 class alu latency 1 sem xori }
operation SLTI  { format I  set opcode = 0x05 class alu latency 1 sem slti }
operation SLTIU { format I  set opcode = 0x06 class alu latency 1 sem sltiu }
operation SLLI  { format IU set opcode = 0x07 class alu latency 1 sem slli }
operation SRLI  { format IU set opcode = 0x08 class alu latency 1 sem srli }
operation SRAI  { format IU set opcode = 0x09 class alu latency 1 sem srai }
operation LUI   { format U set opcode = 0x0A set pad = 0 class alu latency 1 sem lui }

operation LW  { format I set opcode = 0x10 class load latency 1 sem lw }
operation LH  { format I set opcode = 0x11 class load latency 1 sem lh }
operation LHU { format I set opcode = 0x12 class load latency 1 sem lhu }
operation LB  { format I set opcode = 0x13 class load latency 1 sem lb }
operation LBU { format I set opcode = 0x14 class load latency 1 sem lbu }

operation SW { format S set opcode = 0x15 class store latency 1 sem sw }
operation SH { format S set opcode = 0x16 class store latency 1 sem sh }
operation SB { format S set opcode = 0x17 class store latency 1 sem sb }

operation BEQ  { format B set opcode = 0x18 class branch latency 1 sem beq  writes ip }
operation BNE  { format B set opcode = 0x19 class branch latency 1 sem bne  writes ip }
operation BLT  { format B set opcode = 0x1A class branch latency 1 sem blt  writes ip }
operation BGE  { format B set opcode = 0x1B class branch latency 1 sem bge  writes ip }
operation BLTU { format B set opcode = 0x1C class branch latency 1 sem bltu writes ip }
operation BGEU { format B set opcode = 0x1D class branch latency 1 sem bgeu writes ip }

operation J    { format J  set opcode = 0x20 class jump latency 1 sem j    writes ip }
operation JAL  { format J  set opcode = 0x21 class jump latency 1 sem jal  writes ip ra }
operation JALR { format JR set opcode = 0x22 set pad = 0 class jump latency 1 sem jalr writes ip }

# SWITCHTARGET: change the active ISA to the given identification number
# (Sec. V-D). Takes effect at the next instruction.
operation SWT { format SYS set opcode = 0x30 class sys latency 1 sem swt }

# SIMCALL: execute an emulated C standard library function natively in
# the simulator (Sec. V-E). The function id is the immediate; arguments
# follow the calling convention (a0..a3, stack), result in a0.
operation SIMCALL { format SYS set opcode = 0x31 class sys latency 1 sem simcall reads a0 a1 a2 a3 sp writes a0 }

operation HALT { format N0 set opcode = 0x3E set pad = 0 class sys latency 1 sem halt }
operation NOP  { format N0 set opcode = 0x3F set pad = 0 class nop latency 1 sem nop }

isa RISC  { id 0 issue 1 default }
isa VLIW2 { id 1 issue 2 }
isa VLIW4 { id 2 issue 4 }
isa VLIW6 { id 3 issue 6 }
isa VLIW8 { id 4 issue 8 }
`
