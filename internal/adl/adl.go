// Package adl implements the Architecture Description Language of the
// KAHRISMA software framework (Sec. IV of the paper). An ADL document
// describes, in parallel, every processor configuration the fabric can
// instantiate: the register file, the instruction formats (bit-field
// layouts), the operations with their encodings, latencies, implicit
// registers and simulation semantics, and the ISAs (RISC plus the
// n-issue VLIW instruction formats).
//
// The document is parsed into a plain syntax tree; package targetgen
// (the TargetGen utility of the paper) elaborates and validates it into
// an isa.Model usable by the compiler, assembler, linker and simulator.
package adl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Document is a parsed ADL description.
type Document struct {
	Architecture string
	Registers    *RegistersDecl
	Formats      []*FormatDecl
	Operations   []*OperationDecl
	ISAs         []*ISADecl
}

// RegistersDecl declares the architectural register file.
type RegistersDecl struct {
	Name    string
	Count   int
	Width   int
	Zero    string     // register name hard-wired to zero ("" if none)
	Aliases []RegAlias // declaration order preserved
	Line    int
}

// RegAlias maps an alias name to a canonical register name.
type RegAlias struct {
	Alias  string
	Target string
}

// FormatDecl declares an instruction format as an ordered field list.
type FormatDecl struct {
	Name   string
	Fields []FieldDecl
	Line   int
}

// FieldDecl is one bit field: `field <name> <hi>:<lo> <kind> [role|signed]...`.
type FieldDecl struct {
	Name   string
	Hi, Lo int
	Kind   string // const | reg | imm
	Role   string // dst | src1 | src2 | imm | ""
	Signed bool
	Line   int
}

// OperationDecl declares one operation.
type OperationDecl struct {
	Name    string
	Format  string
	Sets    []SetDecl // constant-field assignments (opcode, func, pads)
	Class   string
	Latency int
	Sem     string
	Reads   []string // implicit register reads (names or "ip")
	Writes  []string // implicit register writes
	Line    int
}

// SetDecl assigns a constant value to a named field.
type SetDecl struct {
	Field string
	Value uint32
}

// ISADecl declares an ISA: identification number, issue width, and
// whether it is the default ISA the simulator starts in.
type ISADecl struct {
	Name    string
	ID      int
	Issue   int
	Default bool
	Line    int
}

// ---------------------------------------------------------------------
// Lexer

type token struct {
	kind string // ident, number, punct, eof
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '#':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: "eof", line: lx.line}, nil

scan:
	c := lx.src[lx.pos]
	switch {
	case c == '{' || c == '}' || c == '=' || c == ':' || c == ',':
		lx.pos++
		return token{kind: "punct", text: string(c), line: lx.line}, nil
	case unicode.IsDigit(rune(c)) || (c == '-' && lx.pos+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos+1]))):
		start := lx.pos
		lx.pos++
		for lx.pos < len(lx.src) && (isAlnum(lx.src[lx.pos])) {
			lx.pos++
		}
		return token{kind: "number", text: lx.src[start:lx.pos], line: lx.line}, nil
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isAlnum(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: "ident", text: lx.src[start:lx.pos], line: lx.line}, nil
	}
	return token{}, fmt.Errorf("adl: line %d: unexpected character %q", lx.line, c)
}

func isAlnum(c byte) bool {
	return c == '_' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// ---------------------------------------------------------------------
// Parser

type parser struct {
	lx   *lexer
	tok  token
	peek *token
}

// Parse parses an ADL document from source text.
func Parse(src string) (*Document, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	doc := &Document{}
	for p.tok.kind != "eof" {
		switch {
		case p.isKeyword("architecture"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			doc.Architecture = name
		case p.isKeyword("registers"):
			d, err := p.parseRegisters()
			if err != nil {
				return nil, err
			}
			if doc.Registers != nil {
				return nil, fmt.Errorf("adl: line %d: duplicate registers block", d.Line)
			}
			doc.Registers = d
		case p.isKeyword("format"):
			d, err := p.parseFormat()
			if err != nil {
				return nil, err
			}
			doc.Formats = append(doc.Formats, d)
		case p.isKeyword("operation"):
			d, err := p.parseOperation()
			if err != nil {
				return nil, err
			}
			doc.Operations = append(doc.Operations, d)
		case p.isKeyword("isa"):
			d, err := p.parseISA()
			if err != nil {
				return nil, err
			}
			doc.ISAs = append(doc.ISAs, d)
		default:
			return nil, fmt.Errorf("adl: line %d: unexpected token %q", p.tok.line, p.tok.text)
		}
	}
	return doc, nil
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == "ident" && p.tok.text == kw
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != "ident" {
		return "", fmt.Errorf("adl: line %d: expected identifier, got %q", p.tok.line, p.tok.text)
	}
	s := p.tok.text
	return s, p.advance()
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != "punct" || p.tok.text != s {
		return fmt.Errorf("adl: line %d: expected %q, got %q", p.tok.line, s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectNumber() (int64, error) {
	if p.tok.kind != "number" {
		return 0, fmt.Errorf("adl: line %d: expected number, got %q", p.tok.line, p.tok.text)
	}
	v, err := strconv.ParseInt(p.tok.text, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("adl: line %d: bad number %q: %v", p.tok.line, p.tok.text, err)
	}
	return v, p.advance()
}

func (p *parser) parseRegisters() (*RegistersDecl, error) {
	d := &RegistersDecl{Line: p.tok.line}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Name = name
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.atClose() {
		kw, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "count":
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			d.Count = int(n)
		case "width":
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			d.Width = int(n)
		case "zero":
			z, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			d.Zero = z
		case "alias":
			a, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			d.Aliases = append(d.Aliases, RegAlias{Alias: a, Target: t})
		default:
			return nil, fmt.Errorf("adl: line %d: unknown registers key %q", p.tok.line, kw)
		}
	}
	return d, p.advance() // consume '}'
}

func (p *parser) atClose() bool { return p.tok.kind == "punct" && p.tok.text == "}" }

func (p *parser) parseFormat() (*FormatDecl, error) {
	d := &FormatDecl{Line: p.tok.line}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Name = name
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.atClose() {
		kw, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if kw != "field" {
			return nil, fmt.Errorf("adl: line %d: expected 'field' in format, got %q", p.tok.line, kw)
		}
		f := FieldDecl{Line: p.tok.line}
		if f.Name, err = p.expectIdent(); err != nil {
			return nil, err
		}
		hi, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		lo, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		f.Hi, f.Lo = int(hi), int(lo)
		if f.Kind, err = p.expectIdent(); err != nil {
			return nil, err
		}
		// optional role / signed modifiers until the next 'field' or '}'
		for p.tok.kind == "ident" && p.tok.text != "field" {
			switch p.tok.text {
			case "signed":
				f.Signed = true
			case "dst", "src1", "src2", "imm":
				f.Role = p.tok.text
			default:
				return nil, fmt.Errorf("adl: line %d: unknown field modifier %q", p.tok.line, p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		d.Fields = append(d.Fields, f)
	}
	return d, p.advance()
}

func (p *parser) parseOperation() (*OperationDecl, error) {
	d := &OperationDecl{Line: p.tok.line, Latency: 1}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Name = name
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.atClose() {
		kw, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "format":
			if d.Format, err = p.expectIdent(); err != nil {
				return nil, err
			}
		case "set":
			fieldName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			v, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			d.Sets = append(d.Sets, SetDecl{Field: fieldName, Value: uint32(v)})
		case "class":
			if d.Class, err = p.expectIdent(); err != nil {
				return nil, err
			}
		case "latency":
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			d.Latency = int(n)
		case "sem":
			if d.Sem, err = p.expectIdent(); err != nil {
				return nil, err
			}
		case "reads", "writes":
			var list []string
			for p.tok.kind == "ident" && !p.isOperationKey(p.tok.text) {
				list = append(list, p.tok.text)
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if len(list) == 0 {
				return nil, fmt.Errorf("adl: line %d: empty %s list", p.tok.line, kw)
			}
			if kw == "reads" {
				d.Reads = append(d.Reads, list...)
			} else {
				d.Writes = append(d.Writes, list...)
			}
		default:
			return nil, fmt.Errorf("adl: line %d: unknown operation key %q", p.tok.line, kw)
		}
	}
	return d, p.advance()
}

func (p *parser) isOperationKey(s string) bool {
	switch s {
	case "format", "set", "class", "latency", "sem", "reads", "writes":
		return true
	}
	return false
}

func (p *parser) parseISA() (*ISADecl, error) {
	d := &ISADecl{Line: p.tok.line, ID: -1}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Name = name
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.atClose() {
		kw, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "id":
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			d.ID = int(n)
		case "issue":
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			d.Issue = int(n)
		case "default":
			d.Default = true
		default:
			return nil, fmt.Errorf("adl: line %d: unknown isa key %q", p.tok.line, kw)
		}
	}
	return d, p.advance()
}

// String renders the document back to canonical ADL text (useful for
// tests and tooling).
func (d *Document) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "architecture %s\n", d.Architecture)
	if r := d.Registers; r != nil {
		fmt.Fprintf(&sb, "registers %s {\n  count %d\n  width %d\n", r.Name, r.Count, r.Width)
		if r.Zero != "" {
			fmt.Fprintf(&sb, "  zero %s\n", r.Zero)
		}
		for _, a := range r.Aliases {
			fmt.Fprintf(&sb, "  alias %s = %s\n", a.Alias, a.Target)
		}
		sb.WriteString("}\n")
	}
	for _, f := range d.Formats {
		fmt.Fprintf(&sb, "format %s {\n", f.Name)
		for _, fd := range f.Fields {
			fmt.Fprintf(&sb, "  field %s %d:%d %s", fd.Name, fd.Hi, fd.Lo, fd.Kind)
			if fd.Role != "" {
				fmt.Fprintf(&sb, " %s", fd.Role)
			}
			if fd.Signed {
				sb.WriteString(" signed")
			}
			sb.WriteString("\n")
		}
		sb.WriteString("}\n")
	}
	for _, o := range d.Operations {
		fmt.Fprintf(&sb, "operation %s {\n  format %s\n", o.Name, o.Format)
		for _, s := range o.Sets {
			fmt.Fprintf(&sb, "  set %s = 0x%x\n", s.Field, s.Value)
		}
		fmt.Fprintf(&sb, "  class %s\n  latency %d\n  sem %s\n", o.Class, o.Latency, o.Sem)
		if len(o.Reads) > 0 {
			fmt.Fprintf(&sb, "  reads %s\n", strings.Join(o.Reads, " "))
		}
		if len(o.Writes) > 0 {
			fmt.Fprintf(&sb, "  writes %s\n", strings.Join(o.Writes, " "))
		}
		sb.WriteString("}\n")
	}
	for _, a := range d.ISAs {
		fmt.Fprintf(&sb, "isa %s { id %d issue %d", a.Name, a.ID, a.Issue)
		if a.Default {
			sb.WriteString(" default")
		}
		sb.WriteString(" }\n")
	}
	return sb.String()
}
