package adl_test

import (
	"math/rand"
	"testing"

	"repro/internal/adl"
	"repro/internal/targetgen"
)

// Parse and Elaborate must never panic, whatever text they are fed:
// random mutations of the built-in description either parse (and maybe
// elaborate) or return an error.
func TestParseElaborateRobustAgainstMutations(t *testing.T) {
	base := []byte(adl.Kahrisma)
	rng := rand.New(rand.NewSource(13))
	chars := []byte("{}=:#abcdefghijklmnopqrstuvwxyz0123456789 \n")
	for trial := 0; trial < 1500; trial++ {
		b := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			b[rng.Intn(len(b))] = chars[rng.Intn(len(chars))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			doc, err := adl.Parse(string(b))
			if err != nil {
				return
			}
			_, _ = targetgen.Elaborate(doc)
		}()
	}
	// Pure noise too.
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(300)
		b := make([]byte, n)
		for i := range b {
			b[i] = chars[rng.Intn(len(chars))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("noise trial %d panicked: %v", trial, r)
				}
			}()
			if doc, err := adl.Parse(string(b)); err == nil {
				_, _ = targetgen.Elaborate(doc)
			}
		}()
	}
}
