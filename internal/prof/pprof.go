package prof

import (
	"compress/gzip"
	"io"
	"sort"
)

// WritePprof serializes the profile as a gzipped pprof profile.proto
// stream, the format `go tool pprof` renders — guest flamegraphs from a
// simulated KAHRISMA program. Each distinct guest PC becomes one
// location; samples carry three values: executed instructions at the
// PC, issued operations, and attributed cycles of the primary cycle
// model. Locations are symbolized through sym (function name, source
// file, line), so pprof's top/peek/list views group by guest function.
//
// The encoder is a minimal hand-rolled protobuf writer — the repo has
// no protobuf dependency, and the pprof message layout is small and
// stable (github.com/google/pprof/proto/profile.proto).
func WritePprof(w io.Writer, p *Profile, sym Symbolizer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(marshalPprof(p, sym)); err != nil {
		return err
	}
	return zw.Close()
}

// pprof field numbers (message Profile and friends).
const (
	profSampleType  = 1
	profSample      = 2
	profMapping     = 3
	profLocation    = 4
	profFunction    = 5
	profStringTable = 6
	profPeriodType  = 11
	profPeriod      = 12

	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2

	mapID          = 1
	mapMemoryStart = 2
	mapMemoryLimit = 3
	mapFilename    = 5

	locID      = 1
	locMapping = 2
	locAddress = 3
	locLine    = 4

	lineFunctionID = 1
	lineLine       = 2

	funcID         = 1
	funcName       = 2
	funcSystemName = 3
	funcFilename   = 4
)

func marshalPprof(p *Profile, sym Symbolizer) []byte {
	var out buffer
	strs := newStringTable()
	stride := effStride(p.SampleStride)

	// sample_type: {instructions, count}, {operations, count},
	// {cycles, cycles}. pprof's default display key is the last type.
	for _, st := range [][2]string{{"instructions", "count"}, {"operations", "count"}, {"cycles", "cycles"}} {
		var vt buffer
		vt.varintField(vtType, uint64(strs.index(st[0])))
		vt.varintField(vtUnit, uint64(strs.index(st[1])))
		out.bytesField(profSampleType, vt.b)
	}

	// One synthetic mapping covering the guest address space, so
	// location addresses resolve against something.
	var m buffer
	m.varintField(mapID, 1)
	m.varintField(mapMemoryStart, 0)
	m.varintField(mapMemoryLimit, 1<<32)
	m.varintField(mapFilename, uint64(strs.index("[kahrisma-guest]")))
	out.bytesField(profMapping, m.b)

	pcs := make([]uint32, 0, len(p.PCs))
	for pc := range p.PCs {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })

	// Functions, deduplicated by name+file.
	type funcKey struct{ name, file string }
	funcIDs := map[funcKey]uint64{}
	var funcs buffer
	internFunc := func(name, file string) uint64 {
		k := funcKey{name, file}
		if id, ok := funcIDs[k]; ok {
			return id
		}
		id := uint64(len(funcIDs) + 1)
		funcIDs[k] = id
		var f buffer
		f.varintField(funcID, id)
		f.varintField(funcName, uint64(strs.index(name)))
		f.varintField(funcSystemName, uint64(strs.index(name)))
		f.varintField(funcFilename, uint64(strs.index(file)))
		funcs.bytesField(profFunction, f.b)
		return id
	}

	// Locations (one per PC) and samples, in ascending PC order.
	var locs, samples buffer
	for i, pc := range pcs {
		id := uint64(i + 1)
		var l buffer
		l.varintField(locID, id)
		l.varintField(locMapping, 1)
		l.varintField(locAddress, uint64(pc))
		if sym != nil {
			if fn, file, line, ok := sym.Symbol(pc); ok {
				var ln buffer
				ln.varintField(lineFunctionID, internFunc(fn, file))
				ln.varintField(lineLine, uint64(int64(line)))
				l.bytesField(locLine, ln.b)
			}
		}
		locs.bytesField(profLocation, l.b)

		s := p.PCs[pc]
		var sm, ids, vals buffer
		ids.varint(id)
		// Sampled profiles store raw sample counts; scale to estimates
		// (cycles are fully attributed between samples — no scaling).
		vals.varint(s.Count * stride)
		vals.varint(s.Ops * stride)
		vals.varint(s.Cycles)
		sm.bytesField(sampleLocationID, ids.b) // packed repeated
		sm.bytesField(sampleValue, vals.b)     // packed repeated
		samples.bytesField(profSample, sm.b)
	}
	out.b = append(out.b, samples.b...)
	out.b = append(out.b, locs.b...)
	out.b = append(out.b, funcs.b...)

	// period_type {instructions, count}; the period is the sampling
	// stride — 1 for exact profiles, n when every n-th instruction was
	// sampled.
	var pt buffer
	pt.varintField(vtType, uint64(strs.index("instructions")))
	pt.varintField(vtUnit, uint64(strs.index("count")))
	out.bytesField(profPeriodType, pt.b)
	out.varintField(profPeriod, stride)

	// string_table last (indices were interned while building).
	var st buffer
	for _, s := range strs.list {
		st.bytesField(profStringTable, []byte(s))
	}
	return append(st.b, out.b...)
}

// buffer is a minimal protobuf wire-format writer.
type buffer struct{ b []byte }

func (b *buffer) varint(v uint64) {
	for v >= 0x80 {
		b.b = append(b.b, byte(v)|0x80)
		v >>= 7
	}
	b.b = append(b.b, byte(v))
}

// varintField writes a varint-typed (wire type 0) field.
func (b *buffer) varintField(field int, v uint64) {
	b.varint(uint64(field)<<3 | 0)
	b.varint(v)
}

// bytesField writes a length-delimited (wire type 2) field.
func (b *buffer) bytesField(field int, data []byte) {
	b.varint(uint64(field)<<3 | 2)
	b.varint(uint64(len(data)))
	b.b = append(b.b, data...)
}

// stringTable interns strings; index 0 is the mandatory empty string.
type stringTable struct {
	idx  map[string]int
	list []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]int{"": 0}, list: []string{""}}
}

func (t *stringTable) index(s string) int {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := len(t.list)
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}
