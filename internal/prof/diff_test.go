package prof

import (
	"encoding/json"
	"testing"
)

// fixtureProfile builds a small deterministic profile: count/cycles per
// PC plus a single-ISA attribution, mirroring what a merged batch
// profile looks like.
func fixtureProfile(isaName string, pcs map[uint32][2]uint64) *Profile {
	p := NewProfile()
	p.CycleModel = "DOE"
	s := &ISAStats{}
	p.ISAs[isaName] = s
	for pc, cc := range pcs {
		p.PCs[pc] = &PCStats{Count: cc[0], Ops: cc[0], Cycles: cc[1]}
		p.Instructions += cc[0]
		p.Operations += cc[0]
		p.Cycles += cc[1]
		s.Instructions += cc[0]
		s.Ops += cc[0]
		s.Cycles += cc[1]
	}
	return p
}

func TestDiffReportsDeltas(t *testing.T) {
	// A: two merged runs of the same shape (merge first, so the fixture
	// exercises the merged-profile path the batch engine produces).
	half := fixtureProfile("RISC", map[uint32][2]uint64{
		0x100: {10, 40},
		0x104: {5, 5},
	})
	a := Merge(half, half)
	b := fixtureProfile("VLIW4", map[uint32][2]uint64{
		0x100: {20, 30}, // fewer cycles than a at the same PC
		0x108: {7, 21},  // only in b
	})

	d := DiffReports(a.Report(nil, 0), b.Report(nil, 0), 0)
	if d.CycleModel != "DOE" {
		t.Fatalf("cycle model: %q", d.CycleModel)
	}
	if d.CyclesA != 90 || d.CyclesB != 51 || d.CyclesDelta != -39 {
		t.Fatalf("cycle totals: %d/%d delta %d", d.CyclesA, d.CyclesB, d.CyclesDelta)
	}
	if d.InstructionsDelta != int64(b.Instructions)-int64(a.Instructions) {
		t.Fatalf("instruction delta: %d", d.InstructionsDelta)
	}
	if d.TotalPCs != 3 || len(d.PCs) != 3 {
		t.Fatalf("PC union: total %d rows %d", d.TotalPCs, len(d.PCs))
	}
	// Ranked by |cycle delta|: 0x100 (-50), 0x108 (+21), 0x104 (-10).
	if d.PCs[0].PC != 0x100 || d.PCs[0].CyclesDelta != -50 || d.PCs[0].CountDelta != 0 {
		t.Fatalf("row 0: %+v", d.PCs[0])
	}
	if d.PCs[1].PC != 0x108 || d.PCs[1].CyclesDelta != 21 || d.PCs[1].CountA != 0 {
		t.Fatalf("row 1: %+v", d.PCs[1])
	}
	if d.PCs[2].PC != 0x104 || d.PCs[2].CyclesDelta != -10 || d.PCs[2].CyclesB != 0 {
		t.Fatalf("row 2: %+v", d.PCs[2])
	}
	// Per-ISA union is name-sorted and carries one-sided entries.
	if len(d.ISAs) != 2 || d.ISAs[0].ISA != "RISC" || d.ISAs[1].ISA != "VLIW4" {
		t.Fatalf("ISA union: %+v", d.ISAs)
	}
	if d.ISAs[0].CyclesDelta != -90 || d.ISAs[1].CyclesDelta != 51 {
		t.Fatalf("ISA deltas: %+v", d.ISAs)
	}
}

func TestDiffReportsTopNAndNil(t *testing.T) {
	b := fixtureProfile("RISC", map[uint32][2]uint64{
		0x100: {1, 10}, 0x104: {1, 20}, 0x108: {1, 30},
	})
	d := DiffReports(nil, b.Report(nil, 0), 2)
	if d.TotalPCs != 3 || len(d.PCs) != 2 {
		t.Fatalf("topN truncation: total %d rows %d", d.TotalPCs, len(d.PCs))
	}
	if d.PCs[0].PC != 0x108 || d.PCs[1].PC != 0x104 {
		t.Fatalf("truncated ranking: %+v", d.PCs)
	}
	if d.CyclesA != 0 || d.CyclesDelta != 60 {
		t.Fatalf("nil side totals: %+v", d)
	}
	if d.CycleModel != "DOE" {
		t.Fatalf("nil side model: %q", d.CycleModel)
	}
}

func TestDiffReportsDeterministicJSON(t *testing.T) {
	a := fixtureProfile("RISC", map[uint32][2]uint64{0x100: {3, 9}, 0x104: {2, 9}, 0x108: {1, 9}})
	b := fixtureProfile("VLIW2", map[uint32][2]uint64{0x100: {3, 6}, 0x10c: {4, 12}})
	j1, err := json.Marshal(DiffReports(a.Report(nil, 0), b.Report(nil, 0), 0))
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(DiffReports(a.Report(nil, 0), b.Report(nil, 0), 0))
	if string(j1) != string(j2) {
		t.Fatalf("diff JSON not deterministic:\n%s\n%s", j1, j2)
	}
}
