package prof_test

import (
	"testing"

	"repro/internal/ktest"
	"repro/internal/prof"
	"repro/internal/sim"
)

// The collector observes the dynamic instruction stream from inside
// superblock traces (the observed trace path) exactly as it does from
// the stepwise loop: identical per-PC attribution, memory-access
// counts, ISA breakdown and counter totals. This pins the tentpole
// claim that profiling stays exact — not approximately equal — under
// the trace executor.
func TestCollectorSuperblockEquivalence(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li a0, 0
	li t0, 0
	li t1, 3000
	la t3, buf
loop:
	addi t0, t0, 1
	swt VLIW4
	.isa VLIW4
	{ addi a0, a0, 1 ; addi t2, zero, 2 }
	swt RISC
	.isa RISC
	sw a0, 0(t3)
	lw a0, 0(t3)
	bne t0, t1, loop
	ret

	.data
buf:
	.word 0
`)
	collect := func(superblocks bool) (*prof.Profile, sim.Stats) {
		opts := sim.DefaultOptions()
		opts.MaxInstructions = 50_000_000
		opts.Superblocks = superblocks
		c := ktest.NewCPU(t, p, opts)
		col := prof.NewCollector()
		c.Attach(col)
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return col.Finish(c.Stats), c.Stats
	}
	on, sOn := collect(true)
	off, sOff := collect(false)
	if sOn != sOff {
		t.Errorf("stats diverge:\n  on:  %+v\n  off: %+v", sOn, sOff)
	}
	if err := prof.Equal(on, off); err != nil {
		t.Errorf("profiles diverge between trace and stepwise execution: %v", err)
	}
	if on.Instructions == 0 || len(on.PCs) == 0 {
		t.Fatalf("empty profile: %+v", on)
	}
	if len(on.Switches) == 0 {
		t.Error("mixed-ISA program recorded no ISA switch transitions")
	}
}
