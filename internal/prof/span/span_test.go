package span

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	var sc SpanContext
	for i := range sc.Trace {
		sc.Trace[i] = byte(i + 1)
	}
	for i := range sc.Span {
		sc.Span[i] = byte(0xa0 + i)
	}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent = %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	// Unknown versions parse (forward compatibility per the W3C spec).
	if _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); !ok {
		t.Error("unknown version byte rejected")
	}
}

func TestUntracedContextIsInert(t *testing.T) {
	ctx, sp := Start(context.Background(), "compile")
	if sp != nil {
		t.Fatal("Start on untraced context returned a live span")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()             // must not panic
	if _, ok := FromContext(ctx); ok {
		t.Fatal("untraced context reports a span context")
	}
}

// logLines captures each slog record as a parsed JSON object.
func logLines(buf *bytes.Buffer) []map[string]any {
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err == nil {
			out = append(out, m)
		}
	}
	return out
}

func TestSpanNestingAndLogging(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(slog.New(slog.NewJSONHandler(&buf, nil)))
	ctx := NewContext(context.Background(), tr)
	root, _ := FromContext(ctx)
	if root.Trace.IsZero() {
		t.Fatal("NewContext did not mint a trace id")
	}

	ctx1, outer := Start(ctx, "build")
	outer.SetAttr("objects", 2)
	_, inner := Start(ctx1, "compile")
	inner.End()
	outer.End()

	lines := logLines(&buf)
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	in, out := lines[0], lines[1] // inner ends first
	if in["span"] != "compile" || out["span"] != "build" {
		t.Fatalf("span names = %v / %v", in["span"], out["span"])
	}
	if in["trace_id"] != out["trace_id"] || in["trace_id"] != root.Trace.String() {
		t.Fatalf("trace ids do not agree: %v vs %v vs %v", in["trace_id"], out["trace_id"], root.Trace)
	}
	if in["parent_id"] != out["span_id"] {
		t.Fatalf("inner parent %v != outer span %v", in["parent_id"], out["span_id"])
	}
	if out["objects"] != float64(2) {
		t.Fatalf("attr lost: %v", out["objects"])
	}
	if _, ok := in["dur_ms"].(float64); !ok {
		t.Fatalf("dur_ms missing: %v", in["dur_ms"])
	}
}

// captureSink records exported spans.
type captureSink struct{ spans []SpanData }

func (s *captureSink) ExportSpan(sd SpanData) { s.spans = append(s.spans, sd) }

func TestSinkReceivesFinishedSpans(t *testing.T) {
	var buf bytes.Buffer
	sink := &captureSink{}
	tr := NewTracerWithSink(slog.New(slog.NewJSONHandler(&buf, nil)), sink)
	ctx := NewContext(context.Background(), tr)

	ctx1, outer := Start(ctx, "job")
	_, inner := Start(ctx1, "build")
	inner.SetAttr("isa", "RISC")
	inner.SetError(errBuild)
	inner.End()
	outer.End()

	if len(sink.spans) != 2 {
		t.Fatalf("sink got %d spans, want 2", len(sink.spans))
	}
	in, out := sink.spans[0], sink.spans[1]
	if in.Name != "build" || out.Name != "job" {
		t.Fatalf("span names = %q/%q", in.Name, out.Name)
	}
	if in.Trace != out.Trace || in.Parent != out.Span {
		t.Fatal("sink spans lost trace lineage")
	}
	if in.Err != errBuild {
		t.Fatalf("sink span error = %v, want %v", in.Err, errBuild)
	}
	if out.Err != nil {
		t.Fatalf("clean span exported error %v", out.Err)
	}
	if len(in.Attrs) != 1 || in.Attrs[0].Key != "isa" {
		t.Fatalf("sink span attrs = %v", in.Attrs)
	}
	if !in.End.After(in.Start) && !in.End.Equal(in.Start) {
		t.Fatal("span end precedes start")
	}
	// Logging still happened alongside export, error attr included.
	lines := logLines(&buf)
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	if lines[0]["error"] != errBuild.Error() {
		t.Fatalf("failed span log error = %v, want %q", lines[0]["error"], errBuild)
	}
	if _, ok := lines[1]["error"]; ok {
		t.Fatalf("clean span logged an error: %v", lines[1])
	}
}

var errBuild = errors.New("link failed")

// An export-only tracer (nil logger + sink) must stay silent on the
// log while still exporting.
func TestExportOnlyTracerDoesNotLog(t *testing.T) {
	sink := &captureSink{}
	tr := NewTracerWithSink(nil, sink)
	ctx := NewContext(context.Background(), tr)
	_, sp := Start(ctx, "simulate")
	sp.End()
	if len(sink.spans) != 1 {
		t.Fatalf("sink got %d spans, want 1", len(sink.spans))
	}
}

// SetError on a nil error or a nil span must be inert.
func TestSetErrorInert(t *testing.T) {
	sink := &captureSink{}
	tr := NewTracerWithSink(nil, sink)
	ctx := NewContext(context.Background(), tr)
	_, sp := Start(ctx, "x")
	sp.SetError(nil)
	sp.End()
	if sink.spans[0].Err != nil {
		t.Fatalf("SetError(nil) marked the span failed: %v", sink.spans[0].Err)
	}
	var none *Span
	none.SetError(errBuild) // must not panic
}

func TestContextWithRemote(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(slog.New(slog.NewJSONHandler(&buf, nil)))
	remote, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("fixture traceparent rejected")
	}
	ctx := ContextWithRemote(context.Background(), tr, remote)
	_, sp := Start(ctx, "simulate")
	sp.End()

	lines := logLines(&buf)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1", len(lines))
	}
	if lines[0]["trace_id"] != remote.Trace.String() {
		t.Fatalf("trace id = %v, want caller's %v", lines[0]["trace_id"], remote.Trace)
	}
	if lines[0]["parent_id"] != remote.Span.String() {
		t.Fatalf("parent id = %v, want caller's span %v", lines[0]["parent_id"], remote.Span)
	}
}
