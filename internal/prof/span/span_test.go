package span

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	var sc SpanContext
	for i := range sc.Trace {
		sc.Trace[i] = byte(i + 1)
	}
	for i := range sc.Span {
		sc.Span[i] = byte(0xa0 + i)
	}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent = %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	// Unknown versions parse (forward compatibility per the W3C spec).
	if _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); !ok {
		t.Error("unknown version byte rejected")
	}
}

func TestUntracedContextIsInert(t *testing.T) {
	ctx, sp := Start(context.Background(), "compile")
	if sp != nil {
		t.Fatal("Start on untraced context returned a live span")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()             // must not panic
	if _, ok := FromContext(ctx); ok {
		t.Fatal("untraced context reports a span context")
	}
}

// logLines captures each slog record as a parsed JSON object.
func logLines(buf *bytes.Buffer) []map[string]any {
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err == nil {
			out = append(out, m)
		}
	}
	return out
}

func TestSpanNestingAndLogging(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(slog.New(slog.NewJSONHandler(&buf, nil)))
	ctx := NewContext(context.Background(), tr)
	root, _ := FromContext(ctx)
	if root.Trace.IsZero() {
		t.Fatal("NewContext did not mint a trace id")
	}

	ctx1, outer := Start(ctx, "build")
	outer.SetAttr("objects", 2)
	_, inner := Start(ctx1, "compile")
	inner.End()
	outer.End()

	lines := logLines(&buf)
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	in, out := lines[0], lines[1] // inner ends first
	if in["span"] != "compile" || out["span"] != "build" {
		t.Fatalf("span names = %v / %v", in["span"], out["span"])
	}
	if in["trace_id"] != out["trace_id"] || in["trace_id"] != root.Trace.String() {
		t.Fatalf("trace ids do not agree: %v vs %v vs %v", in["trace_id"], out["trace_id"], root.Trace)
	}
	if in["parent_id"] != out["span_id"] {
		t.Fatalf("inner parent %v != outer span %v", in["parent_id"], out["span_id"])
	}
	if out["objects"] != float64(2) {
		t.Fatalf("attr lost: %v", out["objects"])
	}
	if _, ok := in["dur_ms"].(float64); !ok {
		t.Fatalf("dur_ms missing: %v", in["dur_ms"])
	}
}

func TestContextWithRemote(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(slog.New(slog.NewJSONHandler(&buf, nil)))
	remote, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("fixture traceparent rejected")
	}
	ctx := ContextWithRemote(context.Background(), tr, remote)
	_, sp := Start(ctx, "simulate")
	sp.End()

	lines := logLines(&buf)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1", len(lines))
	}
	if lines[0]["trace_id"] != remote.Trace.String() {
		t.Fatalf("trace id = %v, want caller's %v", lines[0]["trace_id"], remote.Trace)
	}
	if lines[0]["parent_id"] != remote.Span.String() {
		t.Fatalf("parent id = %v, want caller's span %v", lines[0]["parent_id"], remote.Span)
	}
}
