// Package span is the toolchain's lightweight pipeline tracer: timed
// spans over the compile → assemble → link → elaborate → simulate
// stages, logged through slog and correlated by W3C Trace Context IDs
// (traceparent), so a serving layer can attribute request latency to
// build vs. cache vs. simulation work and stitch its logs to an
// upstream caller's trace.
//
// Tracing is opt-in and context-carried: a stage calls
//
//	ctx, sp := span.Start(ctx, "compile")
//	defer sp.End()
//
// and the call is a no-op (nil span, zero allocations beyond the
// context lookup) unless a Tracer was installed upstream with
// span.NewContext. Incoming requests adopt a caller's trace with
// ParseTraceparent + ContextWithRemote; FromContext renders the current
// traceparent for propagation to responses or downstream services.
package span

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"time"
)

// TraceID is the 16-byte W3C trace id shared by every span of one
// request; SpanID identifies a single span within it.
type TraceID [16]byte

// SpanID is the 8-byte W3C span (parent) id.
type SpanID [8]byte

// IsZero reports an unset trace id (invalid per the W3C spec).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports an unset span id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext identifies one span within one trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (c SpanContext) Traceparent() string {
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version byte (per spec, unknown versions parse as version 00) and
// rejects malformed or all-zero ids.
func ParseTraceparent(h string) (SpanContext, bool) {
	var c SpanContext
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return c, false
	}
	if _, err := hex.Decode(c.Trace[:], []byte(h[3:35])); err != nil {
		return c, false
	}
	if _, err := hex.Decode(c.Span[:], []byte(h[36:52])); err != nil {
		return c, false
	}
	if c.Trace.IsZero() || c.Span.IsZero() {
		return c, false
	}
	return c, true
}

// Tracer emits finished spans as structured log records.
type Tracer struct {
	log *slog.Logger
}

// NewTracer builds a tracer over log (nil selects slog.Default()).
func NewTracer(log *slog.Logger) *Tracer {
	if log == nil {
		log = slog.Default()
	}
	return &Tracer{log: log}
}

// scope is the per-context tracing state: the tracer plus the current
// span context (the parent of the next Start).
type scope struct {
	tracer *Tracer
	sc     SpanContext
}

type scopeKey struct{}

// NewContext installs tracer with a fresh root trace id and returns the
// derived context. Every Start below it becomes part of one trace.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	var sc SpanContext
	randomize(sc.Trace[:])
	return context.WithValue(ctx, scopeKey{}, scope{tracer: t, sc: sc})
}

// ContextWithRemote installs tracer continuing a caller's trace: spans
// started below it carry remote.Trace and parent to remote.Span.
func ContextWithRemote(ctx context.Context, t *Tracer, remote SpanContext) context.Context {
	return context.WithValue(ctx, scopeKey{}, scope{tracer: t, sc: remote})
}

// FromContext returns the current span context (the most recent Start,
// or the root/remote context); ok is false when ctx carries no tracer.
func FromContext(ctx context.Context) (SpanContext, bool) {
	s, ok := ctx.Value(scopeKey{}).(scope)
	return s.sc, ok
}

// Span is one in-flight pipeline stage. A nil Span (returned by Start
// on an untraced context) is valid and inert.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time
	sc     SpanContext
	parent SpanID
	attrs  []slog.Attr
}

// Start begins a span named name as a child of ctx's current span and
// returns the derived context (so nested stages chain) plus the span.
// On an untraced context, Start returns ctx unchanged and a nil span —
// the disabled path does no clock reads and no logging.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	s, ok := ctx.Value(scopeKey{}).(scope)
	if !ok {
		return ctx, nil
	}
	sp := &Span{
		tracer: s.tracer,
		name:   name,
		start:  time.Now(),
		sc:     SpanContext{Trace: s.sc.Trace},
		parent: s.sc.Span,
	}
	randomize(sp.sc.Span[:])
	return context.WithValue(ctx, scopeKey{}, scope{tracer: s.tracer, sc: sp.sc}), sp
}

// SetAttr attaches an attribute reported with the span's log record.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, slog.Any(key, value))
}

// End finishes the span and logs it: name, duration, trace/span/parent
// ids and any attributes. End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 5+len(s.attrs))
	attrs = append(attrs,
		slog.String("span", s.name),
		slog.Float64("dur_ms", float64(time.Since(s.start))/float64(time.Millisecond)),
		slog.String("trace_id", s.sc.Trace.String()),
		slog.String("span_id", s.sc.Span.String()),
	)
	if !s.parent.IsZero() {
		attrs = append(attrs, slog.String("parent_id", s.parent.String()))
	}
	attrs = append(attrs, s.attrs...)
	s.tracer.log.LogAttrs(context.Background(), slog.LevelInfo, "span", attrs...)
}

func randomize(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand does not fail on supported platforms.
		panic("span: rand: " + err.Error())
	}
}
