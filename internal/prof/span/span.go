// Package span is the toolchain's lightweight pipeline tracer: timed
// spans over the compile → assemble → link → elaborate → simulate
// stages, logged through slog and correlated by W3C Trace Context IDs
// (traceparent), so a serving layer can attribute request latency to
// build vs. cache vs. simulation work and stitch its logs to an
// upstream caller's trace.
//
// Tracing is opt-in and context-carried: a stage calls
//
//	ctx, sp := span.Start(ctx, "compile")
//	defer sp.End()
//
// and the call is a no-op (nil span, zero allocations beyond the
// context lookup) unless a Tracer was installed upstream with
// span.NewContext. Incoming requests adopt a caller's trace with
// ParseTraceparent + ContextWithRemote; FromContext renders the current
// traceparent for propagation to responses or downstream services.
package span

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"time"
)

// TraceID is the 16-byte W3C trace id shared by every span of one
// request; SpanID identifies a single span within it.
type TraceID [16]byte

// SpanID is the 8-byte W3C span (parent) id.
type SpanID [8]byte

// IsZero reports an unset trace id (invalid per the W3C spec).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports an unset span id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext identifies one span within one trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (c SpanContext) Traceparent() string {
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version byte (per spec, unknown versions parse as version 00) and
// rejects malformed or all-zero ids.
func ParseTraceparent(h string) (SpanContext, bool) {
	var c SpanContext
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return c, false
	}
	if _, err := hex.Decode(c.Trace[:], []byte(h[3:35])); err != nil {
		return c, false
	}
	if _, err := hex.Decode(c.Span[:], []byte(h[36:52])); err != nil {
		return c, false
	}
	if c.Trace.IsZero() || c.Span.IsZero() {
		return c, false
	}
	return c, true
}

// SpanData is the immutable record of a finished span, handed to a
// Sink for export.
type SpanData struct {
	Name   string
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	Start  time.Time
	End    time.Time
	Attrs  []slog.Attr
	Err    error
}

// Sink receives finished spans. Implementations must not block: they
// run on the span's End path inside request handling.
type Sink interface {
	ExportSpan(SpanData)
}

// Tracer emits finished spans as structured log records and/or to an
// export sink.
type Tracer struct {
	log  *slog.Logger
	sink Sink
}

// NewTracer builds a tracer over log (nil selects slog.Default()).
func NewTracer(log *slog.Logger) *Tracer {
	if log == nil {
		log = slog.Default()
	}
	return &Tracer{log: log}
}

// NewTracerWithSink builds a tracer that forwards finished spans to
// sink. Unlike NewTracer, a nil log means "export only" — spans are
// not logged.
func NewTracerWithSink(log *slog.Logger, sink Sink) *Tracer {
	return &Tracer{log: log, sink: sink}
}

// scope is the per-context tracing state: the tracer plus the current
// span context (the parent of the next Start).
type scope struct {
	tracer *Tracer
	sc     SpanContext
}

type scopeKey struct{}

// NewContext installs tracer with a fresh root trace id and returns the
// derived context. Every Start below it becomes part of one trace.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	var sc SpanContext
	randomize(sc.Trace[:])
	return context.WithValue(ctx, scopeKey{}, scope{tracer: t, sc: sc})
}

// ContextWithRemote installs tracer continuing a caller's trace: spans
// started below it carry remote.Trace and parent to remote.Span.
func ContextWithRemote(ctx context.Context, t *Tracer, remote SpanContext) context.Context {
	return context.WithValue(ctx, scopeKey{}, scope{tracer: t, sc: remote})
}

// FromContext returns the current span context (the most recent Start,
// or the root/remote context); ok is false when ctx carries no tracer.
func FromContext(ctx context.Context) (SpanContext, bool) {
	s, ok := ctx.Value(scopeKey{}).(scope)
	return s.sc, ok
}

// Span is one in-flight pipeline stage. A nil Span (returned by Start
// on an untraced context) is valid and inert.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time
	sc     SpanContext
	parent SpanID
	attrs  []slog.Attr
	err    error
}

// Start begins a span named name as a child of ctx's current span and
// returns the derived context (so nested stages chain) plus the span.
// On an untraced context, Start returns ctx unchanged and a nil span —
// the disabled path does no clock reads and no logging.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	s, ok := ctx.Value(scopeKey{}).(scope)
	if !ok {
		return ctx, nil
	}
	sp := &Span{
		tracer: s.tracer,
		name:   name,
		start:  time.Now(),
		sc:     SpanContext{Trace: s.sc.Trace},
		parent: s.sc.Span,
	}
	randomize(sp.sc.Span[:])
	return context.WithValue(ctx, scopeKey{}, scope{tracer: s.tracer, sc: sp.sc}), sp
}

// SetAttr attaches an attribute reported with the span's log record.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, slog.Any(key, value))
}

// SetError marks the span as failed; the error is logged with the
// span and exported as an OTLP error status. Safe on a nil span.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err
}

// End finishes the span, logs it (name, duration, trace/span/parent
// ids, error status and any attributes) and forwards it to the
// tracer's sink if one is installed. End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	if s.tracer.log != nil {
		attrs := make([]slog.Attr, 0, 6+len(s.attrs))
		attrs = append(attrs,
			slog.String("span", s.name),
			slog.Float64("dur_ms", float64(end.Sub(s.start))/float64(time.Millisecond)),
			slog.String("trace_id", s.sc.Trace.String()),
			slog.String("span_id", s.sc.Span.String()),
		)
		if !s.parent.IsZero() {
			attrs = append(attrs, slog.String("parent_id", s.parent.String()))
		}
		attrs = append(attrs, s.attrs...)
		if s.err != nil {
			attrs = append(attrs, slog.String("error", s.err.Error()))
		}
		s.tracer.log.LogAttrs(context.Background(), slog.LevelInfo, "span", attrs...)
	}
	if s.tracer.sink != nil {
		s.tracer.sink.ExportSpan(SpanData{
			Name:   s.name,
			Trace:  s.sc.Trace,
			Span:   s.sc.Span,
			Parent: s.parent,
			Start:  s.start,
			End:    end,
			Attrs:  s.attrs,
			Err:    s.err,
		})
	}
}

func randomize(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand does not fail on supported platforms.
		panic("span: rand: " + err.Error())
	}
}
