package prof

import "sort"

// Profile/report diffing: the per-pair comparison primitive of
// `kprof -diff a.json b.json` and of campaign reports
// (internal/campaign), which attach per-pair deltas between Pareto
// points. A diff is computed over two symbolized Reports, so it works
// on saved JSON files without the executables that produced them;
// deltas are B minus A throughout.

// PCDelta compares one program counter across two reports. Func, File
// and Line come from whichever side symbolized the PC (B wins when
// both did).
type PCDelta struct {
	PC   uint32 `json:"pc"`
	Func string `json:"func,omitempty"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`

	CountA  uint64 `json:"count_a"`
	CountB  uint64 `json:"count_b"`
	CyclesA uint64 `json:"cycles_a"`
	CyclesB uint64 `json:"cycles_b"`

	// CountDelta/CyclesDelta are B minus A.
	CountDelta  int64 `json:"count_delta"`
	CyclesDelta int64 `json:"cycles_delta"`
}

// ISADelta compares one ISA's attribution across two reports.
type ISADelta struct {
	ISA string `json:"isa"`

	InstructionsA uint64 `json:"instructions_a"`
	InstructionsB uint64 `json:"instructions_b"`
	CyclesA       uint64 `json:"cycles_a"`
	CyclesB       uint64 `json:"cycles_b"`

	InstructionsDelta int64 `json:"instructions_delta"`
	CyclesDelta       int64 `json:"cycles_delta"`
}

// ReportDiff is the rendered comparison of two profile reports.
type ReportDiff struct {
	// CycleModel is the shared model name, or "a|b" when they differ.
	CycleModel string `json:"cycle_model,omitempty"`

	InstructionsA uint64 `json:"instructions_a"`
	InstructionsB uint64 `json:"instructions_b"`
	OperationsA   uint64 `json:"operations_a"`
	OperationsB   uint64 `json:"operations_b"`
	CyclesA       uint64 `json:"cycles_a"`
	CyclesB       uint64 `json:"cycles_b"`

	InstructionsDelta int64 `json:"instructions_delta"`
	OperationsDelta   int64 `json:"operations_delta"`
	CyclesDelta       int64 `json:"cycles_delta"`

	// ISAs compares per-ISA attribution over the union of both sides,
	// name-sorted.
	ISAs []ISADelta `json:"isas,omitempty"`

	// PCs are the topN largest per-PC cycle movements over the union of
	// both hotspot tables; TotalPCs counts the whole union. Reports
	// truncated to top-N hotspots diff only what they carry.
	PCs      []PCDelta `json:"pcs,omitempty"`
	TotalPCs int       `json:"total_pcs"`
}

// DiffReports compares two symbolized reports, B relative to A: the
// per-PC table is the union of both hotspot tables ranked by absolute
// cycle movement (absolute count movement, then ascending PC, as
// deterministic tie-breaks) and truncated to topN rows (<= 0: all).
// Either report may be nil, standing in for an empty profile.
func DiffReports(a, b *Report, topN int) *ReportDiff {
	if a == nil {
		a = &Report{}
	}
	if b == nil {
		b = &Report{}
	}
	d := &ReportDiff{
		CycleModel:    a.CycleModel,
		InstructionsA: a.Instructions, InstructionsB: b.Instructions,
		OperationsA: a.Operations, OperationsB: b.Operations,
		CyclesA: a.Cycles, CyclesB: b.Cycles,
		InstructionsDelta: int64(b.Instructions) - int64(a.Instructions),
		OperationsDelta:   int64(b.Operations) - int64(a.Operations),
		CyclesDelta:       int64(b.Cycles) - int64(a.Cycles),
	}
	switch {
	case a.CycleModel == b.CycleModel || b.CycleModel == "":
	case a.CycleModel == "":
		d.CycleModel = b.CycleModel
	default:
		d.CycleModel = a.CycleModel + "|" + b.CycleModel
	}

	isas := map[string]*ISADelta{}
	for _, s := range a.ISAs {
		isas[s.ISA] = &ISADelta{ISA: s.ISA, InstructionsA: s.Instructions, CyclesA: s.Cycles}
	}
	for _, s := range b.ISAs {
		e := isas[s.ISA]
		if e == nil {
			e = &ISADelta{ISA: s.ISA}
			isas[s.ISA] = e
		}
		e.InstructionsB = s.Instructions
		e.CyclesB = s.Cycles
	}
	names := make([]string, 0, len(isas))
	for name := range isas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := isas[name]
		e.InstructionsDelta = int64(e.InstructionsB) - int64(e.InstructionsA)
		e.CyclesDelta = int64(e.CyclesB) - int64(e.CyclesA)
		d.ISAs = append(d.ISAs, *e)
	}

	pcs := map[uint32]*PCDelta{}
	for i := range a.Hotspots {
		h := &a.Hotspots[i]
		pcs[h.PC] = &PCDelta{PC: h.PC, Func: h.Func, File: h.File, Line: h.Line,
			CountA: h.Count, CyclesA: h.Cycles}
	}
	for i := range b.Hotspots {
		h := &b.Hotspots[i]
		e := pcs[h.PC]
		if e == nil {
			e = &PCDelta{PC: h.PC}
			pcs[h.PC] = e
		}
		if h.Func != "" {
			e.Func, e.File, e.Line = h.Func, h.File, h.Line
		}
		e.CountB = h.Count
		e.CyclesB = h.Cycles
	}
	d.TotalPCs = len(pcs)
	rows := make([]PCDelta, 0, len(pcs))
	for _, e := range pcs {
		e.CountDelta = int64(e.CountB) - int64(e.CountA)
		e.CyclesDelta = int64(e.CyclesB) - int64(e.CyclesA)
		rows = append(rows, *e)
	}
	sort.Slice(rows, func(i, j int) bool {
		ci, cj := abs64(rows[i].CyclesDelta), abs64(rows[j].CyclesDelta)
		if ci != cj {
			return ci > cj
		}
		ni, nj := abs64(rows[i].CountDelta), abs64(rows[j].CountDelta)
		if ni != nj {
			return ni > nj
		}
		return rows[i].PC < rows[j].PC
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	d.PCs = rows
	return d
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
