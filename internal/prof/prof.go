// Package prof is the simulator's microarchitectural profiler: a
// low-overhead observer of the dynamic instruction stream that
// attributes executed instructions, operations and approximated cycles
// to guest program counters, ISAs and VLIW slots, and snapshots the
// interpreter's decode-cache and instruction-prediction counters
// (Sec. V-A of the paper) into a mergeable Profile.
//
// The profiler is strictly opt-in: nothing in this package runs unless
// a Collector is attached to a CPU, and an attached Collector is a
// passive observer — it never feeds state back into the simulation, so
// cycle counts are bit-identical with and without profiling.
//
// Profiles merge commutatively (Merge), so a batch engine can profile
// each worker's jobs independently and fold the results into one
// deterministic aggregate regardless of scheduling order. Symbolized
// reports (Report) and pprof protobuf export (WritePprof) key hotspots
// by the kelf function table and source line map, the same debug
// sections the simulator's error paths use (Sec. V-C).
package prof

import (
	"fmt"
	"sort"

	"repro/internal/kelf"
	"repro/internal/sim"
)

// CacheCounters are the decode-cache counters of one run (Sec. V-A:
// the detect&decode results are cached per instruction address).
type CacheCounters struct {
	Lookups   uint64 `json:"lookups"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns hits over lookups (0 when no lookups happened).
func (c CacheCounters) HitRate() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Lookups)
}

// PredCounters are the instruction-prediction counters: a hit skips
// the decode-cache lookup entirely; a miss falls through to the cache
// (or to detect&decode when the cache is off).
type PredCounters struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// HitRate returns hits over fetches (0 when nothing executed).
func (p PredCounters) HitRate() float64 {
	total := p.Hits + p.Misses
	if total == 0 {
		return 0
	}
	return float64(p.Hits) / float64(total)
}

// PCStats accumulate per instruction address. Cycles is the cycle-model
// delta attributed to executions of this address (0 when the run had no
// cycle model attached).
type PCStats struct {
	Count  uint64 // instructions executed at this PC
	Ops    uint64 // non-NOP operations those instructions issued
	Cycles uint64 // attributed cycles of the primary cycle model
}

// Stalls returns the cycles this PC spent beyond one per execution —
// the excess over perfect single-cycle issue, i.e. time lost to data
// dependencies, memory delays and slot contention under the attached
// cycle model.
func (s PCStats) Stalls() uint64 {
	if s.Cycles > s.Count {
		return s.Cycles - s.Count
	}
	return 0
}

// ISAStats attribute execution to one instruction set architecture.
type ISAStats struct {
	Instructions uint64 `json:"instructions"`
	Ops          uint64 `json:"ops"`
	Cycles       uint64 `json:"cycles"`
}

// SlotStats attribute operations to one VLIW issue slot.
type SlotStats struct {
	Ops    uint64 `json:"ops"`
	MemOps uint64 `json:"mem_ops"`
}

// Transition is one run-time ISA switch edge.
type Transition struct {
	From, To string
}

// Profile is the mergeable outcome of one or more profiled runs.
type Profile struct {
	Instructions uint64
	Operations   uint64
	// Cycles of the primary cycle model (CycleModel names it; both stay
	// zero for purely functional runs).
	Cycles     uint64
	CycleModel string

	DecodeCache CacheCounters
	Prediction  PredCounters

	// SampleStride records the per-PC sampling rate the profile was
	// collected at: 0 or 1 means exact attribution (every instruction);
	// n > 1 means every n-th instruction was sampled, with PC Count/Ops
	// holding raw sample counts (scale by the stride for estimates —
	// Top, Report and WritePprof do) and PC Cycles holding the full
	// inter-sample cycle deltas, so per-PC cycles still sum to Cycles
	// exactly. Totals, ISA/slot/switch tables and cache counters are
	// always exact regardless of stride.
	SampleStride uint64

	PCs      map[uint32]*PCStats
	ISAs     map[string]*ISAStats
	Slots    [sim.MaxIssue]SlotStats
	Switches map[Transition]uint64
}

// effStride maps the "exact" encodings (0 and 1) to stride 1.
func effStride(s uint64) uint64 {
	if s == 0 {
		return 1
	}
	return s
}

// normalize folds the sampling stride into the PC table, scaling raw
// sample counts into estimates and leaving a stride-1 profile — the
// common denominator when merging profiles sampled at different rates.
func (p *Profile) normalize() {
	s := effStride(p.SampleStride)
	if s > 1 {
		for _, e := range p.PCs {
			e.Count *= s
			e.Ops *= s
		}
	}
	p.SampleStride = 1
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		PCs:      make(map[uint32]*PCStats),
		ISAs:     make(map[string]*ISAStats),
		Switches: make(map[Transition]uint64),
	}
}

// Merge folds o into p. Merging is commutative and associative, so
// per-worker profiles combine into the same aggregate regardless of
// completion order. Profiles attributed by different cycle models merge
// with CycleModel set to "mixed".
func (p *Profile) Merge(o *Profile) {
	if o == nil {
		return
	}
	p.Instructions += o.Instructions
	p.Operations += o.Operations
	p.Cycles += o.Cycles
	switch {
	case o.CycleModel == "" || p.CycleModel == o.CycleModel:
	case p.CycleModel == "":
		p.CycleModel = o.CycleModel
	default:
		p.CycleModel = "mixed"
	}
	p.DecodeCache.Lookups += o.DecodeCache.Lookups
	p.DecodeCache.Hits += o.DecodeCache.Hits
	p.DecodeCache.Misses += o.DecodeCache.Misses
	p.DecodeCache.Evictions += o.DecodeCache.Evictions
	p.Prediction.Hits += o.Prediction.Hits
	p.Prediction.Misses += o.Prediction.Misses
	// Equal strides merge raw sample counts (so per-worker profiles of
	// the same sampled workload fold bit-identically regardless of
	// scheduling); differing strides normalize to stride 1 first.
	scale := uint64(1)
	switch {
	case effStride(o.SampleStride) == effStride(p.SampleStride):
	case len(o.PCs) == 0:
	case len(p.PCs) == 0:
		p.SampleStride = o.SampleStride
	default:
		p.normalize()
		scale = effStride(o.SampleStride)
	}
	for pc, s := range o.PCs {
		d := p.PCs[pc]
		if d == nil {
			d = &PCStats{}
			p.PCs[pc] = d
		}
		d.Count += s.Count * scale
		d.Ops += s.Ops * scale
		d.Cycles += s.Cycles
	}
	for name, s := range o.ISAs {
		d := p.ISAs[name]
		if d == nil {
			d = &ISAStats{}
			p.ISAs[name] = d
		}
		d.Instructions += s.Instructions
		d.Ops += s.Ops
		d.Cycles += s.Cycles
	}
	for i := range o.Slots {
		p.Slots[i].Ops += o.Slots[i].Ops
		p.Slots[i].MemOps += o.Slots[i].MemOps
	}
	for t, n := range o.Switches {
		p.Switches[t] += n
	}
}

// Merge combines profiles into a fresh one (nil entries are skipped).
func Merge(profiles ...*Profile) *Profile {
	out := NewProfile()
	for _, p := range profiles {
		out.Merge(p)
	}
	return out
}

// ---------------------------------------------------------------------
// Collection

// Collector observes a CPU's dynamic instruction stream and fills a
// Profile. Attach it with sim.CPU.Attach after any cycle models (the
// collector reads the primary model's running count to attribute cycle
// deltas to the instruction that consumed them). One collector profiles
// exactly one run; Finish seals the profile with the CPU's interpreter
// counters.
type Collector struct {
	p          *Profile
	cyc        sim.CycleSource
	lastCycles uint64
	curISAName string
	curISA     *ISAStats

	// Stride sampling of the per-PC table (the only unbounded profile
	// structure): every stride-th instruction is sampled, with the
	// cycle deltas accumulated since the previous sample attributed to
	// the sampled PC. Deterministic — it depends only on the
	// instruction stream, never on wall time.
	stride  uint64
	tick    uint64
	pending uint64
	sampled *PCStats
}

// NewCollector builds a collector over a fresh profile.
func NewCollector() *Collector { return &Collector{p: NewProfile()} }

// SetCycleSource attributes per-instruction cycle deltas of the named
// model (the run's primary cycle model) to PCs and ISAs. Without a
// source, the profile carries execution counts only.
func (c *Collector) SetCycleSource(cs sim.CycleSource, model string) {
	c.cyc = cs
	c.p.CycleModel = model
}

// SetSampling bounds collector memory on very long jobs: per-PC
// attribution records only every stride-th instruction (the first
// instruction is always sampled). Totals, ISA/slot/switch tables and
// cache counters stay exact; the profile records the stride so
// reports and pprof export scale sample counts back to estimates.
// stride <= 1 keeps exact attribution.
func (c *Collector) SetSampling(stride uint64) {
	if stride <= 1 {
		c.stride, c.p.SampleStride = 0, 0
		return
	}
	c.stride = stride
	c.tick = 1
	c.p.SampleStride = stride
}

// Instruction implements sim.Observer.
func (c *Collector) Instruction(rec *sim.ExecRecord) {
	d := rec.D
	nops := uint64(len(d.Ops))

	var delta uint64
	if c.cyc != nil {
		cur := c.cyc.Cycles()
		delta = cur - c.lastCycles
		c.lastCycles = cur
	}

	if c.stride <= 1 {
		e := c.p.PCs[d.Addr]
		if e == nil {
			e = &PCStats{}
			c.p.PCs[d.Addr] = e
		}
		e.Count++
		e.Ops += nops
		e.Cycles += delta
	} else {
		c.pending += delta
		c.tick--
		if c.tick == 0 {
			c.tick = c.stride
			e := c.p.PCs[d.Addr]
			if e == nil {
				e = &PCStats{}
				c.p.PCs[d.Addr] = e
			}
			e.Count++
			e.Ops += nops
			e.Cycles += c.pending
			c.pending = 0
			c.sampled = e
		}
	}

	if name := d.ISA.Name; name != c.curISAName {
		if c.curISAName != "" {
			c.p.Switches[Transition{From: c.curISAName, To: name}]++
		}
		c.curISAName = name
		s := c.p.ISAs[name]
		if s == nil {
			s = &ISAStats{}
			c.p.ISAs[name] = s
		}
		c.curISA = s
	}
	c.curISA.Instructions++
	c.curISA.Ops += nops
	c.curISA.Cycles += delta

	for i := range d.Ops {
		s := &c.p.Slots[d.Ops[i].Slot]
		s.Ops++
		if rec.Mem[i].Valid {
			s.MemOps++
		}
	}
}

// Finish seals the profile with the interpreter's counters and returns
// it. The prediction miss count is the fetches that fell through to the
// decode cache (or to detect&decode when the cache was off).
func (c *Collector) Finish(st sim.Stats) *Profile {
	p := c.p
	// Sampled runs may end between samples: attribute the trailing
	// cycle deltas to the last sampled PC so per-PC cycles still sum
	// to the exact total.
	if c.pending > 0 && c.sampled != nil {
		c.sampled.Cycles += c.pending
		c.pending = 0
	}
	p.Instructions = st.Instructions
	p.Operations = st.Operations
	p.Cycles = c.lastCycles
	p.DecodeCache = CacheCounters{
		Lookups:   st.CacheLookups,
		Hits:      st.CacheHits,
		Misses:    st.CacheLookups - st.CacheHits,
		Evictions: st.CacheEvictions,
	}
	p.Prediction = PredCounters{
		Hits:   st.PredHits,
		Misses: st.Instructions - st.PredHits,
	}
	return p
}

// Profile returns the profile under collection (Finish seals it).
func (c *Collector) Profile() *Profile { return c.p }

// ---------------------------------------------------------------------
// Symbolization and reporting

// Symbolizer maps guest program counters to debug info.
type Symbolizer interface {
	// Symbol returns the function plus, when known, the source file and
	// line covering pc; ok is false when pc is outside every function.
	Symbol(pc uint32) (fn, file string, line int, ok bool)
}

// Symbols symbolizes PCs from an executable's kelf debug sections (the
// function table and the C source line map, Sec. V-C).
type Symbols struct {
	funcs *kelf.FuncTable
	src   *kelf.LineMap
}

// NewSymbols builds a symbolizer; either table may be nil.
func NewSymbols(funcs *kelf.FuncTable, src *kelf.LineMap) *Symbols {
	return &Symbols{funcs: funcs, src: src}
}

// Symbol implements Symbolizer.
func (s *Symbols) Symbol(pc uint32) (fn, file string, line int, ok bool) {
	if s.funcs != nil {
		if fi := s.funcs.Lookup(pc); fi != nil {
			fn, ok = fi.Name, true
		}
	}
	if s.src != nil {
		if f, l, found := s.src.Lookup(pc); found {
			file, line = f, int(l)
		}
	}
	return fn, file, line, ok
}

// Hotspot is one row of the per-PC hotspot table.
type Hotspot struct {
	PC     uint32 `json:"pc"`
	Func   string `json:"func,omitempty"`
	File   string `json:"file,omitempty"`
	Line   int    `json:"line,omitempty"`
	Count  uint64 `json:"count"`
	Ops    uint64 `json:"ops"`
	Cycles uint64 `json:"cycles"`
	Stalls uint64 `json:"stalls"`
	// CyclePct is this PC's share of total attributed cycles (of total
	// instructions when no cycle model ran).
	CyclePct float64 `json:"cycle_pct"`
}

// Top returns the n hottest PCs, by attributed cycles (execution count
// for functional runs), ties broken by ascending PC so the order is
// deterministic. n <= 0 returns every PC.
func (p *Profile) Top(n int, sym Symbolizer) []Hotspot {
	stride := effStride(p.SampleStride)
	out := make([]Hotspot, 0, len(p.PCs))
	for pc, s := range p.PCs {
		// Sampled profiles scale raw sample counts to estimates;
		// cycles are fully attributed and need no scaling.
		scaled := PCStats{Count: s.Count * stride, Ops: s.Ops * stride, Cycles: s.Cycles}
		h := Hotspot{PC: pc, Count: scaled.Count, Ops: scaled.Ops, Cycles: scaled.Cycles, Stalls: scaled.Stalls()}
		if p.Cycles > 0 {
			h.CyclePct = 100 * float64(s.Cycles) / float64(p.Cycles)
		} else if p.Instructions > 0 {
			h.CyclePct = 100 * float64(scaled.Count) / float64(p.Instructions)
		}
		if sym != nil {
			h.Func, h.File, h.Line, _ = sym.Symbol(pc)
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ka, kb := a.Cycles, b.Cycles
		if p.Cycles == 0 {
			ka, kb = a.Count, b.Count
		}
		if ka != kb {
			return ka > kb
		}
		return a.PC < b.PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ISAReport is the per-ISA attribution row of a Report.
type ISAReport struct {
	ISA string `json:"isa"`
	ISAStats
}

// SlotReport is the per-VLIW-slot attribution row of a Report.
type SlotReport struct {
	Slot int `json:"slot"`
	SlotStats
}

// SwitchReport is one ISA-transition row of a Report.
type SwitchReport struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count uint64 `json:"count"`
}

// CacheReport renders the decode-cache counters with their hit rate.
type CacheReport struct {
	CacheCounters
	HitRate float64 `json:"hit_rate"`
}

// PredReport renders the prediction counters with their hit rate.
type PredReport struct {
	PredCounters
	HitRate float64 `json:"hit_rate"`
}

// Report is the JSON-friendly, symbolized rendering of a Profile — the
// payload of kservd's GET /v1/jobs/{id}/profile and of kprof -json.
type Report struct {
	Instructions uint64 `json:"instructions"`
	Operations   uint64 `json:"operations"`
	Cycles       uint64 `json:"cycles,omitempty"`
	CycleModel   string `json:"cycle_model,omitempty"`

	DecodeCache CacheReport `json:"decode_cache"`
	Prediction  PredReport  `json:"prediction"`

	ISAs     []ISAReport    `json:"isas"`
	Slots    []SlotReport   `json:"slots,omitempty"`
	Switches []SwitchReport `json:"isa_switches,omitempty"`

	// Hotspots are the top-N PCs; TotalPCs counts every distinct PC the
	// run touched (the sampled PCs under sampling), so a truncated
	// table is visible as such. SampleStride > 1 marks per-PC counts
	// as stride-scaled estimates.
	Hotspots     []Hotspot `json:"hotspots"`
	TotalPCs     int       `json:"total_pcs"`
	SampleStride uint64    `json:"sample_stride,omitempty"`
}

// Report renders the profile: the topN hottest PCs (<= 0: all),
// symbolized by sym (may be nil), plus every aggregate table in
// deterministic order.
func (p *Profile) Report(sym Symbolizer, topN int) *Report {
	r := &Report{
		Instructions: p.Instructions,
		Operations:   p.Operations,
		Cycles:       p.Cycles,
		CycleModel:   p.CycleModel,
		DecodeCache:  CacheReport{CacheCounters: p.DecodeCache, HitRate: p.DecodeCache.HitRate()},
		Prediction:   PredReport{PredCounters: p.Prediction, HitRate: p.Prediction.HitRate()},
		Hotspots:     p.Top(topN, sym),
		TotalPCs:     len(p.PCs),
	}
	if effStride(p.SampleStride) > 1 {
		r.SampleStride = p.SampleStride
	}
	names := make([]string, 0, len(p.ISAs))
	for name := range p.ISAs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r.ISAs = append(r.ISAs, ISAReport{ISA: name, ISAStats: *p.ISAs[name]})
	}
	for i, s := range p.Slots {
		if s.Ops > 0 {
			r.Slots = append(r.Slots, SlotReport{Slot: i, SlotStats: s})
		}
	}
	trans := make([]Transition, 0, len(p.Switches))
	for t := range p.Switches {
		trans = append(trans, t)
	}
	sort.Slice(trans, func(i, j int) bool {
		if trans[i].From != trans[j].From {
			return trans[i].From < trans[j].From
		}
		return trans[i].To < trans[j].To
	})
	for _, t := range trans {
		r.Switches = append(r.Switches, SwitchReport{From: t.From, To: t.To, Count: p.Switches[t]})
	}
	return r
}

// Equal reports whether two profiles carry identical counters — the
// determinism check batch tests use (worker count and scheduling must
// not change a merged profile).
func Equal(a, b *Profile) error {
	if a.Instructions != b.Instructions || a.Operations != b.Operations || a.Cycles != b.Cycles {
		return fmt.Errorf("prof: totals differ: %d/%d/%d vs %d/%d/%d",
			a.Instructions, a.Operations, a.Cycles, b.Instructions, b.Operations, b.Cycles)
	}
	if a.DecodeCache != b.DecodeCache {
		return fmt.Errorf("prof: decode-cache counters differ: %+v vs %+v", a.DecodeCache, b.DecodeCache)
	}
	if a.Prediction != b.Prediction {
		return fmt.Errorf("prof: prediction counters differ: %+v vs %+v", a.Prediction, b.Prediction)
	}
	if effStride(a.SampleStride) != effStride(b.SampleStride) {
		return fmt.Errorf("prof: sample strides differ: %d vs %d", a.SampleStride, b.SampleStride)
	}
	if len(a.PCs) != len(b.PCs) {
		return fmt.Errorf("prof: PC sets differ: %d vs %d", len(a.PCs), len(b.PCs))
	}
	for pc, s := range a.PCs {
		o := b.PCs[pc]
		if o == nil || *s != *o {
			return fmt.Errorf("prof: PC %#x differs: %+v vs %+v", pc, s, o)
		}
	}
	if len(a.ISAs) != len(b.ISAs) {
		return fmt.Errorf("prof: ISA sets differ")
	}
	for name, s := range a.ISAs {
		o := b.ISAs[name]
		if o == nil || *s != *o {
			return fmt.Errorf("prof: ISA %s differs: %+v vs %+v", name, s, o)
		}
	}
	if a.Slots != b.Slots {
		return fmt.Errorf("prof: slot tables differ")
	}
	if len(a.Switches) != len(b.Switches) {
		return fmt.Errorf("prof: switch tables differ")
	}
	for t, n := range a.Switches {
		if b.Switches[t] != n {
			return fmt.Errorf("prof: transition %s->%s differs: %d vs %d", t.From, t.To, n, b.Switches[t])
		}
	}
	return nil
}
