package prof

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
)

// fakeCycles is a scripted CycleSource: each Cycles() call returns the
// next value of the script (sticking to the last one when exhausted).
type fakeCycles struct {
	script []uint64
	i      int
}

func (f *fakeCycles) Cycles() uint64 {
	if f.i < len(f.script) {
		f.i++
	}
	return f.script[f.i-1]
}

// rec builds a synthetic ExecRecord at pc under a, with one op per
// given slot; memSlots marks which of those ops touched memory.
func rec(a *isa.ISA, pc uint32, slots []uint8, memSlots ...int) *sim.ExecRecord {
	d := &sim.Decoded{Addr: pc, ISA: a}
	r := &sim.ExecRecord{D: d}
	for i, s := range slots {
		d.Ops = append(d.Ops, sim.DecodedOp{Slot: s})
		for _, m := range memSlots {
			if m == i {
				r.Mem[i] = sim.MemAccess{Valid: true, Addr: 0x100}
			}
		}
	}
	return r
}

func TestCollectorAttribution(t *testing.T) {
	risc := &isa.ISA{Name: "RISC", ID: 0}
	vliw := &isa.ISA{Name: "VLIW4", ID: 1}

	c := NewCollector()
	c.SetCycleSource(&fakeCycles{script: []uint64{2, 5, 6, 16}}, "DOE")

	c.Instruction(rec(risc, 0x100, []uint8{0}))       // 2 cycles
	c.Instruction(rec(risc, 0x104, []uint8{0}, 0))    // 3 cycles, mem op
	c.Instruction(rec(vliw, 0x200, []uint8{0, 1, 3})) // 1 cycle, switch
	c.Instruction(rec(risc, 0x100, []uint8{0}))       // 10 cycles, switch back

	p := c.Finish(sim.Stats{
		Instructions: 4, Operations: 6,
		CacheLookups: 3, CacheHits: 1, CacheEvictions: 7,
		PredHits: 1,
	})

	if p.Cycles != 16 || p.CycleModel != "DOE" {
		t.Fatalf("cycles/model = %d/%s, want 16/DOE", p.Cycles, p.CycleModel)
	}
	if got := p.PCs[0x100]; got == nil || got.Count != 2 || got.Ops != 2 || got.Cycles != 12 {
		t.Fatalf("PC 0x100 = %+v, want Count=2 Ops=2 Cycles=12", got)
	}
	if got := p.PCs[0x100].Stalls(); got != 10 {
		t.Fatalf("PC 0x100 stalls = %d, want 10", got)
	}
	if got := p.PCs[0x200]; got == nil || got.Count != 1 || got.Ops != 3 || got.Cycles != 1 {
		t.Fatalf("PC 0x200 = %+v, want Count=1 Ops=3 Cycles=1", got)
	}
	if got := p.ISAs["RISC"]; got == nil || got.Instructions != 3 || got.Cycles != 15 {
		t.Fatalf("ISA RISC = %+v, want Instructions=3 Cycles=15", got)
	}
	if got := p.ISAs["VLIW4"]; got == nil || got.Instructions != 1 || got.Ops != 3 {
		t.Fatalf("ISA VLIW4 = %+v, want Instructions=1 Ops=3", got)
	}
	if p.Switches[Transition{"RISC", "VLIW4"}] != 1 || p.Switches[Transition{"VLIW4", "RISC"}] != 1 {
		t.Fatalf("switches = %v, want one edge each way", p.Switches)
	}
	if p.Slots[0].Ops != 4 || p.Slots[0].MemOps != 1 || p.Slots[1].Ops != 1 || p.Slots[3].Ops != 1 {
		t.Fatalf("slots = %+v", p.Slots[:4])
	}
	if p.DecodeCache != (CacheCounters{Lookups: 3, Hits: 1, Misses: 2, Evictions: 7}) {
		t.Fatalf("decode cache = %+v", p.DecodeCache)
	}
	if p.Prediction != (PredCounters{Hits: 1, Misses: 3}) {
		t.Fatalf("prediction = %+v", p.Prediction)
	}
	if hr := p.Prediction.HitRate(); hr != 0.25 {
		t.Fatalf("prediction hit rate = %v, want 0.25", hr)
	}
}

func sample(model string, pcBase uint32) *Profile {
	p := NewProfile()
	p.Instructions, p.Operations, p.Cycles = 10, 12, 40
	p.CycleModel = model
	p.DecodeCache = CacheCounters{Lookups: 5, Hits: 3, Misses: 2, Evictions: 1}
	p.Prediction = PredCounters{Hits: 5, Misses: 5}
	p.PCs[pcBase] = &PCStats{Count: 6, Ops: 7, Cycles: 30}
	p.PCs[pcBase+4] = &PCStats{Count: 4, Ops: 5, Cycles: 10}
	p.ISAs["RISC"] = &ISAStats{Instructions: 10, Ops: 12, Cycles: 40}
	p.Slots[0] = SlotStats{Ops: 12, MemOps: 2}
	p.Switches[Transition{"RISC", "VLIW4"}] = 3
	return p
}

func TestMergeCommutative(t *testing.T) {
	a := Merge(sample("DOE", 0x100), sample("DOE", 0x100), sample("DOE", 0x200))
	b := Merge(sample("DOE", 0x200), sample("DOE", 0x100), sample("DOE", 0x100))
	if err := Equal(a, b); err != nil {
		t.Fatalf("merge order changed the profile: %v", err)
	}
	if a.Instructions != 30 || a.Cycles != 120 {
		t.Fatalf("totals = %d/%d, want 30/120", a.Instructions, a.Cycles)
	}
	if got := a.PCs[0x100]; got.Count != 12 || got.Cycles != 60 {
		t.Fatalf("PC 0x100 = %+v, want Count=12 Cycles=60", got)
	}
	if a.Switches[Transition{"RISC", "VLIW4"}] != 9 {
		t.Fatalf("switch count = %d, want 9", a.Switches[Transition{"RISC", "VLIW4"}])
	}
}

func TestMergeMixedModels(t *testing.T) {
	m := Merge(sample("DOE", 0x100), sample("ILP", 0x100))
	if m.CycleModel != "mixed" {
		t.Fatalf("CycleModel = %q, want mixed", m.CycleModel)
	}
	m2 := Merge(sample("DOE", 0x100), NewProfile())
	if m2.CycleModel != "DOE" {
		t.Fatalf("CycleModel = %q, want DOE (empty profile must not dilute)", m2.CycleModel)
	}
}

func TestEqualDetectsDrift(t *testing.T) {
	a, b := sample("DOE", 0x100), sample("DOE", 0x100)
	if err := Equal(a, b); err != nil {
		t.Fatalf("identical profiles reported unequal: %v", err)
	}
	b.PCs[0x100].Cycles++
	if Equal(a, b) == nil {
		t.Fatal("per-PC cycle drift not detected")
	}
}

// tableSym symbolizes from a literal map for tests.
type tableSym map[uint32]string

func (m tableSym) Symbol(pc uint32) (string, string, int, bool) {
	fn, ok := m[pc]
	return fn, "main.c", int(pc % 100), ok
}

func TestTopOrderingAndReport(t *testing.T) {
	p := sample("DOE", 0x100)
	p.PCs[0x50] = &PCStats{Count: 1, Ops: 1, Cycles: 30} // ties 0x100 on cycles

	top := p.Top(0, tableSym{0x100: "hot"})
	if len(top) != 3 {
		t.Fatalf("len(top) = %d, want 3", len(top))
	}
	// Cycles desc, tie broken by ascending PC: 0x50 (30) before 0x100 (30).
	if top[0].PC != 0x50 || top[1].PC != 0x100 || top[2].PC != 0x104 {
		t.Fatalf("top order = %#x,%#x,%#x", top[0].PC, top[1].PC, top[2].PC)
	}
	if top[1].Func != "hot" || top[1].File != "main.c" {
		t.Fatalf("symbolization missing: %+v", top[1])
	}

	r := p.Report(nil, 2)
	if len(r.Hotspots) != 2 || r.TotalPCs != 3 {
		t.Fatalf("report hotspots/totalPCs = %d/%d, want 2/3", len(r.Hotspots), r.TotalPCs)
	}
	if len(r.ISAs) != 1 || r.ISAs[0].ISA != "RISC" {
		t.Fatalf("report ISAs = %+v", r.ISAs)
	}
	if len(r.Slots) != 1 || r.Slots[0].Slot != 0 {
		t.Fatalf("report slots = %+v (zero slots must be elided)", r.Slots)
	}
	if len(r.Switches) != 1 || r.Switches[0].Count != 3 {
		t.Fatalf("report switches = %+v", r.Switches)
	}
	if r.DecodeCache.HitRate != 0.6 || r.Prediction.HitRate != 0.5 {
		t.Fatalf("hit rates = %v/%v", r.DecodeCache.HitRate, r.Prediction.HitRate)
	}
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("report not JSON-serializable: %v", err)
	}
}

func TestFunctionalTopFallsBackToCounts(t *testing.T) {
	p := NewProfile()
	p.Instructions = 3
	p.PCs[0x10] = &PCStats{Count: 1}
	p.PCs[0x20] = &PCStats{Count: 2}
	top := p.Top(1, nil)
	if len(top) != 1 || top[0].PC != 0x20 {
		t.Fatalf("functional top = %+v, want PC 0x20", top)
	}
	if top[0].CyclePct < 66 || top[0].CyclePct > 67 {
		t.Fatalf("CyclePct = %v, want ~66.7 (share of instructions)", top[0].CyclePct)
	}
}

func TestWritePprof(t *testing.T) {
	p := sample("DOE", 0x100)
	var buf bytes.Buffer
	if err := WritePprof(&buf, p, tableSym{0x100: "inner_loop", 0x104: "inner_loop"}); err != nil {
		t.Fatalf("WritePprof: %v", err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	// Strings land literally in the proto string table.
	for _, want := range []string{"instructions", "operations", "cycles", "inner_loop", "main.c", "[kahrisma-guest]"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("pprof payload missing string %q", want)
		}
	}
}

func TestWritePprofEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePprof(&buf, NewProfile(), nil); err != nil {
		t.Fatalf("WritePprof on empty profile: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty profile produced no output")
	}
}
