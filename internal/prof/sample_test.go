package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
)

// runScripted drives a collector (optionally sampled) through a fixed
// synthetic instruction stream and returns the sealed profile. The
// stream revisits PCs so sampled and exact runs cover the same ground.
func runScripted(stride uint64) *Profile {
	risc := &isa.ISA{Name: "RISC", ID: 0}
	c := NewCollector()
	// Cycle counts advance by the instruction index + 1 each step, so
	// deltas are distinct and nonzero.
	script := make([]uint64, 12)
	total := uint64(0)
	for i := range script {
		total += uint64(i + 1)
		script[i] = total
	}
	c.SetCycleSource(&fakeCycles{script: script}, "DOE")
	if stride > 1 {
		c.SetSampling(stride)
	}
	pcs := []uint32{0x100, 0x104, 0x108, 0x100, 0x104, 0x108, 0x100, 0x104, 0x108, 0x100, 0x104, 0x108}
	for _, pc := range pcs {
		c.Instruction(rec(risc, pc, []uint8{0, 1}))
	}
	return c.Finish(sim.Stats{Instructions: 12, Operations: 24, CacheLookups: 12, CacheHits: 9, PredHits: 6})
}

// Sampling must never change the exact aggregates: totals, ISA tables
// and cache counters are identical to the unsampled run, and per-PC
// cycles still sum to the exact total (trailing deltas included).
func TestSamplingKeepsTotalsExact(t *testing.T) {
	exact := runScripted(0)
	sampled := runScripted(5) // 12 instructions: samples at 1, 6, 11 + trailing flush

	if sampled.Instructions != exact.Instructions || sampled.Operations != exact.Operations ||
		sampled.Cycles != exact.Cycles {
		t.Fatalf("sampled totals %d/%d/%d != exact %d/%d/%d",
			sampled.Instructions, sampled.Operations, sampled.Cycles,
			exact.Instructions, exact.Operations, exact.Cycles)
	}
	if *sampled.ISAs["RISC"] != *exact.ISAs["RISC"] {
		t.Errorf("ISA table drifted: %+v vs %+v", sampled.ISAs["RISC"], exact.ISAs["RISC"])
	}
	if sampled.DecodeCache != exact.DecodeCache || sampled.Prediction != exact.Prediction {
		t.Error("cache counters drifted under sampling")
	}
	var pcCycles, samples uint64
	for _, s := range sampled.PCs {
		pcCycles += s.Cycles
		samples += s.Count
	}
	if pcCycles != sampled.Cycles {
		t.Errorf("per-PC cycles sum to %d, want exact total %d", pcCycles, sampled.Cycles)
	}
	if samples != 3 {
		t.Errorf("raw sample count = %d, want 3 (stride 5 over 12 instructions, first always sampled)", samples)
	}
	if sampled.SampleStride != 5 {
		t.Errorf("SampleStride = %d, want 5", sampled.SampleStride)
	}
	// Per-PC memory is bounded by the samples, not the stream.
	if len(sampled.PCs) > 3 {
		t.Errorf("sampled PC table has %d entries, want <= 3", len(sampled.PCs))
	}
}

// Determinism: the same stream sampled twice yields identical profiles
// — sampling depends only on instruction order, never wall time.
func TestSamplingDeterministic(t *testing.T) {
	a, b := runScripted(3), runScripted(3)
	if err := Equal(a, b); err != nil {
		t.Fatalf("same stream, same stride: %v", err)
	}
}

// Top and Report scale raw sample counts by the stride; cycle
// percentages stay based on the exact cycle attribution.
func TestSampledReportScalesCounts(t *testing.T) {
	p := runScripted(5)
	top := p.Top(0, nil)
	var est uint64
	for _, e := range top {
		est += e.Count
	}
	if est != 15 { // 3 raw samples x stride 5
		t.Errorf("scaled count estimate = %d, want 15", est)
	}
	rep := p.Report(nil, 0)
	if rep.SampleStride != 5 {
		t.Errorf("report stride = %d, want 5", rep.SampleStride)
	}
	var cycles uint64
	for _, h := range rep.Hotspots {
		cycles += h.Cycles
	}
	if cycles != p.Cycles {
		t.Errorf("report hotspot cycles = %d, want exact %d", cycles, p.Cycles)
	}
	if exact := runScripted(0).Report(nil, 0); exact.SampleStride != 0 {
		t.Errorf("exact report stride = %d, want 0 (omitted)", exact.SampleStride)
	}
}

// Equal strides merge raw sample counts — per-worker partial profiles
// of one sampled workload fold identically regardless of worker count.
func TestMergeEqualStridesKeepsRawCounts(t *testing.T) {
	a, b := runScripted(3), runScripted(3)
	m := Merge(a, b)
	if m.SampleStride != 3 {
		t.Fatalf("merged stride = %d, want 3", m.SampleStride)
	}
	var raw uint64
	for _, s := range m.PCs {
		raw += s.Count
	}
	if raw != 8 { // 4 raw samples each (stride 3 over 12 instructions)
		t.Errorf("merged raw samples = %d, want 8", raw)
	}
	if m.Cycles != a.Cycles+b.Cycles {
		t.Errorf("merged cycles = %d, want %d", m.Cycles, a.Cycles+b.Cycles)
	}
}

// Differing strides normalize to stride 1: counts become estimates and
// the merged profile reports itself unsampled.
func TestMergeMixedStridesNormalizes(t *testing.T) {
	exact := runScripted(0)
	sampled := runScripted(5)
	m := Merge(exact, sampled)
	if effStride(m.SampleStride) != 1 {
		t.Fatalf("mixed-stride merge stride = %d, want 1", m.SampleStride)
	}
	var count uint64
	for _, s := range m.PCs {
		count += s.Count
	}
	if count != 12+15 { // exact 12 + sampled estimate 3*5
		t.Errorf("merged count = %d, want 27", count)
	}
	if m.Cycles != exact.Cycles+sampled.Cycles {
		t.Errorf("merged cycles = %d, want %d", m.Cycles, exact.Cycles+sampled.Cycles)
	}
	// Order must not matter.
	m2 := Merge(sampled, exact)
	if err := Equal(m, m2); err != nil {
		t.Errorf("mixed-stride merge not commutative: %v", err)
	}
}

// The pprof export records the stride as the sample period and scales
// count/ops values, so `go tool pprof` shows estimates directly.
func TestSampledPprofPeriod(t *testing.T) {
	p := runScripted(5)
	var buf bytes.Buffer
	if err := WritePprof(&buf, p, nil); err != nil {
		t.Fatal(err)
	}
	period, sampleValues := decodePprof(t, buf.Bytes())
	if period != 5 {
		t.Errorf("pprof period = %d, want stride 5", period)
	}
	var count uint64
	for _, vals := range sampleValues {
		count += vals[0]
	}
	if count != 15 {
		t.Errorf("pprof scaled counts = %d, want 15", count)
	}
}

// decodePprof scans the gzipped profile.proto wire format for the
// period (field 12, varint) and each sample's packed values (field 2
// inside each field-2 Sample message) — just enough proto parsing to
// check the sampled export.
func decodePprof(t *testing.T, gz []byte) (period uint64, sampleValues [][]uint64) {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	for len(raw) > 0 {
		field, val, body, rest := protoField(t, raw)
		raw = rest
		switch field {
		case profPeriod:
			period = val
		case profSample:
			msg := body
			var vals []uint64
			for len(msg) > 0 {
				f, _, b, r := protoField(t, msg)
				msg = r
				if f == sampleValue {
					for len(b) > 0 {
						v, n := protoVarint(b)
						vals = append(vals, v)
						b = b[n:]
					}
				}
			}
			sampleValues = append(sampleValues, vals)
		}
	}
	return period, sampleValues
}

// protoField consumes one field from b: its number, varint value (wire
// type 0), payload bytes (wire type 2) and the remaining buffer.
func protoField(t *testing.T, b []byte) (field int, val uint64, payload []byte, rest []byte) {
	t.Helper()
	tag, n := protoVarint(b)
	b = b[n:]
	field = int(tag >> 3)
	switch tag & 7 {
	case 0:
		val, n = protoVarint(b)
		return field, val, nil, b[n:]
	case 2:
		size, n := protoVarint(b)
		b = b[n:]
		return field, 0, b[:size], b[size:]
	default:
		t.Fatalf("unexpected wire type %d for field %d", tag&7, field)
		return 0, 0, nil, nil
	}
}

// protoVarint decodes one varint, returning the value and bytes read.
func protoVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; ; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
}
