package campaign

import (
	"container/list"
	"sync"
)

// DefaultCacheCap bounds the shared result cache when no capacity is
// given: one entry per unique point, so roughly 1 KiB per cached
// outcome plus its profile report.
const DefaultCacheCap = 4096

// Cache is a bounded LRU map from point keys (Point.Key, the
// fingerprint-derived content hash) to completed outcomes. A campaign
// consults it before simulating, so repeated points — inside one grid
// or across re-submitted campaigns — are served without re-running the
// simulator. Safe for concurrent use; a Pool shares one cache across
// every campaign it runs.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key string
	out *Outcome
}

// NewCache builds a cache holding up to capacity outcomes; capacity
// <= 0 selects DefaultCacheCap.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns a copy of the cached outcome for key, or nil. The copy
// carries CacheHit=true and no Point; the caller re-binds it to its own
// point. Hit/miss counters update either way.
func (c *Cache) Get(key string) *Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.entries[key]
	if el == nil {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	out := *el.Value.(*cacheEntry).out
	out.Point = nil
	out.CacheHit = true
	return &out
}

// Put stores a completed outcome under key, evicting the least
// recently used entry when full. The outcome is copied with its Point
// detached, so cached results never pin a campaign's point graph.
func (c *Cache) Put(key string, out *Outcome) {
	if out == nil {
		return
	}
	stored := *out
	stored.Point = nil
	stored.CacheHit = false
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.entries[key]; el != nil {
		el.Value.(*cacheEntry).out = &stored
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, out: &stored})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Size   int
	Cap    int
	Hits   uint64
	Misses uint64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Size: c.order.Len(), Cap: c.cap, Hits: c.hits, Misses: c.misses}
}
