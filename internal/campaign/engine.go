package campaign

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/prof"
	"repro/internal/trace"
)

// Outcome is the result of one simulated (or cache-served) point. The
// executor fills the simulation fields; the engine binds Point, Label
// and Key and sets CacheHit for cache-served points. All exported
// fields are JSON-stable so outcomes serialize straight into server
// responses.
type Outcome struct {
	Point *Point `json:"-"`

	Label string `json:"label"`
	Key   string `json:"key"`

	// Err is the point's failure (build error, guest fault, timeout);
	// empty on success.
	Err string `json:"error,omitempty"`

	ExitCode     int32  `json:"exit_code"`
	Instructions uint64 `json:"instructions"`
	Operations   uint64 `json:"operations"`
	// Cycles and OPC per activated cycle model, keyed by model name.
	Cycles map[string]uint64  `json:"cycles,omitempty"`
	OPC    map[string]float64 `json:"opc,omitempty"`
	// L1MissRate of the hierarchy shared by AIE/DOE (0 when flat).
	L1MissRate float64 `json:"l1_miss_rate,omitempty"`
	// IssueWidth is the widest issue width of the ISAs the point ran
	// under (resolved width for AutoISA points) — the Pareto cost axis.
	IssueWidth int `json:"issue_width,omitempty"`
	// ResolvedISA names the concrete assignment of an AutoISA point,
	// e.g. "auto(dct:VLIW4,main:RISC)"; empty for fixed-ISA points.
	ResolvedISA string `json:"resolved_isa,omitempty"`
	// Profile is the point's symbolized profile report when the spec
	// asked for profiling.
	Profile *prof.Report `json:"profile,omitempty"`

	// CacheHit marks an outcome served from the fingerprint cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// Point states, as reported by PointStatus.State.
const (
	StatePending  = "pending"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// PointStatus is one point's live status.
type PointStatus struct {
	Index      int    `json:"index"`
	Label      string `json:"label"`
	Key        string `json:"key"`
	State      string `json:"state"`
	CacheHit   bool   `json:"cache_hit,omitempty"`
	Duplicates int    `json:"duplicates,omitempty"`
	Err        string `json:"error,omitempty"`
}

// Status is an aggregate snapshot of a run.
type Status struct {
	Name       string `json:"name,omitempty"`
	GridPoints int    `json:"grid_points"`
	Points     int    `json:"points"`
	Done       int    `json:"done"`
	Failed     int    `json:"failed"`
	Running    int    `json:"running"`
	Canceled   int    `json:"canceled"`
	// CacheHits counts points served from the result cache; Simulated
	// counts points that actually ran on the pool.
	CacheHits int  `json:"cache_hits"`
	Simulated int  `json:"simulated"`
	Finished  bool `json:"finished"`
}

// Executor runs one wave of points and returns one outcome per point,
// in the same order (a nil slot is treated as an executor failure for
// that point). The engine never runs two waves concurrently, so an
// executor may keep per-campaign state (build caches) without locking.
type Executor interface {
	RunWave(ctx context.Context, pts []*Point) []*Outcome
}

// Config wires a run to its environment. Only Exec is mandatory.
type Config struct {
	Exec Executor
	// Cache, when set, serves repeated points without simulation and
	// absorbs new results.
	Cache *Cache
	// Stream, when set, receives aggregate CampaignProgress events and
	// the terminal Done event.
	Stream *trace.Streamer
	// AcquireWave/ReleaseWave, when set, bracket every wave with the
	// serving layer's admission accounting (n = wave size), so a large
	// campaign holds at most one wave's worth of queue slots at a time.
	// A failed acquire cancels the remaining points.
	AcquireWave func(ctx context.Context, n int) error
	ReleaseWave func(n int)
}

// Run is a handle to an in-flight (or finished) campaign.
type Run struct {
	spec   Spec // normalized
	points []*Point
	grid   int
	cfg    Config

	mu       sync.Mutex
	states   []PointStatus
	outcomes []*Outcome // by point index; nil until the point is terminal
	hits     int
	sim      int
	finished bool
	err      error
	report   *Report

	done chan struct{}
}

// Start validates and expands the spec and launches the campaign on
// its own goroutine. The returned Run reports progress immediately.
func Start(ctx context.Context, spec Spec, cfg Config) (*Run, error) {
	if cfg.Exec == nil {
		return nil, fmt.Errorf("campaign: config: Exec is required")
	}
	points, grid, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	r := &Run{
		spec:     spec.normalized(),
		points:   points,
		grid:     grid,
		cfg:      cfg,
		states:   make([]PointStatus, len(points)),
		outcomes: make([]*Outcome, len(points)),
		done:     make(chan struct{}),
	}
	for i, pt := range points {
		r.states[i] = PointStatus{
			Index: pt.Index, Label: pt.Label, Key: pt.Key,
			State: StatePending, Duplicates: pt.Duplicates,
		}
	}
	go r.loop(ctx)
	return r, nil
}

// Spec returns the normalized spec the run executes.
func (r *Run) Spec() Spec { return r.spec }

// GridSize returns the pre-dedup grid size; Len the unique points.
func (r *Run) GridSize() int { return r.grid }
func (r *Run) Len() int      { return len(r.points) }

// Done returns a channel closed when the campaign is terminal.
func (r *Run) Done() <-chan struct{} { return r.done }

// Wait blocks until the campaign is terminal and returns Err.
func (r *Run) Wait() error {
	<-r.done
	return r.Err()
}

// Err returns the campaign's failure: the cancellation error when the
// run was cut short, otherwise the first failed point's error in point
// order, otherwise nil. Valid once Done is closed.
func (r *Run) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Status snapshots the aggregate counters.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusLocked()
}

func (r *Run) statusLocked() Status {
	st := Status{
		Name:       r.spec.Name,
		GridPoints: r.grid,
		Points:     len(r.points),
		CacheHits:  r.hits,
		Simulated:  r.sim,
		Finished:   r.finished,
	}
	for i := range r.states {
		switch r.states[i].State {
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Done++
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
	}
	return st
}

// Points snapshots every point's status, in point order. Completed
// points stay fetchable after cancellation.
func (r *Run) Points() []PointStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PointStatus, len(r.states))
	copy(out, r.states)
	return out
}

// Outcomes returns the terminal outcomes in point order; slots of
// unfinished or canceled points are nil.
func (r *Run) Outcomes() []*Outcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Outcome, len(r.outcomes))
	copy(out, r.outcomes)
	return out
}

// Report returns the ranked report, or nil while the campaign is still
// running. The report is deterministic: identical specs over identical
// programs serialize to identical bytes, run after run.
func (r *Run) Report() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.report
}

// publishProgress emits one aggregate snapshot to the stream.
func (r *Run) publishProgress() {
	if r.cfg.Stream == nil {
		return
	}
	r.mu.Lock()
	st := r.statusLocked()
	r.mu.Unlock()
	r.cfg.Stream.CampaignProgress(trace.CampaignProgress{
		Campaign:   st.Name,
		GridPoints: st.GridPoints,
		Points:     st.Points,
		Done:       st.Done,
		Failed:     st.Failed,
		Running:    st.Running,
		CacheHits:  st.CacheHits,
	})
}

// loop drives the campaign: cache sweep, then bounded waves over the
// remaining points, then report synthesis and the terminal event.
func (r *Run) loop(ctx context.Context) {
	defer close(r.done)
	r.publishProgress()

	// Cache sweep: points whose key is already known are terminal
	// before the first wave.
	var pending []*Point
	if r.cfg.Cache != nil {
		for _, pt := range r.points {
			out := r.cfg.Cache.Get(pt.Key)
			if out == nil {
				pending = append(pending, pt)
				continue
			}
			out.Point = pt
			out.Label = pt.Label
			out.Key = pt.Key
			r.recordOutcome(pt, out)
		}
		if len(pending) < len(r.points) {
			r.publishProgress()
		}
	} else {
		pending = r.points
	}

	wave := r.spec.Wave
	if wave > len(pending) && len(pending) > 0 {
		wave = len(pending)
	}

	var canceledErr error
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			canceledErr = err
			break
		}
		n := wave
		if n > len(pending) {
			n = len(pending)
		}
		batch := pending[:n]
		pending = pending[n:]

		if r.cfg.AcquireWave != nil {
			if err := r.cfg.AcquireWave(ctx, len(batch)); err != nil {
				canceledErr = err
				pending = append(batch, pending...)
				break
			}
		}
		r.markRunning(batch)
		r.publishProgress()
		outs := r.cfg.Exec.RunWave(ctx, batch)
		if r.cfg.ReleaseWave != nil {
			r.cfg.ReleaseWave(len(batch))
		}
		for i, pt := range batch {
			var out *Outcome
			if i < len(outs) {
				out = outs[i]
			}
			if out == nil {
				out = &Outcome{Err: "campaign: executor returned no outcome"}
			}
			out.Point = pt
			out.Label = pt.Label
			out.Key = pt.Key
			r.recordOutcome(pt, out)
			if r.cfg.Cache != nil && out.Err == "" && !out.CacheHit {
				r.cfg.Cache.Put(pt.Key, out)
			}
		}
		r.publishProgress()
	}

	r.finish(canceledErr, pending)
}

// markRunning flips a wave's points to running.
func (r *Run) markRunning(pts []*Point) {
	r.mu.Lock()
	for _, pt := range pts {
		r.states[pt.Index].State = StateRunning
	}
	r.mu.Unlock()
}

// recordOutcome makes one point terminal.
func (r *Run) recordOutcome(pt *Point, out *Outcome) {
	r.mu.Lock()
	st := &r.states[pt.Index]
	st.CacheHit = out.CacheHit
	st.Err = out.Err
	if out.Err != "" {
		st.State = StateFailed
	} else {
		st.State = StateDone
	}
	if out.CacheHit {
		r.hits++
	} else {
		r.sim++
	}
	r.outcomes[pt.Index] = out
	r.mu.Unlock()
}

// finish marks leftovers canceled, resolves the run error, builds the
// report and publishes the terminal event.
func (r *Run) finish(canceledErr error, leftover []*Point) {
	r.mu.Lock()
	for _, pt := range leftover {
		st := &r.states[pt.Index]
		st.State = StateCanceled
		if canceledErr != nil {
			st.Err = canceledErr.Error()
		}
	}
	err := canceledErr
	if err == nil {
		for i := range r.outcomes {
			if out := r.outcomes[i]; out != nil && out.Err != "" {
				err = fmt.Errorf("campaign: point %s: %s", out.Label, out.Err)
				break
			}
		}
	}
	r.err = err
	r.report = buildReport(r.spec, r.grid, r.points, r.outcomes)
	r.finished = true
	r.mu.Unlock()

	r.publishProgress()
	if r.cfg.Stream != nil {
		var msg string
		if err != nil {
			msg = err.Error()
		}
		r.cfg.Stream.Done(trace.Done{Error: msg})
	}
}
