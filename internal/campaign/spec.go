// Package campaign is the design-space-exploration engine: it expands
// a declarative parameter grid — programs (inline sources or built-in
// workloads) x ISAs x memory hierarchies x fuel budgets — into a
// deduplicated set of simulation points, runs them through a pluggable
// executor in bounded waves, caches per-point results by
// driver.Fingerprint-derived keys, and synthesizes a deterministic
// Pareto-ranked report (cycles vs issue width vs cache budget).
//
// The package is deliberately executor-agnostic: it never touches the
// simulator. The facade (kahrisma.Pool.RunCampaign) plugs in an
// executor over Pool.SubmitBatch; tests plug in fakes. This keeps the
// engine importable by the root package without a cycle and makes the
// orchestration logic (dedup, waves, caching, ranking) unit-testable
// without running guest code. See docs/campaigns.md.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/driver"
	"repro/internal/workloads"
)

// AutoISA is the ISA-axis value selecting automatic per-function ISA
// assignment (System.AutoTune): the executor profiles the program on
// the base instance, picks an ISA per hot function and simulates the
// mixed-ISA rebuild as this point.
const AutoISA = "auto"

// PaperMemory is the canonical label of the paper's memory hierarchy
// (the empty memory-spec string normalizes to it).
const PaperMemory = "paper"

// Spec is a declarative campaign: the cross product of its axes is the
// point grid. Axes left empty select a single default entry, so the
// minimal spec is one program plus one ISA.
type Spec struct {
	// Name labels the campaign in reports and progress events.
	Name string `json:"name,omitempty"`

	// Sources, when non-empty, adds one inline program (file name ->
	// text) to the program axis; Lang selects its language ("c",
	// default, or "asm").
	Sources map[string]string `json:"sources,omitempty"`
	Lang    string            `json:"lang,omitempty"`
	// Workloads adds built-in benchmark applications by name (cjpeg,
	// djpeg, fft, qsort, aes, dct) to the program axis.
	Workloads []string `json:"workloads,omitempty"`

	// ISAs is the instruction-set axis: instance names ("RISC",
	// "VLIW4", ...) and/or AutoISA for automatic per-function selection.
	ISAs []string `json:"isas"`

	// Memories is the memory-hierarchy axis: mem.ParseSpec strings
	// ("limit:1|cache:2K,4,32,3|mem:18"); "" or "paper" selects the
	// paper's hierarchy. Empty axis: the paper's hierarchy only.
	Memories []string `json:"memories,omitempty"`

	// Fuels is the instruction-budget axis; 0 keeps the executor's
	// default budget. Empty axis: the default budget only.
	Fuels []uint64 `json:"fuels,omitempty"`

	// Models are the cycle models every point runs ("ILP", "AIE",
	// "DOE", "RTL"); empty selects DOE, the paper's most accurate
	// approximation. The first entry ranks the report.
	Models []string `json:"models,omitempty"`

	// Profile attaches the microarchitectural profiler to every point;
	// the report then carries per-pair profile deltas between Pareto
	// points.
	Profile bool `json:"profile,omitempty"`

	// Preflight lints every unique build (the klint binary checks)
	// before simulating it; points whose executable carries
	// error-severity findings fail without running. Each build is
	// linted once per campaign regardless of how many memory or fuel
	// variants share it.
	Preflight bool `json:"preflight,omitempty"`

	// Wave bounds how many points are in flight at once (and how many
	// admission slots a serving layer claims per wave); <= 0 selects
	// DefaultWave.
	Wave int `json:"wave,omitempty"`

	// TimeoutMS bounds each point's wall-clock time; 0 leaves the
	// executor's cap in charge.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DefaultWave is the in-flight point bound when Spec.Wave is unset.
const DefaultWave = 8

// normalized returns the spec with defaulted axes and canonical memory
// labels, leaving the receiver untouched.
func (s Spec) normalized() Spec {
	if len(s.Memories) == 0 {
		s.Memories = []string{PaperMemory}
	} else {
		mems := make([]string, len(s.Memories))
		for i, m := range s.Memories {
			if m == "" {
				m = PaperMemory
			}
			mems[i] = m
		}
		s.Memories = mems
	}
	if len(s.Fuels) == 0 {
		s.Fuels = []uint64{0}
	}
	if len(s.Models) == 0 {
		s.Models = []string{"DOE"}
	}
	if s.Wave <= 0 {
		s.Wave = DefaultWave
	}
	return s
}

// Validate rejects specs that cannot expand into at least one point.
// ISA instance names are the executor's contract (custom models decide
// them); AutoISA and workload names are checked here.
func (s Spec) Validate() error {
	if len(s.Sources) == 0 && len(s.Workloads) == 0 {
		return fmt.Errorf("campaign: at least one program required (sources or workloads)")
	}
	switch s.Lang {
	case "", "c", "asm":
	default:
		return fmt.Errorf("campaign: lang: %q (want \"c\" or \"asm\")", s.Lang)
	}
	if len(s.ISAs) == 0 {
		return fmt.Errorf("campaign: isas: at least one entry required")
	}
	for _, isa := range s.ISAs {
		if isa == "" {
			return fmt.Errorf("campaign: isas: empty entry")
		}
	}
	for _, name := range s.Workloads {
		if workloads.ByName(name) == nil {
			return fmt.Errorf("campaign: workloads: unknown workload %q", name)
		}
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("campaign: timeout_ms: must be >= 0")
	}
	return nil
}

// GridSize returns the expanded (pre-dedup) point count.
func (s Spec) GridSize() int {
	n := s.normalized()
	programs := len(n.Workloads)
	if len(n.Sources) > 0 {
		programs++
	}
	return programs * len(n.ISAs) * len(n.Memories) * len(n.Fuels)
}

// PrimaryModel returns the model the report ranks by.
func (s Spec) PrimaryModel() string { return s.normalized().Models[0] }

// Point is one unique simulation point of an expanded grid.
type Point struct {
	// Index is the point's position among the campaign's unique points
	// (first-appearance order over the grid walk).
	Index int
	// Label identifies the point in reports:
	// "program/ISA[/mem=...][/fuel=N]".
	Label string
	// Program names the source program: a workload name or "inline".
	Program string
	// Sources are the resolved program sources in deterministic order
	// (the order driver.Fingerprint and the build both use).
	Sources []driver.Source
	// ISA is the target instance name, or AutoISA.
	ISA string
	// Memory is the canonical memory label: PaperMemory or a
	// mem.ParseSpec string.
	Memory string
	// Fuel is the instruction budget (0: executor default).
	Fuel uint64
	// Models and Profile mirror the spec (identical for every point).
	Models  []string
	Profile bool
	// Preflight mirrors the spec. It is deliberately NOT part of Key:
	// linting changes no simulation result, so a preflighted point may
	// serve (and be served by) cached results of unpreflighted runs.
	Preflight bool
	// Key is the point's content-addressed identity: a sha256 over the
	// build fingerprint (driver.Fingerprint of ISA + sources) and every
	// run parameter. Identical keys are identical simulations.
	Key string
	// Duplicates counts the extra grid cells that collapsed into this
	// point during dedup.
	Duplicates int
}

// key derives the point's content-addressed identity.
func (p *Point) key() string {
	build := driver.Fingerprint(p.ISA, p.Sources...)
	h := sha256.New()
	fmt.Fprintf(h, "build=%s\nmem=%s\nfuel=%d\nmodels=%s\nprofile=%t\n",
		build, p.Memory, p.Fuel, strings.Join(p.Models, ","), p.Profile)
	return hex.EncodeToString(h.Sum(nil))
}

// label renders the point's human identity; the default memory and
// fuel are elided so simple campaigns read as "program/ISA".
func (p *Point) label() string {
	var b strings.Builder
	b.WriteString(p.Program)
	b.WriteByte('/')
	b.WriteString(p.ISA)
	if p.Memory != PaperMemory {
		b.WriteString("/mem=")
		b.WriteString(p.Memory)
	}
	if p.Fuel > 0 {
		fmt.Fprintf(&b, "/fuel=%d", p.Fuel)
	}
	return b.String()
}

// program is one entry of the resolved program axis.
type program struct {
	name string
	srcs []driver.Source
}

// programs resolves the program axis in deterministic order: the
// inline sources first (name-sorted files), then the workloads in spec
// order.
func (s Spec) programs() []program {
	var out []program
	if len(s.Sources) > 0 {
		names := make([]string, 0, len(s.Sources))
		for n := range s.Sources {
			names = append(names, n)
		}
		// Name-sorted, matching the server's sourceList convention, so
		// inline programs fingerprint and build deterministically.
		sortStrings(names)
		srcs := make([]driver.Source, len(names))
		for i, n := range names {
			if s.Lang == "asm" {
				srcs[i] = driver.AsmSource(n, s.Sources[n])
			} else {
				srcs[i] = driver.CSource(n, s.Sources[n])
			}
		}
		out = append(out, program{name: "inline", srcs: srcs})
	}
	for _, name := range s.Workloads {
		w := workloads.ByName(name)
		if w != nil {
			out = append(out, program{name: w.Name, srcs: w.Sources})
		}
	}
	return out
}

// Expand validates the spec and walks the grid — programs x ISAs x
// memories x fuels, in that axis order — deduplicating points by Key.
// It returns the unique points in first-appearance order plus the
// pre-dedup grid size.
func (s Spec) Expand() ([]*Point, int, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	n := s.normalized()
	var points []*Point
	seen := map[string]*Point{}
	grid := 0
	for _, prog := range n.programs() {
		for _, isaName := range n.ISAs {
			for _, memSpec := range n.Memories {
				for _, fuel := range n.Fuels {
					grid++
					pt := &Point{
						Program:   prog.name,
						Sources:   prog.srcs,
						ISA:       isaName,
						Memory:    memSpec,
						Fuel:      fuel,
						Models:    n.Models,
						Profile:   n.Profile,
						Preflight: n.Preflight,
					}
					pt.Key = pt.key()
					if dup := seen[pt.Key]; dup != nil {
						dup.Duplicates++
						continue
					}
					pt.Index = len(points)
					pt.Label = pt.label()
					seen[pt.Key] = pt
					points = append(points, pt)
				}
			}
		}
	}
	return points, grid, nil
}

// sortStrings is sort.Strings without dragging the sort import into
// the hot spec path twice (report.go sorts too).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
