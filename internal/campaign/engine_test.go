package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// fakeExec deterministically "simulates" points: cycles derive from the
// point label, so results are stable across runs. It records wave sizes
// and total points executed, and can block or fail on demand.
type fakeExec struct {
	mu     sync.Mutex
	waves  []int
	ran    int
	failOn func(pt *Point) string // non-empty return = point error
	block  chan struct{}          // when set, RunWave waits per call
}

func (f *fakeExec) RunWave(ctx context.Context, pts []*Point) []*Outcome {
	f.mu.Lock()
	f.waves = append(f.waves, len(pts))
	f.ran += len(pts)
	f.mu.Unlock()
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			// In-flight points fail with the context error, like real
			// pool jobs interrupted mid-run.
			outs := make([]*Outcome, len(pts))
			for i := range pts {
				outs[i] = &Outcome{Err: ctx.Err().Error()}
			}
			return outs
		}
	}
	outs := make([]*Outcome, len(pts))
	for i, pt := range pts {
		if f.failOn != nil {
			if msg := f.failOn(pt); msg != "" {
				outs[i] = &Outcome{Err: msg}
				continue
			}
		}
		outs[i] = fakeOutcome(pt)
	}
	return outs
}

// fakeOutcome derives a deterministic result from the point identity.
func fakeOutcome(pt *Point) *Outcome {
	var h uint64
	for _, c := range pt.Label {
		h = h*31 + uint64(c)
	}
	width := 1
	if strings.HasPrefix(pt.ISA, "VLIW") {
		width = int(pt.ISA[4] - '0')
	}
	cycles := map[string]uint64{}
	for _, m := range pt.Models {
		cycles[m] = 1000 + h%997
	}
	return &Outcome{
		Instructions: 100 + h%13,
		Operations:   200 + h%13,
		Cycles:       cycles,
		OPC:          map[string]float64{pt.Models[0]: 1.5},
		IssueWidth:   width,
	}
}

func specN(isas ...string) Spec {
	return Spec{
		Name:    "t",
		Sources: map[string]string{"main.c": "int main() { return 0; }"},
		ISAs:    isas,
	}
}

func TestExpandDedupAndGrid(t *testing.T) {
	// Duplicate ISA entry and an alias memory collapse: ISAs
	// {RISC,RISC,VLIW4} x memories {"", "paper"} is a 6-cell grid whose
	// cells pair off into 2 unique points (4 RISC cells, 2 VLIW4 cells).
	s := specN("RISC", "RISC", "VLIW4")
	s.Memories = []string{"", "paper"}
	pts, grid, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if grid != 6 {
		t.Fatalf("grid = %d", grid)
	}
	if len(pts) != 2 {
		t.Fatalf("unique points = %d: %+v", len(pts), pts)
	}
	if pts[0].Duplicates != 3 || pts[1].Duplicates != 1 {
		t.Fatalf("duplicate counts: %d/%d", pts[0].Duplicates, pts[1].Duplicates)
	}
	if pts[0].Label != "inline/RISC" || pts[1].Label != "inline/VLIW4" {
		t.Fatalf("labels: %q %q", pts[0].Label, pts[1].Label)
	}
	if s.GridSize() != 6 {
		t.Fatalf("GridSize = %d", s.GridSize())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Spec{
		{ISAs: []string{"RISC"}},                 // no program
		{Sources: map[string]string{"a.c": "x"}}, // no ISA
		{Sources: map[string]string{"a.c": "x"}, ISAs: []string{""}},
		{Workloads: []string{"nope"}, ISAs: []string{"RISC"}},
		{Sources: map[string]string{"a.c": "x"}, ISAs: []string{"RISC"}, Lang: "rust"},
		{Sources: map[string]string{"a.c": "x"}, ISAs: []string{"RISC"}, TimeoutMS: -1},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunWavesAndCache(t *testing.T) {
	exec := &fakeExec{}
	cache := NewCache(0)
	s := specN("RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8")
	s.Wave = 2
	run, err := Start(context.Background(), s, Config{Exec: exec, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if exec.ran != 5 {
		t.Fatalf("simulated %d points", exec.ran)
	}
	if len(exec.waves) != 3 || exec.waves[0] != 2 || exec.waves[2] != 1 {
		t.Fatalf("waves: %v", exec.waves)
	}
	st := run.Status()
	if st.Done != 5 || st.Failed != 0 || st.Simulated != 5 || st.CacheHits != 0 || !st.Finished {
		t.Fatalf("status: %+v", st)
	}

	// Second identical campaign: every point served from cache, nothing
	// simulated, and the ranked report is byte-identical.
	rep1, _ := json.Marshal(run.Report())
	exec2 := &fakeExec{}
	run2, err := Start(context.Background(), s, Config{Exec: exec2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := run2.Wait(); err != nil {
		t.Fatal(err)
	}
	if exec2.ran != 0 {
		t.Fatalf("second run simulated %d points", exec2.ran)
	}
	st2 := run2.Status()
	if st2.CacheHits != 5 || st2.Simulated != 0 {
		t.Fatalf("second status: %+v", st2)
	}
	cs := cache.Stats()
	if cs.Hits != 5 || cs.Size != 5 {
		t.Fatalf("cache stats: %+v", cs)
	}
	rep2, _ := json.Marshal(run2.Report())
	if string(rep1) != string(rep2) {
		t.Fatalf("report not deterministic across cache path:\n%s\n%s", rep1, rep2)
	}
	for _, ps := range run2.Points() {
		if !ps.CacheHit || ps.State != StateDone {
			t.Fatalf("point not cache-served: %+v", ps)
		}
	}
}

func TestRunDuplicatePointsSimulateOnce(t *testing.T) {
	exec := &fakeExec{}
	s := specN("RISC", "VLIW4", "RISC", "RISC") // grid 4, unique 2
	run, err := Start(context.Background(), s, Config{Exec: exec, Cache: NewCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if run.GridSize() != 4 || run.Len() != 2 {
		t.Fatalf("grid/unique: %d/%d", run.GridSize(), run.Len())
	}
	if exec.ran != 2 {
		t.Fatalf("simulated %d < grid 4 expected 2", exec.ran)
	}
	rep := run.Report()
	if rep.Deduped != 2 {
		t.Fatalf("deduped = %d", rep.Deduped)
	}
}

func TestRunCancelLeavesCompletedPointsFetchable(t *testing.T) {
	exec := &fakeExec{block: make(chan struct{}, 1)}
	exec.block <- struct{}{} // first wave passes immediately
	s := specN("RISC", "VLIW2", "VLIW4", "VLIW6")
	s.Wave = 1
	ctx, cancel := context.WithCancel(context.Background())
	run, err := Start(ctx, s, Config{Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first wave to land, then cancel while the second
	// blocks: its in-flight point fails, the rest are never started.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := run.Status()
		if st.Done >= 1 && st.Running >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second wave never started: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := run.Wait(); err == nil {
		t.Fatal("expected cancellation error")
	}
	st := run.Status()
	if st.Done != 2 || st.Failed != 1 || st.Canceled != 2 {
		t.Fatalf("status after cancel: %+v", st)
	}
	outs := run.Outcomes()
	if outs[0] == nil || outs[0].Err != "" {
		t.Fatalf("completed outcome not fetchable after cancel: %+v", outs[0])
	}
	if outs[2] != nil || outs[3] != nil {
		t.Fatal("never-started points should have nil outcomes")
	}
	rep := run.Report()
	if rep == nil || rep.Succeeded != 1 || rep.Failed != 1 || rep.Canceled != 2 {
		t.Fatalf("report after cancel: %+v", rep)
	}
}

func TestRunWaveGateAcquireFailureCancels(t *testing.T) {
	exec := &fakeExec{}
	gateErr := fmt.Errorf("draining")
	acquired, released := 0, 0
	s := specN("RISC", "VLIW2", "VLIW4")
	s.Wave = 2
	run, err := Start(context.Background(), s, Config{
		Exec: exec,
		AcquireWave: func(ctx context.Context, n int) error {
			if acquired > 0 {
				return gateErr
			}
			acquired += n
			return nil
		},
		ReleaseWave: func(n int) { released += n },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != gateErr {
		t.Fatalf("err = %v", err)
	}
	if acquired != 2 || released != 2 {
		t.Fatalf("gate accounting: acquired %d released %d", acquired, released)
	}
	st := run.Status()
	if st.Done != 2 || st.Canceled != 1 {
		t.Fatalf("status: %+v", st)
	}
}

func TestRunPublishesProgressAndDone(t *testing.T) {
	stream := trace.NewStreamer(64)
	exec := &fakeExec{}
	run, err := Start(context.Background(), specN("RISC", "VLIW4"), Config{Exec: exec, Stream: stream})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	sub := stream.Subscribe(0)
	defer sub.Cancel()
	var progress int
	var final *trace.CampaignProgress
	var done bool
	for {
		batch, _, err := sub.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		for _, ev := range batch {
			switch ev.Type {
			case trace.EventCampaignProgress:
				progress++
				final = ev.Campaign
			case trace.EventDone:
				done = true
			}
		}
	}
	if progress < 2 || !done {
		t.Fatalf("events: %d progress, done=%v", progress, done)
	}
	if final.Done != 2 || final.Points != 2 || final.Running != 0 {
		t.Fatalf("final progress: %+v", final)
	}
}

func TestRunFailedPointSetsErr(t *testing.T) {
	exec := &fakeExec{failOn: func(pt *Point) string {
		if pt.ISA == "VLIW4" {
			return "guest fault"
		}
		return ""
	}}
	run, err := Start(context.Background(), specN("RISC", "VLIW4", "VLIW8"), Config{Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	err = run.Wait()
	if err == nil || !strings.Contains(err.Error(), "guest fault") {
		t.Fatalf("err = %v", err)
	}
	st := run.Status()
	if st.Failed != 1 || st.Done != 3 {
		t.Fatalf("status: %+v", st)
	}
	rep := run.Report()
	if rep.Failed != 1 || rep.Succeeded != 2 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", &Outcome{Instructions: 1})
	c.Put("b", &Outcome{Instructions: 2})
	if c.Get("a") == nil { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", &Outcome{Instructions: 3})
	if c.Get("b") != nil {
		t.Fatal("b should have been evicted")
	}
	if c.Get("a") == nil || c.Get("c") == nil {
		t.Fatal("a/c should survive")
	}
	st := c.Stats()
	if st.Size != 2 || st.Cap != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// Cached outcomes come back marked and detached.
	out := c.Get("a")
	if !out.CacheHit || out.Point != nil {
		t.Fatalf("cached outcome: %+v", out)
	}
}

func TestFigure4SpecShape(t *testing.T) {
	s := Figure4Spec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.GridSize() != 30 {
		t.Fatalf("figure4 grid = %d", s.GridSize())
	}
	if s.PrimaryModel() != "DOE" {
		t.Fatalf("primary model = %q", s.PrimaryModel())
	}
}
