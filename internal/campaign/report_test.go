package campaign

import (
	"context"
	"strings"
	"testing"

	"repro/internal/prof"
)

// reportFromOutcomes runs buildReport over hand-made outcomes.
func reportFromOutcomes(t *testing.T, s Spec, make func(pt *Point) *Outcome) *Report {
	t.Helper()
	pts, grid, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	outs := make2(pts, make)
	return buildReport(s.normalized(), grid, pts, outs)
}

func make2(pts []*Point, f func(pt *Point) *Outcome) []*Outcome {
	outs := make([]*Outcome, len(pts))
	for i, pt := range pts {
		outs[i] = f(pt)
		if outs[i] != nil {
			outs[i].Point = pt
			outs[i].Label = pt.Label
			outs[i].Key = pt.Key
		}
	}
	return outs
}

func TestReportRankingAndPareto(t *testing.T) {
	s := specN("RISC", "VLIW2", "VLIW4")
	s.Memories = []string{"paper", "limit:1|cache:1K,2,16,3|mem:18"}
	cycles := map[string]uint64{
		"inline/RISC":  9000,
		"inline/VLIW2": 6000,
		"inline/VLIW4": 4000,
		"inline/RISC/mem=limit:1|cache:1K,2,16,3|mem:18":  9500,
		"inline/VLIW2/mem=limit:1|cache:1K,2,16,3|mem:18": 6500,
		"inline/VLIW4/mem=limit:1|cache:1K,2,16,3|mem:18": 4200,
	}
	width := map[string]int{"RISC": 1, "VLIW2": 2, "VLIW4": 4}
	rep := reportFromOutcomes(t, s, func(pt *Point) *Outcome {
		return &Outcome{
			Cycles:     map[string]uint64{"DOE": cycles[pt.label()]},
			IssueWidth: width[pt.ISA],
		}
	})
	if rep.Succeeded != 6 || rep.Failed != 0 {
		t.Fatalf("partition: %+v", rep)
	}
	// Ranked by DOE cycles ascending.
	if rep.Rows[0].Label != "inline/VLIW4" || rep.Rows[0].Rank != 1 {
		t.Fatalf("rank 1: %+v", rep.Rows[0])
	}
	if rep.Rows[5].PrimaryCycles != 9500 {
		t.Fatalf("rank 6: %+v", rep.Rows[5])
	}
	// Pareto: paper memory budget (2K+256K) dominates small-cache rows
	// only if cheaper on cycles too; the small-cache RISC point has the
	// smallest budget, so it survives despite its cycle count.
	small := "inline/RISC/mem=limit:1|cache:1K,2,16,3|mem:18"
	var smallRow, paperRISC *Row
	for i := range rep.Rows {
		switch rep.Rows[i].Label {
		case small:
			smallRow = &rep.Rows[i]
		case "inline/RISC":
			paperRISC = &rep.Rows[i]
		}
	}
	if smallRow.CacheBudget != 1024 {
		t.Fatalf("small budget = %d", smallRow.CacheBudget)
	}
	if paperRISC.CacheBudget != 2*1024+256*1024 {
		t.Fatalf("paper budget = %d", paperRISC.CacheBudget)
	}
	if !smallRow.Pareto {
		t.Fatalf("smallest-budget row should be on the frontier: %+v", smallRow)
	}
	// paper RISC: dominated by small RISC? cycles 9000 < 9500 no;
	// dominated by paper VLIW2? width 2 > 1, no. It is non-dominated on
	// width among paper rows but small-cache VLIW rows have smaller
	// budget... verify a known dominated row instead: paper VLIW2
	// (6000 cyc, w2, 264K) vs small VLIW4 (4200 cyc, w4, 1K): neither
	// dominates (width). But small VLIW2 (6500, w2, 1K) vs paper VLIW2
	// (6000, w2, 264K): neither dominates (cycles vs budget). So the
	// whole frontier here is every row except ones strictly worse on
	// all axes: paper RISC (9000, w1, 264K) vs small RISC (9500, w1,
	// 1K): neither dominates. All 6 rows are on the frontier.
	for i := range rep.Rows {
		if !rep.Rows[i].Pareto {
			t.Fatalf("unexpected dominated row: %+v", rep.Rows[i])
		}
	}
}

func TestReportDominatedRowFlagged(t *testing.T) {
	s := specN("RISC", "VLIW2")
	rep := reportFromOutcomes(t, s, func(pt *Point) *Outcome {
		// Same memory budget; VLIW2 is wider AND slower: strictly
		// dominated by RISC.
		c := uint64(5000)
		w := 1
		if pt.ISA == "VLIW2" {
			c, w = 6000, 2
		}
		return &Outcome{Cycles: map[string]uint64{"DOE": c}, IssueWidth: w}
	})
	var risc, vliw *Row
	for i := range rep.Rows {
		if rep.Rows[i].ISA == "RISC" {
			risc = &rep.Rows[i]
		} else {
			vliw = &rep.Rows[i]
		}
	}
	if !risc.Pareto || vliw.Pareto {
		t.Fatalf("dominance: risc=%v vliw=%v", risc.Pareto, vliw.Pareto)
	}
}

func TestReportFailedRowsSortAfterSuccess(t *testing.T) {
	s := specN("RISC", "VLIW2", "VLIW4")
	rep := reportFromOutcomes(t, s, func(pt *Point) *Outcome {
		if pt.ISA == "RISC" {
			return &Outcome{Err: "boom"}
		}
		return fakeOutcome(pt)
	})
	if rep.Failed != 1 || rep.Succeeded != 2 {
		t.Fatalf("partition: %+v", rep)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.State != StateFailed || last.Err != "boom" || last.Rank != 0 || last.Pareto {
		t.Fatalf("failed row: %+v", last)
	}
}

func TestReportParetoDeltasFromProfiles(t *testing.T) {
	s := specN("RISC", "VLIW4")
	s.Profile = true
	mkProfile := func(cycles uint64) *prof.Report {
		p := prof.NewProfile()
		p.Cycles = cycles
		p.PCs[0x100] = &prof.PCStats{Count: 10, Ops: 10, Cycles: cycles}
		p.Instructions, p.Operations = 10, 10
		return p.Report(nil, 0)
	}
	rep := reportFromOutcomes(t, s, func(pt *Point) *Outcome {
		if pt.ISA == "RISC" {
			return &Outcome{Cycles: map[string]uint64{"DOE": 9000}, IssueWidth: 1, Profile: mkProfile(9000)}
		}
		return &Outcome{Cycles: map[string]uint64{"DOE": 4000}, IssueWidth: 4, Profile: mkProfile(4000)}
	})
	if len(rep.Deltas) != 1 {
		t.Fatalf("deltas: %+v", rep.Deltas)
	}
	d := rep.Deltas[0]
	// Rank order: VLIW4 (4000) first, RISC second.
	if d.A != "inline/VLIW4" || d.B != "inline/RISC" {
		t.Fatalf("delta pair: %s -> %s", d.A, d.B)
	}
	if d.Diff.CyclesDelta != 5000 {
		t.Fatalf("delta cycles: %d", d.Diff.CyclesDelta)
	}
}

func TestReportRenderMentionsKeyColumns(t *testing.T) {
	exec := &fakeExec{}
	run, err := Start(context.Background(), specN("RISC", "VLIW4"), Config{Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	text := run.Report().Render()
	for _, want := range []string{"RANK", "CYCLES(DOE)", "PARETO", "inline/RISC", "inline/VLIW4", "2 grid points"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestCacheBudget(t *testing.T) {
	if b := cacheBudget(PaperMemory); b != 2*1024+256*1024 {
		t.Fatalf("paper budget = %d", b)
	}
	if b := cacheBudget("limit:1|cache:4K,4,32,3|mem:18"); b != 4096 {
		t.Fatalf("single-cache budget = %d", b)
	}
	if b := cacheBudget("mem:7"); b != 0 {
		t.Fatalf("flat budget = %d", b)
	}
	if b := cacheBudget("not a spec"); b != 0 {
		t.Fatalf("bad spec budget = %d", b)
	}
}
