package campaign

// vliwNames is the paper's issue-width sweep (Figure 4). Kept as a
// literal so this package stays importable from the root facade;
// a root-package test cross-checks it against experiments.VLIWNames.
var vliwNames = []string{"RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8"}

// Figure4Spec is the canned campaign reproducing the paper's Figure 4
// sweep: every built-in workload across the RISC..VLIW8 issue widths
// on the paper's memory hierarchy, DOE-ranked. It is the
// internal/experiments VLIW sweep re-expressed as a campaign, so the
// one-off experiment harness and the campaign engine measure the same
// design space.
func Figure4Spec() Spec {
	return Spec{
		Name:      "figure4",
		Workloads: []string{"cjpeg", "djpeg", "fft", "qsort", "aes", "dct"},
		ISAs:      append([]string(nil), vliwNames...),
		Models:    []string{"DOE"},
	}
}
