package campaign

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/mem"
	"repro/internal/prof"
)

// Row is one ranked point of a campaign report.
type Row struct {
	// Rank is the 1-based position among successful points (cheapest
	// primary-model cycle count first); failed and canceled points carry
	// rank 0 and sort after every success.
	Rank    int    `json:"rank,omitempty"`
	Label   string `json:"label"`
	Program string `json:"program"`
	ISA     string `json:"isa"`
	// ResolvedISA spells out an AutoISA point's per-function assignment.
	ResolvedISA string `json:"resolved_isa,omitempty"`
	// IssueWidth and CacheBudget are the Pareto cost axes next to
	// cycles: the widest issue width the point decodes for, and the
	// summed L1+L2 capacity of its memory hierarchy in bytes (0 for
	// flat memories).
	IssueWidth  int    `json:"issue_width,omitempty"`
	Memory      string `json:"memory"`
	CacheBudget uint64 `json:"cache_budget"`
	Fuel        uint64 `json:"fuel,omitempty"`

	Instructions uint64 `json:"instructions,omitempty"`
	// PrimaryCycles is the primary model's cycle count (the ranking
	// key); Cycles carries every activated model.
	PrimaryCycles uint64             `json:"primary_cycles,omitempty"`
	Cycles        map[string]uint64  `json:"cycles,omitempty"`
	OPC           map[string]float64 `json:"opc,omitempty"`
	L1MissRate    float64            `json:"l1_miss_rate,omitempty"`

	// Pareto marks the point as non-dominated over (PrimaryCycles,
	// IssueWidth, CacheBudget), all minimized.
	Pareto bool `json:"pareto,omitempty"`

	// Err carries the point's failure; State distinguishes failed from
	// canceled rows.
	State string `json:"state,omitempty"`
	Err   string `json:"error,omitempty"`
}

// PairDelta compares two adjacent Pareto-frontier points by their
// profile reports (present only for profiled campaigns).
type PairDelta struct {
	A    string           `json:"a"`
	B    string           `json:"b"`
	Diff *prof.ReportDiff `json:"diff"`
}

// Report is the deterministic ranked synthesis of a campaign. It
// carries no wall-clock or cache/scheduling-dependent fields, so the
// same spec over the same programs marshals to identical bytes run
// after run — cache hits, wave sizing and cancellation timing change
// Status, never Report rows for completed points.
type Report struct {
	Name         string `json:"name,omitempty"`
	PrimaryModel string `json:"primary_model"`
	// GridPoints is the pre-dedup grid size; Points the unique points;
	// Deduped the collapsed duplicates (GridPoints - Points).
	GridPoints int `json:"grid_points"`
	Points     int `json:"points"`
	Deduped    int `json:"deduped"`
	// Succeeded/Failed/Canceled partition the unique points.
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`

	Rows []Row `json:"rows"`

	// Deltas compare adjacent Pareto points (rank order) when profiling
	// was on: what the extra hardware budget bought, PC by PC.
	Deltas []PairDelta `json:"deltas,omitempty"`
}

// cacheBudget sums the L1+L2 capacity of a canonical memory label.
// Unparseable or flat specs cost zero (the executor already failed the
// point if the spec was truly invalid).
func cacheBudget(label string) uint64 {
	var h *mem.Hierarchy
	if label == PaperMemory {
		h = mem.Paper()
	} else {
		var err error
		h, err = mem.ParseSpec(label)
		if err != nil {
			return 0
		}
	}
	var b uint64
	if h.L1 != nil {
		b += uint64(h.L1.SizeBytes)
	}
	if h.L2 != nil {
		b += uint64(h.L2.SizeBytes)
	}
	return b
}

// dominates reports whether row a Pareto-dominates row b over the
// minimized axes (PrimaryCycles, IssueWidth, CacheBudget).
func dominates(a, b *Row) bool {
	if a.PrimaryCycles > b.PrimaryCycles || a.IssueWidth > b.IssueWidth || a.CacheBudget > b.CacheBudget {
		return false
	}
	return a.PrimaryCycles < b.PrimaryCycles || a.IssueWidth < b.IssueWidth || a.CacheBudget < b.CacheBudget
}

// buildReport synthesizes the ranked report from terminal outcomes.
// Points without an outcome (canceled) become canceled rows.
func buildReport(spec Spec, grid int, points []*Point, outcomes []*Outcome) *Report {
	primary := spec.Models[0]
	rep := &Report{
		Name:         spec.Name,
		PrimaryModel: primary,
		GridPoints:   grid,
		Points:       len(points),
		Deduped:      grid - len(points),
	}
	var ok, failed, canceled []Row
	for i, pt := range points {
		row := Row{
			Label:       pt.Label,
			Program:     pt.Program,
			ISA:         pt.ISA,
			Memory:      pt.Memory,
			CacheBudget: cacheBudget(pt.Memory),
			Fuel:        pt.Fuel,
		}
		out := outcomes[i]
		switch {
		case out == nil:
			row.State = StateCanceled
			canceled = append(canceled, row)
		case out.Err != "":
			row.State = StateFailed
			row.Err = out.Err
			failed = append(failed, row)
		default:
			row.State = StateDone
			row.ResolvedISA = out.ResolvedISA
			row.IssueWidth = out.IssueWidth
			row.Instructions = out.Instructions
			row.PrimaryCycles = out.Cycles[primary]
			row.Cycles = out.Cycles
			row.OPC = out.OPC
			row.L1MissRate = out.L1MissRate
			ok = append(ok, row)
		}
	}
	rep.Succeeded, rep.Failed, rep.Canceled = len(ok), len(failed), len(canceled)

	sort.Slice(ok, func(i, j int) bool {
		if ok[i].PrimaryCycles != ok[j].PrimaryCycles {
			return ok[i].PrimaryCycles < ok[j].PrimaryCycles
		}
		return ok[i].Label < ok[j].Label
	})
	for i := range ok {
		ok[i].Rank = i + 1
	}
	// Pareto frontier over the successful rows.
	for i := range ok {
		flag := true
		for j := range ok {
			if i != j && dominates(&ok[j], &ok[i]) {
				flag = false
				break
			}
		}
		ok[i].Pareto = flag
	}
	byLabel := func(rows []Row) {
		sort.Slice(rows, func(i, j int) bool { return rows[i].Label < rows[j].Label })
	}
	byLabel(failed)
	byLabel(canceled)
	rep.Rows = append(append(ok, failed...), canceled...)

	if spec.Profile {
		rep.Deltas = paretoDeltas(rep.Rows, points, outcomes)
	}
	return rep
}

// paretoDeltas diffs adjacent Pareto points in rank order: each delta
// reads as "what changed going from the cheaper point to this one".
func paretoDeltas(rows []Row, points []*Point, outcomes []*Outcome) []PairDelta {
	profiles := map[string]*prof.Report{}
	for i, pt := range points {
		if out := outcomes[i]; out != nil && out.Profile != nil {
			profiles[pt.Label] = out.Profile
		}
	}
	var frontier []*Row
	for i := range rows {
		if rows[i].Pareto {
			frontier = append(frontier, &rows[i])
		}
	}
	var deltas []PairDelta
	for i := 1; i < len(frontier); i++ {
		a, b := frontier[i-1], frontier[i]
		pa, pb := profiles[a.Label], profiles[b.Label]
		if pa == nil || pb == nil {
			continue
		}
		deltas = append(deltas, PairDelta{
			A: a.Label, B: b.Label, Diff: prof.DiffReports(pa, pb, 16),
		})
	}
	return deltas
}

// Render formats the report as a ranked text table.
func (r *Report) Render() string {
	var b strings.Builder
	title := r.Name
	if title == "" {
		title = "campaign"
	}
	fmt.Fprintf(&b, "%s: %d grid points, %d unique (%d deduped), model %s\n",
		title, r.GridPoints, r.Points, r.Deduped, r.PrimaryModel)
	fmt.Fprintf(&b, "%d succeeded, %d failed, %d canceled\n\n", r.Succeeded, r.Failed, r.Canceled)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "RANK\tPOINT\tWIDTH\tCACHE-B\tINSTR\tCYCLES(%s)\tOPC\tL1-MISS\tPARETO\n", r.PrimaryModel)
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.State != StateDone {
			fmt.Fprintf(tw, "-\t%s\t\t\t\t%s\t\t\t\n", row.Label, row.State)
			continue
		}
		pareto := ""
		if row.Pareto {
			pareto = "*"
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%.3f\t%.4f\t%s\n",
			row.Rank, row.Label, row.IssueWidth, row.CacheBudget,
			row.Instructions, row.PrimaryCycles, row.OPC[r.PrimaryModel],
			row.L1MissRate, pareto)
	}
	tw.Flush()
	for i := range r.Deltas {
		d := &r.Deltas[i]
		fmt.Fprintf(&b, "\npareto delta %s -> %s: cycles %+d, instructions %+d\n",
			d.A, d.B, d.Diff.CyclesDelta, d.Diff.InstructionsDelta)
	}
	return b.String()
}
