package workloads

import "repro/internal/driver"

const qsortN = 512

// qsortSrc is a recursive Quicksort over pseudo-random data — one of
// the paper's low-ILP applications (control dominated, recursive).
const qsortSrc = `
int data[512];
uint seed = 99;

int nextval() {
    seed = seed * 1103515245 + 12345;
    return (int)(seed >> 8) % 10000;
}

void quicksort(int* a, int lo, int hi) {
    if (lo >= hi) return;
    int pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            int t = a[i];
            a[i] = a[j];
            a[j] = t;
            i++;
            j--;
        }
    }
    quicksort(a, lo, j);
    quicksort(a, i, hi);
}

int main() {
    for (int i = 0; i < 512; i++) data[i] = nextval();
    quicksort(data, 0, 511);
    for (int i = 1; i < 512; i++) {
        if (data[i-1] > data[i]) {
            puts("NOT SORTED");
            return 1;
        }
    }
    uint sum = 0;
    for (int i = 0; i < 512; i++) sum = sum * 31 + (uint)(data[i] * (i + 1));
    printf("%x\n", sum);
    return 0;
}
`

func qsortReference() string {
	rng := lcg{seed: 99}
	var data [qsortN]int32
	for i := range data {
		data[i] = int32(rng.next()>>8) % 10000
	}
	var qs func(lo, hi int32)
	qs = func(lo, hi int32) {
		if lo >= hi {
			return
		}
		pivot := data[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for data[i] < pivot {
				i++
			}
			for data[j] > pivot {
				j--
			}
			if i <= j {
				data[i], data[j] = data[j], data[i]
				i++
				j--
			}
		}
		qs(lo, j)
		qs(i, hi)
	}
	qs(0, qsortN-1)
	sum := uint32(0)
	for i, v := range data {
		sum = sum*31 + uint32(v*int32(i+1))
	}
	return checksumLine(sum)
}

// Qsort is the recursive Quicksort workload (Sec. VII).
func Qsort() *Workload {
	return &Workload{
		Name:        "qsort",
		Description: "recursive Quicksort over 512 pseudo-random keys",
		Sources:     []driver.Source{driver.CSource("qsort.c", qsortSrc)},
		Expected:    qsortReference(),
	}
}
