package workloads

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/driver"
)

const aesBlocks = 96

// aesSbox computes the AES S-box from first principles (multiplicative
// inverse in GF(2^8) followed by the affine transform).
func aesSbox() [256]byte {
	var sbox [256]byte
	// Build inverses via exp/log tables over generator 3.
	var exp [256]byte
	var log [256]byte
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		log[x] = byte(i)
		// multiply x by 3 in GF(2^8)
		x ^= byte(uint16(x)<<1) ^ byte((uint16(x)>>7)*0x1B)
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return exp[(255-int(log[b]))%255]
	}
	for i := 0; i < 256; i++ {
		v := inv(byte(i))
		r := v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63
		sbox[i] = r
	}
	return sbox
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

func xtime(b byte) byte { return byte(uint16(b)<<1) ^ byte((uint16(b)>>7)*0x1B) }

// aesTables returns the four encryption T-tables (4 KiB total — larger
// than the 2 KiB L1, giving the cache-miss behaviour the paper reports
// for AES) plus the S-box as 32-bit entries.
func aesTables() (te [4][256]uint32, sbox32 [256]uint32) {
	sb := aesSbox()
	for i := 0; i < 256; i++ {
		s := sb[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te[0][i] = w
		te[1][i] = w>>8 | w<<24
		te[2][i] = w>>16 | w<<16
		te[3][i] = w>>24 | w<<8
		sbox32[i] = uint32(sb[i])
	}
	return te, sbox32
}

func formatUTable(name string, vals []uint32) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "uint %s[%d] = {", name, len(vals))
	for i, v := range vals {
		if i%8 == 0 {
			sb.WriteString("\n    ")
		}
		fmt.Fprintf(&sb, "0x%x, ", v)
	}
	sb.WriteString("\n};\n")
	return sb.String()
}

// aesKey is the fixed AES-128 key (words, big-endian byte order).
var aesKey = [4]uint32{0x2B7E1516, 0x28AED2A6, 0xABF71588, 0x09CF4F3C}

// aesSource builds the MiniC program: AES-128 key expansion plus a
// fully-unrolled 10-round encryption over T-tables (Sec. VII:
// "a fully-unrolled Advanced Encryption Standard implementation").
func aesSource() string {
	te, sbox := aesTables()
	var sb strings.Builder
	sb.WriteString("// AES-128: two-T-table implementation (te0/te2 plus byte\n")
	sb.WriteString("// rotations) with fully unrolled rounds. The 2 KiB tables, the\n")
	sb.WriteString("// S-box and the round keys exceed the 2 KiB L1 together, so the\n")
	sb.WriteString("// working set does not fit — the cache-miss-limited behaviour the\n")
	sb.WriteString("// paper reports for AES (Sec. VII-B).\n")
	sb.WriteString(formatUTable("te0", te[0][:]))
	sb.WriteString(formatUTable("te2", te[2][:]))
	sb.WriteString(formatUTable("sbox", sbox[:]))
	sb.WriteString(`
uint rk[44];
uint rcon[10] = {0x01000000, 0x02000000, 0x04000000, 0x08000000, 0x10000000,
                 0x20000000, 0x40000000, 0x80000000, 0x1b000000, 0x36000000};
uint ct[4];

void expandkey(uint k0, uint k1, uint k2, uint k3) {
    rk[0] = k0; rk[1] = k1; rk[2] = k2; rk[3] = k3;
    for (int i = 4; i < 44; i++) {
        uint t = rk[i-1];
        if (i % 4 == 0) {
            uint r = (t << 8) | (t >> 24);
            t = (sbox[(r >> 24) & 255] << 24) | (sbox[(r >> 16) & 255] << 16)
              | (sbox[(r >> 8) & 255] << 8) | sbox[r & 255];
            t = t ^ rcon[i/4 - 1];
        }
        rk[i] = rk[i-4] ^ t;
    }
}

void encrypt(uint p0, uint p1, uint p2, uint p3) {
    uint s0 = p0 ^ rk[0];
    uint s1 = p1 ^ rk[1];
    uint s2 = p2 ^ rk[2];
    uint s3 = p3 ^ rk[3];
    uint t0; uint t1; uint t2; uint t3;
`)
	// Nine unrolled middle rounds, alternating s->t and t->s. The
	// te1/te2/te3 columns are te0 rotated right by 8/16/24 bits.
	for r := 1; r <= 9; r++ {
		in, out := "s", "t"
		if r%2 == 0 {
			in, out = "t", "s"
		}
		for i := 0; i < 4; i++ {
			fmt.Fprintf(&sb, "    {\n")
			fmt.Fprintf(&sb, "        uint w0 = te0[(%s%d >> 24) & 255];\n", in, i)
			fmt.Fprintf(&sb, "        uint w1 = te0[(%s%d >> 16) & 255];\n", in, (i+1)%4)
			fmt.Fprintf(&sb, "        uint w2 = te2[(%s%d >> 8) & 255];\n", in, (i+2)%4)
			fmt.Fprintf(&sb, "        uint w3 = te2[%s%d & 255];\n", in, (i+3)%4)
			fmt.Fprintf(&sb, "        w1 = (w1 >> 8) | (w1 << 24);\n")
			fmt.Fprintf(&sb, "        w3 = (w3 >> 8) | (w3 << 24);\n")
			fmt.Fprintf(&sb, "        %s%d = w0 ^ w1 ^ w2 ^ w3 ^ rk[%d];\n", out, i, r*4+i)
			fmt.Fprintf(&sb, "    }\n")
		}
		sb.WriteString("\n")
	}
	// Final round (input is t after 9 rounds) using the S-box.
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb,
			"    s%d = (sbox[(t%d >> 24) & 255] << 24) | (sbox[(t%d >> 16) & 255] << 16) | (sbox[(t%d >> 8) & 255] << 8) | sbox[t%d & 255];\n",
			i, i, (i+1)%4, (i+2)%4, (i+3)%4)
		fmt.Fprintf(&sb, "    s%d = s%d ^ rk[%d];\n", i, i, 40+i)
	}
	fmt.Fprintf(&sb, `
    ct[0] = s0; ct[1] = s1; ct[2] = s2; ct[3] = s3;
}

int main() {
    expandkey(0x%x, 0x%x, 0x%x, 0x%x);
    uint sum = 0;
    for (int b = 0; b < %d; b++) {
        uint u = (uint)b;
        encrypt(u, u * 0x9E3779B9, u ^ 0xDEADBEEF, u + 0x12345678);
        sum = (sum * 31) ^ ct[0] ^ (ct[1] << 1) ^ (ct[2] << 2) ^ (ct[3] << 3);
    }
    printf("%%x\n", sum);
    return 0;
}
`, aesKey[0], aesKey[1], aesKey[2], aesKey[3], aesBlocks)
	return sb.String()
}

// aesReference computes the expected checksum using the Go standard
// library's AES — an independent implementation, so a matching checksum
// validates that the MiniC program implements real AES-128.
func aesReference() string {
	var key [16]byte
	for i, w := range aesKey {
		binary.BigEndian.PutUint32(key[i*4:], w)
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err)
	}
	sum := uint32(0)
	for b := 0; b < aesBlocks; b++ {
		u := uint32(b)
		words := [4]uint32{u, u * 0x9E3779B9, u ^ 0xDEADBEEF, u + 0x12345678}
		var pt, ctBytes [16]byte
		for i, w := range words {
			binary.BigEndian.PutUint32(pt[i*4:], w)
		}
		block.Encrypt(ctBytes[:], pt[:])
		var ct [4]uint32
		for i := range ct {
			ct[i] = binary.BigEndian.Uint32(ctBytes[i*4:])
		}
		sum = (sum * 31) ^ ct[0] ^ (ct[1] << 1) ^ (ct[2] << 2) ^ (ct[3] << 3)
	}
	return checksumLine(sum)
}

// AES is the fully-unrolled AES-128 workload (Sec. VII). Its 4 KiB
// T-table working set exceeds the 2 KiB L1 cache, which is why the
// paper's 8-issue instance cannot reach the theoretical ILP.
func AES() *Workload {
	return &Workload{
		Name:        "aes",
		Description: "fully-unrolled T-table AES-128 over 96 counter blocks",
		Sources:     []driver.Source{driver.CSource("aes.c", aesSource())},
		Expected:    aesReference(),
		HighILP:     true,
	}
}
