package workloads

import "repro/internal/driver"

// The DCT workload transforms dctBlocks 4x4 blocks dctPasses times.
// Repeating the kernel keeps the fully-unrolled transform dominant over
// the (inherently serial) input generation and checksum loops, as in
// the paper's evaluation where DCT is the highest-parallelism
// application (Sec. VII-B, Table II).
const (
	dctBlocks = 8
	dctPasses = 16
)

// dctSrc is the H.264 4x4 integer DCT approximation, fully unrolled.
const dctSrc = `
// 4x4 integer DCT approximation as used in H.264 (fully unrolled).
int blocks[128];   // 8 blocks * 16 coefficients
int coeffs[128];
uint seed = 12345;

// Transform every block of the frame: the per-block body is fully
// unrolled, and looping inside the function amortizes the call overhead
// the way a real encoder transforms a whole frame per call.
void dct_frame(int* src, int* dst, int nblocks) {
    for (int b = 0; b < nblocks; b++) {
    int* x = src + b * 16;
    int* y = dst + b * 16;
    int r00; int r01; int r02; int r03;
    int r10; int r11; int r12; int r13;
    int r20; int r21; int r22; int r23;
    int r30; int r31; int r32; int r33;

    // Horizontal pass (rows), fully unrolled; the a-temps of each row
    // die immediately, keeping register pressure within the file.
    {
        int a0 = x[0] + x[3];  int a1 = x[1] + x[2];
        int a2 = x[1] - x[2];  int a3 = x[0] - x[3];
        r00 = a0 + a1;  r01 = (a3 << 1) + a2;
        r02 = a0 - a1;  r03 = a3 - (a2 << 1);
    }
    {
        int a0 = x[4] + x[7];  int a1 = x[5] + x[6];
        int a2 = x[5] - x[6];  int a3 = x[4] - x[7];
        r10 = a0 + a1;  r11 = (a3 << 1) + a2;
        r12 = a0 - a1;  r13 = a3 - (a2 << 1);
    }
    {
        int a0 = x[8] + x[11];  int a1 = x[9] + x[10];
        int a2 = x[9] - x[10];  int a3 = x[8] - x[11];
        r20 = a0 + a1;  r21 = (a3 << 1) + a2;
        r22 = a0 - a1;  r23 = a3 - (a2 << 1);
    }
    {
        int a0 = x[12] + x[15];  int a1 = x[13] + x[14];
        int a2 = x[13] - x[14];  int a3 = x[12] - x[15];
        r30 = a0 + a1;  r31 = (a3 << 1) + a2;
        r32 = a0 - a1;  r33 = a3 - (a2 << 1);
    }

    // Vertical pass (columns), fully unrolled.
    {
        int b0 = r00 + r30; int b1 = r10 + r20;
        int b2 = r10 - r20; int b3 = r00 - r30;
        y[0] = b0 + b1;  y[4]  = (b3 << 1) + b2;
        y[8] = b0 - b1;  y[12] = b3 - (b2 << 1);
    }
    {
        int b0 = r01 + r31; int b1 = r11 + r21;
        int b2 = r11 - r21; int b3 = r01 - r31;
        y[1] = b0 + b1;  y[5]  = (b3 << 1) + b2;
        y[9] = b0 - b1;  y[13] = b3 - (b2 << 1);
    }
    {
        int b0 = r02 + r32; int b1 = r12 + r22;
        int b2 = r12 - r22; int b3 = r02 - r32;
        y[2]  = b0 + b1;  y[6]  = (b3 << 1) + b2;
        y[10] = b0 - b1;  y[14] = b3 - (b2 << 1);
    }
    {
        int b0 = r03 + r33; int b1 = r13 + r23;
        int b2 = r13 - r23; int b3 = r03 - r33;
        y[3]  = b0 + b1;  y[7]  = (b3 << 1) + b2;
        y[11] = b0 - b1;  y[15] = b3 - (b2 << 1);
    }
    }
}

int main() {
    for (int i = 0; i < 128; i++) {
        seed = seed * 1103515245 + 12345;
        blocks[i] = (int)((seed >> 16) & 0xFF) - 128;
    }
    // Transform the frame repeatedly: the unrolled kernel dominates the
    // profile (benchmark repetition; the transform is idempotent on its
    // separate output array).
    for (int pass = 0; pass < 16; pass++) {
        dct_frame(blocks, coeffs, 8);
    }
    uint sum = 0;
    for (int i = 0; i < 128; i++) {
        sum = sum ^ ((uint)coeffs[i] << (i & 7));
    }
    printf("%x\n", sum);
    return 0;
}
`

// dctReference mirrors dctSrc with identical 32-bit arithmetic.
func dctReference() string {
	rng := lcg{seed: 12345}
	var blocks [dctBlocks * 16]int32
	var coeffs [dctBlocks * 16]int32
	for i := range blocks {
		blocks[i] = rng.byteVal()
	}
	for b := 0; b < dctBlocks; b++ {
		x := blocks[b*16 : b*16+16]
		y := coeffs[b*16 : b*16+16]
		var r [16]int32
		for i := 0; i < 4; i++ {
			a0 := x[i*4+0] + x[i*4+3]
			a1 := x[i*4+1] + x[i*4+2]
			a2 := x[i*4+1] - x[i*4+2]
			a3 := x[i*4+0] - x[i*4+3]
			r[i*4+0] = a0 + a1
			r[i*4+1] = a3<<1 + a2
			r[i*4+2] = a0 - a1
			r[i*4+3] = a3 - a2<<1
		}
		for j := 0; j < 4; j++ {
			b0 := r[0*4+j] + r[3*4+j]
			b1 := r[1*4+j] + r[2*4+j]
			b2 := r[1*4+j] - r[2*4+j]
			b3 := r[0*4+j] - r[3*4+j]
			y[0*4+j] = b0 + b1
			y[1*4+j] = b3<<1 + b2
			y[2*4+j] = b0 - b1
			y[3*4+j] = b3 - b2<<1
		}
	}
	sum := uint32(0)
	for i, c := range coeffs {
		sum ^= uint32(c) << (i & 7)
	}
	return checksumLine(sum)
}

// DCT is the 4x4 integer Discrete Cosine Transform approximation as
// used in H.264 (Sec. VII).
func DCT() *Workload {
	return &Workload{
		Name:        "dct",
		Description: "4x4 integer DCT approximation (H.264), fully unrolled",
		Sources:     []driver.Source{driver.CSource("dct.c", dctSrc)},
		Expected:    dctReference(),
		HighILP:     true,
	}
}
