package workloads

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/driver"
)

const (
	fftN     = 256
	fftTab   = 512 // full-circle twiddle table size
	fftShift = 14  // Q14 fixed point
)

// fftTables returns the Q14 cosine/sine tables (index i covers angle
// 2*pi*i/512) shared by the MiniC source and the Go reference.
func fftTables() (cos, sin []int32) {
	cos = make([]int32, fftTab)
	sin = make([]int32, fftTab)
	for i := 0; i < fftTab; i++ {
		a := 2 * math.Pi * float64(i) / float64(fftTab)
		cos[i] = int32(math.Round(math.Cos(a) * (1 << fftShift)))
		sin[i] = int32(math.Round(math.Sin(a) * (1 << fftShift)))
	}
	return cos, sin
}

func formatTable(name string, vals []int32) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "int %s[%d] = {", name, len(vals))
	for i, v := range vals {
		if i%12 == 0 {
			sb.WriteString("\n    ")
		}
		fmt.Fprintf(&sb, "%d, ", v)
	}
	sb.WriteString("\n};\n")
	return sb.String()
}

// fftSource builds the MiniC program: a recursive radix-2 decimation-
// in-time FFT in Q14 fixed point. The recursive structure (many calls,
// small basic blocks) is deliberate: the paper attributes the FFT's
// surprisingly low ILP to exactly this implementation choice.
func fftSource() string {
	cos, sin := fftTables()
	var sb strings.Builder
	sb.WriteString("// Recursive fixed-point radix-2 FFT (Q14).\n")
	sb.WriteString(formatTable("costab", cos))
	sb.WriteString(formatTable("sintab", sin))
	sb.WriteString(`
int xre[256];
int xim[256];
uint seed = 7;

int nextsample() {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 0xFF) - 128;
}

void fft(int* re, int* im, int n) {
    if (n == 1) return;
    int h = n / 2;
    int* er = (int*)malloc(h * 4);
    int* ei = (int*)malloc(h * 4);
    int* od = (int*)malloc(h * 4);
    int* oi = (int*)malloc(h * 4);
    for (int i = 0; i < h; i++) {
        er[i] = re[2*i];
        ei[i] = im[2*i];
        od[i] = re[2*i + 1];
        oi[i] = im[2*i + 1];
    }
    fft(er, ei, h);
    fft(od, oi, h);
    int stride = 512 / n;
    for (int k = 0; k < h; k++) {
        int c = costab[k * stride];
        int s = sintab[k * stride];
        int tr = ((od[k] * c) + (oi[k] * s)) >> 14;
        int ti = ((oi[k] * c) - (od[k] * s)) >> 14;
        re[k]     = er[k] + tr;
        im[k]     = ei[k] + ti;
        re[k + h] = er[k] - tr;
        im[k + h] = ei[k] - ti;
    }
}

int main() {
    for (int i = 0; i < 256; i++) {
        xre[i] = nextsample() << 4;
        xim[i] = 0;
    }
    fft(xre, xim, 256);
    uint sum = 0;
    for (int i = 0; i < 256; i++) {
        sum = sum * 31 + (uint)xre[i];
        sum = sum * 31 + (uint)xim[i];
    }
    printf("%x\n", sum);
    return 0;
}
`)
	return sb.String()
}

// fftReference mirrors fftSource with identical integer arithmetic.
func fftReference() string {
	cos, sin := fftTables()
	rng := lcg{seed: 7}
	re := make([]int32, fftN)
	im := make([]int32, fftN)
	for i := range re {
		re[i] = rng.byteVal() << 4
	}
	var rec func(re, im []int32)
	rec = func(re, im []int32) {
		n := len(re)
		if n == 1 {
			return
		}
		h := n / 2
		er := make([]int32, h)
		ei := make([]int32, h)
		od := make([]int32, h)
		oi := make([]int32, h)
		for i := 0; i < h; i++ {
			er[i], ei[i] = re[2*i], im[2*i]
			od[i], oi[i] = re[2*i+1], im[2*i+1]
		}
		rec(er, ei)
		rec(od, oi)
		stride := fftTab / n
		for k := 0; k < h; k++ {
			c := cos[k*stride]
			s := sin[k*stride]
			tr := (od[k]*c + oi[k]*s) >> fftShift
			ti := (oi[k]*c - od[k]*s) >> fftShift
			re[k] = er[k] + tr
			im[k] = ei[k] + ti
			re[k+h] = er[k] - tr
			im[k+h] = ei[k] - ti
		}
	}
	rec(re, im)
	sum := uint32(0)
	for i := 0; i < fftN; i++ {
		sum = sum*31 + uint32(re[i])
		sum = sum*31 + uint32(im[i])
	}
	return checksumLine(sum)
}

// FFT is the fixed-point Fast Fourier Transform workload (Sec. VII).
func FFT() *Workload {
	return &Workload{
		Name:        "fft",
		Description: "recursive fixed-point radix-2 FFT over 256 samples",
		Sources:     []driver.Source{driver.CSource("fft.c", fftSource())},
		Expected:    fftReference(),
	}
}
