// Package workloads provides the benchmark applications of the paper's
// evaluation (Sec. VII) as MiniC programs: the JPEG encoder and decoder
// (standing in for MiBench cjpeg/djpeg), a fixed-point recursive FFT,
// recursive Quicksort, a fully-unrolled table-based AES-128, and the
// H.264 4x4 integer DCT approximation.
//
// Every workload is self-checking: it prints a hexadecimal checksum of
// its results, and each has a Go reference mirror that computes the
// same checksum with identical 32-bit integer arithmetic, so the test
// suite validates the compiler+simulator stack differentially.
package workloads

import (
	"fmt"

	"repro/internal/driver"
)

// Workload is one benchmark application.
type Workload struct {
	// Name matches the paper's label (cjpeg, djpeg, fft, qsort, aes, dct).
	Name string
	// Description for reports.
	Description string
	// Sources compiled by the MiniC compiler.
	Sources []driver.Source
	// Expected stdout, computed by the Go reference implementation.
	Expected string
	// HighILP marks the applications the paper reports as exposing
	// high instruction-level parallelism (DCT, AES).
	HighILP bool
}

// All returns every workload of the evaluation, in the paper's order.
func All() []*Workload {
	return []*Workload{
		CJpeg(),
		DJpeg(),
		FFT(),
		Qsort(),
		AES(),
		DCT(),
	}
}

// ByName returns the named workload, or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// lcg mirrors the MiniC generator `seed = seed*1103515245 + 12345`.
type lcg struct{ seed uint32 }

func (l *lcg) next() uint32 {
	l.seed = l.seed*1103515245 + 12345
	return l.seed
}

// byteVal returns the next signed sample in [-128, 127] like the MiniC
// helper `(int)((seed >> 16) & 0xFF) - 128`.
func (l *lcg) byteVal() int32 {
	return int32((l.next()>>16)&0xFF) - 128
}

// ubyte returns the next unsigned byte like `(seed >> 16) & 0xFF`.
func (l *lcg) ubyte() uint32 {
	return (l.next() >> 16) & 0xFF
}

func checksumLine(sum uint32) string { return fmt.Sprintf("%x\n", sum) }
