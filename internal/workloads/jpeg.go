package workloads

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/driver"
)

// JPEG-style codec parameters: a 48x48 RGB image, 4:4:4 sampling, 8x8
// integer DCT, standard luminance quantization, zigzag + run-length
// entropy coding. Stands in for MiBench cjpeg/djpeg (Sec. VII).
const (
	jpegW      = 48
	jpegH      = 48
	jpegBlocks = (jpegW / 8) * (jpegH / 8) // per component
)

// jpegQuant is the JPEG Annex K luminance table (quality 50).
var jpegQuant = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// jpegZigzag is the coefficient scan order.
var jpegZigzag = [64]int32{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// jpegCosTab returns the Q11 DCT basis: ctab[u*8+x] =
// round(cos((2x+1)u*pi/16) * 2048 * c(u)), c(0)=1/sqrt2.
func jpegCosTab() [64]int32 {
	var t [64]int32
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			t[u*8+x] = int32(math.Round(math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) * 2048 * cu))
		}
	}
	return t
}

// jpegImage generates the deterministic test image (mirrors the MiniC
// generator exactly).
func jpegImage() []int32 {
	img := make([]int32, jpegW*jpegH*3)
	rng := lcg{seed: 4242}
	idx := 0
	for y := 0; y < jpegH; y++ {
		for x := 0; x < jpegW; x++ {
			n := int32(rng.ubyte() & 31)
			img[idx] = (int32(x)*3 + int32(y)*2 + n) & 255
			img[idx+1] = (int32(x) + int32(y)*5 + (n << 1)) & 255
			img[idx+2] = (((int32(x) ^ int32(y)) << 1) + n) & 255
			idx += 3
		}
	}
	return img
}

func clamp255(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// jpegPlanes converts to YCbCr with the integer approximation shared
// with the MiniC source.
func jpegPlanes(img []int32) (yp, cb, cr []int32) {
	n := jpegW * jpegH
	yp = make([]int32, n)
	cb = make([]int32, n)
	cr = make([]int32, n)
	for i := 0; i < n; i++ {
		r, g, b := img[i*3], img[i*3+1], img[i*3+2]
		yp[i] = clamp255((77*r + 150*g + 29*b) >> 8)
		cb[i] = clamp255(((-43*r - 85*g + 128*b) >> 8) + 128)
		cr[i] = clamp255(((128*r - 107*g - 21*b) >> 8) + 128)
	}
	return yp, cb, cr
}

// jpegFDCTQuant transforms one 8x8 block (level-shifted) and quantizes.
func jpegFDCTQuant(block *[64]int32, ctab *[64]int32) [64]int32 {
	var tmp, f, q [64]int32
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			s := int32(0)
			for x := 0; x < 8; x++ {
				s += block[y*8+x] * ctab[u*8+x]
			}
			tmp[y*8+u] = s >> 8
		}
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			s := int32(0)
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * ctab[v*8+y]
			}
			f[v*8+u] = (s >> 8) >> 3
		}
	}
	for i := 0; i < 64; i++ {
		q[i] = f[i] / jpegQuant[i]
	}
	return q
}

// jpegEncodeBlock appends zigzag+RLE bytes for one quantized block.
func jpegEncodeBlock(q *[64]int32, out []byte) []byte {
	run := 0
	for i := 0; i < 64; i++ {
		v := q[jpegZigzag[i]]
		if v == 0 {
			run++
			continue
		}
		out = append(out, byte(run), byte(v&0xFF), byte((v>>8)&0xFF))
		run = 0
	}
	return append(out, 0xFF)
}

// jpegEncode runs the full reference encoder and returns the stream.
func jpegEncode() []byte {
	ctab := jpegCosTab()
	yp, cb, cr := jpegPlanes(jpegImage())
	var out []byte
	for _, plane := range [][]int32{yp, cb, cr} {
		for by := 0; by < jpegH/8; by++ {
			for bx := 0; bx < jpegW/8; bx++ {
				var block [64]int32
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						block[y*8+x] = plane[(by*8+y)*jpegW+bx*8+x] - 128
					}
				}
				q := jpegFDCTQuant(&block, &ctab)
				out = jpegEncodeBlock(&q, out)
			}
		}
	}
	return out
}

func jpegEncExpected() string {
	out := jpegEncode()
	sum := uint32(0)
	for _, b := range out {
		sum = sum*31 + uint32(b)
	}
	return fmt.Sprintf("%x %d\n", sum, len(out))
}

// jpegDecodeExpected decodes the reference stream and checksums the
// reconstruction, mirroring the MiniC decoder.
func jpegDecodeExpected(stream []byte) string {
	ctab := jpegCosTab()
	pos := 0
	sum := uint32(0)
	for b := 0; b < 3*jpegBlocks; b++ {
		var q [64]int32
		i := 0
		for {
			run := int32(stream[pos])
			pos++
			if run == 0xFF {
				break
			}
			lo := int32(stream[pos])
			hi := int32(stream[pos+1])
			pos += 2
			v := lo | hi<<8
			if v >= 32768 {
				v -= 65536
			}
			i += int(run)
			q[jpegZigzag[i]] = v
			i++
		}
		// Dequantize + inverse transform.
		var deq, tmp [64]int32
		for i := 0; i < 64; i++ {
			deq[i] = q[i] * jpegQuant[i]
		}
		for v := 0; v < 8; v++ {
			for x := 0; x < 8; x++ {
				s := int32(0)
				for u := 0; u < 8; u++ {
					s += deq[v*8+u] * ctab[u*8+x]
				}
				tmp[v*8+x] = s >> 11
			}
		}
		for x := 0; x < 8; x++ {
			for y := 0; y < 8; y++ {
				s := int32(0)
				for v := 0; v < 8; v++ {
					s += tmp[v*8+x] * ctab[v*8+y]
				}
				rec := clamp255((s >> 7) + 128)
				sum = sum*31 + uint32(rec)
			}
		}
	}
	return checksumLine(sum)
}

func formatITable(name string, vals []int32) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "int %s[%d] = {", name, len(vals))
	for i, v := range vals {
		if i%12 == 0 {
			sb.WriteString("\n    ")
		}
		fmt.Fprintf(&sb, "%d, ", v)
	}
	sb.WriteString("\n};\n")
	return sb.String()
}

func formatBytes(name string, vals []byte) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "char %s[%d] = {", name, len(vals))
	for i, v := range vals {
		if i%20 == 0 {
			sb.WriteString("\n    ")
		}
		fmt.Fprintf(&sb, "%d, ", v)
	}
	sb.WriteString("\n};\n")
	return sb.String()
}

// jpegCommon emits the MiniC tables shared by encoder and decoder.
func jpegCommon() string {
	ctab := jpegCosTab()
	var sb strings.Builder
	sb.WriteString(formatITable("quant", jpegQuant[:]))
	sb.WriteString(formatITable("zigzag", jpegZigzag[:]))
	sb.WriteString(formatITable("ctab", ctab[:]))
	sb.WriteString(`
int clamp(int v) {
    if (v < 0) return 0;
    if (v > 255) return 255;
    return v;
}
`)
	return sb.String()
}

// cjpegSource is the MiniC JPEG encoder.
func cjpegSource() string {
	var sb strings.Builder
	sb.WriteString("// JPEG-style encoder: RGB -> YCbCr -> 8x8 DCT -> quantize\n")
	sb.WriteString("// -> zigzag -> run-length entropy coding.\n")
	sb.WriteString(jpegCommon())
	sb.WriteString(`
char img[6912];      // 48*48*3
int planes[6912];    // Y, Cb, Cr planes of 2304 each
char out[24576];
int outn = 0;
uint seed = 4242;

void genimage() {
    int idx = 0;
    for (int y = 0; y < 48; y++) {
        for (int x = 0; x < 48; x++) {
            seed = seed * 1103515245 + 12345;
            int n = (int)((seed >> 16) & 31);
            img[idx]     = (char)((x * 3 + y * 2 + n) & 255);
            img[idx + 1] = (char)((x + y * 5 + (n << 1)) & 255);
            img[idx + 2] = (char)((((x ^ y) << 1) + n) & 255);
            idx += 3;
        }
    }
}

void colorconv() {
    for (int i = 0; i < 2304; i++) {
        int r = img[i*3];
        int g = img[i*3 + 1];
        int b = img[i*3 + 2];
        planes[i]        = clamp((77*r + 150*g + 29*b) >> 8);
        planes[2304 + i] = clamp(((0 - 43*r - 85*g + 128*b) >> 8) + 128);
        planes[4608 + i] = clamp(((128*r - 107*g - 21*b) >> 8) + 128);
    }
}

int block[64];
int tmp[64];
int fq[64];

void fdctquant() {
    for (int y = 0; y < 8; y++) {
        for (int u = 0; u < 8; u++) {
            int s = 0;
            for (int x = 0; x < 8; x++) s += block[y*8 + x] * ctab[u*8 + x];
            tmp[y*8 + u] = s >> 8;
        }
    }
    for (int u = 0; u < 8; u++) {
        for (int v = 0; v < 8; v++) {
            int s = 0;
            for (int y = 0; y < 8; y++) s += tmp[y*8 + u] * ctab[v*8 + y];
            fq[v*8 + u] = ((s >> 8) >> 3) / quant[v*8 + u];
        }
    }
}

void encodeblock() {
    int run = 0;
    for (int i = 0; i < 64; i++) {
        int v = fq[zigzag[i]];
        if (v == 0) { run++; continue; }
        out[outn] = (char)run;
        out[outn + 1] = (char)(v & 0xFF);
        out[outn + 2] = (char)((v >> 8) & 0xFF);
        outn += 3;
        run = 0;
    }
    out[outn] = (char)0xFF;
    outn++;
}

int main() {
    genimage();
    colorconv();
    for (int p = 0; p < 3; p++) {
        for (int by = 0; by < 6; by++) {
            for (int bx = 0; bx < 6; bx++) {
                for (int y = 0; y < 8; y++) {
                    for (int x = 0; x < 8; x++) {
                        block[y*8 + x] = planes[p*2304 + (by*8 + y)*48 + bx*8 + x] - 128;
                    }
                }
                fdctquant();
                encodeblock();
            }
        }
    }
    uint sum = 0;
    for (int i = 0; i < outn; i++) sum = sum * 31 + (uint)out[i];
    printf("%x %d\n", sum, outn);
    return 0;
}
`)
	return sb.String()
}

// djpegSource is the MiniC JPEG decoder; the compressed stream produced
// by the reference encoder is embedded (the MiBench decoder reads its
// input file; the simulator has no file system, so the stream ships in
// .data — see DESIGN.md substitutions).
func djpegSource(stream []byte) string {
	var sb strings.Builder
	sb.WriteString("// JPEG-style decoder: RLE parse -> dezigzag -> dequantize\n")
	sb.WriteString("// -> inverse 8x8 DCT -> level shift.\n")
	sb.WriteString(jpegCommon())
	sb.WriteString(formatBytes("stream", stream))
	fmt.Fprintf(&sb, "int streamlen = %d;\n", len(stream))
	sb.WriteString(`
int q[64];
int deq[64];
int tmp[64];
int pos = 0;

int decodeblock() {
    for (int i = 0; i < 64; i++) q[i] = 0;
    int i = 0;
    while (1) {
        int run = stream[pos];
        pos++;
        if (run == 0xFF) break;
        int lo = stream[pos];
        int hi = stream[pos + 1];
        pos += 2;
        int v = lo | (hi << 8);
        if (v >= 32768) v -= 65536;
        i += run;
        q[zigzag[i]] = v;
        i++;
    }
    return i;
}

uint sum = 0;

void reconstruct() {
    for (int i = 0; i < 64; i++) deq[i] = q[i] * quant[i];
    for (int v = 0; v < 8; v++) {
        for (int x = 0; x < 8; x++) {
            int s = 0;
            for (int u = 0; u < 8; u++) s += deq[v*8 + u] * ctab[u*8 + x];
            tmp[v*8 + x] = s >> 11;
        }
    }
    for (int x = 0; x < 8; x++) {
        for (int y = 0; y < 8; y++) {
            int s = 0;
            for (int v = 0; v < 8; v++) s += tmp[v*8 + x] * ctab[v*8 + y];
            int rec = clamp((s >> 7) + 128);
            sum = sum * 31 + (uint)rec;
        }
    }
}

int main() {
    for (int b = 0; b < 108; b++) {   // 3 planes * 36 blocks
        decodeblock();
        reconstruct();
    }
    if (pos != streamlen) {
        puts("STREAM LENGTH MISMATCH");
        return 1;
    }
    printf("%x\n", sum);
    return 0;
}
`)
	return sb.String()
}

// CJpeg is the JPEG encoder workload — the application the paper uses
// to measure simulator performance (Table I).
func CJpeg() *Workload {
	return &Workload{
		Name:        "cjpeg",
		Description: "JPEG-style encoder over a 48x48 RGB image (MiBench cjpeg stand-in)",
		Sources:     []driver.Source{driver.CSource("cjpeg.c", cjpegSource())},
		Expected:    jpegEncExpected(),
	}
}

// DJpeg is the JPEG decoder workload.
func DJpeg() *Workload {
	stream := jpegEncode()
	return &Workload{
		Name:        "djpeg",
		Description: "JPEG-style decoder over the reference-encoded stream (MiBench djpeg stand-in)",
		Sources:     []driver.Source{driver.CSource("djpeg.c", djpegSource(stream))},
		Expected:    jpegDecodeExpected(stream),
	}
}
