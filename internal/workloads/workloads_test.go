package workloads_test

import (
	"bytes"
	"testing"

	"repro/internal/driver"
	"repro/internal/ktest"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// runOn compiles and runs a workload on the given ISA.
func runOn(t *testing.T, w *workloads.Workload, isaName string) (string, *sim.CPU, sim.ExitStatus) {
	t.Helper()
	m := ktest.Model(t)
	var out bytes.Buffer
	opts := sim.DefaultOptions()
	opts.Stdout = &out
	opts.MaxInstructions = 200_000_000
	cpu, st, err := driver.Run(m, isaName, opts, w.Sources...)
	if err != nil {
		t.Fatalf("%s on %s: %v", w.Name, isaName, err)
	}
	return out.String(), cpu, st
}

func TestWorkloadsMatchReferenceOnRISC(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			out, _, st := runOn(t, w, "RISC")
			if st.ExitCode != 0 {
				t.Fatalf("exit = %d", st.ExitCode)
			}
			if out != w.Expected {
				t.Fatalf("output = %q, reference = %q", out, w.Expected)
			}
			t.Logf("%s: %d instructions", w.Name, st.Instructions)
		})
	}
}

func TestWorkloadsIdenticalAcrossISAs(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-ISA sweep is slow")
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, isaName := range []string{"VLIW2", "VLIW4", "VLIW6", "VLIW8"} {
				out, _, st := runOn(t, w, isaName)
				if st.ExitCode != 0 {
					t.Fatalf("%s: exit = %d", isaName, st.ExitCode)
				}
				if out != w.Expected {
					t.Fatalf("%s: output = %q, reference = %q", isaName, out, w.Expected)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if workloads.ByName("dct") == nil || workloads.ByName("cjpeg") == nil {
		t.Fatal("ByName lookup failed")
	}
	if workloads.ByName("nope") != nil {
		t.Fatal("ByName returned a bogus workload")
	}
	names := map[string]bool{}
	for _, w := range workloads.All() {
		if names[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
		if w.Expected == "" || len(w.Sources) == 0 {
			t.Fatalf("%s: incomplete definition", w.Name)
		}
	}
	for _, n := range []string{"cjpeg", "djpeg", "fft", "qsort", "aes", "dct"} {
		if !names[n] {
			t.Fatalf("paper workload %s missing", n)
		}
	}
}
