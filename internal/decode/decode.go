// Package decode is the pure instruction-decode core of the toolchain:
// constant-field detection and operand extraction for one instruction of
// any ISA, with no simulator state attached. The interpreter
// (internal/sim) layers its simulation-function lookup and decode cache
// on top of it; the static analyzer (internal/analysis) uses it to
// decode executables without running them. Keeping one core guarantees
// that "statically decodable" and "executable" mean the same thing —
// the property the decoder-agreement fuzz test pins down.
package decode

import (
	"fmt"

	"repro/internal/isa"
)

// Op is one decoded (non-NOP) operation of an instruction.
type Op struct {
	Op       *isa.Operation
	Slot     uint8
	Operands isa.Operands
	Addr     uint32 // address of the operation word
	Word     uint32 // the raw operation word
}

// Instruction is one fully decoded instruction: the non-NOP operations
// of all slots of the active ISA's instruction format.
type Instruction struct {
	Addr uint32
	ISA  *isa.ISA
	Size uint32
	Ops  []Op
}

// Error reports an operation word that no entry of the active ISA's
// operation table matches.
type Error struct {
	Addr uint32 // address of the offending operation word
	Slot int
	Word uint32
	ISA  *isa.ISA
}

func (e *Error) Error() string {
	return fmt.Sprintf("illegal operation word %#08x at %#x (ISA %s, slot %d)",
		e.Word, e.Addr, e.ISA.Name, e.Slot)
}

// Word detects and decodes a single operation word under ISA a. It
// returns nil if no operation of a's table matches.
func Word(a *isa.ISA, word uint32) (*isa.Operation, isa.Operands) {
	op := a.Detect(word)
	if op == nil {
		return nil, isa.Operands{}
	}
	return op, op.DecodeOperands(word)
}

// Instr detects and decodes the instruction at addr under ISA a,
// fetching operation words through load. NOP slots are dropped from the
// operation list (they carry no information for either execution or
// analysis). A word that matches no table entry yields a *Error.
func Instr(a *isa.ISA, addr uint32, load func(uint32) uint32) (*Instruction, error) {
	d := &Instruction{Addr: addr, ISA: a, Size: a.InstrBytes()}
	for slot := 0; slot < a.Issue; slot++ {
		opAddr := addr + uint32(slot)*isa.OpWordBytes
		word := load(opAddr)
		op, operands := Word(a, word)
		if op == nil {
			return nil, &Error{Addr: opAddr, Slot: slot, Word: word, ISA: a}
		}
		if op.Class == isa.ClassNop {
			continue
		}
		d.Ops = append(d.Ops, Op{Op: op, Slot: uint8(slot), Operands: operands, Addr: opAddr, Word: word})
	}
	return d, nil
}
