package decode_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/decode"
	"repro/internal/sim"
	"repro/internal/targetgen"
)

// FuzzDecodeAgreement pins the property the shared decode core exists
// for: the analyzer's static decoder and the simulator's runtime
// decoder agree on every word of every ISA — the same instruction
// decodes to the same operations (or both reject the same word at the
// same slot). A divergence would mean "statically verified" and
// "executable" no longer describe the same binaries.
func FuzzDecodeAgreement(f *testing.F) {
	model := targetgen.MustKahrisma()

	f.Add(uint32(0), uint8(0), []byte{0x00, 0x00, 0x00, 0xFC})      // nop
	f.Add(uint32(0xFFFFFFFF), uint8(0), []byte{0xFF, 0xFF, 0xFF})   // undecodable
	f.Add(uint32(0x1000), uint8(2), []byte{0x01, 0x00, 0x48, 0x04}) // VLIW bundle seed

	f.Fuzz(func(t *testing.T, base uint32, isaSel uint8, raw []byte) {
		a := model.ISAs[int(isaSel)%len(model.ISAs)]
		base &^= 3 // operation words are 4-byte aligned

		// Synthesize one full instruction's worth of words from the fuzz
		// bytes, repeating them when raw is shorter than the bundle.
		words := make([]byte, a.InstrBytes())
		for i := range words {
			if len(raw) > 0 {
				words[i] = raw[i%len(raw)]
			}
		}
		// Decoders only fetch the aligned words of the bundle at base,
		// so off+4 never runs past the buffer.
		load := func(addr uint32) uint32 {
			off := (addr - base) % uint32(len(words))
			return binary.LittleEndian.Uint32(words[off:])
		}

		st, serr := decode.Instr(a, base, load)
		dy, derr := sim.DecodeInstruction(a, base, load)

		if (serr == nil) != (derr == nil) {
			t.Fatalf("ISA %s word stream %x: static err %v, runtime err %v", a.Name, words, serr, derr)
		}
		if serr != nil {
			var se, de *decode.Error
			if !errors.As(serr, &se) || !errors.As(derr, &de) {
				t.Fatalf("rejections are not decode.Errors: %v / %v", serr, derr)
			}
			if se.Addr != de.Addr || se.Slot != de.Slot || se.Word != de.Word {
				t.Fatalf("ISA %s: static rejects %#x/slot %d word %#08x, runtime %#x/slot %d word %#08x",
					a.Name, se.Addr, se.Slot, se.Word, de.Addr, de.Slot, de.Word)
			}
			return
		}
		if st.Size != dy.Size || len(st.Ops) != len(dy.Ops) {
			t.Fatalf("ISA %s: static %d ops/%d bytes, runtime %d ops/%d bytes",
				a.Name, len(st.Ops), st.Size, len(dy.Ops), dy.Size)
		}
		for i := range st.Ops {
			s, d := &st.Ops[i], &dy.Ops[i]
			if s.Op != d.Op || s.Slot != d.Slot || s.Addr != d.Addr {
				t.Fatalf("ISA %s op %d: static %s slot %d @%#x, runtime %s slot %d @%#x",
					a.Name, i, s.Op.Name, s.Slot, s.Addr, d.Op.Name, d.Slot, d.Addr)
			}
			if s.Operands.Rd != d.Rd || s.Operands.Rs1 != d.Rs1 ||
				s.Operands.Rs2 != d.Rs2 || s.Operands.Imm != d.Imm {
				t.Fatalf("ISA %s op %d (%s): operand mismatch static %+v, runtime rd=%d rs1=%d rs2=%d imm=%d",
					a.Name, i, s.Op.Name, s.Operands, d.Rd, d.Rs1, d.Rs2, d.Imm)
			}
		}
	})
}
