package asm_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/kelf"
	"repro/internal/targetgen"
)

func words(t *testing.T, f *kelf.File, sec string) []uint32 {
	t.Helper()
	s := f.Section(sec)
	if s == nil {
		t.Fatalf("section %s missing", sec)
	}
	if len(s.Data)%4 != 0 {
		t.Fatalf("section %s length %d not word aligned", sec, len(s.Data))
	}
	out := make([]uint32, len(s.Data)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(s.Data[i*4:])
	}
	return out
}

func assemble(t *testing.T, src string) *kelf.File {
	t.Helper()
	f, err := asm.Assemble(targetgen.MustKahrisma(), "test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return f
}

func wantAsmError(t *testing.T, src, sub string) {
	t.Helper()
	_, err := asm.Assemble(targetgen.MustKahrisma(), "test.s", src)
	if err == nil {
		t.Fatalf("expected error containing %q", sub)
	}
	if !strings.Contains(err.Error(), sub) {
		t.Fatalf("error %q does not contain %q", err, sub)
	}
}

func TestAssembleBasicOps(t *testing.T) {
	m := targetgen.MustKahrisma()
	f := assemble(t, `
		add t0, a0, a1
		addi sp, sp, -16
		lw t1, 8(sp)
		sw t1, 12(sp)
		lui t2, 0x1234
		nop
		halt
	`)
	ws := words(t, f, kelf.SecText)
	if len(ws) != 7 {
		t.Fatalf("got %d words, want 7", len(ws))
	}
	risc := m.ISAByName("RISC")
	wantDisasm := []string{
		"add t0, a0, a1",
		"addi sp, sp, -16",
		"lw t1, 8(sp)",
		"sw t1, 12(sp)",
		"lui t2, 4660",
		"nop",
		"halt",
	}
	for i, w := range ws {
		if got := m.Disassemble(risc, w, uint32(i*4)); got != wantDisasm[i] {
			t.Errorf("word %d: %q, want %q", i, got, wantDisasm[i])
		}
	}
}

func TestLocalBranchGetsRelocation(t *testing.T) {
	f := assemble(t, `
loop:
	addi t0, t0, -1
	bne t0, zero, loop
	ret
	`)
	text := f.Section(kelf.SecText)
	if len(text.Relocs) != 1 {
		t.Fatalf("relocs = %+v, want one BR16", text.Relocs)
	}
	r := text.Relocs[0]
	if r.Type != kelf.RelBr16 || r.Symbol != "loop" || r.Offset != 4 {
		t.Fatalf("reloc = %+v", r)
	}
	sym := f.Symbol("loop")
	if sym == nil || sym.Bind != kelf.BindLocal || sym.Value != 0 {
		t.Fatalf("loop symbol = %+v", sym)
	}
}

func TestPseudoExpansion(t *testing.T) {
	m := targetgen.MustKahrisma()
	risc := m.ISAByName("RISC")
	cases := []struct {
		src  string
		want []string
	}{
		{"li t0, 42", []string{"addi t0, zero, 42"}},
		{"li t0, -5", []string{"addi t0, zero, -5"}},
		{"li t0, 0x30000", []string{"lui t0, 3"}},
		{"li t0, 0x12345678", []string{"lui t0, 4660", "ori t0, t0, 22136"}},
		{"li t0, -100000", []string{"lui t0, 65534", "ori t0, t0, 31072"}},
		{"mv a0, a1", []string{"addi a0, a1, 0"}},
		{"neg a0, a1", []string{"sub a0, zero, a1"}},
		{"jr ra", []string{"jalr zero, ra"}},
		{"ret", []string{"jalr zero, ra"}},
	}
	for _, tc := range cases {
		f := assemble(t, tc.src)
		ws := words(t, f, kelf.SecText)
		if len(ws) != len(tc.want) {
			t.Errorf("%q: %d words, want %d", tc.src, len(ws), len(tc.want))
			continue
		}
		for i, w := range ws {
			if got := m.Disassemble(risc, w, 0); got != tc.want[i] {
				t.Errorf("%q word %d = %q, want %q", tc.src, i, got, tc.want[i])
			}
		}
	}
}

func TestLaAndCallEmitRelocs(t *testing.T) {
	f := assemble(t, `
	la t0, table
	call helper
	j done
done:
	ret
	`)
	text := f.Section(kelf.SecText)
	types := map[kelf.RelocType]int{}
	for _, r := range text.Relocs {
		types[r.Type]++
	}
	if types[kelf.RelHi16] != 1 || types[kelf.RelLo16] != 1 || types[kelf.RelJ26] != 2 {
		t.Fatalf("reloc types = %v", types)
	}
	// helper and table must appear as undefined globals.
	for _, n := range []string{"helper", "table"} {
		s := f.Symbol(n)
		if s == nil || s.Section != "" {
			t.Errorf("symbol %s = %+v, want undefined", n, s)
		}
	}
}

func TestVLIWBundles(t *testing.T) {
	m := targetgen.MustKahrisma()
	f := assemble(t, `
	.isa VLIW4
	{ add t0, a0, a1 ; sub t1, a0, a1 ; mul t2, a0, a1 }
	nop
	`)
	ws := words(t, f, kelf.SecText)
	if len(ws) != 8 {
		t.Fatalf("words = %d, want 8 (two 4-slot instructions)", len(ws))
	}
	vliw4 := m.ISAByName("VLIW4")
	if got := asm.DisassembleBundle(m, vliw4, f.Section(kelf.SecText).Data, 0); got !=
		"{ add t0, a0, a1 ; sub t1, a0, a1 ; mul t2, a0, a1 }" {
		t.Errorf("bundle disasm = %q", got)
	}
	// Slot 3 of instruction 0 and slots 1-3 of instruction 1 are NOPs.
	nopWord := ws[7]
	for _, i := range []int{3, 5, 6, 7} {
		if ws[i] != nopWord {
			t.Errorf("word %d = %#x, want NOP", i, ws[i])
		}
	}
}

func TestMultiLineBundle(t *testing.T) {
	f := assemble(t, `
	.isa VLIW2
	{
		add t0, a0, a1
		sub t1, a0, a1
	}
	`)
	ws := words(t, f, kelf.SecText)
	if len(ws) != 2 {
		t.Fatalf("words = %d, want 2", len(ws))
	}
}

func TestBundleErrors(t *testing.T) {
	wantAsmError(t, ".isa VLIW2\n{ add t0, a0, a1 ; sub t1, a0, a1 ; mul t2, a0, a1 }", "3 operations in a bundle")
	wantAsmError(t, ".isa VLIW2\n{ j x ; jal y }", "more than one control-transfer")
	wantAsmError(t, ".isa VLIW2\n{ simcall 1 ; add t0, a0, a1 }", "must be alone")
	wantAsmError(t, ".isa VLIW2\n{ add t0, a0, a1 ; sub t0, a0, a1 }", "write t0")
	wantAsmError(t, ".isa VLIW2\n{ li t0, 0x12345 ; nop }", "cannot appear in a bundle")
	wantAsmError(t, ".isa VLIW2\n{ add t0, a0, a1", "unterminated")
}

func TestDataDirectives(t *testing.T) {
	f := assemble(t, `
	.data
v:	.word 1, 2, -3
	.half 258
	.byte 'A', 255
	.align 4
	.asciz "hi\n"
	.space 3
	.rodata
	.word v
	.bss
b:	.space 16
	`)
	data := f.Section(kelf.SecData)
	want := []byte{
		1, 0, 0, 0, 2, 0, 0, 0, 0xFD, 0xFF, 0xFF, 0xFF,
		2, 1, 'A', 255,
		'h', 'i', '\n', 0,
		0, 0, 0,
	}
	if string(data.Data) != string(want) {
		t.Fatalf("data = % x\nwant % x", data.Data, want)
	}
	ro := f.Section(kelf.SecRodata)
	if len(ro.Relocs) != 1 || ro.Relocs[0].Type != kelf.RelAbs32 || ro.Relocs[0].Symbol != "v" {
		t.Fatalf("rodata relocs = %+v", ro.Relocs)
	}
	bss := f.Section(kelf.SecBss)
	if bss.Type != kelf.SecNobits || bss.Size != 16 {
		t.Fatalf("bss = %+v", bss)
	}
	b := f.Symbol("b")
	if b == nil || b.Section != kelf.SecBss || b.Value != 0 {
		t.Fatalf("b = %+v", b)
	}
}

func TestTextAlignPadsWithNops(t *testing.T) {
	m := targetgen.MustKahrisma()
	f := assemble(t, "nop\n.align 16\nhalt\n")
	ws := words(t, f, kelf.SecText)
	if len(ws) != 5 {
		t.Fatalf("words = %d, want 5", len(ws))
	}
	risc := m.ISAByName("RISC")
	for i := 1; i < 4; i++ {
		if got := m.Disassemble(risc, ws[i], 0); got != "nop" {
			t.Errorf("pad word %d = %q", i, got)
		}
	}
}

func TestFuncDirectivesAndLineMaps(t *testing.T) {
	f := assemble(t, `
	.isa VLIW2
	.global f
	.func f
f:
	.loc "f.c" 10
	nop
	.loc "f.c" 12
	nop
	.endfunc
	`)
	ftSec := f.Section(kelf.SecFuncs)
	if ftSec == nil {
		t.Fatal("no .kfuncs section")
	}
	ft, err := kelf.DecodeFuncTable(ftSec.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Funcs) != 1 || ft.Funcs[0].Name != "f" || ft.Funcs[0].Start != 0 ||
		ft.Funcs[0].End != 16 || ft.Funcs[0].ISA != 1 {
		t.Fatalf("functable = %+v", ft.Funcs)
	}
	sym := f.Symbol("f")
	if sym == nil || sym.Type != kelf.SymFunc || sym.Size != 16 {
		t.Fatalf("f symbol = %+v", sym)
	}
	srcSec := f.Section(kelf.SecSrcMap)
	sm, err := kelf.DecodeLineMap(srcSec.Data)
	if err != nil {
		t.Fatal(err)
	}
	file, line, ok := sm.Lookup(8)
	if !ok || file != "f.c" || line != 12 {
		t.Fatalf("srcmap lookup = %s:%d,%v", file, line, ok)
	}
	lmSec := f.Section(kelf.SecLineMap)
	lm, err := kelf.DecodeLineMap(lmSec.Data)
	if err != nil {
		t.Fatal(err)
	}
	if file, _, ok := lm.Lookup(0); !ok || file != "test.s" {
		t.Fatalf("linemap file = %q", file)
	}
}

func TestSwtAcceptsISAName(t *testing.T) {
	m := targetgen.MustKahrisma()
	f := assemble(t, "swt VLIW4\nswt 0\n")
	ws := words(t, f, kelf.SecText)
	swt := m.Op("SWT")
	if got := swt.DecodeOperands(ws[0]).Imm; got != 2 {
		t.Errorf("swt VLIW4 imm = %d, want 2", got)
	}
	if got := swt.DecodeOperands(ws[1]).Imm; got != 0 {
		t.Errorf("swt 0 imm = %d", got)
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []struct{ src, sub string }{
		{"frob t0, t1", "unknown operation"},
		{"add t0, t1", "want 3 operands"},
		{"add t0, t1, q9", "unknown register"},
		{"addi t0, t1, 0x10000", "out of range"},
		{"lw t0, t1, 4", "want 2 operands"},
		{"lw t0, 4[t1]", "bad memory operand"},
		{".isa BOGUS", "unknown ISA"},
		{".data\nadd t0, t1, t2", "outside .text"},
		{".bogus 3", "unknown directive"},
		{"x:\nx:", "already defined"},
		{".align 3", "power of two"},
		{".word 1 +", "bad data expression"},
		{".bss\n.word 3", "not allowed in .bss"},
		{"beq t0, t1, 3", "not a multiple of 4"},
		{"j 6", "not word aligned"},
		{".func", "missing name"},
		{".endfunc", ".endfunc without .func"},
		{".func a\n.func b", "still open"},
		{".func a\nnop", "not closed"},
		{"addi t0, t1, sym", "use %hi/%lo"},
		{".loc f.c", "want `file line`"},
		{"li t0, sym", "use la for symbols"},
	}
	for _, tc := range cases {
		wantAsmError(t, tc.src, tc.sub)
	}
}

func TestCommentStyles(t *testing.T) {
	f := assemble(t, `
	nop # hash comment
	nop // slash comment
	.data
	.asciz "a#b//c" # comment after string
	`)
	if got := len(words(t, f, kelf.SecText)); got != 2 {
		t.Fatalf("text words = %d, want 2", got)
	}
	if got := string(f.Section(kelf.SecData).Data); got != "a#b//c\x00" {
		t.Fatalf("data = %q", got)
	}
}

func TestListingMixedISA(t *testing.T) {
	m := targetgen.MustKahrisma()
	f := assemble(t, `
	.isa RISC
	.global r
	.func r
r:	nop
	ret
	.endfunc
	.isa VLIW2
	.global v
	.func v
v:	{ add t0, a0, a1 ; sub t1, a0, a1 }
	.endfunc
	`)
	ft, err := kelf.DecodeFuncTable(f.Section(kelf.SecFuncs).Data)
	if err != nil {
		t.Fatal(err)
	}
	lines := asm.Listing(m, ft, m.ISAByName("RISC"), f.Section(kelf.SecText).Data, 0)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"<r>:", "<v>:", "{ add t0, a0, a1 ; sub t1, a0, a1 }", "nop"} {
		if !strings.Contains(joined, want) {
			t.Errorf("listing missing %q:\n%s", want, joined)
		}
	}
}

var _ = isa.OpWordBytes // keep import for doc reference
