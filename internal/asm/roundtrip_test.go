package asm_test

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/kelf"
	"repro/internal/targetgen"
)

// Property: disassembling a random valid operation word and assembling
// the text again reproduces the word exactly, for every operation of
// every ISA. This pins the operand syntax of the assembler and the
// disassembler to each other.
func TestDisasmAsmRoundTripQuick(t *testing.T) {
	m := targetgen.MustKahrisma()
	risc := m.ISAByName("RISC")
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 3000; trial++ {
		op := risc.Ops[rng.Intn(len(risc.Ops))]
		switch op.Name {
		case "SWT", "SIMCALL":
			// Their operands render as plain integers but J-format
			// branch/jump targets print as addresses; handled below.
		}
		var o isa.Operands
		if op.DstField != nil {
			o.Rd = uint8(rng.Intn(32))
		}
		if op.Src1Field != nil {
			o.Rs1 = uint8(rng.Intn(32))
		}
		if op.Src2Field != nil {
			o.Rs2 = uint8(rng.Intn(32))
		}
		if f := op.ImmField; f != nil {
			w := f.Width()
			if f.Signed {
				o.Imm = int32(rng.Intn(1<<w)) - 1<<(w-1)
			} else {
				o.Imm = int32(rng.Intn(1 << uint(min(w, 24))))
			}
		}
		word, err := op.Encode(o)
		if err != nil {
			t.Fatalf("%s: encode: %v", op.Name, err)
		}
		// Disassemble at address 0 so branch/jump targets are absolute
		// byte addresses the assembler can re-fold.
		text := m.Disassemble(risc, word, 0)
		switch op.Class {
		case isa.ClassBranch:
			// Branch text prints the resolved target (addr + imm*4); at
			// addr 0 a negative displacement renders as a huge unsigned
			// target that re-assembles modulo 2^32 — re-derive instead.
			continue
		case isa.ClassJump:
			if op.Name == "J" || op.Name == "JAL" {
				continue // absolute target re-folds only with a label
			}
		}
		obj, err := asm.Assemble(m, "rt.s", "\t"+text+"\n")
		if err != nil {
			t.Fatalf("%s: assembling %q: %v", op.Name, text, err)
		}
		data := obj.Section(kelf.SecText).Data
		if len(data) != 4 {
			t.Fatalf("%s: %q produced %d bytes", op.Name, text, len(data))
		}
		got := binary.LittleEndian.Uint32(data)
		if got != word {
			t.Fatalf("%s: %q round-tripped %#08x -> %#08x", op.Name, text, word, got)
		}
	}
}

// Branches and jumps round-trip through labels instead.
func TestControlFlowRoundTrip(t *testing.T) {
	m := targetgen.MustKahrisma()
	risc := m.ISAByName("RISC")
	src := `
back:
	nop
	beq t0, t1, back
	bne a0, zero, fwd
	blt s0, s1, back
	bgeu t2, t3, fwd
	j back
	jal fwd
fwd:
	ret
`
	obj, err := asm.Assemble(m, "cf.s", src)
	if err != nil {
		t.Fatal(err)
	}
	// Link-less resolution: apply relocations manually by interpreting
	// the section as final at address 0 — equivalently, run the linker.
	// Here it is simpler to link.
	text := obj.Section(kelf.SecText)
	if len(text.Relocs) != 6 {
		t.Fatalf("relocs = %d, want 6", len(text.Relocs))
	}
	_ = risc
}
