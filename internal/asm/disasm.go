package asm

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/kelf"
)

// DisassembleBundle renders one instruction (all slots) of the given
// ISA at addr. Trailing NOP padding slots are elided for VLIW bundles.
func DisassembleBundle(m *isa.Model, a *isa.ISA, code []byte, addr uint32) string {
	n := int(a.InstrBytes())
	if len(code) < n {
		return "<truncated>"
	}
	var slots []string
	for s := 0; s < a.Issue; s++ {
		w := binary.LittleEndian.Uint32(code[s*4:])
		slots = append(slots, m.Disassemble(a, w, addr+uint32(s*4)))
	}
	if a.Issue == 1 {
		return slots[0]
	}
	// Trim trailing NOPs but always keep slot 0.
	last := len(slots)
	for last > 1 && slots[last-1] == "nop" {
		last--
	}
	return "{ " + strings.Join(slots[:last], " ; ") + " }"
}

// Listing disassembles a code range, choosing the ISA per address from
// the function table (mixed-ISA executables change ISA at function
// granularity). Addresses not covered by the table use fallback.
func Listing(m *isa.Model, funcs *kelf.FuncTable, fallback *isa.ISA, code []byte, base uint32) []string {
	var out []string
	pc := uint32(0)
	for int(pc) < len(code) {
		cur := fallback
		if funcs != nil {
			if fi := funcs.Lookup(base + pc); fi != nil {
				if a := m.ISAByID(int(fi.ISA)); a != nil {
					cur = a
				}
				if fi.Start == base+pc {
					out = append(out, fmt.Sprintf("%08x <%s>:", base+pc, fi.Name))
				}
			}
		}
		n := cur.InstrBytes()
		if int(pc)+int(n) > len(code) {
			n = uint32(len(code)) - pc
			out = append(out, fmt.Sprintf("%08x:  <%d stray bytes>", base+pc, n))
			break
		}
		out = append(out, fmt.Sprintf("%08x:  %s", base+pc,
			DisassembleBundle(m, cur, code[pc:], base+pc)))
		pc += n
	}
	return out
}
