// Package asm implements the mixed-ISA assembler of the KAHRISMA
// toolchain (Sec. IV of the paper). It translates assembly files into
// relocatable ELF objects. The ISA can be switched mid-file with the
// `.isa` pseudo directive (the paper's "special assembly pseudo
// directive to notice the assembler about the used ISA"); the assembler
// also stores the assembly line map into a custom ELF section and
// forwards compiler-emitted `.loc` source positions (the paper's DWARF
// role) into a second map.
//
// Syntax summary:
//
//	# comment, // comment
//	label:            — define a label (local unless .global)
//	.isa VLIW4        — switch the active ISA
//	.text .data .rodata .bss
//	.global name      — export a symbol
//	.word .half .byte .space .ascii .asciz .align
//	.loc file line    — current C source position (from the compiler)
//	.func name / .endfunc — function range for the .kfuncs table
//	add rd, rs1, rs2  — one operation (a 1-op instruction)
//	{ op ; op ; op }  — a VLIW instruction: one operation per slot,
//	                    NOP-padded to the ISA's issue width
//
// Pseudo operations: li, la, mv, neg, jr, ret, call, b.
package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/kelf"
)

// Assemble translates one assembly source file into a relocatable
// object. filename is used in diagnostics and the line map.
func Assemble(m *isa.Model, filename, src string) (*kelf.File, error) {
	a := &assembler{
		model:   m,
		file:    filename,
		cur:     m.DefaultISA(),
		secs:    map[string]*section{},
		globals: map[string]bool{},
		symbols: map[string]*symdef{},
	}
	a.lineFile = a.lineMap.AddFile(filename)
	a.enterSection(kelf.SecText)
	a.run(src)
	if a.openFunc != "" {
		a.errorf(a.lineNo, "function %q not closed with .endfunc", a.openFunc)
	}
	if len(a.errs) > 0 {
		return nil, errors.Join(a.errs...)
	}
	return a.emit()
}

type section struct {
	name   string
	buf    []byte
	size   uint32 // .bss size
	relocs []kelf.Reloc
}

func (s *section) pc() uint32 {
	if s.name == kelf.SecBss {
		return s.size
	}
	return uint32(len(s.buf))
}

type symdef struct {
	section string
	value   uint32
	size    uint32
	isFunc  bool
	line    int
}

type assembler struct {
	model   *isa.Model
	file    string
	cur     *isa.ISA
	sec     *section
	order   []string
	secs    map[string]*section
	globals map[string]bool
	symbols map[string]*symdef
	errs    []error

	lineMap  kelf.LineMap
	lineFile uint16
	srcMap   kelf.LineMap
	srcFile  uint16
	srcLine  uint32
	haveSrc  bool

	funcs     kelf.FuncTable
	openFunc  string
	funcStart uint32

	lineNo int
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf("%s:%d: %s", a.file, line, fmt.Sprintf(format, args...)))
}

func (a *assembler) enterSection(name string) {
	s, ok := a.secs[name]
	if !ok {
		s = &section{name: name}
		a.secs[name] = s
		a.order = append(a.order, name)
	}
	a.sec = s
}

// run drives the line scanner, handling multi-line VLIW bundles.
func (a *assembler) run(src string) {
	lines := strings.Split(src, "\n")
	var bundle []string // pending slot texts
	var bundleLine int
	inBundle := false
	for i := 0; i < len(lines); i++ {
		a.lineNo = i + 1
		line := stripComment(lines[i])
		for {
			line = strings.TrimSpace(line)
			if line == "" {
				break
			}
			if !inBundle {
				// Labels (possibly several).
				if idx := labelEnd(line); idx > 0 {
					a.defineLabel(line[:idx-1])
					line = line[idx:]
					continue
				}
				if strings.HasPrefix(line, "{") {
					inBundle = true
					bundle = bundle[:0]
					bundleLine = a.lineNo
					line = line[1:]
					continue
				}
				if strings.HasPrefix(line, ".") {
					a.directive(line)
					break
				}
				a.instruction([]string{line}, a.lineNo)
				break
			}
			// Inside a bundle: collect slot texts until '}'.
			close := strings.IndexByte(line, '}')
			var chunk string
			if close >= 0 {
				chunk = line[:close]
			} else {
				chunk = line
			}
			for _, part := range strings.Split(chunk, ";") {
				if p := strings.TrimSpace(part); p != "" {
					bundle = append(bundle, p)
				}
			}
			if close < 0 {
				break
			}
			inBundle = false
			a.instruction(bundle, bundleLine)
			line = line[close+1:]
		}
	}
	if inBundle {
		a.errorf(bundleLine, "unterminated VLIW bundle")
	}
}

// stripComment removes # and // comments, honouring double quotes.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inStr = !inStr
		case inStr && c == '\\':
			i++
		case !inStr && c == '#':
			return line[:i]
		case !inStr && c == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

// labelEnd returns the index just past "name:" if line starts with a
// label definition, else 0.
func labelEnd(line string) int {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == ':' {
			if i == 0 {
				return 0
			}
			return i + 1
		}
		if !isSymChar(c) {
			return 0
		}
	}
	return 0
}

func isSymChar(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (a *assembler) defineLabel(name string) {
	if name == "" {
		a.errorf(a.lineNo, "empty label")
		return
	}
	if _, dup := a.symbols[name]; dup {
		a.errorf(a.lineNo, "label %q already defined", name)
		return
	}
	a.symbols[name] = &symdef{section: a.sec.name, value: a.sec.pc(), line: a.lineNo}
}

// ---------------------------------------------------------------------
// Directives

func (a *assembler) directive(line string) {
	name, rest := splitWord(line)
	switch name {
	case ".text", ".data", ".rodata", ".bss":
		a.enterSection(name)
	case ".isa":
		isaName := strings.TrimSpace(rest)
		tgt := a.model.ISAByName(isaName)
		if tgt == nil {
			a.errorf(a.lineNo, "unknown ISA %q", isaName)
			return
		}
		a.cur = tgt
	case ".global", ".globl":
		for _, s := range splitOperands(rest) {
			a.globals[s] = true
		}
	case ".word":
		a.emitData(rest, 4)
	case ".half":
		a.emitData(rest, 2)
	case ".byte":
		a.emitData(rest, 1)
	case ".space":
		n, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 32)
		if err != nil {
			a.errorf(a.lineNo, ".space: %v", err)
			return
		}
		a.reserve(uint32(n))
	case ".align":
		n, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 32)
		if err != nil || n == 0 || n&(n-1) != 0 {
			a.errorf(a.lineNo, ".align: need a power of two, got %q", rest)
			return
		}
		pc := a.sec.pc()
		pad := (uint32(n) - pc%uint32(n)) % uint32(n)
		a.reserve(pad)
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			a.errorf(a.lineNo, "%s: bad string %s: %v", name, rest, err)
			return
		}
		if a.sec.name == kelf.SecBss {
			a.errorf(a.lineNo, "%s not allowed in .bss", name)
			return
		}
		a.sec.buf = append(a.sec.buf, s...)
		if name == ".asciz" {
			a.sec.buf = append(a.sec.buf, 0)
		}
	case ".loc":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			a.errorf(a.lineNo, ".loc: want `file line`, got %q", rest)
			return
		}
		fname := strings.Trim(fields[0], `"`)
		ln, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			a.errorf(a.lineNo, ".loc: bad line %q", fields[1])
			return
		}
		a.srcFile = a.srcMap.AddFile(fname)
		a.srcLine = uint32(ln)
		a.haveSrc = true
	case ".func":
		fn := strings.TrimSpace(rest)
		if fn == "" {
			a.errorf(a.lineNo, ".func: missing name")
			return
		}
		if a.openFunc != "" {
			a.errorf(a.lineNo, ".func %s: previous function %q still open", fn, a.openFunc)
			return
		}
		if a.sec.name != kelf.SecText {
			a.errorf(a.lineNo, ".func outside .text")
			return
		}
		a.openFunc = fn
		a.funcStart = a.sec.pc()
	case ".endfunc":
		if a.openFunc == "" {
			a.errorf(a.lineNo, ".endfunc without .func")
			return
		}
		end := a.sec.pc()
		a.funcs.Add(kelf.FuncInfo{
			Name: a.openFunc, Start: a.funcStart, End: end, ISA: uint8(a.cur.ID),
		})
		if sd, ok := a.symbols[a.openFunc]; ok {
			sd.isFunc = true
			sd.size = end - sd.value
		}
		a.openFunc = ""
	default:
		a.errorf(a.lineNo, "unknown directive %q", name)
	}
}

func (a *assembler) reserve(n uint32) {
	if a.sec.name == kelf.SecBss {
		a.sec.size += n
		return
	}
	if a.sec.name == kelf.SecText {
		// Pad code with NOPs to keep every word decodable.
		nop := a.model.Op("NOP")
		for n >= 4 && nop != nil {
			w, _ := nop.Encode(isa.Operands{})
			a.putWord(w)
			n -= 4
		}
	}
	a.sec.buf = append(a.sec.buf, make([]byte, n)...)
}

func (a *assembler) putWord(w uint32) {
	a.sec.buf = append(a.sec.buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

func (a *assembler) emitData(rest string, width int) {
	if a.sec.name == kelf.SecBss {
		a.errorf(a.lineNo, "data directive not allowed in .bss")
		return
	}
	for _, opnd := range splitOperands(rest) {
		val, sym, addend, err := parseExpr(opnd)
		if err != nil {
			a.errorf(a.lineNo, "bad data expression %q: %v", opnd, err)
			continue
		}
		if sym != "" {
			if width != 4 {
				a.errorf(a.lineNo, "symbol reference %q needs .word", opnd)
				continue
			}
			a.sec.relocs = append(a.sec.relocs, kelf.Reloc{
				Offset: uint32(len(a.sec.buf)), Type: kelf.RelAbs32,
				Symbol: sym, Addend: int32(addend),
			})
			val = 0
		}
		switch width {
		case 4:
			a.putWord(uint32(val))
		case 2:
			if val < -(1<<15) || val >= 1<<16 {
				a.errorf(a.lineNo, ".half value %d out of range", val)
			}
			a.sec.buf = append(a.sec.buf, byte(val), byte(val>>8))
		case 1:
			if val < -(1<<7) || val >= 1<<8 {
				a.errorf(a.lineNo, ".byte value %d out of range", val)
			}
			a.sec.buf = append(a.sec.buf, byte(val))
		}
	}
}

// ---------------------------------------------------------------------
// Instructions

// instruction assembles one instruction (a bundle of slot texts) at the
// current location of the current section.
func (a *assembler) instruction(slots []string, line int) {
	if a.sec.name != kelf.SecText {
		a.errorf(line, "instruction outside .text")
		return
	}
	// Expand pseudo operations. Inside a multi-slot bundle an expansion
	// to more than one operation cannot be packed.
	var expanded []string
	for _, s := range slots {
		exp, err := a.expandPseudo(s)
		if err != nil {
			a.errorf(line, "%v", err)
			return
		}
		if len(slots) > 1 && len(exp) > 1 {
			a.errorf(line, "pseudo %q expands to %d operations and cannot appear in a bundle", s, len(exp))
			return
		}
		expanded = append(expanded, exp...)
	}
	if len(slots) > 1 || a.cur.Issue == 1 {
		// One bundle (or sequential RISC ops when expansion grew).
		if len(slots) > 1 {
			a.encodeBundle(expanded, line)
			return
		}
		for _, s := range expanded {
			a.encodeBundle([]string{s}, line)
		}
		return
	}
	// Bare ops in VLIW mode: each becomes its own 1-op bundle.
	for _, s := range expanded {
		a.encodeBundle([]string{s}, line)
	}
}

func (a *assembler) encodeBundle(ops []string, line int) {
	issue := a.cur.Issue
	if len(ops) > issue {
		a.errorf(line, "%d operations in a bundle, but %s issues %d", len(ops), a.cur.Name, issue)
		return
	}
	bundleAddr := a.sec.pc()
	a.lineMap.Add(bundleAddr, a.lineFile, uint32(line))
	if a.haveSrc {
		a.srcMap.Add(bundleAddr, a.srcFile, a.srcLine)
	}

	control := 0
	sysAlone := false
	written := map[int]bool{}
	for si, text := range ops {
		op, operands, err := a.parseOp(text)
		if err != nil {
			a.errorf(line, "%v", err)
			return
		}
		switch op.Class {
		case isa.ClassBranch, isa.ClassJump:
			control++
		case isa.ClassSys:
			sysAlone = true
		}
		if op.HasDst() {
			rd := int(operands.Rd)
			if rd != a.model.Regs.ZeroReg && written[rd] {
				a.errorf(line, "two operations in one instruction write %s", a.model.Regs.RegName(rd))
			}
			written[rd] = true
		}
		w, relocType, relocSym, relocAdd, err := a.encodeOp(op, operands, text)
		if err != nil {
			a.errorf(line, "%v", err)
			return
		}
		if relocType != 0 {
			a.sec.relocs = append(a.sec.relocs, kelf.Reloc{
				Offset: a.sec.pc(), Type: relocType, Symbol: relocSym, Addend: relocAdd,
			})
		}
		a.putWord(w)
		_ = si
	}
	if control > 1 {
		a.errorf(line, "more than one control-transfer operation in a bundle")
	}
	if sysAlone && len(ops) > 1 {
		a.errorf(line, "system operations (swt/simcall/halt) must be alone in an instruction")
	}
	// NOP-pad remaining slots.
	nop := a.model.Op("NOP")
	for i := len(ops); i < issue; i++ {
		w, _ := nop.Encode(isa.Operands{})
		a.putWord(w)
	}
}

// parsed operand bundle: register numbers plus a possibly-symbolic
// immediate.
type operandSet struct {
	Rd, Rs1, Rs2 uint8
	Imm          int64
	ImmSym       string // non-empty if the immediate is symbolic
	ImmAdd       int64
	ImmKind      string // "", "hi", "lo" (for %hi/%lo)
}

func (a *assembler) parseOp(text string) (*isa.Operation, operandSet, error) {
	mnemonic, rest := splitWord(text)
	op := a.model.Op(strings.ToUpper(mnemonic))
	if op == nil {
		return nil, operandSet{}, fmt.Errorf("unknown operation %q", mnemonic)
	}
	var o operandSet
	args := splitOperands(rest)
	reg := func(s string) (uint8, error) {
		idx, ok := a.model.Regs.Lookup(s)
		if !ok {
			return 0, fmt.Errorf("unknown register %q", s)
		}
		return uint8(idx), nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d operands, got %d (%q)", mnemonic, n, len(args), rest)
		}
		return nil
	}
	var err error
	switch op.Format.Name {
	case "R":
		if err = need(3); err == nil {
			if o.Rd, err = reg(args[0]); err == nil {
				if o.Rs1, err = reg(args[1]); err == nil {
					o.Rs2, err = reg(args[2])
				}
			}
		}
	case "I", "IU":
		if op.Class == isa.ClassLoad {
			if err = need(2); err == nil {
				if o.Rd, err = reg(args[0]); err == nil {
					err = a.parseMem(args[1], &o)
				}
			}
		} else {
			if err = need(3); err == nil {
				if o.Rd, err = reg(args[0]); err == nil {
					if o.Rs1, err = reg(args[1]); err == nil {
						err = a.parseImm(args[2], &o)
					}
				}
			}
		}
	case "U":
		if err = need(2); err == nil {
			if o.Rd, err = reg(args[0]); err == nil {
				err = a.parseImm(args[1], &o)
			}
		}
	case "S":
		if err = need(2); err == nil {
			if o.Rs2, err = reg(args[0]); err == nil {
				err = a.parseMem(args[1], &o)
			}
		}
	case "B":
		if err = need(3); err == nil {
			if o.Rs1, err = reg(args[0]); err == nil {
				if o.Rs2, err = reg(args[1]); err == nil {
					err = a.parseImm(args[2], &o)
				}
			}
		}
	case "J":
		if err = need(1); err == nil {
			err = a.parseImm(args[0], &o)
		}
	case "JR":
		if err = need(2); err == nil {
			if o.Rd, err = reg(args[0]); err == nil {
				o.Rs1, err = reg(args[1])
			}
		}
	case "SYS":
		if err = need(1); err == nil {
			// swt accepts an ISA name as well as a number.
			if tgt := a.model.ISAByName(args[0]); tgt != nil && strings.ToUpper(mnemonic) == "SWT" {
				o.Imm = int64(tgt.ID)
			} else {
				err = a.parseImm(args[0], &o)
			}
		}
	case "N0":
		err = need(0)
	default:
		err = fmt.Errorf("operation %s has unsupported format %s", op.Name, op.Format.Name)
	}
	if err != nil {
		return nil, operandSet{}, err
	}
	return op, o, nil
}

// parseMem parses `imm(reg)` or `(reg)`.
func (a *assembler) parseMem(s string, o *operandSet) error {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return fmt.Errorf("bad memory operand %q (want imm(reg))", s)
	}
	base := strings.TrimSpace(s[open+1 : len(s)-1])
	idx, ok := a.model.Regs.Lookup(base)
	if !ok {
		return fmt.Errorf("unknown base register %q", base)
	}
	o.Rs1 = uint8(idx)
	immText := strings.TrimSpace(s[:open])
	if immText == "" {
		o.Imm = 0
		return nil
	}
	return a.parseImm(immText, o)
}

// parseImm parses an immediate operand: integer, %hi(sym±n), %lo(sym±n)
// or symbol±n.
func (a *assembler) parseImm(s string, o *operandSet) error {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "%hi(") || strings.HasPrefix(s, "%lo(") {
		kind := s[1:3]
		if !strings.HasSuffix(s, ")") {
			return fmt.Errorf("bad %%%s operand %q", kind, s)
		}
		inner := s[4 : len(s)-1]
		val, sym, addend, err := parseExpr(inner)
		if err != nil {
			return err
		}
		if sym == "" {
			// Constant %hi/%lo folds immediately.
			if kind == "hi" {
				o.Imm = (val >> 16) & 0xFFFF
			} else {
				o.Imm = val & 0xFFFF
			}
			return nil
		}
		o.ImmSym, o.ImmAdd, o.ImmKind = sym, addend, kind
		return nil
	}
	val, sym, addend, err := parseExpr(s)
	if err != nil {
		return err
	}
	if sym != "" {
		o.ImmSym, o.ImmAdd = sym, addend
		return nil
	}
	o.Imm = val
	return nil
}

// encodeOp produces the operation word and, for symbolic operands, the
// relocation to attach at the word's offset.
func (a *assembler) encodeOp(op *isa.Operation, o operandSet, text string) (uint32, kelf.RelocType, string, int32, error) {
	ops := isa.Operands{Rd: o.Rd, Rs1: o.Rs1, Rs2: o.Rs2}
	var rt kelf.RelocType
	var sym string
	var addend int32

	if o.ImmSym != "" {
		sym = o.ImmSym
		addend = int32(o.ImmAdd)
		switch {
		case o.ImmKind == "hi":
			rt = kelf.RelHi16
		case o.ImmKind == "lo":
			rt = kelf.RelLo16
		case op.Class == isa.ClassBranch:
			rt = kelf.RelBr16
		case op.Format.Name == "J":
			rt = kelf.RelJ26
		default:
			return 0, 0, "", 0, fmt.Errorf("symbolic immediate %q not allowed in %q (use %%hi/%%lo)", sym, text)
		}
		ops.Imm = 0
	} else {
		imm := o.Imm
		switch {
		case op.Class == isa.ClassBranch:
			if imm%4 != 0 {
				return 0, 0, "", 0, fmt.Errorf("branch displacement %d not a multiple of 4", imm)
			}
			imm /= 4
		case op.Format.Name == "J":
			if imm%4 != 0 {
				return 0, 0, "", 0, fmt.Errorf("jump target %#x not word aligned", imm)
			}
			imm /= 4
		}
		if op.ImmField != nil && !op.ImmField.Fits(imm) {
			return 0, 0, "", 0, fmt.Errorf("immediate %d out of range in %q", o.Imm, text)
		}
		ops.Imm = int32(imm)
	}
	w, err := op.Encode(ops)
	if err != nil {
		return 0, 0, "", 0, fmt.Errorf("%q: %v", text, err)
	}
	return w, rt, sym, addend, nil
}

// expandPseudo rewrites pseudo operations into real ones.
func (a *assembler) expandPseudo(text string) ([]string, error) {
	mnemonic, rest := splitWord(text)
	args := splitOperands(rest)
	switch strings.ToLower(mnemonic) {
	case "li":
		if len(args) != 2 {
			return nil, fmt.Errorf("li: want `rd, imm`")
		}
		val, sym, _, err := parseExpr(args[1])
		if err != nil || sym != "" {
			return nil, fmt.Errorf("li: need a constant, got %q (use la for symbols)", args[1])
		}
		if val < -(1<<31) || val >= 1<<32 {
			return nil, fmt.Errorf("li: %d does not fit in 32 bits", val)
		}
		v32 := uint32(val)
		if val >= -(1<<15) && val < 1<<15 {
			return []string{fmt.Sprintf("addi %s, zero, %d", args[0], val)}, nil
		}
		hi := v32 >> 16
		lo := v32 & 0xFFFF
		out := []string{fmt.Sprintf("lui %s, %d", args[0], hi)}
		if lo != 0 {
			out = append(out, fmt.Sprintf("ori %s, %s, %d", args[0], args[0], lo))
		}
		return out, nil
	case "la":
		if len(args) != 2 {
			return nil, fmt.Errorf("la: want `rd, symbol`")
		}
		return []string{
			fmt.Sprintf("lui %s, %%hi(%s)", args[0], args[1]),
			fmt.Sprintf("ori %s, %s, %%lo(%s)", args[0], args[0], args[1]),
		}, nil
	case "mv":
		if len(args) != 2 {
			return nil, fmt.Errorf("mv: want `rd, rs`")
		}
		return []string{fmt.Sprintf("addi %s, %s, 0", args[0], args[1])}, nil
	case "neg":
		if len(args) != 2 {
			return nil, fmt.Errorf("neg: want `rd, rs`")
		}
		return []string{fmt.Sprintf("sub %s, zero, %s", args[0], args[1])}, nil
	case "jr":
		if len(args) != 1 {
			return nil, fmt.Errorf("jr: want `rs`")
		}
		return []string{fmt.Sprintf("jalr zero, %s", args[0])}, nil
	case "ret":
		return []string{"jalr zero, ra"}, nil
	case "call":
		if len(args) != 1 {
			return nil, fmt.Errorf("call: want `symbol`")
		}
		return []string{fmt.Sprintf("jal %s", args[0])}, nil
	case "b":
		if len(args) != 1 {
			return nil, fmt.Errorf("b: want `target`")
		}
		return []string{fmt.Sprintf("j %s", args[0])}, nil
	}
	return []string{text}, nil
}

// ---------------------------------------------------------------------
// Output

func (a *assembler) emit() (*kelf.File, error) {
	f := kelf.New(kelf.TypeRel)
	flags := map[string]uint32{
		kelf.SecText:   kelf.FlagAlloc | kelf.FlagExec,
		kelf.SecData:   kelf.FlagAlloc | kelf.FlagWrite,
		kelf.SecRodata: kelf.FlagAlloc,
		kelf.SecBss:    kelf.FlagAlloc | kelf.FlagWrite,
	}
	for _, name := range a.order {
		s := a.secs[name]
		if len(s.buf) == 0 && s.size == 0 && len(s.relocs) == 0 && name != kelf.SecText {
			continue
		}
		ks := &kelf.Section{Name: name, Flags: flags[name], Relocs: s.relocs}
		if name == kelf.SecBss {
			ks.Type = kelf.SecNobits
			ks.Size = s.size
		} else {
			ks.Type = kelf.SecProgbits
			ks.Data = s.buf
		}
		if err := f.AddSection(ks); err != nil {
			return nil, err
		}
	}
	// Debug sections.
	a.lineMap.Sort()
	a.srcMap.Sort()
	a.funcs.Sort()
	if len(a.lineMap.Entries) > 0 {
		_ = f.AddSection(&kelf.Section{Name: kelf.SecLineMap, Type: kelf.SecProgbits, Data: a.lineMap.Encode()})
	}
	if len(a.srcMap.Entries) > 0 {
		_ = f.AddSection(&kelf.Section{Name: kelf.SecSrcMap, Type: kelf.SecProgbits, Data: a.srcMap.Encode()})
	}
	if len(a.funcs.Funcs) > 0 {
		_ = f.AddSection(&kelf.Section{Name: kelf.SecFuncs, Type: kelf.SecProgbits, Data: a.funcs.Encode()})
	}

	// Defined symbols.
	for name, sd := range a.symbols {
		bind := kelf.BindLocal
		if a.globals[name] {
			bind = kelf.BindGlobal
		}
		st := kelf.SymNone
		if sd.isFunc {
			st = kelf.SymFunc
		} else if sd.section != kelf.SecText {
			st = kelf.SymObject
		}
		if err := f.AddSymbol(&kelf.Symbol{
			Name: name, Value: sd.value, Size: sd.size,
			Bind: bind, Type: st, Section: sd.section,
		}); err != nil {
			return nil, err
		}
	}
	// Undefined symbols referenced by relocations or declared .global.
	referenced := map[string]bool{}
	for _, s := range f.Sections {
		for _, r := range s.Relocs {
			referenced[r.Symbol] = true
		}
	}
	for g := range a.globals {
		referenced[g] = true
	}
	for name := range referenced {
		if _, defined := a.symbols[name]; defined {
			continue
		}
		if err := f.AddSymbol(&kelf.Symbol{Name: name, Bind: kelf.BindGlobal}); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ---------------------------------------------------------------------
// Small parsing helpers

// splitWord splits a line into its first word and the remainder.
func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

// splitOperands splits a comma-separated operand list, trimming spaces.
// Commas inside parentheses or quotes are kept (e.g. never occur in
// imm(reg), but strings may contain them).
func splitOperands(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			inStr = !inStr
		case inStr && c == '\\':
			i++
		case !inStr && c == '(':
			depth++
		case !inStr && c == ')':
			depth--
		case !inStr && c == ',' && depth == 0:
			if p := strings.TrimSpace(s[start:i]); p != "" {
				out = append(out, p)
			}
			start = i + 1
		}
	}
	if p := strings.TrimSpace(s[start:]); p != "" {
		out = append(out, p)
	}
	return out
}

// parseExpr parses `int`, `sym`, `sym+int` or `sym-int`. It returns
// either a constant value (sym == "") or a symbol plus addend.
func parseExpr(s string) (val int64, sym string, addend int64, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, "", 0, fmt.Errorf("empty expression")
	}
	if v, perr := strconv.ParseInt(s, 0, 64); perr == nil {
		return v, "", 0, nil
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, qerr := strconv.Unquote(s)
		if qerr == nil {
			r := []rune(body)
			if len(r) == 1 {
				return int64(r[0]), "", 0, nil
			}
		}
		return 0, "", 0, fmt.Errorf("bad character literal %q", s)
	}
	// sym, sym+n, sym-n
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			name := strings.TrimSpace(s[:i])
			if !validSym(name) {
				break
			}
			off, perr := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 0, 64)
			if perr != nil {
				return 0, "", 0, fmt.Errorf("bad offset in %q", s)
			}
			if s[i] == '-' {
				off = -off
			}
			return 0, name, off, nil
		}
	}
	if !validSym(s) {
		return 0, "", 0, fmt.Errorf("bad expression %q", s)
	}
	return 0, s, 0, nil
}

func validSym(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isSymChar(s[i]) {
			return false
		}
	}
	return s[0] < '0' || s[0] > '9'
}
