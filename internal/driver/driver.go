// Package driver wires the toolchain together: MiniC sources are
// compiled (cc), assembled (asm) and linked (link) into an executable,
// then loaded into a simulator instance (sim) — the full flow of
// Fig. 2 of the paper.
package driver

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/kelf"
	"repro/internal/link"
	"repro/internal/prof/span"
	"repro/internal/sim"
)

// Source is one input file.
type Source struct {
	Name string
	Text string
	Asm  bool // already assembly (skip the compiler)
}

// CSource is shorthand for a MiniC source file.
func CSource(name, text string) Source { return Source{Name: name, Text: text} }

// AsmSource is shorthand for an assembly source file.
func AsmSource(name, text string) Source { return Source{Name: name, Text: text, Asm: true} }

// Fingerprint returns a stable content hash of a build request — the
// target ISA plus every source in order (name, language, text) — for
// content-addressed caching of build artifacts. Two requests with the
// same fingerprint produce byte-identical executables, so a serving
// layer can skip the compile/assemble/link pipeline on repeats (the
// decode-cache idea of Sec. V-A lifted to toolchain granularity).
func Fingerprint(isaName string, sources ...Source) string {
	h := sha256.New()
	fmt.Fprintf(h, "isa=%s\n", isaName)
	for _, s := range sources {
		fmt.Fprintf(h, "--\nname=%q asm=%t len=%d\n", s.Name, s.Asm, len(s.Text))
		io.WriteString(h, s.Text)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Build compiles, assembles and links sources for the named target ISA.
func Build(m *isa.Model, isaName string, sources ...Source) (*kelf.File, error) {
	return BuildCtx(context.Background(), m, isaName, sources...)
}

// BuildCtx is Build with a context: when the context carries a span
// tracer (internal/prof/span), every toolchain stage — per-source
// compile and assemble, plus the final link — emits a timed span, so a
// serving layer can attribute build latency stage by stage.
func BuildCtx(ctx context.Context, m *isa.Model, isaName string, sources ...Source) (*kelf.File, error) {
	return BuildOptsCtx(ctx, m, cc.Options{ISA: isaName}, sources...)
}

// BuildOpts is Build with full compiler options (per-function ISA
// overrides for the automatic ISA selection, etc.).
func BuildOpts(m *isa.Model, ccOpts cc.Options, sources ...Source) (*kelf.File, error) {
	return BuildOptsCtx(context.Background(), m, ccOpts, sources...)
}

// BuildOptsCtx is BuildOpts with span tracing (see BuildCtx).
func BuildOptsCtx(ctx context.Context, m *isa.Model, ccOpts cc.Options, sources ...Source) (*kelf.File, error) {
	var objs []*kelf.File
	for _, src := range sources {
		text := src.Text
		if !src.Asm {
			_, sp := span.Start(ctx, "compile")
			sp.SetAttr("file", src.Name)
			compiled, err := cc.Compile(m, ccOpts, src.Name, src.Text)
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("driver: compiling %s: %w", src.Name, err)
			}
			text = compiled
		}
		_, sp := span.Start(ctx, "assemble")
		sp.SetAttr("file", src.Name)
		obj, err := asm.Assemble(m, src.Name+".s", text)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("driver: assembling %s: %w", src.Name, err)
		}
		objs = append(objs, obj)
	}
	opt := link.Defaults()
	opt.EntryISA = ccOpts.ISA
	_, sp := span.Start(ctx, "link")
	sp.SetAttr("objects", len(objs))
	exe, err := link.Link(m, objs, opt)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("driver: linking: %w", err)
	}
	return exe, nil
}

// Load builds and loads a program ready for simulation.
func Load(m *isa.Model, isaName string, sources ...Source) (*sim.Program, error) {
	exe, err := Build(m, isaName, sources...)
	if err != nil {
		return nil, err
	}
	return sim.LoadProgram(exe)
}

// Run builds and executes a program to completion with the given
// simulator options, returning the CPU (for statistics and memory
// inspection) and the exit status.
func Run(m *isa.Model, isaName string, opts sim.Options, sources ...Source) (*sim.CPU, sim.ExitStatus, error) {
	p, err := Load(m, isaName, sources...)
	if err != nil {
		return nil, sim.ExitStatus{}, err
	}
	cpu, err := sim.New(m, p, opts)
	if err != nil {
		return nil, sim.ExitStatus{}, err
	}
	st, err := cpu.Run()
	return cpu, st, err
}
