package driver_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/ktest"
	"repro/internal/sim"
)

func TestBuildMixedCAndAsmSources(t *testing.T) {
	m := ktest.Model(t)
	cSrc := `
int helper(int x);
int main() { return helper(20) + 1; }
`
	asmSrc := `
	.global helper
	.func helper
helper:
	slli a0, a0, 1
	ret
	.endfunc
`
	var out bytes.Buffer
	opts := sim.DefaultOptions()
	opts.Stdout = &out
	opts.MaxInstructions = 100000
	_, st, err := driver.Run(m, "RISC", opts,
		driver.CSource("main.c", cSrc),
		driver.AsmSource("helper.s", asmSrc))
	if err != nil {
		t.Fatal(err)
	}
	if st.ExitCode != 41 {
		t.Fatalf("exit = %d, want 41", st.ExitCode)
	}
}

func TestBuildReportsPhaseErrors(t *testing.T) {
	m := ktest.Model(t)
	cases := []struct {
		name string
		src  driver.Source
		want string
	}{
		{"compile", driver.CSource("x.c", "int main() { return y; }"), "compiling"},
		{"assemble", driver.AsmSource("x.s", "bogusop t0"), "assembling"},
		{"link", driver.CSource("x.c", "int main() { return other(); } int other();"), "linking"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := driver.Build(m, "RISC", tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want phase %q", err, tc.want)
			}
		})
	}
}

func TestLoadProducesRunnableProgram(t *testing.T) {
	m := ktest.Model(t)
	p, err := driver.Load(m, "VLIW2", driver.CSource("m.c", "int main() { return 9; }"))
	if err != nil {
		t.Fatal(err)
	}
	if p.EntryISA != m.ISAByName("VLIW2").ID {
		t.Fatalf("entry ISA = %d", p.EntryISA)
	}
	c := ktest.NewCPU(t, p, sim.DefaultOptions())
	st, err := c.Run()
	if err != nil || st.ExitCode != 9 {
		t.Fatalf("run: %v, exit %d", err, st.ExitCode)
	}
}
