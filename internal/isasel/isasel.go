// Package isasel implements the automatic per-function ISA selection
// the paper envisions (Sec. I) and names as future work (Sec. VIII):
// "we will use the cycle-approximate simulator as basis to address the
// problem of selecting an appropriate ISA e.g. on function granularity
// of a given application while taking reconfiguration overhead,
// resource consumption ... and performance into account."
//
// The flow:
//
//  1. Profile: simulate the RISC build once with the per-function ILP
//     measurement attached (the paper's selection indicator — no
//     ISA-by-application sweep needed).
//  2. Select: for every function with a relevant share of the dynamic
//     operations, choose the narrowest instance covering its
//     theoretical ILP; the fabric must be able to host the widest
//     choice next to the default instance.
//  3. Rebuild: recompile with per-function ISA overrides (SWITCHTARGET
//     pairs are inserted at every cross-ISA call site) and re-measure
//     with the DOE model, charging the fabric's reconfiguration cost
//     for every run-time switch.
package isasel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cc"
	"repro/internal/cycle"
	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Options tune the selection.
type Options struct {
	// BaseISA is the default instance (and the one main/crt0/libc run
	// on). Default "RISC".
	BaseISA string
	// Utilization derates the theoretical ILP before matching it to an
	// issue width (hardware rarely sustains the bound). Default 0.7.
	Utilization float64
	// MinOpsShare skips functions below this share of the dynamic
	// operations (reconfiguring for them cannot pay off). Default 0.02.
	MinOpsShare float64
	// Fabric prices reconfigurations and bounds the widest instance
	// (the selected instance must fit next to the base instance).
	Fabric fabric.Config
	// MaxInstructions bounds each simulation.
	MaxInstructions uint64
}

func (o *Options) defaults() {
	if o.BaseISA == "" {
		o.BaseISA = "RISC"
	}
	if o.Utilization <= 0 || o.Utilization > 1 {
		o.Utilization = 0.7
	}
	if o.MinOpsShare <= 0 {
		o.MinOpsShare = 0.02
	}
	if o.Fabric.EDPEs == 0 {
		o.Fabric = fabric.DefaultConfig()
	}
	if o.MaxInstructions == 0 {
		o.MaxInstructions = 500_000_000
	}
}

// Choice is one function's assignment.
type Choice struct {
	Function string
	ISA      string
	ILP      float64
	OpsShare float64
}

// Result reports the tuning outcome.
type Result struct {
	Choices []Choice

	// BaselineCycles: DOE cycles of the uniform BaseISA build.
	BaselineCycles uint64
	// TunedCycles: DOE cycles of the mixed-ISA build.
	TunedCycles uint64
	// ISASwitches and ReconfigCycles: run-time switches of the tuned
	// build and the fabric cost charged for them.
	ISASwitches    uint64
	ReconfigCycles uint64
	// TotalTunedCycles = TunedCycles + ReconfigCycles.
	TotalTunedCycles uint64
	// Speedup = BaselineCycles / TotalTunedCycles.
	Speedup float64
}

// AutoTune profiles, selects and re-measures.
func AutoTune(m *isa.Model, opts Options, sources ...driver.Source) (*Result, error) {
	opts.defaults()
	base := m.ISAByName(opts.BaseISA)
	if base == nil {
		return nil, fmt.Errorf("isasel: unknown base ISA %q", opts.BaseISA)
	}

	// ---- 1. profile the base build -------------------------------------
	prog, err := driver.Load(m, opts.BaseISA, sources...)
	if err != nil {
		return nil, err
	}
	pf := cycle.NewPerFunctionILP(m, prog)
	baseDOE := cycle.NewDOE(m, mem.Paper())
	cpu, err := newCPU(m, prog, opts)
	if err != nil {
		return nil, err
	}
	cpu.Attach(pf)
	cpu.Attach(baseDOE)
	if _, err := cpu.Run(); err != nil {
		return nil, fmt.Errorf("isasel: profiling run: %w", err)
	}
	res := &Result{BaselineCycles: baseDOE.Cycles()}
	totalOps := float64(cpu.Stats.Operations)

	// ---- 2. select ------------------------------------------------------
	// The fabric must host the widest selected instance next to the base
	// instance (main keeps running on it) — bound the width accordingly.
	fab, err := fabric.New(opts.Fabric)
	if err != nil {
		return nil, err
	}
	baseInst, err := fab.Instantiate(base)
	if err != nil {
		return nil, err
	}
	_ = baseInst
	maxIssue := fab.FreeEDPEs()

	overrides := map[string]string{}
	for _, f := range pf.Results() {
		share := float64(f.Operations) / totalOps
		if share < opts.MinOpsShare {
			continue
		}
		if f.Name == "main" || f.Name == "_start" || strings.Contains(f.Name, "<") {
			continue // the entry path stays on the base instance
		}
		choice := cycle.Recommend(m, f.ILP, opts.Utilization)
		for choice.Issue > maxIssue {
			choice = narrower(m, choice)
			if choice == nil {
				break
			}
		}
		if choice == nil || choice.Issue <= base.Issue {
			continue
		}
		// Cost-benefit: every invocation pays two SWITCHTARGET
		// reconfigurations (in and out). Estimate the cycles saved from
		// the ILP indicator — per-operation cost drops from roughly
		// 1/min(ILP, baseIssue) to 1/min(util*ILP, choiceIssue) — and
		// select only when the saving covers the reconfiguration bill
		// ("taking reconfiguration overhead ... into account", Sec. I).
		baseCost := 1.0 / minf(f.ILP, float64(base.Issue))
		tunedCost := 1.0 / minf(f.ILP*opts.Utilization, float64(choice.Issue))
		saved := float64(f.Operations) * (baseCost - tunedCost)
		delta := choice.Issue - base.Issue
		bill := float64(2*f.Calls) * float64(opts.Fabric.ReconfigBaseCycles+
			opts.Fabric.ReconfigPerEDPE*uint64(delta))
		if saved <= bill {
			continue
		}
		overrides[f.Name] = choice.Name
		res.Choices = append(res.Choices, Choice{
			Function: f.Name, ISA: choice.Name, ILP: f.ILP, OpsShare: share,
		})
	}
	sort.Slice(res.Choices, func(i, j int) bool {
		return res.Choices[i].OpsShare > res.Choices[j].OpsShare
	})
	if len(overrides) == 0 {
		// Nothing worth reconfiguring for: the tuned build is the base.
		res.TunedCycles = res.BaselineCycles
		res.TotalTunedCycles = res.BaselineCycles
		res.Speedup = 1
		return res, nil
	}

	// ---- 3. rebuild mixed-ISA and re-measure ----------------------------
	exe, err := driver.BuildOpts(m, cc.Options{ISA: opts.BaseISA, FunctionISA: overrides}, sources...)
	if err != nil {
		return nil, fmt.Errorf("isasel: mixed-ISA rebuild: %w", err)
	}
	tunedProg, err := sim.LoadProgram(exe)
	if err != nil {
		return nil, err
	}
	tunedDOE := cycle.NewDOE(m, mem.Paper())
	// Charge the fabric's reconfiguration price per run-time switch.
	var reconfig uint64
	o := sim.DefaultOptions()
	o.MaxInstructions = opts.MaxInstructions
	o.OnISASwitch = func(from, to *isa.ISA) error {
		delta := to.Issue - from.Issue
		if delta < 0 {
			delta = -delta
		}
		reconfig += opts.Fabric.ReconfigBaseCycles + opts.Fabric.ReconfigPerEDPE*uint64(delta)
		return nil
	}
	cpu2, err := sim.New(m, tunedProg, o)
	if err != nil {
		return nil, err
	}
	cpu2.Attach(tunedDOE)
	if _, err := cpu2.Run(); err != nil {
		return nil, fmt.Errorf("isasel: tuned run: %w", err)
	}
	res.TunedCycles = tunedDOE.Cycles()
	res.ISASwitches = cpu2.Stats.ISASwitches
	res.ReconfigCycles = reconfig
	res.TotalTunedCycles = res.TunedCycles + reconfig
	if res.TotalTunedCycles > 0 {
		res.Speedup = float64(res.BaselineCycles) / float64(res.TotalTunedCycles)
	}
	return res, nil
}

func newCPU(m *isa.Model, p *sim.Program, opts Options) (*sim.CPU, error) {
	o := sim.DefaultOptions()
	o.MaxInstructions = opts.MaxInstructions
	return sim.New(m, p, o)
}

// narrower returns the widest ISA strictly narrower than a, or nil.
func narrower(m *isa.Model, a *isa.ISA) *isa.ISA {
	var best *isa.ISA
	for _, cand := range m.ISAs {
		if cand.Issue < a.Issue && (best == nil || cand.Issue > best.Issue) {
			best = cand
		}
	}
	return best
}

// Render formats the result for tools.
func (r *Result) Render() string {
	var sb strings.Builder
	sb.WriteString("automatic per-function ISA selection:\n")
	if len(r.Choices) == 0 {
		sb.WriteString("  no function worth reconfiguring for; staying on the base instance\n")
	}
	for _, c := range r.Choices {
		fmt.Fprintf(&sb, "  %-20s -> %-6s (ILP %.2f, %.1f%% of dynamic ops)\n",
			c.Function, c.ISA, c.ILP, 100*c.OpsShare)
	}
	fmt.Fprintf(&sb, "baseline: %d cycles\n", r.BaselineCycles)
	fmt.Fprintf(&sb, "tuned:    %d cycles + %d reconfiguration (%d switches) = %d\n",
		r.TunedCycles, r.ReconfigCycles, r.ISASwitches, r.TotalTunedCycles)
	fmt.Fprintf(&sb, "speedup:  %.2fx\n", r.Speedup)
	return sb.String()
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
