package isasel_test

import (
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/isasel"
	"repro/internal/ktest"
)

// tunableApp has a hot, wide kernel and serial control code: the
// selector should move the kernel to a wide instance and leave the rest
// on RISC, and the mixed build should win despite reconfigurations.
const tunableApp = `
int data[128];
int coef[16];

// filt processes a whole stripe per call, so a run-time ISA switch
// amortizes over many windows (the per-call switching bill matters:
// the selector must weigh it against the compute saving).
int filt(int* x, int n) {
    int acc = 0;
    for (int i = 0; i + 16 <= n; i += 8) {
        int* w = x + i;
        int a0 = w[0]*coef[0];   int a1 = w[1]*coef[1];
        int a2 = w[2]*coef[2];   int a3 = w[3]*coef[3];
        int a4 = w[4]*coef[4];   int a5 = w[5]*coef[5];
        int a6 = w[6]*coef[6];   int a7 = w[7]*coef[7];
        int a8 = w[8]*coef[8];   int a9 = w[9]*coef[9];
        int a10 = w[10]*coef[10]; int a11 = w[11]*coef[11];
        int a12 = w[12]*coef[12]; int a13 = w[13]*coef[13];
        int a14 = w[14]*coef[14]; int a15 = w[15]*coef[15];
        acc += (((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7)))
             + (((a8+a9)+(a10+a11)) + ((a12+a13)+(a14+a15)));
    }
    return acc;
}

int main() {
    for (int i = 0; i < 16; i++) coef[i] = i + 1;
    for (int i = 0; i < 128; i++) data[i] = (i * 29) & 127;
    int acc = 0;
    for (int r = 0; r < 32; r++) {
        acc += filt(data, 128);
    }
    return acc & 0xFF;
}
`

func TestAutoTuneFindsTheKernel(t *testing.T) {
	m := ktest.Model(t)
	res, err := isasel.AutoTune(m, isasel.Options{},
		driver.CSource("app.c", tunableApp))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	var kernel *isasel.Choice
	for i := range res.Choices {
		if res.Choices[i].Function == "filt" {
			kernel = &res.Choices[i]
		}
		if res.Choices[i].Function == "main" {
			t.Error("main must stay on the base instance")
		}
	}
	if kernel == nil {
		t.Fatalf("filt not selected; choices: %+v", res.Choices)
	}
	if !strings.HasPrefix(kernel.ISA, "VLIW") {
		t.Errorf("filt assigned %s, want a VLIW instance", kernel.ISA)
	}
	if res.ISASwitches == 0 || res.ReconfigCycles == 0 {
		t.Errorf("no reconfiguration accounted: %+v", res)
	}
	if res.Speedup <= 1.0 {
		t.Errorf("tuned build is not faster: baseline %d, tuned total %d",
			res.BaselineCycles, res.TotalTunedCycles)
	}
}

func TestAutoTuneRespectsFabricLimits(t *testing.T) {
	m := ktest.Model(t)
	// A 3-EDPE fabric: base RISC takes one element, so nothing wider
	// than 2-issue can be selected.
	cfg := fabric.Config{EDPEs: 3, FetchTiles: 2, ReconfigBaseCycles: 8, ReconfigPerEDPE: 4}
	res, err := isasel.AutoTune(m, isasel.Options{Fabric: cfg},
		driver.CSource("app.c", tunableApp))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Choices {
		a := m.ISAByName(c.ISA)
		if a == nil {
			t.Fatalf("unknown ISA %q in choices", c.ISA)
		}
		if a.Issue > 2 {
			t.Errorf("%s assigned %s (issue %d) on a 3-EDPE fabric", c.Function, c.ISA, a.Issue)
		}
	}
}

func TestAutoTuneSerialProgramStaysPut(t *testing.T) {
	m := ktest.Model(t)
	src := `
int mix(int n) {
    uint s = 1;
    for (int i = 0; i < n; i++) s = s * 1103515245 + 12345;
    return (int)(s >> 24);
}
int main() {
    int acc = 0;
    for (int i = 0; i < 64; i++) acc += mix(32);
    return acc & 0xFF;
}
`
	res, err := isasel.AutoTune(m, isasel.Options{Utilization: 0.9},
		driver.CSource("app.c", src))
	if err != nil {
		t.Fatal(err)
	}
	// A serial program may still get a narrow VLIW choice; it must never
	// claim a wide instance, and the tuned build must not regress badly.
	for _, c := range res.Choices {
		if c.ISA == "VLIW6" || c.ISA == "VLIW8" {
			t.Errorf("serial function %s assigned %s", c.Function, c.ISA)
		}
	}
	if res.Speedup < 0.85 {
		t.Errorf("tuning regressed a serial program: %.2fx", res.Speedup)
	}
}

func TestAutoTuneErrors(t *testing.T) {
	m := ktest.Model(t)
	if _, err := isasel.AutoTune(m, isasel.Options{BaseISA: "NOPE"},
		driver.CSource("a.c", "int main() { return 0; }")); err == nil {
		t.Error("bogus base ISA accepted")
	}
	if _, err := isasel.AutoTune(m, isasel.Options{},
		driver.CSource("a.c", "int main() { return x; }")); err == nil {
		t.Error("compile error not propagated")
	}
}
