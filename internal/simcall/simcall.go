// Package simcall defines the C-standard-library emulation interface of
// the simulator (Sec. V-E of the paper): each emulated library function
// has an identification number encoded as the immediate of the SIMCALL
// operation. The linker generates a stub function per entry (body =
// `simcall N; ret`) so the functions are visible to symbol resolution;
// the simulator executes the call natively against the simulated
// register file and memory.
package simcall

// Function identification numbers (SIMCALL immediates).
const (
	Exit    = 0  // exit(code)                — terminates simulation
	Putchar = 1  // putchar(c) -> c
	Puts    = 2  // puts(s) -> 0              — appends '\n' like C puts
	Printf  = 3  // printf(fmt, ...) -> chars — %d %u %x %c %s %% supported
	Malloc  = 4  // malloc(n) -> ptr          — bump allocator, 8-aligned
	Free    = 5  // free(p)                   — no-op
	Memcpy  = 6  // memcpy(dst, src, n) -> dst
	Memset  = 7  // memset(dst, c, n) -> dst
	Rand    = 8  // rand() -> [0, 2^31)       — deterministic LCG
	Srand   = 9  // srand(seed)
	Clock   = 10 // clock() -> executed instruction count
	Abort   = 11 // abort()                   — terminates with error
	Strlen  = 12 // strlen(s) -> n
	Strcmp  = 13 // strcmp(a, b) -> sign
	Getchar = 14 // getchar() -> byte or -1   — reads simulator stdin
)

// Names maps linker-visible function names to identification numbers.
// The paper's scheme: "an automatically generated assembly file
// containing a small function body for each library function".
var Names = map[string]int{
	"exit":    Exit,
	"putchar": Putchar,
	"puts":    Puts,
	"printf":  Printf,
	"malloc":  Malloc,
	"free":    Free,
	"memcpy":  Memcpy,
	"memset":  Memset,
	"rand":    Rand,
	"srand":   Srand,
	"clock":   Clock,
	"abort":   Abort,
	"strlen":  Strlen,
	"strcmp":  Strcmp,
	"getchar": Getchar,
}
