// OTLP/HTTP JSON export: hand-rolled encoding of finished spans and
// registry snapshots against the OpenTelemetry protocol endpoints
// (/v1/traces, /v1/metrics), stdlib-only. Spans arrive through the
// span.Sink interface on a bounded non-blocking queue; a background
// loop flushes on a timer or when a batch fills, retrying transient
// failures with doubling backoff and counting what it drops.
package obs

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/prof/span"
)

// ExporterConfig configures an Exporter. Zero values select the
// defaults noted on each field.
type ExporterConfig struct {
	// Endpoint is the collector base URL (e.g. http://localhost:4318);
	// the exporter posts to Endpoint+"/v1/traces" and "/v1/metrics".
	Endpoint string
	// Service is the resource service.name (default "kservd").
	Service string
	// Interval between flushes (default 10s).
	Interval time.Duration
	// QueueSize bounds the pending-span queue (default 2048).
	QueueSize int
	// BatchSize is the max spans per export request (default 512).
	BatchSize int
	// Retries per request after the first attempt (default 2).
	Retries int
	// Backoff before the first retry, doubling each attempt
	// (default 250ms).
	Backoff time.Duration
	// Client overrides the HTTP client (default: 5s timeout).
	Client *http.Client
	// Logger for export failures; nil discards.
	Logger *slog.Logger
}

// Exporter batches spans and metric snapshots to an OTLP/HTTP
// collector. It implements span.Sink.
type Exporter struct {
	cfg      ExporterConfig
	reg      *Registry
	client   *http.Client
	spans    chan span.SpanData
	wake     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	stop     chan struct{}

	// Self-telemetry, registered on the attached registry.
	exported *Counter
	dropped  *Counter
	failures *Counter
}

// NewExporter starts an exporter shipping spans (via Sink) and
// snapshots of reg to cfg.Endpoint. Call Shutdown to flush and stop.
func NewExporter(cfg ExporterConfig, reg *Registry) *Exporter {
	if cfg.Service == "" {
		cfg.Service = "kservd"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 2048
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	e := &Exporter{
		cfg:    cfg,
		reg:    reg,
		client: cfg.Client,
		spans:  make(chan span.SpanData, cfg.QueueSize),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		stop:   make(chan struct{}),
	}
	if e.client == nil {
		e.client = &http.Client{Timeout: 5 * time.Second}
	}
	if reg != nil {
		e.exported = reg.Counter("kservd_otlp_exported_total", "Spans successfully exported over OTLP.")
		e.dropped = reg.Counter("kservd_otlp_dropped_total", "Spans dropped by the OTLP exporter (queue full or export failed).")
		e.failures = reg.Counter("kservd_otlp_request_failures_total", "OTLP export requests that failed after retries.")
	} else {
		e.exported, e.dropped, e.failures = &Counter{}, &Counter{}, &Counter{}
	}
	go e.loop()
	return e
}

// ExportSpan implements span.Sink: non-blocking enqueue, dropping (and
// counting) when the queue is full so the simulation path never stalls
// on a slow collector.
func (e *Exporter) ExportSpan(sd span.SpanData) {
	select {
	case e.spans <- sd:
		if len(e.spans) >= e.cfg.BatchSize {
			select {
			case e.wake <- struct{}{}:
			default:
			}
		}
	default:
		e.dropped.Inc()
	}
}

// Dropped reports spans dropped so far (queue overflow plus export
// failures).
func (e *Exporter) Dropped() uint64 { return e.dropped.Value() }

func (e *Exporter) loop() {
	defer close(e.done)
	tick := time.NewTicker(e.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			e.flushSpans()
			e.flushMetrics()
			return
		case <-tick.C:
			e.flushSpans()
			e.flushMetrics()
		case <-e.wake:
			e.flushSpans()
		}
	}
}

// Shutdown flushes pending telemetry and stops the exporter. The ctx
// bounds the wait for the final flush.
func (e *Exporter) Shutdown(ctx context.Context) error {
	e.stopOnce.Do(func() { close(e.stop) })
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Exporter) drain() []span.SpanData {
	var out []span.SpanData
	for len(out) < e.cfg.BatchSize {
		select {
		case sd := <-e.spans:
			out = append(out, sd)
		default:
			return out
		}
	}
	return out
}

func (e *Exporter) flushSpans() {
	for {
		batch := e.drain()
		if len(batch) == 0 {
			return
		}
		body := EncodeSpans(e.cfg.Service, batch)
		if e.post("/v1/traces", body) {
			e.exported.Add(uint64(len(batch)))
		} else {
			e.dropped.Add(uint64(len(batch)))
		}
		if len(batch) < e.cfg.BatchSize {
			return
		}
	}
}

func (e *Exporter) flushMetrics() {
	if e.reg == nil {
		return
	}
	body := EncodeMetrics(e.cfg.Service, e.reg.Snapshot(), uint64(time.Now().UnixNano()))
	e.post("/v1/metrics", body)
}

// post sends body to the endpoint path, retrying transient failures
// with doubling backoff. Returns true on a 2xx response.
func (e *Exporter) post(path string, body []byte) bool {
	url := strings.TrimSuffix(e.cfg.Endpoint, "/") + path
	backoff := e.cfg.Backoff
	for attempt := 0; ; attempt++ {
		resp, err := e.client.Post(url, "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				return true
			}
			err = fmt.Errorf("collector returned %s", resp.Status)
		}
		if attempt >= e.cfg.Retries {
			e.failures.Inc()
			if e.cfg.Logger != nil {
				e.cfg.Logger.Warn("otlp export failed", "path", path, "attempts", attempt+1, "err", err)
			}
			return false
		}
		select {
		case <-e.stop:
			// Shutting down: one last immediate retry budget only.
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// --- OTLP/HTTP JSON encoding ---
//
// The shapes below mirror the OTLP JSON mapping of
// opentelemetry-proto: 64-bit integers are encoded as strings,
// trace/span ids as lowercase hex, enums as their numeric values
// (span kind 1 = INTERNAL, status code 2 = ERROR, aggregation
// temporality 2 = CUMULATIVE).

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpAnyValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

func strValue(s string) otlpAnyValue { return otlpAnyValue{StringValue: &s} }

func attrValue(v slog.Value) otlpAnyValue {
	switch v.Kind() {
	case slog.KindInt64:
		s := strconv.FormatInt(v.Int64(), 10)
		return otlpAnyValue{IntValue: &s}
	case slog.KindUint64:
		s := strconv.FormatUint(v.Uint64(), 10)
		return otlpAnyValue{IntValue: &s}
	case slog.KindFloat64:
		f := v.Float64()
		return otlpAnyValue{DoubleValue: &f}
	case slog.KindBool:
		b := v.Bool()
		return otlpAnyValue{BoolValue: &b}
	default:
		return strValue(v.String())
	}
}

type otlpStatus struct {
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Status            otlpStatus     `json:"status"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpTraceExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

const scopeName = "repro/internal/obs"

func resourceFor(service string) otlpResource {
	return otlpResource{Attributes: []otlpKeyValue{{Key: "service.name", Value: strValue(service)}}}
}

// EncodeSpans builds the OTLP/HTTP JSON body for a span batch.
// Exported (with a deterministic layout) so golden-file tests can pin
// the wire format.
func EncodeSpans(service string, spans []span.SpanData) []byte {
	out := make([]otlpSpan, 0, len(spans))
	for _, sd := range spans {
		s := otlpSpan{
			TraceID:           hex.EncodeToString(sd.Trace[:]),
			SpanID:            hex.EncodeToString(sd.Span[:]),
			Name:              sd.Name,
			Kind:              1, // INTERNAL
			StartTimeUnixNano: strconv.FormatInt(sd.Start.UnixNano(), 10),
			EndTimeUnixNano:   strconv.FormatInt(sd.End.UnixNano(), 10),
		}
		if sd.Parent != (span.SpanID{}) {
			s.ParentSpanID = hex.EncodeToString(sd.Parent[:])
		}
		for _, a := range sd.Attrs {
			s.Attributes = append(s.Attributes, otlpKeyValue{Key: a.Key, Value: attrValue(a.Value)})
		}
		if sd.Err != nil {
			s.Status = otlpStatus{Code: 2, Message: sd.Err.Error()}
		}
		out = append(out, s)
	}
	doc := otlpTraceExport{ResourceSpans: []otlpResourceSpans{{
		Resource:   resourceFor(service),
		ScopeSpans: []otlpScopeSpans{{Scope: otlpScope{Name: scopeName}, Spans: out}},
	}}}
	b, _ := json.Marshal(doc)
	return b
}

type otlpDataPoint struct {
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
	TimeUnixNano string         `json:"timeUnixNano"`
	AsDouble     *float64       `json:"asDouble,omitempty"`
	AsInt        *string        `json:"asInt,omitempty"`
}

type otlpHistPoint struct {
	Attributes     []otlpKeyValue `json:"attributes,omitempty"`
	TimeUnixNano   string         `json:"timeUnixNano"`
	Count          string         `json:"count"`
	Sum            float64        `json:"sum"`
	BucketCounts   []string       `json:"bucketCounts"`
	ExplicitBounds []float64      `json:"explicitBounds"`
}

type otlpSum struct {
	DataPoints             []otlpDataPoint `json:"dataPoints"`
	AggregationTemporality int             `json:"aggregationTemporality"`
	IsMonotonic            bool            `json:"isMonotonic"`
}

type otlpGauge struct {
	DataPoints []otlpDataPoint `json:"dataPoints"`
}

type otlpHistogram struct {
	DataPoints             []otlpHistPoint `json:"dataPoints"`
	AggregationTemporality int             `json:"aggregationTemporality"`
}

type otlpMetric struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Sum         *otlpSum       `json:"sum,omitempty"`
	Gauge       *otlpGauge     `json:"gauge,omitempty"`
	Histogram   *otlpHistogram `json:"histogram,omitempty"`
}

type otlpScopeMetrics struct {
	Scope   otlpScope    `json:"scope"`
	Metrics []otlpMetric `json:"metrics"`
}

type otlpResourceMetrics struct {
	Resource     otlpResource       `json:"resource"`
	ScopeMetrics []otlpScopeMetrics `json:"scopeMetrics"`
}

type otlpMetricExport struct {
	ResourceMetrics []otlpResourceMetrics `json:"resourceMetrics"`
}

func pointAttrs(labels []Label) []otlpKeyValue {
	var out []otlpKeyValue
	for _, l := range labels {
		out = append(out, otlpKeyValue{Key: l.Key, Value: strValue(l.Value)})
	}
	return out
}

// EncodeMetrics builds the OTLP/HTTP JSON body for a registry
// snapshot taken at nowNano. Counters map to monotonic cumulative
// sums, gauges to gauges, histograms to cumulative histogram points.
func EncodeMetrics(service string, ms []Metric, nowNano uint64) []byte {
	now := strconv.FormatUint(nowNano, 10)
	out := make([]otlpMetric, 0, len(ms))
	for _, m := range ms {
		om := otlpMetric{Name: m.Name, Description: m.Help}
		switch m.Kind {
		case KindCounter:
			sum := &otlpSum{AggregationTemporality: 2, IsMonotonic: true}
			for _, p := range m.Points {
				v := strconv.FormatUint(uint64(p.Value), 10)
				sum.DataPoints = append(sum.DataPoints, otlpDataPoint{
					Attributes: pointAttrs(p.Labels), TimeUnixNano: now, AsInt: &v,
				})
			}
			om.Sum = sum
		case KindGauge:
			g := &otlpGauge{}
			for _, p := range m.Points {
				v := p.Value
				g.DataPoints = append(g.DataPoints, otlpDataPoint{
					Attributes: pointAttrs(p.Labels), TimeUnixNano: now, AsDouble: &v,
				})
			}
			om.Gauge = g
		case KindHistogram:
			h := &otlpHistogram{AggregationTemporality: 2}
			for _, p := range m.Points {
				counts := make([]string, len(p.Counts))
				for i, c := range p.Counts {
					counts[i] = strconv.FormatUint(c, 10)
				}
				h.DataPoints = append(h.DataPoints, otlpHistPoint{
					Attributes: pointAttrs(p.Labels), TimeUnixNano: now,
					Count: strconv.FormatUint(p.Count, 10), Sum: p.Sum,
					BucketCounts: counts, ExplicitBounds: m.Bounds,
				})
			}
			om.Histogram = h
		}
		out = append(out, om)
	}
	doc := otlpMetricExport{ResourceMetrics: []otlpResourceMetrics{{
		Resource:     resourceFor(service),
		ScopeMetrics: []otlpScopeMetrics{{Scope: otlpScope{Name: scopeName}, Metrics: out}},
	}}}
	b, _ := json.Marshal(doc)
	return b
}
