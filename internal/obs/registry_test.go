package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestCounterRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(4)
	v := r.CounterVec("rejects_total", "Rejects.", "reason")
	v.With("full").Add(2)
	v.With("draining").Inc()

	var b strings.Builder
	r.Render(&b)
	out := b.String()
	want := []string{
		"# HELP jobs_total Jobs.",
		"# TYPE jobs_total counter",
		"jobs_total 5",
		"# TYPE rejects_total counter",
		`rejects_total{reason="draining"} 1`,
		`rejects_total{reason="full"} 2`,
	}
	for _, w := range want {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("render missing %q:\n%s", w, out)
		}
	}
	// Children render sorted by label value: draining before full.
	if strings.Index(out, `reason="draining"`) > strings.Index(out, `reason="full"`) {
		t.Errorf("labeled children not sorted:\n%s", out)
	}
}

func TestGaugeRenderFormats(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up", "Up.", "%d").Set(1)
	r.Gauge("rate", "Rate.", "%.4f").Set(0.421875)
	r.Gauge("plain", "Plain.", "").Set(2.5)
	g := r.Gauge("temp", "Temp.", "")
	g.Set(10)
	g.Add(-2.5)

	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, w := range []string{"up 1\n", "rate 0.4219\n", "plain 2.5\n", "temp 7.5\n"} {
		if !strings.Contains(out, w) {
			t.Errorf("render missing %q:\n%s", w, out)
		}
	}
}

// Histogram rendering must satisfy the Prometheus contract: cumulative
// buckets are monotonically non-decreasing, the +Inf bucket equals
// _count, and _sum is the exact sum of observations.
func TestHistogramRenderConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	obs := []float64{0.005, 0.01, 0.02, 0.5, 3, 0.004}
	sum := 0.0
	for _, v := range obs {
		h.Observe(v)
		sum += v
	}

	var b strings.Builder
	r.Render(&b)
	buckets, bsum, count := parseHistogram(t, b.String(), "lat_seconds")

	if len(buckets) != 4 {
		t.Fatalf("buckets = %v, want 4 (le 0.01, 0.1, 1, +Inf)", buckets)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Errorf("bucket counts not monotonic: %v", buckets)
		}
	}
	// 0.005, 0.01, 0.004 <= 0.01; +0.02 <= 0.1; +0.5 <= 1; +3 overflow.
	if buckets[0] != 3 || buckets[1] != 4 || buckets[2] != 5 || buckets[3] != 6 {
		t.Errorf("cumulative buckets = %v, want [3 4 5 6]", buckets)
	}
	if buckets[len(buckets)-1] != count {
		t.Errorf("+Inf bucket %d != _count %d", buckets[len(buckets)-1], count)
	}
	if count != uint64(len(obs)) {
		t.Errorf("_count = %d, want %d", count, len(obs))
	}
	if bsum != sum {
		t.Errorf("_sum = %v, want %v", bsum, sum)
	}
}

// parseHistogram extracts the cumulative bucket counts (in le order),
// sum and count of one histogram family from rendered text.
func parseHistogram(t *testing.T, out, name string) (buckets []uint64, sum float64, count uint64) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, name+"_bucket"):
			var v uint64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			buckets = append(buckets, v)
		case strings.HasPrefix(line, name+"_sum"):
			f, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("bad sum line %q: %v", line, err)
			}
			sum = f
		case strings.HasPrefix(line, name+"_count"):
			var v uint64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}
	return buckets, sum, count
}

func TestOnCollectRunsBeforeRenderAndSnapshot(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Depth.", "%d")
	n := 0
	r.OnCollect(func() { n++; g.Set(float64(n)) })

	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), "depth 1\n") {
		t.Errorf("collect did not run before render:\n%s", b.String())
	}
	ms := r.Snapshot()
	if len(ms) != 1 || ms[0].Points[0].Value != 2 {
		t.Errorf("collect did not run before snapshot: %+v", ms)
	}
}

func TestSnapshotHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", "D.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	ms := r.Snapshot()
	p := ms[0].Points[0]
	if len(p.Counts) != 3 || p.Counts[0] != 1 || p.Counts[1] != 1 || p.Counts[2] != 1 {
		t.Errorf("snapshot bucket counts = %v, want [1 1 1] (non-cumulative)", p.Counts)
	}
	if p.Count != 3 || p.Sum != 101 {
		t.Errorf("snapshot count/sum = %d/%v, want 3/101", p.Count, p.Sum)
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "One.")
	mustPanic(t, "duplicate registration", func() { r.Gauge("dup", "Two.", "") })
	mustPanic(t, "non-ascending bounds", func() { r.Histogram("h", "H.", []float64{1, 1}) })
	v := r.CounterVec("vec", "V.", "a", "b")
	mustPanic(t, "label arity", func() { v.With("only-one") })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", what)
		}
	}()
	f()
}

func TestCounterVecLookup(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "C.", "model")
	if _, ok := v.Lookup("ILP"); ok {
		t.Error("Lookup created a series")
	}
	v.With("ILP").Add(3)
	c, ok := v.Lookup("ILP")
	if !ok || c.Value() != 3 {
		t.Errorf("Lookup after With = %v, %v", c, ok)
	}
}
