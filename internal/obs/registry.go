// Package obs is the server's unified telemetry layer: a typed metrics
// registry (labeled counters, gauges and fixed-bucket histograms) with
// a Prometheus text renderer, plus an OTLP/HTTP JSON exporter (otlp.go)
// that ships finished pipeline spans and registry snapshots to an
// OpenTelemetry collector. Like the rest of the repo it is
// stdlib-only: the OTLP wire format is hand-rolled JSON, the way
// internal/prof hand-rolls the pprof protobuf.
//
// The registry replaces the raw-atomic metric fields the server layer
// used to keep (cmd/kvet's obsreg check flags reintroductions): every
// instrument is registered once with its name and help text, rendered
// on /metrics in registration order, and snapshotted for OTLP export —
// one source of truth for both wire formats.
//
// All instruments are safe for concurrent use; updates are single
// atomic operations (histogram observation: two atomics plus a CAS
// loop for the sum), so instrumented hot paths stay cheap.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies an instrument family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Label is one name/value pair of a labeled series.
type Label struct {
	Key, Value string
}

// Counter is a monotonic counter. Set exists for mirror counters whose
// source of truth lives elsewhere (pool and cache owners) and is
// refreshed from a collect callback; regular instrumentation uses
// Add/Inc only.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value — for collect-time mirrors of counters
// owned by another subsystem, never for direct instrumentation.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (up/down), atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observations count into
// the first bucket whose upper bound is >= v (cumulative buckets are
// derived at render time), plus a running sum and count.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// series is one labeled child of a family.
type series struct {
	labels []Label
	inst   any // *Counter | *Gauge | *Histogram
}

// family is one registered metric name with its typed children.
type family struct {
	name   string
	help   string
	kind   Kind
	format string    // gauge render verb; "%d" renders the truncated integer
	keys   []string  // label keys; empty for unlabeled instruments
	bounds []float64 // histogram upper bounds

	mu       sync.Mutex
	children map[string]*series
}

// Registry holds instrument families in registration order and renders
// or snapshots them atomically enough for scraping (per-series values
// are individually atomic; a scrape is not a global point-in-time cut,
// matching Prometheus client conventions).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	collect  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// OnCollect registers a callback run before every Render and Snapshot —
// the place to refresh gauges and mirror counters whose source of truth
// lives elsewhere (pool stats, cache stats, uptime).
func (r *Registry) OnCollect(f func()) {
	r.mu.Lock()
	r.collect = append(r.collect, f)
	r.mu.Unlock()
}

func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic("obs: duplicate metric registration: " + f.name)
	}
	f.children = map[string]*series{}
	r.byName[f.name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: KindCounter})
	return f.with(nil).inst.(*Counter)
}

// CounterVec registers a counter family labeled by keys; series are
// created on first With.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	return &CounterVec{fam: r.register(&family{name: name, help: help, kind: KindCounter, keys: keys})}
}

// Gauge registers an unlabeled gauge. format is the Prometheus render
// verb ("%d", "%.4f", ...; "" selects %g); OTLP export always carries
// the full float.
func (r *Registry) Gauge(name, help, format string) *Gauge {
	f := r.register(&family{name: name, help: help, kind: KindGauge, format: format})
	return f.with(nil).inst.(*Gauge)
}

// GaugeVec registers a gauge family labeled by keys.
func (r *Registry) GaugeVec(name, help, format string, keys ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(&family{name: name, help: help, kind: KindGauge, format: format, keys: keys})}
}

// Histogram registers an unlabeled fixed-bucket histogram; bounds are
// the ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending: " + name)
		}
	}
	f := r.register(&family{name: name, help: help, kind: KindHistogram, bounds: bounds})
	return f.with(nil).inst.(*Histogram)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ fam *family }

// With returns (creating on first use) the child for the label values,
// in key order.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.with(values).inst.(*Counter)
}

// Lookup returns the child for the label values without creating it —
// for collect callbacks that derive rates only for series that exist.
func (v *CounterVec) Lookup(values ...string) (*Counter, bool) {
	f := v.fam
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	s, ok := f.children[key]
	f.mu.Unlock()
	if !ok {
		return nil, false
	}
	return s.inst.(*Counter), true
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// With returns (creating on first use) the child for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.with(values).inst.(*Gauge)
}

func (f *family) with(values []string) *series {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("obs: %s: %d label values for %d keys", f.name, len(values), len(f.keys)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.children[key]; ok {
		return s
	}
	s := &series{}
	for i, k := range f.keys {
		s.labels = append(s.labels, Label{Key: k, Value: values[i]})
	}
	switch f.kind {
	case KindCounter:
		s.inst = &Counter{}
	case KindGauge:
		s.inst = &Gauge{}
	case KindHistogram:
		h := &Histogram{bounds: f.bounds}
		h.counts = make([]atomic.Uint64, len(f.bounds)+1)
		s.inst = h
	}
	f.children[key] = s
	return s
}

// sortedChildren returns the family's series sorted by label values —
// the deterministic render and snapshot order.
func (f *family) sortedChildren() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.children))
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, f.children[k])
	}
	f.mu.Unlock()
	return out
}

func (r *Registry) runCollect() {
	r.mu.Lock()
	cbs := append([]func(){}, r.collect...)
	r.mu.Unlock()
	for _, f := range cbs {
		f()
	}
}

// Render writes the Prometheus text exposition (version 0.0.4): every
// family in registration order, children sorted by label values,
// histograms as cumulative _bucket/_sum/_count series. Collect
// callbacks run first.
func (r *Registry) Render(w io.Writer) {
	r.runCollect()
	r.mu.Lock()
	fams := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.render(w)
	}
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func (f *family) render(w io.Writer) {
	typ := map[Kind]string{KindCounter: "counter", KindGauge: "gauge", KindHistogram: "histogram"}[f.kind]
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ)
	for _, s := range f.sortedChildren() {
		ls := labelString(s.labels)
		switch inst := s.inst.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, ls, inst.Value())
		case *Gauge:
			format := f.format
			if format == "" {
				format = "%g"
			}
			if strings.ContainsRune(format, 'd') {
				fmt.Fprintf(w, "%s%s "+format+"\n", f.name, ls, int64(inst.Value()))
			} else {
				fmt.Fprintf(w, "%s%s "+format+"\n", f.name, ls, inst.Value())
			}
		case *Histogram:
			cum := uint64(0)
			for i, b := range inst.bounds {
				cum += inst.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels(s.labels, formatBound(b)), cum)
			}
			cum += inst.counts[len(inst.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels(s.labels, "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, strconv.FormatFloat(inst.Sum(), 'g', -1, 64))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, inst.Count())
		}
	}
}

func bucketLabels(labels []Label, le string) string {
	all := append(append([]Label{}, labels...), Label{Key: "le", Value: le})
	return labelString(all)
}

// Point is one series of a metric snapshot.
type Point struct {
	Labels []Label
	// Value carries a counter's cumulative count or a gauge's value.
	Value float64
	// Histogram data (Kind == KindHistogram only): per-bucket counts
	// (non-cumulative, len(Bounds)+1 with the overflow bucket last),
	// total count and sum.
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Metric is the snapshot of one family — the unit the OTLP exporter
// encodes.
type Metric struct {
	Name   string
	Help   string
	Kind   Kind
	Bounds []float64
	Points []Point
}

// Snapshot captures every family (collect callbacks run first) in
// registration order with children sorted by label values.
func (r *Registry) Snapshot() []Metric {
	r.runCollect()
	r.mu.Lock()
	fams := append([]*family{}, r.families...)
	r.mu.Unlock()
	out := make([]Metric, 0, len(fams))
	for _, f := range fams {
		m := Metric{Name: f.name, Help: f.help, Kind: f.kind, Bounds: f.bounds}
		for _, s := range f.sortedChildren() {
			p := Point{Labels: s.labels}
			switch inst := s.inst.(type) {
			case *Counter:
				p.Value = float64(inst.Value())
			case *Gauge:
				p.Value = inst.Value()
			case *Histogram:
				p.Counts = make([]uint64, len(inst.counts))
				for i := range inst.counts {
					p.Counts[i] = inst.counts[i].Load()
				}
				p.Count = inst.Count()
				p.Sum = inst.Sum()
			}
			m.Points = append(m.Points, p)
		}
		out = append(out, m)
	}
	return out
}
