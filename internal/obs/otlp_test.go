package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/prof/span"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedSpans builds a deterministic span batch for golden comparison.
func fixedSpans() []span.SpanData {
	var trace span.TraceID
	var parent, child span.SpanID
	for i := range trace {
		trace[i] = byte(i + 1)
	}
	for i := range parent {
		parent[i] = byte(0xa0 + i)
		child[i] = byte(0xb0 + i)
	}
	start := time.Unix(1700000000, 0).UTC()
	return []span.SpanData{
		{
			Name:  "job",
			Trace: trace,
			Span:  parent,
			Start: start,
			End:   start.Add(250 * time.Millisecond),
			Attrs: []slog.Attr{
				slog.String("isa", "RISC"),
				slog.Int("jobs", 3),
				slog.Float64("ratio", 0.5),
				slog.Bool("cache_hit", true),
			},
		},
		{
			Name:   "build",
			Trace:  trace,
			Span:   child,
			Parent: parent,
			Start:  start.Add(10 * time.Millisecond),
			End:    start.Add(30 * time.Millisecond),
			Err:    errors.New("link failed"),
		},
	}
}

// fixedRegistry builds a registry with one instrument of each kind and
// deterministic values.
func fixedRegistry() *Registry {
	r := NewRegistry()
	r.Counter("kservd_jobs_total", "Jobs accepted.").Add(7)
	r.CounterVec("kservd_rejected_total", "Rejections.", "reason").With("queue_full").Add(2)
	r.Gauge("kservd_queue_depth", "Depth.", "%d").Set(3)
	h := r.Histogram("kservd_job_run_seconds", "Run duration.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, got, "", "  "); err != nil {
		t.Fatalf("%s: encoder produced invalid JSON: %v", name, err)
	}
	pretty.WriteByte('\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to create)", err)
	}
	if !bytes.Equal(pretty.Bytes(), want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, pretty.Bytes(), want)
	}
}

func TestEncodeSpansGolden(t *testing.T) {
	checkGolden(t, "spans.golden.json", EncodeSpans("kservd", fixedSpans()))
}

func TestEncodeMetricsGolden(t *testing.T) {
	ms := fixedRegistry().Snapshot()
	checkGolden(t, "metrics.golden.json", EncodeMetrics("kservd", ms, 1700000000000000000))
}

// collector is a fake OTLP/HTTP endpoint recording request bodies and
// optionally failing the first n requests.
type collector struct {
	mu      sync.Mutex
	traces  [][]byte
	metrics [][]byte
	fail    int // fail this many requests with 503 before accepting
	block   chan struct{}
}

func (c *collector) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		c.mu.Lock()
		blocked := c.block
		failing := c.fail > 0
		if failing {
			c.fail--
		}
		c.mu.Unlock()
		if blocked != nil {
			<-blocked
		}
		if failing {
			http.Error(w, "try later", http.StatusServiceUnavailable)
			return
		}
		c.mu.Lock()
		switch r.URL.Path {
		case "/v1/traces":
			c.traces = append(c.traces, body)
		case "/v1/metrics":
			c.metrics = append(c.metrics, body)
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
}

func (c *collector) counts() (traces, metrics int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces), len(c.metrics)
}

func shutdown(t *testing.T, e *Exporter) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestExporterDeliversSpansAndMetrics(t *testing.T) {
	col := &collector{}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	reg := fixedRegistry()
	e := NewExporter(ExporterConfig{Endpoint: srv.URL, Interval: time.Hour}, reg)
	for _, sd := range fixedSpans() {
		e.ExportSpan(sd)
	}
	shutdown(t, e) // final flush ships both signals

	traces, metrics := col.counts()
	if traces < 1 || metrics < 1 {
		t.Fatalf("collector got %d trace, %d metric batches, want >=1 each", traces, metrics)
	}
	if got := e.exported.Value(); got != 2 {
		t.Errorf("exported counter = %d, want 2", got)
	}
	if got := e.Dropped(); got != 0 {
		t.Errorf("dropped counter = %d, want 0", got)
	}
	// The shipped batch must decode as OTLP JSON and carry both spans.
	var doc struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					Name   string `json:"name"`
					Status struct {
						Code int `json:"code"`
					} `json:"status"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	col.mu.Lock()
	body := col.traces[0]
	col.mu.Unlock()
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace body: %v", err)
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 2 || spans[0].Name != "job" || spans[1].Status.Code != 2 {
		t.Errorf("decoded spans = %+v", spans)
	}
}

func TestExporterRetriesThenSucceeds(t *testing.T) {
	col := &collector{fail: 1}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	e := NewExporter(ExporterConfig{
		Endpoint: srv.URL, Interval: time.Hour,
		Retries: 2, Backoff: time.Millisecond,
	}, NewRegistry())
	e.ExportSpan(fixedSpans()[0])
	shutdown(t, e)

	traces, _ := col.counts()
	if traces != 1 {
		t.Fatalf("collector got %d trace batches after retry, want 1", traces)
	}
	if got := e.exported.Value(); got != 1 {
		t.Errorf("exported = %d, want 1", got)
	}
	if got := e.failures.Value(); got != 0 {
		t.Errorf("failures = %d, want 0 (retry succeeded)", got)
	}
}

func TestExporterDropsOnExportFailure(t *testing.T) {
	col := &collector{fail: 1 << 30} // never accepts
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	e := NewExporter(ExporterConfig{
		Endpoint: srv.URL, Interval: time.Hour,
		Retries: -1, Backoff: time.Millisecond,
	}, NewRegistry())
	e.ExportSpan(fixedSpans()[0])
	e.ExportSpan(fixedSpans()[1])
	shutdown(t, e)

	if got := e.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2 (batch lost after retries)", got)
	}
	if got := e.failures.Value(); got == 0 {
		t.Error("failures counter did not count the failed request")
	}
	if got := e.exported.Value(); got != 0 {
		t.Errorf("exported = %d, want 0", got)
	}
}

func TestExporterDropsOnFullQueue(t *testing.T) {
	// Block the collector so the export loop wedges mid-request with the
	// queue full; further spans must be dropped, not block the caller.
	col := &collector{block: make(chan struct{})}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	e := NewExporter(ExporterConfig{
		Endpoint: srv.URL, Interval: time.Hour,
		QueueSize: 1, BatchSize: 1, Retries: -1,
	}, NewRegistry())
	sd := fixedSpans()[0]
	e.ExportSpan(sd) // picked up by the loop, wedged in the blocked POST
	time.Sleep(20 * time.Millisecond)
	e.ExportSpan(sd) // sits in the queue
	for i := 0; i < 5; i++ {
		e.ExportSpan(sd) // queue full: dropped immediately
	}
	if got := e.Dropped(); got < 4 {
		t.Errorf("dropped = %d, want >= 4 with a wedged collector", got)
	}
	close(col.block)
	shutdown(t, e)
}
