package fabric

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
)

// Thread is one hardware thread: a simulator instance coupled to the
// fabric resources it occupies.
type Thread struct {
	Name   string
	CPU    *sim.CPU
	Inst   *Instance
	Done   bool
	Err    error
	Status sim.ExitStatus
	Steps  uint64
}

// Cluster co-simulates multiple hardware threads on one fabric — the
// paper's Fig. 1: "multiple processor instances executing different
// instruction formats may co-exist in parallel". Threads step
// round-robin; every run-time ISA switch goes through the fabric's
// resource accounting, and a finished thread releases its EDPEs and
// preprocessing tile.
type Cluster struct {
	model   *isa.Model
	fab     *Fabric
	threads []*Thread
}

// NewCluster builds a cluster over the fabric.
func NewCluster(m *isa.Model, f *Fabric) *Cluster {
	return &Cluster{model: m, fab: f}
}

// Fabric returns the underlying resource manager.
func (c *Cluster) Fabric() *Fabric { return c.fab }

// Spawn instantiates a processor instance for the program's entry ISA
// and creates its simulator. The returned thread is not yet running;
// attach cycle models to thread.CPU before calling Run.
func (c *Cluster) Spawn(name string, p *sim.Program, opts sim.Options) (*Thread, error) {
	entry := c.model.ISAByID(p.EntryISA)
	if entry == nil {
		return nil, fmt.Errorf("fabric: program requires unknown ISA id %d", p.EntryISA)
	}
	inst, err := c.fab.Instantiate(entry)
	if err != nil {
		return nil, fmt.Errorf("fabric: spawning %s: %w", name, err)
	}
	opts.OnISASwitch = c.fab.Guard(inst)
	cpu, err := sim.New(c.model, p, opts)
	if err != nil {
		c.fab.Release(inst)
		return nil, err
	}
	th := &Thread{Name: name, CPU: cpu, Inst: inst}
	c.threads = append(c.threads, th)
	return th, nil
}

// Threads returns all spawned threads.
func (c *Cluster) Threads() []*Thread { return c.threads }

// Run steps every live thread round-robin (quantum instructions each)
// until all threads finished or failed, releasing fabric resources as
// threads complete. maxSteps bounds the total instruction count across
// all threads (0: a large default).
func (c *Cluster) Run(quantum int, maxSteps uint64) error {
	if quantum <= 0 {
		quantum = 64
	}
	if maxSteps == 0 {
		maxSteps = 1 << 40
	}
	var total uint64
	var errs []error
	for {
		live := 0
		for _, th := range c.threads {
			if th.Done {
				continue
			}
			live++
			for q := 0; q < quantum && !th.CPU.Halted(); q++ {
				if err := th.CPU.Step(); err != nil {
					th.Err = fmt.Errorf("thread %s: %w", th.Name, err)
					errs = append(errs, th.Err)
					break
				}
				th.Steps++
				total++
			}
			if th.CPU.Halted() || th.Err != nil {
				th.Done = true
				th.Status = sim.ExitStatus{
					Halted:       th.CPU.Halted(),
					ExitCode:     th.CPU.ExitCode(),
					Instructions: th.Steps,
				}
				c.fab.Release(th.Inst)
			}
		}
		if live == 0 {
			return errors.Join(errs...)
		}
		if total >= maxSteps {
			errs = append(errs, fmt.Errorf("fabric: cluster step limit (%d) reached", maxSteps))
			return errors.Join(errs...)
		}
	}
}
