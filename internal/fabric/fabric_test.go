package fabric_test

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/ktest"
	"repro/internal/sim"
)

func TestInstantiateAndRelease(t *testing.T) {
	m := ktest.Model(t)
	f, err := fabric.New(fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.FreeEDPEs() != 16 || f.FreeTiles() != 3 {
		t.Fatalf("fresh fabric: %d EDPEs, %d tiles", f.FreeEDPEs(), f.FreeTiles())
	}

	// The paper's Fig. 1 scenario: a RISC thread, a 2-issue VLIW thread
	// and a 6-issue VLIW thread co-exist.
	risc, err := f.Instantiate(m.ISAByName("RISC"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := f.Instantiate(m.ISAByName("VLIW2"))
	if err != nil {
		t.Fatal(err)
	}
	v6, err := f.Instantiate(m.ISAByName("VLIW6"))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.FreeEDPEs(); got != 16-1-2-6 {
		t.Fatalf("free EDPEs = %d, want 7", got)
	}
	if f.FreeTiles() != 0 {
		t.Fatalf("free tiles = %d, want 0", f.FreeTiles())
	}
	if len(f.Instances()) != 3 {
		t.Fatalf("instances = %d", len(f.Instances()))
	}
	if len(v6.EDPEs()) != 6 || v6.Tile() < 0 {
		t.Fatalf("v6 resources: %v tile %d", v6.EDPEs(), v6.Tile())
	}

	// A fourth instance fails on tiles even though EDPEs remain.
	if _, err := f.Instantiate(m.ISAByName("RISC")); err == nil ||
		!strings.Contains(err.Error(), "tile") {
		t.Fatalf("expected tile exhaustion, got %v", err)
	}

	f.Release(v2)
	if f.FreeTiles() != 1 || f.FreeEDPEs() != 9 {
		t.Fatalf("after release: %d tiles, %d EDPEs", f.FreeTiles(), f.FreeEDPEs())
	}
	// Releasing twice is harmless.
	f.Release(v2)
	if f.FreeEDPEs() != 9 {
		t.Fatal("double release corrupted accounting")
	}
	_ = risc
}

func TestEDPEExhaustion(t *testing.T) {
	m := ktest.Model(t)
	f, _ := fabric.New(fabric.Config{EDPEs: 8, FetchTiles: 3, ReconfigBaseCycles: 1, ReconfigPerEDPE: 1})
	if _, err := f.Instantiate(m.ISAByName("VLIW6")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Instantiate(m.ISAByName("VLIW4")); err == nil ||
		!strings.Contains(err.Error(), "EDPEs") {
		t.Fatalf("expected EDPE exhaustion, got %v", err)
	}
	if _, err := f.Instantiate(m.ISAByName("VLIW2")); err != nil {
		t.Fatalf("2-issue should still fit: %v", err)
	}
	if f.Utilization() != 1.0 {
		t.Fatalf("utilization = %f", f.Utilization())
	}
}

func TestReconfigureGrowShrink(t *testing.T) {
	m := ktest.Model(t)
	cfg := fabric.Config{EDPEs: 7, FetchTiles: 2, ReconfigBaseCycles: 64, ReconfigPerEDPE: 32}
	f, _ := fabric.New(cfg)
	in, err := f.Instantiate(m.ISAByName("RISC"))
	if err != nil {
		t.Fatal(err)
	}
	base := in.ReconfigCycles
	if base != 64+32 {
		t.Fatalf("instantiation cost = %d", base)
	}
	if err := f.Reconfigure(in, m.ISAByName("VLIW6")); err != nil {
		t.Fatal(err)
	}
	if len(in.EDPEs()) != 6 || f.FreeEDPEs() != 1 {
		t.Fatalf("grow: %d assigned, %d free", len(in.EDPEs()), f.FreeEDPEs())
	}
	if in.ReconfigCycles != base+64+32*5 {
		t.Fatalf("grow cost = %d", in.ReconfigCycles)
	}
	if err := f.Reconfigure(in, m.ISAByName("VLIW8")); err == nil {
		t.Fatal("growing past the array should fail")
	}
	if err := f.Reconfigure(in, m.ISAByName("VLIW2")); err != nil {
		t.Fatal(err)
	}
	if len(in.EDPEs()) != 2 || f.FreeEDPEs() != 5 {
		t.Fatalf("shrink: %d assigned, %d free", len(in.EDPEs()), f.FreeEDPEs())
	}
	// The freed elements are usable by a second instance.
	if _, err := f.Instantiate(m.ISAByName("VLIW4")); err != nil {
		t.Fatalf("freed EDPEs not reusable: %v", err)
	}
}

// TestGuardEnforcesResources runs a mixed-ISA program under the fabric:
// SWITCHTARGET succeeds while the array has room and aborts the
// simulation when another instance holds the elements.
func TestGuardEnforcesResources(t *testing.T) {
	m := ktest.Model(t)
	src := `
	.global main
main:
	swt VLIW4
	.isa VLIW4
	{ addi a0, zero, 7 }
	swt RISC
	.isa RISC
	ret
`
	prog := ktest.BuildProgram(t, "RISC", src)

	run := func(occupied int) (*sim.CPU, error) {
		f, _ := fabric.New(fabric.Config{EDPEs: 8, FetchTiles: 8, ReconfigBaseCycles: 1, ReconfigPerEDPE: 1})
		// Block EDPEs with other hardware threads.
		for i := 0; i < occupied; i++ {
			if _, err := f.Instantiate(m.ISAByName("RISC")); err != nil {
				t.Fatal(err)
			}
		}
		in, err := f.Instantiate(m.ISAByName("RISC"))
		if err != nil {
			t.Fatal(err)
		}
		opts := sim.DefaultOptions()
		opts.MaxInstructions = 10000
		opts.OnISASwitch = f.Guard(in)
		c, err := sim.New(m, prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Run()
		return c, err
	}

	// Plenty of room: the switch to VLIW4 and back succeeds.
	c, err := run(1)
	if err != nil {
		t.Fatalf("unconstrained run failed: %v", err)
	}
	if c.ExitCode() != 7 {
		t.Fatalf("exit = %d", c.ExitCode())
	}

	// Three RISC neighbours leave only 4 free elements; our thread holds
	// 1, so growing to 4-issue needs 3 more — still fine. Occupy 6 and
	// the switch must fail.
	if _, err := run(6); err == nil ||
		!strings.Contains(err.Error(), "EDPEs") {
		t.Fatalf("expected resource failure, got %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := fabric.New(fabric.Config{EDPEs: 0, FetchTiles: 1}); err == nil {
		t.Fatal("zero EDPEs accepted")
	}
	if _, err := fabric.New(fabric.Config{EDPEs: 4, FetchTiles: 0}); err == nil {
		t.Fatal("zero tiles accepted")
	}
	f, _ := fabric.New(fabric.DefaultConfig())
	if _, err := f.Instantiate(nil); err == nil {
		t.Fatal("nil ISA accepted")
	}
	m := ktest.Model(t)
	ghost := &fabric.Instance{}
	if err := f.Reconfigure(ghost, m.ISAByName("RISC")); err == nil {
		t.Fatal("reconfiguring a dead instance accepted")
	}
}
