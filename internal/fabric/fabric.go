// Package fabric models the reconfigurable hardware resources of the
// KAHRISMA architecture (Sec. III, Fig. 1 of the paper): an array of
// EDPEs (Encapsulated Datapath Elements — local register file, ALU and
// synchronization unit each) plus instruction preprocessing tile groups
// (instruction cache, fetch & align, analyze & dispatch). Processor
// instances are flexibly combined from these tiles: a RISC instance
// occupies one EDPE, an n-issue VLIW instance n EDPEs, and every
// instance needs one preprocessing tile group.
//
// "During runtime the processor can dynamically instantiate new
// hardware threads as long as the required resources are available. It
// is also possible to change the ISA of one hardware thread during
// execution." — both operations are provided here, with a simple
// reconfiguration-overhead model, and can be attached to simulator
// instances so SWITCHTARGET respects the resource limits.
package fabric

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Config sizes the fabric. The paper's Fig. 1 shows an 4x4 EDPE array
// with three preprocessing tile groups; that is the default.
type Config struct {
	EDPEs      int // datapath elements in the array
	FetchTiles int // instruction preprocessing tile groups
	// ReconfigBaseCycles and ReconfigPerEDPE parameterize the cost of
	// instantiating or reshaping an instance: base + perEDPE * |delta|.
	ReconfigBaseCycles uint64
	ReconfigPerEDPE    uint64
}

// DefaultConfig mirrors the paper's figure: 16 EDPEs, 3 tile groups.
func DefaultConfig() Config {
	return Config{EDPEs: 16, FetchTiles: 3, ReconfigBaseCycles: 64, ReconfigPerEDPE: 32}
}

// Instance is one configured processor instance (hardware thread).
type Instance struct {
	ID    int
	ISA   *isa.ISA
	edpes []int // indices of the assigned elements
	tile  int
	fab   *Fabric

	// ReconfigCycles accumulates the configuration overhead this
	// instance has paid (instantiation + every ISA change).
	ReconfigCycles uint64
}

// EDPEs returns the indices of the assigned datapath elements.
func (in *Instance) EDPEs() []int { return append([]int(nil), in.edpes...) }

// Tile returns the preprocessing tile group index.
func (in *Instance) Tile() int { return in.tile }

// Fabric is the resource manager.
type Fabric struct {
	cfg       Config
	edpeOwner []int // instance id per element, -1 free
	tileOwner []int // instance id per tile group, -1 free
	instances map[int]*Instance
	nextID    int
}

// New builds an empty fabric.
func New(cfg Config) (*Fabric, error) {
	if cfg.EDPEs < 1 || cfg.FetchTiles < 1 {
		return nil, fmt.Errorf("fabric: need at least one EDPE and one tile group")
	}
	f := &Fabric{
		cfg:       cfg,
		edpeOwner: make([]int, cfg.EDPEs),
		tileOwner: make([]int, cfg.FetchTiles),
		instances: map[int]*Instance{},
	}
	for i := range f.edpeOwner {
		f.edpeOwner[i] = -1
	}
	for i := range f.tileOwner {
		f.tileOwner[i] = -1
	}
	return f, nil
}

// FreeEDPEs returns the number of unassigned datapath elements.
func (f *Fabric) FreeEDPEs() int {
	n := 0
	for _, o := range f.edpeOwner {
		if o < 0 {
			n++
		}
	}
	return n
}

// FreeTiles returns the number of unassigned preprocessing tile groups.
func (f *Fabric) FreeTiles() int {
	n := 0
	for _, o := range f.tileOwner {
		if o < 0 {
			n++
		}
	}
	return n
}

// Utilization returns the fraction of EDPEs currently assigned.
func (f *Fabric) Utilization() float64 {
	return 1 - float64(f.FreeEDPEs())/float64(f.cfg.EDPEs)
}

// Instances returns the live instances sorted by id.
func (f *Fabric) Instances() []*Instance {
	out := make([]*Instance, 0, len(f.instances))
	for _, in := range f.instances {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Instantiate configures a new processor instance executing the given
// ISA, claiming Issue EDPEs and one tile group.
func (f *Fabric) Instantiate(a *isa.ISA) (*Instance, error) {
	if a == nil {
		return nil, fmt.Errorf("fabric: nil ISA")
	}
	if free := f.FreeEDPEs(); free < a.Issue {
		return nil, fmt.Errorf("fabric: %s needs %d EDPEs, only %d free", a.Name, a.Issue, free)
	}
	tile := -1
	for i, o := range f.tileOwner {
		if o < 0 {
			tile = i
			break
		}
	}
	if tile < 0 {
		return nil, fmt.Errorf("fabric: no free instruction preprocessing tile group")
	}
	in := &Instance{ID: f.nextID, ISA: a, tile: tile, fab: f}
	f.nextID++
	f.tileOwner[tile] = in.ID
	f.claim(in, a.Issue)
	in.ReconfigCycles += f.cfg.ReconfigBaseCycles + f.cfg.ReconfigPerEDPE*uint64(a.Issue)
	f.instances[in.ID] = in
	return in, nil
}

func (f *Fabric) claim(in *Instance, n int) {
	for i := range f.edpeOwner {
		if n == 0 {
			return
		}
		if f.edpeOwner[i] < 0 {
			f.edpeOwner[i] = in.ID
			in.edpes = append(in.edpes, i)
			n--
		}
	}
}

// Reconfigure changes the ISA of a running instance, growing or
// shrinking its EDPE assignment ("adapt the resource consumption of one
// hardware thread to the individual requirements", Sec. III).
func (f *Fabric) Reconfigure(in *Instance, to *isa.ISA) error {
	if f.instances[in.ID] != in {
		return fmt.Errorf("fabric: instance %d is not live", in.ID)
	}
	delta := to.Issue - in.ISA.Issue
	if delta > 0 {
		if free := f.FreeEDPEs(); free < delta {
			return fmt.Errorf("fabric: switching %s -> %s needs %d more EDPEs, only %d free",
				in.ISA.Name, to.Name, delta, free)
		}
		f.claim(in, delta)
	} else if delta < 0 {
		give := -delta
		for give > 0 {
			last := in.edpes[len(in.edpes)-1]
			in.edpes = in.edpes[:len(in.edpes)-1]
			f.edpeOwner[last] = -1
			give--
		}
	}
	cost := delta
	if cost < 0 {
		cost = -cost
	}
	in.ReconfigCycles += f.cfg.ReconfigBaseCycles + f.cfg.ReconfigPerEDPE*uint64(cost)
	in.ISA = to
	return nil
}

// Release frees an instance's resources.
func (f *Fabric) Release(in *Instance) {
	if f.instances[in.ID] != in {
		return
	}
	for _, e := range in.edpes {
		f.edpeOwner[e] = -1
	}
	in.edpes = nil
	f.tileOwner[in.tile] = -1
	delete(f.instances, in.ID)
}

// Guard returns a sim.Options.OnISASwitch callback that routes a
// simulator's run-time SWITCHTARGET instructions through the fabric's
// resource accounting for the given instance.
func (f *Fabric) Guard(in *Instance) func(from, to *isa.ISA) error {
	return func(from, to *isa.ISA) error {
		return f.Reconfigure(in, to)
	}
}
