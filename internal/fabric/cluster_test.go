package fabric_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cycle"
	"repro/internal/fabric"
	"repro/internal/ktest"
	"repro/internal/mem"
	"repro/internal/sim"
)

const counterProg = `
	.global main
main:
	li a0, 0
	li t0, 0
	li t1, %N%
loop:
	addi t0, t0, 1
	add a0, a0, t0
	bne t0, t1, loop
	andi a0, a0, 0xff
	ret
`

func TestClusterCoSimulatesMixedISAs(t *testing.T) {
	m := ktest.Model(t)
	f, err := fabric.New(fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl := fabric.NewCluster(m, f)

	// Three hardware threads with different instruction formats, like
	// the paper's Fig. 1 (RISC, 2-issue, 6-issue).
	mk := func(name, isaName, n string) *fabric.Thread {
		src := strings.ReplaceAll(counterProg, "%N%", n)
		if isaName != "RISC" {
			src = "\t.isa " + isaName + "\n" + src
		}
		p := ktest.BuildProgram(t, isaName, src)
		var out bytes.Buffer
		opts := sim.DefaultOptions()
		opts.Stdout = &out
		opts.MaxInstructions = 1 << 20
		th, err := cl.Spawn(name, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	t1 := mk("risc-thread", "RISC", "100")
	t2 := mk("v2-thread", "VLIW2", "200")
	t3 := mk("v6-thread", "VLIW6", "50")

	// 1 + 2 + 6 EDPEs occupied while all three run.
	if free := f.FreeEDPEs(); free != 16-9 {
		t.Fatalf("free EDPEs during run = %d, want 7", free)
	}
	// Attach a DOE model per thread (each instance has its own memory
	// hierarchy in this setup).
	does := map[string]*cycle.DOE{}
	for _, th := range cl.Threads() {
		d := cycle.NewDOE(m, mem.Paper())
		does[th.Name] = d
		th.CPU.Attach(d)
	}

	if err := cl.Run(32, 0); err != nil {
		t.Fatal(err)
	}
	want := map[string]int32{
		"risc-thread": int32(100 * 101 / 2 & 0xFF),
		"v2-thread":   int32(200 * 201 / 2 & 0xFF),
		"v6-thread":   int32(50 * 51 / 2 & 0xFF),
	}
	for _, th := range []*fabric.Thread{t1, t2, t3} {
		if !th.Done || th.Err != nil {
			t.Fatalf("%s: done=%v err=%v", th.Name, th.Done, th.Err)
		}
		if th.Status.ExitCode != want[th.Name] {
			t.Errorf("%s: exit %d, want %d", th.Name, th.Status.ExitCode, want[th.Name])
		}
		if does[th.Name].Cycles() == 0 {
			t.Errorf("%s: no DOE cycles recorded", th.Name)
		}
	}
	// All resources returned.
	if f.FreeEDPEs() != 16 || f.FreeTiles() != 3 {
		t.Fatalf("resources leaked: %d EDPEs, %d tiles free", f.FreeEDPEs(), f.FreeTiles())
	}
}

func TestClusterSpawnRespectsFabric(t *testing.T) {
	m := ktest.Model(t)
	f, _ := fabric.New(fabric.Config{EDPEs: 4, FetchTiles: 2, ReconfigBaseCycles: 1, ReconfigPerEDPE: 1})
	cl := fabric.NewCluster(m, f)
	p := ktest.BuildProgram(t, "VLIW4", ".isa VLIW4\n\t.global main\nmain:\n\tli a0, 1\n\tret\n")
	if _, err := cl.Spawn("a", p, sim.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// The array is full: a second 4-issue thread cannot be placed.
	if _, err := cl.Spawn("b", p, sim.DefaultOptions()); err == nil {
		t.Fatal("overcommitted fabric accepted a second 4-issue thread")
	}
	if err := cl.Run(16, 0); err != nil {
		t.Fatal(err)
	}
	// After completion the resources are free again.
	if _, err := cl.Spawn("c", p, sim.DefaultOptions()); err != nil {
		t.Fatalf("resources not released after completion: %v", err)
	}
}

func TestClusterStepLimit(t *testing.T) {
	m := ktest.Model(t)
	f, _ := fabric.New(fabric.DefaultConfig())
	cl := fabric.NewCluster(m, f)
	p := ktest.BuildProgram(t, "RISC", "\t.global main\nmain:\n\tj main\n")
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 1 << 30
	if _, err := cl.Spawn("spin", p, opts); err != nil {
		t.Fatal(err)
	}
	err := cl.Run(8, 1000)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v", err)
	}
}
