package kelf_test

import (
	"math/rand"
	"testing"

	"repro/internal/kelf"
)

// Decode must never panic, whatever bytes it is fed: every malformed
// input returns an error (or, for benign mutations, a valid file).
func TestDecodeRobustAgainstMutations(t *testing.T) {
	f := sampleFile(t)
	f.Entry = 0x1000
	good, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		b := append([]byte(nil), good...)
		// Flip a handful of random bytes.
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Decode panicked: %v", trial, r)
				}
			}()
			_, _ = kelf.Decode(b)
		}()
	}
	// Random truncations.
	for cut := 0; cut < len(good); cut += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d: Decode panicked: %v", cut, r)
				}
			}()
			_, _ = kelf.Decode(good[:cut])
		}()
	}
	// Pure noise.
	for trial := 0; trial < 500; trial++ {
		b := make([]byte, rng.Intn(600))
		rng.Read(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("noise trial %d: Decode panicked: %v", trial, r)
				}
			}()
			_, _ = kelf.Decode(b)
		}()
	}
}

// The debug decoders must be equally robust.
func TestDebugDecodersRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("linemap noise %d: panic %v", trial, r)
				}
			}()
			_, _ = kelf.DecodeLineMap(b)
			_, _ = kelf.DecodeFuncTable(b)
		}()
	}
}
