package kelf

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// LineMap maps instruction addresses to file/line positions. It backs
// both the assembler line map (.klinemap — the paper's custom data
// section written by the assembler) and the C source line map
// (.ksrcmap — the role DWARF plays in the paper, Sec. V-C).
//
// Entries are kept sorted by address; Lookup returns the entry with the
// greatest address not exceeding the query, so one entry covers all
// instructions up to the next entry.
type LineMap struct {
	Files   []string
	Entries []LineEntry
}

// LineEntry associates an instruction address with a file/line.
type LineEntry struct {
	Addr uint32
	File uint16 // index into Files
	Line uint32
}

// AddFile interns a file name and returns its index.
func (lm *LineMap) AddFile(name string) uint16 {
	for i, f := range lm.Files {
		if f == name {
			return uint16(i)
		}
	}
	lm.Files = append(lm.Files, name)
	return uint16(len(lm.Files) - 1)
}

// Add appends an address→line association.
func (lm *LineMap) Add(addr uint32, file uint16, line uint32) {
	lm.Entries = append(lm.Entries, LineEntry{Addr: addr, File: file, Line: line})
}

// Sort orders entries by address (required before Encode/Lookup).
func (lm *LineMap) Sort() {
	sort.Slice(lm.Entries, func(i, j int) bool { return lm.Entries[i].Addr < lm.Entries[j].Addr })
}

// Lookup returns the file name and line covering addr, or ok=false if
// addr precedes every entry.
func (lm *LineMap) Lookup(addr uint32) (file string, line uint32, ok bool) {
	i := sort.Search(len(lm.Entries), func(i int) bool { return lm.Entries[i].Addr > addr })
	if i == 0 {
		return "", 0, false
	}
	e := lm.Entries[i-1]
	if int(e.File) >= len(lm.Files) {
		return "", 0, false
	}
	return lm.Files[e.File], e.Line, true
}

// Rebase shifts every entry address by delta (used by the linker when
// placing a section at its final address).
func (lm *LineMap) Rebase(delta uint32) {
	for i := range lm.Entries {
		lm.Entries[i].Addr += delta
	}
}

// Encode serializes the line map.
func (lm *LineMap) Encode() []byte {
	le := binary.LittleEndian
	var out []byte
	var tmp [10]byte
	le.PutUint16(tmp[:], uint16(len(lm.Files)))
	out = append(out, tmp[:2]...)
	for _, f := range lm.Files {
		le.PutUint16(tmp[:], uint16(len(f)))
		out = append(out, tmp[:2]...)
		out = append(out, f...)
	}
	le.PutUint32(tmp[:], uint32(len(lm.Entries)))
	out = append(out, tmp[:4]...)
	for _, e := range lm.Entries {
		le.PutUint32(tmp[0:], e.Addr)
		le.PutUint16(tmp[4:], e.File)
		le.PutUint32(tmp[6:], e.Line)
		out = append(out, tmp[:10]...)
	}
	return out
}

// DecodeLineMap parses a serialized line map.
func DecodeLineMap(b []byte) (*LineMap, error) {
	le := binary.LittleEndian
	lm := &LineMap{}
	if len(b) < 2 {
		return nil, fmt.Errorf("kelf: linemap truncated")
	}
	nf := int(le.Uint16(b))
	b = b[2:]
	for i := 0; i < nf; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("kelf: linemap file table truncated")
		}
		n := int(le.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return nil, fmt.Errorf("kelf: linemap file name truncated")
		}
		lm.Files = append(lm.Files, string(b[:n]))
		b = b[n:]
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("kelf: linemap entry count truncated")
	}
	ne := int(le.Uint32(b))
	b = b[4:]
	if len(b) < ne*10 {
		return nil, fmt.Errorf("kelf: linemap entries truncated")
	}
	for i := 0; i < ne; i++ {
		e := b[i*10:]
		lm.Entries = append(lm.Entries, LineEntry{
			Addr: le.Uint32(e),
			File: le.Uint16(e[4:]),
			Line: le.Uint32(e[6:]),
		})
	}
	return lm, nil
}

// FuncInfo describes one function: name, [Start,End) address range and
// the identification number of the ISA its body is encoded in (mixed-ISA
// executables carry functions of several ISAs; the compiler prefixes
// symbol names with the ISA identifier, Sec. IV).
type FuncInfo struct {
	Name       string
	Start, End uint32
	ISA        uint8
}

// FuncTable is the .kfuncs payload: per-function address ranges ("Within
// the ELF file the start address and end address of each function is
// stored", Sec. V-C).
type FuncTable struct {
	Funcs []FuncInfo
}

// Add appends a function record.
func (ft *FuncTable) Add(f FuncInfo) { ft.Funcs = append(ft.Funcs, f) }

// Sort orders functions by start address (required before Lookup).
func (ft *FuncTable) Sort() {
	sort.Slice(ft.Funcs, func(i, j int) bool { return ft.Funcs[i].Start < ft.Funcs[j].Start })
}

// Lookup returns the function covering addr, or nil.
func (ft *FuncTable) Lookup(addr uint32) *FuncInfo {
	i := sort.Search(len(ft.Funcs), func(i int) bool { return ft.Funcs[i].Start > addr })
	if i == 0 {
		return nil
	}
	f := &ft.Funcs[i-1]
	if addr >= f.End {
		return nil
	}
	return f
}

// Rebase shifts every function range by delta.
func (ft *FuncTable) Rebase(delta uint32) {
	for i := range ft.Funcs {
		ft.Funcs[i].Start += delta
		ft.Funcs[i].End += delta
	}
}

// Encode serializes the function table.
func (ft *FuncTable) Encode() []byte {
	le := binary.LittleEndian
	var out []byte
	var tmp [9]byte
	le.PutUint32(tmp[:], uint32(len(ft.Funcs)))
	out = append(out, tmp[:4]...)
	for _, f := range ft.Funcs {
		le.PutUint16(tmp[:], uint16(len(f.Name)))
		out = append(out, tmp[:2]...)
		out = append(out, f.Name...)
		le.PutUint32(tmp[0:], f.Start)
		le.PutUint32(tmp[4:], f.End)
		tmp[8] = f.ISA
		out = append(out, tmp[:9]...)
	}
	return out
}

// DecodeFuncTable parses a serialized function table.
func DecodeFuncTable(b []byte) (*FuncTable, error) {
	le := binary.LittleEndian
	ft := &FuncTable{}
	if len(b) < 4 {
		return nil, fmt.Errorf("kelf: functable truncated")
	}
	n := int(le.Uint32(b))
	b = b[4:]
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("kelf: functable name length truncated")
		}
		ln := int(le.Uint16(b))
		b = b[2:]
		if len(b) < ln+9 {
			return nil, fmt.Errorf("kelf: functable record truncated")
		}
		name := string(b[:ln])
		b = b[ln:]
		ft.Funcs = append(ft.Funcs, FuncInfo{
			Name:  name,
			Start: le.Uint32(b),
			End:   le.Uint32(b[4:]),
			ISA:   b[8],
		})
		b = b[9:]
	}
	return ft, nil
}
