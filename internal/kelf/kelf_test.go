package kelf_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/kelf"
)

func sampleFile(t *testing.T) *kelf.File {
	t.Helper()
	f := kelf.New(kelf.TypeRel)
	text := &kelf.Section{
		Name: kelf.SecText, Type: kelf.SecProgbits,
		Flags: kelf.FlagAlloc | kelf.FlagExec,
		Data:  []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Relocs: []kelf.Reloc{
			{Offset: 0, Type: kelf.RelHi16, Symbol: "table", Addend: 4},
			{Offset: 4, Type: kelf.RelBr16, Symbol: ".L1", Addend: -8},
		},
	}
	data := &kelf.Section{
		Name: kelf.SecData, Type: kelf.SecProgbits,
		Flags: kelf.FlagAlloc | kelf.FlagWrite,
		Data:  []byte{9, 9, 9, 9},
		Relocs: []kelf.Reloc{
			{Offset: 0, Type: kelf.RelAbs32, Symbol: "main", Addend: 0},
		},
	}
	bss := &kelf.Section{Name: kelf.SecBss, Type: kelf.SecNobits,
		Flags: kelf.FlagAlloc | kelf.FlagWrite, Size: 64}
	for _, s := range []*kelf.Section{text, data, bss} {
		if err := f.AddSection(s); err != nil {
			t.Fatal(err)
		}
	}
	syms := []*kelf.Symbol{
		{Name: ".L1", Value: 4, Bind: kelf.BindLocal, Section: kelf.SecText},
		{Name: "main", Value: 0, Size: 8, Bind: kelf.BindGlobal, Type: kelf.SymFunc, Section: kelf.SecText},
		{Name: "table", Value: 0, Size: 4, Bind: kelf.BindGlobal, Type: kelf.SymObject, Section: kelf.SecData},
		{Name: "extern_thing", Bind: kelf.BindGlobal, Section: ""},
		{Name: "absval", Value: 0x42, Bind: kelf.BindGlobal, Section: kelf.SectionAbs},
	}
	for _, s := range syms {
		if err := f.AddSymbol(s); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile(t)
	f.Entry = 0x1000
	f.EntryISA = 2
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	g, err := kelf.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != f.Type || g.Entry != f.Entry || g.EntryISA != f.EntryISA {
		t.Fatalf("header round trip: %+v vs %+v", g, f)
	}
	if len(g.Sections) != len(f.Sections) {
		t.Fatalf("sections = %d, want %d", len(g.Sections), len(f.Sections))
	}
	for _, want := range f.Sections {
		got := g.Section(want.Name)
		if got == nil {
			t.Fatalf("section %s missing after round trip", want.Name)
		}
		if got.Type != want.Type || got.Flags != want.Flags || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("section %s round trip mismatch", want.Name)
		}
		if got.ByteSize() != want.ByteSize() {
			t.Errorf("section %s size %d != %d", want.Name, got.ByteSize(), want.ByteSize())
		}
		if !reflect.DeepEqual(got.Relocs, want.Relocs) {
			t.Errorf("section %s relocs:\n got %+v\nwant %+v", want.Name, got.Relocs, want.Relocs)
		}
	}
	if len(g.Symbols) != len(f.Symbols) {
		t.Fatalf("symbols = %d, want %d", len(g.Symbols), len(f.Symbols))
	}
	for _, want := range f.Symbols {
		got := g.Symbol(want.Name)
		if got == nil || !reflect.DeepEqual(got, want) {
			t.Errorf("symbol %s: got %+v want %+v", want.Name, got, want)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	f := sampleFile(t)
	path := filepath.Join(t.TempDir(), "a.o")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := kelf.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Section(kelf.SecText) == nil {
		t.Fatal("text section lost")
	}
}

func TestDecodeErrors(t *testing.T) {
	f := sampleFile(t)
	good, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"short", func(b []byte) []byte { return b[:10] }},
		{"magic", func(b []byte) []byte { b[0] = 0; return b }},
		{"class", func(b []byte) []byte { b[4] = 2; return b }},
		{"machine", func(b []byte) []byte { b[18] = 0; return b }},
		{"type", func(b []byte) []byte { b[16] = 9; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), good...))
			if _, err := kelf.Decode(b); err == nil {
				t.Fatal("expected decode error")
			}
		})
	}
}

func TestDuplicateRejection(t *testing.T) {
	f := kelf.New(kelf.TypeRel)
	s := &kelf.Section{Name: ".text", Type: kelf.SecProgbits}
	if err := f.AddSection(s); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSection(&kelf.Section{Name: ".text"}); err == nil {
		t.Error("duplicate section accepted")
	}
	if err := f.AddSymbol(&kelf.Symbol{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSymbol(&kelf.Symbol{Name: "x"}); err == nil {
		t.Error("duplicate symbol accepted")
	}
	if err := f.AddSymbol(&kelf.Symbol{}); err == nil {
		t.Error("empty symbol name accepted")
	}
}

func TestEncodeUnknownSymbolInReloc(t *testing.T) {
	f := kelf.New(kelf.TypeRel)
	_ = f.AddSection(&kelf.Section{
		Name: ".text", Type: kelf.SecProgbits, Data: make([]byte, 4),
		Relocs: []kelf.Reloc{{Symbol: "nope", Type: kelf.RelAbs32}},
	})
	if _, err := f.Encode(); err == nil {
		t.Fatal("expected unknown-symbol error")
	}
}

func TestLineMapRoundTripAndLookup(t *testing.T) {
	lm := &kelf.LineMap{}
	fi := lm.AddFile("dct.s")
	fj := lm.AddFile("aes.s")
	if lm.AddFile("dct.s") != fi {
		t.Fatal("AddFile did not intern")
	}
	lm.Add(0x1000, fi, 10)
	lm.Add(0x1008, fj, 20)
	lm.Add(0x1004, fi, 11)
	lm.Sort()
	b := lm.Encode()
	got, err := kelf.DecodeLineMap(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, lm) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, lm)
	}
	if _, _, ok := got.Lookup(0xFFF); ok {
		t.Error("lookup before first entry should fail")
	}
	file, line, ok := got.Lookup(0x1006)
	if !ok || file != "dct.s" || line != 11 {
		t.Errorf("Lookup(0x1006) = %s:%d,%v", file, line, ok)
	}
	file, line, _ = got.Lookup(0x9000)
	if file != "aes.s" || line != 20 {
		t.Errorf("Lookup(0x9000) = %s:%d", file, line)
	}
	got.Rebase(0x100)
	if _, _, ok := got.Lookup(0x1006); ok {
		t.Error("lookup should fail after rebase")
	}
}

func TestFuncTableRoundTripAndLookup(t *testing.T) {
	ft := &kelf.FuncTable{}
	ft.Add(kelf.FuncInfo{Name: "RISC.main", Start: 0x2000, End: 0x2100, ISA: 0})
	ft.Add(kelf.FuncInfo{Name: "VLIW4.dct", Start: 0x1000, End: 0x1800, ISA: 2})
	ft.Sort()
	b := ft.Encode()
	got, err := kelf.DecodeFuncTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ft) {
		t.Fatalf("round trip mismatch")
	}
	if f := got.Lookup(0x1400); f == nil || f.Name != "VLIW4.dct" {
		t.Errorf("Lookup(0x1400) = %+v", f)
	}
	if f := got.Lookup(0x1900); f != nil {
		t.Errorf("Lookup in gap = %+v", f)
	}
	if f := got.Lookup(0x2000); f == nil || f.ISA != 0 {
		t.Errorf("Lookup(0x2000) = %+v", f)
	}
	if f := got.Lookup(0x100); f != nil {
		t.Errorf("Lookup before first = %+v", f)
	}
}

func TestLineMapQuickRoundTrip(t *testing.T) {
	f := func(addrs []uint32, lines []uint32) bool {
		lm := &kelf.LineMap{}
		fi := lm.AddFile("f.s")
		for i, a := range addrs {
			ln := uint32(i)
			if i < len(lines) {
				ln = lines[i]
			}
			lm.Add(a, fi, ln)
		}
		lm.Sort()
		got, err := kelf.DecodeLineMap(lm.Encode())
		return err == nil && reflect.DeepEqual(got, lm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncatedDebug(t *testing.T) {
	if _, err := kelf.DecodeLineMap([]byte{1}); err == nil {
		t.Error("truncated linemap accepted")
	}
	if _, err := kelf.DecodeFuncTable([]byte{0, 0}); err == nil {
		t.Error("truncated functable accepted")
	}
	ft := &kelf.FuncTable{}
	ft.Add(kelf.FuncInfo{Name: "x", Start: 1, End: 2})
	b := ft.Encode()
	if _, err := kelf.DecodeFuncTable(b[:len(b)-1]); err == nil {
		t.Error("truncated functable record accepted")
	}
}

func TestSortedSymbols(t *testing.T) {
	f := sampleFile(t)
	got := f.SortedSymbols()
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Section > b.Section || (a.Section == b.Section && a.Value > b.Value) {
			t.Fatalf("not sorted at %d: %+v then %+v", i, a, b)
		}
	}
}
