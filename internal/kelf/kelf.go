// Package kelf reads and writes the ELF object and executable files of
// the KAHRISMA toolchain (Sec. IV of the paper: "Both, the object files
// and application binary, are stored in standard Executable and Linkable
// Format"). The encoding is genuine ELF32 little-endian with a private
// machine number; custom PROGBITS sections carry the assembler line map,
// the source line map, and the function table (the paper's custom data
// section + DWARF line information, see Sec. V-C).
package kelf

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
)

// Machine is the private e_machine value of the KAHRISMA toolchain
// ("KA" little-endian).
const Machine = 0x414B

// FileType distinguishes relocatable objects from executables.
type FileType uint16

const (
	TypeRel  FileType = 1 // ET_REL
	TypeExec FileType = 2 // ET_EXEC
)

// SectionType is the ELF section type (subset used by the toolchain).
type SectionType uint32

const (
	SecProgbits SectionType = 1 // SHT_PROGBITS
	SecSymtab   SectionType = 2 // SHT_SYMTAB
	SecStrtab   SectionType = 3 // SHT_STRTAB
	SecRela     SectionType = 4 // SHT_RELA
	SecNobits   SectionType = 8 // SHT_NOBITS (.bss)
)

// Section flags.
const (
	FlagWrite uint32 = 1 << 0 // SHF_WRITE
	FlagAlloc uint32 = 1 << 1 // SHF_ALLOC
	FlagExec  uint32 = 1 << 2 // SHF_EXECINSTR
)

// Well-known section names.
const (
	SecText    = ".text"
	SecData    = ".data"
	SecRodata  = ".rodata"
	SecBss     = ".bss"
	SecLineMap = ".klinemap" // instruction address -> assembly file/line
	SecSrcMap  = ".ksrcmap"  // instruction address -> C source file/line
	SecFuncs   = ".kfuncs"   // function name, [start,end), ISA id
)

// RelocType enumerates the relocation kinds of the K-ISA.
type RelocType uint8

const (
	// RelAbs32: *(uint32)(P) = S + A. Used for data words and tables.
	RelAbs32 RelocType = 1
	// RelHi16: imm[15:0] of the operation word at P = (S+A) >> 16.
	// Pairs with LUI.
	RelHi16 RelocType = 2
	// RelLo16: imm[15:0] of the operation word at P = (S+A) & 0xFFFF.
	// Pairs with ORI.
	RelLo16 RelocType = 3
	// RelJ26: imm[25:0] of the operation word at P = (S+A) / 4.
	// Absolute word-address jump target (J, JAL).
	RelJ26 RelocType = 4
	// RelBr16: imm[15:0] of the operation word at P = (S+A-P) / 4.
	// Branch displacement relative to the operation word address.
	RelBr16 RelocType = 5
)

func (t RelocType) String() string {
	switch t {
	case RelAbs32:
		return "ABS32"
	case RelHi16:
		return "HI16"
	case RelLo16:
		return "LO16"
	case RelJ26:
		return "J26"
	case RelBr16:
		return "BR16"
	}
	return fmt.Sprintf("RelocType(%d)", uint8(t))
}

// Reloc is a relocation against a named symbol, attached to the section
// whose contents it patches.
type Reloc struct {
	Offset uint32 // byte offset within the section
	Type   RelocType
	Symbol string
	Addend int32
}

// Section is a named chunk of the file. For SecNobits, Data is nil and
// Size carries the section size.
type Section struct {
	Name   string
	Type   SectionType
	Flags  uint32
	Addr   uint32 // virtual address (executables)
	Data   []byte
	Size   uint32 // only meaningful for SecNobits
	Align  uint32
	Relocs []Reloc
}

// ByteSize returns the loaded size of the section.
func (s *Section) ByteSize() uint32 {
	if s.Type == SecNobits {
		return s.Size
	}
	return uint32(len(s.Data))
}

// SymBind is the symbol binding.
type SymBind uint8

const (
	BindLocal  SymBind = 0
	BindGlobal SymBind = 1
)

// SymType is the symbol type.
type SymType uint8

const (
	SymNone   SymType = 0
	SymObject SymType = 1
	SymFunc   SymType = 2
)

// SectionAbs marks absolute symbols (SHN_ABS).
const SectionAbs = "*ABS*"

// Symbol is a named location. Section == "" means undefined (to be
// resolved at link time); Section == SectionAbs means absolute.
type Symbol struct {
	Name    string
	Value   uint32
	Size    uint32
	Bind    SymBind
	Type    SymType
	Section string
}

// File is an in-memory ELF object or executable.
type File struct {
	Type  FileType
	Entry uint32
	// EntryISA is the identification number of the ISA of the entry
	// code (Sec. V-D: "the initial ISA must match the ISA of the entry
	// code of the executable"). Stored in e_flags.
	EntryISA int
	Sections []*Section
	Symbols  []*Symbol
}

// New creates an empty file of the given type.
func New(t FileType) *File { return &File{Type: t} }

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for _, s := range f.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// AddSection appends a section; duplicate names are rejected.
func (f *File) AddSection(s *Section) error {
	if f.Section(s.Name) != nil {
		return fmt.Errorf("kelf: duplicate section %q", s.Name)
	}
	if s.Align == 0 {
		s.Align = 4
	}
	f.Sections = append(f.Sections, s)
	return nil
}

// Symbol returns the named symbol, or nil.
func (f *File) Symbol(name string) *Symbol {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// AddSymbol appends a symbol; duplicate names are rejected (the
// assembler uniquifies local labels per file).
func (f *File) AddSymbol(s *Symbol) error {
	if s.Name == "" {
		return fmt.Errorf("kelf: symbol with empty name")
	}
	if f.Symbol(s.Name) != nil {
		return fmt.Errorf("kelf: duplicate symbol %q", s.Name)
	}
	f.Symbols = append(f.Symbols, s)
	return nil
}

// ---------------------------------------------------------------------
// Encoding

const (
	ehdrSize  = 52
	shdrSize  = 40
	symSize   = 16
	relaSize  = 12
	shnUndef  = 0
	shnAbs    = 0xFFF1
	stbLocal  = 0
	stbGlobal = 1
)

type strtab struct {
	buf []byte
	idx map[string]uint32
}

func newStrtab() *strtab {
	return &strtab{buf: []byte{0}, idx: map[string]uint32{"": 0}}
}

func (st *strtab) add(s string) uint32 {
	if off, ok := st.idx[s]; ok {
		return off
	}
	off := uint32(len(st.buf))
	st.buf = append(st.buf, s...)
	st.buf = append(st.buf, 0)
	st.idx[s] = off
	return off
}

func (st *strtab) get(off uint32) (string, error) {
	if off >= uint32(len(st.buf)) {
		return "", fmt.Errorf("kelf: string offset %d out of range", off)
	}
	end := off
	for end < uint32(len(st.buf)) && st.buf[end] != 0 {
		end++
	}
	return string(st.buf[off:end]), nil
}

func align(n, a uint32) uint32 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) &^ (a - 1)
}

// Encode serializes the file to ELF32 bytes.
func (f *File) Encode() ([]byte, error) {
	le := binary.LittleEndian

	// Section numbering: 0 null, then user sections, then rela sections
	// (one per user section with relocations), then .symtab, .strtab,
	// .shstrtab.
	type relaFor struct {
		target int // user section index in f.Sections
	}
	var relaSecs []relaFor
	for i, s := range f.Sections {
		if len(s.Relocs) > 0 {
			relaSecs = append(relaSecs, relaFor{target: i})
		}
	}
	nUser := len(f.Sections)
	symtabIdx := 1 + nUser + len(relaSecs)
	strtabIdx := symtabIdx + 1
	shstrtabIdx := strtabIdx + 1
	nSections := shstrtabIdx + 1

	secIndex := func(name string) (uint16, error) {
		if name == "" {
			return shnUndef, nil
		}
		if name == SectionAbs {
			return shnAbs, nil
		}
		for i, s := range f.Sections {
			if s.Name == name {
				return uint16(i + 1), nil
			}
		}
		return 0, fmt.Errorf("kelf: symbol references unknown section %q", name)
	}

	// Build the symbol table: null, locals, globals.
	strs := newStrtab()
	var locals, globals []*Symbol
	for _, s := range f.Symbols {
		if s.Bind == BindLocal {
			locals = append(locals, s)
		} else {
			globals = append(globals, s)
		}
	}
	ordered := append(append([]*Symbol{}, locals...), globals...)
	symIdx := make(map[string]uint32, len(ordered))
	symBytes := make([]byte, symSize*(len(ordered)+1))
	for i, s := range ordered {
		if _, dup := symIdx[s.Name]; dup {
			return nil, fmt.Errorf("kelf: duplicate symbol %q", s.Name)
		}
		symIdx[s.Name] = uint32(i + 1)
		off := symSize * (i + 1)
		le.PutUint32(symBytes[off:], strs.add(s.Name))
		le.PutUint32(symBytes[off+4:], s.Value)
		le.PutUint32(symBytes[off+8:], s.Size)
		bind := byte(stbLocal)
		if s.Bind == BindGlobal {
			bind = stbGlobal
		}
		symBytes[off+12] = bind<<4 | byte(s.Type)&0xF
		shndx, err := secIndex(s.Section)
		if err != nil {
			return nil, err
		}
		le.PutUint16(symBytes[off+14:], uint16(shndx))
	}

	// Rela payloads.
	relaBytes := make([][]byte, len(relaSecs))
	for ri, rf := range relaSecs {
		sec := f.Sections[rf.target]
		buf := make([]byte, relaSize*len(sec.Relocs))
		for i, r := range sec.Relocs {
			si, ok := symIdx[r.Symbol]
			if !ok {
				return nil, fmt.Errorf("kelf: relocation in %s references unknown symbol %q",
					sec.Name, r.Symbol)
			}
			le.PutUint32(buf[i*relaSize:], r.Offset)
			le.PutUint32(buf[i*relaSize+4:], si<<8|uint32(r.Type))
			le.PutUint32(buf[i*relaSize+8:], uint32(r.Addend))
		}
		relaBytes[ri] = buf
	}

	shstrs := newStrtab()

	// Lay out section data.
	type placed struct {
		nameOff         uint32
		typ             SectionType
		flags           uint32
		addr, off, size uint32
		link, info      uint32
		alignv, entsize uint32
		data            []byte
	}
	ph := make([]placed, nSections)
	pos := uint32(ehdrSize)
	place := func(i int, p placed) {
		if p.typ != SecNobits && p.data != nil {
			pos = align(pos, p.alignv)
			p.off = pos
			pos += uint32(len(p.data))
			p.size = uint32(len(p.data))
		} else if p.typ == SecNobits {
			pos = align(pos, p.alignv)
			p.off = pos // no file bytes
		}
		ph[i] = p
	}

	for i, s := range f.Sections {
		place(i+1, placed{
			nameOff: shstrs.add(s.Name),
			typ:     s.Type, flags: s.Flags, addr: s.Addr,
			alignv: s.Align, data: s.Data, size: s.ByteSize(),
		})
		if s.Type == SecNobits {
			ph[i+1].size = s.Size
		}
	}
	for ri, rf := range relaSecs {
		sec := f.Sections[rf.target]
		place(1+nUser+ri, placed{
			nameOff: shstrs.add(".rela" + sec.Name),
			typ:     SecRela, alignv: 4, data: relaBytes[ri],
			link: uint32(symtabIdx), info: uint32(rf.target + 1), entsize: relaSize,
		})
	}
	place(symtabIdx, placed{
		nameOff: shstrs.add(".symtab"), typ: SecSymtab, alignv: 4,
		data: symBytes, link: uint32(strtabIdx),
		info: uint32(len(locals) + 1), entsize: symSize,
	})
	place(strtabIdx, placed{
		nameOff: shstrs.add(".strtab"), typ: SecStrtab, alignv: 1, data: strs.buf,
	})
	shstrs.add(".shstrtab")
	place(shstrtabIdx, placed{
		nameOff: shstrs.idx[".shstrtab"], typ: SecStrtab, alignv: 1, data: shstrs.buf,
	})

	shoff := align(pos, 4)
	total := shoff + uint32(nSections)*shdrSize
	out := make([]byte, total)

	// ELF header.
	copy(out, []byte{0x7F, 'E', 'L', 'F', 1 /*32-bit*/, 1 /*LSB*/, 1 /*version*/})
	le.PutUint16(out[16:], uint16(f.Type))
	le.PutUint16(out[18:], Machine)
	le.PutUint32(out[20:], 1) // e_version
	le.PutUint32(out[24:], f.Entry)
	le.PutUint32(out[28:], 0) // e_phoff: no program headers; loaders use sections
	le.PutUint32(out[32:], shoff)
	le.PutUint32(out[36:], uint32(f.EntryISA)) // e_flags carries the entry ISA id
	le.PutUint16(out[40:], ehdrSize)
	le.PutUint16(out[42:], 0) // e_phentsize
	le.PutUint16(out[44:], 0) // e_phnum
	le.PutUint16(out[46:], shdrSize)
	le.PutUint16(out[48:], uint16(nSections))
	le.PutUint16(out[50:], uint16(shstrtabIdx))

	// Section bodies.
	for _, p := range ph {
		if p.typ != SecNobits && p.data != nil {
			copy(out[p.off:], p.data)
		}
	}
	// Section header table.
	for i, p := range ph {
		h := out[shoff+uint32(i)*shdrSize:]
		le.PutUint32(h[0:], p.nameOff)
		le.PutUint32(h[4:], uint32(p.typ))
		le.PutUint32(h[8:], p.flags)
		le.PutUint32(h[12:], p.addr)
		le.PutUint32(h[16:], p.off)
		le.PutUint32(h[20:], p.size)
		le.PutUint32(h[24:], p.link)
		le.PutUint32(h[28:], p.info)
		le.PutUint32(h[32:], p.alignv)
		le.PutUint32(h[36:], p.entsize)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Decoding

// Decode parses ELF32 bytes produced by Encode (or compatible tools).
func Decode(data []byte) (*File, error) {
	le := binary.LittleEndian
	if len(data) < ehdrSize {
		return nil, fmt.Errorf("kelf: file too short (%d bytes)", len(data))
	}
	if data[0] != 0x7F || data[1] != 'E' || data[2] != 'L' || data[3] != 'F' {
		return nil, fmt.Errorf("kelf: bad ELF magic")
	}
	if data[4] != 1 || data[5] != 1 {
		return nil, fmt.Errorf("kelf: not ELF32 little-endian")
	}
	if m := le.Uint16(data[18:]); m != Machine {
		return nil, fmt.Errorf("kelf: wrong machine 0x%x (want 0x%x)", m, Machine)
	}
	f := New(FileType(le.Uint16(data[16:])))
	if f.Type != TypeRel && f.Type != TypeExec {
		return nil, fmt.Errorf("kelf: unsupported file type %d", f.Type)
	}
	f.Entry = le.Uint32(data[24:])
	f.EntryISA = int(le.Uint32(data[36:]))
	shoff := le.Uint32(data[32:])
	shnum := int(le.Uint16(data[48:]))
	shstrndx := int(le.Uint16(data[50:]))
	if shnum == 0 || shoff == 0 {
		return nil, fmt.Errorf("kelf: no section headers")
	}
	type rawShdr struct {
		name, typ, flags, addr, off, size, link, info, alignv, entsize uint32
	}
	hdrs := make([]rawShdr, shnum)
	for i := 0; i < shnum; i++ {
		base := shoff + uint32(i)*shdrSize
		if base+shdrSize > uint32(len(data)) {
			return nil, fmt.Errorf("kelf: section header %d out of bounds", i)
		}
		h := data[base:]
		hdrs[i] = rawShdr{
			le.Uint32(h[0:]), le.Uint32(h[4:]), le.Uint32(h[8:]), le.Uint32(h[12:]),
			le.Uint32(h[16:]), le.Uint32(h[20:]), le.Uint32(h[24:]), le.Uint32(h[28:]),
			le.Uint32(h[32:]), le.Uint32(h[36:]),
		}
	}
	body := func(i int) ([]byte, error) {
		h := hdrs[i]
		if SectionType(h.typ) == SecNobits {
			return nil, nil
		}
		if h.off+h.size > uint32(len(data)) {
			return nil, fmt.Errorf("kelf: section %d body out of bounds", i)
		}
		return data[h.off : h.off+h.size], nil
	}
	if shstrndx <= 0 || shstrndx >= shnum {
		return nil, fmt.Errorf("kelf: bad shstrtab index %d", shstrndx)
	}
	shstrBody, err := body(shstrndx)
	if err != nil {
		return nil, err
	}
	shstrs := &strtab{buf: shstrBody}
	secName := make([]string, shnum)
	for i := 1; i < shnum; i++ {
		n, err := shstrs.get(hdrs[i].name)
		if err != nil {
			return nil, err
		}
		secName[i] = n
	}

	// First pass: user sections (everything except symtab/strtabs/rela).
	userIdx := make(map[int]*Section)
	symtabIdx, strtabIdx := -1, -1
	for i := 1; i < shnum; i++ {
		h := hdrs[i]
		switch SectionType(h.typ) {
		case SecSymtab:
			symtabIdx = i
			strtabIdx = int(h.link)
		case SecStrtab, SecRela:
			// handled below
		default:
			b, err := body(i)
			if err != nil {
				return nil, err
			}
			s := &Section{
				Name: secName[i], Type: SectionType(h.typ), Flags: h.flags,
				Addr: h.addr, Align: h.alignv,
			}
			if s.Type == SecNobits {
				s.Size = h.size
			} else {
				s.Data = append([]byte(nil), b...)
			}
			if err := f.AddSection(s); err != nil {
				return nil, err
			}
			userIdx[i] = s
		}
	}

	// Symbols.
	var symNames []string
	if symtabIdx >= 0 {
		if strtabIdx <= 0 || strtabIdx >= shnum {
			return nil, fmt.Errorf("kelf: symtab link %d invalid", strtabIdx)
		}
		strBody, err := body(strtabIdx)
		if err != nil {
			return nil, err
		}
		strs := &strtab{buf: strBody}
		symBody, err := body(symtabIdx)
		if err != nil {
			return nil, err
		}
		n := len(symBody) / symSize
		symNames = make([]string, n)
		for i := 1; i < n; i++ {
			e := symBody[i*symSize:]
			name, err := strs.get(le.Uint32(e))
			if err != nil {
				return nil, err
			}
			symNames[i] = name
			shndx := le.Uint16(e[14:])
			var secStr string
			switch {
			case shndx == shnUndef:
				secStr = ""
			case shndx == shnAbs:
				secStr = SectionAbs
			case int(shndx) < shnum && userIdx[int(shndx)] != nil:
				secStr = userIdx[int(shndx)].Name
			default:
				return nil, fmt.Errorf("kelf: symbol %q references section index %d", name, shndx)
			}
			bind := BindLocal
			if e[12]>>4 == stbGlobal {
				bind = BindGlobal
			}
			sym := &Symbol{
				Name:    name,
				Value:   le.Uint32(e[4:]),
				Size:    le.Uint32(e[8:]),
				Bind:    bind,
				Type:    SymType(e[12] & 0xF),
				Section: secStr,
			}
			if err := f.AddSymbol(sym); err != nil {
				return nil, err
			}
		}
	}

	// Relocations.
	for i := 1; i < shnum; i++ {
		h := hdrs[i]
		if SectionType(h.typ) != SecRela {
			continue
		}
		target := userIdx[int(h.info)]
		if target == nil {
			return nil, fmt.Errorf("kelf: rela section %d targets unknown section %d", i, h.info)
		}
		b, err := body(i)
		if err != nil {
			return nil, err
		}
		for off := 0; off+relaSize <= len(b); off += relaSize {
			info := le.Uint32(b[off+4:])
			si := int(info >> 8)
			if si <= 0 || si >= len(symNames) {
				return nil, fmt.Errorf("kelf: relocation references symbol index %d", si)
			}
			target.Relocs = append(target.Relocs, Reloc{
				Offset: le.Uint32(b[off:]),
				Type:   RelocType(info & 0xFF),
				Symbol: symNames[si],
				Addend: int32(le.Uint32(b[off+8:])),
			})
		}
	}
	return f, nil
}

// WriteFile encodes and writes the file to path.
func (f *File) WriteFile(path string) error {
	b, err := f.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile reads and decodes the file at path.
func ReadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// SortedSymbols returns the symbols sorted by (section, value, name) —
// convenient for tools that print symbol tables deterministically.
func (f *File) SortedSymbols() []*Symbol {
	out := append([]*Symbol(nil), f.Symbols...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Section != out[j].Section {
			return out[i].Section < out[j].Section
		}
		if out[i].Value != out[j].Value {
			return out[i].Value < out[j].Value
		}
		return out[i].Name < out[j].Name
	})
	return out
}
