package sim_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/ktest"
	"repro/internal/sim"
)

// runPair executes one program twice — superblock traces on and off —
// under otherwise identical options and asserts bit-identical results:
// exit status, registers, output, and the complete Stats counter set
// (the profiler derives its report from those counters, so counter
// equality is profile equality). It returns both CPUs and errors for
// edge-specific assertions.
func runPair(t *testing.T, p *sim.Program, tune func(*sim.Options)) (on, off *sim.CPU, onErr, offErr error) {
	t.Helper()
	run := func(superblocks bool) (*sim.CPU, *bytes.Buffer, sim.ExitStatus, error) {
		opts := sim.DefaultOptions()
		opts.MaxInstructions = 50_000_000
		var out bytes.Buffer
		opts.Stdout = &out
		if tune != nil {
			tune(&opts)
		}
		opts.Superblocks = superblocks
		c := ktest.NewCPU(t, p, opts)
		st, err := c.Run()
		return c, &out, st, err
	}
	cOn, outOn, stOn, errOn := run(true)
	cOff, outOff, stOff, errOff := run(false)

	if (errOn == nil) != (errOff == nil) ||
		(errOn != nil && errOn.Error() != errOff.Error()) {
		t.Fatalf("errors diverge:\n  superblocks on:  %v\n  superblocks off: %v", errOn, errOff)
	}
	if stOn != stOff {
		t.Errorf("exit status diverges: %+v vs %+v", stOn, stOff)
	}
	if cOn.Stats != cOff.Stats {
		t.Errorf("stats diverge:\n  on:  %+v\n  off: %+v", cOn.Stats, cOff.Stats)
	}
	if cOn.Regs != cOff.Regs {
		t.Errorf("registers diverge:\n  on:  %v\n  off: %v", cOn.Regs, cOff.Regs)
	}
	if cOn.IP != cOff.IP {
		t.Errorf("final IP diverges: %#x vs %#x", cOn.IP, cOff.IP)
	}
	if !bytes.Equal(outOn.Bytes(), outOff.Bytes()) {
		t.Errorf("output diverges:\n  on:  %q\n  off: %q", outOn, outOff)
	}
	return cOn, cOff, errOn, errOff
}

// A hot loop — the case superblocks exist for. The trace must wrap (the
// loop body replays inside one trace), visible as a prediction-hit rate
// near 100%, and stay bit-identical to the stepwise interpreter.
func TestSuperblockHotLoopEquivalence(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li a0, 0
	li t0, 0
	li t1, 20000
loop:
	addi t0, t0, 1
	add a0, a0, t0
	andi a0, a0, 65535
	bne t0, t1, loop
	ret
`)
	on, _, _, _ := runPair(t, p, nil)
	if hits := float64(on.Stats.PredHits) / float64(on.Stats.Instructions); hits < 0.99 {
		t.Errorf("prediction-hit rate %.4f, want ~1 for a hot loop", hits)
	}
}

// ISA switch mid-trace: a loop body that hops RISC -> VLIW4 -> RISC on
// every iteration. Prediction links never cross a switch, so every
// trace must end at the swt and hand control back; counters, the switch
// count and results stay identical either way.
func TestSuperblockISASwitchMidTrace(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li a0, 0
	li t0, 0
	li t1, 500
loop:
	addi t0, t0, 1
	swt VLIW4
	.isa VLIW4
	{ addi a0, a0, 3 ; addi t2, zero, 0 }
	swt RISC
	.isa RISC
	bne t0, t1, loop
	ret
`)
	on, _, _, _ := runPair(t, p, nil)
	if on.Stats.ISASwitches != 1000 {
		t.Errorf("ISA switches = %d, want 1000", on.Stats.ISASwitches)
	}
}

// Decode-cache eviction of chained entries: a bounded cache that
// flushes while traces reference its entries. The flush must drop the
// traces with the cache (one generation bump) without perturbing any
// counter or result.
func TestSuperblockDecodeCacheEviction(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li a0, 0
	li t0, 0
	li t1, 300
loop:
	addi t0, t0, 1
	addi a0, a0, 2
	addi a0, a0, 3
	addi a0, a0, 5
	andi a0, a0, 4095
	bne t0, t1, loop
	ret
`)
	on, _, _, _ := runPair(t, p, func(o *sim.Options) { o.DecodeCacheCap = 4 })
	if on.Stats.CacheEvictions == 0 {
		t.Error("bounded cache (cap 4) never evicted — the edge was not exercised")
	}
}

// Fuel exhaustion inside a trace: the instruction limit lands mid-way
// through a hot loop body. The trace budget must stop execution at
// exactly MaxInstructions, and both paths must report the same
// ErrFuelExhausted at the same instruction and IP (the error text
// embeds the faulting location, so string equality pins both).
func TestSuperblockFuelExhaustionInsideTrace(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li t0, 0
spin:
	addi t0, t0, 1
	addi t1, t0, 7
	addi t2, t1, 9
	j spin
`)
	// 10_007 is far from any multiple of the 4-instruction loop body,
	// so the limit lands inside a wrapped trace.
	on, off, onErr, _ := runPair(t, p, func(o *sim.Options) { o.MaxInstructions = 10_007 })
	if !errors.Is(onErr, sim.ErrFuelExhausted) {
		t.Fatalf("error %v does not wrap ErrFuelExhausted", onErr)
	}
	if on.Stats.Instructions != 10_007 || off.Stats.Instructions != 10_007 {
		t.Errorf("instructions at fuel stop: on=%d off=%d, want exactly 10007",
			on.Stats.Instructions, off.Stats.Instructions)
	}
}

// Cancellation landing inside a trace: a context canceled before the
// run starts stops both interpreters at the first poll boundary — the
// same deterministic instruction count, never mid-trace past it.
func TestSuperblockCancellationInsideTrace(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li t0, 0
spin:
	addi t0, t0, 1
	j spin
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run := func(superblocks bool) (*sim.CPU, error) {
		opts := sim.DefaultOptions()
		opts.Superblocks = superblocks
		c := ktest.NewCPU(t, p, opts)
		_, err := c.RunContext(ctx)
		return c, err
	}
	on, onErr := run(true)
	off, offErr := run(false)
	if !errors.Is(onErr, sim.ErrCanceled) || !errors.Is(offErr, sim.ErrCanceled) {
		t.Fatalf("errors do not wrap ErrCanceled: on=%v off=%v", onErr, offErr)
	}
	if on.Stats != off.Stats {
		t.Errorf("stats at cancellation diverge:\n  on:  %+v\n  off: %+v", on.Stats, off.Stats)
	}
	if onErr.Error() != offErr.Error() {
		t.Errorf("cancellation errors diverge:\n  on:  %v\n  off: %v", onErr, offErr)
	}
}

// A store into the text section (self-modifying region) conservatively
// drops the traces. The decode cache itself never re-decodes by the
// paper's design, so results must be identical to the stepwise path —
// which is exactly why the traces may keep replaying the original
// decode structures and only the chaining is invalidated.
func TestSuperblockSelfModifyingStore(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li a0, 0
	li t0, 0
	li t1, 200
	la t3, patch
loop:
	addi t0, t0, 1
patch:
	addi a0, a0, 1
	lw t2, 0(t3)
	sw t2, 0(t3)
	bne t0, t1, loop
	ret
`)
	runPair(t, p, nil)
}

// Observers (the profiler, cycle models) run inside traces through the
// full execute path. A run with an observer attached must agree with
// the stepwise interpreter instruction by instruction.
func TestSuperblockObservedEquivalence(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li a0, 0
	li t0, 0
	li t1, 5000
loop:
	addi t0, t0, 1
	add a0, a0, t0
	bne t0, t1, loop
	ret
`)
	count := func(superblocks bool) (uint64, sim.Stats) {
		opts := sim.DefaultOptions()
		opts.MaxInstructions = 50_000_000
		opts.Superblocks = superblocks
		c := ktest.NewCPU(t, p, opts)
		var n uint64
		c.Attach(observerFunc(func(rec *sim.ExecRecord) { n += uint64(len(rec.D.Ops)) }))
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return n, c.Stats
	}
	nOn, sOn := count(true)
	nOff, sOff := count(false)
	if nOn != nOff {
		t.Errorf("observer saw %d ops with superblocks, %d without", nOn, nOff)
	}
	if sOn != sOff {
		t.Errorf("stats diverge under observation:\n  on:  %+v\n  off: %+v", sOn, sOff)
	}
	if nOn != sOn.Operations {
		t.Errorf("observer saw %d ops, counters say %d", nOn, sOn.Operations)
	}
}

// observerFunc adapts a func to the sim.Observer interface.
type observerFunc func(*sim.ExecRecord)

func (f observerFunc) Instruction(rec *sim.ExecRecord) { f(rec) }
