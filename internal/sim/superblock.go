package sim

import "fmt"

// Superblock decode traces (ROADMAP item 2): the decode cache and
// next-instruction prediction of the paper already reduce most fetches
// to two pointer compares, but every instruction still pays the full
// interpreter frame — outer-loop bookkeeping, the text-bounds check,
// the fetch call, per-operation observer scaffolding and the generic
// execute path. A superblock chains the decode structures that
// prediction links into a straight-line trace and executes it in one
// tight loop: each chained transition is verified with the same three
// compares the stepwise predictor uses (pred pointer, address, ISA) and
// then runs without any per-instruction fetch or dispatch overhead.
//
// Correctness contract: superblock execution is bit-identical to the
// stepwise loop in architectural state, output, cycles AND counters.
// A trace transition executes exactly when the stepwise fetch would
// have scored a prediction hit, and counts it identically (PredHits);
// any other situation — broken prediction link, control divergence,
// run-time ISA switch, halt, error — exits the trace and hands the
// instruction back to the ordinary Step path, which counts lookups,
// misses and evictions exactly as before. Traces therefore never
// create or retire decode structures themselves: they only replay the
// prediction graph the stepwise interpreter builds.
//
// Invalidation is generation-based (CPU.sbGen): bumping the generation
// lazily invalidates every trace at once. Generations advance on
// decode-cache flushes (Options.DecodeCacheCap evictions), on stores
// into the text section (self-modifying regions; decode structures
// themselves are immutable by the paper's cache design, but the
// chaining is conservatively dropped), and when the per-generation
// build budget is exhausted. Fuel, cancellation polling and progress
// events bound each trace run through an instruction budget computed by
// the outer loop, so a trace can never overshoot a boundary the
// stepwise loop would have honoured.
const (
	// maxSuperblockLen bounds one trace: enough to cover hot loop
	// bodies (the paper's workloads average well under this) while
	// keeping build cost and memory per decode structure small.
	maxSuperblockLen = 64
	// maxSuperblocks bounds traces built per generation; exceeding it
	// flushes them all (the same wholesale policy as the bounded
	// decode cache — the only deterministic one without bookkeeping on
	// the hot path).
	maxSuperblocks = 4096
)

// superblock is one decode trace: the chain of decode structures the
// prediction links formed when it was built, head first.
type superblock struct {
	gen   uint64     // valid while == CPU.sbGen
	steps []*Decoded // steps[0] is the head
	// wrap marks a closed loop: the last step's prediction returns to
	// the head, so the trace replays without leaving the tight loop.
	wrap bool
	// open marks a trace that ended on a missing prediction link; it
	// is rebuilt once the link exists (warm-up growth). Traces closed
	// by wrap, length cap or an ISA boundary stay as built.
	open bool
}

// sbActive reports whether this run executes through superblocks: the
// opt-in plus every feature that needs the stepwise per-instruction
// frame. Per-op capture (trace files, live op streaming) and the IP
// history ring dominate dispatch cost anyway, so those runs keep the
// plain loop; cycle models and the profiler are cheap observers and ARE
// served inside traces (runSuperblock keeps ExecRecord exact for them).
func (c *CPU) sbActive() bool {
	return c.opts.Superblocks && c.opts.DecodeCache && c.opts.Prediction &&
		c.opts.HistorySize == 0 && !c.capture
}

// invalidateSuperblocks drops every trace by advancing the generation.
// Decode structures and prediction links are untouched: rebuilding a
// trace replays them and is therefore free of counter effects.
func (c *CPU) invalidateSuperblocks() {
	c.sbGen++
	c.sbBuilt = 0
}

// sbBudget computes how many instructions a trace may execute before
// the outer loop must regain control: the fuel boundary (exact — the
// stepwise loop errors precisely at MaxInstructions), the cancellation
// poll and the next progress event. All bounds are strictly ahead of
// the current count because runLoop just serviced them.
func (c *CPU) sbBudget(polling bool, nextPoll uint64) uint64 {
	b := uint64(1) << 62
	n := c.Stats.Instructions
	if m := c.opts.MaxInstructions; m > 0 && m-n < b {
		b = m - n
	}
	if polling && nextPoll-n < b {
		b = nextPoll - n
	}
	if c.sink != nil && c.nextProg-n < b {
		b = c.nextProg - n
	}
	return b
}

// stepSuperblock executes the instruction at the current IP through the
// ordinary Step path (full bounds/fetch/counter semantics) and then, if
// that instruction heads a valid trace, continues along the trace for
// up to budget-1 further instructions.
func (c *CPU) stepSuperblock(budget uint64) error {
	if err := c.Step(); err != nil || c.halted {
		return err
	}
	head := c.last
	if head == nil || budget <= 1 {
		return nil
	}
	sb := head.sb
	if sb == nil || sb.gen != c.sbGen ||
		(sb.open && sb.steps[len(sb.steps)-1].pred != nil) {
		sb = c.buildSuperblock(head)
	}
	if len(sb.steps) < 2 {
		return nil
	}
	return c.runSuperblock(sb, budget-1)
}

// buildSuperblock walks the prediction links from head into a fresh
// trace. Building never touches the counters: it reads the prediction
// graph, it does not extend it. The walk stops at a missing link
// (open: regrown once the link appears), at the head (wrap: a closed
// loop), at an ISA boundary (defensive — prediction links are cleared
// across switches) or at the length cap.
func (c *CPU) buildSuperblock(head *Decoded) *superblock {
	if c.sbBuilt >= maxSuperblocks {
		c.invalidateSuperblocks()
	}
	sb := &superblock{gen: c.sbGen, steps: make([]*Decoded, 1, 8)}
	sb.steps[0] = head
	cur := head
	for len(sb.steps) < maxSuperblockLen {
		p := cur.pred
		if p == nil {
			sb.open = true
			break
		}
		if p == head {
			sb.wrap = true
			break
		}
		if p.ISA != head.ISA {
			break
		}
		sb.steps = append(sb.steps, p)
		cur = p
	}
	c.sbBuilt++
	head.sb = sb
	return sb
}

// runSuperblock executes up to budget chained instructions of t. The
// head (steps[0]) was already executed by the caller; execution
// continues at steps[1] and wraps back to the head for closed loops.
// Every transition re-verifies the prediction-hit condition, so a stale
// trace can never execute a wrong instruction — it just exits early and
// the stepwise path takes over.
//
// This is the no-observer fast path: the execute body is inlined
// (identical architectural semantics — two-phase write-back, zero-
// register suppression, control-transfer conflict detection, pending
// ISA switches — with the ExecRecord bookkeeping elided) and the
// instruction pointer plus the PredHits/Operations counters live in
// locals, flushed at every exit. Stats.Instructions is maintained
// directly because running operations can read it (the clock simcall,
// the ISA-switch trace event), exactly at its stepwise value.
func (c *CPU) runSuperblock(t *superblock, budget uint64) error {
	if len(c.observers) > 0 {
		return c.runSuperblockObserved(t, budget)
	}
	steps := t.steps
	n := len(steps)
	d := c.last
	ip := c.IP
	var preds, opsDone uint64
	i := 1
	for budget > 0 {
		if i == n {
			if !t.wrap {
				break
			}
			i = 0
		}
		next := steps[i]
		// The stepwise prediction-hit condition, verbatim: the previous
		// instruction predicts next, at the current IP, under the
		// current ISA. Anything else is the stepwise path's business.
		if d.pred != next || next.Addr != ip || next.ISA != c.ISA {
			break
		}
		preds++
		c.wbN = 0
		nip := next.Addr + next.Size
		c.nextIP = nip
		c.fall = nip
		c.ctlSet = false
		ops := next.Ops
		for j := range ops {
			c.opIdx = j
			op := &ops[j]
			op.sem(c, op)
		}
		zr := c.zeroReg
		for j := 0; j < c.wbN; j++ {
			if r := c.wbReg[j]; r != zr {
				c.Regs[r] = c.wbVal[j]
			}
		}
		ip = c.nextIP
		if c.pendingISA >= 0 || c.runErr != nil || c.halted {
			// Rare exits: flush the locals, then replicate the stepwise
			// tail in its exact order — pending ISA switch first (its
			// trace event reads the pre-increment instruction count),
			// then the error check, then the counters.
			c.IP = ip
			c.last = next
			c.Stats.PredHits += preds
			c.Stats.Operations += opsDone
			preds, opsDone = 0, 0
			if c.pendingISA >= 0 {
				c.applyPendingISA()
			}
			if c.runErr != nil {
				err := c.runErr
				c.runErr = nil
				return fmt.Errorf("%v at %s%s", err, c.Prog.Location(next.Addr), c.historySuffix())
			}
			c.Stats.Instructions++
			c.Stats.Operations += uint64(len(ops))
			budget--
			if c.halted {
				return nil
			}
			if c.last == nil {
				return nil // run-time ISA switch: prediction does not cross it
			}
			d = next
			i++
			continue
		}
		c.Stats.Instructions++
		opsDone += uint64(len(ops))
		budget--
		d = next
		i++
	}
	c.IP = ip
	c.last = d
	c.Stats.PredHits += preds
	c.Stats.Operations += opsDone
	return nil
}

// runSuperblockObserved is the trace loop for runs with attached
// observers (cycle models, the profiler): every instruction goes
// through the full execute path so the ExecRecord stays exact, and the
// observers see the same per-instruction callbacks as the stepwise
// loop.
func (c *CPU) runSuperblockObserved(t *superblock, budget uint64) error {
	d := c.last
	steps := t.steps
	i := 1
	for budget > 0 {
		if i == len(steps) {
			if !t.wrap {
				return nil
			}
			i = 0
		}
		next := steps[i]
		if d.pred != next || next.Addr != c.IP || next.ISA != c.ISA {
			return nil
		}
		c.Stats.PredHits++
		c.last = next
		c.execute(next)
		if c.runErr != nil {
			err := c.runErr
			c.runErr = nil
			return fmt.Errorf("%v at %s%s", err, c.Prog.Location(next.Addr), c.historySuffix())
		}
		c.Stats.Instructions++
		c.Stats.Operations += uint64(len(next.Ops))
		for _, o := range c.observers {
			o.Instruction(&c.rec)
		}
		budget--
		if c.halted {
			return nil
		}
		if c.last == nil {
			return nil // run-time ISA switch: prediction does not cross it
		}
		d = next
		i++
	}
	return nil
}
