package sim

import (
	"errors"
	"fmt"

	"repro/internal/decode"
	"repro/internal/isa"
)

// MaxIssue is the widest instruction format supported by the execution
// buffers.
const MaxIssue = 16

// DecodedOp is the decode structure of one operation (Sec. V of the
// paper: "The detected operation is decoded by extracting all fields of
// the operation. These are stored into a decode structure to provide
// fast access to the information during execution.").
type DecodedOp struct {
	Op           *isa.Operation
	Slot         uint8
	Rd, Rs1, Rs2 uint8
	Imm          int32
	Addr         uint32 // address of the operation word
	sem          semFunc
}

// Decoded is a fully decoded instruction: the non-NOP operations of all
// slots, plus the instruction-prediction fields (Sec. V-A: "we store
// within each decode structure the IP and decode structure pointer of
// the following instruction").
type Decoded struct {
	Addr uint32
	ISA  *isa.ISA
	Size uint32
	Ops  []DecodedOp

	// Instruction prediction: the decode structure of the instruction
	// that followed this one last time (nil until set). The prediction
	// is valid when pred.Addr matches the current IP and pred.ISA the
	// active ISA.
	pred *Decoded

	// sb is the superblock trace headed by this instruction, built
	// lazily from the prediction links (superblock.go). Valid only
	// while sb.gen matches the CPU's trace generation.
	sb *superblock
}

// cacheKey builds the decode-cache key: the instruction address tagged
// with the active ISA (mixed-ISA executables may decode the same
// address range under different ISAs).
func cacheKey(addr uint32, isaID int) uint64 {
	return uint64(addr) | uint64(isaID)<<32
}

// DecodeInstruction decodes the instruction at addr under ISA a using
// the shared decode core (internal/decode), then resolves each
// operation's simulation function. It is the pure entry point the CPU's
// fetch path uses; the decoder-agreement fuzz test compares it against
// the analyzer's static decoder.
func DecodeInstruction(a *isa.ISA, addr uint32, load func(uint32) uint32) (*Decoded, error) {
	di, err := decode.Instr(a, addr, load)
	if err != nil {
		return nil, err
	}
	d := &Decoded{Addr: addr, ISA: a, Size: di.Size}
	for i := range di.Ops {
		o := &di.Ops[i]
		sem, ok := semRegistry[o.Op.SemKey]
		if !ok {
			return nil, fmt.Errorf("sim: operation %s has unknown simulation function %q", o.Op.Name, o.Op.SemKey)
		}
		d.Ops = append(d.Ops, DecodedOp{
			Op: o.Op, Slot: o.Slot,
			Rd: o.Operands.Rd, Rs1: o.Operands.Rs1, Rs2: o.Operands.Rs2, Imm: o.Operands.Imm,
			Addr: o.Addr, sem: sem,
		})
	}
	return d, nil
}

// decodeInstruction wraps DecodeInstruction with the CPU's memory and
// the program's source-location rendering for decode failures.
func (c *CPU) decodeInstruction(addr uint32, a *isa.ISA) (*Decoded, error) {
	d, err := DecodeInstruction(a, addr, c.Mem.LoadWord)
	if err != nil {
		var de *decode.Error
		if errors.As(err, &de) {
			return nil, fmt.Errorf("sim: illegal operation word %#08x at %s (ISA %s, slot %d)",
				de.Word, c.Prog.Location(de.Addr), a.Name, de.Slot)
		}
		return nil, err
	}
	return d, nil
}

// fetch returns the decode structure for the current IP, using
// instruction prediction and the decode cache as configured.
func (c *CPU) fetch() (*Decoded, error) {
	ip := c.IP
	a := c.ISA

	// Instruction prediction (Sec. V-A): compare the current IP to the
	// predicted IP of the previous instruction.
	if c.opts.Prediction && c.last != nil {
		if p := c.last.pred; p != nil && p.Addr == ip && p.ISA == a {
			c.Stats.PredHits++
			c.last = p
			return p, nil
		}
	}

	var d *Decoded
	if c.opts.DecodeCache {
		c.Stats.CacheLookups++
		key := cacheKey(ip, a.ID)
		if hit, ok := c.cache[key]; ok {
			c.Stats.CacheHits++
			d = hit
		} else {
			dec, err := c.decodeInstruction(ip, a)
			if err != nil {
				return nil, err
			}
			c.Stats.Detected++
			// A bounded cache flushes wholesale when full — the only
			// eviction policy that stays deterministic and keeps the hit
			// path free of bookkeeping. Already-predicted decode
			// structures stay referenced through pred links and remain
			// valid (decoding is a pure function of the immutable text).
			if limit := c.opts.DecodeCacheCap; limit > 0 && len(c.cache) >= limit {
				c.Stats.CacheEvictions += uint64(len(c.cache))
				clear(c.cache)
				// Superblock traces may chain evicted entries; the
				// entries stay semantically valid through pred links,
				// but the traces are dropped with the cache so both
				// caches flush under one policy.
				c.invalidateSuperblocks()
			}
			c.cache[key] = dec
			d = dec
		}
	} else {
		dec, err := c.decodeInstruction(ip, a)
		if err != nil {
			return nil, err
		}
		c.Stats.Detected++
		d = dec
	}

	// Update the prediction of the previous instruction.
	if c.opts.Prediction && c.last != nil {
		c.last.pred = d
	}
	c.last = d
	return d, nil
}
