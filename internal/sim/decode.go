package sim

import (
	"fmt"

	"repro/internal/isa"
)

// MaxIssue is the widest instruction format supported by the execution
// buffers.
const MaxIssue = 16

// DecodedOp is the decode structure of one operation (Sec. V of the
// paper: "The detected operation is decoded by extracting all fields of
// the operation. These are stored into a decode structure to provide
// fast access to the information during execution.").
type DecodedOp struct {
	Op           *isa.Operation
	Slot         uint8
	Rd, Rs1, Rs2 uint8
	Imm          int32
	Addr         uint32 // address of the operation word
	sem          semFunc
}

// Decoded is a fully decoded instruction: the non-NOP operations of all
// slots, plus the instruction-prediction fields (Sec. V-A: "we store
// within each decode structure the IP and decode structure pointer of
// the following instruction").
type Decoded struct {
	Addr uint32
	ISA  *isa.ISA
	Size uint32
	Ops  []DecodedOp

	// Instruction prediction: the decode structure of the instruction
	// that followed this one last time (nil until set). The prediction
	// is valid when pred.Addr matches the current IP and pred.ISA the
	// active ISA.
	pred *Decoded
}

// cacheKey builds the decode-cache key: the instruction address tagged
// with the active ISA (mixed-ISA executables may decode the same
// address range under different ISAs).
func cacheKey(addr uint32, isaID int) uint64 {
	return uint64(addr) | uint64(isaID)<<32
}

// detect scans the active ISA's operation table for the operation
// encoded by word, checking every constant field of every candidate —
// the paper's detection loop and the deliberate slow path that the
// decode cache exists to amortize.
func detect(a *isa.ISA, word uint32) *isa.Operation {
	for _, op := range a.Ops {
		match := true
		for _, f := range op.Format.Fields {
			if f.Kind != isa.FieldConst {
				continue
			}
			if f.Extract(word) != op.Consts[f.Name] {
				match = false
				break
			}
		}
		if match {
			return op
		}
	}
	return nil
}

// decodeInstruction detects and decodes the instruction at addr under
// ISA a. NOP slots are dropped from the operation list.
func (c *CPU) decodeInstruction(addr uint32, a *isa.ISA) (*Decoded, error) {
	d := &Decoded{Addr: addr, ISA: a, Size: a.InstrBytes()}
	for slot := 0; slot < a.Issue; slot++ {
		opAddr := addr + uint32(slot)*isa.OpWordBytes
		word := c.Mem.LoadWord(opAddr)
		op := detect(a, word)
		if op == nil {
			return nil, fmt.Errorf("sim: illegal operation word %#08x at %s (ISA %s, slot %d)",
				word, c.Prog.Location(opAddr), a.Name, slot)
		}
		if op.Class == isa.ClassNop {
			continue
		}
		sem, ok := semRegistry[op.SemKey]
		if !ok {
			return nil, fmt.Errorf("sim: operation %s has unknown simulation function %q", op.Name, op.SemKey)
		}
		o := op.DecodeOperands(word)
		d.Ops = append(d.Ops, DecodedOp{
			Op: op, Slot: uint8(slot),
			Rd: o.Rd, Rs1: o.Rs1, Rs2: o.Rs2, Imm: o.Imm,
			Addr: opAddr, sem: sem,
		})
	}
	return d, nil
}

// fetch returns the decode structure for the current IP, using
// instruction prediction and the decode cache as configured.
func (c *CPU) fetch() (*Decoded, error) {
	ip := c.IP
	a := c.ISA

	// Instruction prediction (Sec. V-A): compare the current IP to the
	// predicted IP of the previous instruction.
	if c.opts.Prediction && c.last != nil {
		if p := c.last.pred; p != nil && p.Addr == ip && p.ISA == a {
			c.Stats.PredHits++
			c.last = p
			return p, nil
		}
	}

	var d *Decoded
	if c.opts.DecodeCache {
		c.Stats.CacheLookups++
		key := cacheKey(ip, a.ID)
		if hit, ok := c.cache[key]; ok {
			c.Stats.CacheHits++
			d = hit
		} else {
			dec, err := c.decodeInstruction(ip, a)
			if err != nil {
				return nil, err
			}
			c.Stats.Detected++
			c.cache[key] = dec
			d = dec
		}
	} else {
		dec, err := c.decodeInstruction(ip, a)
		if err != nil {
			return nil, err
		}
		c.Stats.Detected++
		d = dec
	}

	// Update the prediction of the previous instruction.
	if c.opts.Prediction && c.last != nil {
		c.last.pred = d
	}
	c.last = d
	return d, nil
}
