package sim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Sentinel errors. Run errors wrap these so callers can classify the
// outcome with errors.Is instead of matching message text.
var (
	// ErrFuelExhausted reports that Options.MaxInstructions was reached
	// before the program halted.
	ErrFuelExhausted = errors.New("instruction fuel exhausted")
	// ErrCanceled reports that the run was aborted by its context
	// (cancellation or deadline). The wrapped chain also contains the
	// context's own error, so errors.Is(err, context.DeadlineExceeded)
	// distinguishes timeouts from explicit cancellation.
	ErrCanceled = errors.New("simulation canceled")
)

// CtxCheckInterval is the cancellation granularity of RunContext: the
// context is polled every this many instructions, keeping the hot
// interpretation loop free of per-instruction channel operations. A
// canceled context therefore stops a runaway program within at most
// this many instructions.
const CtxCheckInterval = 8192

// DefaultProgressInterval is the instruction distance between periodic
// progress events when Options.EventSink is set and no interval was
// chosen. Aligned with CtxCheckInterval so both checks ride the same
// outer-loop iteration.
const DefaultProgressInterval = 8 * CtxCheckInterval

// EventSink consumes a running simulation's live event stream: per-op
// trace events (only when Options.StreamOps is also set), run-time ISA
// switches, periodic progress snapshots and the terminal completion
// event. trace.Streamer is the canonical implementation; sinks must
// not block, or they stall the interpretation loop.
type EventSink interface {
	TraceEvent(e *trace.Event)
	ISASwitch(sw trace.SwitchInfo)
	Progress(p trace.Progress)
	Done(d trace.Done)
}

// Options configure a CPU.
type Options struct {
	// DecodeCache enables the detection/decode cache (Sec. V-A).
	DecodeCache bool
	// DecodeCacheCap bounds the decode cache to this many entries; a
	// miss on a full cache flushes it (counted in Stats.CacheEvictions).
	// 0 keeps the paper's unbounded cache.
	DecodeCacheCap int
	// Prediction enables instruction prediction on top of the cache.
	Prediction bool
	// Superblocks chains predicted decode structures into straight-line
	// traces executed without per-instruction fetch/dispatch overhead
	// (superblock.go). Requires DecodeCache and Prediction; runs with
	// per-op capture (trace files, live op streaming) or an IP history
	// ring fall back to the stepwise loop. Architectural results,
	// cycles and every counter are bit-identical either way.
	Superblocks bool
	// MaxInstructions aborts the run after this many instructions
	// (0 = no limit).
	MaxInstructions uint64
	// Stdout/Stdin back the emulated C library I/O.
	Stdout io.Writer
	Stdin  io.Reader
	// HistorySize enables the instruction pointer history ring of the
	// given depth (0 disables it). Sec. V: "an instruction pointer
	// history" for error detection.
	HistorySize int
	// OnISASwitch, when set, is consulted before every run-time ISA
	// switch (SWITCHTARGET). Returning an error aborts the simulation —
	// the fabric resource model uses this to refuse reconfigurations
	// the EDPE array cannot satisfy.
	OnISASwitch func(from, to *isa.ISA) error
	// EventSink, when set, receives the live event stream: ISA
	// switches, periodic progress snapshots (every ProgressInterval
	// instructions) and the run's terminal event.
	EventSink EventSink
	// StreamOps additionally feeds every executed operation to the
	// sink as a trace event — the live form of the trace file. It is
	// the expensive half of streaming and therefore a separate opt-in.
	StreamOps bool
	// ProgressInterval is the instruction distance between progress
	// events; 0 selects DefaultProgressInterval.
	ProgressInterval uint64
}

// DefaultOptions enables cache, prediction (the configuration the
// paper reports as 29.5 MIPS) and superblock trace execution on top.
func DefaultOptions() Options {
	return Options{DecodeCache: true, Prediction: true, Superblocks: true}
}

// Stats are the simulator's performance counters; the decode-cache and
// prediction counters reproduce the percentages of Sec. VII-A.
type Stats struct {
	Instructions   uint64 // executed instructions
	Operations     uint64 // executed non-NOP operations
	Detected       uint64 // instructions that went through detect&decode
	CacheLookups   uint64 // decode-cache lookups performed
	CacheHits      uint64
	CacheEvictions uint64 // entries dropped by decode-cache flushes (bounded cache only)
	PredHits       uint64 // lookups avoided by instruction prediction
	Simcalls       uint64
	ISASwitches    uint64
}

// MemAccess describes one data-memory access of an executed operation.
type MemAccess struct {
	Valid bool
	Write bool
	Addr  uint32
}

// ExecRecord is the per-instruction event handed to observers (cycle
// models, the RTL reference, profilers). The Mem array is indexed like
// D.Ops.
type ExecRecord struct {
	D      *Decoded
	Mem    [MaxIssue]MemAccess
	Taken  bool   // a control transfer changed the IP
	NextIP uint32 // IP after this instruction
}

// Observer consumes the dynamic instruction stream.
type Observer interface {
	Instruction(rec *ExecRecord)
}

// CycleSource lets the trace writer timestamp events with the cycle
// count of an attached cycle model.
type CycleSource interface {
	Cycles() uint64
}

// ExitStatus describes how a run ended.
type ExitStatus struct {
	Halted       bool
	ExitCode     int32
	Instructions uint64
}

// CPU is one simulated KAHRISMA processor instance.
type CPU struct {
	Model *isa.Model
	Prog  *Program
	Mem   *Memory
	Regs  [32]uint32
	IP    uint32
	ISA   *isa.ISA

	Stats Stats

	opts       Options
	cache      map[uint64]*Decoded
	last       *Decoded
	sbGen      uint64 // superblock generation; bumping invalidates all traces
	sbBuilt    int    // traces built this generation (flush-all cap)
	zeroReg    uint8  // hard-wired zero register, 0xFF when absent
	halted     bool
	exitCode   int32
	pendingISA int // ISA id to switch to after this instruction, -1 none
	runErr     error

	observers []Observer
	traceW    *trace.Writer
	cycleSrc  CycleSource

	// Live event streaming (Options.EventSink).
	sink      EventSink
	streamOps bool
	progEvery uint64
	nextProg  uint64

	// Per-instruction execution state.
	rec     ExecRecord
	wbReg   [MaxIssue]uint8
	wbVal   [MaxIssue]uint32
	wbN     int
	nextIP  uint32
	fall    uint32 // static fall-through of the executing instruction
	ctlSet  bool
	opIdx   int
	tracing bool
	capture bool // capture per-op register inputs (tracing or streamOps)
	traceIn [MaxIssue][]trace.RegVal

	// C library emulation state.
	heapPtr  uint32
	rngState uint64
	history  []uint32
	histPos  int
}

// New builds a CPU for a loaded program.
func New(m *isa.Model, p *Program, opts Options) (*CPU, error) {
	a := m.ISAByID(p.EntryISA)
	if a == nil {
		return nil, fmt.Errorf("sim: executable requires unknown ISA id %d", p.EntryISA)
	}
	c := &CPU{
		Mem:   NewMemory(),
		cache: make(map[uint64]*Decoded, 4096),
	}
	c.init(m, p, a, opts)
	return c, nil
}

// Reset reinitializes c for a fresh run of p on m under opts, reusing
// the previous run's allocations: the sparse memory keeps its pages
// (zeroed in place) and the decode cache keeps its buckets (entries
// cleared). A reset CPU is indistinguishable from one built by New —
// same stats, same output, same cycles — which is what lets the batch
// pool recycle per-job state without breaking bit-identical
// determinism. Cached decode entries are NOT carried across runs: they
// would make cache/prediction counters depend on scheduling.
func (c *CPU) Reset(m *isa.Model, p *Program, opts Options) error {
	a := m.ISAByID(p.EntryISA)
	if a == nil {
		return fmt.Errorf("sim: executable requires unknown ISA id %d", p.EntryISA)
	}
	c.Mem.Reset()
	clear(c.cache)
	c.init(m, p, a, opts)
	return nil
}

// init sets every run-dependent field to its construction value. New
// and Reset both funnel through here so the reset list cannot drift
// from construction; only the long-lived allocations (Mem, cache) are
// owned by the callers.
func (c *CPU) init(m *isa.Model, p *Program, a *isa.ISA, opts Options) {
	c.Model = m
	c.Prog = p
	c.Regs = [32]uint32{}
	c.IP = p.Entry
	c.ISA = a
	c.Stats = Stats{}
	c.opts = opts
	c.last = nil
	c.sbGen = 0
	c.sbBuilt = 0
	c.zeroReg = 0xFF
	if z := m.Regs.ZeroReg; z >= 0 && z < 32 {
		c.zeroReg = uint8(z)
	}
	c.halted = false
	c.exitCode = 0
	c.pendingISA = -1
	c.runErr = nil
	c.observers = c.observers[:0]
	c.traceW = nil
	c.cycleSrc = nil
	c.sink = nil
	c.streamOps = false
	c.progEvery = 0
	c.nextProg = 0
	c.rec = ExecRecord{}
	c.wbN = 0
	c.nextIP = 0
	c.fall = 0
	c.ctlSet = false
	c.opIdx = 0
	c.tracing = false
	c.capture = false
	c.traceIn = [MaxIssue][]trace.RegVal{}
	c.heapPtr = p.HeapStart
	c.rngState = 0x853C49E6748FEA9B
	c.history = nil
	c.histPos = 0
	if opts.HistorySize > 0 {
		c.history = make([]uint32, opts.HistorySize)
	}
	if opts.EventSink != nil {
		c.sink = opts.EventSink
		c.streamOps = opts.StreamOps
		c.capture = c.streamOps
		c.progEvery = opts.ProgressInterval
		if c.progEvery == 0 {
			c.progEvery = DefaultProgressInterval
		}
		c.nextProg = c.progEvery
	}
	p.LoadInto(c.Mem)
}

// Attach registers an observer for the dynamic instruction stream.
// Observers implementing CycleSource also become the trace timestamp
// source.
func (c *CPU) Attach(o Observer) {
	c.observers = append(c.observers, o)
	if cs, ok := o.(CycleSource); ok && c.cycleSrc == nil {
		c.cycleSrc = cs
	}
}

// SetTrace enables trace file generation.
func (c *CPU) SetTrace(w *trace.Writer) {
	c.traceW = w
	c.tracing = w != nil
	c.capture = c.tracing || c.streamOps
}

// Halted reports whether the program has terminated.
func (c *CPU) Halted() bool { return c.halted }

// ExitCode returns the code passed to exit()/HALT.
func (c *CPU) ExitCode() int32 { return c.exitCode }

// Reg returns register r (reads of the zero register return 0 by
// construction: writes to it are suppressed).
func (c *CPU) Reg(r uint8) uint32 { return c.Regs[r] }

// SetReg writes register r, honouring the hard-wired zero register.
func (c *CPU) SetReg(r uint8, v uint32) {
	if int(r) == c.Model.Regs.ZeroReg {
		return
	}
	c.Regs[r] = v
}

// History returns the most recent instruction addresses, newest last
// (empty unless Options.HistorySize > 0).
func (c *CPU) History() []uint32 {
	if len(c.history) == 0 {
		return nil
	}
	n := len(c.history)
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		a := c.history[(c.histPos+i)%n]
		if a != 0 {
			out = append(out, a)
		}
	}
	return out
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.halted {
		return fmt.Errorf("sim: step after halt")
	}
	if c.IP < c.Prog.TextStart || c.IP >= c.Prog.TextEnd {
		return fmt.Errorf("sim: IP %s left the text section%s", c.Prog.Location(c.IP), c.historySuffix())
	}
	d, err := c.fetch()
	if err != nil {
		return err
	}
	if len(c.history) > 0 {
		c.history[c.histPos] = c.IP
		c.histPos = (c.histPos + 1) % len(c.history)
	}
	c.execute(d)
	if c.runErr != nil {
		err := c.runErr
		c.runErr = nil
		return fmt.Errorf("%v at %s%s", err, c.Prog.Location(d.Addr), c.historySuffix())
	}
	c.Stats.Instructions++
	c.Stats.Operations += uint64(len(d.Ops))
	for _, o := range c.observers {
		o.Instruction(&c.rec)
	}
	if c.tracing {
		c.emitTrace(d)
	}
	if c.streamOps {
		c.emitStream(d)
	}
	return nil
}

func (c *CPU) historySuffix() string {
	h := c.History()
	if len(h) == 0 {
		return ""
	}
	s := "\n  instruction pointer history (oldest first):"
	for _, a := range h {
		s += fmt.Sprintf("\n    %s", c.Prog.Location(a))
	}
	return s
}

// execute runs all operations of d with read-before-write register
// semantics: every operation computes its results into the write-back
// buffer first; the register file is updated only after all operations
// finished (the paper's recursive scheme computes results into stack
// locals before writing the register file — Sec. V-B — which this
// two-phase buffer reproduces exactly).
func (c *CPU) execute(d *Decoded) {
	c.wbN = 0
	c.nextIP = d.Addr + d.Size
	c.fall = c.nextIP
	c.ctlSet = false
	c.rec.D = d
	c.rec.Taken = false
	for i := range d.Ops {
		c.opIdx = i
		c.rec.Mem[i] = MemAccess{}
		op := &d.Ops[i]
		if c.capture {
			c.traceIn[i] = c.captureInputs(op)
		}
		op.sem(c, op)
	}
	// Write-back phase.
	for i := 0; i < c.wbN; i++ {
		c.SetReg(c.wbReg[i], c.wbVal[i])
	}
	c.IP = c.nextIP
	c.rec.NextIP = c.nextIP
	if c.pendingISA >= 0 {
		c.applyPendingISA()
	}
}

// applyPendingISA performs the ISA switch a SWITCHTARGET scheduled for
// the end of the current instruction — shared by the stepwise execute
// path and the superblock fast path.
func (c *CPU) applyPendingISA() {
	a := c.Model.ISAByID(c.pendingISA)
	switch {
	case a == nil:
		c.fail(fmt.Errorf("sim: SWITCHTARGET to unknown ISA id %d", c.pendingISA))
	case a != c.ISA:
		if cb := c.opts.OnISASwitch; cb != nil {
			if err := cb(c.ISA, a); err != nil {
				c.fail(err)
				c.pendingISA = -1
				return
			}
		}
		if c.sink != nil {
			c.sink.ISASwitch(trace.SwitchInfo{
				From: c.ISA.Name, To: a.Name,
				Instructions: c.Stats.Instructions,
			})
		}
		c.ISA = a
		c.Stats.ISASwitches++
		c.last = nil // predictions do not cross an ISA switch
	}
	c.pendingISA = -1
}

// pushWB appends a register write to the write-back buffer.
func (c *CPU) pushWB(reg uint8, val uint32) {
	c.wbReg[c.wbN] = reg
	c.wbVal[c.wbN] = val
	c.wbN++
}

// setNextIP is called by control-transfer semantics.
func (c *CPU) setNextIP(target uint32) {
	if c.ctlSet {
		c.fail(fmt.Errorf("sim: two control transfers in one instruction"))
		return
	}
	c.ctlSet = true
	c.rec.Taken = true
	c.nextIP = target
}

// noteMem records a data memory access for observers and cycle models.
// Stores into the text section additionally invalidate the superblock
// traces: decode structures stay immutable (the paper's cache never
// re-decodes — see fetch), but the chaining over a self-modified region
// is conservatively dropped and rebuilt from the prediction graph.
func (c *CPU) noteMem(addr uint32, write bool) {
	c.rec.Mem[c.opIdx] = MemAccess{Valid: true, Write: write, Addr: addr}
	if write && addr >= c.Prog.TextStart && addr < c.Prog.TextEnd {
		c.invalidateSuperblocks()
	}
}

func (c *CPU) fail(err error) {
	if c.runErr == nil {
		c.runErr = err
	}
}

// Run executes until halt, error, or the instruction limit.
func (c *CPU) Run() (ExitStatus, error) {
	return c.RunContext(context.Background())
}

// RunContext executes until halt, error, the instruction limit, or
// cancellation of ctx. The context is polled every CtxCheckInterval
// instructions so the hot loop stays select-free; an abort returns an
// error wrapping ErrCanceled and ctx.Err().
//
// When Options.EventSink is set, the run also emits periodic progress
// events and — on any exit path — a final progress snapshot plus the
// terminal done event, so live subscribers always see the stream end.
func (c *CPU) RunContext(ctx context.Context) (ExitStatus, error) {
	st, err := c.runLoop(ctx)
	if c.sink != nil {
		c.emitProgress()
		d := trace.Done{ExitCode: st.ExitCode, Instructions: st.Instructions}
		if err != nil {
			d.Error = err.Error()
		}
		c.sink.Done(d)
	}
	return st, err
}

func (c *CPU) runLoop(ctx context.Context) (ExitStatus, error) {
	done := ctx.Done()
	next := c.Stats.Instructions + CtxCheckInterval
	useSB := c.sbActive()
	for !c.halted {
		if c.opts.MaxInstructions > 0 && c.Stats.Instructions >= c.opts.MaxInstructions {
			return c.status(), fmt.Errorf("sim: instruction limit (%d) reached at %s: %w%s",
				c.opts.MaxInstructions, c.Prog.Location(c.IP), ErrFuelExhausted, c.historySuffix())
		}
		if done != nil && c.Stats.Instructions >= next {
			select {
			case <-done:
				return c.status(), fmt.Errorf("sim: %w after %d instructions at %s: %w",
					ErrCanceled, c.Stats.Instructions, c.Prog.Location(c.IP), ctx.Err())
			default:
			}
			next = c.Stats.Instructions + CtxCheckInterval
		}
		if c.sink != nil && c.Stats.Instructions >= c.nextProg {
			c.emitProgress()
			c.nextProg = c.Stats.Instructions + c.progEvery
		}
		if useSB {
			if err := c.stepSuperblock(c.sbBudget(done != nil, next)); err != nil {
				return c.status(), err
			}
			continue
		}
		if err := c.Step(); err != nil {
			return c.status(), err
		}
	}
	if c.traceW != nil {
		if err := c.traceW.Flush(); err != nil {
			return c.status(), err
		}
	}
	return c.status(), nil
}

// emitProgress publishes one progress snapshot to the sink.
func (c *CPU) emitProgress() {
	p := trace.Progress{
		Instructions: c.Stats.Instructions,
		Operations:   c.Stats.Operations,
		ISA:          c.ISA.Name,
	}
	if c.cycleSrc != nil {
		p.Cycles = c.cycleSrc.Cycles()
	}
	if m := c.opts.MaxInstructions; m > c.Stats.Instructions {
		p.FuelRemaining = m - c.Stats.Instructions
	}
	c.sink.Progress(p)
}

func (c *CPU) status() ExitStatus {
	return ExitStatus{Halted: c.halted, ExitCode: c.exitCode, Instructions: c.Stats.Instructions}
}

// ---------------------------------------------------------------------
// Tracing

func (c *CPU) captureInputs(op *DecodedOp) []trace.RegVal {
	var in []trace.RegVal
	if op.Op.Src1Field != nil {
		in = append(in, trace.RegVal{Reg: op.Rs1, Val: c.Regs[op.Rs1]})
	}
	if op.Op.Src2Field != nil {
		in = append(in, trace.RegVal{Reg: op.Rs2, Val: c.Regs[op.Rs2]})
	}
	return in
}

// traceCycle timestamps trace events: the attached cycle model's count
// when one is present, the instruction count otherwise.
func (c *CPU) traceCycle() uint64 {
	if c.cycleSrc != nil {
		return c.cycleSrc.Cycles()
	}
	return c.Stats.Instructions
}

// opEvent assembles the trace event of operation i of d.
func (c *CPU) opEvent(d *Decoded, i int, cycle uint64) trace.Event {
	op := &d.Ops[i]
	e := trace.Event{
		Cycle: cycle,
		Addr:  op.Addr,
		Slot:  op.Slot,
		Op:    op.Op.Name,
		In:    c.traceIn[i],
		Imm:   op.Imm,
	}
	if op.Op.HasDst() {
		e.Out = []trace.RegVal{{Reg: op.Rd, Val: c.Regs[op.Rd]}}
	}
	return e
}

func (c *CPU) emitTrace(d *Decoded) {
	cycle := c.traceCycle()
	for i := range d.Ops {
		e := c.opEvent(d, i, cycle)
		c.traceW.Write(&e)
	}
}

// emitStream feeds the executed operations to the event sink — the
// live counterpart of emitTrace.
func (c *CPU) emitStream(d *Decoded) {
	cycle := c.traceCycle()
	for i := range d.Ops {
		e := c.opEvent(d, i, cycle)
		c.sink.TraceEvent(&e)
	}
}
