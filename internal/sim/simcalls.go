package sim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/simcall"
)

// doSimcall executes one emulated C standard library function natively
// (Sec. V-E of the paper): it reads the input parameters from the
// registers and stack according to the calling convention, executes the
// corresponding function against the simulated state, and writes the
// result back to the registers.
//
// Calling convention: arguments 0..3 in a0..a3 (r4..r7); further
// arguments at sp+0, sp+4, ...; result in a0.
func (c *CPU) doSimcall(id uint32) {
	c.Stats.Simcalls++
	arg := func(i int) uint32 {
		if i < 4 {
			return c.Regs[4+i]
		}
		return c.Mem.LoadWord(c.Regs[2] + uint32(i-4)*4)
	}
	ret := func(v uint32) { c.pushWB(4, v) }

	switch int(id) {
	case simcall.Exit:
		c.halted = true
		c.exitCode = int32(arg(0))
	case simcall.Putchar:
		c.writeOut([]byte{byte(arg(0))})
		ret(arg(0))
	case simcall.Puts:
		s, err := c.Mem.ReadCString(arg(0), 1<<20)
		if err != nil {
			c.fail(err)
			return
		}
		c.writeOut([]byte(s + "\n"))
		ret(0)
	case simcall.Printf:
		n, err := c.printf(arg)
		if err != nil {
			c.fail(err)
			return
		}
		ret(uint32(n))
	case simcall.Malloc:
		n := arg(0)
		c.heapPtr = (c.heapPtr + 7) &^ 7
		p := c.heapPtr
		c.heapPtr += n
		if c.heapPtr >= c.Prog.StackTop-0x10000 {
			c.fail(fmt.Errorf("sim: heap exhausted (malloc(%d) at %#x)", n, p))
			return
		}
		ret(p)
	case simcall.Free:
		// The bump allocator never reuses memory.
	case simcall.Memcpy:
		dst, src, n := arg(0), arg(1), arg(2)
		for i := uint32(0); i < n; i++ {
			c.Mem.StoreByte(dst+i, c.Mem.LoadByte(src+i))
		}
		ret(dst)
	case simcall.Memset:
		dst, v, n := arg(0), byte(arg(1)), arg(2)
		for i := uint32(0); i < n; i++ {
			c.Mem.StoreByte(dst+i, v)
		}
		ret(dst)
	case simcall.Rand:
		c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
		ret(uint32(c.rngState>>33) & 0x7FFFFFFF)
	case simcall.Srand:
		c.rngState = uint64(arg(0))<<32 | 0x9E3779B9
	case simcall.Clock:
		ret(uint32(c.Stats.Instructions))
	case simcall.Abort:
		c.halted = true
		c.exitCode = 134
	case simcall.Strlen:
		s, err := c.Mem.ReadCString(arg(0), 1<<20)
		if err != nil {
			c.fail(err)
			return
		}
		ret(uint32(len(s)))
	case simcall.Strcmp:
		a, err := c.Mem.ReadCString(arg(0), 1<<20)
		if err != nil {
			c.fail(err)
			return
		}
		b, err := c.Mem.ReadCString(arg(1), 1<<20)
		if err != nil {
			c.fail(err)
			return
		}
		ret(uint32(strings.Compare(a, b)))
	case simcall.Getchar:
		var b [1]byte
		if c.opts.Stdin != nil {
			if n, _ := io.ReadFull(c.opts.Stdin, b[:]); n == 1 {
				ret(uint32(b[0]))
				return
			}
		}
		ret(^uint32(0)) // EOF
	default:
		c.fail(fmt.Errorf("sim: unknown simcall %d", id))
	}
}

func (c *CPU) writeOut(b []byte) {
	if c.opts.Stdout == nil {
		return
	}
	if _, err := c.opts.Stdout.Write(b); err != nil {
		c.fail(fmt.Errorf("sim: stdout: %v", err))
	}
}

// printf implements a useful printf subset: %d %u %x %c %s %% with
// optional width and zero padding (e.g. %08x, %5d).
func (c *CPU) printf(arg func(int) uint32) (int, error) {
	format, err := c.Mem.ReadCString(arg(0), 1<<20)
	if err != nil {
		return 0, err
	}
	var out strings.Builder
	argi := 1
	next := func() uint32 {
		v := arg(argi)
		argi++
		return v
	}
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			out.WriteByte(ch)
			continue
		}
		i++
		if i >= len(format) {
			return 0, fmt.Errorf("sim: printf: trailing %%")
		}
		// Flags and width.
		pad := byte(' ')
		width := 0
		if format[i] == '0' {
			pad = '0'
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			width = width*10 + int(format[i]-'0')
			i++
		}
		if i >= len(format) {
			return 0, fmt.Errorf("sim: printf: truncated conversion")
		}
		var piece string
		switch format[i] {
		case 'd':
			piece = fmt.Sprintf("%d", int32(next()))
		case 'u':
			piece = fmt.Sprintf("%d", next())
		case 'x':
			piece = fmt.Sprintf("%x", next())
		case 'c':
			piece = string(rune(next() & 0xFF))
		case 's':
			s, err := c.Mem.ReadCString(next(), 1<<20)
			if err != nil {
				return 0, err
			}
			piece = s
		case '%':
			piece = "%"
		default:
			return 0, fmt.Errorf("sim: printf: unsupported conversion %%%c", format[i])
		}
		for len(piece) < width {
			piece = string(pad) + piece
		}
		out.WriteString(piece)
	}
	c.writeOut([]byte(out.String()))
	return out.Len(), nil
}
