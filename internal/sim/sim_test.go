package sim_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ktest"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runSrc builds and runs a RISC program, returning CPU and exit status.
func runSrc(t *testing.T, src string) (*sim.CPU, sim.ExitStatus) {
	t.Helper()
	return ktest.Run(t, ktest.BuildProgram(t, "RISC", src))
}

func TestArithmeticProgram(t *testing.T) {
	// main computes 7*6 and returns it.
	_, st := runSrc(t, `
	.global main
main:
	li a0, 7
	li a1, 6
	mul a0, a0, a1
	ret
`)
	if !st.Halted || st.ExitCode != 42 {
		t.Fatalf("status = %+v, want exit 42", st)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 = 55.
	_, st := runSrc(t, `
	.global main
main:
	li a0, 0
	li t0, 1
	li t1, 11
loop:
	add a0, a0, t0
	addi t0, t0, 1
	bne t0, t1, loop
	ret
`)
	if st.ExitCode != 55 {
		t.Fatalf("exit = %d, want 55", st.ExitCode)
	}
}

func TestMemoryOpsAndSignExtension(t *testing.T) {
	_, st := runSrc(t, `
	.global main
main:
	addi sp, sp, -16
	li t0, -2
	sb t0, 0(sp)
	lb t1, 0(sp)        # -2
	lbu t2, 0(sp)       # 254
	add a0, t1, t2      # 252
	li t3, 0x8000
	sh t3, 4(sp)
	lh t4, 4(sp)        # -32768
	lhu t5, 4(sp)       # 32768
	add a0, a0, t4
	add a0, a0, t5      # 252 + 0 = 252
	addi sp, sp, 16
	ret
`)
	if st.ExitCode != 252 {
		t.Fatalf("exit = %d, want 252", st.ExitCode)
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	_, st := runSrc(t, `
	.global main
main:
	li t0, 7
	li t1, 0
	div t2, t0, t1      # -1
	rem t3, t0, t1      # 7
	li t4, 1
	sll t4, t4, t1      # unchanged path exercise
	li t5, -2147483648
	li t6, -1
	div s0, t5, t6      # INT_MIN
	rem s1, t5, t6      # 0
	add a0, t2, t3      # -1+7 = 6
	add a0, a0, s1      # 6
	ret
`)
	if st.ExitCode != 6 {
		t.Fatalf("exit = %d, want 6", st.ExitCode)
	}
}

func TestVLIWReadBeforeWrite(t *testing.T) {
	// A swap in one instruction only works if all registers are read
	// before any result is written back (Sec. V-B).
	_, st := ktest.Run(t, ktest.BuildProgram(t, "VLIW2", `
	.isa VLIW2
	.global main
main:
	li t0, 3
	li t1, 5
	{ add t0, t1, zero ; add t1, t0, zero }
	# now t0=5, t1=3; return t0*10+t1 = 53
	li t2, 10
	mul a0, t0, t2
	add a0, a0, t1
	ret
`))
	if st.ExitCode != 53 {
		t.Fatalf("exit = %d, want 53 (read-before-write violated?)", st.ExitCode)
	}
}

func TestSwitchTargetMixedISA(t *testing.T) {
	// Start in RISC, switch to VLIW4, execute a bundle, switch back.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li a0, 1
	swt VLIW4
	.isa VLIW4
	{ addi a0, a0, 10 ; addi t0, zero, 5 }
	{ add a0, a0, t0 }
	swt RISC
	.isa RISC
	addi a0, a0, 100
	ret
`)
	c, st := ktest.Run(t, p)
	if st.ExitCode != 116 {
		t.Fatalf("exit = %d, want 116", st.ExitCode)
	}
	if c.Stats.ISASwitches != 2 {
		t.Fatalf("ISA switches = %d, want 2", c.Stats.ISASwitches)
	}
}

func TestDecodeCacheAndPredictionStats(t *testing.T) {
	src := `
	.global main
main:
	li a0, 0
	li t0, 0
	li t1, 1000
loop:
	addi t0, t0, 1
	bne t0, t1, loop
	ret
`
	p := ktest.BuildProgram(t, "RISC", src)
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 1 << 20
	c := ktest.NewCPU(t, p, opts)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats
	if s.Instructions < 2000 {
		t.Fatalf("instructions = %d", s.Instructions)
	}
	// Nearly every instruction decode is avoided by the cache...
	if s.Detected >= 20 {
		t.Errorf("detected = %d, want ~#static instructions", s.Detected)
	}
	// ...and nearly every lookup is avoided by prediction: the loop body
	// repeats identically, so lookups stay in the tens.
	if s.CacheLookups >= s.Instructions/10 {
		t.Errorf("lookups = %d of %d instructions; prediction ineffective",
			s.CacheLookups, s.Instructions)
	}
	if s.PredHits == 0 {
		t.Error("no prediction hits")
	}
}

// The decode cache and instruction prediction are pure optimizations:
// all four configurations must produce identical architectural results.
func TestCachePredictionTransparency(t *testing.T) {
	src := `
	.global main
main:
	li a0, 0
	li t0, 0
	li t1, 37
loop:
	mul t2, t0, t0
	add a0, a0, t2
	addi t0, t0, 1
	blt t0, t1, loop
	ret
`
	var want int32
	for i, cfg := range []struct{ cache, pred bool }{
		{false, false}, {true, false}, {true, true}, {false, true},
	} {
		p := ktest.BuildProgram(t, "RISC", src)
		opts := sim.Options{DecodeCache: cfg.cache, Prediction: cfg.pred, MaxInstructions: 1 << 20}
		c := ktest.NewCPU(t, p, opts)
		st, err := c.Run()
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if i == 0 {
			want = st.ExitCode
			continue
		}
		if st.ExitCode != want {
			t.Errorf("cfg %+v: exit %d != %d", cfg, st.ExitCode, want)
		}
	}
}

func TestSimcallsOutput(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, fmt
	li a1, -7
	li a2, 255
	la a3, word
	jal printf
	la a0, word
	jal puts
	li a0, 'X'
	jal putchar
	la a0, word
	jal strlen
	mv s0, a0
	la a0, word
	la a1, word2
	jal strcmp
	add a0, a0, s0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.rodata
fmt:	.asciz "d=%d x=%02x s=%s!\n"
word:	.asciz "kahrisma"
word2:	.asciz "kahrismb"
`)
	var out bytes.Buffer
	opts := sim.DefaultOptions()
	opts.Stdout = &out
	opts.MaxInstructions = 1 << 20
	c := ktest.NewCPU(t, p, opts)
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantOut := "d=-7 x=ff s=kahrisma!\nkahrisma\nX"
	if out.String() != wantOut {
		t.Errorf("output = %q, want %q", out.String(), wantOut)
	}
	// strlen("kahrisma") = 8, strcmp < 0 → -1; 8 + -1 = 7.
	if st.ExitCode != 7 {
		t.Errorf("exit = %d, want 7", st.ExitCode)
	}
	if c.Stats.Simcalls == 0 {
		t.Error("no simcalls recorded")
	}
}

func TestMallocMemcpyMemset(t *testing.T) {
	_, st := runSrc(t, `
	.global main
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	li a0, 64
	jal malloc
	mv s0, a0          # buf
	li a1, 0xAB
	li a2, 64
	jal memset         # memset(buf, 0xAB, 64)
	mv a0, s0
	li a0, 64
	jal malloc
	mv s1, a0          # buf2
	mv a1, s0
	li a2, 64
	jal memcpy         # memcpy(buf2, buf, 64)
	lbu a0, 63(s1)     # 0xAB = 171
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`)
	if st.ExitCode != 171 {
		t.Fatalf("exit = %d, want 171", st.ExitCode)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `
	.global main
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	li a0, 42
	jal srand
	jal rand
	mv s0, a0
	jal rand
	xor a0, a0, s0
	andi a0, a0, 0xff
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`
	_, st1 := runSrc(t, src)
	_, st2 := runSrc(t, src)
	if st1.ExitCode != st2.ExitCode {
		t.Fatalf("rand not deterministic: %d vs %d", st1.ExitCode, st2.ExitCode)
	}
}

func TestTraceGenerationAndCompare(t *testing.T) {
	src := `
	.global main
main:
	li t0, 2
	li t1, 3
	add a0, t0, t1
	ret
`
	genTrace := func(cache bool) []trace.Event {
		p := ktest.BuildProgram(t, "RISC", src)
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		opts := sim.Options{DecodeCache: cache, Prediction: cache, MaxInstructions: 10000}
		c := ktest.NewCPU(t, p, opts)
		c.SetTrace(w)
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		evs, err := trace.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a := genTrace(true)
	b := genTrace(false)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if err := trace.Compare(a, b); err != nil {
		t.Fatalf("traces with/without decode cache diverge: %v", err)
	}
	// Spot-check: the ADD event carries in/out register values.
	var add *trace.Event
	for i := range a {
		if a[i].Op == "ADD" {
			add = &a[i]
		}
	}
	if add == nil {
		t.Fatal("no ADD in trace")
	}
	if len(add.In) != 2 || add.In[0].Val != 2 || add.In[1].Val != 3 {
		t.Errorf("ADD inputs = %+v", add.In)
	}
	if len(add.Out) != 1 || add.Out[0].Val != 5 {
		t.Errorf("ADD outputs = %+v", add.Out)
	}
}

func TestIllegalInstructionReportsLocation(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	.word 0xFFFFFFFF
	ret
	.endfunc
`)
	opts := sim.DefaultOptions()
	opts.HistorySize = 8
	c := ktest.NewCPU(t, p, opts)
	_, err := c.Run()
	if err == nil {
		t.Fatal("expected illegal instruction error")
	}
	if !strings.Contains(err.Error(), "illegal operation word") ||
		!strings.Contains(err.Error(), "main") {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestIPHistoryOnRunawayJump(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li t0, 0x300000
	jalr zero, t0
`)
	opts := sim.DefaultOptions()
	opts.HistorySize = 16
	c := ktest.NewCPU(t, p, opts)
	_, err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "left the text section") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "instruction pointer history") {
		t.Fatalf("no IP history in error: %v", err)
	}
	if len(c.History()) == 0 {
		t.Fatal("history empty")
	}
}

func TestInstructionLimit(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	j main
`)
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 100
	c := ktest.NewCPU(t, p, opts)
	_, err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestLocationMapping(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	.loc "prog.c" 3
	li a0, 0
	ret
	.endfunc
`)
	mainSym := p.File.Symbol("main")
	loc := p.Location(mainSym.Value)
	for _, want := range []string{"main+0x0", "prog.c:3", ".s:"} {
		if !strings.Contains(loc, want) {
			t.Errorf("location %q missing %q", loc, want)
		}
	}
}

func TestMemoryPaging(t *testing.T) {
	m := sim.NewMemory()
	// Cross-page word access.
	m.StoreWord(0x1FFE, 0xA1B2C3D4)
	if got := m.LoadWord(0x1FFE); got != 0xA1B2C3D4 {
		t.Fatalf("cross-page word = %#x", got)
	}
	if got := m.LoadByte(0x2001); got != 0xA1 {
		t.Fatalf("byte in next page = %#x", got)
	}
	m.WriteBytes(0x2FFF, []byte{1, 2, 3})
	if got := m.ReadBytes(0x2FFF, 3); got[0] != 1 || got[2] != 3 {
		t.Fatalf("WriteBytes/ReadBytes across pages = %v", got)
	}
	if m.Pages() < 2 {
		t.Fatalf("pages = %d", m.Pages())
	}
	if _, err := m.ReadCString(0x5000, 4); err == nil {
		// all-zero page: empty string, no error expected actually
	}
	m.WriteBytes(0x6000, []byte{'h', 'i', 0})
	s, err := m.ReadCString(0x6000, 10)
	if err != nil || s != "hi" {
		t.Fatalf("cstring = %q, %v", s, err)
	}
}

func TestStackArgsSimcall(t *testing.T) {
	// printf with 6 arguments: 3 in registers, 2 on the stack.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	li t0, 50
	sw t0, 0(sp)       # arg 4
	li t0, 60
	sw t0, 4(sp)       # arg 5
	la a0, fmt
	li a1, 10
	li a2, 20
	li a3, 30
	jal printf
	lw ra, 12(sp)
	addi sp, sp, 16
	li a0, 0
	ret
	.rodata
fmt:	.asciz "%d %d %d %d %d"
`)
	var out bytes.Buffer
	opts := sim.DefaultOptions()
	opts.Stdout = &out
	opts.MaxInstructions = 1 << 20
	c := ktest.NewCPU(t, p, opts)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "10 20 30 50 60" {
		t.Fatalf("output = %q", out.String())
	}
}
