package sim_test

import (
	"sync"
	"testing"

	"repro/internal/ktest"
	"repro/internal/sim"
)

// The elaborated model and a loaded Program are read-only after
// construction; many simulations may share them concurrently (the
// Figure 4 sweep and the cluster co-simulation rely on this).
func TestConcurrentSimulationsShareModelAndProgram(t *testing.T) {
	p := ktest.BuildProgram(t, "VLIW4", `
	.isa VLIW4
	.global main
main:
	li t0, 0
	li t1, 500
	li a0, 0
loop:
	{ addi t0, t0, 1 ; add a0, a0, t0 }
	bne t0, t1, loop
	andi a0, a0, 0xff
	ret
`)
	m := ktest.Model(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	codes := make(chan int32, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := sim.DefaultOptions()
			opts.MaxInstructions = 1 << 20
			c, err := sim.New(m, p, opts)
			if err != nil {
				errs <- err
				return
			}
			st, err := c.Run()
			if err != nil {
				errs <- err
				return
			}
			codes <- st.ExitCode
		}()
	}
	wg.Wait()
	close(errs)
	close(codes)
	for err := range errs {
		t.Fatal(err)
	}
	// The bundle's add reads the OLD t0 (read-before-write, Sec. V-B),
	// so the loop sums 0..499.
	want := int32(499 * 500 / 2 & 0xFF)
	for code := range codes {
		if code != want {
			t.Fatalf("exit = %d, want %d", code, want)
		}
	}
}
