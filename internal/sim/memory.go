// Package sim implements the cycle-approximate, mixed-ISA,
// interpretation-based instruction set simulator of the paper
// (Sec. V): ELF loading, constant-field operation detection, the decode
// cache with instruction prediction, parallel-operation execution with
// read-before-write register semantics, run-time ISA switching
// (SWITCHTARGET), native C standard library emulation (SIMCALL), trace
// generation, and debug mapping from instruction addresses to assembly
// lines, source lines and function names.
package sim

import "fmt"

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Memory is the sparse, paged memory of the simulated processor.
// Pages are allocated on first touch and zero-initialized.
type Memory struct {
	pages map[uint32]*[pageSize]byte

	// One-entry page cache for the hot paths of the interpreter.
	lastTag  uint32
	lastPage *[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte), lastTag: ^uint32(0)}
}

func (m *Memory) page(addr uint32) *[pageSize]byte {
	tag := addr >> pageBits
	if tag == m.lastTag {
		return m.lastPage
	}
	p, ok := m.pages[tag]
	if !ok {
		p = new([pageSize]byte)
		m.pages[tag] = p
	}
	m.lastTag, m.lastPage = tag, p
	return p
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) byte {
	return m.page(addr)[addr&pageMask]
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.page(addr)[addr&pageMask] = v
}

// LoadWord reads a 32-bit little-endian word (unaligned allowed).
func (m *Memory) LoadWord(addr uint32) uint32 {
	off := addr & pageMask
	if off <= pageSize-4 {
		p := m.page(addr)
		return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	}
	return uint32(m.LoadByte(addr)) | uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 | uint32(m.LoadByte(addr+3))<<24
}

// StoreWord writes a 32-bit little-endian word (unaligned allowed).
func (m *Memory) StoreWord(addr uint32, v uint32) {
	off := addr & pageMask
	if off <= pageSize-4 {
		p := m.page(addr)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
	m.StoreByte(addr+2, byte(v>>16))
	m.StoreByte(addr+3, byte(v>>24))
}

// LoadHalf reads a 16-bit little-endian halfword.
func (m *Memory) LoadHalf(addr uint32) uint16 {
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// StoreHalf writes a 16-bit little-endian halfword.
func (m *Memory) StoreHalf(addr uint32, v uint16) {
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// WriteBytes copies b into memory at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for len(b) > 0 {
		off := addr & pageMask
		n := copy(m.page(addr)[off:], b)
		b = b[n:]
		addr += uint32(n)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	i := 0
	for i < n {
		off := addr & pageMask
		c := copy(out[i:], m.page(addr)[off:])
		i += c
		addr += uint32(c)
	}
	return out
}

// ReadCString reads a NUL-terminated string of at most max bytes.
func (m *Memory) ReadCString(addr uint32, max int) (string, error) {
	var out []byte
	for i := 0; i < max; i++ {
		b := m.LoadByte(addr + uint32(i))
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", fmt.Errorf("sim: unterminated string at %#x", addr)
}

// Pages returns the number of allocated pages (for footprint reports).
func (m *Memory) Pages() int { return len(m.pages) }

// Reset zeroes the memory in place while keeping its page allocations.
// Pages are zero on first touch, so a reset memory is observationally
// identical to a fresh one — the batch pool relies on this to recycle
// per-job memories without perturbing results.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = [pageSize]byte{}
	}
	m.lastTag = ^uint32(0)
	m.lastPage = nil
}
