package sim

import (
	"fmt"

	"repro/internal/kelf"
)

// Program is a loaded executable plus its decoded debug information:
// the function table (address ranges + per-function ISA), the assembler
// line map and the C source line map (Sec. V-C of the paper).
type Program struct {
	File      *kelf.File
	Entry     uint32
	EntryISA  int
	HeapStart uint32
	StackTop  uint32

	TextStart, TextEnd uint32

	Funcs  *kelf.FuncTable
	AsmMap *kelf.LineMap
	SrcMap *kelf.LineMap
}

// LoadProgram validates an executable and decodes its debug sections.
func LoadProgram(f *kelf.File) (*Program, error) {
	if f.Type != kelf.TypeExec {
		return nil, fmt.Errorf("sim: not an executable")
	}
	p := &Program{
		File:     f,
		Entry:    f.Entry,
		EntryISA: f.EntryISA,
		Funcs:    &kelf.FuncTable{},
		AsmMap:   &kelf.LineMap{},
		SrcMap:   &kelf.LineMap{},
	}
	text := f.Section(kelf.SecText)
	if text == nil || len(text.Data) == 0 {
		return nil, fmt.Errorf("sim: executable has no text")
	}
	p.TextStart = text.Addr
	p.TextEnd = text.Addr + uint32(len(text.Data))
	if p.Entry < p.TextStart || p.Entry >= p.TextEnd {
		return nil, fmt.Errorf("sim: entry %#x outside text [%#x,%#x)", p.Entry, p.TextStart, p.TextEnd)
	}
	if s := f.Section(kelf.SecFuncs); s != nil {
		ft, err := kelf.DecodeFuncTable(s.Data)
		if err != nil {
			return nil, err
		}
		ft.Sort()
		p.Funcs = ft
	}
	if s := f.Section(kelf.SecLineMap); s != nil {
		lm, err := kelf.DecodeLineMap(s.Data)
		if err != nil {
			return nil, err
		}
		lm.Sort()
		p.AsmMap = lm
	}
	if s := f.Section(kelf.SecSrcMap); s != nil {
		lm, err := kelf.DecodeLineMap(s.Data)
		if err != nil {
			return nil, err
		}
		lm.Sort()
		p.SrcMap = lm
	}
	// Heap start: linker symbol, else after the highest alloc section.
	var end uint32
	for _, s := range f.Sections {
		if s.Flags&kelf.FlagAlloc != 0 {
			if e := s.Addr + s.ByteSize(); e > end {
				end = e
			}
		}
	}
	p.HeapStart = (end + 4095) &^ 4095
	if sym := f.Symbol("__heap_start"); sym != nil {
		p.HeapStart = sym.Value
	}
	p.StackTop = 0x00400000
	if sym := f.Symbol("__stack_top"); sym != nil {
		p.StackTop = sym.Value
	}
	return p, nil
}

// LoadInto copies all allocated sections into memory ("The ELF file is
// loaded into the simulated memory of the processor", Sec. V).
func (p *Program) LoadInto(m *Memory) {
	for _, s := range p.File.Sections {
		if s.Flags&kelf.FlagAlloc == 0 || s.Type == kelf.SecNobits {
			continue // .bss pages are zero on first touch
		}
		m.WriteBytes(s.Addr, s.Data)
	}
}

// FuncAt returns the function covering addr, or nil.
func (p *Program) FuncAt(addr uint32) *kelf.FuncInfo { return p.Funcs.Lookup(addr) }

// Location renders the best-available description of an instruction
// address: function, C source position and assembly position — the
// paper's error-detection aid ("mapping of instruction addresses to
// assembly and source code lines").
func (p *Program) Location(addr uint32) string {
	out := fmt.Sprintf("%#x", addr)
	if fi := p.FuncAt(addr); fi != nil {
		out += fmt.Sprintf(" in %s+%#x", fi.Name, addr-fi.Start)
	}
	if file, line, ok := p.SrcMap.Lookup(addr); ok {
		out += fmt.Sprintf(" (%s:%d)", file, line)
	}
	if file, line, ok := p.AsmMap.Lookup(addr); ok {
		out += fmt.Sprintf(" [%s:%d]", file, line)
	}
	return out
}
