package sim_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ktest"
	"repro/internal/sim"
)

// spinProgram loops forever: only an external abort can stop it.
const spinProgram = `
	.isa RISC
	.global main
main:
	li t0, 0
spin:
	addi t0, t0, 1
	j spin
`

// A canceled context must stop a non-terminating program within the
// cancellation granularity (the fuel-check interval), and the returned
// error must expose both ErrCanceled and the context's own error.
func TestRunContextCancelStopsInfiniteLoop(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", spinProgram)
	c := ktest.NewCPU(t, p, sim.DefaultOptions())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.RunContext(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	canceledAt := time.Now()
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, sim.ErrCanceled) {
			t.Fatalf("error %v does not wrap sim.ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
		t.Logf("stopped %v after cancel: %v", time.Since(canceledAt), err)
	case <-time.After(10 * time.Second):
		t.Fatal("simulation did not stop after context cancellation")
	}
}

// An expired deadline surfaces as ErrCanceled wrapping DeadlineExceeded,
// so callers can distinguish per-job timeouts from explicit cancels.
func TestRunContextDeadline(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", spinProgram)
	c := ktest.NewCPU(t, p, sim.DefaultOptions())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.RunContext(ctx)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("error %v does not wrap sim.ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// An already-satisfied context must not affect a normal bounded run,
// and fuel exhaustion must classify as ErrFuelExhausted.
func TestRunContextFuelClassification(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", spinProgram)
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 10_000
	c := ktest.NewCPU(t, p, opts)
	_, err := c.RunContext(context.Background())
	if !errors.Is(err, sim.ErrFuelExhausted) {
		t.Fatalf("error %v does not wrap sim.ErrFuelExhausted", err)
	}
	if errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("fuel exhaustion misclassified as cancellation: %v", err)
	}
}
