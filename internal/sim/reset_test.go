package sim_test

import (
	"bytes"
	"testing"

	"repro/internal/ktest"
	"repro/internal/sim"
)

// A program that touches every recyclable resource: registers, stack
// and heap memory (sbrk via libc emulation is exercised elsewhere; here
// plain loads/stores), stdout, the decode cache and prediction.
const resetProbe = `
	.global main
main:
	addi sp, sp, -32
	li t0, 0
	li t1, 0
	li t2, 25
loop:
	sw t1, 0(sp)
	lw t3, 0(sp)
	add t0, t0, t3
	addi t1, t1, 1
	bne t1, t2, loop
	mv a0, t0          # sum 0..24 = 300 -> exit 300 & 0xff = 44
	addi sp, sp, 32
	ret
`

// Reset must make a recycled CPU observationally identical to a fresh
// one: identical output, exit status and counters, with the old run's
// memory contents and decode-cache entries fully gone. This is the
// invariant the batch pool's recycling arenas rest on.
func TestResetMatchesFreshCPU(t *testing.T) {
	m := ktest.Model(t)
	prog := ktest.BuildProgram(t, "RISC", resetProbe)

	run := func(c *sim.CPU) (sim.ExitStatus, sim.Stats) {
		t.Helper()
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st, c.Stats
	}

	newOpts := func(out *bytes.Buffer) sim.Options {
		opts := sim.DefaultOptions()
		opts.Stdout = out
		opts.MaxInstructions = 1_000_000
		return opts
	}

	var freshOut bytes.Buffer
	fresh, err := sim.New(m, prog, newOpts(&freshOut))
	if err != nil {
		t.Fatal(err)
	}
	freshSt, freshStats := run(fresh)

	// Run the same CPU again after Reset: every counter and the output
	// must be bit-identical to the fresh run.
	var recycledOut bytes.Buffer
	if err := fresh.Reset(m, prog, newOpts(&recycledOut)); err != nil {
		t.Fatal(err)
	}
	recycledSt, recycledStats := run(fresh)

	if recycledSt != freshSt {
		t.Errorf("recycled status %+v, fresh %+v", recycledSt, freshSt)
	}
	if recycledStats != freshStats {
		t.Errorf("recycled stats %+v, fresh %+v — decode-cache or prediction state leaked", recycledStats, freshStats)
	}
	if recycledOut.String() != freshOut.String() {
		t.Errorf("recycled output %q, fresh %q", recycledOut.String(), freshOut.String())
	}

	// The counters must include cold decode work: a carried-over decode
	// cache would show zero Detected on the second run.
	if recycledStats.Detected == 0 {
		t.Error("recycled run detected no instructions — decode cache contents were carried across Reset")
	}
}

// Reset re-targets a CPU to a different program of the same model; the
// recycled run must match a fresh CPU of that program.
func TestResetAcrossPrograms(t *testing.T) {
	m := ktest.Model(t)
	progA := ktest.BuildProgram(t, "RISC", resetProbe)
	progB := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li a0, 9
	li a1, 5
	mul a0, a0, a1
	ret
`)

	opts := func() sim.Options {
		o := sim.DefaultOptions()
		o.Stdout = &bytes.Buffer{}
		o.MaxInstructions = 1_000_000
		return o
	}

	refB, err := sim.New(m, progB, opts())
	if err != nil {
		t.Fatal(err)
	}
	wantSt, err := refB.Run()
	if err != nil {
		t.Fatal(err)
	}

	c, err := sim.New(m, progA, opts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(m, progB, opts()); err != nil {
		t.Fatal(err)
	}
	gotSt, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if gotSt != wantSt {
		t.Errorf("re-targeted status %+v, fresh %+v", gotSt, wantSt)
	}
	if gotSt.ExitCode != 45 {
		t.Errorf("exit = %d, want 45", gotSt.ExitCode)
	}
	if c.Stats != refB.Stats {
		t.Errorf("re-targeted stats %+v, fresh %+v", c.Stats, refB.Stats)
	}
}
