package sim_test

import (
	"bytes"
	"testing"

	"repro/internal/kelf"
	"repro/internal/sim"
	"repro/internal/targetgen"
)

// FuzzSuperblockChain feeds arbitrary text sections and entry points to
// the interpreter twice — superblock traces on and off — and demands
// the two runs be indistinguishable: same exit status or error text,
// same registers, same output, and the same complete counter set.
// Whatever the bytes decode to (hot loops, self-branches, ISA switches
// into re-decoded regions, illegal words, halts, runaway straight-line
// code), the trace chainer must stay panic-free, deterministic, and
// semantics-equal to stepwise execution. This is the property the CI
// determinism gate checks on real workloads, extended to hostile ones.
func FuzzSuperblockChain(f *testing.F) {
	model := targetgen.MustKahrisma()

	// Seeds: all-nops (a straight line that runs off the text end), an
	// undecodable word, a tight self-loop shape, and a word pattern
	// with high bits set (operation-class selectors).
	nops := bytes.Repeat([]byte{0x00, 0x00, 0x00, 0xFC}, 16)
	f.Add(nops, uint16(0), uint8(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, uint16(0), uint8(0))
	f.Add([]byte{0x01, 0x00, 0x48, 0x04, 0x00, 0x00, 0x00, 0xFC}, uint16(4), uint8(1))
	f.Add(bytes.Repeat([]byte{0x21, 0x43, 0x65, 0x87}, 8), uint16(8), uint8(2))

	f.Fuzz(func(t *testing.T, raw []byte, entryOff uint16, entrySel uint8) {
		if len(raw) < 4 || len(raw) > 4096 {
			return
		}
		text := raw[:len(raw)&^3]
		const base = 0x1000
		file := kelf.New(kelf.TypeExec)
		if err := file.AddSection(&kelf.Section{
			Name: kelf.SecText, Type: kelf.SecProgbits, Addr: base, Data: text,
		}); err != nil {
			t.Fatal(err)
		}
		p := &sim.Program{
			File:      file,
			Entry:     base + (uint32(entryOff)%uint32(len(text)))&^3,
			EntryISA:  int(entrySel) % len(model.ISAs),
			TextStart: base,
			TextEnd:   base + uint32(len(text)),
			StackTop:  0x80000,
			HeapStart: 0x40000,
			Funcs:     &kelf.FuncTable{},
			AsmMap:    &kelf.LineMap{},
			SrcMap:    &kelf.LineMap{},
		}

		run := func(superblocks bool) (*sim.CPU, sim.ExitStatus, string, string) {
			opts := sim.DefaultOptions()
			opts.Superblocks = superblocks
			opts.MaxInstructions = 5000 // bound runaway loops per input
			var out bytes.Buffer
			opts.Stdout = &out
			c, err := sim.New(model, p, opts)
			if err != nil {
				t.Fatalf("sim.New: %v", err)
			}
			st, runErr := c.Run()
			msg := ""
			if runErr != nil {
				msg = runErr.Error()
			}
			return c, st, msg, out.String()
		}

		cOn, stOn, errOn, outOn := run(true)
		cOff, stOff, errOff, outOff := run(false)

		if errOn != errOff {
			t.Fatalf("errors diverge:\n  on:  %s\n  off: %s", errOn, errOff)
		}
		if stOn != stOff {
			t.Fatalf("exit status diverges: %+v vs %+v", stOn, stOff)
		}
		if cOn.Stats != cOff.Stats {
			t.Fatalf("stats diverge:\n  on:  %+v\n  off: %+v", cOn.Stats, cOff.Stats)
		}
		if cOn.Regs != cOff.Regs {
			t.Fatalf("registers diverge:\n  on:  %v\n  off: %v", cOn.Regs, cOff.Regs)
		}
		if cOn.IP != cOff.IP || cOn.ISA.ID != cOff.ISA.ID {
			t.Fatalf("final IP/ISA diverge: %#x/%d vs %#x/%d",
				cOn.IP, cOn.ISA.ID, cOff.IP, cOff.ISA.ID)
		}
		if outOn != outOff {
			t.Fatalf("output diverges:\n  on:  %q\n  off: %q", outOn, outOff)
		}

		// Determinism: a second superblock run of the same program is
		// bit-identical to the first.
		cOn2, stOn2, errOn2, outOn2 := run(true)
		if errOn2 != errOn || stOn2 != stOn || cOn2.Stats != cOn.Stats ||
			cOn2.Regs != cOn.Regs || outOn2 != outOn {
			t.Fatalf("superblock run not deterministic:\n first: %+v %+v\nsecond: %+v %+v",
				stOn, cOn.Stats, stOn2, cOn2.Stats)
		}
	})
}
