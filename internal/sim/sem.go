package sim

// semFunc is a simulation function: the executable behaviour of one
// operation, keyed by the `sem` attribute of the ADL (the paper's
// TargetGen generates these from C++ fragments embedded in the ADL; here
// the registry maps each key to its Go implementation).
//
// Simulation functions run in the compute phase of an instruction: they
// read the register file directly and stage register writes through the
// write-back buffer, which guarantees that the registers of all parallel
// operations are loaded before any operation writes back its results
// (Sec. V-B).
type semFunc func(c *CPU, d *DecodedOp)

var semRegistry = map[string]semFunc{
	// Three-register arithmetic.
	"add": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]+c.Regs[d.Rs2]) },
	"sub": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]-c.Regs[d.Rs2]) },
	"mul": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]*c.Regs[d.Rs2]) },
	"mulhu": func(c *CPU, d *DecodedOp) {
		c.pushWB(d.Rd, uint32((uint64(c.Regs[d.Rs1])*uint64(c.Regs[d.Rs2]))>>32))
	},
	"div": func(c *CPU, d *DecodedOp) {
		a, b := int32(c.Regs[d.Rs1]), int32(c.Regs[d.Rs2])
		switch {
		case b == 0:
			c.pushWB(d.Rd, 0xFFFFFFFF)
		case a == -1<<31 && b == -1:
			c.pushWB(d.Rd, uint32(a))
		default:
			c.pushWB(d.Rd, uint32(a/b))
		}
	},
	"divu": func(c *CPU, d *DecodedOp) {
		if b := c.Regs[d.Rs2]; b == 0 {
			c.pushWB(d.Rd, 0xFFFFFFFF)
		} else {
			c.pushWB(d.Rd, c.Regs[d.Rs1]/b)
		}
	},
	"rem": func(c *CPU, d *DecodedOp) {
		a, b := int32(c.Regs[d.Rs1]), int32(c.Regs[d.Rs2])
		switch {
		case b == 0:
			c.pushWB(d.Rd, uint32(a))
		case a == -1<<31 && b == -1:
			c.pushWB(d.Rd, 0)
		default:
			c.pushWB(d.Rd, uint32(a%b))
		}
	},
	"remu": func(c *CPU, d *DecodedOp) {
		if b := c.Regs[d.Rs2]; b == 0 {
			c.pushWB(d.Rd, c.Regs[d.Rs1])
		} else {
			c.pushWB(d.Rd, c.Regs[d.Rs1]%b)
		}
	},
	"and": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]&c.Regs[d.Rs2]) },
	"or":  func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]|c.Regs[d.Rs2]) },
	"xor": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]^c.Regs[d.Rs2]) },
	"sll": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]<<(c.Regs[d.Rs2]&31)) },
	"srl": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]>>(c.Regs[d.Rs2]&31)) },
	"sra": func(c *CPU, d *DecodedOp) {
		c.pushWB(d.Rd, uint32(int32(c.Regs[d.Rs1])>>(c.Regs[d.Rs2]&31)))
	},
	"slt": func(c *CPU, d *DecodedOp) {
		c.pushWB(d.Rd, b2u(int32(c.Regs[d.Rs1]) < int32(c.Regs[d.Rs2])))
	},
	"sltu": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, b2u(c.Regs[d.Rs1] < c.Regs[d.Rs2])) },

	// Register-immediate arithmetic. Sign extension (or not) of the
	// immediate happened at decode via the field description.
	"addi":  func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]+uint32(d.Imm)) },
	"andi":  func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]&uint32(d.Imm)) },
	"ori":   func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]|uint32(d.Imm)) },
	"xori":  func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]^uint32(d.Imm)) },
	"slti":  func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, b2u(int32(c.Regs[d.Rs1]) < d.Imm)) },
	"sltiu": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, b2u(c.Regs[d.Rs1] < uint32(d.Imm))) },
	"slli":  func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]<<(uint32(d.Imm)&31)) },
	"srli":  func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, c.Regs[d.Rs1]>>(uint32(d.Imm)&31)) },
	"srai": func(c *CPU, d *DecodedOp) {
		c.pushWB(d.Rd, uint32(int32(c.Regs[d.Rs1])>>(uint32(d.Imm)&31)))
	},
	"lui": func(c *CPU, d *DecodedOp) { c.pushWB(d.Rd, uint32(d.Imm)<<16) },

	// Loads: address = rs1 + imm; the access is recorded for the cycle
	// models' memory approximation.
	"lw": func(c *CPU, d *DecodedOp) {
		a := c.Regs[d.Rs1] + uint32(d.Imm)
		c.noteMem(a, false)
		c.pushWB(d.Rd, c.Mem.LoadWord(a))
	},
	"lh": func(c *CPU, d *DecodedOp) {
		a := c.Regs[d.Rs1] + uint32(d.Imm)
		c.noteMem(a, false)
		c.pushWB(d.Rd, uint32(int32(int16(c.Mem.LoadHalf(a)))))
	},
	"lhu": func(c *CPU, d *DecodedOp) {
		a := c.Regs[d.Rs1] + uint32(d.Imm)
		c.noteMem(a, false)
		c.pushWB(d.Rd, uint32(c.Mem.LoadHalf(a)))
	},
	"lb": func(c *CPU, d *DecodedOp) {
		a := c.Regs[d.Rs1] + uint32(d.Imm)
		c.noteMem(a, false)
		c.pushWB(d.Rd, uint32(int32(int8(c.Mem.LoadByte(a)))))
	},
	"lbu": func(c *CPU, d *DecodedOp) {
		a := c.Regs[d.Rs1] + uint32(d.Imm)
		c.noteMem(a, false)
		c.pushWB(d.Rd, uint32(c.Mem.LoadByte(a)))
	},

	// Stores take effect immediately, in slot order within the
	// instruction (register write-back stays deferred).
	"sw": func(c *CPU, d *DecodedOp) {
		a := c.Regs[d.Rs1] + uint32(d.Imm)
		c.noteMem(a, true)
		c.Mem.StoreWord(a, c.Regs[d.Rs2])
	},
	"sh": func(c *CPU, d *DecodedOp) {
		a := c.Regs[d.Rs1] + uint32(d.Imm)
		c.noteMem(a, true)
		c.Mem.StoreHalf(a, uint16(c.Regs[d.Rs2]))
	},
	"sb": func(c *CPU, d *DecodedOp) {
		a := c.Regs[d.Rs1] + uint32(d.Imm)
		c.noteMem(a, true)
		c.Mem.StoreByte(a, byte(c.Regs[d.Rs2]))
	},

	// Branches: target = operation word address + imm*4.
	"beq": func(c *CPU, d *DecodedOp) {
		if c.Regs[d.Rs1] == c.Regs[d.Rs2] {
			c.setNextIP(d.Addr + uint32(d.Imm)*4)
		}
	},
	"bne": func(c *CPU, d *DecodedOp) {
		if c.Regs[d.Rs1] != c.Regs[d.Rs2] {
			c.setNextIP(d.Addr + uint32(d.Imm)*4)
		}
	},
	"blt": func(c *CPU, d *DecodedOp) {
		if int32(c.Regs[d.Rs1]) < int32(c.Regs[d.Rs2]) {
			c.setNextIP(d.Addr + uint32(d.Imm)*4)
		}
	},
	"bge": func(c *CPU, d *DecodedOp) {
		if int32(c.Regs[d.Rs1]) >= int32(c.Regs[d.Rs2]) {
			c.setNextIP(d.Addr + uint32(d.Imm)*4)
		}
	},
	"bltu": func(c *CPU, d *DecodedOp) {
		if c.Regs[d.Rs1] < c.Regs[d.Rs2] {
			c.setNextIP(d.Addr + uint32(d.Imm)*4)
		}
	},
	"bgeu": func(c *CPU, d *DecodedOp) {
		if c.Regs[d.Rs1] >= c.Regs[d.Rs2] {
			c.setNextIP(d.Addr + uint32(d.Imm)*4)
		}
	},

	// Jumps. The return address is the address of the following
	// instruction (bundle start + size).
	"j": func(c *CPU, d *DecodedOp) { c.setNextIP(uint32(d.Imm) * 4) },
	"jal": func(c *CPU, d *DecodedOp) {
		c.pushWB(1, c.fallIP())
		c.setNextIP(uint32(d.Imm) * 4)
	},
	"jalr": func(c *CPU, d *DecodedOp) {
		target := c.Regs[d.Rs1]
		c.pushWB(d.Rd, c.fallIP())
		c.setNextIP(target)
	},

	// System operations.
	"swt": func(c *CPU, d *DecodedOp) {
		// Takes effect for the next instruction (Sec. V-D: "The next
		// instruction is then detected and decoded using the new ISA").
		c.pendingISA = int(d.Imm)
	},
	"simcall": func(c *CPU, d *DecodedOp) { c.doSimcall(uint32(d.Imm)) },
	"halt":    func(c *CPU, d *DecodedOp) { c.halted = true },
	"nop":     func(c *CPU, d *DecodedOp) {},
}

// fallIP is the address of the instruction following the current one
// (its static fall-through, regardless of any control transfer the
// instruction performs).
func (c *CPU) fallIP() uint32 { return c.fall }

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
