package sim_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/ktest"
	"repro/internal/sim"
	"repro/internal/trace"
)

func newTraceWriter(w io.Writer) *trace.Writer { return trace.NewWriter(w) }

func TestGetcharReadsStdin(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	jal getchar
	mv s0, a0
	jal getchar
	add s0, s0, a0
	jal getchar          # EOF -> -1
	add a0, s0, a0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`)
	opts := sim.DefaultOptions()
	opts.Stdin = strings.NewReader("AB")
	opts.MaxInstructions = 10000
	c := ktest.NewCPU(t, p, opts)
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExitCode != 'A'+'B'-1 {
		t.Fatalf("exit = %d, want %d", st.ExitCode, 'A'+'B'-1)
	}
}

func TestAbortTerminatesWithCode134(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	jal abort
	li a0, 0
	ret
`)
	c := ktest.NewCPU(t, p, sim.DefaultOptions())
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted || st.ExitCode != 134 {
		t.Fatalf("status = %+v", st)
	}
}

func TestHeapExhaustionReported(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	addi sp, sp, -16
	sw ra, 12(sp)
loop:
	lui a0, 0x100        # 16 MiB per call
	jal malloc
	j loop
`)
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 100000
	c := ktest.NewCPU(t, p, opts)
	_, err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "heap exhausted") {
		t.Fatalf("err = %v", err)
	}
}

func TestPrintfBadConversionFails(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, fmt
	jal printf
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.rodata
fmt:	.asciz "bad %q conversion"
`)
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 10000
	c := ktest.NewCPU(t, p, opts)
	_, err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "unsupported conversion") {
		t.Fatalf("err = %v", err)
	}
}

func TestHistoryRingWraps(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li t0, 0
	li t1, 50
loop:
	addi t0, t0, 1
	bne t0, t1, loop
	li a0, 0
	ret
`)
	opts := sim.DefaultOptions()
	opts.HistorySize = 8
	c := ktest.NewCPU(t, p, opts)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	h := c.History()
	if len(h) != 8 {
		t.Fatalf("history length = %d, want 8 (ring full)", len(h))
	}
	// The newest entries must be the tail of the run: the ret path.
	last := h[len(h)-1]
	if last < p.TextStart || last >= p.TextEnd {
		t.Fatalf("history tail %#x outside text", last)
	}
}

func TestVLIWTraceCarriesSlots(t *testing.T) {
	p := ktest.BuildProgram(t, "VLIW4", `
	.isa VLIW4
	.global main
main:
	{ addi t0, zero, 1 ; addi t1, zero, 2 ; addi t2, zero, 3 }
	{ add a0, t0, t1 ; add t3, t1, t2 }
	ret
`)
	var buf bytes.Buffer
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 1000
	c := ktest.NewCPU(t, p, opts)
	w := newTraceWriter(&buf)
	c.SetTrace(w)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// Slots 0..2 of the first bundle appear in the trace.
	for _, want := range []string{" 0 ADDI", " 1 ADDI", " 2 ADDI", " 1 ADD"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %q:\n%s", want, text)
		}
	}
}

func TestStepAfterHaltFails(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", "\t.global main\nmain:\n\tli a0, 3\n\tret\n")
	c := ktest.NewCPU(t, p, sim.DefaultOptions())
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err == nil || !strings.Contains(err.Error(), "after halt") {
		t.Fatalf("err = %v", err)
	}
}

func TestSwitchToUnknownISAFails(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	swt 42
	ret
`)
	c := ktest.NewCPU(t, p, sim.DefaultOptions())
	_, err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "unknown ISA id 42") {
		t.Fatalf("err = %v", err)
	}
}

func TestSwitchToSameISAIsFree(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	swt RISC
	li a0, 9
	ret
`)
	c := ktest.NewCPU(t, p, sim.DefaultOptions())
	st, err := c.Run()
	if err != nil || st.ExitCode != 9 {
		t.Fatalf("%v exit=%d", err, st.ExitCode)
	}
	if c.Stats.ISASwitches != 0 {
		t.Fatalf("switch to the active ISA counted: %d", c.Stats.ISASwitches)
	}
}
