package cycle

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/sim"
)

// PerFunctionILP measures the theoretical ILP separately for every
// function of a program — the indicator the paper proposes for
// selecting an appropriate ISA per function "without the need to
// simulate any combination of the different ISAs and applications"
// (Sec. I, Sec. VIII).
//
// Each function gets its own ILP sub-model fed with the instructions
// executed while that function is at the top of the profile (by
// instruction address). Dependencies crossing function boundaries are
// not tracked — the value is the selection indicator, not an exact
// bound (matching the paper's intended use).
type PerFunctionILP struct {
	model *isa.Model
	prog  *sim.Program
	funcs map[string]*ILP
	calls map[string]uint64
}

// NewPerFunctionILP builds the profiler for a loaded program.
func NewPerFunctionILP(m *isa.Model, p *sim.Program) *PerFunctionILP {
	return &PerFunctionILP{model: m, prog: p, funcs: map[string]*ILP{}, calls: map[string]uint64{}}
}

// Instruction implements sim.Observer.
func (pf *PerFunctionILP) Instruction(rec *sim.ExecRecord) {
	name := "<unknown>"
	if fi := pf.prog.FuncAt(rec.D.Addr); fi != nil {
		name = fi.Name
		if rec.D.Addr == fi.Start {
			// Executing the first instruction of the function ≈ one
			// invocation (entry is only reachable by call in compiled
			// code).
			pf.calls[name]++
		}
	}
	m, ok := pf.funcs[name]
	if !ok {
		m = NewILP(pf.model)
		pf.funcs[name] = m
	}
	m.Instruction(rec)
}

// FunctionILP is one function's measurement.
type FunctionILP struct {
	Name         string
	ILP          float64
	Operations   uint64
	Instructions uint64
	Calls        uint64
}

// Results returns per-function ILP values, largest operation count
// first (the functions worth reconfiguring for).
func (pf *PerFunctionILP) Results() []FunctionILP {
	out := make([]FunctionILP, 0, len(pf.funcs))
	for name, m := range pf.funcs {
		out = append(out, FunctionILP{
			Name:         name,
			ILP:          OPC(m),
			Operations:   m.Ops(),
			Instructions: m.Instructions(),
			Calls:        pf.calls[name],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Operations != out[j].Operations {
			return out[i].Operations > out[j].Operations
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Recommend suggests the narrowest ISA whose issue width covers the
// function's theoretical ILP (with the given utilization factor in
// (0,1], e.g. 0.7 — hardware rarely sustains the theoretical bound).
func Recommend(m *isa.Model, ilp, utilization float64) *isa.ISA {
	if utilization <= 0 || utilization > 1 {
		utilization = 0.7
	}
	want := ilp * utilization
	var best *isa.ISA
	for _, a := range m.ISAs {
		if best == nil {
			best = a
			continue
		}
		// Prefer the narrowest instance that still covers `want`.
		covers := float64(a.Issue) >= want
		bestCovers := float64(best.Issue) >= want
		switch {
		case covers && !bestCovers:
			best = a
		case covers == bestCovers && covers && a.Issue < best.Issue:
			best = a
		case covers == bestCovers && !covers && a.Issue > best.Issue:
			best = a
		}
	}
	return best
}
