// Package cycle implements the three cycle-approximation models of the
// simulator (Sec. VI of the paper): Instruction-Level Parallelism
// (ILP), Atomic Instruction Execution (AIE) and Dynamic Operation
// Execution (DOE). The models attach to the interpreter as observers of
// the dynamic instruction stream and approximate the cycle count of the
// KAHRISMA microarchitecture without simulating its pipeline in detail.
package cycle

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Model is a cycle-approximation model. It consumes the dynamic
// instruction stream and exposes its running cycle count; it also
// serves as the trace timestamp source.
type Model interface {
	sim.Observer
	Name() string
	Cycles() uint64
	Ops() uint64
	Reset()
}

// OPC returns the model's operations-per-cycle figure.
func OPC(m Model) float64 {
	c := m.Cycles()
	if c == 0 {
		return 0
	}
	return float64(m.Ops()) / float64(c)
}

// regDeps iterates the source registers of an operation (explicit and
// implicit), skipping the hard-wired zero register.
func srcRegs(op *sim.DecodedOp, zero int, f func(r int)) {
	if op.Op.Src1Field != nil && int(op.Rs1) != zero {
		f(int(op.Rs1))
	}
	if op.Op.Src2Field != nil && int(op.Rs2) != zero {
		f(int(op.Rs2))
	}
	for _, r := range op.Op.ImplicitReads {
		if r != zero && r != isa.RegIP {
			f(r)
		}
	}
}

// dstRegs iterates the destination registers of an operation (explicit
// and implicit), skipping the zero register and the IP.
func dstRegs(op *sim.DecodedOp, zero int, f func(r int)) {
	if op.Op.DstField != nil && int(op.Rd) != zero {
		f(int(op.Rd))
	}
	for _, r := range op.Op.ImplicitWrites {
		if r != zero && r != isa.RegIP {
			f(r)
		}
	}
}

// ---------------------------------------------------------------------
// ILP

// ILPDelay is the ideal memory delay of the ILP model: the paper's
// theoretical architecture has "an ideal memory architecture with three
// cycles delay (the delay of our L1 cache) and unlimited number of
// parallel memory accesses".
const ILPDelay = 3

// ILP measures the theoretical upper limit of operations per cycle the
// architecture could exploit with unlimited resources (Sec. VI-A):
// unlimited parallel operations, unlimited renaming registers, ideal
// memory. Parallelism is limited only by true data dependencies, the
// branch barrier (on VLIW processors only operations up to the next
// branch can be scheduled in parallel), and a pessimistic memory
// dependency model (every load/store depends on the last store — the
// compiler has no alias analysis and schedules with the same model).
type ILP struct {
	zero int

	regWrite   [33]uint64
	branchDone uint64 // completion cycle of the last control transfer
	storeStart uint64 // start cycle of the last store
	haveStore  bool
	maxDone    uint64
	ops        uint64
	instrs     uint64
}

// NewILP builds the ILP model for the given architecture.
func NewILP(m *isa.Model) *ILP { return &ILP{zero: m.Regs.ZeroReg} }

// Name implements Model.
func (l *ILP) Name() string { return "ILP" }

// Cycles returns the theoretical execution time.
func (l *ILP) Cycles() uint64 { return l.maxDone }

// Ops returns the number of operations measured.
func (l *ILP) Ops() uint64 { return l.ops }

// Instructions returns the number of instructions measured.
func (l *ILP) Instructions() uint64 { return l.instrs }

// Reset clears the model.
func (l *ILP) Reset() { *l = ILP{zero: l.zero} }

// Instruction implements sim.Observer: each operation gets an
// individual start cycle (the maximum write cycle of its sources, the
// completion cycle of the last branch, and for memory operations the
// start cycle of the last store) and a completion cycle (start+delay).
func (l *ILP) Instruction(rec *sim.ExecRecord) {
	l.instrs++
	for i := range rec.D.Ops {
		op := &rec.D.Ops[i]
		l.ops++
		start := l.branchDone
		srcRegs(op, l.zero, func(r int) {
			if w := l.regWrite[r]; w > start {
				start = w
			}
		})
		cls := op.Op.Class
		if cls.IsMem() && l.haveStore && l.storeStart > start {
			start = l.storeStart
		}
		var done uint64
		switch cls {
		case isa.ClassLoad:
			done = start + ILPDelay
		case isa.ClassStore:
			done = start + uint64(op.Op.Latency)
			l.storeStart = start
			l.haveStore = true
		default:
			done = start + uint64(op.Op.Latency)
		}
		dstRegs(op, l.zero, func(r int) { l.regWrite[r] = done })
		if cls.IsControl() {
			l.branchDone = done
		}
		if done > l.maxDone {
			l.maxDone = done
		}
	}
}

// ---------------------------------------------------------------------
// AIE

// AIE is the Atomic Instruction Execution model (Sec. VI-B): all
// operations of an instruction issue in the same clock cycle(s) and the
// following instruction issues only after all operations of the
// previous instruction finished. The delay of one instruction is the
// maximum delay of its operations; memory operations go through the
// memory approximation.
type AIE struct {
	Mem *mem.Hierarchy

	cur    uint64
	ops    uint64
	instrs uint64
}

// NewAIE builds the AIE model over the given memory hierarchy.
func NewAIE(h *mem.Hierarchy) *AIE { return &AIE{Mem: h} }

// Name implements Model.
func (a *AIE) Name() string { return "AIE" }

// Cycles returns the accumulated execution time.
func (a *AIE) Cycles() uint64 { return a.cur }

// Ops returns the number of operations measured.
func (a *AIE) Ops() uint64 { return a.ops }

// Instructions returns the number of instructions measured.
func (a *AIE) Instructions() uint64 { return a.instrs }

// Reset clears the model and its memory hierarchy.
func (a *AIE) Reset() {
	a.cur, a.ops, a.instrs = 0, 0, 0
	a.Mem.Reset()
}

// Instruction implements sim.Observer.
func (a *AIE) Instruction(rec *sim.ExecRecord) {
	a.instrs++
	var maxDelay uint64 = 0
	for i := range rec.D.Ops {
		op := &rec.D.Ops[i]
		a.ops++
		var delay uint64
		if m := rec.Mem[i]; m.Valid {
			done := a.Mem.Access(m.Addr, m.Write, int(op.Slot), a.cur)
			delay = done - a.cur
		} else {
			delay = uint64(op.Op.Latency)
		}
		if delay > maxDelay {
			maxDelay = delay
		}
	}
	if len(rec.D.Ops) == 0 {
		maxDelay = 1 // an all-NOP instruction still spends its issue cycle
	}
	a.cur += maxDelay
}

// ---------------------------------------------------------------------
// DOE

// DOE is the Dynamic Operation Execution model (Sec. VI-C): the slots
// of VLIW instructions drift among each other; an operation issues once
// the previous operation of its slot has issued (at least one cycle
// later) and the true data dependencies of its input registers are
// fulfilled. True dependencies are modelled identically to the ILP
// model (per-register write cycles); memory delays come from the memory
// approximation, called in program order (Sec. VI-D).
//
// The model is heuristic for the three reasons the paper lists: resource
// constraints are not considered, slot drift is unbounded, and memory
// operations are processed in program order rather than issue order —
// the internal/rtl package models all three precisely.
type DOE struct {
	Mem  *mem.Hierarchy
	zero int

	// Pred, when non-nil, adds the future-work branch misprediction
	// approximation (Sec. VIII): a mispredicted conditional branch
	// stalls the front end for MispredictPenalty cycles after the
	// branch resolves. Leave nil for the paper's perfect-prediction
	// setup.
	Pred              *BranchPredictor
	MispredictPenalty uint64

	regWrite   [33]uint64
	slotLast   [sim.MaxIssue]uint64 // start cycle of the last op per slot
	frontStall uint64               // no op may start before this cycle
	maxDone    uint64
	ops        uint64
	instrs     uint64
}

// NewDOE builds the DOE model.
func NewDOE(m *isa.Model, h *mem.Hierarchy) *DOE {
	return &DOE{Mem: h, zero: m.Regs.ZeroReg}
}

// Name implements Model.
func (d *DOE) Name() string { return "DOE" }

// Cycles returns the approximated execution time.
func (d *DOE) Cycles() uint64 { return d.maxDone }

// Ops returns the number of operations measured.
func (d *DOE) Ops() uint64 { return d.ops }

// Instructions returns the number of instructions measured.
func (d *DOE) Instructions() uint64 { return d.instrs }

// Reset clears the model and its memory hierarchy.
func (d *DOE) Reset() {
	zero := d.zero
	h := d.Mem
	pred, pen := d.Pred, d.MispredictPenalty
	*d = DOE{Mem: h, zero: zero, Pred: pred, MispredictPenalty: pen}
	if pred != nil {
		pred.Reset()
	}
	h.Reset()
}

// Instruction implements sim.Observer.
func (d *DOE) Instruction(rec *sim.ExecRecord) {
	d.instrs++
	for i := range rec.D.Ops {
		op := &rec.D.Ops[i]
		d.ops++
		slot := int(op.Slot)
		// In-order issue within the slot: at least one cycle after the
		// last operation of the same slot.
		start := d.slotLast[slot] + 1
		if d.frontStall > start {
			start = d.frontStall
		}
		srcRegs(op, d.zero, func(r int) {
			if w := d.regWrite[r]; w > start {
				start = w
			}
		})
		var done uint64
		if m := rec.Mem[i]; m.Valid {
			done = d.Mem.Access(m.Addr, m.Write, slot, start)
		} else {
			done = start + uint64(op.Op.Latency)
		}
		dstRegs(op, d.zero, func(r int) { d.regWrite[r] = done })
		d.slotLast[slot] = start
		if done > d.maxDone {
			d.maxDone = done
		}
		if d.Pred != nil && op.Op.Class == isa.ClassBranch {
			// At most one control transfer per instruction, so the
			// record's Taken flag belongs to this operation.
			if d.Pred.Record(op.Addr, rec.Taken) {
				d.frontStall = done + d.MispredictPenalty
			}
		}
	}
}
