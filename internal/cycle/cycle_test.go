package cycle_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cycle"
	"repro/internal/ktest"
	"repro/internal/mem"
	"repro/internal/sim"
)

// runWith runs src (entry ISA isaName) with the given models attached.
func runWith(t *testing.T, isaName, src string, models ...cycle.Model) sim.ExitStatus {
	t.Helper()
	p := ktest.BuildProgram(t, isaName, src)
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 10_000_000
	c := ktest.NewCPU(t, p, opts)
	for _, m := range models {
		c.Attach(m)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// wrap builds a main around a body of instructions.
func wrap(body string) string {
	return ".global main\nmain:\n" + body + "\n\tli a0, 0\n\tret\n"
}

func TestILPIndependentOpsParallel(t *testing.T) {
	// 8 independent operations all start at cycle 0 and finish at 1;
	// together with main's epilogue the critical path stays tiny while
	// the op count grows, so OPC rises well above 1.
	var b strings.Builder
	for i := 8; i < 16; i++ {
		fmt.Fprintf(&b, "\taddi r%d, zero, %d\n", i, i)
	}
	ilp := cycle.NewILP(ktest.Model(t))
	runWith(t, "RISC", wrap(b.String()), ilp)
	if got := cycle.OPC(ilp); got < 1.2 {
		t.Fatalf("OPC = %.2f, want > 1.2 for independent ops", got)
	}
}

func TestILPDependentChainSerializes(t *testing.T) {
	// A chain t0 += t0 of length 32: the critical path grows with the
	// chain, pinning OPC near 1.
	var b strings.Builder
	b.WriteString("\taddi t0, zero, 1\n")
	for i := 0; i < 32; i++ {
		b.WriteString("\tadd t0, t0, t0\n")
	}
	ilp := cycle.NewILP(ktest.Model(t))
	runWith(t, "RISC", wrap(b.String()), ilp)
	if got := cycle.OPC(ilp); got > 1.5 {
		t.Fatalf("OPC = %.2f, want near 1 for a dependency chain", got)
	}
	if ilp.Cycles() < 32 {
		t.Fatalf("cycles = %d, chain must cost >= 32", ilp.Cycles())
	}
}

func TestILPBranchBarrier(t *testing.T) {
	// Independent ops separated by branches cannot be merged: on VLIW
	// only operations until the next branch can be scheduled together.
	flat := wrap(strings.Repeat("\taddi t0, zero, 1\n\taddi t1, zero, 2\n", 8))
	ilpFlat := cycle.NewILP(ktest.Model(t))
	runWith(t, "RISC", flat, ilpFlat)

	var b strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "\taddi t0, zero, 1\n\taddi t1, zero, 2\nl%d:\tbeq zero, t2, l%d_next\nl%d_next:\n", i, i, i)
	}
	ilpBr := cycle.NewILP(ktest.Model(t))
	runWith(t, "RISC", wrap(b.String()), ilpBr)
	if ilpBr.Cycles() <= ilpFlat.Cycles() {
		t.Fatalf("branch barrier missing: %d cycles with branches vs %d without",
			ilpBr.Cycles(), ilpFlat.Cycles())
	}
}

func TestILPPessimisticMemoryDependencies(t *testing.T) {
	// Loads from disjoint addresses still serialize behind the last
	// store (no alias analysis).
	src := wrap(`
	addi sp, sp, -32
	sw zero, 0(sp)
	lw t0, 4(sp)
	sw t0, 8(sp)
	lw t1, 12(sp)
	addi sp, sp, 32
`)
	ilp := cycle.NewILP(ktest.Model(t))
	runWith(t, "RISC", src, ilp)
	// Chain: sw(start s0) -> lw(start>=s0) -> sw(start>=...) -> lw.
	// With the barriers the critical path exceeds a handful of cycles.
	if ilp.Cycles() < 6 {
		t.Fatalf("cycles = %d; pessimistic memory model looks missing", ilp.Cycles())
	}
}

func TestAIESerializesEverything(t *testing.T) {
	// n ALU instructions of latency 1 cost exactly n cycles on AIE
	// (plus the surrounding crt0/epilogue instructions).
	aie := cycle.NewAIE(mem.Flat(3))
	st := runWith(t, "RISC", wrap(strings.Repeat("\taddi t0, t0, 1\n", 20)), aie)
	wantMin := st.Instructions // every instruction costs >= 1 cycle
	if aie.Cycles() < wantMin {
		t.Fatalf("AIE cycles %d < instructions %d", aie.Cycles(), wantMin)
	}
	if aie.Instructions() != st.Instructions {
		t.Fatalf("AIE saw %d instructions, CPU executed %d", aie.Instructions(), st.Instructions)
	}
}

func TestAIEMemoryDelaysAccumulate(t *testing.T) {
	// With a 10-cycle flat memory each load adds 10 cycles.
	src := wrap(`
	addi sp, sp, -16
	lw t0, 0(sp)
	lw t1, 4(sp)
	lw t2, 8(sp)
	addi sp, sp, 16
`)
	fast := cycle.NewAIE(mem.Flat(1))
	runWith(t, "RISC", src, fast)
	slow := cycle.NewAIE(mem.Flat(10))
	runWith(t, "RISC", src, slow)
	if slow.Cycles() < fast.Cycles()+3*9 {
		t.Fatalf("flat-10 = %d, flat-1 = %d: loads not charged", slow.Cycles(), fast.Cycles())
	}
}

func TestDOEOverlapsLatencies(t *testing.T) {
	// 16 independent multiplications: AIE charges the full 3-cycle
	// latency per instruction (atomic execution), while DOE issues one
	// per cycle and overlaps the latencies — the dynamic-issue win.
	var b strings.Builder
	b.WriteString("\taddi s0, zero, 3\n\taddi s1, zero, 5\n")
	for i := 8; i < 16; i++ {
		fmt.Fprintf(&b, "\tmul r%d, s0, s1\n", i)
		fmt.Fprintf(&b, "\tmul r%d, s1, s0\n", i+16)
	}
	src := wrap(b.String())
	doe := cycle.NewDOE(ktest.Model(t), mem.Flat(3))
	runWith(t, "RISC", src, doe)
	aie := cycle.NewAIE(mem.Flat(3))
	runWith(t, "RISC", src, aie)
	if doe.Cycles()+10 > aie.Cycles() {
		t.Fatalf("DOE (%d) does not overlap mul latencies vs AIE (%d)", doe.Cycles(), aie.Cycles())
	}

	// The same count of *dependent* multiplications chains fully: DOE
	// then pays the full 3 cycles per mul too.
	var c strings.Builder
	c.WriteString("\taddi t0, zero, 3\n")
	for i := 0; i < 16; i++ {
		c.WriteString("\tmul t0, t0, t0\n")
	}
	doeChain := cycle.NewDOE(ktest.Model(t), mem.Flat(3))
	runWith(t, "RISC", wrap(c.String()), doeChain)
	if doeChain.Cycles() < 16*3 {
		t.Fatalf("dependent mul chain = %d cycles, want >= 48", doeChain.Cycles())
	}
}

func TestDOETrueDependenciesRespected(t *testing.T) {
	// Two slots with a cross-slot dependency: slot 1 consumes slot 0's
	// result; the consumer cannot start before the producer completes.
	src := ".isa VLIW2\n" + wrap(`
	addi t0, zero, 7
	{ mul t1, t0, t0 ; nop }
	{ nop ; add t2, t1, t1 }
`)
	doe := cycle.NewDOE(ktest.Model(t), mem.Flat(3))
	runWith(t, "VLIW2", src, doe)
	// mul latency 3 must appear in the critical path: the consumer's
	// completion is >= mul completion + 1.
	if doe.Cycles() < 4 {
		t.Fatalf("cycles = %d, cross-slot dependency ignored", doe.Cycles())
	}
}

func TestModelOrderingProperty(t *testing.T) {
	// For random arithmetic-only RISC programs: the infinite-resource
	// ILP bound never exceeds the fully-serialized AIE count, and DOE
	// sits at or below AIE up to the per-instruction issue-shift edge
	// (DOE's in-order-issue rule can add at most one cycle per
	// instruction relative to AIE's atomic accounting).
	rng := rand.New(rand.NewSource(11))
	regs := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	for trial := 0; trial < 25; trial++ {
		var b strings.Builder
		for _, r := range regs {
			fmt.Fprintf(&b, "\taddi %s, zero, %d\n", r, rng.Intn(100))
		}
		n := 10 + rng.Intn(40)
		for i := 0; i < n; i++ {
			op := []string{"add", "sub", "xor", "and", "or", "mul"}[rng.Intn(6)]
			fmt.Fprintf(&b, "\t%s %s, %s, %s\n", op,
				regs[rng.Intn(len(regs))], regs[rng.Intn(len(regs))], regs[rng.Intn(len(regs))])
		}
		src := wrap(b.String())
		m := ktest.Model(t)
		ilp := cycle.NewILP(m)
		doe := cycle.NewDOE(m, mem.Flat(3))
		aie := cycle.NewAIE(mem.Flat(3))
		st := runWith(t, "RISC", src, ilp, doe, aie)
		if ilp.Cycles() > aie.Cycles() {
			t.Fatalf("trial %d: ILP (%d) exceeds AIE (%d)\n%s",
				trial, ilp.Cycles(), aie.Cycles(), src)
		}
		if doe.Cycles() > aie.Cycles()+st.Instructions {
			t.Fatalf("trial %d: DOE (%d) exceeds AIE (%d) + instructions (%d)\n%s",
				trial, doe.Cycles(), aie.Cycles(), st.Instructions, src)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	m := ktest.Model(t)
	src := wrap("\taddi t0, zero, 1\n")
	models := []cycle.Model{
		cycle.NewILP(m),
		cycle.NewAIE(mem.Paper()),
		cycle.NewDOE(m, mem.Paper()),
	}
	for _, md := range models {
		runWith(t, "RISC", src, md)
		if md.Cycles() == 0 || md.Ops() == 0 {
			t.Fatalf("%s: no cycles recorded", md.Name())
		}
		md.Reset()
		if md.Cycles() != 0 || md.Ops() != 0 {
			t.Fatalf("%s: reset did not clear", md.Name())
		}
	}
}

func TestOPCZeroSafe(t *testing.T) {
	if got := cycle.OPC(cycle.NewILP(ktest.Model(t))); got != 0 {
		t.Fatalf("OPC on empty model = %f", got)
	}
}
