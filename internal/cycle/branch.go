package cycle

// BranchPredictor is a table of 2-bit saturating counters indexed by
// the branch operation's word address — the classic bimodal predictor.
// The paper's evaluation assumes perfect branch prediction (Sec. VII-C)
// and names misprediction modelling as future work (Sec. VIII); the
// predictor is therefore optional: attach one to the DOE model (or the
// RTL pipeline) to approximate front-end refill penalties.
type BranchPredictor struct {
	table []uint8
	mask  uint32

	Lookups    uint64
	Mispredict uint64
}

// NewBranchPredictor builds a predictor with the given number of
// entries (rounded up to a power of two; default 512).
func NewBranchPredictor(entries int) *BranchPredictor {
	if entries <= 0 {
		entries = 512
	}
	n := 1
	for n < entries {
		n <<= 1
	}
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &BranchPredictor{table: t, mask: uint32(n - 1)}
}

func (p *BranchPredictor) idx(addr uint32) uint32 { return (addr >> 2) & p.mask }

// Predict returns the predicted direction for the branch at addr.
func (p *BranchPredictor) Predict(addr uint32) bool {
	return p.table[p.idx(addr)] >= 2
}

// Record consumes one executed conditional branch: it compares the
// prediction with the actual direction, updates the counter, and
// reports whether the branch was mispredicted.
func (p *BranchPredictor) Record(addr uint32, taken bool) bool {
	p.Lookups++
	i := p.idx(addr)
	predicted := p.table[i] >= 2
	if taken && p.table[i] < 3 {
		p.table[i]++
	}
	if !taken && p.table[i] > 0 {
		p.table[i]--
	}
	if predicted != taken {
		p.Mispredict++
		return true
	}
	return false
}

// MissRate returns mispredictions per lookup.
func (p *BranchPredictor) MissRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredict) / float64(p.Lookups)
}

// Reset clears counters and statistics.
func (p *BranchPredictor) Reset() {
	for i := range p.table {
		p.table[i] = 1
	}
	p.Lookups, p.Mispredict = 0, 0
}
