package cycle_test

import (
	"testing"

	"repro/internal/cycle"
	"repro/internal/ktest"
	"repro/internal/mem"
)

func TestModelNamesAndCounters(t *testing.T) {
	m := ktest.Model(t)
	ilp := cycle.NewILP(m)
	aie := cycle.NewAIE(mem.Flat(3))
	doe := cycle.NewDOE(m, mem.Flat(3))
	if ilp.Name() != "ILP" || aie.Name() != "AIE" || doe.Name() != "DOE" {
		t.Fatalf("names: %s %s %s", ilp.Name(), aie.Name(), doe.Name())
	}
	runWith(t, "RISC", wrap("\taddi t0, zero, 1\n\taddi t1, zero, 2\n"), ilp, aie, doe)
	if ilp.Instructions() != aie.Instructions() || aie.Instructions() != doe.Instructions() {
		t.Fatalf("instruction counts disagree: %d %d %d",
			ilp.Instructions(), aie.Instructions(), doe.Instructions())
	}
	if ilp.Instructions() == 0 {
		t.Fatal("no instructions observed")
	}
}

// An all-NOP VLIW instruction still spends its issue cycle on AIE.
func TestAIEAllNopBundle(t *testing.T) {
	src := ".isa VLIW2\n" + wrap("\t{ nop ; nop }\n\t{ nop ; nop }\n")
	aie := cycle.NewAIE(mem.Flat(3))
	st := runWith(t, "VLIW2", src, aie)
	if aie.Cycles() < st.Instructions {
		t.Fatalf("AIE %d cycles < %d instructions (NOP bundles uncharged)",
			aie.Cycles(), st.Instructions)
	}
}

// The DOE misprediction state must also clear on Reset.
func TestDOEResetKeepsPredictorConfig(t *testing.T) {
	m := ktest.Model(t)
	doe := cycle.NewDOE(m, mem.Flat(3))
	doe.Pred = cycle.NewBranchPredictor(64)
	doe.MispredictPenalty = 8
	runWith(t, "RISC", wrap(`
	li t0, 0
	li t1, 10
l:	addi t0, t0, 1
	bne t0, t1, l
`), doe)
	if doe.Pred.Lookups == 0 {
		t.Fatal("predictor unused")
	}
	doe.Reset()
	if doe.Pred == nil || doe.MispredictPenalty != 8 {
		t.Fatal("reset dropped the predictor configuration")
	}
	if doe.Pred.Lookups != 0 {
		t.Fatal("reset kept predictor statistics")
	}
	if doe.Cycles() != 0 {
		t.Fatal("reset kept cycles")
	}
}

func TestRecommendBounds(t *testing.T) {
	m := ktest.Model(t)
	if got := cycle.Recommend(m, 0.5, 0.7).Issue; got != 1 {
		t.Errorf("tiny ILP recommended issue %d", got)
	}
	if got := cycle.Recommend(m, 100, 0.7).Issue; got != 8 {
		t.Errorf("huge ILP recommended issue %d, want the widest", got)
	}
	// Bogus utilization falls back to the default.
	if got := cycle.Recommend(m, 3, -1).Issue; got < 2 || got > 4 {
		t.Errorf("ILP 3 with default utilization -> issue %d", got)
	}
}
