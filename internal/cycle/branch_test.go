package cycle_test

import (
	"testing"

	"repro/internal/cycle"
	"repro/internal/ktest"
	"repro/internal/mem"
)

func TestBranchPredictorCounters(t *testing.T) {
	p := cycle.NewBranchPredictor(16)
	addr := uint32(0x1000)
	// Weakly not-taken start: the first taken branch mispredicts.
	if !p.Record(addr, true) {
		t.Fatal("first taken branch should mispredict")
	}
	// Now weakly taken: another taken branch predicts correctly.
	if p.Record(addr, true) {
		t.Fatal("second taken branch should predict")
	}
	// Saturated taken: a single not-taken mispredicts, then recovers.
	if !p.Record(addr, false) {
		t.Fatal("direction flip should mispredict")
	}
	if p.Lookups != 3 || p.Mispredict != 2 {
		t.Fatalf("stats = %d/%d", p.Mispredict, p.Lookups)
	}
	if got := p.MissRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("miss rate = %f", got)
	}
	p.Reset()
	if p.Lookups != 0 || p.MissRate() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestBranchPredictorLearnsLoops(t *testing.T) {
	p := cycle.NewBranchPredictor(64)
	addr := uint32(0x2000)
	miss := 0
	for i := 0; i < 100; i++ {
		if p.Record(addr, true) {
			miss++
		}
	}
	if miss > 2 {
		t.Fatalf("loop branch mispredicted %d times", miss)
	}
}

// A data-dependent unpredictable branch costs DOE cycles once the
// misprediction model is attached; a stable loop branch costs almost
// nothing.
func TestDOEMispredictionPenalty(t *testing.T) {
	m := ktest.Model(t)
	stable := wrap(`
	li t0, 0
	li t1, 400
sl:	addi t0, t0, 1
	bne t0, t1, sl
`)
	// Alternate taken/not-taken via the low bit (the bimodal counter
	// cannot learn a strict alternation from a weak state).
	alternating := wrap(`
	li t0, 0
	li t1, 400
	li t3, 0
al:	andi t2, t0, 1
	beq t2, zero, skip
	addi t3, t3, 1
skip:	addi t0, t0, 1
	bne t0, t1, al
`)
	measure := func(src string, penalty uint64) (uint64, float64) {
		doe := cycle.NewDOE(m, mem.Flat(3))
		if penalty > 0 {
			doe.Pred = cycle.NewBranchPredictor(512)
			doe.MispredictPenalty = penalty
		}
		runWith(t, "RISC", src, doe)
		miss := 0.0
		if doe.Pred != nil {
			miss = doe.Pred.MissRate()
		}
		return doe.Cycles(), miss
	}

	stableOff, _ := measure(stable, 0)
	stableOn, stableMiss := measure(stable, 8)
	if stableMiss > 0.05 {
		t.Errorf("stable loop miss rate = %.2f", stableMiss)
	}
	if float64(stableOn) > float64(stableOff)*1.1 {
		t.Errorf("well-predicted loop should cost little: %d -> %d", stableOff, stableOn)
	}

	altOff, _ := measure(alternating, 0)
	altOn, altMiss := measure(alternating, 8)
	if altMiss < 0.2 {
		t.Errorf("alternating branch miss rate = %.2f, want substantial", altMiss)
	}
	if altOn <= altOff {
		t.Errorf("misprediction penalty had no effect: %d -> %d", altOff, altOn)
	}
	// Sanity: the penalty scales with the configured cost.
	altBig, _ := measure(alternating, 32)
	if altBig <= altOn {
		t.Errorf("larger penalty did not increase cycles: %d vs %d", altBig, altOn)
	}
}
