// Package ktest provides shared helpers for the test suites: one-call
// assemble+link+load pipelines so unit tests of the simulator, the
// cycle models and the RTL reference can run small programs.
package ktest

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/kelf"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/targetgen"
)

// Model returns the shared KAHRISMA model.
func Model(t testing.TB) *isa.Model {
	t.Helper()
	m, err := targetgen.Kahrisma()
	if err != nil {
		t.Fatalf("targetgen: %v", err)
	}
	return m
}

// BuildExe assembles sources and links them with default options
// (crt0 + libc stubs) into an executable.
func BuildExe(t testing.TB, entryISA string, sources ...string) *kelf.File {
	t.Helper()
	m := Model(t)
	var objs []*kelf.File
	for i, src := range sources {
		o, err := asm.Assemble(m, testName(t, i), src)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		objs = append(objs, o)
	}
	opt := link.Defaults()
	opt.EntryISA = entryISA
	exe, err := link.Link(m, objs, opt)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return exe
}

func testName(t testing.TB, i int) string {
	return t.Name() + ".s"
}

// LoadExe wraps sim.LoadProgram with test plumbing.
func LoadExe(t testing.TB, exe *kelf.File) *sim.Program {
	t.Helper()
	p, err := sim.LoadProgram(exe)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

// BuildProgram assembles, links and loads in one call.
func BuildProgram(t testing.TB, entryISA string, sources ...string) *sim.Program {
	t.Helper()
	return LoadExe(t, BuildExe(t, entryISA, sources...))
}

// NewCPU builds a CPU with the given options over a fresh program load.
func NewCPU(t testing.TB, p *sim.Program, opts sim.Options) *sim.CPU {
	t.Helper()
	c, err := sim.New(Model(t), p, opts)
	if err != nil {
		t.Fatalf("cpu: %v", err)
	}
	return c
}

// Run builds a CPU with default options and runs to completion.
func Run(t testing.TB, p *sim.Program) (*sim.CPU, sim.ExitStatus) {
	t.Helper()
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 50_000_000
	c := NewCPU(t, p, opts)
	st, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c, st
}
