package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

const spinSrc = `
int main() {
    int x = 0;
    while (1) { x = x + 1; }
    return x;
}
`

// Admission control rejects malformed, invalid and oversized requests
// synchronously with the documented status codes, before a job record
// or queue slot exists.
func TestAdmissionRejections(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, MaxRequestBytes: 4096})

	reqJSON := func(req server.JobRequest) string {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantErr    string
	}{
		{
			name:       "malformed json",
			body:       `{"isa": "RISC",`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "malformed request",
		},
		{
			name:       "unknown field",
			body:       `{"isa": "RISC", "sources": {"a.c": "int main(){return 0;}"}, "bogus": 1}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "bogus",
		},
		{
			name:       "no sources",
			body:       reqJSON(server.JobRequest{ISA: "RISC"}),
			wantStatus: http.StatusBadRequest,
			wantErr:    "sources",
		},
		{
			name:       "unknown isa",
			body:       reqJSON(server.JobRequest{ISA: "MIPS", Sources: map[string]string{"a.c": "int main(){return 0;}"}}),
			wantStatus: http.StatusBadRequest,
			wantErr:    "unknown instance",
		},
		{
			name:       "unknown model",
			body:       reqJSON(server.JobRequest{ISA: "RISC", Sources: map[string]string{"a.c": "int main(){return 0;}"}, Models: []string{"WARP"}}),
			wantStatus: http.StatusBadRequest,
			wantErr:    "unknown cycle model",
		},
		{
			name:       "bad lang",
			body:       reqJSON(server.JobRequest{ISA: "RISC", Lang: "fortran", Sources: map[string]string{"a.f": "X"}}),
			wantStatus: http.StatusBadRequest,
			wantErr:    "lang",
		},
		{
			name: "oversized request",
			body: reqJSON(server.JobRequest{ISA: "RISC", Sources: map[string]string{
				"a.c": "// " + strings.Repeat("x", 8192) + "\nint main(){return 0;}",
			}}),
			wantStatus: http.StatusRequestEntityTooLarge,
			wantErr:    "exceeds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts, []byte(tc.body))
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, data)
			}
			var apiErr server.APIError
			if err := json.Unmarshal(data, &apiErr); err != nil {
				t.Fatalf("non-JSON error body %q: %v", data, err)
			}
			if !strings.Contains(apiErr.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", apiErr.Error, tc.wantErr)
			}
		})
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, `kservd_jobs_rejected_total{reason="invalid"}`); got < 6 {
		t.Errorf("invalid rejections = %v, want >= 6", got)
	}
	if got := metricValue(t, body, `kservd_jobs_rejected_total{reason="oversized"}`); got < 1 {
		t.Errorf("oversized rejections = %v, want >= 1", got)
	}
}

// With every queue slot held by spinning jobs, further submissions get
// 429 + Retry-After; an expired drain deadline cancels the spinners.
func TestBackpressure429AndForcedDrain(t *testing.T) {
	s, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2})

	spin := server.JobRequest{ISA: "RISC", Sources: map[string]string{"spin.c": spinSrc}}
	first := submit(t, ts, spin)
	second := submit(t, ts, spin)

	// Both slots are held (the spinners only stop when canceled), so
	// the third submission must bounce with the backpressure contract.
	b, _ := json.Marshal(spin)
	resp, data := post(t, ts, b)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission: status %d, body %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var apiErr server.APIError
	if err := json.Unmarshal(data, &apiErr); err != nil || apiErr.RetryAfterS != 1 {
		t.Errorf("429 body %s (err %v)", data, err)
	}

	// A too-short drain deadline forces cancellation of the in-flight
	// spinners; Shutdown reports the missed deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown error = %v, want DeadlineExceeded", err)
	}
	for _, id := range []string{first.ID, second.ID} {
		res := pollResult(t, ts, id)
		if res.State != server.StateFailed || !strings.Contains(res.Error, "canceled") {
			t.Errorf("spinner %s after forced drain: %+v, want failed/canceled", id, res)
		}
	}

	// Draining servers refuse new work on every admission path.
	resp, data = post(t, ts, b)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: status %d, body %s", resp.StatusCode, data)
	}
	hResp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d", hResp.StatusCode)
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, `kservd_jobs_rejected_total{reason="queue_full"}`); got < 1 {
		t.Errorf("queue_full rejections = %v, want >= 1", got)
	}
	if got := metricValue(t, body, `kservd_jobs_rejected_total{reason="draining"}`); got < 1 {
		t.Errorf("draining rejections = %v, want >= 1", got)
	}
	if got := metricValue(t, body, "kservd_up"); got != 0 {
		t.Errorf("kservd_up = %v while draining, want 0", got)
	}
}

// A graceful shutdown with headroom completes in-flight jobs — the
// SIGTERM drain path of cmd/kservd — and their results stay fetchable
// afterwards.
func TestGracefulDrainCompletesInFlightJobs(t *testing.T) {
	s, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})

	work := server.JobRequest{
		ISA: "RISC",
		Sources: map[string]string{"work.c": `
int main() {
    int s = 0;
    for (int i = 0; i < 200000; i++) s += i & 15;
    printf("s=%d\n", s);
    return 42;
}
`},
		Models: []string{"DOE"},
	}
	st := submit(t, ts, work)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}

	res := pollResult(t, ts, st.ID)
	if res.State != server.StateDone || res.ExitCode != 42 {
		t.Fatalf("drained job: %+v, want done with exit 42", res)
	}
	if res.Cycles["DOE"] == 0 {
		t.Error("drained job lost its cycle counts")
	}
}
