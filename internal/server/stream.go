package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/trace"
)

// handleEvents serves GET /v1/jobs/{id}/events: the job's live event
// stream as Server-Sent Events (docs/streaming.md). Wire format, one
// frame per event:
//
//	id: <seq>
//	event: <op|isa_switch|progress|campaign_progress|done|gap>
//	data: <JSON payload>
//
// Idle streams carry ": heartbeat" comments every
// Config.HeartbeatInterval. A reconnecting client sends the standard
// Last-Event-ID header (or ?from=<seq>) and resumes at the next
// sequence number; events already evicted from the bounded ring are
// reported as one "gap" frame carrying the missed count, never
// silently skipped. The handler returns when the job's stream closes
// (completion, failure, or drain cancellation) or the client goes
// away. Streaming works while the server drains — that is exactly when
// watching a job matters.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rec := s.store.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown job"})
		return
	}
	s.serveSSE(w, r, rec.stream)
}

// serveSSE is the shared SSE pump behind the job and campaign event
// endpoints: resume handling, heartbeats, gap frames and the event
// loop over one trace.Streamer.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, stream *trace.Streamer) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, APIError{Error: "response writer does not support streaming"})
		return
	}

	from := uint64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		last, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, APIError{Error: "malformed Last-Event-ID: " + v})
			return
		}
		from = last + 1
	} else if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, APIError{Error: "malformed from parameter: " + v})
			return
		}
		from = n
	}

	sub := stream.Subscribe(from)
	defer sub.Cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // intermediaries must not buffer the stream
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	s.metrics.streamSubscribers.Add(1)
	defer s.metrics.streamSubscribers.Add(-1)

	ctx := r.Context()
	for {
		// Bound each wait by the heartbeat interval so idle streams
		// stay visibly alive through proxies and clients.
		waitCtx, cancel := context.WithTimeout(ctx, s.cfg.HeartbeatInterval)
		batch, missed, err := sub.Next(waitCtx)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return // client disconnected
			}
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		if missed > 0 {
			// The ring evicted events this subscriber had not read yet
			// (slow consumer or a resume from too far back).
			s.metrics.streamMissed.Add(uint64(missed))
			if _, err := fmt.Fprintf(w, "event: gap\ndata: {\"missed\":%d}\n\n", missed); err != nil {
				return
			}
		}
		if batch == nil && missed == 0 {
			return // stream closed and fully delivered
		}
		wrote := time.Now()
		for i := range batch {
			ev := &batch[i]
			data, err := json.Marshal(ev)
			if err != nil {
				continue // cannot happen for these payloads
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
		}
		s.metrics.streamEvents.Add(uint64(len(batch)))
		fl.Flush()
		// Fan-out lag: how long this subscriber held the pump to encode,
		// write and flush one ready batch — the time other work queues
		// behind a slow client.
		s.metrics.sseLag.Observe(time.Since(wrote).Seconds())
	}
}
