package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	kahrisma "repro"
	"repro/internal/prof/span"
)

// BatchRequest is the body of POST /v1/batches: an ordered list of jobs
// submitted, admitted and simulated as one unit. The whole batch maps
// onto a single kahrisma.Batch handle, so its jobs share the pool's
// recycled per-job state and sharded dispatch; each item is also a
// regular job record, so the per-job endpoints (/v1/jobs/{id},
// /result, /profile, /events) work on batch items unchanged.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// validate rejects batches that can never run; per-item failures name
// their index so clients can fix the offending job.
func (r *BatchRequest) validate(base *kahrisma.System) error {
	if len(r.Jobs) == 0 {
		return fmt.Errorf("jobs: at least one job required")
	}
	for i := range r.Jobs {
		if err := r.Jobs[i].validate(base); err != nil {
			return fmt.Errorf("jobs[%d]: %w", i, err)
		}
	}
	return nil
}

// BatchStatus is the body of GET /v1/batches/{id} and of the 202 accept
// response: the aggregate state plus every item's job status,
// index-aligned with the submitted jobs.
type BatchStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // running | done | failed
	// Error is the first item error in submission order (terminal
	// batches only).
	Error      string `json:"error,omitempty"`
	JobsTotal  int    `json:"jobs_total"`
	JobsDone   int    `json:"jobs_done"`
	JobsFailed int    `json:"jobs_failed"`
	// Jobs holds the per-item statuses; their IDs address the regular
	// job endpoints (/v1/jobs/{id}/result, /profile, /events).
	Jobs        []JobStatus `json:"jobs"`
	SubmittedAt time.Time   `json:"submitted_at"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
}

// BatchResult is the body of GET /v1/batches/{id}/results: one
// aggregate object carrying every item's result plus the batch-level
// merged counters (kahrisma.BatchStats).
type BatchResult struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Error is the first item error in submission order; empty when
	// every job succeeded.
	Error      string `json:"error,omitempty"`
	JobsTotal  int    `json:"jobs_total"`
	JobsFailed int    `json:"jobs_failed"`
	// Jobs holds the per-item results, index-aligned with the request.
	Jobs []JobResult `json:"jobs"`

	// Instructions/Operations retired and Cycles per cycle model,
	// merged across the batch's items.
	Instructions uint64            `json:"instructions"`
	Operations   uint64            `json:"operations"`
	Cycles       map[string]uint64 `json:"cycles,omitempty"`
	// SimWallMS is the summed per-item simulation time on the pool
	// workers; WallMS the end-to-end batch time on the server.
	SimWallMS float64 `json:"sim_wall_ms"`
	WallMS    float64 `json:"wall_ms"`
}

// batchRecord is the server-side state of one submitted batch; the
// per-item state lives in the item jobRecords.
type batchRecord struct {
	id        string
	submitted time.Time
	jobs      []*jobRecord // index-aligned with the request's jobs
	trace     span.SpanContext

	mu       sync.Mutex
	state    string
	err      string
	stats    kahrisma.BatchStats
	finished time.Time
}

// finish transitions the batch to its terminal state exactly once,
// after every item record finished.
func (b *batchRecord) finish(stats kahrisma.BatchStats, firstErr error) {
	b.mu.Lock()
	b.state = StateDone
	if firstErr != nil {
		b.state = StateFailed
		b.err = firstErr.Error()
	}
	b.stats = stats
	b.finished = time.Now()
	b.mu.Unlock()
}

func (b *batchRecord) status() BatchStatus {
	b.mu.Lock()
	st := BatchStatus{
		ID:          b.id,
		State:       b.state,
		Error:       b.err,
		JobsTotal:   len(b.jobs),
		SubmittedAt: b.submitted,
	}
	if !b.finished.IsZero() {
		f := b.finished
		st.FinishedAt = &f
	}
	b.mu.Unlock()
	st.Jobs = make([]JobStatus, len(b.jobs))
	for i, jr := range b.jobs {
		st.Jobs[i] = jr.status()
		switch st.Jobs[i].State {
		case StateDone:
			st.JobsDone++
		case StateFailed:
			st.JobsFailed++
		}
	}
	return st
}

// resultJSON renders the terminal aggregate; ok is false while the
// batch is still in flight.
func (b *batchRecord) resultJSON() (BatchResult, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateDone && b.state != StateFailed {
		return BatchResult{ID: b.id, State: b.state}, false
	}
	out := BatchResult{
		ID:           b.id,
		State:        b.state,
		Error:        b.err,
		JobsTotal:    len(b.jobs),
		JobsFailed:   b.stats.Failed,
		Instructions: b.stats.Instructions,
		Operations:   b.stats.Operations,
		SimWallMS:    float64(b.stats.Wall) / float64(time.Millisecond),
		WallMS:       float64(b.finished.Sub(b.submitted)) / float64(time.Millisecond),
	}
	if len(b.stats.Cycles) > 0 {
		out.Cycles = make(map[string]uint64, len(b.stats.Cycles))
		for m, c := range b.stats.Cycles {
			out.Cycles[m] = c
		}
	}
	out.Jobs = make([]JobResult, len(b.jobs))
	for i, jr := range b.jobs {
		out.Jobs[i], _ = jr.resultJSON()
	}
	return out, true
}

// batchStore indexes batch records by id with the same bounded
// retention policy as jobStore.
type batchStore struct {
	mu          sync.Mutex
	batches     map[string]*batchRecord
	finished    []string // completion order, oldest first
	maxFinished int
}

func newBatchStore(maxFinished int) *batchStore {
	if maxFinished < 1 {
		maxFinished = 1
	}
	return &batchStore{batches: map[string]*batchRecord{}, maxFinished: maxFinished}
}

func (s *batchStore) create(jobs []*jobRecord, trace span.SpanContext) *batchRecord {
	rec := &batchRecord{
		id:        newID(),
		submitted: time.Now(),
		jobs:      jobs,
		trace:     trace,
		state:     StateRunning,
	}
	s.mu.Lock()
	s.batches[rec.id] = rec
	s.mu.Unlock()
	return rec
}

func (s *batchStore) get(id string) *batchRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches[id]
}

func (s *batchStore) markFinished(id string) {
	s.mu.Lock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.maxFinished {
		delete(s.batches, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}

// handleBatchSubmit serves POST /v1/batches: validate every job,
// acquire one admission slot per job atomically (the batch is admitted
// whole or answered 429 whole), create the item job records plus the
// batch record, and run the batch on a detached goroutine.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectJob(r, "batch", rejectDraining)
		writeJSON(w, http.StatusServiceUnavailable, APIError{Error: "server is draining"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.rejectJob(r, "batch", rejectOversized)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				APIError{Error: "request body exceeds " + strconv.FormatInt(tooBig.Limit, 10) + " bytes"})
			return
		}
		s.rejectJob(r, "batch", rejectInvalid)
		writeJSON(w, http.StatusBadRequest, APIError{Error: "malformed request: " + err.Error()})
		return
	}
	if err := req.validate(s.base); err != nil {
		s.rejectJob(r, "batch", rejectInvalid)
		writeJSON(w, http.StatusBadRequest, APIError{Error: err.Error()})
		return
	}
	if !s.adm.tryAcquireN(len(req.Jobs)) {
		s.rejectJob(r, "batch", rejectQueueFull)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			APIError{Error: "job queue cannot admit " + strconv.Itoa(len(req.Jobs)) + " more jobs", RetryAfterS: 1})
		return
	}
	s.metrics.batchesAccepted.Add(1)
	s.metrics.batchJobs.Add(uint64(len(req.Jobs)))
	s.metrics.accepted.Add(uint64(len(req.Jobs)))
	s.metrics.batchSize.Observe(float64(len(req.Jobs)))

	jobs := make([]*jobRecord, len(req.Jobs))
	for i := range jobs {
		jobs[i] = s.store.create(s.cfg.StreamRingSize)
	}
	var sc span.SpanContext
	if parsed, ok := span.ParseTraceparent(r.Header.Get("traceparent")); ok {
		sc = parsed
	}
	rec := s.batches.create(jobs, sc)
	s.jobsWG.Add(1)
	go s.runBatch(rec, &req)
	w.Header().Set("Location", "/v1/batches/"+rec.id)
	writeJSON(w, http.StatusAccepted, rec.status())
}

// runBatch executes one admitted batch on its own goroutine: resolve
// every item's executable through the artifact caches, submit the
// whole set as one kahrisma.Batch (recycled per-job state, sharded
// dispatch), then record per-item and aggregate outcomes.
func (s *Server) runBatch(rec *batchRecord, req *BatchRequest) {
	defer s.jobsWG.Done()
	defer s.adm.releaseN(len(req.Jobs))

	ctx := s.traceCtx(rec.trace)
	ctx, bsp := span.Start(ctx, "batch")
	bsp.SetAttr("batch_id", rec.id)
	bsp.SetAttr("jobs", len(req.Jobs))
	defer bsp.End()

	// Build phase: items whose toolchain fails finish immediately as
	// failed jobs; the healthy remainder is submitted as one batch.
	items := make([]kahrisma.BatchItem, 0, len(req.Jobs))
	submitted := make([]int, 0, len(req.Jobs)) // item k -> request index
	for i := range req.Jobs {
		jr := rec.jobs[i]
		exe, opts, err := s.prepareJob(ctx, jr, &req.Jobs[i])
		if err != nil {
			s.finishBatchJob(jr, &req.Jobs[i], nil, err)
			continue
		}
		jr.setState(StateRunning)
		items = append(items, kahrisma.BatchItem{Exe: exe, Opts: opts})
		submitted = append(submitted, i)
	}

	var stats kahrisma.BatchStats
	stats.Jobs = len(req.Jobs)
	stats.Failed = len(req.Jobs) - len(items)
	stats.Cycles = map[string]uint64{}
	if len(items) > 0 {
		_, sp := span.Start(ctx, "simulate")
		batch := s.pool.SubmitBatch(s.jobsCtx, items)
		for k, job := range batch.Jobs() {
			res, err := job.Wait()
			s.finishBatchJob(rec.jobs[submitted[k]], &req.Jobs[submitted[k]], res, err)
		}
		st := batch.Stats()
		sp.SetAttr("instructions", st.Instructions)
		if st.Failed > 0 {
			sp.SetError(fmt.Errorf("%d of %d jobs failed", st.Failed, len(items)))
		}
		sp.End()
		stats.Failed += st.Failed
		stats.Instructions = st.Instructions
		stats.Operations = st.Operations
		stats.Wall = st.Wall
		for m, c := range st.Cycles {
			stats.Cycles[m] += c
		}
	}

	err := s.firstBatchError(rec)
	rec.finish(stats, err)
	s.batches.markFinished(rec.id)
	if stats.Failed > 0 {
		bsp.SetError(err)
		s.metrics.batchesFailed.Add(1)
		s.log.Warn("batch finished with failures", "id", rec.id, "jobs", stats.Jobs, "failed", stats.Failed)
	} else {
		s.metrics.batchesCompleted.Add(1)
	}
}

// finishBatchJob records one batch item's terminal state with the same
// bookkeeping as the single-job path (runJob).
func (s *Server) finishBatchJob(jr *jobRecord, req *JobRequest, res *kahrisma.RunResult, err error) {
	jr.finish(res, err)
	s.store.markFinished(jr.id)
	if err != nil {
		s.metrics.failed.Add(1)
		s.log.Warn("batch job failed", "id", jr.id, "isa", req.ISA, "err", err)
		return
	}
	s.metrics.completed.Add(1)
	s.metrics.harvest(res.Instructions, res.Operations, res.Cycles)
	s.metrics.jobTimings(res.QueueWait, res.SimWall)
	if res.Profile != nil {
		s.metrics.profiled.Add(1)
	}
}

// firstBatchError returns the first item error in submission order —
// the batch-level error contract, mirroring kahrisma.Batch.Err.
func (s *Server) firstBatchError(rec *batchRecord) error {
	for _, jr := range rec.jobs {
		jr.mu.Lock()
		state, msg := jr.state, jr.err
		jr.mu.Unlock()
		if state == StateFailed {
			return errors.New(msg)
		}
	}
	return nil
}

func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	rec := s.batches.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown batch"})
		return
	}
	writeJSON(w, http.StatusOK, rec.status())
}

func (s *Server) handleBatchResults(w http.ResponseWriter, r *http.Request) {
	rec := s.batches.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown batch"})
		return
	}
	res, done := rec.resultJSON()
	if !done {
		writeJSON(w, http.StatusConflict, APIError{Error: "batch not finished: " + res.State})
		return
	}
	writeJSON(w, http.StatusOK, res)
}
