package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/prof"
	"repro/internal/server"
)

// getProfile fetches GET /v1/jobs/{id}/profile with the given query.
func getProfile(t *testing.T, ts *httptest.Server, id, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/profile" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2})
	tsRef := ts

	// A profiled VLIW job under a cycle model: the full tentpole path.
	st := submit(t, ts, server.JobRequest{
		ISA:     "VLIW4",
		Sources: map[string]string{"main.c": progB},
		Models:  []string{"DOE"},
		Profile: true,
	})
	res := pollResult(t, ts, st.ID)
	if res.State != server.StateDone {
		t.Fatalf("profiled job failed: %q", res.Error)
	}
	if !res.Profiled {
		t.Fatal("result does not report the job as profiled")
	}

	// JSON report: totals match the result, hotspots are symbolized.
	resp, data := getProfile(t, tsRef, st.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET profile: status %d, body %s", resp.StatusCode, data)
	}
	var rep prof.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding profile %q: %v", data, err)
	}
	if rep.Instructions != res.Instructions {
		t.Errorf("profile instructions %d != result %d", rep.Instructions, res.Instructions)
	}
	if rep.Cycles != res.Cycles["DOE"] || rep.CycleModel != "DOE" {
		t.Errorf("profile cycles/model %d/%s, result DOE cycles %d", rep.Cycles, rep.CycleModel, res.Cycles["DOE"])
	}
	if len(rep.Hotspots) == 0 || rep.TotalPCs == 0 {
		t.Fatalf("profile has no hotspots: %s", data)
	}
	var names []string
	for _, h := range rep.Hotspots {
		names = append(names, h.Func)
	}
	if !strings.Contains(strings.Join(names, ","), "dot") {
		t.Errorf("hotspots not symbolized to guest functions: %v", names)
	}
	if rep.DecodeCache.HitRate <= 0 || rep.Prediction.Hits == 0 {
		t.Errorf("interpreter counters missing: cache %+v, pred %+v", rep.DecodeCache, rep.Prediction)
	}
	if len(rep.ISAs) == 0 || rep.ISAs[0].ISA != "VLIW4" {
		t.Errorf("per-ISA attribution missing: %+v", rep.ISAs)
	}
	if len(rep.Slots) == 0 {
		t.Error("per-slot attribution missing")
	}

	// ?top bounds the hotspot table without touching the totals.
	if _, data := getProfile(t, tsRef, st.ID, "?top=1"); true {
		var small prof.Report
		if err := json.Unmarshal(data, &small); err != nil {
			t.Fatal(err)
		}
		if len(small.Hotspots) != 1 || small.TotalPCs != rep.TotalPCs {
			t.Errorf("top=1: %d hotspots, total_pcs %d (want 1, %d)", len(small.Hotspots), small.TotalPCs, rep.TotalPCs)
		}
	}

	// pprof export is gzipped protobuf naming the guest functions.
	resp, data = getProfile(t, tsRef, st.ID, "?format=pprof")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET profile pprof: status %d", resp.StatusCode)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("pprof payload is not gzip (starts %x)", data[:min(4, len(data))])
	}

	// Error surface: bad format, unprofiled job, unknown job.
	if resp, _ := getProfile(t, tsRef, st.ID, "?format=xml"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", resp.StatusCode)
	}
	plain := pollResult(t, ts, submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progA},
	}).ID)
	if plain.Profiled {
		t.Error("unprofiled job reports a profile")
	}
	if resp, data := getProfile(t, tsRef, st.ID[:4]+"nope", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d (%s)", resp.StatusCode, data)
	}
	// Look the plain job's record up after completion: 404, not 409.
	if resp, data := getProfile(t, tsRef, plain.ID, ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unprofiled job: status %d (%s), want 404", resp.StatusCode, data)
	}

	// The observability satellites on /metrics: build info, start time
	// and the interpreter roll-ups.
	body := metricsBody(t, ts)
	if !strings.Contains(body, "kservd_build_info{version=") || !strings.Contains(body, "goversion=\"go") {
		t.Errorf("kservd_build_info missing or unlabeled:\n%s", grepMetric(body, "kservd_build_info"))
	}
	if got := metricValue(t, body, "kservd_uptime_seconds"); got <= 0 {
		t.Errorf("kservd_uptime_seconds = %v, want > 0", got)
	}
	if got := metricValue(t, body, "kservd_process_start_time_seconds"); got <= 0 {
		t.Errorf("kservd_process_start_time_seconds = %v, want > 0", got)
	}
	if got := metricValue(t, body, "kservd_prediction_hit_rate"); got <= 0 || got >= 1 {
		t.Errorf("kservd_prediction_hit_rate = %v, want in (0,1)", got)
	}
	if got := metricValue(t, body, "kservd_jobs_profiled_total"); got < 1 {
		t.Errorf("kservd_jobs_profiled_total = %v, want >= 1", got)
	}
}

// grepMetric returns the lines of a metrics body naming series.
func grepMetric(body, series string) string {
	var out []string
	for _, l := range strings.Split(body, "\n") {
		if strings.HasPrefix(l, series) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// syncBuffer is a goroutine-safe log sink (jobs log from their own
// goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// With span tracing on, a job emits build and simulate spans; a request
// carrying a traceparent header joins the caller's trace.
func TestJobSpansJoinCallerTrace(t *testing.T) {
	logs := &syncBuffer{}
	_, ts := newTestServer(t, server.Config{
		Workers:    1,
		Logger:     slog.New(slog.NewJSONHandler(logs, nil)),
		TraceSpans: true,
	})

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progA},
	})
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+callerTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, data)
	}
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if res := pollResult(t, ts, st.ID); res.State != server.StateDone {
		t.Fatalf("traced job failed: %q", res.Error)
	}

	// Parse the span log lines: every pipeline stage must appear, all on
	// the caller's trace id.
	spans := map[string]string{} // span name -> trace_id
	for _, line := range strings.Split(logs.String(), "\n") {
		if line == "" || !strings.Contains(line, `"span"`) {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			continue
		}
		if name, ok := m["span"].(string); ok {
			spans[name], _ = m["trace_id"].(string)
		}
	}
	for _, want := range []string{"job", "build", "compile", "assemble", "link", "simulate"} {
		tid, ok := spans[want]
		if !ok {
			t.Errorf("no %q span in logs; got %v", want, spans)
			continue
		}
		if tid != callerTrace {
			t.Errorf("%q span trace_id = %s, want caller's %s", want, tid, callerTrace)
		}
	}
}
