package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	kahrisma "repro"
	"repro/internal/server"
)

func postBatch(t *testing.T, ts *httptest.Server, req server.BatchRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func submitBatch(t *testing.T, ts *httptest.Server, req server.BatchRequest) server.BatchStatus {
	t.Helper()
	resp, data := postBatch(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/batches: status %d, body %s", resp.StatusCode, data)
	}
	var st server.BatchStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding accept response %q: %v", data, err)
	}
	if st.ID == "" || st.State != server.StateRunning || len(st.Jobs) != len(req.Jobs) {
		t.Fatalf("accept response %+v", st)
	}
	return st
}

// pollBatchResults polls until the batch reaches a terminal state.
func pollBatchResults(t *testing.T, ts *httptest.Server, id string) server.BatchResult {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/batches/" + id + "/results")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var res server.BatchResult
			if err := json.Unmarshal(data, &res); err != nil {
				t.Fatalf("decoding batch result %q: %v", data, err)
			}
			return res
		case http.StatusConflict:
			if time.Now().After(deadline) {
				t.Fatalf("batch %s still unfinished: %s", id, data)
			}
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("GET batch results: status %d, body %s", resp.StatusCode, data)
		}
	}
}

// POST /v1/batches runs a mixed-ISA batch as one kahrisma.Batch: the
// aggregate result carries per-item results bit-identical to serial
// baselines plus merged batch counters, the per-item job endpoints keep
// working, and the batch metrics count it.
func TestBatchEndpoint(t *testing.T) {
	sys, err := kahrisma.New()
	if err != nil {
		t.Fatal(err)
	}
	type variant struct {
		isa, src string
		want     *kahrisma.RunResult
	}
	variants := []*variant{
		{isa: "RISC", src: progA},
		{isa: "VLIW4", src: progB},
	}
	for _, v := range variants {
		exe, err := sys.BuildC(v.isa, map[string]string{"main.c": v.src})
		if err != nil {
			t.Fatal(err)
		}
		if v.want, err = exe.Run(context.Background(), kahrisma.WithModels("DOE")); err != nil {
			t.Fatal(err)
		}
	}

	_, ts := newTestServer(t, server.Config{Workers: 2, QueueDepth: 16})

	const jobs = 6
	req := server.BatchRequest{Jobs: make([]server.JobRequest, jobs)}
	for i := range req.Jobs {
		v := variants[i%2]
		req.Jobs[i] = server.JobRequest{
			ISA:     v.isa,
			Sources: map[string]string{"main.c": v.src},
			Models:  []string{"DOE"},
		}
	}
	st := submitBatch(t, ts, req)
	res := pollBatchResults(t, ts, st.ID)

	if res.State != server.StateDone || res.Error != "" || res.JobsFailed != 0 {
		t.Fatalf("batch result: state %s, error %q, failed %d", res.State, res.Error, res.JobsFailed)
	}
	if res.JobsTotal != jobs || len(res.Jobs) != jobs {
		t.Fatalf("batch carries %d/%d jobs, want %d", res.JobsTotal, len(res.Jobs), jobs)
	}
	var wantInstr uint64
	wantCycles := map[string]uint64{}
	for i, jr := range res.Jobs {
		v := variants[i%2]
		if jr.State != server.StateDone {
			t.Fatalf("job %d: state %s, error %q", i, jr.State, jr.Error)
		}
		if jr.ExitCode != v.want.ExitCode || jr.Output != v.want.Output {
			t.Errorf("job %d (%s): exit/output %d/%q, serial baseline %d/%q",
				i, v.isa, jr.ExitCode, jr.Output, v.want.ExitCode, v.want.Output)
		}
		if jr.Cycles["DOE"] != v.want.Cycles["DOE"] {
			t.Errorf("job %d (%s): DOE cycles %d != serial %d — batch run is not bit-identical",
				i, v.isa, jr.Cycles["DOE"], v.want.Cycles["DOE"])
		}
		wantInstr += v.want.Instructions
		wantCycles["DOE"] += v.want.Cycles["DOE"]
	}
	if res.Instructions != wantInstr {
		t.Errorf("batch instructions = %d, want %d", res.Instructions, wantInstr)
	}
	if res.Cycles["DOE"] != wantCycles["DOE"] {
		t.Errorf("batch DOE cycles = %d, want %d", res.Cycles["DOE"], wantCycles["DOE"])
	}
	if res.WallMS <= 0 {
		t.Errorf("batch wall_ms = %f", res.WallMS)
	}

	// The per-item records are regular jobs: the job endpoints answer
	// for them, index-aligned with the batch.
	jr := pollResult(t, ts, st.Jobs[0].ID)
	if jr.State != server.StateDone || jr.Cycles["DOE"] != variants[0].want.Cycles["DOE"] {
		t.Errorf("per-item job endpoint: %+v", jr)
	}

	// Status reflects completion; unknown batches 404.
	resp, err := http.Get(ts.URL + "/v1/batches/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var status server.BatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.State != server.StateDone || status.JobsDone != jobs || status.FinishedAt == nil {
		t.Errorf("batch status after completion: %+v", status)
	}
	if resp, err := http.Get(ts.URL + "/v1/batches/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch: %v, %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// Metrics: the batch and its items both count.
	body := metricsBody(t, ts)
	checks := map[string]float64{
		"kservd_batches_accepted_total":  1,
		"kservd_batches_completed_total": 1,
		"kservd_batches_failed_total":    0,
		"kservd_batch_jobs_total":        jobs,
		"kservd_jobs_accepted_total":     jobs,
	}
	for series, want := range checks {
		if got := metricValue(t, body, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if got := metricValue(t, body, "kservd_queue_depth"); got != 0 {
		t.Errorf("queue depth after batch = %v, want 0", got)
	}
}

// A batch with an invalid item is rejected whole, naming the offending
// index; an oversized batch for the admission queue answers 429 whole.
func TestBatchAdmission(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2})

	ok := server.JobRequest{ISA: "RISC", Sources: map[string]string{"main.c": progA}}
	resp, data := postBatch(t, ts, server.BatchRequest{Jobs: []server.JobRequest{
		ok, {ISA: "NOPE", Sources: map[string]string{"main.c": progA}},
	}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "jobs[1]") {
		t.Errorf("invalid item: status %d, body %s — want 400 naming jobs[1]", resp.StatusCode, data)
	}

	if resp, data = postBatch(t, ts, server.BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, body %s", resp.StatusCode, data)
	}

	// Three jobs against a depth-2 queue: admitted whole or not at all.
	resp, data = postBatch(t, ts, server.BatchRequest{Jobs: []server.JobRequest{ok, ok, ok}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch: status %d, body %s — want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var apiErr server.APIError
	if err := json.Unmarshal(data, &apiErr); err != nil || apiErr.RetryAfterS == 0 {
		t.Errorf("429 body %s", data)
	}

	// The rejection left no slots claimed: a fitting batch still runs.
	st := submitBatch(t, ts, server.BatchRequest{Jobs: []server.JobRequest{ok, ok}})
	if res := pollBatchResults(t, ts, st.ID); res.State != server.StateDone {
		t.Errorf("fitting batch after rejection: %+v", res)
	}
}

// A failing build inside a batch fails that item and the batch's
// aggregate state, while the healthy items still run to completion.
func TestBatchPartialBuildFailure(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})

	st := submitBatch(t, ts, server.BatchRequest{Jobs: []server.JobRequest{
		{ISA: "RISC", Sources: map[string]string{"main.c": progA}},
		{ISA: "RISC", Sources: map[string]string{"bad.c": "int main() { return undeclared; }"}},
		{ISA: "RISC", Sources: map[string]string{"main.c": progA}},
	}})
	res := pollBatchResults(t, ts, st.ID)
	if res.State != server.StateFailed || res.JobsFailed != 1 {
		t.Fatalf("batch with one bad item: state %s, failed %d", res.State, res.JobsFailed)
	}
	if !strings.Contains(res.Error, "bad.c") {
		t.Errorf("batch error %q does not surface the failing build", res.Error)
	}
	for _, i := range []int{0, 2} {
		if res.Jobs[i].State != server.StateDone {
			t.Errorf("healthy item %d: state %s, error %q", i, res.Jobs[i].State, res.Jobs[i].Error)
		}
	}
	if res.Jobs[1].State != server.StateFailed || !strings.Contains(res.Jobs[1].Error, "bad.c") {
		t.Errorf("failing item: %+v", res.Jobs[1])
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, "kservd_batches_failed_total"); got != 1 {
		t.Errorf("kservd_batches_failed_total = %v, want 1", got)
	}
}
