package server

import (
	"io"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/obs"
)

// Rejection reasons, the label values of kservd_jobs_rejected_total.
const (
	rejectQueueFull = "queue_full"
	rejectOversized = "oversized"
	rejectInvalid   = "invalid"
	rejectDraining  = "draining"
)

// Cache label values of the kservd_cache_* families.
const (
	cacheExe      = "exe"
	cacheModel    = "model"
	cacheAnalysis = "analysis"
)

// Histogram bucket bounds. Durations span sub-millisecond cache hits
// to the 30s default job timeout; batch sizes are powers of two up to
// the typical queue depth; SSE fan-out lag is dominated by socket
// writes, so its buckets start at 100µs.
var (
	durationBuckets  = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}
	batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	fanoutBuckets    = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}
)

// metrics holds the server's instruments on one obs.Registry — the
// single source of truth for both the Prometheus text rendered on
// /metrics and the OTLP metric export. Counters are bumped at their
// event sites; gauges derived from live owners (pool, caches,
// admission) are refreshed by the registry's collect callback
// (Server.collectMetrics) on every scrape and export.
type metrics struct {
	reg *obs.Registry

	up        *obs.Gauge
	uptime    *obs.Gauge
	startTime *obs.Gauge
	buildInfo *obs.GaugeVec

	accepted  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	profiled  *obs.Counter
	rejected  *obs.CounterVec

	batchesAccepted  *obs.Counter
	batchesCompleted *obs.Counter
	batchesFailed    *obs.Counter
	batchJobs        *obs.Counter

	campaignsAccepted       *obs.Counter
	campaignsCompleted      *obs.Counter
	campaignsFailed         *obs.Counter
	campaignsCanceled       *obs.Counter
	campaignPoints          *obs.Counter
	campaignPointsSimulated *obs.Counter
	campaignCacheHits       *obs.Counter
	campaignDeduped         *obs.Counter

	analyses       *obs.Counter
	analysesFailed *obs.Counter
	analysisDiags  *obs.CounterVec

	streamSubscribers *obs.Gauge
	streamEvents      *obs.Counter
	streamMissed      *obs.Counter

	queueDepth *obs.Gauge
	queueCap   *obs.Gauge

	poolWorkers     *obs.Gauge
	poolQueueDepth  *obs.Gauge
	poolInFlight    *obs.Gauge
	poolUtilization *obs.GaugeVec // zero-key: rendered once derivable
	decodeHitRate   *obs.Gauge
	predHitRate     *obs.Gauge
	decodeEvictions *obs.Counter // collect-time mirror of the pool's counter

	cacheHits    *obs.CounterVec // collect-time mirrors of the cache owners
	cacheMisses  *obs.CounterVec
	cacheHitRate *obs.GaugeVec
	cacheSize    *obs.GaugeVec

	simInstructions *obs.Counter
	simOperations   *obs.Counter
	cyclesByModel   *obs.CounterVec

	ips          *obs.GaugeVec // zero-key: rendered once pool wall > 0
	cyclesPerSec *obs.GaugeVec

	queueWait *obs.Histogram
	runDur    *obs.Histogram
	buildDur  *obs.Histogram
	batchSize *obs.Histogram
	sseLag    *obs.Histogram
}

// newMetrics registers every instrument in render order. Families
// whose series exist only conditionally in the exposition (per-reason
// rejections, per-model cycles, throughput gauges that need a nonzero
// denominator) are vecs whose children appear on first use.
func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	m.up = reg.Gauge("kservd_up", "Whether the server is accepting jobs (0 while draining).", "%d")
	m.uptime = reg.Gauge("kservd_uptime_seconds", "Seconds since the server started.", "%.3f")
	m.startTime = reg.Gauge("kservd_process_start_time_seconds", "Unix time the server started.", "%d")
	m.buildInfo = reg.GaugeVec("kservd_build_info", "Build metadata; the value is always 1.", "%d", "version", "goversion")
	m.buildInfo.With(buildVersion(), runtime.Version()).Set(1)

	m.accepted = reg.Counter("kservd_jobs_accepted_total", "Jobs admitted past the queue gate.")
	m.completed = reg.Counter("kservd_jobs_completed_total", "Jobs finished successfully.")
	m.failed = reg.Counter("kservd_jobs_failed_total", "Jobs finished with an error (build, simulation or cancellation).")
	m.profiled = reg.Counter("kservd_jobs_profiled_total", "Completed jobs that ran with the microarchitectural profiler.")
	m.rejected = reg.CounterVec("kservd_jobs_rejected_total", "Jobs rejected at admission, by reason.", "reason")

	m.batchesAccepted = reg.Counter("kservd_batches_accepted_total", "Batches admitted past the queue gate.")
	m.batchesCompleted = reg.Counter("kservd_batches_completed_total", "Batches finished with every job successful.")
	m.batchesFailed = reg.Counter("kservd_batches_failed_total", "Batches finished with at least one failed job.")
	m.batchJobs = reg.Counter("kservd_batch_jobs_total", "Jobs submitted through POST /v1/batches.")

	m.campaignsAccepted = reg.Counter("kservd_campaigns_accepted_total", "Campaigns admitted by POST /v1/campaigns.")
	m.campaignsCompleted = reg.Counter("kservd_campaigns_completed_total", "Campaigns finished with every point successful.")
	m.campaignsFailed = reg.Counter("kservd_campaigns_failed_total", "Campaigns finished with a failed or canceled point.")
	m.campaignsCanceled = reg.Counter("kservd_campaigns_canceled_total", "Campaigns canceled by DELETE /v1/campaigns/{id}.")
	m.campaignPoints = reg.Counter("kservd_campaign_points_total", "Unique design-space points across terminal campaigns.")
	m.campaignPointsSimulated = reg.Counter("kservd_campaign_points_simulated_total", "Campaign points that ran on the simulation pool.")
	m.campaignCacheHits = reg.Counter("kservd_campaign_cache_hits_total", "Campaign points served from the fingerprint result cache.")
	m.campaignDeduped = reg.Counter("kservd_campaign_points_deduped_total", "Grid cells collapsed by fingerprint dedup across terminal campaigns.")

	m.analyses = reg.Counter("kservd_analyses_total", "Static-analysis requests served by POST /v1/analyze.")
	m.analysesFailed = reg.Counter("kservd_analyses_failed_total", "Static-analysis requests whose inputs failed to build.")
	m.analysisDiags = reg.CounterVec("kservd_analysis_diagnostics_total", "Diagnostics reported by served analyses, by severity.", "severity")
	// Both severities render from the start, matching the historical
	// exposition.
	m.analysisDiags.With("error")
	m.analysisDiags.With("warning")

	m.streamSubscribers = reg.Gauge("kservd_stream_subscribers", "Open live event streams (SSE).", "%d")
	m.streamEvents = reg.Counter("kservd_stream_events_sent_total", "Stream events delivered to SSE subscribers.")
	m.streamMissed = reg.Counter("kservd_stream_events_missed_total", "Stream events evicted from a job ring before a subscriber read them.")

	m.queueDepth = reg.Gauge("kservd_queue_depth", "Accepted-but-unfinished jobs held by admission control.", "%d")
	m.queueCap = reg.Gauge("kservd_queue_capacity", "Admission queue depth limit.", "%d")

	m.poolWorkers = reg.Gauge("kservd_pool_workers", "Simulation pool worker count.", "%d")
	m.poolQueueDepth = reg.Gauge("kservd_pool_queue_depth", "Jobs waiting for a pool worker.", "%d")
	m.poolInFlight = reg.Gauge("kservd_pool_in_flight", "Jobs queued or running in the pool.", "%d")
	m.poolUtilization = reg.GaugeVec("kservd_pool_utilization", "Summed simulation wall time over uptime x workers.", "%.4f")
	m.decodeHitRate = reg.Gauge("kservd_decode_cache_hit_rate", "Aggregate simulator decode-cache hit rate over finished jobs.", "%.4f")
	m.predHitRate = reg.Gauge("kservd_prediction_hit_rate", "Aggregate instruction-prediction hit rate over finished jobs.", "%.4f")
	m.decodeEvictions = reg.Counter("kservd_decode_cache_evictions_total", "Decode structures discarded by bounded decode caches over finished jobs.")

	m.cacheHits = reg.CounterVec("kservd_cache_hits_total", "Artifact-cache hits, by cache.", "cache")
	m.cacheMisses = reg.CounterVec("kservd_cache_misses_total", "Artifact-cache misses, by cache.", "cache")
	m.cacheHitRate = reg.GaugeVec("kservd_cache_hit_rate", "Artifact-cache hit rate, by cache.", "%.4f", "cache")
	m.cacheSize = reg.GaugeVec("kservd_cache_size", "Artifact-cache entries held, by cache.", "%d", "cache")

	m.simInstructions = reg.Counter("kservd_sim_instructions_total", "Instructions retired across finished jobs.")
	m.simOperations = reg.Counter("kservd_sim_operations_total", "Operations retired across finished jobs.")
	m.cyclesByModel = reg.CounterVec("kservd_sim_cycles_total", "Approximated cycles across finished jobs, by cycle model.", "model")

	m.ips = reg.GaugeVec("kservd_sim_instructions_per_second", "Simulated instruction throughput over summed pool wall time.", "%.1f")
	m.cyclesPerSec = reg.GaugeVec("kservd_sim_cycles_per_second", "Simulated cycle throughput, by cycle model.", "%.1f", "model")

	m.queueWait = reg.Histogram("kservd_job_queue_wait_seconds", "Time jobs spent in the pool dispatch queue before a worker picked them up.", durationBuckets)
	m.runDur = reg.Histogram("kservd_job_run_seconds", "Wall-clock simulation time per finished job.", durationBuckets)
	m.buildDur = reg.Histogram("kservd_job_build_seconds", "Time to resolve a job's executable (artifact-cache hits included).", durationBuckets)
	m.batchSize = reg.Histogram("kservd_batch_size_jobs", "Jobs per accepted batch (POST /v1/batches).", batchSizeBuckets)
	m.sseLag = reg.Histogram("kservd_sse_fanout_lag_seconds", "Time to write and flush one event batch to an SSE subscriber.", fanoutBuckets)

	return m
}

func (m *metrics) reject(reason string) {
	m.rejected.With(reason).Inc()
}

// harvest folds one finished job's simulation counters in.
func (m *metrics) harvest(instructions, operations uint64, cycles map[string]uint64) {
	m.simInstructions.Add(instructions)
	m.simOperations.Add(operations)
	for model, c := range cycles {
		m.cyclesByModel.With(model).Add(c)
	}
}

// jobTimings observes one finished job's latency distributions (zero
// durations — jobs that failed before reaching the pool — are skipped).
func (m *metrics) jobTimings(queueWait, run time.Duration) {
	if queueWait > 0 {
		m.queueWait.Observe(queueWait.Seconds())
	}
	if run > 0 {
		m.runDur.Observe(run.Seconds())
	}
}

// collectMetrics refreshes the gauges and mirror counters whose source
// of truth lives outside the registry. It runs (via obs.Registry
// collect callbacks) before every /metrics render and OTLP export.
func (s *Server) collectMetrics() {
	m := s.metrics
	ps := s.pool.Stats()
	uptime := time.Since(s.started).Seconds()

	if s.draining.Load() {
		m.up.Set(0)
	} else {
		m.up.Set(1)
	}
	m.uptime.Set(uptime)
	m.startTime.Set(float64(s.started.Unix()))

	m.queueDepth.Set(float64(s.adm.inUse()))
	m.queueCap.Set(float64(s.adm.depth()))

	m.poolWorkers.Set(float64(ps.Workers))
	m.poolQueueDepth.Set(float64(ps.QueueDepth))
	m.poolInFlight.Set(float64(ps.InFlight))
	if uptime > 0 && ps.Workers > 0 {
		m.poolUtilization.With().Set(ps.Wall.Seconds() / (uptime * float64(ps.Workers)))
	}
	m.decodeHitRate.Set(ps.DecodeCacheHitRate)
	m.predHitRate.Set(ps.PredictionHitRate)
	m.decodeEvictions.Set(ps.DecodeCacheEvictions)

	for _, c := range []struct {
		name string
		st   CacheStats
	}{
		{cacheExe, s.exeCache.Stats()},
		{cacheModel, s.modelCache.Stats()},
		{cacheAnalysis, s.analysisCache.Stats()},
	} {
		m.cacheHits.With(c.name).Set(c.st.Hits)
		m.cacheMisses.With(c.name).Set(c.st.Misses)
		m.cacheHitRate.With(c.name).Set(c.st.HitRate())
		m.cacheSize.With(c.name).Set(float64(c.st.Size))
	}

	if wall := ps.Wall.Seconds(); wall > 0 {
		m.ips.With().Set(float64(m.simInstructions.Value()) / wall)
	}
	for model, pw := range ps.WallPerModel {
		if pw <= 0 {
			continue
		}
		// Only models with attributed cycles get a throughput series
		// ("functional" runs appear in WallPerModel but carry none).
		if c, ok := m.cyclesByModel.Lookup(model); ok {
			m.cyclesPerSec.With(model).Set(float64(c.Value()) / pw.Seconds())
		}
	}
}

// renderMetrics writes the Prometheus text exposition (version 0.0.4)
// for GET /metrics.
func (s *Server) renderMetrics(w io.Writer) {
	s.metrics.reg.Render(w)
}

// buildVersion is the module version baked into the binary, "(devel)"
// for plain source builds and "unknown" when build info is absent
// (e.g. binaries built without module support).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}
