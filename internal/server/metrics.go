package server

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Rejection reasons, the label values of kservd_jobs_rejected_total.
const (
	rejectQueueFull = "queue_full"
	rejectOversized = "oversized"
	rejectInvalid   = "invalid"
	rejectDraining  = "draining"
)

// metrics holds the server's own counters; pool and cache counters are
// pulled live from their owners at render time. Everything is
// monotonic except the gauges derived at render time.
type metrics struct {
	accepted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	profiled  atomic.Int64 // completed jobs that carried a profile

	// Batches (POST /v1/batches); batch items also count on the job
	// counters above.
	batchesAccepted  atomic.Int64
	batchesCompleted atomic.Int64 // terminal batches with zero failed items
	batchesFailed    atomic.Int64 // terminal batches with at least one failed item
	batchJobs        atomic.Int64 // jobs submitted through the batch endpoint

	// Campaigns (POST /v1/campaigns); campaign points run through the
	// pool directly, not the job endpoints, so they count only here.
	campaignsAccepted       atomic.Int64
	campaignsCompleted      atomic.Int64 // terminal campaigns with every point successful
	campaignsFailed         atomic.Int64 // terminal campaigns with a failed or canceled point
	campaignPoints          atomic.Int64 // unique points across terminal campaigns
	campaignPointsSimulated atomic.Int64 // points that ran on the pool
	campaignCacheHits       atomic.Int64 // points served from the result cache
	campaignDeduped         atomic.Int64 // grid cells collapsed by fingerprint dedup

	analyses         atomic.Int64
	analysesFailed   atomic.Int64
	analysisErrors   atomic.Int64
	analysisWarnings atomic.Int64

	// SSE streaming (GET /v1/jobs/{id}/events).
	streamSubscribers atomic.Int64 // gauge: open event streams
	streamEvents      atomic.Int64 // events delivered to subscribers
	streamMissed      atomic.Int64 // events lost to ring eviction before delivery

	mu            sync.Mutex
	rejected      map[string]int64
	cyclesByModel map[string]uint64

	simInstructions atomic.Uint64
	simOperations   atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{
		rejected:      map[string]int64{},
		cyclesByModel: map[string]uint64{},
	}
}

func (m *metrics) reject(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

// harvest folds one finished job's simulation counters in.
func (m *metrics) harvest(instructions, operations uint64, cycles map[string]uint64) {
	m.simInstructions.Add(instructions)
	m.simOperations.Add(operations)
	if len(cycles) == 0 {
		return
	}
	m.mu.Lock()
	for model, c := range cycles {
		m.cyclesByModel[model] += c
	}
	m.mu.Unlock()
}

// render writes the Prometheus text exposition (version 0.0.4) for
// GET /metrics: admission and job counters, pool backpressure and
// throughput from PoolStats, and artifact-cache hit rates.
func (s *Server) renderMetrics(w io.Writer) {
	m := s.metrics
	ps := s.pool.Stats()
	exe := s.exeCache.Stats()
	model := s.modelCache.Stats()
	ana := s.analysisCache.Stats()
	uptime := time.Since(s.started).Seconds()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, format string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s "+format+"\n", name, help, name, name, v)
	}

	gauge("kservd_up", "Whether the server is accepting jobs (0 while draining).", "%d",
		map[bool]int{true: 0, false: 1}[s.draining.Load()])
	gauge("kservd_uptime_seconds", "Seconds since the server started.", "%.3f", uptime)
	gauge("kservd_process_start_time_seconds", "Unix time the server started.", "%d", s.started.Unix())
	fmt.Fprintf(w, "# HELP kservd_build_info Build metadata; the value is always 1.\n# TYPE kservd_build_info gauge\n")
	fmt.Fprintf(w, "kservd_build_info{version=%q,goversion=%q} 1\n", buildVersion(), runtime.Version())

	counter("kservd_jobs_accepted_total", "Jobs admitted past the queue gate.", m.accepted.Load())
	counter("kservd_jobs_completed_total", "Jobs finished successfully.", m.completed.Load())
	counter("kservd_jobs_failed_total", "Jobs finished with an error (build, simulation or cancellation).", m.failed.Load())
	counter("kservd_jobs_profiled_total", "Completed jobs that ran with the microarchitectural profiler.", m.profiled.Load())

	fmt.Fprintf(w, "# HELP kservd_jobs_rejected_total Jobs rejected at admission, by reason.\n# TYPE kservd_jobs_rejected_total counter\n")
	m.mu.Lock()
	reasons := make([]string, 0, len(m.rejected))
	for r := range m.rejected {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "kservd_jobs_rejected_total{reason=%q} %d\n", r, m.rejected[r])
	}
	m.mu.Unlock()

	counter("kservd_batches_accepted_total", "Batches admitted past the queue gate.", m.batchesAccepted.Load())
	counter("kservd_batches_completed_total", "Batches finished with every job successful.", m.batchesCompleted.Load())
	counter("kservd_batches_failed_total", "Batches finished with at least one failed job.", m.batchesFailed.Load())
	counter("kservd_batch_jobs_total", "Jobs submitted through POST /v1/batches.", m.batchJobs.Load())

	counter("kservd_campaigns_accepted_total", "Campaigns admitted by POST /v1/campaigns.", m.campaignsAccepted.Load())
	counter("kservd_campaigns_completed_total", "Campaigns finished with every point successful.", m.campaignsCompleted.Load())
	counter("kservd_campaigns_failed_total", "Campaigns finished with a failed or canceled point.", m.campaignsFailed.Load())
	counter("kservd_campaign_points_total", "Unique design-space points across terminal campaigns.", m.campaignPoints.Load())
	counter("kservd_campaign_points_simulated_total", "Campaign points that ran on the simulation pool.", m.campaignPointsSimulated.Load())
	counter("kservd_campaign_cache_hits_total", "Campaign points served from the fingerprint result cache.", m.campaignCacheHits.Load())
	counter("kservd_campaign_points_deduped_total", "Grid cells collapsed by fingerprint dedup across terminal campaigns.", m.campaignDeduped.Load())

	counter("kservd_analyses_total", "Static-analysis requests served by POST /v1/analyze.", m.analyses.Load())
	counter("kservd_analyses_failed_total", "Static-analysis requests whose inputs failed to build.", m.analysesFailed.Load())
	fmt.Fprintf(w, "# HELP kservd_analysis_diagnostics_total Diagnostics reported by served analyses, by severity.\n# TYPE kservd_analysis_diagnostics_total counter\n")
	fmt.Fprintf(w, "kservd_analysis_diagnostics_total{severity=\"error\"} %d\n", m.analysisErrors.Load())
	fmt.Fprintf(w, "kservd_analysis_diagnostics_total{severity=\"warning\"} %d\n", m.analysisWarnings.Load())

	gauge("kservd_stream_subscribers", "Open live event streams (SSE).", "%d", m.streamSubscribers.Load())
	counter("kservd_stream_events_sent_total", "Stream events delivered to SSE subscribers.", m.streamEvents.Load())
	counter("kservd_stream_events_missed_total", "Stream events evicted from a job ring before a subscriber read them.", m.streamMissed.Load())

	gauge("kservd_queue_depth", "Accepted-but-unfinished jobs held by admission control.", "%d", s.adm.inUse())
	gauge("kservd_queue_capacity", "Admission queue depth limit.", "%d", s.adm.depth())

	gauge("kservd_pool_workers", "Simulation pool worker count.", "%d", ps.Workers)
	gauge("kservd_pool_queue_depth", "Jobs waiting for a pool worker.", "%d", ps.QueueDepth)
	gauge("kservd_pool_in_flight", "Jobs queued or running in the pool.", "%d", ps.InFlight)
	if uptime > 0 && ps.Workers > 0 {
		gauge("kservd_pool_utilization", "Summed simulation wall time over uptime x workers.", "%.4f",
			ps.Wall.Seconds()/(uptime*float64(ps.Workers)))
	}
	gauge("kservd_decode_cache_hit_rate", "Aggregate simulator decode-cache hit rate over finished jobs.", "%.4f",
		ps.DecodeCacheHitRate)
	gauge("kservd_prediction_hit_rate", "Aggregate instruction-prediction hit rate over finished jobs.", "%.4f",
		ps.PredictionHitRate)
	counter("kservd_decode_cache_evictions_total", "Decode structures discarded by bounded decode caches over finished jobs.",
		int64(ps.DecodeCacheEvictions))

	fmt.Fprintf(w, "# HELP kservd_cache_hits_total Artifact-cache hits, by cache.\n# TYPE kservd_cache_hits_total counter\n")
	fmt.Fprintf(w, "kservd_cache_hits_total{cache=\"exe\"} %d\n", exe.Hits)
	fmt.Fprintf(w, "kservd_cache_hits_total{cache=\"model\"} %d\n", model.Hits)
	fmt.Fprintf(w, "kservd_cache_hits_total{cache=\"analysis\"} %d\n", ana.Hits)
	fmt.Fprintf(w, "# HELP kservd_cache_misses_total Artifact-cache misses, by cache.\n# TYPE kservd_cache_misses_total counter\n")
	fmt.Fprintf(w, "kservd_cache_misses_total{cache=\"exe\"} %d\n", exe.Misses)
	fmt.Fprintf(w, "kservd_cache_misses_total{cache=\"model\"} %d\n", model.Misses)
	fmt.Fprintf(w, "kservd_cache_misses_total{cache=\"analysis\"} %d\n", ana.Misses)
	fmt.Fprintf(w, "# HELP kservd_cache_hit_rate Artifact-cache hit rate, by cache.\n# TYPE kservd_cache_hit_rate gauge\n")
	fmt.Fprintf(w, "kservd_cache_hit_rate{cache=\"exe\"} %.4f\n", exe.HitRate())
	fmt.Fprintf(w, "kservd_cache_hit_rate{cache=\"model\"} %.4f\n", model.HitRate())
	fmt.Fprintf(w, "kservd_cache_hit_rate{cache=\"analysis\"} %.4f\n", ana.HitRate())
	fmt.Fprintf(w, "# HELP kservd_cache_size Artifact-cache entries held, by cache.\n# TYPE kservd_cache_size gauge\n")
	fmt.Fprintf(w, "kservd_cache_size{cache=\"exe\"} %d\n", exe.Size)
	fmt.Fprintf(w, "kservd_cache_size{cache=\"model\"} %d\n", model.Size)
	fmt.Fprintf(w, "kservd_cache_size{cache=\"analysis\"} %d\n", ana.Size)

	counter("kservd_sim_instructions_total", "Instructions retired across finished jobs.", int64(m.simInstructions.Load()))
	counter("kservd_sim_operations_total", "Operations retired across finished jobs.", int64(m.simOperations.Load()))

	fmt.Fprintf(w, "# HELP kservd_sim_cycles_total Approximated cycles across finished jobs, by cycle model.\n# TYPE kservd_sim_cycles_total counter\n")
	m.mu.Lock()
	models := make([]string, 0, len(m.cyclesByModel))
	for name := range m.cyclesByModel {
		models = append(models, name)
	}
	sort.Strings(models)
	for _, name := range models {
		fmt.Fprintf(w, "kservd_sim_cycles_total{model=%q} %d\n", name, m.cyclesByModel[name])
	}
	m.mu.Unlock()

	if wall := ps.Wall.Seconds(); wall > 0 {
		gauge("kservd_sim_instructions_per_second", "Simulated instruction throughput over summed pool wall time.", "%.1f",
			float64(m.simInstructions.Load())/wall)
	}
	fmt.Fprintf(w, "# HELP kservd_sim_cycles_per_second Simulated cycle throughput, by cycle model.\n# TYPE kservd_sim_cycles_per_second gauge\n")
	m.mu.Lock()
	for _, name := range models {
		if pw, ok := ps.WallPerModel[name]; ok && pw > 0 {
			fmt.Fprintf(w, "kservd_sim_cycles_per_second{model=%q} %.1f\n", name, float64(m.cyclesByModel[name])/pw.Seconds())
		}
	}
	m.mu.Unlock()
}

// buildVersion is the module version baked into the binary, "(devel)"
// for plain source builds and "unknown" when build info is absent
// (e.g. binaries built without module support).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}
