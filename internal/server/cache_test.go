package server_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/server"
)

func TestCacheLRUEvictionAndCounters(t *testing.T) {
	c := server.NewCache[int](2)
	builds := 0
	get := func(key string) (int, bool) {
		v, hit, err := c.GetOrBuild(key, func() (int, error) {
			builds++
			return builds, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, hit
	}

	if v, hit := get("a"); hit || v != 1 {
		t.Fatalf("cold a: v=%d hit=%v", v, hit)
	}
	if v, hit := get("a"); !hit || v != 1 {
		t.Fatalf("warm a: v=%d hit=%v", v, hit)
	}
	get("b")
	// Recency is now [b, a]; inserting c into the 2-entry cache evicts
	// the least recently used key, a.
	get("c")
	if _, hit := get("b"); !hit {
		t.Error("b evicted prematurely")
	}
	if _, hit := get("a"); hit {
		t.Error("a survived past capacity")
	}

	st := c.Stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("size/capacity = %d/%d, want 2/2", st.Size, st.Capacity)
	}
	if st.Hits != 2 || st.Misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 2/4", st.Hits, st.Misses)
	}
	if r := st.HitRate(); r <= 0.3 || r >= 0.4 {
		t.Errorf("hit rate = %f, want 2/6", r)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := server.NewCache[int](4)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		if _, _, err := c.GetOrBuild("k", func() (int, error) {
			calls++
			return 0, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("failed build cached: %d calls, want 2", calls)
	}
	if st := c.Stats(); st.Size != 0 {
		t.Errorf("error entry stored: %+v", st)
	}
}

// Concurrent misses for one key coalesce into a single build; the
// riders count as hits (they skipped the toolchain).
func TestCacheCoalescesConcurrentBuilds(t *testing.T) {
	c := server.NewCache[int](4)
	var builds atomic.Int32
	gate := make(chan struct{})
	const callers = 8

	var wg sync.WaitGroup
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.GetOrBuild("shared", func() (int, error) {
				builds.Add(1)
				<-gate // hold every concurrent caller at the build
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("caller %d: v=%d err=%v", i, v, err)
			}
			hits[i] = hit
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1 (coalesced)", n)
	}
	misses := 0
	for _, h := range hits {
		if !h {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d callers reported a miss, want exactly the builder", misses)
	}
}
