package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	kahrisma "repro"
	"repro/internal/server"
)

func postCampaign(t *testing.T, ts *httptest.Server, spec kahrisma.CampaignSpec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func submitCampaign(t *testing.T, ts *httptest.Server, spec kahrisma.CampaignSpec) server.CampaignStatus {
	t.Helper()
	resp, data := postCampaign(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/campaigns: status %d, body %s", resp.StatusCode, data)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/campaigns/") {
		t.Fatalf("Location header %q", loc)
	}
	var st server.CampaignStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding accept response %q: %v", data, err)
	}
	if st.ID == "" || st.State != "running" {
		t.Fatalf("accept response %+v", st)
	}
	return st
}

// pollCampaign polls until the campaign reaches a terminal state.
func pollCampaign(t *testing.T, ts *httptest.Server, id string) server.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET campaign: status %d, body %s", resp.StatusCode, data)
		}
		var st server.CampaignStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding status %q: %v", data, err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getReport(t *testing.T, ts *httptest.Server, id string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// The acceptance scenario: a campaign posted over HTTP runs its whole
// grid, a subscribed client follows aggregate campaign_progress frames
// to the done event, and the Pareto-ranked report and per-point
// statuses are served afterwards, with campaign metrics exported.
func TestCampaignEndpointEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 4})

	spec := kahrisma.CampaignSpec{
		Name:     "http-e2e",
		Sources:  map[string]string{"b.c": progB},
		ISAs:     []string{"RISC", "VLIW2", "VLIW4", "VLIW8"},
		Memories: []string{"paper", "limit:1|cache:1K,2,16,3|mem:18"},
	}
	st := submitCampaign(t, ts, spec)

	// Follow the aggregate SSE stream to the terminal done event.
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	var progressFrames int
	var last kahrisma.CampaignProgressEvent
	for {
		ev, err := readEvent(r)
		if err != nil {
			t.Fatalf("stream ended without done event: %v", err)
		}
		if ev.event == "campaign_progress" {
			progressFrames++
			var se struct {
				Campaign kahrisma.CampaignProgressEvent `json:"campaign"`
			}
			if err := json.Unmarshal([]byte(ev.data), &se); err != nil {
				t.Fatalf("decoding %q: %v", ev.data, err)
			}
			last = se.Campaign
		}
		if ev.event == "done" {
			break
		}
	}
	if progressFrames < 2 {
		t.Fatalf("campaign_progress frames = %d, want >= 2", progressFrames)
	}
	if last.Points != 8 || last.Done != 8 || last.Failed != 0 || last.Campaign != "http-e2e" {
		t.Fatalf("final progress frame: %+v", last)
	}

	fin := pollCampaign(t, ts, st.ID)
	if fin.State != "done" || fin.Campaign.Done != 8 || !fin.Campaign.Finished {
		t.Fatalf("terminal status: %+v", fin)
	}

	rresp, rdata := getReport(t, ts, st.ID)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("GET report: status %d, body %s", rresp.StatusCode, rdata)
	}
	var rep kahrisma.CampaignReport
	if err := json.Unmarshal(rdata, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded != 8 || rep.GridPoints != 8 || len(rep.Rows) != 8 {
		t.Fatalf("report: succeeded %d grid %d rows %d", rep.Succeeded, rep.GridPoints, len(rep.Rows))
	}
	if rep.Rows[0].Rank != 1 || rep.Rows[0].PrimaryCycles == 0 {
		t.Fatalf("rank-1 row: %+v", rep.Rows[0])
	}

	presp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/points")
	if err != nil {
		t.Fatal(err)
	}
	pdata, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	var pts server.CampaignPoints
	if err := json.Unmarshal(pdata, &pts); err != nil {
		t.Fatal(err)
	}
	if len(pts.Points) != 8 {
		t.Fatalf("points: %s", pdata)
	}
	for _, p := range pts.Points {
		if p.State != "done" {
			t.Fatalf("point not done: %+v", p)
		}
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, "kservd_campaigns_accepted_total"); got < 1 {
		t.Errorf("campaigns accepted = %v", got)
	}
	if got := metricValue(t, body, "kservd_campaigns_completed_total"); got < 1 {
		t.Errorf("campaigns completed = %v", got)
	}
	if got := metricValue(t, body, "kservd_campaign_points_total"); got < 8 {
		t.Errorf("campaign points = %v, want >= 8", got)
	}
}

// Re-posting an identical campaign is served from the pool's shared
// fingerprint cache — zero simulated points — and its report is
// byte-identical to the first run's.
func TestCampaignCacheAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2})

	spec := kahrisma.CampaignSpec{
		Name:    "repeat",
		Sources: map[string]string{"a.c": progA},
		ISAs:    []string{"RISC", "VLIW4"},
	}
	st1 := submitCampaign(t, ts, spec)
	fin1 := pollCampaign(t, ts, st1.ID)
	if fin1.State != "done" || fin1.Campaign.Simulated != 2 {
		t.Fatalf("first run: %+v", fin1)
	}

	st2 := submitCampaign(t, ts, spec)
	fin2 := pollCampaign(t, ts, st2.ID)
	if fin2.State != "done" || fin2.Campaign.Simulated != 0 || fin2.Campaign.CacheHits != 2 {
		t.Fatalf("second run not cache-served: %+v", fin2)
	}

	_, rep1 := getReport(t, ts, st1.ID)
	_, rep2 := getReport(t, ts, st2.ID)
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("reports differ:\n%s\n%s", rep1, rep2)
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, "kservd_campaign_cache_hits_total"); got < 2 {
		t.Errorf("campaign cache hits = %v, want >= 2", got)
	}
}

// Satellite: campaign admission is per wave, not per grid. With the
// whole queue held by spinning jobs, plain submissions 429 with
// Retry-After, while a campaign whose grid exceeds the queue depth is
// still accepted and — once the spinners time out and release their
// slots — completes by acquiring slots one wave at a time.
func TestCampaignWaveAdmission(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		Workers:    2,
		QueueDepth: 2,
		MaxTimeout: 1500 * time.Millisecond,
	})

	spin := server.JobRequest{ISA: "RISC", Sources: map[string]string{"spin.c": spinSrc}}
	first := submit(t, ts, spin)
	second := submit(t, ts, spin)

	// Queue full: the plain-job backpressure contract holds.
	b, _ := json.Marshal(spin)
	resp, data := post(t, ts, b)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job with full queue: status %d, body %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}

	// A campaign of 4 points against a depth-2 queue: acceptance does
	// not reserve grid-many slots, so the POST succeeds immediately.
	spec := kahrisma.CampaignSpec{
		Name:    "wavegate",
		Sources: map[string]string{"a.c": progA},
		ISAs:    []string{"RISC", "VLIW2", "VLIW4", "VLIW8"},
	}
	st := submitCampaign(t, ts, spec)

	// The spinners exhaust MaxTimeout and release their slots; the
	// campaign then runs wave by wave (QueueDepth/2 = 1 point at a
	// time) to completion.
	fin := pollCampaign(t, ts, st.ID)
	if fin.State != "done" || fin.Campaign.Done != 4 {
		t.Fatalf("campaign against full queue: %+v", fin)
	}
	for _, id := range []string{first.ID, second.ID} {
		res := pollResult(t, ts, id)
		if res.State != server.StateFailed {
			t.Fatalf("spinner %s: %+v, want timeout failure", id, res)
		}
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, `kservd_jobs_rejected_total{reason="queue_full"}`); got < 1 {
		t.Errorf("queue_full rejections = %v, want >= 1", got)
	}
}

// The report endpoint answers 409 while the campaign runs; a campaign
// whose points all fail turns terminal "failed" but still serves its
// report (with the failures ranked after any successes).
func TestCampaignReportConflictAndFailure(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, MaxTimeout: time.Second})

	spec := kahrisma.CampaignSpec{
		Name:    "spin",
		Sources: map[string]string{"spin.c": spinSrc},
		ISAs:    []string{"RISC"},
	}
	st := submitCampaign(t, ts, spec)

	resp, data := getReport(t, ts, st.ID)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report while running: status %d, body %s", resp.StatusCode, data)
	}

	fin := pollCampaign(t, ts, st.ID)
	if fin.State != "failed" || fin.Error == "" || fin.Campaign.Failed != 1 {
		t.Fatalf("terminal status: %+v", fin)
	}
	resp, data = getReport(t, ts, st.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report after failure: status %d, body %s", resp.StatusCode, data)
	}
	var rep kahrisma.CampaignReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Succeeded != 0 {
		t.Fatalf("failed-campaign report: %+v", rep)
	}
}

// Admission-time validation rejects campaigns the server will not run.
func TestCampaignValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, MaxCampaignPoints: 4})

	cases := []struct {
		name string
		spec kahrisma.CampaignSpec
		want string
	}{
		{"unknown isa",
			kahrisma.CampaignSpec{Sources: map[string]string{"a.c": progA}, ISAs: []string{"NOPE"}},
			"unknown instance"},
		{"unknown model",
			kahrisma.CampaignSpec{Sources: map[string]string{"a.c": progA}, ISAs: []string{"RISC"}, Models: []string{"XXX"}},
			"unknown cycle model"},
		{"unknown workload",
			kahrisma.CampaignSpec{Workloads: []string{"nope"}, ISAs: []string{"RISC"}},
			"unknown workload"},
		{"no programs",
			kahrisma.CampaignSpec{ISAs: []string{"RISC"}},
			"at least one program"},
		{"grid too large",
			kahrisma.CampaignSpec{Sources: map[string]string{"a.c": progA}, ISAs: []string{"RISC", "VLIW2", "VLIW4"}, Fuels: []uint64{0, 1000}},
			"above the server cap"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := postCampaign(t, ts, c.spec)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %s", resp.StatusCode, data)
			}
			var apiErr server.APIError
			if err := json.Unmarshal(data, &apiErr); err != nil || !strings.Contains(apiErr.Error, c.want) {
				t.Fatalf("body %s, want %q", data, c.want)
			}
		})
	}

	// Unknown fields are malformed requests, like the job endpoint.
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"isas":["RISC"],"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "malformed") {
		t.Fatalf("unknown field: status %d, body %s", resp.StatusCode, data)
	}

	// Unknown campaign ids are 404 on every read endpoint.
	for _, path := range []string{"", "/report", "/points", "/events"} {
		resp, err := http.Get(ts.URL + "/v1/campaigns/deadbeef" + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// deleteCampaign issues DELETE /v1/campaigns/{id} and returns the
// response with its decoded body.
func deleteCampaign(t *testing.T, ts *httptest.Server, id string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// Cancellation: DELETE on a running campaign stops it, the record
// reaches the canceled terminal state, the counter ticks, and repeat
// or bogus deletes get conflict/not-found answers.
func TestCampaignCancelEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})

	// One worker against a grid of long-running points keeps the
	// campaign in flight while the DELETE lands.
	const slowProg = `
int main() {
    int s = 0;
    for (int i = 0; i < 2000000; i++) s += i % 7;
    printf("s=%d\n", s);
    return 0;
}
`
	spec := kahrisma.CampaignSpec{
		Name:    "cancel-me",
		Sources: map[string]string{"slow.c": slowProg},
		ISAs:    []string{"RISC", "VLIW2", "VLIW4", "VLIW8"},
		Memories: []string{
			"paper",
			"limit:1|cache:1K,2,16,3|mem:18",
		},
	}
	st := submitCampaign(t, ts, spec)

	resp, data := deleteCampaign(t, ts, st.ID)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running campaign: status %d, body %s", resp.StatusCode, data)
	}

	end := pollCampaign(t, ts, st.ID)
	if end.State != "canceled" {
		t.Fatalf("campaign state after cancel = %q (%+v), want canceled", end.State, end)
	}
	if end.Error == "" {
		t.Error("canceled campaign reports no error detail")
	}
	if end.FinishedAt == nil {
		t.Error("canceled campaign has no finish timestamp")
	}

	// The terminal record must be accounted on /metrics.
	body := metricsBody(t, ts)
	if got := metricValue(t, body, "kservd_campaigns_canceled_total"); got != 1 {
		t.Errorf("kservd_campaigns_canceled_total = %v, want 1", got)
	}

	// A second DELETE finds the campaign already terminal.
	resp, data = deleteCampaign(t, ts, st.ID)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE canceled campaign: status %d, body %s, want 409", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("canceled")) {
		t.Errorf("conflict body %s does not name the terminal state", data)
	}

	// Unknown ids are not found.
	resp, _ = deleteCampaign(t, ts, "no-such-campaign")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown campaign: status %d, want 404", resp.StatusCode)
	}
}

// A DELETE that arrives after natural completion must not rewrite the
// terminal state.
func TestCampaignCancelAfterCompletion(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 4})
	spec := kahrisma.CampaignSpec{
		Name:    "done-first",
		Sources: map[string]string{"a.c": progA},
		ISAs:    []string{"RISC"},
	}
	st := submitCampaign(t, ts, spec)
	end := pollCampaign(t, ts, st.ID)
	if end.State != "done" {
		t.Fatalf("campaign finished %q, want done", end.State)
	}

	resp, data := deleteCampaign(t, ts, st.ID)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE completed campaign: status %d, body %s, want 409", resp.StatusCode, data)
	}
	if got := pollCampaign(t, ts, st.ID); got.State != "done" {
		t.Errorf("late DELETE rewrote terminal state to %q", got.State)
	}
	body := metricsBody(t, ts)
	if got := metricValue(t, body, "kservd_campaigns_canceled_total"); got != 0 {
		t.Errorf("kservd_campaigns_canceled_total = %v, want 0", got)
	}
}
