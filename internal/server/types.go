package server

import (
	"fmt"
	"sort"
	"time"

	kahrisma "repro"
	"repro/internal/driver"
)

// JobRequest is the body of POST /v1/jobs: a build-and-simulate job.
// The toolchain inputs (ISA, sources, optional custom ADL) are
// content-addressed, so identical requests reuse cached executables and
// elaborated models instead of re-running the compiler.
type JobRequest struct {
	// ISA names the target processor instance ("RISC", "VLIW4", ...).
	ISA string `json:"isa"`
	// Sources maps file names to MiniC (default) or assembly text.
	Sources map[string]string `json:"sources"`
	// Lang selects the source language: "c" (default) or "asm".
	Lang string `json:"lang,omitempty"`
	// ADL, when non-empty, elaborates a custom architecture description
	// instead of the built-in KAHRISMA model (see docs/adl.md).
	ADL string `json:"adl,omitempty"`
	// Models activates cycle models: "ILP", "AIE", "DOE", "RTL".
	Models []string `json:"models,omitempty"`
	// MemorySpec builds a custom memory-delay hierarchy, e.g.
	// "limit:1|cache:2K,4,32,3|mem:18"; empty selects the paper's.
	MemorySpec string `json:"memory_spec,omitempty"`
	// FlatMemoryDelay, when set, replaces the hierarchy with a
	// fixed-delay memory of that many cycles.
	FlatMemoryDelay *uint64 `json:"flat_memory_delay,omitempty"`
	// Fuel bounds the run in executed instructions; 0 or anything above
	// the server's cap is clamped to the cap.
	Fuel uint64 `json:"fuel,omitempty"`
	// TimeoutMS bounds the run's wall-clock time in milliseconds; 0 or
	// anything above the server's cap is clamped to the cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stdin feeds the program's emulated standard input.
	Stdin string `json:"stdin,omitempty"`
}

// knownModels is the admission-time contract of the Models field; the
// facade enforces the same set (kahrisma.ErrBadModel) at run time.
var knownModels = map[string]bool{"ILP": true, "AIE": true, "DOE": true, "RTL": true}

// validate rejects requests that can never run. ISA names are checked
// against the built-in model only; custom-ADL jobs defer the check to
// elaboration on the job goroutine.
func (r *JobRequest) validate(base *kahrisma.System) error {
	if len(r.Sources) == 0 {
		return fmt.Errorf("sources: at least one file required")
	}
	switch r.Lang {
	case "", "c", "asm":
	default:
		return fmt.Errorf("lang: %q (want \"c\" or \"asm\")", r.Lang)
	}
	if r.ISA == "" {
		return fmt.Errorf("isa: required")
	}
	if r.ADL == "" {
		if _, err := base.IssueWidth(r.ISA); err != nil {
			return fmt.Errorf("isa: unknown instance %q", r.ISA)
		}
	}
	for _, m := range r.Models {
		if !knownModels[m] {
			return fmt.Errorf("models: unknown cycle model %q", m)
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms: must be >= 0")
	}
	return nil
}

// sources returns the request's files as driver sources in
// deterministic (name-sorted) order — the order the artifact
// fingerprint and the build both use.
func (r *JobRequest) sources() []driver.Source {
	names := make([]string, 0, len(r.Sources))
	for n := range r.Sources {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]driver.Source, len(names))
	for i, n := range names {
		if r.Lang == "asm" {
			out[i] = driver.AsmSource(n, r.Sources[n])
		} else {
			out[i] = driver.CSource(n, r.Sources[n])
		}
	}
	return out
}

// Job states, in lifecycle order.
const (
	StateQueued   = "queued"   // admitted, waiting for a job goroutine slot
	StateBuilding = "building" // in the toolchain (or artifact-cache lookup)
	StateRunning  = "running"  // submitted to the simulation pool
	StateDone     = "done"
	StateFailed   = "failed"
)

// JobStatus is the body of GET /v1/jobs/{id} and of the 202 accept
// response.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// CacheHit reports that the executable came from the artifact cache
	// (meaningful once the job left the building state).
	CacheHit    bool       `json:"cache_hit"`
	SubmittedAt time.Time  `json:"submitted_at"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// JobResult is the body of GET /v1/jobs/{id}/result.
type JobResult struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	CacheHit bool   `json:"cache_hit"`

	ExitCode     int32              `json:"exit_code"`
	Output       string             `json:"output"`
	Instructions uint64             `json:"instructions"`
	Operations   uint64             `json:"operations"`
	Cycles       map[string]uint64  `json:"cycles,omitempty"`
	OPC          map[string]float64 `json:"opc,omitempty"`
	L1MissRate   float64            `json:"l1_miss_rate"`
	// WallMS is end-to-end job time on the server: queueing, toolchain
	// (or cache lookup) and simulation.
	WallMS float64 `json:"wall_ms"`
}

// APIError is the JSON body of every non-2xx response.
type APIError struct {
	Error string `json:"error"`
	// RetryAfterS mirrors the Retry-After header on 429 responses.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}
