package server

import (
	"fmt"
	"sort"
	"time"

	kahrisma "repro"
	"repro/internal/driver"
)

// JobRequest is the body of POST /v1/jobs: a build-and-simulate job.
// The toolchain inputs (ISA, sources, optional custom ADL) are
// content-addressed, so identical requests reuse cached executables and
// elaborated models instead of re-running the compiler.
type JobRequest struct {
	// ISA names the target processor instance ("RISC", "VLIW4", ...).
	ISA string `json:"isa"`
	// Sources maps file names to MiniC (default) or assembly text.
	Sources map[string]string `json:"sources"`
	// Lang selects the source language: "c" (default) or "asm".
	Lang string `json:"lang,omitempty"`
	// ADL, when non-empty, elaborates a custom architecture description
	// instead of the built-in KAHRISMA model (see docs/adl.md).
	ADL string `json:"adl,omitempty"`
	// Models activates cycle models: "ILP", "AIE", "DOE", "RTL".
	Models []string `json:"models,omitempty"`
	// MemorySpec builds a custom memory-delay hierarchy, e.g.
	// "limit:1|cache:2K,4,32,3|mem:18"; empty selects the paper's.
	MemorySpec string `json:"memory_spec,omitempty"`
	// FlatMemoryDelay, when set, replaces the hierarchy with a
	// fixed-delay memory of that many cycles.
	FlatMemoryDelay *uint64 `json:"flat_memory_delay,omitempty"`
	// Fuel bounds the run in executed instructions; 0 or anything above
	// the server's cap is clamped to the cap.
	Fuel uint64 `json:"fuel,omitempty"`
	// TimeoutMS bounds the run's wall-clock time in milliseconds; 0 or
	// anything above the server's cap is clamped to the cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stdin feeds the program's emulated standard input.
	Stdin string `json:"stdin,omitempty"`
	// Stream additionally publishes every executed operation on the
	// job's live event stream (GET /v1/jobs/{id}/events). Progress,
	// ISA-switch and done events are streamed for every job; per-op
	// trace events are the expensive half and need this opt-in.
	Stream bool `json:"stream,omitempty"`
	// Profile attaches the microarchitectural profiler; the symbolized
	// hotspot report (and pprof export) is then served by
	// GET /v1/jobs/{id}/profile once the job finished. Profiling is
	// passive: results and cycle counts are unchanged
	// (docs/profiling.md).
	Profile bool `json:"profile,omitempty"`
	// ProfileSample > 1 profiles with deterministic per-PC stride
	// sampling (every n-th instruction), bounding profiler memory on
	// very long jobs; it implies Profile and overrides the server's
	// default stride. Totals and per-ISA tables stay exact; reports
	// mark scaled estimates with their stride (docs/observability.md).
	ProfileSample uint64 `json:"profile_sample,omitempty"`
}

// knownModels is the admission-time contract of the Models field; the
// facade enforces the same set (kahrisma.ErrBadModel) at run time.
var knownModels = map[string]bool{"ILP": true, "AIE": true, "DOE": true, "RTL": true}

// validate rejects requests that can never run. ISA names are checked
// against the built-in model only; custom-ADL jobs defer the check to
// elaboration on the job goroutine.
func (r *JobRequest) validate(base *kahrisma.System) error {
	if len(r.Sources) == 0 {
		return fmt.Errorf("sources: at least one file required")
	}
	switch r.Lang {
	case "", "c", "asm":
	default:
		return fmt.Errorf("lang: %q (want \"c\" or \"asm\")", r.Lang)
	}
	if r.ISA == "" {
		return fmt.Errorf("isa: required")
	}
	if r.ADL == "" {
		if _, err := base.IssueWidth(r.ISA); err != nil {
			return fmt.Errorf("isa: unknown instance %q", r.ISA)
		}
	}
	for _, m := range r.Models {
		if !knownModels[m] {
			return fmt.Errorf("models: unknown cycle model %q", m)
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms: must be >= 0")
	}
	return nil
}

// sources returns the request's files as driver sources in
// deterministic (name-sorted) order — the order the artifact
// fingerprint and the build both use.
func (r *JobRequest) sources() []driver.Source {
	return sourceList(r.Lang, r.Sources)
}

func sourceList(lang string, files map[string]string) []driver.Source {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]driver.Source, len(names))
	for i, n := range names {
		if lang == "asm" {
			out[i] = driver.AsmSource(n, files[n])
		} else {
			out[i] = driver.CSource(n, files[n])
		}
	}
	return out
}

// AnalyzeRequest is the body of POST /v1/analyze: a static-analysis
// request over the same toolchain inputs as a job — it shares the
// job API's artifact caches (model and executable keys are identical),
// so analyzing a program and then simulating it builds once.
type AnalyzeRequest struct {
	// ISA names the target/entry processor instance for building the
	// sources. Required when sources are present.
	ISA string `json:"isa,omitempty"`
	// Sources maps file names to MiniC (default) or assembly text.
	// May be empty to lint only the architecture model.
	Sources map[string]string `json:"sources,omitempty"`
	// Lang selects the source language: "c" (default) or "asm".
	Lang string `json:"lang,omitempty"`
	// ADL, when non-empty, lints a custom architecture description
	// (elaborated leniently, so detection defects come back as
	// diagnostics instead of a build error) and analyzes the sources
	// against it.
	ADL string `json:"adl,omitempty"`
	// DOEBounds adds one KB005 info diagnostic per recovered basic
	// block carrying its static DOE cycle lower bound.
	DOEBounds bool `json:"doe_bounds,omitempty"`
	// Checks restricts the program checks to the listed IDs (see
	// docs/analysis.md); empty runs all of them. KB005 additionally
	// requires DOEBounds.
	Checks []string `json:"checks,omitempty"`
	// MinSeverity filters the reported diagnostics: "info" (default),
	// "warning" or "error". Error/warning totals always count the
	// unfiltered report.
	MinSeverity string `json:"min_severity,omitempty"`
}

// validate rejects analysis requests that can never run; like job
// validation, ISA names are checked against the built-in model only.
func (r *AnalyzeRequest) validate(base *kahrisma.System) error {
	if len(r.Sources) == 0 && r.ADL == "" {
		return fmt.Errorf("sources: at least one file required (or provide adl for a model-only analysis)")
	}
	switch r.Lang {
	case "", "c", "asm":
	default:
		return fmt.Errorf("lang: %q (want \"c\" or \"asm\")", r.Lang)
	}
	if len(r.Sources) > 0 {
		if r.ISA == "" {
			return fmt.Errorf("isa: required")
		}
		if r.ADL == "" {
			if _, err := base.IssueWidth(r.ISA); err != nil {
				return fmt.Errorf("isa: unknown instance %q", r.ISA)
			}
		}
	}
	if r.MinSeverity != "" {
		if _, ok := kahrisma.ParseSeverity(r.MinSeverity); !ok {
			return fmt.Errorf("min_severity: %q (want \"info\", \"warning\" or \"error\")", r.MinSeverity)
		}
	}
	for _, id := range r.Checks {
		if !kahrisma.KnownCheck(id) {
			return fmt.Errorf("checks: unknown check %q (see docs/analysis.md)", id)
		}
	}
	return nil
}

// AnalyzeReport is the cacheable payload of an analysis: everything
// the request's fingerprint determines. The analysis cache stores it
// verbatim, so a repeat request gets a byte-identical report.
type AnalyzeReport struct {
	// Model holds the architecture-model diagnostics (checks KA001..);
	// Program the binary diagnostics (checks KB001..) when sources were
	// submitted and the model was clean enough to build against.
	Model   []kahrisma.Diagnostic `json:"model"`
	Program []kahrisma.Diagnostic `json:"program,omitempty"`
	// Errors and Warnings count the full (unfiltered) reports; klint's
	// exit convention maps Errors > 0 to exit status 1.
	Errors   int  `json:"errors"`
	Warnings int  `json:"warnings"`
	Clean    bool `json:"clean"`
}

// AnalyzeResult is the body of a successful POST /v1/analyze response.
type AnalyzeResult struct {
	AnalyzeReport
	// CacheHit reports that the report came from the analysis cache
	// (keyed by the fingerprint of every report-determining input).
	CacheHit bool `json:"cache_hit"`
}

// Job states, in lifecycle order.
const (
	StateQueued   = "queued"   // admitted, waiting for a job goroutine slot
	StateBuilding = "building" // in the toolchain (or artifact-cache lookup)
	StateRunning  = "running"  // submitted to the simulation pool
	StateDone     = "done"
	StateFailed   = "failed"
)

// JobStatus is the body of GET /v1/jobs/{id} and of the 202 accept
// response.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// CacheHit reports that the executable came from the artifact cache
	// (meaningful once the job left the building state).
	CacheHit    bool       `json:"cache_hit"`
	SubmittedAt time.Time  `json:"submitted_at"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// JobResult is the body of GET /v1/jobs/{id}/result.
type JobResult struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	CacheHit bool   `json:"cache_hit"`

	ExitCode     int32              `json:"exit_code"`
	Output       string             `json:"output"`
	Instructions uint64             `json:"instructions"`
	Operations   uint64             `json:"operations"`
	Cycles       map[string]uint64  `json:"cycles,omitempty"`
	OPC          map[string]float64 `json:"opc,omitempty"`
	L1MissRate   float64            `json:"l1_miss_rate"`
	// Profiled reports that the job ran with profiling and
	// GET /v1/jobs/{id}/profile will serve its report.
	Profiled bool `json:"profiled,omitempty"`
	// WallMS is end-to-end job time on the server: queueing, toolchain
	// (or cache lookup) and simulation.
	WallMS float64 `json:"wall_ms"`
}

// APIError is the JSON body of every non-2xx response.
type APIError struct {
	Error string `json:"error"`
	// RetryAfterS mirrors the Retry-After header on 429 responses.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}
