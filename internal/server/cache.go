package server

import (
	"container/list"
	"sync"
)

// Cache is a content-addressed artifact cache with LRU eviction and
// in-flight build coalescing: concurrent GetOrBuild calls for the same
// key run the build once and share its result. The server keeps two —
// elaborated architecture models keyed by ADL hash, and linked
// executables keyed by driver.Fingerprint — so repeat submissions of
// the same program skip the toolchain entirely, the way the simulator's
// decode cache skips re-decoding at instruction granularity.
//
// Values must be safe for concurrent use after construction; the
// elaborated isa.Model and loaded sim.Program behind both cached types
// are immutable, per the pool's sharing rules (docs/simpool.md).
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // of *centry[V]; front = most recently used
	byKey    map[string]*list.Element
	calls    map[string]*call[V] // builds in flight
	hits     uint64
	misses   uint64
}

type centry[V any] struct {
	key string
	v   V
}

type call[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// NewCache returns an empty cache holding at most capacity entries
// (capacity < 1 is treated as 1).
func NewCache[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		byKey:    map[string]*list.Element{},
		calls:    map[string]*call[V]{},
	}
}

// GetOrBuild returns the cached value for key, or runs build exactly
// once (across all concurrent callers) to produce it. hit reports
// whether this caller skipped the build — a stored entry or a ride
// along an in-flight build. Failed builds are not cached.
func (c *Cache[V]) GetOrBuild(key string, build func() (V, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v = el.Value.(*centry[V]).v
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.calls[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-cl.done
		return cl.v, true, cl.err
	}
	cl := &call[V]{done: make(chan struct{})}
	c.calls[key] = cl
	c.misses++
	c.mu.Unlock()

	cl.v, cl.err = build()

	c.mu.Lock()
	delete(c.calls, key)
	if cl.err == nil {
		c.byKey[key] = c.ll.PushFront(&centry[V]{key: key, v: cl.v})
		for c.ll.Len() > c.capacity {
			last := c.ll.Back()
			c.ll.Remove(last)
			delete(c.byKey, last.Value.(*centry[V]).key)
		}
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.v, false, cl.err
}

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	Hits, Misses   uint64
	Size, Capacity int
}

// HitRate is hits/(hits+misses), 0 before the first lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the cache counters.
func (c *Cache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.capacity}
}
