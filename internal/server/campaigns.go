package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	kahrisma "repro"
	"repro/internal/trace"
)

// Campaign endpoints: POST /v1/campaigns accepts a kahrisma.CampaignSpec
// (the same JSON schema cmd/kcampaign -spec reads), expands and runs the
// design-space grid on the server's pool, and serves live aggregate
// progress over SSE plus the deterministic Pareto-ranked report once
// terminal. Campaigns share the pool's fingerprint-keyed result cache,
// so re-posting a campaign (or overlapping grids) re-serves points
// without simulating them.
//
// Admission: a campaign does not claim queue slots for its whole grid —
// it claims them wave by wave through the shared admission gate, so a
// 1000-point campaign and interactive jobs coexist; each wave waits for
// slots, and plain jobs 429 only while a wave actually holds slots.

// Campaign lifecycle states (CampaignStatus.State). A campaign is
// "running" from acceptance until terminal; "done" requires every point
// to have succeeded; a point failure means "failed"; a campaign ended
// by DELETE /v1/campaigns/{id} is "canceled".
const (
	campaignStateRunning  = "running"
	campaignStateDone     = "done"
	campaignStateFailed   = "failed"
	campaignStateCanceled = "canceled"
)

// CampaignStatus is the body of GET /v1/campaigns/{id} and of the 202
// accept response.
type CampaignStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Campaign carries the engine's aggregate counters (grid size,
	// unique points, done/failed/running, cache hits, simulated points).
	Campaign    kahrisma.CampaignStatus `json:"campaign"`
	SubmittedAt time.Time               `json:"submitted_at"`
	FinishedAt  *time.Time              `json:"finished_at,omitempty"`
}

// CampaignPoints is the body of GET /v1/campaigns/{id}/points.
type CampaignPoints struct {
	ID     string                         `json:"id"`
	State  string                         `json:"state"`
	Points []kahrisma.CampaignPointStatus `json:"points"`
}

// validateCampaign rejects specs the server will not run: unexpandable
// grids (delegated to the spec), unknown ISA instances or cycle models,
// and grids beyond Config.MaxCampaignPoints.
func validateCampaign(spec *kahrisma.CampaignSpec, base *kahrisma.System, maxPoints int) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	for _, isa := range spec.ISAs {
		if isa == kahrisma.CampaignAutoISA {
			continue
		}
		if _, err := base.IssueWidth(isa); err != nil {
			return errors.New("isas: unknown instance " + strconv.Quote(isa))
		}
	}
	for _, m := range spec.Models {
		if !knownModels[m] {
			return errors.New("models: unknown cycle model " + strconv.Quote(m))
		}
	}
	if grid := spec.GridSize(); grid > maxPoints {
		return errors.New("grid expands to " + strconv.Itoa(grid) +
			" points, above the server cap of " + strconv.Itoa(maxPoints))
	}
	return nil
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectJob(r, "campaign", rejectDraining)
		writeJSON(w, http.StatusServiceUnavailable, APIError{Error: "server is draining"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var spec kahrisma.CampaignSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.rejectJob(r, "campaign", rejectOversized)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				APIError{Error: "request body exceeds " + strconv.FormatInt(tooBig.Limit, 10) + " bytes"})
			return
		}
		s.rejectJob(r, "campaign", rejectInvalid)
		writeJSON(w, http.StatusBadRequest, APIError{Error: "malformed request: " + err.Error()})
		return
	}
	if err := validateCampaign(&spec, s.base, s.cfg.MaxCampaignPoints); err != nil {
		s.rejectJob(r, "campaign", rejectInvalid)
		writeJSON(w, http.StatusBadRequest, APIError{Error: err.Error()})
		return
	}
	// A wave may hold at most half the admission queue, so interactive
	// jobs always have headroom while a campaign runs.
	maxWave := s.cfg.QueueDepth / 2
	if maxWave < 1 {
		maxWave = 1
	}
	if spec.Wave <= 0 {
		spec.Wave = kahrisma.CampaignDefaultWave
	}
	if spec.Wave > maxWave {
		spec.Wave = maxWave
	}

	s.metrics.campaignsAccepted.Add(1)
	// Each campaign runs under its own cancelable child of the server's
	// jobs context, so DELETE /v1/campaigns/{id} stops this campaign's
	// remaining waves without touching anything else in flight.
	cctx, cancel := context.WithCancel(s.jobsCtx)
	rec := s.campaigns.create(s.cfg.StreamRingSize, cancel)
	s.jobsWG.Add(1)
	go s.runCampaign(cctx, rec, spec)
	w.Header().Set("Location", "/v1/campaigns/"+rec.id)
	writeJSON(w, http.StatusAccepted, rec.status())
}

// handleCampaignCancel serves DELETE /v1/campaigns/{id}: cancel a
// running campaign. Points already finished keep their results (still
// served by /points); unstarted waves never run, and the campaign
// settles in the "canceled" state. Canceling a terminal campaign is a
// 409 conflict, so clients can distinguish "I stopped it" from "it was
// already over".
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	rec := s.campaigns.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown campaign"})
		return
	}
	if !rec.requestCancel() {
		state, _ := rec.terminal()
		writeJSON(w, http.StatusConflict, APIError{Error: "campaign already " + state})
		return
	}
	s.log.Info("campaign cancel requested", "id", rec.id)
	writeJSON(w, http.StatusAccepted, rec.status())
}

// runCampaign drives one accepted campaign on its own goroutine. The
// engine holds admission slots one wave at a time via the wave gate.
func (s *Server) runCampaign(ctx context.Context, rec *campaignRecord, spec kahrisma.CampaignSpec) {
	defer s.jobsWG.Done()
	defer rec.cancel()

	camp, err := s.pool.RunCampaign(ctx, s.base, spec,
		kahrisma.WithCampaignEvents(rec.stream),
		kahrisma.WithCampaignTimeout(s.cfg.MaxTimeout),
		kahrisma.WithCampaignWaveGate(s.acquireWave, s.adm.releaseN))
	if err == nil {
		rec.setCampaign(camp)
		err = camp.Wait()
	}
	rec.finish(err)
	s.campaigns.markFinished(rec.id)

	if camp != nil {
		st := camp.Status()
		s.metrics.campaignPoints.Add(uint64(st.Points))
		s.metrics.campaignPointsSimulated.Add(uint64(st.Simulated))
		s.metrics.campaignCacheHits.Add(uint64(st.CacheHits))
		if rep := camp.Report(); rep != nil {
			s.metrics.campaignDeduped.Add(uint64(rep.Deduped))
		}
	}
	state, _ := rec.terminal()
	switch {
	case state == campaignStateCanceled:
		s.metrics.campaignsCanceled.Add(1)
		s.log.Info("campaign canceled", "id", rec.id, "name", spec.Name)
	case err != nil:
		s.metrics.campaignsFailed.Add(1)
		s.log.Warn("campaign failed", "id", rec.id, "name", spec.Name, "err", err)
	default:
		s.metrics.campaignsCompleted.Add(1)
	}
}

// acquireWave blocks until n admission slots are free (polling, since
// admission is a lock-free counter without waiters), the server starts
// draining, or ctx ends. It pairs with admission.releaseN in the
// campaign engine's wave bracket.
func (s *Server) acquireWave(ctx context.Context, n int) error {
	for {
		if s.draining.Load() {
			return errors.New("server is draining")
		}
		if s.adm.tryAcquireN(n) {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	rec := s.campaigns.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown campaign"})
		return
	}
	writeJSON(w, http.StatusOK, rec.status())
}

// handleCampaignReport serves the deterministic Pareto-ranked report:
// 409 while the campaign is still running, 404 when it failed before
// the engine produced one (spec rejected at expansion).
func (s *Server) handleCampaignReport(w http.ResponseWriter, r *http.Request) {
	rec := s.campaigns.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown campaign"})
		return
	}
	state, terminal := rec.terminal()
	if !terminal {
		writeJSON(w, http.StatusConflict, APIError{Error: "campaign not finished: " + state})
		return
	}
	camp := rec.campaign()
	if camp == nil || camp.Report() == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "campaign produced no report"})
		return
	}
	writeJSON(w, http.StatusOK, camp.Report())
}

// handleCampaignPoints serves per-point statuses at any time — the
// completed points of a canceled campaign stay fetchable here.
func (s *Server) handleCampaignPoints(w http.ResponseWriter, r *http.Request) {
	rec := s.campaigns.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown campaign"})
		return
	}
	out := CampaignPoints{ID: rec.id, Points: []kahrisma.CampaignPointStatus{}}
	out.State, _ = rec.terminal()
	if camp := rec.campaign(); camp != nil {
		out.Points = camp.Points()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCampaignEvents serves the campaign's aggregate progress stream
// (campaign_progress snapshots, then done) as SSE, sharing the job
// endpoint's wire format, resume and heartbeat behavior.
func (s *Server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	rec := s.campaigns.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown campaign"})
		return
	}
	s.serveSSE(w, r, rec.stream)
}

// campaignRecord is the server-side state of one accepted campaign. It
// outlives the campaign goroutine so clients can poll the report after
// completion.
type campaignRecord struct {
	id        string
	submitted time.Time
	// stream carries the campaign's aggregate progress events; the
	// engine closes it with a done event on every terminal path, and
	// finish backstops failures that precede engine start.
	stream *trace.Streamer
	// cancel stops the campaign's context; runCampaign defers it, and
	// requestCancel arms canceled so finish knows the error was asked
	// for rather than organic.
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	err      string
	canceled bool
	camp     *kahrisma.Campaign
	finished time.Time
	done     chan struct{}
}

// requestCancel marks a running campaign as canceled and fires its
// context. It reports false once the campaign is terminal — the caller
// then answers 409 instead of pretending to stop finished work.
func (r *campaignRecord) requestCancel() bool {
	r.mu.Lock()
	if r.state != campaignStateRunning {
		r.mu.Unlock()
		return false
	}
	r.canceled = true
	r.mu.Unlock()
	r.cancel()
	return true
}

func (r *campaignRecord) setCampaign(c *kahrisma.Campaign) {
	r.mu.Lock()
	r.camp = c
	r.mu.Unlock()
}

func (r *campaignRecord) campaign() *kahrisma.Campaign {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.camp
}

func (r *campaignRecord) terminal() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state, r.state != campaignStateRunning
}

func (r *campaignRecord) finish(err error) {
	r.mu.Lock()
	switch {
	case err != nil && r.canceled:
		r.state = campaignStateCanceled
		r.err = err.Error()
	case err != nil:
		r.state = campaignStateFailed
		r.err = err.Error()
	default:
		// A cancel that raced a natural completion lost: every point
		// finished, so the campaign is honestly done.
		r.state = campaignStateDone
	}
	r.finished = time.Now()
	r.mu.Unlock()
	// The engine already published its own done event on every path it
	// reached; this backstop covers failures before engine start and is
	// a no-op otherwise.
	d := trace.Done{}
	if err != nil {
		d.Error = err.Error()
	}
	r.stream.Done(d)
	close(r.done)
}

func (r *campaignRecord) status() CampaignStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := CampaignStatus{
		ID:          r.id,
		State:       r.state,
		Error:       r.err,
		SubmittedAt: r.submitted,
	}
	if r.camp != nil {
		st.Campaign = r.camp.Status()
	}
	if !r.finished.IsZero() {
		f := r.finished
		st.FinishedAt = &f
	}
	return st
}

// campaignStore indexes records by id and bounds memory by evicting the
// oldest finished records beyond maxFinished.
type campaignStore struct {
	mu          sync.Mutex
	campaigns   map[string]*campaignRecord
	finished    []string
	maxFinished int
}

func newCampaignStore(maxFinished int) *campaignStore {
	if maxFinished < 1 {
		maxFinished = 1
	}
	return &campaignStore{campaigns: map[string]*campaignRecord{}, maxFinished: maxFinished}
}

func (s *campaignStore) create(streamRing int, cancel context.CancelFunc) *campaignRecord {
	rec := &campaignRecord{
		id:        newID(),
		submitted: time.Now(),
		stream:    trace.NewStreamer(streamRing),
		cancel:    cancel,
		state:     campaignStateRunning,
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	s.campaigns[rec.id] = rec
	s.mu.Unlock()
	return rec
}

func (s *campaignStore) get(id string) *campaignRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

func (s *campaignStore) markFinished(id string) {
	s.mu.Lock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.maxFinished {
		delete(s.campaigns, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}
