package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Serve listens on addr and serves until ctx is canceled (cmd/kservd
// cancels it on SIGTERM/SIGINT), then runs the graceful drain: stop
// admitting, let in-flight jobs finish within Config.DrainTimeout,
// cancel stragglers, and shut the listener down. Serve returns nil
// after a clean drain.
func (s *Server) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	s.log.Info("kservd listening", "addr", ln.Addr().String(),
		"workers", s.pool.Stats().Workers, "queue_depth", s.cfg.QueueDepth)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	s.log.Info("shutdown requested, draining", "timeout", s.cfg.DrainTimeout,
		"in_flight", s.adm.inUse())
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	drainErr := s.Shutdown(drainCtx)

	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed
	return drainErr
}

// Shutdown drains the server: new submissions are rejected with 503
// (and /healthz reports draining) while in-flight jobs run to
// completion. If ctx expires first, the remaining jobs' contexts are
// canceled — cancellation propagates into sim.CPU.RunContext, the jobs
// fail with ErrCanceled, and Shutdown returns ctx's error. The job
// store stays readable either way, so clients can still fetch results
// of drained jobs. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.log.Warn("drain deadline expired, canceling in-flight jobs",
			"in_flight", s.adm.inUse())
		s.jobsCancel()
		<-done // cancellation reaches the interpreter loop quickly
	}
	s.pool.Close()
	if s.exporter != nil {
		// Flush the final telemetry batches (spans of the jobs that just
		// drained plus one last metric snapshot) before giving up on the
		// collector.
		flushCtx, cancelFlush := context.WithTimeout(context.Background(), 5*time.Second)
		s.exporter.Shutdown(flushCtx)
		cancelFlush()
	}
	s.log.Info("drained", "jobs_done", s.metrics.completed.Value(),
		"jobs_failed", s.metrics.failed.Value())
	return err
}
