package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	kahrisma "repro"
	"repro/internal/server"
)

// Two distinct programs so the mixed-ISA fleet exercises two artifact
// cache keys.
const progA = `
int main() {
    int s = 0;
    for (int i = 1; i <= 2000; i++) s += i % 7;
    printf("a=%d\n", s);
    return s & 0xFF;
}
`

const progB = `
int dot(int* x, int* y) {
    int s = 0;
    for (int i = 0; i < 64; i++) s += x[i] * y[i];
    return s;
}
int xs[64]; int ys[64];
int main() {
    for (int i = 0; i < 64; i++) { xs[i] = i; ys[i] = 64 - i; }
    int s = 0;
    for (int r = 0; r < 20; r++) s += dot(xs, ys);
    printf("b=%d\n", s);
    return s & 0xFF;
}
`

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func submit(t *testing.T, ts *httptest.Server, req server.JobRequest) server.JobStatus {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d, body %s", resp.StatusCode, data)
	}
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding accept response %q: %v", data, err)
	}
	if st.ID == "" || st.State != server.StateQueued {
		t.Fatalf("accept response %+v", st)
	}
	return st
}

// pollResult polls until the job reaches a terminal state.
func pollResult(t *testing.T, ts *httptest.Server, id string) server.JobResult {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var res server.JobResult
			if err := json.Unmarshal(data, &res); err != nil {
				t.Fatalf("decoding result %q: %v", data, err)
			}
			return res
		case http.StatusConflict:
			if time.Now().After(deadline) {
				t.Fatalf("job %s still unfinished: %s", id, data)
			}
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("GET result: status %d, body %s", resp.StatusCode, data)
		}
	}
}

func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	return string(data)
}

// metricValue extracts the sample value of an exact series name (with
// labels, if any) from a Prometheus text body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not found in:\n%s", series, body)
	return 0
}

// The end-to-end contract of the issue: 16 concurrent HTTP submissions
// of mixed RISC/VLIW jobs return cycle counts bit-identical to serial
// Executable.Run baselines, repeat submissions hit the artifact cache,
// and /metrics reflects all of it.
func TestEndToEndConcurrentMixedJobs(t *testing.T) {
	// Serial baselines through the library facade.
	sys, err := kahrisma.New()
	if err != nil {
		t.Fatal(err)
	}
	type variant struct {
		isa, src string
		want     *kahrisma.RunResult
	}
	variants := []*variant{
		{isa: "RISC", src: progA},
		{isa: "VLIW4", src: progB},
	}
	for _, v := range variants {
		exe, err := sys.BuildC(v.isa, map[string]string{"main.c": v.src})
		if err != nil {
			t.Fatal(err)
		}
		if v.want, err = exe.Run(context.Background(), kahrisma.WithModels("ILP", "DOE")); err != nil {
			t.Fatal(err)
		}
	}

	_, ts := newTestServer(t, server.Config{Workers: 4, QueueDepth: 32})

	const jobs = 16
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := variants[i%2]
			st := submit(t, ts, server.JobRequest{
				ISA:     v.isa,
				Sources: map[string]string{"main.c": v.src},
				Models:  []string{"ILP", "DOE"},
			})
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	for i, id := range ids {
		res := pollResult(t, ts, id)
		v := variants[i%2]
		if res.State != server.StateDone {
			t.Fatalf("job %d (%s): state %s, error %q", i, v.isa, res.State, res.Error)
		}
		if res.ExitCode != v.want.ExitCode || res.Output != v.want.Output {
			t.Errorf("job %d (%s): exit/output %d/%q, serial baseline %d/%q",
				i, v.isa, res.ExitCode, res.Output, v.want.ExitCode, v.want.Output)
		}
		if res.Instructions != v.want.Instructions {
			t.Errorf("job %d (%s): %d instructions, serial baseline %d",
				i, v.isa, res.Instructions, v.want.Instructions)
		}
		for _, m := range []string{"ILP", "DOE"} {
			if res.Cycles[m] != v.want.Cycles[m] {
				t.Errorf("job %d (%s): %s cycles %d != serial %d — served run is not bit-identical",
					i, v.isa, m, res.Cycles[m], v.want.Cycles[m])
			}
		}
		if res.WallMS <= 0 {
			t.Errorf("job %d: wall_ms %f", i, res.WallMS)
		}
	}

	// A repeat submission of an identical program must be a recorded
	// artifact-cache hit: the toolchain is skipped, the cycles stay
	// bit-identical.
	st := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progA},
		Models:  []string{"ILP", "DOE"},
	})
	res := pollResult(t, ts, st.ID)
	if res.State != server.StateDone {
		t.Fatalf("repeat job: state %s, error %q", res.State, res.Error)
	}
	if !res.CacheHit {
		t.Error("repeat submission of an identical program was not an artifact-cache hit")
	}
	if res.Cycles["DOE"] != variants[0].want.Cycles["DOE"] {
		t.Errorf("cached-executable DOE cycles %d != serial %d", res.Cycles["DOE"], variants[0].want.Cycles["DOE"])
	}

	// Status endpoint agrees, and unknown jobs 404.
	stResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var status server.JobStatus
	if err := json.NewDecoder(stResp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if status.State != server.StateDone || !status.CacheHit || status.FinishedAt == nil {
		t.Errorf("status after completion: %+v", status)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope/result"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %v, %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// Metrics: counters may lag the result poll by one scheduler beat
	// (the record finishes before the counter increments), so give the
	// completed counter a bounded moment to settle.
	const total = jobs + 1
	var body string
	for i := 0; i < 1000; i++ {
		body = metricsBody(t, ts)
		if metricValue(t, body, "kservd_jobs_completed_total") == total {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	checks := []struct {
		series string
		min    float64
	}{
		{"kservd_jobs_accepted_total", total},
		{"kservd_jobs_completed_total", total},
		{"kservd_sim_instructions_total", 1},
		{`kservd_sim_cycles_total{model="DOE"}`, 1},
		{`kservd_sim_cycles_total{model="ILP"}`, 1},
		{`kservd_cache_misses_total{cache="exe"}`, 2},
	}
	for _, c := range checks {
		if got := metricValue(t, body, c.series); got < c.min {
			t.Errorf("%s = %v, want >= %v", c.series, got, c.min)
		}
	}
	// 17 submissions over 2 unique programs: everything after the two
	// cold builds rode the cache.
	if hits := metricValue(t, body, `kservd_cache_hits_total{cache="exe"}`); hits < total-2 {
		t.Errorf("exe cache hits = %v, want >= %d", hits, total-2)
	}
	if got := metricValue(t, body, "kservd_jobs_failed_total"); got != 0 {
		t.Errorf("failed jobs = %v, want 0", got)
	}
	if got := metricValue(t, body, "kservd_queue_depth"); got != 0 {
		t.Errorf("queue depth after drain = %v, want 0", got)
	}

	// Healthy while serving.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v, %v", resp, err)
	}
	resp.Body.Close()
}

// A failing build surfaces as a failed job with the compile error, not
// as an HTTP error, and counts on the failure metrics.
func TestBuildFailureIsJobFailure(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	st := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"bad.c": "int main() { return undeclared; }"},
	})
	res := pollResult(t, ts, st.ID)
	if res.State != server.StateFailed || res.Error == "" {
		t.Fatalf("result = %+v, want failed with compile error", res)
	}
	if !strings.Contains(res.Error, "bad.c") {
		t.Errorf("error %q does not name the failing source", res.Error)
	}
}

// badWordAsm seeds the KB001 defect of the analysis fixtures: a word
// that decodes under no operation-table entry.
const badWordAsm = `
	.global main
	.func main
main:
	.word 0xFFFFFFFF
	ret
	.endfunc
`

// ambiguousADL seeds the KA001 defect: two operations with identical
// detection patterns, which strict elaboration refuses.
const ambiguousADL = `
architecture T
registers G { count 32 width 32 zero r0 }
format I {
  field opcode 31:26 const
  field rd 25:21 reg dst
  field rs1 20:16 reg src1
  field imm 15:0 imm imm signed
}
operation A { format I set opcode = 1 class alu latency 1 sem addi }
operation B { format I set opcode = 1 class alu latency 1 sem addi }
isa R { id 0 issue 1 default }
`

func analyze(t *testing.T, ts *httptest.Server, req server.AnalyzeRequest) (int, server.AnalyzeResult, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res server.AnalyzeResult
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatalf("decoding analyze response %q: %v", data, err)
		}
	}
	return resp.StatusCode, res, string(data)
}

// POST /v1/analyze runs the klint checks synchronously and shares the
// job API's artifact caches, so analyzing a program warms the build for
// a later simulation of the same program.
func TestAnalyzeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})

	// A clean program analyzes clean; the first request builds cold.
	clean := server.AnalyzeRequest{ISA: "RISC", Sources: map[string]string{"main.c": progA}}
	code, res, raw := analyze(t, ts, clean)
	if code != http.StatusOK || !res.Clean || res.Errors != 0 || res.CacheHit {
		t.Fatalf("clean analyze: status %d, result %+v (%s)", code, res, raw)
	}
	// The repeat rides the executable cache...
	if _, res, _ = analyze(t, ts, clean); !res.CacheHit {
		t.Error("repeat analyze of an identical program was not a cache hit")
	}
	// ...and so does a simulation job of the very same program: the
	// analyze and job paths share one content-addressed cache.
	job := pollResult(t, ts, submit(t, ts, server.JobRequest{
		ISA: "RISC", Sources: map[string]string{"main.c": progA},
	}).ID)
	if job.State != server.StateDone || !job.CacheHit {
		t.Errorf("job after analyze: state %s cache_hit %v, want done hit", job.State, job.CacheHit)
	}

	// A seeded undecodable word comes back as a KB001 error diagnostic.
	code, res, raw = analyze(t, ts, server.AnalyzeRequest{
		ISA: "RISC", Lang: "asm", Sources: map[string]string{"main.s": badWordAsm},
	})
	if code != http.StatusOK || res.Clean || res.Errors == 0 {
		t.Fatalf("bad-word analyze: status %d, result %+v (%s)", code, res, raw)
	}
	found := false
	for _, d := range res.Program {
		if d.Check == "KB001" && d.Severity == kahrisma.SeverityError &&
			strings.Contains(d.Msg, "illegal operation word 0xffffffff") {
			found = true
		}
	}
	if !found {
		t.Errorf("no KB001 diagnostic in %+v", res.Program)
	}

	// An ADL that strict elaboration refuses comes back as KA001 model
	// diagnostics, and the program pass is skipped.
	code, res, raw = analyze(t, ts, server.AnalyzeRequest{
		ISA: "R", ADL: ambiguousADL, Sources: map[string]string{"main.s": badWordAsm}, Lang: "asm",
	})
	if code != http.StatusOK || res.Errors == 0 || len(res.Program) != 0 {
		t.Fatalf("broken-ADL analyze: status %d, result %+v (%s)", code, res, raw)
	}
	if len(res.Model) == 0 || res.Model[0].Check != "KA001" {
		t.Errorf("model diagnostics = %+v, want KA001 first", res.Model)
	}

	// min_severity filters the reported diagnostics but not the totals.
	code, res, _ = analyze(t, ts, server.AnalyzeRequest{
		ISA: "RISC", Sources: map[string]string{"main.c": progA}, DOEBounds: true, MinSeverity: "warning",
	})
	if code != http.StatusOK || len(res.Program) != 0 || !res.Clean {
		t.Errorf("filtered analyze: status %d, result %+v (KB005 info should be filtered)", code, res)
	}

	// Requests that can never run are rejected up front.
	if code, _, raw = analyze(t, ts, server.AnalyzeRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty analyze request: status %d (%s)", code, raw)
	}
	if code, _, raw = analyze(t, ts, server.AnalyzeRequest{
		ISA: "RISC", Sources: map[string]string{"m.c": progA}, MinSeverity: "loud",
	}); code != http.StatusBadRequest {
		t.Errorf("bad min_severity: status %d (%s)", code, raw)
	}
	// A well-formed request whose source does not compile is 422.
	if code, _, raw = analyze(t, ts, server.AnalyzeRequest{
		ISA: "RISC", Sources: map[string]string{"bad.c": "int main() { return undeclared; }"},
	}); code != http.StatusUnprocessableEntity {
		t.Errorf("uncompilable analyze: status %d (%s)", code, raw)
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, "kservd_analyses_total"); got < 5 {
		t.Errorf("kservd_analyses_total = %v, want >= 5", got)
	}
	if got := metricValue(t, body, `kservd_analysis_diagnostics_total{severity="error"}`); got < 2 {
		t.Errorf("analysis error diagnostics = %v, want >= 2", got)
	}
	if got := metricValue(t, body, "kservd_analyses_failed_total"); got != 1 {
		t.Errorf("kservd_analyses_failed_total = %v, want 1", got)
	}
}

// Custom-ADL jobs elaborate through the model cache: the second job
// reuses the elaborated system.
func TestCustomADLJobs(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2})
	req := server.JobRequest{
		ISA:     "RISC",
		ADL:     kahrisma.ADL(),
		Sources: map[string]string{"main.c": progA},
		Models:  []string{"DOE"},
	}
	first := pollResult(t, ts, submit(t, ts, req).ID)
	if first.State != server.StateDone {
		t.Fatalf("ADL job failed: %q", first.Error)
	}
	second := pollResult(t, ts, submit(t, ts, req).ID)
	if second.State != server.StateDone || !second.CacheHit {
		t.Fatalf("repeat ADL job: %+v, want done cache hit", second)
	}
	body := metricsBody(t, ts)
	if hits := metricValue(t, body, `kservd_cache_hits_total{cache="model"}`); hits < 1 {
		t.Errorf("model cache hits = %v, want >= 1", hits)
	}
	if first.Cycles["DOE"] == 0 || first.Cycles["DOE"] != second.Cycles["DOE"] {
		t.Errorf("DOE cycles %d vs %d across identical ADL jobs", first.Cycles["DOE"], second.Cycles["DOE"])
	}
}

// The analysis cache serves a repeat POST /v1/analyze from its
// fingerprint key: the second response carries a byte-identical report
// (everything but the cache_hit marker) without re-running the checks,
// and the analysis cache counters move.
func TestAnalyzeReportCache(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})

	deadStoreAsm := `
	.global main
	.func main
main:
	li t5, 7
	li a0, 0
	ret
	.endfunc
`
	req := server.AnalyzeRequest{
		ISA: "RISC", Lang: "asm",
		Sources:   map[string]string{"main.s": deadStoreAsm},
		DOEBounds: true,
	}
	report := func(raw string) string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "cache_hit")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	code, first, rawFirst := analyze(t, ts, req)
	if code != http.StatusOK || first.CacheHit {
		t.Fatalf("cold analyze: status %d, cache_hit %v (%s)", code, first.CacheHit, rawFirst)
	}
	if len(findDiags(first.Program, "KB007")) == 0 {
		t.Fatalf("no KB007 in cold report: %s", rawFirst)
	}
	code, second, rawSecond := analyze(t, ts, req)
	if code != http.StatusOK || !second.CacheHit {
		t.Fatalf("repeat analyze: status %d, cache_hit %v (%s)", code, second.CacheHit, rawSecond)
	}
	if report(rawFirst) != report(rawSecond) {
		t.Errorf("repeat report differs from the first:\n%s\n---\n%s", rawFirst, rawSecond)
	}

	// A different Checks selection is a different report: not a hit,
	// and the KB007 finding is filtered out.
	code, third, raw := analyze(t, ts, server.AnalyzeRequest{
		ISA: "RISC", Lang: "asm",
		Sources:   map[string]string{"main.s": deadStoreAsm},
		DOEBounds: true,
		Checks:    []string{"KB001"},
	})
	if code != http.StatusOK || third.CacheHit {
		t.Fatalf("filtered analyze: status %d, cache_hit %v (%s)", code, third.CacheHit, raw)
	}
	if len(findDiags(third.Program, "KB007")) != 0 {
		t.Errorf("Checks filter leaked KB007: %s", raw)
	}

	// Unknown check IDs are rejected up front.
	if code, _, raw = analyze(t, ts, server.AnalyzeRequest{
		ISA: "RISC", Sources: map[string]string{"m.c": progA}, Checks: []string{"KB999"},
	}); code != http.StatusBadRequest {
		t.Errorf("unknown check: status %d (%s)", code, raw)
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, `kservd_cache_hits_total{cache="analysis"}`); got != 1 {
		t.Errorf(`kservd_cache_hits_total{cache="analysis"} = %v, want 1`, got)
	}
	if got := metricValue(t, body, `kservd_cache_misses_total{cache="analysis"}`); got < 2 {
		t.Errorf(`kservd_cache_misses_total{cache="analysis"} = %v, want >= 2`, got)
	}
}

// findDiags filters diagnostics by check ID.
func findDiags(ds []kahrisma.Diagnostic, check string) []kahrisma.Diagnostic {
	var out []kahrisma.Diagnostic
	for _, d := range ds {
		if d.Check == check {
			out = append(out, d)
		}
	}
	return out
}
