package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
)

// progLong runs long enough (tens of millions of operations) that a
// client can join its event stream while the simulation is in flight.
const progLong = `
int main() {
    int s = 0;
    for (int i = 0; i < 500000; i++) s += i % 13;
    printf("s=%d\n", s);
    return s & 0xFF;
}
`

type sseEvent struct {
	id    string
	event string
	data  string
}

// readEvent parses the next SSE frame, skipping comment lines.
func readEvent(r *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	seen := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return ev, nil
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "id: "):
			ev.id, seen = line[len("id: "):], true
		case strings.HasPrefix(line, "event: "):
			ev.event, seen = line[len("event: "):], true
		case strings.HasPrefix(line, "data: "):
			ev.data, seen = line[len("data: "):], true
		}
	}
}

// openStream connects to the job's SSE endpoint; lastEventID != ""
// resumes via the standard header.
func openStream(t *testing.T, url, id, lastEventID string) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequest("GET", url+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET events: status %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

// resultNow fetches the job result endpoint once; a 409 means the job
// is still running.
func resultNow(t *testing.T, url, id string) int {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// The acceptance scenario of the issue: a client subscribed to a
// running job receives its first trace event while the job is still in
// flight, follows the stream to the terminal done event, and the
// streamed job's final counts are bit-identical to a non-streamed run
// of the same program.
func TestSSELiveStreamEndToEnd(t *testing.T) {
	// Per-op streaming under -race runs well past the default per-job
	// timeout; raise the cap so the job finishes rather than cancels.
	_, ts := newTestServer(t, server.Config{MaxTimeout: 5 * time.Minute})

	req := server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progLong},
		Models:  []string{"ILP", "DOE"},
		Stream:  true,
	}
	st := submit(t, ts, req)

	_, r := openStream(t, ts.URL, st.ID, "")
	first, err := readEvent(r)
	if err != nil {
		t.Fatalf("reading first event: %v", err)
	}
	if code := resultNow(t, ts.URL, st.ID); code != http.StatusConflict {
		t.Fatalf("result status after first event = %d, want 409 (job still running)", code)
	}
	t.Logf("first event (%s, seq %s) arrived while job was running", first.event, first.id)

	// Follow the stream to the end; the final frame must be done.
	var done trace.Done
	var last sseEvent
	delivered := 0 // id-framed events; gap frames carry no id
	var sawOp, sawProgress bool
	for ev := first; ; {
		if ev.id != "" {
			delivered++
		}
		switch ev.event {
		case "op":
			sawOp = true
		case "progress":
			sawProgress = true
		case "done":
			if err := json.Unmarshal([]byte(ev.data), &struct {
				Done *trace.Done `json:"done"`
			}{&done}); err != nil {
				t.Fatalf("decoding done frame %q: %v", ev.data, err)
			}
		}
		last = ev
		next, err := readEvent(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ev = next
	}
	if last.event != "done" {
		t.Fatalf("stream ended with %q after %d events, want done", last.event, delivered)
	}
	if !sawOp || !sawProgress {
		t.Errorf("sawOp=%v sawProgress=%v, want both on a streamed job", sawOp, sawProgress)
	}

	res := pollResult(t, ts, st.ID)
	if res.State != server.StateDone {
		t.Fatalf("job state %q: %s", res.State, res.Error)
	}
	if done.ExitCode != res.ExitCode || done.Instructions != res.Instructions {
		t.Errorf("done event %+v disagrees with result exit=%d instructions=%d",
			done, res.ExitCode, res.Instructions)
	}

	// Same program without streaming: counts must match bit for bit.
	req.Stream = false
	plain := pollResult(t, ts, submit(t, ts, req).ID)
	if plain.ExitCode != res.ExitCode || plain.Instructions != res.Instructions ||
		plain.Operations != res.Operations {
		t.Errorf("streamed run diverged from plain: exit %d/%d instr %d/%d ops %d/%d",
			res.ExitCode, plain.ExitCode, res.Instructions, plain.Instructions,
			res.Operations, plain.Operations)
	}
	for m, c := range plain.Cycles {
		if res.Cycles[m] != c {
			t.Errorf("model %s cycles = %d streamed, %d plain", m, res.Cycles[m], c)
		}
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, "kservd_stream_events_sent_total"); got < float64(delivered) {
		t.Errorf("kservd_stream_events_sent_total = %v, want >= %d", got, delivered)
	}
}

// Reconnecting with Last-Event-ID resumes exactly after the last frame
// the client saw — no duplicates, no skips — as long as the ring still
// holds the cursor.
func TestSSEResumeWithLastEventID(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	st := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progA},
	})
	pollResult(t, ts, st.ID) // cheap events only; all fit the ring

	resp, r := openStream(t, ts.URL, st.ID, "")
	var seen []sseEvent
	for {
		ev, err := readEvent(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, ev)
	}
	resp.Body.Close()
	if len(seen) < 2 {
		t.Fatalf("finished job replayed %d events, want >= 2 (progress + done)", len(seen))
	}

	// "Disconnect" happened after the first event; resume from there.
	_, r2 := openStream(t, ts.URL, st.ID, seen[0].id)
	var resumed []sseEvent
	for {
		ev, err := readEvent(r2)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		resumed = append(resumed, ev)
	}
	if len(resumed) != len(seen)-1 {
		t.Fatalf("resumed %d events, want %d", len(resumed), len(seen)-1)
	}
	for i, ev := range resumed {
		if ev.id != seen[i+1].id || ev.data != seen[i+1].data {
			t.Errorf("resumed event %d = %+v, want %+v", i, ev, seen[i+1])
		}
	}

	firstSeq, _ := strconv.ParseUint(seen[0].id, 10, 64)
	if got, _ := strconv.ParseUint(resumed[0].id, 10, 64); got != firstSeq+1 {
		t.Errorf("resume started at seq %d, want %d", got, firstSeq+1)
	}
}

// A consumer that falls behind a tiny ring gets an explicit gap frame
// with the missed count, then the bounded tail — and the simulation
// itself never stalls waiting for the consumer.
func TestSSESlowConsumerGetsGapWithoutStallingJob(t *testing.T) {
	_, ts := newTestServer(t, server.Config{StreamRingSize: 64, MaxTimeout: 5 * time.Minute})

	st := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progLong},
		Stream:  true, // far more op events than the 64-slot ring holds
	})
	// No subscriber reads anything while the job runs. If a slow (here:
	// absent) consumer could stall the simulation, this poll would hang.
	res := pollResult(t, ts, st.ID)
	if res.State != server.StateDone {
		t.Fatalf("job state %q: %s", res.State, res.Error)
	}

	_, r := openStream(t, ts.URL, st.ID, "")
	var gap struct {
		Missed uint64 `json:"missed"`
	}
	var tail int
	sawGap := false
	for {
		ev, err := readEvent(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.event == "gap" {
			if sawGap {
				t.Error("multiple gap frames on one replay")
			}
			sawGap = true
			if err := json.Unmarshal([]byte(ev.data), &gap); err != nil {
				t.Fatalf("decoding gap frame %q: %v", ev.data, err)
			}
			if tail != 0 {
				t.Error("gap frame arrived after events")
			}
			continue
		}
		tail++
	}
	if !sawGap || gap.Missed == 0 {
		t.Fatalf("no gap frame on a replay that lost events (sawGap=%v missed=%d)", sawGap, gap.Missed)
	}
	if tail > 64 {
		t.Errorf("replay delivered %d events, ring capacity 64", tail)
	}

	body := metricsBody(t, ts)
	if got := metricValue(t, body, "kservd_stream_events_missed_total"); got < float64(gap.Missed) {
		t.Errorf("kservd_stream_events_missed_total = %v, want >= %d", got, gap.Missed)
	}
	if got := metricValue(t, body, "kservd_stream_subscribers"); got != 0 {
		t.Errorf("kservd_stream_subscribers = %v after all streams closed", got)
	}
}

// Draining the server cancels in-flight jobs; their event streams end
// with a terminal done frame and a clean close, not a hang.
func TestSSECleanCloseOnDrain(t *testing.T) {
	s, ts := newTestServer(t, server.Config{})

	st := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progLong},
		Stream:  true,
	})
	_, r := openStream(t, ts.URL, st.ID, "")
	if _, err := readEvent(r); err != nil {
		t.Fatalf("first event: %v", err) // job is live
	}

	// Drain with an immediate deadline: in-flight jobs get canceled.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	go s.Shutdown(ctx)

	deadline := time.AfterFunc(30*time.Second, func() { t.Error("stream did not close on drain") })
	defer deadline.Stop()
	var last sseEvent
	for {
		ev, err := readEvent(r)
		if err != nil {
			break // EOF: server closed the stream
		}
		last = ev
	}
	if last.event != "done" {
		t.Fatalf("stream ended with %q on drain, want done", last.event)
	}
	var done struct {
		Done *trace.Done `json:"done"`
	}
	if err := json.Unmarshal([]byte(last.data), &done); err != nil || done.Done == nil {
		t.Fatalf("decoding done frame %q: %v", last.data, err)
	}
	if done.Done.Error == "" {
		t.Errorf("canceled job's done frame carries no error: %+v", done.Done)
	}
}

// Idle streams carry heartbeat comments so proxies and clients can tell
// a quiet job from a dead connection.
func TestSSEHeartbeat(t *testing.T) {
	// One worker: the second job sits queued — an open, silent stream —
	// while the first occupies the pool.
	_, ts := newTestServer(t, server.Config{Workers: 1, HeartbeatInterval: 30 * time.Millisecond, MaxTimeout: 5 * time.Minute})

	// Non-streamed simulation retires tens of MIPS, so the worker needs
	// a big loop to stay busy across several heartbeat intervals.
	const progBusy = `
int main() {
    int s = 0;
    for (int i = 0; i < 5000000; i++) s += i % 13;
    return s & 0xFF;
}
`
	busy := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progBusy},
	})
	// Only submit the probe once the long job holds the lone worker;
	// otherwise the probe may run (and close its stream) first.
	for deadline := time.Now().Add(30 * time.Second); ; {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + busy.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st server.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == server.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("busy job stuck in state %q", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progA},
	})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 256)
	n, err := resp.Body.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), ": heartbeat") {
		t.Fatalf("no heartbeat on an idle stream, got %q", buf[:n])
	}
	pollResult(t, ts, busy.ID)
	pollResult(t, ts, queued.ID)
}

func TestSSERequestErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	resp, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	st := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progA},
	})
	pollResult(t, ts, st.ID)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed Last-Event-ID: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events?from=-3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed from: status %d, want 400", resp.StatusCode)
	}
}

// A job that fails in the toolchain — before any simulation — still
// closes its event stream with a done frame carrying the build error.
func TestSSEDoneOnBuildFailure(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	st := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": "int main( { return 0; }"},
	})
	res := pollResult(t, ts, st.ID)
	if res.State != server.StateFailed {
		t.Fatalf("state %q, want failed", res.State)
	}

	_, r := openStream(t, ts.URL, st.ID, "")
	ev, err := readEvent(r)
	if err != nil {
		t.Fatal(err)
	}
	if ev.event != "done" {
		t.Fatalf("first frame %q, want done", ev.event)
	}
	var done struct {
		Done *trace.Done `json:"done"`
	}
	if err := json.Unmarshal([]byte(ev.data), &done); err != nil || done.Done == nil || done.Done.Error == "" {
		t.Fatalf("done frame %q missing build error (%v)", ev.data, err)
	}
	if _, err := readEvent(r); err != io.EOF {
		t.Fatalf("frames after done: %v", err)
	}
}
