package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	kahrisma "repro"
	"repro/internal/server"
)

// histogram pulls one rendered histogram family out of a Prometheus
// text body: cumulative bucket counts in le order, sum and count.
func histogram(t *testing.T, body, name string) (buckets []uint64, sum float64, count uint64) {
	t.Helper()
	found := false
	for _, line := range strings.Split(body, "\n") {
		val := line[strings.LastIndex(line, " ")+1:]
		switch {
		case strings.HasPrefix(line, name+"_bucket{"):
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			buckets = append(buckets, v)
			found = true
		case strings.HasPrefix(line, name+"_sum "):
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("bad sum line %q: %v", line, err)
			}
			sum = f
		case strings.HasPrefix(line, name+"_count "):
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}
	if !found {
		t.Fatalf("histogram %s not rendered in:\n%s", name, body)
	}
	return buckets, sum, count
}

// checkHistogram asserts the Prometheus histogram contract on one
// rendered family: buckets cumulative and monotone, +Inf == _count.
func checkHistogram(t *testing.T, body, name string, wantMin uint64) {
	t.Helper()
	buckets, sum, count := histogram(t, body, name)
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Errorf("%s: bucket counts not monotonic: %v", name, buckets)
		}
	}
	if len(buckets) == 0 || buckets[len(buckets)-1] != count {
		t.Errorf("%s: +Inf bucket %v != _count %d", name, buckets, count)
	}
	if count < wantMin {
		t.Errorf("%s: _count = %d, want >= %d", name, count, wantMin)
	}
	if count > 0 && sum < 0 {
		t.Errorf("%s: _sum = %v negative", name, sum)
	}
}

// One real job must populate the latency distributions on /metrics
// with consistent histogram renderings.
func TestMetricsHistogramExposition(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2})
	st := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"main.c": progA},
		Models:  []string{"DOE"},
	})
	if res := pollResult(t, ts, st.ID); res.State != server.StateDone {
		t.Fatalf("job failed: %+v", res)
	}

	body := metricsBody(t, ts)
	checkHistogram(t, body, "kservd_job_queue_wait_seconds", 1)
	checkHistogram(t, body, "kservd_job_run_seconds", 1)
	checkHistogram(t, body, "kservd_job_build_seconds", 1)
	// No batch was submitted: the family renders with zero observations.
	checkHistogram(t, body, "kservd_batch_size_jobs", 0)
	checkHistogram(t, body, "kservd_sse_fanout_lag_seconds", 0)

	// The legacy counter surface must be intact next to the histograms.
	if got := metricValue(t, body, "kservd_jobs_completed_total"); got < 1 {
		t.Errorf("jobs completed = %v, want >= 1", got)
	}
}

// otlpCollector is a fake OTLP/HTTP collector counting batches.
type otlpCollector struct {
	mu      sync.Mutex
	traces  [][]byte
	metrics [][]byte
}

func (c *otlpCollector) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		c.mu.Lock()
		switch r.URL.Path {
		case "/v1/traces":
			c.traces = append(c.traces, body)
		case "/v1/metrics":
			c.metrics = append(c.metrics, body)
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
}

func (c *otlpCollector) counts() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces), len(c.metrics)
}

// The acceptance e2e: a kservd with telemetry fully enabled (span
// logging, OTLP export, sampled profiling) runs a real job whose
// results are bit-identical to a plain library run, and the fake
// collector receives at least one span batch and one metric batch.
func TestOTLPEndToEndFromRealJob(t *testing.T) {
	// Plain, telemetry-free baseline through the facade.
	sys, err := kahrisma.New()
	if err != nil {
		t.Fatal(err)
	}
	exe, err := sys.BuildC("RISC", map[string]string{"main.c": progA})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exe.Run(context.Background(), kahrisma.WithModels("ILP", "DOE"))
	if err != nil {
		t.Fatal(err)
	}

	col := &otlpCollector{}
	cts := httptest.NewServer(col.handler())
	defer cts.Close()

	_, ts := newTestServer(t, server.Config{
		Workers:      2,
		TraceSpans:   true,
		OTLPEndpoint: cts.URL,
		OTLPInterval: 50 * time.Millisecond,
	})
	st := submit(t, ts, server.JobRequest{
		ISA:           "RISC",
		Sources:       map[string]string{"main.c": progA},
		Models:        []string{"ILP", "DOE"},
		Profile:       true,
		ProfileSample: 64,
	})
	res := pollResult(t, ts, st.ID)
	if res.State != server.StateDone {
		t.Fatalf("job failed: %+v", res)
	}

	// Bit-identity under full telemetry.
	if res.ExitCode != want.ExitCode || res.Output != want.Output ||
		res.Instructions != want.Instructions || res.Operations != want.Operations {
		t.Errorf("telemetry changed results: %+v vs baseline %+v", res, want)
	}
	for model, cycles := range want.Cycles {
		if res.Cycles[model] != cycles {
			t.Errorf("model %s: %d cycles under telemetry, baseline %d", model, res.Cycles[model], cycles)
		}
	}
	if !res.Profiled {
		t.Error("sampled profiling did not mark the job profiled")
	}

	// The timed flush must deliver both signals without a shutdown.
	deadline := time.Now().Add(10 * time.Second)
	for {
		traces, metrics := col.counts()
		if traces >= 1 && metrics >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector got %d trace, %d metric batches, want >= 1 each", traces, metrics)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The span batch decodes as OTLP JSON and carries the job pipeline.
	col.mu.Lock()
	trace := append([]byte(nil), col.traces[0]...)
	col.mu.Unlock()
	var doc struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					Name    string `json:"name"`
					TraceID string `json:"traceId"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace batch: %v", err)
	}
	names := map[string]bool{}
	for _, s := range doc.ResourceSpans[0].ScopeSpans[0].Spans {
		names[s.Name] = true
		if len(s.TraceID) != 32 {
			t.Errorf("span %s trace id %q", s.Name, s.TraceID)
		}
	}
	if !names["simulate"] && !names["job"] && !names["build"] {
		t.Errorf("span batch carries none of the pipeline spans: %v", names)
	}
}

// Spans of jobs that never reach the pool — rejected at admission or
// failed in the toolchain — must still be closed with an error status.
func TestFailedJobSpansCloseWithError(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	log := slog.New(slog.NewJSONHandler(&syncWriter{w: &buf, mu: &mu}, nil))
	_, ts := newTestServer(t, server.Config{Workers: 1, TraceSpans: true, Logger: log})

	// Admission rejection: unknown ISA fails validation with a 400.
	body, _ := json.Marshal(server.JobRequest{ISA: "NOPE", Sources: map[string]string{"a.c": progA}})
	resp, _ := post(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid job: status %d", resp.StatusCode)
	}

	// Build failure: the job is accepted, then dies in the toolchain.
	st := submit(t, ts, server.JobRequest{
		ISA:     "RISC",
		Sources: map[string]string{"bad.c": "int main( { return }"},
	})
	if res := pollResult(t, ts, st.ID); res.State != server.StateFailed {
		t.Fatalf("broken source produced state %s", res.State)
	}

	mu.Lock()
	lines := strings.Split(buf.String(), "\n")
	mu.Unlock()
	var rejected, failedJob, failedBuild bool
	for _, line := range lines {
		var rec map[string]any
		if json.Unmarshal([]byte(line), &rec) != nil || rec["msg"] != "span" {
			continue
		}
		errStr, _ := rec["error"].(string)
		switch rec["span"] {
		case "job":
			if rec["reject_reason"] == "invalid" && errStr != "" {
				rejected = true
			}
			if errStr != "" && rec["reject_reason"] == nil {
				failedJob = true
			}
		case "build":
			if errStr != "" {
				failedBuild = true
			}
		}
	}
	if !rejected {
		t.Error("admission rejection produced no closed error span with reject_reason")
	}
	if !failedJob {
		t.Error("build-failed job's root span not closed with an error status")
	}
	if !failedBuild {
		t.Error("failing build stage's span not closed with an error status")
	}
}

// syncWriter serializes concurrent slog writes from job goroutines.
type syncWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
