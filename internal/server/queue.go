package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	kahrisma "repro"
	"repro/internal/prof/span"
	"repro/internal/trace"
)

// admission is the backpressure gate in front of the simulation pool: a
// fixed number of slots, one per accepted-but-unfinished job. When all
// slots are taken, POST /v1/jobs answers 429 with Retry-After instead
// of queueing unboundedly or blocking the handler.
type admission struct {
	max int64
	n   atomic.Int64
}

func newAdmission(depth int) *admission { return &admission{max: int64(depth)} }

// tryAcquire claims a slot, reporting false when the queue is full.
func (a *admission) tryAcquire() bool { return a.tryAcquireN(1) }

// tryAcquireN claims n slots atomically, reporting false when fewer
// than n are free — a batch is admitted whole or not at all, so a
// half-admitted batch can never wedge the queue.
func (a *admission) tryAcquireN(n int) bool {
	for {
		cur := a.n.Load()
		if cur+int64(n) > a.max {
			return false
		}
		if a.n.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

func (a *admission) release()       { a.n.Add(-1) }
func (a *admission) releaseN(n int) { a.n.Add(-int64(n)) }
func (a *admission) inUse() int64   { return a.n.Load() }
func (a *admission) depth() int64   { return a.max }

// jobRecord is the server-side state of one submitted job. The record
// outlives the job goroutine so clients can poll results after
// completion (and after a graceful drain).
type jobRecord struct {
	id        string
	submitted time.Time
	// stream is the job's live-event ring (GET /v1/jobs/{id}/events).
	// It is created with the record, fed by the simulator, and closed
	// by finish on every path, so subscribers always see the stream
	// end. Memory is bounded by the ring capacity.
	stream *trace.Streamer
	// trace is the submitter's span context (zero when the request
	// carried no traceparent header); job spans continue it.
	trace span.SpanContext

	mu       sync.Mutex
	state    string
	err      string
	cacheHit bool
	result   *kahrisma.RunResult
	// exe is the job's (possibly cache-shared) executable, retained so
	// the profile endpoint can symbolize hotspots after completion.
	exe      *kahrisma.Executable
	finished time.Time
	done     chan struct{}
}

func (r *jobRecord) setState(s string) {
	r.mu.Lock()
	r.state = s
	r.mu.Unlock()
}

func (r *jobRecord) setCacheHit(hit bool) {
	r.mu.Lock()
	r.cacheHit = hit
	r.mu.Unlock()
}

func (r *jobRecord) setExe(exe *kahrisma.Executable) {
	r.mu.Lock()
	r.exe = exe
	r.mu.Unlock()
}

// profile returns the job's profile and executable once finished; the
// profile is nil when the job did not run with profiling (or failed
// before the simulator produced one).
func (r *jobRecord) profile() (p *kahrisma.Profile, exe *kahrisma.Executable, state string, done bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateDone && r.state != StateFailed {
		return nil, nil, r.state, false
	}
	if r.result != nil {
		p = r.result.Profile
	}
	return p, r.exe, r.state, true
}

// finish transitions the record to done/failed exactly once and ends
// the live event stream. The simulator publishes the done event itself
// when the run started; this publish is the backstop for jobs that
// failed before the CPU ran (build errors, rejected ADLs) and a no-op
// otherwise.
func (r *jobRecord) finish(res *kahrisma.RunResult, err error) {
	r.mu.Lock()
	if err != nil {
		r.state = StateFailed
		r.err = err.Error()
	} else {
		r.state = StateDone
		r.result = res
	}
	r.finished = time.Now()
	r.mu.Unlock()
	d := trace.Done{}
	if err != nil {
		d.Error = err.Error()
	} else if res != nil {
		d.ExitCode = res.ExitCode
		d.Instructions = res.Instructions
	}
	r.stream.Done(d)
	close(r.done)
}

func (r *jobRecord) status() JobStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := JobStatus{
		ID:          r.id,
		State:       r.state,
		Error:       r.err,
		CacheHit:    r.cacheHit,
		SubmittedAt: r.submitted,
	}
	if !r.finished.IsZero() {
		f := r.finished
		st.FinishedAt = &f
	}
	return st
}

// resultJSON renders the terminal state; ok is false while the job is
// still in flight.
func (r *jobRecord) resultJSON() (JobResult, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateDone && r.state != StateFailed {
		return JobResult{ID: r.id, State: r.state}, false
	}
	out := JobResult{
		ID:       r.id,
		State:    r.state,
		Error:    r.err,
		CacheHit: r.cacheHit,
		WallMS:   float64(r.finished.Sub(r.submitted)) / float64(time.Millisecond),
	}
	if res := r.result; res != nil {
		out.ExitCode = res.ExitCode
		out.Output = res.Output
		out.Instructions = res.Instructions
		out.Operations = res.Operations
		out.Cycles = res.Cycles
		out.OPC = res.OPC
		out.L1MissRate = res.L1MissRate
		out.Profiled = res.Profile != nil
	}
	return out, true
}

// jobStore indexes records by id and bounds memory by evicting the
// oldest finished records beyond maxFinished (in-flight records are
// never evicted).
type jobStore struct {
	mu          sync.Mutex
	jobs        map[string]*jobRecord
	finished    []string // completion order, oldest first
	maxFinished int
}

func newJobStore(maxFinished int) *jobStore {
	if maxFinished < 1 {
		maxFinished = 1
	}
	return &jobStore{jobs: map[string]*jobRecord{}, maxFinished: maxFinished}
}

func (s *jobStore) create(streamRing int) *jobRecord {
	rec := &jobRecord{
		id:        newID(),
		submitted: time.Now(),
		stream:    trace.NewStreamer(streamRing),
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[rec.id] = rec
	s.mu.Unlock()
	return rec
}

func (s *jobStore) get(id string) *jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// markFinished records completion order and evicts beyond the cap.
func (s *jobStore) markFinished(id string) {
	s.mu.Lock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.maxFinished {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand does not fail on supported platforms.
		panic("server: rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
