// Package server is the simulation-as-a-service layer: a JSON-over-HTTP
// job API (cmd/kservd) in front of the concurrent batch engine
// (kahrisma.Pool). It owns the pieces a long-running daemon needs that
// the library facade does not:
//
//   - a content-addressed artifact cache (cache.go) reusing elaborated
//     architecture models and linked executables across requests;
//   - admission control (queue.go) — a bounded job queue answering 429
//   - Retry-After under backpressure, request-size limits, and
//     per-job fuel/timeout caps;
//   - observability (metrics.go) — Prometheus-text counters over jobs,
//     queue depth, cache hit rates and simulation throughput, plus
//     structured request logs;
//   - a graceful lifecycle (lifecycle.go) — SIGTERM drains in-flight
//     jobs with a deadline before cancellation reaches the simulator.
//
// See docs/server.md for the API reference and metrics glossary.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	kahrisma "repro"
	"repro/internal/driver"
	"repro/internal/obs"
	"repro/internal/prof/span"
	"repro/internal/trace"
)

// Config tunes the server; zero values select the documented defaults.
type Config struct {
	// Workers sizes the simulation pool; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds accepted-but-unfinished jobs; beyond it POST
	// /v1/jobs answers 429. <= 0 selects 64.
	QueueDepth int
	// MaxRequestBytes bounds the request body; <= 0 selects 1 MiB.
	MaxRequestBytes int64
	// MaxFuel caps (and defaults) the per-job instruction budget;
	// <= 0 selects 500,000,000.
	MaxFuel uint64
	// MaxTimeout caps (and defaults) the per-job wall-clock budget;
	// <= 0 selects 30s.
	MaxTimeout time.Duration
	// ExeCacheSize / ModelCacheSize bound the artifact caches in
	// entries; <= 0 selects 128 executables and 8 models.
	ExeCacheSize   int
	ModelCacheSize int
	// AnalysisCacheSize bounds the analysis report cache (POST
	// /v1/analyze results keyed by request fingerprint); <= 0
	// selects 128.
	AnalysisCacheSize int
	// MaxFinishedJobs bounds retained job records; <= 0 selects 4096.
	MaxFinishedJobs int
	// MaxCampaignPoints bounds the expanded (pre-dedup) grid of one
	// POST /v1/campaigns request; <= 0 selects 1024.
	MaxCampaignPoints int
	// StreamRingSize bounds every job's live-event ring (the per-job
	// streaming memory); <= 0 selects trace.DefaultRingSize (4096).
	StreamRingSize int
	// HeartbeatInterval paces SSE keep-alive comments on idle event
	// streams; <= 0 selects 15s.
	HeartbeatInterval time.Duration
	// DrainTimeout bounds the graceful drain in Serve's shutdown path;
	// <= 0 selects 30s. Shutdown callers pass their own deadline.
	DrainTimeout time.Duration
	// Logger receives structured request and lifecycle logs; nil
	// selects slog.Default().
	Logger *slog.Logger
	// TraceSpans emits pipeline span logs (internal/prof/span) for every
	// job: elaborate, build and simulate stages, correlated by W3C trace
	// ids. Requests carrying a traceparent header join the caller's
	// trace; others get a fresh root trace per job.
	TraceSpans bool
	// OTLPEndpoint, when set, exports finished pipeline spans and
	// periodic metric snapshots to an OTLP/HTTP collector at this base
	// URL (e.g. "http://localhost:4318"). Span export is independent of
	// TraceSpans (which controls span *logging*); either switch alone
	// activates the tracer. See docs/observability.md.
	OTLPEndpoint string
	// OTLPInterval paces OTLP flushes; <= 0 selects 10s.
	OTLPInterval time.Duration
	// ProfileSampleStride is the default per-PC sampling stride for
	// profiled jobs (0 or 1: exact attribution). A request's
	// "profile_sample" field overrides it per job.
	ProfileSampleStride uint64
	// DisableSuperblocks runs every job through the stepwise
	// interpreter instead of superblock decode traces — a debugging
	// escape hatch (kservd -no-superblocks); the results are
	// bit-identical either way.
	DisableSuperblocks bool
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	if c.MaxFuel == 0 {
		c.MaxFuel = 500_000_000
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.ExeCacheSize <= 0 {
		c.ExeCacheSize = 128
	}
	if c.ModelCacheSize <= 0 {
		c.ModelCacheSize = 8
	}
	if c.AnalysisCacheSize <= 0 {
		c.AnalysisCacheSize = 128
	}
	if c.MaxFinishedJobs <= 0 {
		c.MaxFinishedJobs = 4096
	}
	if c.MaxCampaignPoints <= 0 {
		c.MaxCampaignPoints = 1024
	}
	if c.StreamRingSize <= 0 {
		c.StreamRingSize = trace.DefaultRingSize
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 15 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is one simulation service instance. Create with New, mount
// Handler on an http.Server (or use Serve), stop with Shutdown.
type Server struct {
	cfg      Config
	log      *slog.Logger
	base     *kahrisma.System
	pool     *kahrisma.Pool
	tracer   *span.Tracer  // nil unless Config.TraceSpans or OTLPEndpoint
	exporter *obs.Exporter // nil unless Config.OTLPEndpoint

	adm           *admission
	store         *jobStore
	batches       *batchStore
	campaigns     *campaignStore
	exeCache      *Cache[*kahrisma.Executable]
	modelCache    *Cache[*kahrisma.System]
	analysisCache *Cache[*AnalyzeReport]
	metrics       *metrics

	started  time.Time
	draining atomic.Bool
	jobsWG   sync.WaitGroup
	// jobsCtx parents every job's context; jobsCancel aborts in-flight
	// simulations when a drain deadline expires.
	jobsCtx    context.Context
	jobsCancel context.CancelFunc
}

// New elaborates the built-in architecture, starts the simulation pool
// and returns a server ready to accept jobs.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	base, err := kahrisma.New()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg,
		log:           cfg.Logger,
		base:          base,
		pool:          kahrisma.NewPool(cfg.Workers),
		adm:           newAdmission(cfg.QueueDepth),
		store:         newJobStore(cfg.MaxFinishedJobs),
		batches:       newBatchStore(cfg.MaxFinishedJobs),
		campaigns:     newCampaignStore(cfg.MaxFinishedJobs),
		exeCache:      NewCache[*kahrisma.Executable](cfg.ExeCacheSize),
		modelCache:    NewCache[*kahrisma.System](cfg.ModelCacheSize),
		analysisCache: NewCache[*AnalyzeReport](cfg.AnalysisCacheSize),
		metrics:       newMetrics(),
		started:       time.Now(),
		jobsCtx:       ctx,
		jobsCancel:    cancel,
	}
	s.metrics.reg.OnCollect(s.collectMetrics)
	if cfg.OTLPEndpoint != "" {
		s.exporter = obs.NewExporter(obs.ExporterConfig{
			Endpoint: cfg.OTLPEndpoint,
			Interval: cfg.OTLPInterval,
			Logger:   cfg.Logger,
		}, s.metrics.reg)
	}
	switch {
	case cfg.TraceSpans && s.exporter != nil:
		s.tracer = span.NewTracerWithSink(cfg.Logger, s.exporter)
	case cfg.TraceSpans:
		s.tracer = span.NewTracer(cfg.Logger)
	case s.exporter != nil:
		// Export-only tracing: spans ship over OTLP without log lines.
		s.tracer = span.NewTracerWithSink(nil, s.exporter)
	}
	return s, nil
}

// Handler returns the server's route table wrapped in the structured
// request logger.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/batches", s.handleBatchSubmit)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatchStatus)
	mux.HandleFunc("GET /v1/batches/{id}/results", s.handleBatchResults)
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignStatus)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCampaignCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleCampaignReport)
	mux.HandleFunc("GET /v1/campaigns/{id}/points", s.handleCampaignPoints)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleCampaignEvents)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/profile", s.handleProfile)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logRequests(mux)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectJob(r, "job", rejectDraining)
		writeJSON(w, http.StatusServiceUnavailable, APIError{Error: "server is draining"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.rejectJob(r, "job", rejectOversized)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				APIError{Error: "request body exceeds " + strconv.FormatInt(tooBig.Limit, 10) + " bytes"})
			return
		}
		s.rejectJob(r, "job", rejectInvalid)
		writeJSON(w, http.StatusBadRequest, APIError{Error: "malformed request: " + err.Error()})
		return
	}
	if err := req.validate(s.base); err != nil {
		s.rejectJob(r, "job", rejectInvalid)
		writeJSON(w, http.StatusBadRequest, APIError{Error: err.Error()})
		return
	}
	if !s.adm.tryAcquire() {
		s.rejectJob(r, "job", rejectQueueFull)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			APIError{Error: "job queue is full", RetryAfterS: 1})
		return
	}
	s.metrics.accepted.Add(1)
	rec := s.store.create(s.cfg.StreamRingSize)
	// The job runs on a detached goroutine, so an incoming traceparent is
	// captured here and re-installed on the job's own context.
	if sc, ok := span.ParseTraceparent(r.Header.Get("traceparent")); ok {
		rec.trace = sc
	}
	s.jobsWG.Add(1)
	go s.runJob(rec, &req)
	w.Header().Set("Location", "/v1/jobs/"+rec.id)
	writeJSON(w, http.StatusAccepted, rec.status())
}

// runJob executes one admitted job on its own goroutine: resolve the
// architecture and executable through the artifact caches, then drive
// the simulation pool and record the outcome.
func (s *Server) runJob(rec *jobRecord, req *JobRequest) {
	defer s.jobsWG.Done()
	defer s.adm.release()

	res, err := s.execute(rec, req)
	rec.finish(res, err)
	s.store.markFinished(rec.id)
	if err != nil {
		s.metrics.failed.Add(1)
		s.log.Warn("job failed", "id", rec.id, "isa", req.ISA, "err", err)
	} else {
		s.metrics.completed.Add(1)
		s.metrics.harvest(res.Instructions, res.Operations, res.Cycles)
		s.metrics.jobTimings(res.QueueWait, res.SimWall)
		if res.Profile != nil {
			s.metrics.profiled.Add(1)
		}
	}
}

func (s *Server) execute(rec *jobRecord, req *JobRequest) (*kahrisma.RunResult, error) {
	ctx := s.traceCtx(rec.trace)
	ctx, job := span.Start(ctx, "job")
	job.SetAttr("job_id", rec.id)
	defer job.End()

	exe, opts, err := s.prepareJob(ctx, rec, req)
	if err != nil {
		job.SetError(err)
		return nil, err
	}

	rec.setState(StateRunning)
	_, sim := span.Start(ctx, "simulate")
	res, err := s.pool.Submit(s.jobsCtx, exe, opts...).Wait()
	if res != nil {
		sim.SetAttr("instructions", res.Instructions)
	}
	sim.SetError(err)
	sim.End()
	job.SetError(err)
	return res, err
}

// prepareJob resolves one job's executable through the artifact caches
// and assembles its run options — the shared build half of the
// single-job (POST /v1/jobs) and batch (POST /v1/batches) paths.
func (s *Server) prepareJob(ctx context.Context, rec *jobRecord, req *JobRequest) (*kahrisma.Executable, []kahrisma.Option, error) {
	rec.setState(StateBuilding)
	sys := s.base
	modelKey := "builtin"
	if req.ADL != "" {
		modelKey = driver.Fingerprint("adl", driver.Source{Name: "adl", Text: req.ADL})
		_, sp := span.Start(ctx, "elaborate")
		var err error
		var cached bool
		sys, cached, err = s.modelCache.GetOrBuild(modelKey, func() (*kahrisma.System, error) {
			return kahrisma.NewFromADL(req.ADL)
		})
		sp.SetAttr("cache_hit", cached)
		sp.SetError(err)
		sp.End()
		if err != nil {
			return nil, nil, err
		}
	}
	srcs := req.sources()
	exeKey := modelKey + "/" + driver.Fingerprint(req.ISA, srcs...)
	bctx, sp := span.Start(ctx, "build")
	buildStart := time.Now()
	exe, hit, err := s.exeCache.GetOrBuild(exeKey, func() (*kahrisma.Executable, error) {
		files := map[string]string{}
		for _, src := range srcs {
			files[src.Name] = src.Text
		}
		if req.Lang == "asm" {
			return sys.BuildAsmCtx(bctx, req.ISA, files)
		}
		return sys.BuildCCtx(bctx, req.ISA, files)
	})
	s.metrics.buildDur.Observe(time.Since(buildStart).Seconds())
	sp.SetAttr("cache_hit", hit)
	sp.SetError(err)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	rec.setCacheHit(hit)
	rec.setExe(exe)

	fuel := req.Fuel
	if fuel == 0 || fuel > s.cfg.MaxFuel {
		fuel = s.cfg.MaxFuel
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 || timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	// Every job feeds its live-event ring (progress, ISA switches,
	// done); per-operation trace streaming is the expensive half and
	// stays a per-request opt-in.
	opts := []kahrisma.Option{
		kahrisma.WithFuel(fuel), kahrisma.WithTimeout(timeout),
		kahrisma.WithEventSink(rec.stream),
	}
	if s.cfg.DisableSuperblocks {
		opts = append(opts, kahrisma.WithoutSuperblocks())
	}
	if req.Stream {
		opts = append(opts, kahrisma.WithTraceStreaming())
	}
	if req.Profile || req.ProfileSample > 1 {
		stride := s.cfg.ProfileSampleStride
		if req.ProfileSample > 0 {
			stride = req.ProfileSample
		}
		if stride > 1 {
			opts = append(opts, kahrisma.WithProfileSampling(stride))
		} else {
			opts = append(opts, kahrisma.WithProfiling())
		}
	}
	if len(req.Models) > 0 {
		opts = append(opts, kahrisma.WithModels(req.Models...))
	}
	if req.MemorySpec != "" {
		opts = append(opts, kahrisma.WithMemorySpec(req.MemorySpec))
	} else if req.FlatMemoryDelay != nil {
		opts = append(opts, kahrisma.WithFlatMemory(*req.FlatMemoryDelay))
	}
	if req.Stdin != "" {
		opts = append(opts, kahrisma.WithStdin(strings.NewReader(req.Stdin)))
	}
	return exe, opts, nil
}

// traceCtx derives the context job and batch spans hang off: untraced
// unless span tracing is on, continuing the submitter's trace when the
// request carried a traceparent header.
func (s *Server) traceCtx(sc span.SpanContext) context.Context {
	if s.tracer == nil {
		return context.Background()
	}
	if !sc.Trace.IsZero() {
		return span.ContextWithRemote(context.Background(), s.tracer, sc)
	}
	return span.NewContext(context.Background(), s.tracer)
}

// rejectJob accounts one admission rejection and, when tracing is
// active, emits a closed error-status span for it — rejected requests
// never reach execute, so without this their traces would show nothing
// at all (historically such spans were simply never created or ended).
func (s *Server) rejectJob(r *http.Request, name, reason string) {
	s.metrics.reject(reason)
	if s.tracer == nil {
		return
	}
	sc, _ := span.ParseTraceparent(r.Header.Get("traceparent"))
	ctx := s.traceCtx(sc)
	_, sp := span.Start(ctx, name)
	sp.SetAttr("reject_reason", reason)
	sp.SetError(errors.New("rejected: " + reason))
	sp.End()
}

// handleAnalyze serves POST /v1/analyze: the klint checks over a
// request's ADL model and program, synchronously (static analysis does
// not run guest code, so it needs no job queue slot or pool worker).
// It shares the job API's artifact caches — the model and executable
// cache keys are the ones execute computes — so analyzing a program and
// then simulating it runs the toolchain once.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.reject(rejectDraining)
		writeJSON(w, http.StatusServiceUnavailable, APIError{Error: "server is draining"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req AnalyzeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.reject(rejectOversized)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				APIError{Error: "request body exceeds " + strconv.FormatInt(tooBig.Limit, 10) + " bytes"})
			return
		}
		s.metrics.reject(rejectInvalid)
		writeJSON(w, http.StatusBadRequest, APIError{Error: "malformed request: " + err.Error()})
		return
	}
	if err := req.validate(s.base); err != nil {
		s.metrics.reject(rejectInvalid)
		writeJSON(w, http.StatusBadRequest, APIError{Error: err.Error()})
		return
	}
	res, err := s.analyze(&req)
	if err != nil {
		// The request was well-formed but its inputs do not build (an
		// unparsable ADL, a source with compile errors): 422, mirroring
		// the job API's build-failure-as-job-failure convention.
		s.metrics.analysesFailed.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, APIError{Error: err.Error()})
		return
	}
	s.metrics.analyses.Add(1)
	s.metrics.analysisDiags.With("error").Add(uint64(res.Errors))
	s.metrics.analysisDiags.With("warning").Add(uint64(res.Warnings))
	writeJSON(w, http.StatusOK, res)
}

// analyze serves one request through the analysis cache: the finished
// report is keyed by a fingerprint over every report-determining input
// (model, sources, ISA, language, options), so a repeat request gets
// the first report back verbatim — byte-identical — without touching
// the toolchain or the checks.
func (s *Server) analyze(req *AnalyzeRequest) (*AnalyzeResult, error) {
	modelKey := "builtin"
	if req.ADL != "" {
		modelKey = driver.Fingerprint("adl", driver.Source{Name: "adl", Text: req.ADL})
	}
	srcs := sourceList(req.Lang, req.Sources)
	checks := append([]string(nil), req.Checks...)
	sort.Strings(checks)
	spec := fmt.Sprintf("%s|%s|%s|%t|%s|%s",
		modelKey, req.ISA, req.Lang, req.DOEBounds, req.MinSeverity, strings.Join(checks, ","))
	key := driver.Fingerprint("analysis",
		append([]driver.Source{{Name: "spec", Text: spec}}, srcs...)...)

	rep, hit, err := s.analysisCache.GetOrBuild(key, func() (*AnalyzeReport, error) {
		return s.buildAnalysis(req, modelKey, srcs)
	})
	if err != nil {
		return nil, err
	}
	return &AnalyzeResult{AnalyzeReport: *rep, CacheHit: hit}, nil
}

// buildAnalysis resolves the model and executable through the artifact
// caches and runs the static checks. Custom ADLs try the strict
// (job-API, cacheable) elaboration first; when elaboration refuses the
// model, the lenient path converts the refusal into model diagnostics.
func (s *Server) buildAnalysis(req *AnalyzeRequest, modelKey string, srcs []driver.Source) (*AnalyzeReport, error) {
	sys := s.base
	var modelReport *kahrisma.LintReport
	if req.ADL != "" {
		var err error
		sys, _, err = s.modelCache.GetOrBuild(modelKey, func() (*kahrisma.System, error) {
			return kahrisma.NewFromADL(req.ADL)
		})
		if err != nil {
			// Not cached: a model with error findings must never serve
			// a simulation job, and failed builds stay out of the cache.
			if sys, modelReport, err = kahrisma.NewFromADLLenient(req.ADL); err != nil {
				return nil, err
			}
		}
	}
	if modelReport == nil {
		modelReport = sys.LintModel()
	}

	min := kahrisma.SeverityInfo
	if req.MinSeverity != "" {
		min, _ = kahrisma.ParseSeverity(req.MinSeverity)
	}
	total := &kahrisma.LintReport{}
	total.Merge(modelReport)
	rep := &AnalyzeReport{Model: modelReport.Filter(min).Diags}

	// A model with error findings cannot meaningfully build or decode
	// programs (klint's convention): report it without the program pass.
	if len(srcs) > 0 && modelReport.Errors() == 0 {
		exeKey := modelKey + "/" + driver.Fingerprint(req.ISA, srcs...)
		exe, _, err := s.exeCache.GetOrBuild(exeKey, func() (*kahrisma.Executable, error) {
			files := map[string]string{}
			for _, src := range srcs {
				files[src.Name] = src.Text
			}
			if req.Lang == "asm" {
				return sys.BuildAsm(req.ISA, files)
			}
			return sys.BuildC(req.ISA, files)
		})
		if err != nil {
			return nil, err
		}
		prog := exe.Lint(kahrisma.LintOptions{DOEBounds: req.DOEBounds, Checks: req.Checks})
		total.Merge(prog)
		rep.Program = prog.Filter(min).Diags
	}

	rep.Errors = total.Errors()
	rep.Warnings = total.Warnings()
	rep.Clean = total.Clean()
	return rep, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec := s.store.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, rec.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rec := s.store.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown job"})
		return
	}
	res, done := rec.resultJSON()
	if !done {
		writeJSON(w, http.StatusConflict, APIError{Error: "job not finished: " + res.State})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleProfile serves GET /v1/jobs/{id}/profile for finished jobs that
// ran with "profile": true — the symbolized hotspot report as JSON, or
// the gzipped pprof protobuf (renderable with `go tool pprof`) under
// ?format=pprof. ?top=N bounds the JSON hotspot table (default 20,
// 0 = all).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	rec := s.store.get(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown job"})
		return
	}
	p, exe, state, done := rec.profile()
	if !done {
		writeJSON(w, http.StatusConflict, APIError{Error: "job not finished: " + state})
		return
	}
	if p == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: "job was not profiled (submit with \"profile\": true)"})
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		topN := 20
		if t := r.URL.Query().Get("top"); t != "" {
			n, err := strconv.Atoi(t)
			if err != nil || n < 0 {
				writeJSON(w, http.StatusBadRequest, APIError{Error: "top: want a non-negative integer"})
				return
			}
			topN = n
		}
		writeJSON(w, http.StatusOK, exe.ProfileReport(p, topN))
	case "pprof":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="`+rec.id+`.pb.gz"`)
		if err := exe.WriteProfilePprof(w, p); err != nil {
			s.log.Warn("pprof export failed", "id", rec.id, "err", err)
		}
	default:
		writeJSON(w, http.StatusBadRequest, APIError{Error: "format: want \"json\" or \"pprof\""})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.renderMetrics(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// statusWriter captures the response code and size for request logs.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers (the SSE
// endpoint) work through the logging middleware.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// logRequests emits one structured log line per request.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.code,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start)) / float64(time.Millisecond),
			"remote", r.RemoteAddr,
		}
		// A caller-supplied traceparent stitches request logs (and any job
		// spans) to the caller's distributed trace.
		if sc, ok := span.ParseTraceparent(r.Header.Get("traceparent")); ok {
			attrs = append(attrs, "trace_id", sc.Trace.String())
		}
		s.log.Info("http", attrs...)
	})
}
