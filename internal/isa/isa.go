// Package isa defines the instruction-set model of the KAHRISMA
// architecture: register files, instruction formats built from bit
// fields, operations (the entries of the per-ISA operation tables the
// paper's TargetGen generates), and the ISAs themselves (RISC and the
// n-issue VLIW instruction formats).
//
// The model is normally produced by elaborating an ADL description
// (package adl + targetgen); this package holds the elaborated, runtime
// representation used by the assembler, linker, compiler and simulator.
package isa

import (
	"fmt"
	"sort"
	"strings"
)

// OpWordBytes is the size in bytes of one operation word. A VLIW-n
// instruction consists of n consecutive operation words, one per slot.
const OpWordBytes = 4

// RegIP is the pseudo register index used to express that an operation
// implicitly reads or writes the instruction pointer (e.g. every jump
// operation implicitly writes IP, as in the paper's example).
const RegIP = 32

// FieldKind classifies a bit field of an instruction format.
type FieldKind int

const (
	// FieldConst fields carry a per-operation constant (opcode, func).
	// The set of constant fields forms the detection mask of the
	// operation (Sec. V of the paper: "the instruction addressed by the
	// IP is detected by checking the constant fields for each operation
	// of the current active ISA").
	FieldConst FieldKind = iota
	// FieldReg fields encode a register number.
	FieldReg
	// FieldImm fields encode an immediate.
	FieldImm
)

func (k FieldKind) String() string {
	switch k {
	case FieldConst:
		return "const"
	case FieldReg:
		return "reg"
	case FieldImm:
		return "imm"
	}
	return fmt.Sprintf("FieldKind(%d)", int(k))
}

// FieldRole describes how a decoded field value is used by the
// operation's semantics. Roles give every operation a normalized
// decode structure (Rd, Rs1, Rs2, Imm) regardless of format.
type FieldRole int

const (
	RoleNone FieldRole = iota
	RoleDst            // destination register
	RoleSrc1           // first source register
	RoleSrc2           // second source register (store data, branch rhs)
	RoleImm            // immediate operand
)

func (r FieldRole) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RoleDst:
		return "dst"
	case RoleSrc1:
		return "src1"
	case RoleSrc2:
		return "src2"
	case RoleImm:
		return "imm"
	}
	return fmt.Sprintf("FieldRole(%d)", int(r))
}

// Field is one bit field of an instruction format. Bits are numbered
// 31..0 with Hi >= Lo; the field occupies word[Hi:Lo] inclusive.
type Field struct {
	Name   string
	Hi, Lo uint8
	Kind   FieldKind
	Role   FieldRole
	Signed bool // immediate is sign-extended when decoded
}

// Width returns the number of bits the field occupies.
func (f *Field) Width() int { return int(f.Hi) - int(f.Lo) + 1 }

// Mask returns the in-place bit mask of the field within the word.
func (f *Field) Mask() uint32 {
	w := f.Width()
	if w >= 32 {
		return 0xFFFFFFFF
	}
	return ((uint32(1) << w) - 1) << f.Lo
}

// Extract returns the raw (zero-extended) field value from word.
func (f *Field) Extract(word uint32) uint32 {
	return (word & f.Mask()) >> f.Lo
}

// ExtractSigned returns the field value sign-extended to 32 bits if the
// field is declared signed, otherwise zero-extended.
func (f *Field) ExtractSigned(word uint32) int32 {
	v := f.Extract(word)
	if !f.Signed {
		return int32(v)
	}
	w := f.Width()
	if w >= 32 {
		return int32(v)
	}
	sign := uint32(1) << (w - 1)
	if v&sign != 0 {
		v |= ^uint32(0) << w
	}
	return int32(v)
}

// Insert places value into word at the field position, returning the
// updated word. Values wider than the field are truncated (the
// assembler range-checks before calling Insert).
func (f *Field) Insert(word, value uint32) uint32 {
	return (word &^ f.Mask()) | ((value << f.Lo) & f.Mask())
}

// Fits reports whether value is representable in the field, honouring
// the field's signedness.
func (f *Field) Fits(value int64) bool {
	w := f.Width()
	if w >= 32 {
		return value >= -(1<<31) && value <= (1<<32)-1
	}
	if f.Signed {
		return value >= -(1<<(w-1)) && value < 1<<(w-1)
	}
	return value >= 0 && value < 1<<w
}

// Format is a named collection of fields covering all 32 bits of an
// operation word with no overlap (validated by targetgen).
type Format struct {
	Name   string
	Fields []*Field
}

// Field returns the named field, or nil.
func (fm *Format) Field(name string) *Field {
	for _, f := range fm.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// OpClass is the coarse functional class of an operation, used by the
// cycle models and the RTL pipeline for latency and resource modelling.
type OpClass int

const (
	ClassALU OpClass = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional control transfer
	ClassJump   // unconditional control transfer (J, JAL, JALR)
	ClassSys    // SWITCHTARGET, SIMCALL, HALT
	ClassNop
)

var classNames = map[string]OpClass{
	"alu": ClassALU, "mul": ClassMul, "div": ClassDiv,
	"load": ClassLoad, "store": ClassStore,
	"branch": ClassBranch, "jump": ClassJump,
	"sys": ClassSys, "nop": ClassNop,
}

// ParseClass converts an ADL class keyword into an OpClass.
func ParseClass(s string) (OpClass, error) {
	c, ok := classNames[s]
	if !ok {
		return 0, fmt.Errorf("isa: unknown operation class %q", s)
	}
	return c, nil
}

func (c OpClass) String() string {
	for name, cc := range classNames {
		if cc == c {
			return name
		}
	}
	return fmt.Sprintf("OpClass(%d)", int(c))
}

// IsMem reports whether the class accesses data memory.
func (c OpClass) IsMem() bool { return c == ClassLoad || c == ClassStore }

// IsControl reports whether the class transfers control.
func (c OpClass) IsControl() bool { return c == ClassBranch || c == ClassJump }

// Operation is one entry of an operation table: its name, size, fields,
// implicit registers and the key of its simulation function — the exact
// contents the paper lists for TargetGen-generated table entries.
type Operation struct {
	Name    string
	Format  *Format
	Class   OpClass
	Latency int    // execution delay in cycles (memory classes: issue-to-request)
	SemKey  string // key into the simulation-function registry

	// Consts holds the per-operation values of the format's constant
	// fields, e.g. opcode and func.
	Consts map[string]uint32

	// ImplicitReads / ImplicitWrites are register numbers accessed
	// without an explicit encoding field (RegIP for control transfers,
	// the link register for JAL, ...).
	ImplicitReads  []int
	ImplicitWrites []int

	// ConstMask / ConstBits are precomputed from Consts: an operation
	// word w encodes this operation iff w&ConstMask == ConstBits.
	ConstMask, ConstBits uint32

	// Role fields resolved once at elaboration (nil if absent).
	DstField, Src1Field, Src2Field, ImmField *Field
}

// Match reports whether word encodes this operation (constant-field
// detection, Sec. V).
func (op *Operation) Match(word uint32) bool {
	return word&op.ConstMask == op.ConstBits
}

// Operands is the normalized decode structure of an operation word.
type Operands struct {
	Rd, Rs1, Rs2 uint8
	Imm          int32
}

// DecodeOperands extracts the role-tagged fields of word.
func (op *Operation) DecodeOperands(word uint32) Operands {
	var o Operands
	if f := op.DstField; f != nil {
		o.Rd = uint8(f.Extract(word))
	}
	if f := op.Src1Field; f != nil {
		o.Rs1 = uint8(f.Extract(word))
	}
	if f := op.Src2Field; f != nil {
		o.Rs2 = uint8(f.Extract(word))
	}
	if f := op.ImmField; f != nil {
		o.Imm = f.ExtractSigned(word)
	}
	return o
}

// Encode builds the operation word for the given operands. Immediates
// are range-checked against the immediate field.
func (op *Operation) Encode(o Operands) (uint32, error) {
	w := op.ConstBits
	if f := op.DstField; f != nil {
		w = f.Insert(w, uint32(o.Rd))
	}
	if f := op.Src1Field; f != nil {
		w = f.Insert(w, uint32(o.Rs1))
	}
	if f := op.Src2Field; f != nil {
		w = f.Insert(w, uint32(o.Rs2))
	}
	if f := op.ImmField; f != nil {
		if !f.Fits(int64(o.Imm)) {
			return 0, fmt.Errorf("isa: immediate %d out of range for %s (field %s, %d bits, signed=%v)",
				o.Imm, op.Name, f.Name, f.Width(), f.Signed)
		}
		w = f.Insert(w, uint32(o.Imm))
	}
	return w, nil
}

// HasDst reports whether the operation writes an explicit destination
// register.
func (op *Operation) HasDst() bool { return op.DstField != nil }

// RegisterFile describes an architectural register file.
type RegisterFile struct {
	Name    string
	Count   int
	Width   int
	ZeroReg int // index of the hard-wired-zero register, -1 if none
	aliases map[string]int
	names   []string // canonical alias (or rN) per index, for disassembly
}

// NewRegisterFile constructs a register file with canonical names
// r0..r(count-1) and no aliases.
func NewRegisterFile(name string, count, width int) *RegisterFile {
	rf := &RegisterFile{
		Name:    name,
		Count:   count,
		Width:   width,
		ZeroReg: -1,
		aliases: make(map[string]int),
		names:   make([]string, count),
	}
	for i := 0; i < count; i++ {
		rf.names[i] = fmt.Sprintf("r%d", i)
	}
	return rf
}

// AddAlias registers alias as an alternative name for register index.
// The first alias of an index becomes its preferred disassembly name.
func (rf *RegisterFile) AddAlias(alias string, index int) error {
	if index < 0 || index >= rf.Count {
		return fmt.Errorf("isa: alias %q: register index %d out of range", alias, index)
	}
	if _, dup := rf.aliases[alias]; dup {
		return fmt.Errorf("isa: duplicate register alias %q", alias)
	}
	rf.aliases[alias] = index
	if rf.names[index] == fmt.Sprintf("r%d", index) {
		rf.names[index] = alias
	}
	return nil
}

// Lookup resolves a register name (rN or alias) to its index.
func (rf *RegisterFile) Lookup(name string) (int, bool) {
	if idx, ok := rf.aliases[name]; ok {
		return idx, true
	}
	var n int
	if _, err := fmt.Sscanf(name, "r%d", &n); err == nil && fmt.Sprintf("r%d", n) == name {
		if n >= 0 && n < rf.Count {
			return n, true
		}
	}
	return 0, false
}

// Name returns the preferred name of register index.
func (rf *RegisterFile) RegName(index int) string {
	if index == RegIP {
		return "ip"
	}
	if index < 0 || index >= len(rf.names) {
		return fmt.Sprintf("r?%d", index)
	}
	return rf.names[index]
}

// Aliases returns a sorted list of all alias names (for tooling).
func (rf *RegisterFile) Aliases() []string {
	out := make([]string, 0, len(rf.aliases))
	for a := range rf.aliases {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ISA is one instruction-set architecture of the KAHRISMA fabric: an
// instruction format (issue width) plus its operation table. Issue 1 is
// the RISC format; issue n>1 the n-issue VLIW formats.
type ISA struct {
	Name    string
	ID      int
	Issue   int
	Default bool // the ADL's default ISA (simulator start ISA)

	// Ops is this ISA's operation table, in detection order.
	Ops    []*Operation
	byName map[string]*Operation
}

// InstrBytes returns the size in bytes of one instruction of this ISA.
func (a *ISA) InstrBytes() uint32 { return uint32(a.Issue) * OpWordBytes }

// Op returns the named operation from this ISA's table, or nil.
func (a *ISA) Op(name string) *Operation { return a.byName[name] }

// Detect scans the operation table for the operation encoded by word,
// checking constant fields in table order (the paper's detection loop).
// It returns nil if no operation matches.
func (a *ISA) Detect(word uint32) *Operation {
	for _, op := range a.Ops {
		if op.Match(word) {
			return op
		}
	}
	return nil
}

// SetOps installs the operation table and builds the name index.
func (a *ISA) SetOps(ops []*Operation) {
	a.Ops = ops
	a.byName = make(map[string]*Operation, len(ops))
	for _, op := range ops {
		a.byName[op.Name] = op
	}
}

// Model is a fully elaborated architecture: register file, formats, the
// global operation set, and all ISAs that the fabric can instantiate.
type Model struct {
	Name    string
	Regs    *RegisterFile
	Formats map[string]*Format
	Ops     []*Operation

	ISAs   []*ISA
	byID   map[int]*ISA
	byName map[string]*ISA
	opByNm map[string]*Operation
}

// NewModel creates an empty model.
func NewModel(name string) *Model {
	return &Model{
		Name:    name,
		Formats: make(map[string]*Format),
		byID:    make(map[int]*ISA),
		byName:  make(map[string]*ISA),
		opByNm:  make(map[string]*Operation),
	}
}

// AddISA registers an ISA; IDs and names must be unique.
func (m *Model) AddISA(a *ISA) error {
	if _, dup := m.byID[a.ID]; dup {
		return fmt.Errorf("isa: duplicate ISA id %d", a.ID)
	}
	if _, dup := m.byName[a.Name]; dup {
		return fmt.Errorf("isa: duplicate ISA name %q", a.Name)
	}
	m.ISAs = append(m.ISAs, a)
	m.byID[a.ID] = a
	m.byName[a.Name] = a
	return nil
}

// AddOp registers an operation in the global set.
func (m *Model) AddOp(op *Operation) error {
	if _, dup := m.opByNm[op.Name]; dup {
		return fmt.Errorf("isa: duplicate operation %q", op.Name)
	}
	m.Ops = append(m.Ops, op)
	m.opByNm[op.Name] = op
	return nil
}

// Op returns the named operation from the global set, or nil.
func (m *Model) Op(name string) *Operation { return m.opByNm[name] }

// ISAByID returns the ISA with the given identification number, or nil.
func (m *Model) ISAByID(id int) *ISA { return m.byID[id] }

// ISAByName returns the named ISA, or nil.
func (m *Model) ISAByName(name string) *ISA { return m.byName[name] }

// DefaultISA returns the ADL-declared default ISA (falling back to the
// first ISA if none is marked default).
func (m *Model) DefaultISA() *ISA {
	for _, a := range m.ISAs {
		if a.Default {
			return a
		}
	}
	if len(m.ISAs) > 0 {
		return m.ISAs[0]
	}
	return nil
}

// Disassemble renders one operation word as assembly text. addr is the
// byte address of the enclosing instruction (used for branch targets).
func (m *Model) Disassemble(a *ISA, word uint32, addr uint32) string {
	op := a.Detect(word)
	if op == nil {
		return fmt.Sprintf(".word 0x%08x", word)
	}
	o := op.DecodeOperands(word)
	rn := m.Regs.RegName
	var sb strings.Builder
	sb.WriteString(strings.ToLower(op.Name))
	switch op.Class {
	case ClassNop:
		// no operands
	case ClassLoad:
		fmt.Fprintf(&sb, " %s, %d(%s)", rn(int(o.Rd)), o.Imm, rn(int(o.Rs1)))
	case ClassStore:
		fmt.Fprintf(&sb, " %s, %d(%s)", rn(int(o.Rs2)), o.Imm, rn(int(o.Rs1)))
	case ClassBranch:
		fmt.Fprintf(&sb, " %s, %s, 0x%x", rn(int(o.Rs1)), rn(int(o.Rs2)),
			addr+uint32(o.Imm)*OpWordBytes)
	case ClassJump:
		switch {
		case op.ImmField != nil && op.DstField == nil && op.Src1Field == nil:
			fmt.Fprintf(&sb, " 0x%x", uint32(o.Imm)*OpWordBytes)
		case op.Src1Field != nil && op.DstField != nil:
			fmt.Fprintf(&sb, " %s, %s", rn(int(o.Rd)), rn(int(o.Rs1)))
		case op.Src1Field != nil:
			fmt.Fprintf(&sb, " %s", rn(int(o.Rs1)))
		default:
			fmt.Fprintf(&sb, " 0x%x", uint32(o.Imm)*OpWordBytes)
		}
	case ClassSys:
		if op.ImmField != nil {
			fmt.Fprintf(&sb, " %d", o.Imm)
		}
	default:
		first := true
		emit := func(s string) {
			if first {
				sb.WriteString(" ")
				first = false
			} else {
				sb.WriteString(", ")
			}
			sb.WriteString(s)
		}
		if op.DstField != nil {
			emit(rn(int(o.Rd)))
		}
		if op.Src1Field != nil {
			emit(rn(int(o.Rs1)))
		}
		if op.Src2Field != nil {
			emit(rn(int(o.Rs2)))
		}
		if op.ImmField != nil {
			emit(fmt.Sprintf("%d", o.Imm))
		}
	}
	return sb.String()
}
