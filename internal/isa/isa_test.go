package isa_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/targetgen"
)

func model(t testing.TB) *isa.Model {
	t.Helper()
	m, err := targetgen.Kahrisma()
	if err != nil {
		t.Fatalf("elaborating built-in ADL: %v", err)
	}
	return m
}

func TestFieldExtractInsertRoundTrip(t *testing.T) {
	f := &isa.Field{Name: "x", Hi: 20, Lo: 16}
	if got := f.Width(); got != 5 {
		t.Fatalf("Width = %d, want 5", got)
	}
	w := f.Insert(0xFFFFFFFF, 0x0A)
	if got := f.Extract(w); got != 0x0A {
		t.Fatalf("Extract(Insert(0x0A)) = %#x", got)
	}
	// Insert must not disturb other bits.
	if w|f.Mask() != 0xFFFFFFFF {
		t.Fatalf("Insert disturbed bits outside the field: %#x", w)
	}
}

func TestFieldSignExtension(t *testing.T) {
	f := &isa.Field{Name: "imm", Hi: 15, Lo: 0, Signed: true}
	neg5 := int32(-5)
	w := f.Insert(0, uint32(neg5)&0xFFFF)
	if got := f.ExtractSigned(w); got != -5 {
		t.Fatalf("ExtractSigned = %d, want -5", got)
	}
	u := &isa.Field{Name: "imm", Hi: 15, Lo: 0}
	if got := u.ExtractSigned(w); got != 0xFFFB {
		t.Fatalf("unsigned ExtractSigned = %d, want %d", got, 0xFFFB)
	}
}

func TestFieldFits(t *testing.T) {
	s := &isa.Field{Hi: 15, Lo: 0, Signed: true}
	for _, tc := range []struct {
		v  int64
		ok bool
	}{{0, true}, {32767, true}, {-32768, true}, {32768, false}, {-32769, false}} {
		if got := s.Fits(tc.v); got != tc.ok {
			t.Errorf("signed Fits(%d) = %v, want %v", tc.v, got, tc.ok)
		}
	}
	u := &isa.Field{Hi: 25, Lo: 0}
	if !u.Fits(1<<26-1) || u.Fits(1<<26) || u.Fits(-1) {
		t.Errorf("unsigned 26-bit Fits boundary wrong")
	}
}

func TestEncodeDecodeOperandsRoundTrip(t *testing.T) {
	m := model(t)
	risc := m.ISAByName("RISC")
	for _, op := range risc.Ops {
		o := isa.Operands{Rd: 7, Rs1: 13, Rs2: 21, Imm: -3}
		if op.ImmField != nil && !op.ImmField.Signed {
			o.Imm = 12345
		}
		// Zero out roles the op lacks so comparison is meaningful.
		if op.DstField == nil {
			o.Rd = 0
		}
		if op.Src1Field == nil {
			o.Rs1 = 0
		}
		if op.Src2Field == nil {
			o.Rs2 = 0
		}
		if op.ImmField == nil {
			o.Imm = 0
		}
		w, err := op.Encode(o)
		if err != nil {
			t.Fatalf("%s: encode: %v", op.Name, err)
		}
		if det := risc.Detect(w); det != op {
			t.Fatalf("%s: detection returned %v", op.Name, det)
		}
		if got := op.DecodeOperands(w); got != o {
			t.Fatalf("%s: decode = %+v, want %+v", op.Name, got, o)
		}
	}
}

func TestEncodeRangeCheck(t *testing.T) {
	m := model(t)
	addi := m.Op("ADDI")
	if _, err := addi.Encode(isa.Operands{Imm: 1 << 20}); err == nil {
		t.Fatal("expected range error for 21-bit immediate in ADDI")
	}
}

// Property: every 32-bit word is detected as at most one operation
// (constant-field detection is unambiguous).
func TestDetectionUnambiguousQuick(t *testing.T) {
	m := model(t)
	risc := m.ISAByName("RISC")
	f := func(w uint32) bool {
		matches := 0
		for _, op := range risc.Ops {
			if op.Match(w) {
				matches++
			}
		}
		return matches <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random valid operands, encode→detect→decode is identity.
func TestEncodeDetectDecodeQuick(t *testing.T) {
	m := model(t)
	risc := m.ISAByName("RISC")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		op := risc.Ops[rng.Intn(len(risc.Ops))]
		var o isa.Operands
		if op.DstField != nil {
			o.Rd = uint8(rng.Intn(32))
		}
		if op.Src1Field != nil {
			o.Rs1 = uint8(rng.Intn(32))
		}
		if op.Src2Field != nil {
			o.Rs2 = uint8(rng.Intn(32))
		}
		if f := op.ImmField; f != nil {
			w := f.Width()
			if f.Signed {
				o.Imm = int32(rng.Intn(1<<w)) - 1<<(w-1)
			} else {
				o.Imm = int32(rng.Intn(1 << uint(min(w, 30))))
			}
		}
		w, err := op.Encode(o)
		if err != nil {
			t.Fatalf("%s %+v: %v", op.Name, o, err)
		}
		if det := risc.Detect(w); det != op {
			t.Fatalf("%s: detected as %v", op.Name, det)
		}
		if got := op.DecodeOperands(w); got != o {
			t.Fatalf("%s: round trip %+v -> %+v", op.Name, o, got)
		}
	}
}

func TestRegisterFileAliases(t *testing.T) {
	m := model(t)
	for name, want := range map[string]int{
		"zero": 0, "ra": 1, "sp": 2, "fp": 3, "a0": 4, "t0": 8, "s0": 16, "t8": 28, "r31": 31,
	} {
		got, ok := m.Regs.Lookup(name)
		if !ok || got != want {
			t.Errorf("Lookup(%q) = %d,%v want %d", name, got, ok, want)
		}
	}
	if _, ok := m.Regs.Lookup("r32"); ok {
		t.Error("r32 should not resolve")
	}
	if _, ok := m.Regs.Lookup("bogus"); ok {
		t.Error("bogus should not resolve")
	}
	if m.Regs.ZeroReg != 0 {
		t.Errorf("ZeroReg = %d, want 0", m.Regs.ZeroReg)
	}
	if m.Regs.RegName(isa.RegIP) != "ip" {
		t.Errorf("RegName(RegIP) = %q", m.Regs.RegName(isa.RegIP))
	}
}

func TestModelISALookup(t *testing.T) {
	m := model(t)
	if got := m.DefaultISA().Name; got != "RISC" {
		t.Fatalf("default ISA = %s, want RISC", got)
	}
	wantIssue := map[string]int{"RISC": 1, "VLIW2": 2, "VLIW4": 4, "VLIW6": 6, "VLIW8": 8}
	for name, issue := range wantIssue {
		a := m.ISAByName(name)
		if a == nil {
			t.Fatalf("ISA %s missing", name)
		}
		if a.Issue != issue {
			t.Errorf("%s issue = %d, want %d", name, a.Issue, issue)
		}
		if a.InstrBytes() != uint32(4*issue) {
			t.Errorf("%s instr bytes = %d", name, a.InstrBytes())
		}
		if m.ISAByID(a.ID) != a {
			t.Errorf("ISAByID(%d) mismatch", a.ID)
		}
	}
	if m.ISAByID(99) != nil {
		t.Error("ISAByID(99) should be nil")
	}
}

func TestImplicitRegisters(t *testing.T) {
	m := model(t)
	jal := m.Op("JAL")
	wantWrites := []int{isa.RegIP, 1}
	if len(jal.ImplicitWrites) != 2 || jal.ImplicitWrites[0] != wantWrites[0] || jal.ImplicitWrites[1] != wantWrites[1] {
		t.Fatalf("JAL implicit writes = %v, want %v", jal.ImplicitWrites, wantWrites)
	}
	sc := m.Op("SIMCALL")
	if len(sc.ImplicitReads) != 5 || len(sc.ImplicitWrites) != 1 {
		t.Fatalf("SIMCALL implicit regs = %v / %v", sc.ImplicitReads, sc.ImplicitWrites)
	}
}

func TestDisassembleSmoke(t *testing.T) {
	m := model(t)
	risc := m.ISAByName("RISC")
	cases := []struct {
		op   string
		o    isa.Operands
		want string
	}{
		{"ADD", isa.Operands{Rd: 4, Rs1: 5, Rs2: 6}, "add a0, a1, a2"},
		{"ADDI", isa.Operands{Rd: 2, Rs1: 2, Imm: -16}, "addi sp, sp, -16"},
		{"LW", isa.Operands{Rd: 8, Rs1: 2, Imm: 12}, "lw t0, 12(sp)"},
		{"SW", isa.Operands{Rs2: 8, Rs1: 2, Imm: 12}, "sw t0, 12(sp)"},
		{"NOP", isa.Operands{}, "nop"},
	}
	for _, tc := range cases {
		op := m.Op(tc.op)
		w, err := op.Encode(tc.o)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Disassemble(risc, w, 0x1000); got != tc.want {
			t.Errorf("%s: disasm %q, want %q", tc.op, got, tc.want)
		}
	}
	if got := m.Disassemble(risc, 0xFFFFFFFF, 0); got != ".word 0xffffffff" {
		t.Errorf("undetected word disasm = %q", got)
	}
}
