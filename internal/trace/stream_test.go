package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func opEv(n int) StreamEvent {
	return StreamEvent{Type: EventOp, Op: &Event{Cycle: uint64(n), Op: "ADD"}}
}

// drain reads everything currently deliverable without blocking.
func drain(t *testing.T, sub *Subscription) ([]StreamEvent, uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var all []StreamEvent
	var missed uint64
	for {
		batch, m, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		missed += m
		if batch == nil && m == 0 {
			return all, missed
		}
		all = append(all, batch...)
	}
}

// Sequence numbers are dense and delivery ordered; closing ends Next.
func TestStreamerDelivery(t *testing.T) {
	s := NewStreamer(64)
	sub := s.Subscribe(0)
	for i := 0; i < 10; i++ {
		s.publish(opEv(i))
	}
	s.Done(Done{ExitCode: 7, Instructions: 10})

	all, missed := drain(t, sub)
	if missed != 0 {
		t.Fatalf("missed %d events within capacity", missed)
	}
	if len(all) != 11 {
		t.Fatalf("got %d events, want 11 (10 ops + done)", len(all))
	}
	for i, ev := range all {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	last := all[len(all)-1]
	if last.Type != EventDone || last.Done == nil || last.Done.ExitCode != 7 {
		t.Errorf("terminal event = %+v, want done with exit 7", last)
	}
}

// The ring drops oldest on overflow, counts drops, and reports the gap
// to late subscribers instead of silently skipping.
func TestStreamerDropOldest(t *testing.T) {
	const capacity, published = 16, 100
	s := NewStreamer(capacity)
	for i := 0; i < published; i++ {
		s.publish(opEv(i))
	}
	if got := s.Len(); got > capacity {
		t.Fatalf("ring holds %d events, capacity %d", got, capacity)
	}
	if got, want := s.Dropped(), uint64(published-capacity); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}

	sub := s.Subscribe(0)
	s.Close()
	all, missed := drain(t, sub)
	if missed != published-capacity {
		t.Errorf("missed = %d, want %d", missed, published-capacity)
	}
	if len(all) != capacity {
		t.Fatalf("delivered %d events, want the %d still in the ring", len(all), capacity)
	}
	if all[0].Seq != published-capacity || all[len(all)-1].Seq != published-1 {
		t.Errorf("delivered seq range [%d,%d], want [%d,%d]",
			all[0].Seq, all[len(all)-1].Seq, published-capacity, published-1)
	}
}

// A subscriber that joins mid-stream replays what the ring still holds,
// then follows live.
func TestStreamerMidStreamJoin(t *testing.T) {
	s := NewStreamer(64)
	for i := 0; i < 5; i++ {
		s.publish(opEv(i))
	}
	sub := s.Subscribe(0) // join after 5 events: replay...
	for i := 5; i < 8; i++ {
		s.publish(opEv(i)) // ...and live tail
	}
	s.Close()
	all, missed := drain(t, sub)
	if missed != 0 || len(all) != 8 {
		t.Fatalf("mid-stream join: %d events, %d missed, want 8/0", len(all), missed)
	}
}

// Resume-from-sequence (the Last-Event-ID contract) neither duplicates
// nor skips events while the ring still holds the cursor.
func TestStreamerResume(t *testing.T) {
	s := NewStreamer(64)
	for i := 0; i < 6; i++ {
		s.publish(opEv(i))
	}
	sub := s.Subscribe(0)
	first, _ := drain1(t, sub)
	sub.Cancel() // "disconnect" after reading some events

	lastSeen := first[len(first)-1].Seq
	resumed := s.Subscribe(lastSeen + 1)
	for i := 6; i < 9; i++ {
		s.publish(opEv(i))
	}
	s.Close()
	rest, missed := drain(t, resumed)
	if missed != 0 {
		t.Fatalf("resume within ring missed %d", missed)
	}
	if want := 9 - int(lastSeen) - 1; len(rest) != want {
		t.Fatalf("resumed read %d events, want %d", len(rest), want)
	}
	if rest[0].Seq != lastSeen+1 {
		t.Errorf("resume started at seq %d, want %d", rest[0].Seq, lastSeen+1)
	}
}

// drain1 reads exactly one batch.
func drain1(t *testing.T, sub *Subscription) ([]StreamEvent, uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	batch, missed, err := sub.Next(ctx)
	if err != nil || batch == nil {
		t.Fatalf("Next: batch=%v err=%v", batch, err)
	}
	return batch, missed
}

// Every subscriber gets the full stream independently.
func TestStreamerFanOut(t *testing.T) {
	s := NewStreamer(256)
	const subscribers, events = 8, 100
	var wg sync.WaitGroup
	counts := make([]int, subscribers)
	for i := 0; i < subscribers; i++ {
		sub := s.Subscribe(0)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			all, missed := drain(t, sub)
			counts[i] = len(all) + int(missed)
		}(i)
	}
	for i := 0; i < events; i++ {
		s.publish(opEv(i))
	}
	s.Done(Done{})
	wg.Wait()
	for i, n := range counts {
		if n != events+1 {
			t.Errorf("subscriber %d accounted for %d events, want %d", i, n, events+1)
		}
	}
}

// The producer never blocks: a subscriber that reads nothing while far
// more than the ring capacity is published cannot stall publishing, and
// afterwards reads the bounded tail plus an accurate miss count.
func TestStreamerSlowConsumerNeverBlocksProducer(t *testing.T) {
	const capacity = 32
	s := NewStreamer(capacity)
	sub := s.Subscribe(0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10_000; i++ {
			s.publish(opEv(i))
		}
		s.Done(Done{Instructions: 10_000})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producer blocked on a slow consumer")
	}

	all, missed := drain(t, sub)
	if int(missed)+len(all) != 10_001 {
		t.Fatalf("accounted for %d+%d events, want 10001", len(all), missed)
	}
	if len(all) > capacity {
		t.Errorf("delivered %d events, ring capacity %d", len(all), capacity)
	}
	if s.Len() > capacity {
		t.Errorf("ring length %d exceeds capacity %d", s.Len(), capacity)
	}
}

// Done is idempotent — the first terminal report wins — and publishing
// after close is a no-op.
func TestStreamerDoneIdempotent(t *testing.T) {
	s := NewStreamer(16)
	s.Done(Done{ExitCode: 1})
	s.Done(Done{ExitCode: 2})
	s.publish(opEv(0))
	sub := s.Subscribe(0)
	all, _ := drain(t, sub)
	if len(all) != 1 || all[0].Done.ExitCode != 1 {
		t.Fatalf("events after double Done = %+v, want single done with exit 1", all)
	}
	if !s.Closed() {
		t.Error("streamer not closed after Done")
	}
}

// Next honours context cancellation while waiting.
func TestStreamerNextContext(t *testing.T) {
	s := NewStreamer(16)
	sub := s.Subscribe(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := sub.Next(ctx); err == nil {
		t.Fatal("Next returned without events, close, or context error")
	}
}

// Concurrent publishing and subscribing is race-clean (exercised fully
// under -race) and loses nothing when within capacity.
func TestStreamerConcurrent(t *testing.T) {
	s := NewStreamer(4096)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := s.Subscribe(0)
			defer sub.Cancel()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for {
				batch, _, err := sub.Next(ctx)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if batch == nil {
					return
				}
			}
		}(g)
	}
	for i := 0; i < 2000; i++ {
		s.Progress(Progress{Instructions: uint64(i)})
	}
	s.Done(Done{})
	wg.Wait()
	if got := s.Seq(); got != 2001 {
		t.Errorf("published %d events, want 2001", got)
	}
}

func TestStreamEventJSONShape(t *testing.T) {
	s := NewStreamer(8)
	s.TraceEvent(&Event{Cycle: 3, Addr: 0x100, Op: "ADD", In: []RegVal{{Reg: 4, Val: 42}}, Imm: -1})
	s.ISASwitch(SwitchInfo{From: "RISC", To: "VLIW4", Instructions: 9})
	sub := s.Subscribe(0)
	s.Close()
	all, _ := drain(t, sub)
	if len(all) != 2 {
		t.Fatalf("got %d events", len(all))
	}
	if all[0].Op == nil || all[0].Op.In[0].Val != 42 {
		t.Errorf("op payload %+v", all[0].Op)
	}
	if all[1].ISASwitch == nil || all[1].ISASwitch.To != "VLIW4" {
		t.Errorf("switch payload %+v", all[1].ISASwitch)
	}
	// The snapshot is a copy: mutating the source event later must not
	// bleed into what subscribers already received.
	src := Event{Op: "SUB"}
	s2 := NewStreamer(8)
	s2.TraceEvent(&src)
	src.Op = "MUT"
	sub2 := s2.Subscribe(0)
	s2.Close()
	got, _ := drain(t, sub2)
	if got[0].Op.Op != "SUB" {
		t.Errorf("streamed op mutated to %q", got[0].Op.Op)
	}
}

func ExampleStreamer() {
	s := NewStreamer(16)
	sub := s.Subscribe(0)
	s.Progress(Progress{Instructions: 8192, ISA: "RISC"})
	s.Done(Done{ExitCode: 0, Instructions: 16384})
	for {
		batch, _, _ := sub.Next(context.Background())
		if batch == nil {
			break
		}
		for _, ev := range batch {
			fmt.Println(ev.Seq, ev.Type)
		}
	}
	// Output:
	// 0 progress
	// 1 done
}
