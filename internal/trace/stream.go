// Live event streaming: a Streamer is the bounded, sequence-numbered
// fan-out buffer between one running simulation (the single producer)
// and any number of live subscribers (the SSE handler of kservd, a
// ktrace -follow client, a test).
//
// Design rules, in priority order:
//
//  1. The producer never blocks. Publishing into a full ring drops the
//     oldest event and counts it; a slow (or absent) consumer can never
//     stall the interpretation loop.
//  2. Memory is bounded by the ring capacity, regardless of run length
//     or subscriber behaviour.
//  3. Every event carries a monotonically increasing sequence number,
//     so a reconnecting subscriber resumes exactly where it left off
//     (as long as the ring still holds that sequence) and otherwise
//     learns precisely how many events it missed.
//
// See docs/streaming.md for the wire format kservd derives from this.
package trace

import (
	"context"
	"sync"
)

// Stream event types, the Type field of StreamEvent.
const (
	// EventOp is one executed operation (the live form of a trace line).
	EventOp = "op"
	// EventISASwitch reports a run-time SWITCHTARGET reconfiguration.
	EventISASwitch = "isa_switch"
	// EventProgress is a periodic progress snapshot of the running job.
	EventProgress = "progress"
	// EventCampaignProgress is an aggregate snapshot of a design-space
	// campaign (internal/campaign): how much of the point grid has been
	// simulated, served from cache or failed so far.
	EventCampaignProgress = "campaign_progress"
	// EventDone is the terminal event; the stream closes after it.
	EventDone = "done"
)

// SwitchInfo is the payload of an EventISASwitch event.
type SwitchInfo struct {
	From         string `json:"from"`
	To           string `json:"to"`
	Instructions uint64 `json:"instructions"`
}

// Progress is the payload of an EventProgress event: a point-in-time
// snapshot of the running simulation.
type Progress struct {
	Instructions uint64 `json:"instructions"`
	Operations   uint64 `json:"operations"`
	// Cycles is the attached cycle model's count (0 when the run is
	// purely functional).
	Cycles uint64 `json:"cycles,omitempty"`
	// FuelRemaining is the instruction budget left (0 when unlimited).
	FuelRemaining uint64 `json:"fuel_remaining,omitempty"`
	// ISA names the currently active processor instance.
	ISA string `json:"isa"`
}

// CampaignProgress is the payload of an EventCampaignProgress event:
// one aggregate snapshot of a running design-space campaign. Counts
// are over the campaign's unique points (GridPoints includes the
// duplicates collapsed by fingerprint dedup).
type CampaignProgress struct {
	// Campaign is the campaign's name (may be empty).
	Campaign string `json:"campaign,omitempty"`
	// GridPoints is the expanded grid size; Points the unique points
	// after fingerprint dedup.
	GridPoints int `json:"grid_points"`
	Points     int `json:"points"`
	// Done counts terminal points (including failures and cache hits),
	// Failed the errored subset, Running the points on pool workers.
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Running int `json:"running"`
	// CacheHits counts points served from the fingerprint result cache
	// instead of being re-simulated.
	CacheHits int `json:"cache_hits"`
}

// Done is the payload of the terminal EventDone event.
type Done struct {
	ExitCode     int32  `json:"exit_code"`
	Instructions uint64 `json:"instructions"`
	// Error carries the run's failure (cancellation, fuel exhaustion,
	// build error) — empty on a clean halt.
	Error string `json:"error,omitempty"`
}

// StreamEvent is one element of a job's live event stream. Exactly one
// payload field matching Type is set.
type StreamEvent struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`

	Op        *Event            `json:"op,omitempty"`
	ISASwitch *SwitchInfo       `json:"isa_switch,omitempty"`
	Progress  *Progress         `json:"progress,omitempty"`
	Campaign  *CampaignProgress `json:"campaign,omitempty"`
	Done      *Done             `json:"done,omitempty"`
}

// DefaultRingSize is the per-job event buffer used when a capacity of
// zero is requested: large enough to ride out a briefly stalled
// subscriber, small enough that thousands of concurrent jobs stay
// cheap.
const DefaultRingSize = 4096

// Streamer is a bounded ring of stream events with multi-subscriber
// fan-out. One goroutine publishes (the simulation); any number
// subscribe. All methods are safe for concurrent use.
type Streamer struct {
	mu      sync.Mutex
	buf     []StreamEvent // ring storage, grows to capacity then wraps
	cap     int
	next    uint64 // sequence number of the next published event
	dropped uint64 // events overwritten before any subscriber saw them leave the ring
	closed  bool
	subs    map[*Subscription]struct{}
}

// NewStreamer builds a streamer whose ring holds capacity events;
// capacity <= 0 selects DefaultRingSize.
func NewStreamer(capacity int) *Streamer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Streamer{
		cap:  capacity,
		subs: map[*Subscription]struct{}{},
	}
}

// publish appends one event, dropping the oldest when the ring is full,
// and wakes subscribers. It never blocks.
func (s *Streamer) publish(ev StreamEvent) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	ev.Seq = s.next
	s.next++
	if len(s.buf) < s.cap {
		s.buf = append(s.buf, ev)
	} else {
		s.buf[ev.Seq%uint64(s.cap)] = ev
		s.dropped++
	}
	s.notifyLocked()
	s.mu.Unlock()
}

// notifyLocked wakes every subscriber without ever blocking the
// producer: each subscription owns a 1-buffered signal channel.
func (s *Streamer) notifyLocked() {
	for sub := range s.subs {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

// oldestLocked returns the lowest sequence number still in the ring.
func (s *Streamer) oldestLocked() uint64 {
	return s.next - uint64(len(s.buf))
}

// TraceEvent publishes one executed operation (sim.EventSink).
func (s *Streamer) TraceEvent(e *Event) {
	ev := *e // the simulator rebuilds the event per operation; snapshot it
	s.publish(StreamEvent{Type: EventOp, Op: &ev})
}

// ISASwitch publishes a run-time reconfiguration (sim.EventSink).
func (s *Streamer) ISASwitch(sw SwitchInfo) {
	s.publish(StreamEvent{Type: EventISASwitch, ISASwitch: &sw})
}

// Progress publishes a periodic snapshot (sim.EventSink).
func (s *Streamer) Progress(p Progress) {
	s.publish(StreamEvent{Type: EventProgress, Progress: &p})
}

// CampaignProgress publishes an aggregate campaign snapshot.
func (s *Streamer) CampaignProgress(cp CampaignProgress) {
	s.publish(StreamEvent{Type: EventCampaignProgress, Campaign: &cp})
}

// Done publishes the terminal event and closes the stream. Only the
// first call wins; later calls (a layered owner double-reporting the
// same completion) are no-ops, so the earliest, most precise report is
// the one subscribers see.
func (s *Streamer) Done(d Done) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	ev := StreamEvent{Seq: s.next, Type: EventDone, Done: &d}
	s.next++
	if len(s.buf) < s.cap {
		s.buf = append(s.buf, ev)
	} else {
		s.buf[ev.Seq%uint64(s.cap)] = ev
		s.dropped++
	}
	s.closed = true
	s.notifyLocked()
	s.mu.Unlock()
}

// Close ends the stream without a terminal event (the owner abandoned
// the job before it produced one). Subscribers drain and return.
func (s *Streamer) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.notifyLocked()
	}
	s.mu.Unlock()
}

// Closed reports whether the stream has ended.
func (s *Streamer) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Seq returns the sequence number the next event would get (== the
// count of events published so far).
func (s *Streamer) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Dropped returns the number of events overwritten in the ring.
func (s *Streamer) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Len returns the number of events currently held (<= Cap).
func (s *Streamer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Cap returns the ring capacity.
func (s *Streamer) Cap() int { return s.cap }

// Subscription is one reader's cursor into the stream. Create with
// Subscribe, consume with Next, release with Cancel.
type Subscription struct {
	s      *Streamer
	cursor uint64 // next sequence number to deliver
	notify chan struct{}
}

// Subscribe registers a reader whose delivery starts at sequence
// number from (0 replays everything the ring still holds; a
// reconnecting client passes lastSeenSeq+1). Events older than the
// ring are reported as missed by Next, never silently skipped.
func (s *Streamer) Subscribe(from uint64) *Subscription {
	sub := &Subscription{s: s, cursor: from, notify: make(chan struct{}, 1)}
	s.mu.Lock()
	s.subs[sub] = struct{}{}
	// Wake immediately if there is already something to deliver (or the
	// stream is over), so Next never waits on a signal that was sent
	// before the subscription existed.
	if s.cursor(sub) < s.next || s.closed {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
	return sub
}

// cursor clamps a subscription's cursor to valid sequence space.
func (s *Streamer) cursor(sub *Subscription) uint64 {
	if sub.cursor > s.next {
		sub.cursor = s.next
	}
	return sub.cursor
}

// Cancel unregisters the subscription. Safe to call more than once.
func (sub *Subscription) Cancel() {
	sub.s.mu.Lock()
	delete(sub.s.subs, sub)
	sub.s.mu.Unlock()
}

// Next blocks until events are available, the stream closes, or ctx is
// done. It returns the next batch (a copy, in sequence order) and the
// number of events that were dropped from the ring before this
// subscriber could read them. A nil batch with a nil error means the
// stream has closed and everything was delivered; a non-nil error is
// ctx's.
func (sub *Subscription) Next(ctx context.Context) ([]StreamEvent, uint64, error) {
	for {
		batch, missed, done := sub.take()
		if len(batch) > 0 || missed > 0 {
			return batch, missed, nil
		}
		if done {
			return nil, 0, nil
		}
		select {
		case <-sub.notify:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
}

// take copies every undelivered event out of the ring.
func (sub *Subscription) take() (batch []StreamEvent, missed uint64, done bool) {
	s := sub.s
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cursor(sub)
	if oldest := s.oldestLocked(); cur < oldest {
		missed = oldest - cur
		cur = oldest
	}
	if cur < s.next {
		batch = make([]StreamEvent, 0, s.next-cur)
		for q := cur; q < s.next; q++ {
			batch = append(batch, s.ringAtLocked(q))
		}
		cur = s.next
	}
	sub.cursor = cur
	return batch, missed, s.closed && cur == s.next
}

// ringAtLocked fetches the event with sequence number q, which the
// caller has checked is still in the ring.
func (s *Streamer) ringAtLocked(q uint64) StreamEvent {
	if len(s.buf) < s.cap {
		return s.buf[q]
	}
	return s.buf[q%uint64(s.cap)]
}
