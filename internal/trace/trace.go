// Package trace implements the simulator's trace file generation and
// validation (Sec. V of the paper): "For each executed operation the
// cycle number, opcode, input/output register numbers and values, and
// immediate values are appended to the trace file. The trace file is
// used to validate our hardware implementation."
//
// The format is line-oriented text, one line per executed operation:
//
//	cycle addr slot OP in r4=0000002a r5=00000001 out r4=0000002b imm 3
//
// Reader parses it back; Compare diffs two traces and reports the first
// divergence — the workflow used to validate RTL implementations
// against the ISS.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RegVal is a register number paired with its value.
type RegVal struct {
	Reg uint8  `json:"reg"`
	Val uint32 `json:"val"`
}

// Event is one executed operation. The JSON form is the payload of a
// streamed EventOp (docs/streaming.md); the text form is the trace
// file line.
type Event struct {
	Cycle uint64   `json:"cycle"`
	Addr  uint32   `json:"addr"`
	Slot  uint8    `json:"slot"`
	Op    string   `json:"op"`
	In    []RegVal `json:"in,omitempty"`
	Out   []RegVal `json:"out,omitempty"`
	Imm   int32    `json:"imm"`
}

// Writer appends events to an output stream.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one event.
func (t *Writer) Write(e *Event) {
	if t.err != nil {
		return
	}
	t.n++
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d %08x %d %s", e.Cycle, e.Addr, e.Slot, e.Op)
	if len(e.In) > 0 {
		sb.WriteString(" in")
		for _, rv := range e.In {
			fmt.Fprintf(&sb, " r%d=%08x", rv.Reg, rv.Val)
		}
	}
	if len(e.Out) > 0 {
		sb.WriteString(" out")
		for _, rv := range e.Out {
			fmt.Fprintf(&sb, " r%d=%08x", rv.Reg, rv.Val)
		}
	}
	fmt.Fprintf(&sb, " imm %d\n", e.Imm)
	_, t.err = t.w.WriteString(sb.String())
}

// Events returns the number of events written.
func (t *Writer) Events() uint64 { return t.n }

// Flush flushes buffered output and reports any write error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Read parses a whole trace stream.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Event, error) {
	var e Event
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return e, fmt.Errorf("short line %q", line)
	}
	cyc, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return e, fmt.Errorf("bad cycle %q", fields[0])
	}
	addr, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return e, fmt.Errorf("bad addr %q", fields[1])
	}
	slot, err := strconv.ParseUint(fields[2], 10, 8)
	if err != nil {
		return e, fmt.Errorf("bad slot %q", fields[2])
	}
	e.Cycle, e.Addr, e.Slot, e.Op = cyc, uint32(addr), uint8(slot), fields[3]
	mode := ""
	for i := 4; i < len(fields); i++ {
		switch f := fields[i]; f {
		case "in", "out":
			mode = f
		case "imm":
			if i+1 >= len(fields) {
				return e, fmt.Errorf("imm without value")
			}
			v, err := strconv.ParseInt(fields[i+1], 10, 64)
			if err != nil {
				return e, fmt.Errorf("bad imm %q", fields[i+1])
			}
			e.Imm = int32(v)
			i++
		default:
			eq := strings.IndexByte(f, '=')
			if eq < 2 || f[0] != 'r' {
				return e, fmt.Errorf("bad register field %q", f)
			}
			rn, err := strconv.ParseUint(f[1:eq], 10, 8)
			if err != nil {
				return e, fmt.Errorf("bad register %q", f)
			}
			rv, err := strconv.ParseUint(f[eq+1:], 16, 32)
			if err != nil {
				return e, fmt.Errorf("bad register value %q", f)
			}
			p := RegVal{Reg: uint8(rn), Val: uint32(rv)}
			switch mode {
			case "in":
				e.In = append(e.In, p)
			case "out":
				e.Out = append(e.Out, p)
			default:
				return e, fmt.Errorf("register field %q outside in/out", f)
			}
		}
	}
	return e, nil
}

// equalNoCycle compares everything except the cycle number (different
// cycle models timestamp the same architectural behaviour differently).
func equalNoCycle(a, b *Event) bool {
	if a.Addr != b.Addr || a.Slot != b.Slot || a.Op != b.Op || a.Imm != b.Imm ||
		len(a.In) != len(b.In) || len(a.Out) != len(b.Out) {
		return false
	}
	for i := range a.In {
		if a.In[i] != b.In[i] {
			return false
		}
	}
	for i := range a.Out {
		if a.Out[i] != b.Out[i] {
			return false
		}
	}
	return true
}

// Compare checks that two traces describe the same architectural
// behaviour (ignoring cycle numbers) and returns a descriptive error at
// the first divergence.
func Compare(a, b []Event) error {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !equalNoCycle(&a[i], &b[i]) {
			return fmt.Errorf("trace: divergence at event %d:\n  a: %s\n  b: %s", i, format(&a[i]), format(&b[i]))
		}
	}
	if len(a) != len(b) {
		return fmt.Errorf("trace: length mismatch: %d vs %d events", len(a), len(b))
	}
	return nil
}

func format(e *Event) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%08x/%d %s imm=%d in=%v out=%v", e.Addr, e.Slot, e.Op, e.Imm, e.In, e.Out)
	return sb.String()
}
