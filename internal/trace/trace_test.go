package trace_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func sampleEvents() []trace.Event {
	return []trace.Event{
		{Cycle: 1, Addr: 0x1000, Slot: 0, Op: "ADDI",
			In:  []trace.RegVal{{Reg: 2, Val: 0x400000}},
			Out: []trace.RegVal{{Reg: 2, Val: 0x3FFFF0}}, Imm: -16},
		{Cycle: 3, Addr: 0x1004, Slot: 1, Op: "MUL",
			In:  []trace.RegVal{{Reg: 4, Val: 7}, {Reg: 5, Val: 6}},
			Out: []trace.RegVal{{Reg: 6, Val: 42}}, Imm: 0},
		{Cycle: 9, Addr: 0x1008, Slot: 0, Op: "J", Imm: 1024},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	evs := sampleEvents()
	for i := range evs {
		w.Write(&evs[i])
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != uint64(len(evs)) {
		t.Fatalf("Events() = %d", w.Events())
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, evs)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\n1 00001000 0 NOP imm 0\n"
	evs, err := trace.Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Op != "NOP" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1 xx 0 NOP imm 0",       // bad addr
		"zz 00001000 0 NOP",      // bad cycle
		"1 00001000 q NOP",       // bad slot
		"1 00001000 0 NOP imm",   // imm without value
		"1 00001000 0 NOP r4=1",  // register outside in/out
		"1 00001000 0 NOP in r4", // missing =
		"1 00001000 0 NOP in r4=zz",
		"short",
	}
	for _, c := range cases {
		if _, err := trace.Read(strings.NewReader(c)); err == nil {
			t.Errorf("%q: expected parse error", c)
		}
	}
}

func TestCompare(t *testing.T) {
	a := sampleEvents()
	b := sampleEvents()
	// Cycle numbers differ between models and must be ignored.
	for i := range b {
		b[i].Cycle += 100
	}
	if err := trace.Compare(a, b); err != nil {
		t.Fatalf("cycle-shifted traces should compare equal: %v", err)
	}
	b[1].Out[0].Val = 43
	if err := trace.Compare(a, b); err == nil ||
		!strings.Contains(err.Error(), "divergence at event 1") {
		t.Fatalf("value divergence not reported: %v", err)
	}
	if err := trace.Compare(a, a[:2]); err == nil ||
		!strings.Contains(err.Error(), "length mismatch") {
		t.Fatalf("length mismatch not reported: %v", err)
	}
}

// Property: random events survive the text round trip.
func TestRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ops := []string{"ADD", "LW", "SW", "BEQ", "SIMCALL"}
	for trial := 0; trial < 200; trial++ {
		var evs []trace.Event
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			e := trace.Event{
				Cycle: uint64(rng.Int63()),
				Addr:  rng.Uint32(),
				Slot:  uint8(rng.Intn(8)),
				Op:    ops[rng.Intn(len(ops))],
				Imm:   int32(rng.Uint32()),
			}
			for j := 0; j < rng.Intn(3); j++ {
				e.In = append(e.In, trace.RegVal{Reg: uint8(rng.Intn(32)), Val: rng.Uint32()})
			}
			for j := 0; j < rng.Intn(2); j++ {
				e.Out = append(e.Out, trace.RegVal{Reg: uint8(rng.Intn(32)), Val: rng.Uint32()})
			}
			evs = append(evs, e)
		}
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		for i := range evs {
			w.Write(&evs[i])
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := trace.Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, evs) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}
