package analysis

import (
	"sort"

	"repro/internal/isa"
)

// CheckModel verifies an elaborated architecture model: the detection
// properties of the operation table (every ISA's table is a copy of the
// global operation set, so the table checks run once) and the bounds of
// register and immediate fields. targetgen.Elaborate runs these checks
// at elaboration time and refuses models with error-severity findings;
// klint runs them through the lenient elaboration path to report the
// findings instead.
func CheckModel(m *isa.Model) *Report {
	r := &Report{}
	checkDetection(r, m)
	checkFieldBounds(r, m)
	checkOperandShape(r, m)
	return r
}

// checkDetection verifies that constant-field detection (Sec. V of the
// paper) is unambiguous: no operation word may match two table entries.
// Pairs whose constant masks contain one another are classified as
// shadowing (the later entry can never be detected — KA002); all other
// colliding pairs are ambiguous encodings (KA001).
func checkDetection(r *Report, m *isa.Model) {
	for i, a := range m.Ops {
		for _, b := range m.Ops[i+1:] {
			common := a.ConstMask & b.ConstMask
			if a.ConstBits&common != b.ConstBits&common {
				continue
			}
			switch {
			case a.ConstMask == b.ConstMask:
				r.addf(CheckAmbiguous, Error,
					"operations %s and %s are not distinguishable by constant fields (identical detection pattern %#08x/%#08x)",
					a.Name, b.Name, a.ConstMask, a.ConstBits)
			case a.ConstMask&b.ConstMask == a.ConstMask:
				// a's mask is a subset of b's: every word encoding b
				// also matches a, and a precedes b in detection order.
				r.addf(CheckUnreachable, Error,
					"operation %s is unreachable: every word encoding it is detected as %s first",
					b.Name, a.Name)
			default:
				r.addf(CheckAmbiguous, Error,
					"operations %s and %s are not distinguishable by constant fields (patterns agree on the shared mask %#08x)",
					a.Name, b.Name, common)
			}
		}
	}
}

// checkFieldBounds verifies register fields against the register file:
// a field wide enough to encode indices beyond the file lets a binary
// smuggle out-of-range register numbers past the decoder. Indices
// beyond the simulator's 32-entry register file would crash the
// interpreter, so those are errors; indices merely beyond the declared
// count are warnings.
func checkFieldBounds(r *Report, m *isa.Model) {
	names := make([]string, 0, len(m.Formats))
	for n := range m.Formats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fm := m.Formats[n]
		for _, f := range fm.Fields {
			if f.Kind != isa.FieldReg {
				continue
			}
			max := 1 << f.Width()
			switch {
			case max > 32:
				r.addf(CheckRegBounds, Error,
					"format %s field %s: %d-bit register field encodes indices up to %d, beyond the simulator's 32-entry register file",
					fm.Name, f.Name, f.Width(), max-1)
			case max > m.Regs.Count:
				r.addf(CheckRegBounds, Warning,
					"format %s field %s: %d-bit register field encodes indices up to %d, but the register file has %d registers",
					fm.Name, f.Name, f.Width(), max-1, m.Regs.Count)
			}
		}
	}
}

// checkOperandShape verifies that control-transfer operations carry a
// usable target operand and that branch displacements can be negative.
func checkOperandShape(r *Report, m *isa.Model) {
	for _, op := range m.Ops {
		switch op.Class {
		case isa.ClassBranch:
			switch {
			case op.ImmField == nil:
				r.addf(CheckImmBounds, Error,
					"branch operation %s has no immediate displacement field", op.Name)
			case !op.ImmField.Signed:
				r.addf(CheckImmBounds, Warning,
					"branch operation %s: displacement field %s is unsigned, backward branches cannot be encoded",
					op.Name, op.ImmField.Name)
			}
		case isa.ClassJump:
			if op.ImmField == nil && op.Src1Field == nil {
				r.addf(CheckImmBounds, Error,
					"jump operation %s has neither an immediate target nor a register target", op.Name)
			}
		}
	}
}
