package analysis

import (
	"encoding/binary"
	"fmt"

	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/kelf"
	"repro/internal/sim"
)

// Options tune AnalyzeExecutable.
type Options struct {
	// DOEBounds emits one KB005 info diagnostic per basic block with
	// the block's static DOE cycle lower bound (see doe.go).
	DOEBounds bool
	// Checks restricts the report to the listed check IDs. nil keeps
	// every default check (KB005 additionally requires DOEBounds);
	// an empty non-nil slice disables them all.
	Checks []string
}

// enabled reports whether a check is selected by the filter.
func (o Options) enabled(check string) bool {
	if o.Checks == nil {
		return true
	}
	for _, c := range o.Checks {
		if c == check {
			return true
		}
	}
	return false
}

// Result is the outcome of analyzing one executable: the diagnostic
// report plus the recovered control-flow structure (basic blocks of
// statically decoded instructions, grouped per ISA region).
type Result struct {
	Report
	// Blocks are the recovered basic blocks in address order; each
	// carries its static DOE cycle lower bound.
	Blocks []*Block `json:"-"`
}

// AnalyzeExecutable statically decodes the text section of a loaded
// executable and verifies it. The walk mirrors execution: it starts at
// the program entry and at every function-table entry under that
// region's declared ISA, follows branches, calls and fall-through, and
// changes the decoding ISA at SWITCHTARGET operations exactly as the
// interpreter would (Sec. V-D of the paper) — so mixed-ISA binaries,
// where SWITCHTARGET/JAL pairs embed callee-ISA code inside a caller's
// region, decode without false positives.
func AnalyzeExecutable(m *isa.Model, p *sim.Program, opts Options) *Result {
	b := &binAnalyzer{
		m:       m,
		p:       p,
		res:     &Result{},
		visited: make(map[uint64]bool),
		owner:   make(map[uint64]uint32),
		bundles: make(map[uint64]*bundleInfo),
		leaders: make(map[uint64]bool),
	}
	if text := p.File.Section(kelf.SecText); text != nil {
		b.text = text.Data
	}
	b.seed()
	for len(b.queue) > 0 {
		s := b.queue[0]
		b.queue = b.queue[1:]
		b.step(s)
	}
	funcs := b.buildCFG()
	if opts.DOEBounds && opts.enabled(CheckDOEBound) {
		b.emitDOEBounds()
	}
	// The dataflow checks need a structurally sound CFG: undecodable
	// words or bad targets leave holes in it, and any finding past a
	// hole would be noise on top of the real error.
	if b.res.Errors() == 0 {
		b.runDataflow(funcs, opts)
	}
	if opts.Checks != nil {
		kept := b.res.Diags[:0]
		for _, d := range b.res.Diags {
			if opts.enabled(d.Check) {
				kept = append(kept, d)
			}
		}
		b.res.Diags = kept
	}
	b.res.Sort()
	return b.res
}

// runDataflow runs the interprocedural checks (KB006–KB010) over the
// recovered per-function CFGs. Checks that depend on the software
// calling convention are skipped on models whose register file doesn't
// declare the builtin aliases.
func (b *binAnalyzer) runDataflow(funcs []*funcCFG, opts Options) {
	if opts.enabled(CheckUnreachableCode) {
		b.checkUnreachable()
	}
	ip := newInterproc(b, funcs)
	if ip.conv.ok {
		if opts.enabled(CheckUninit) {
			ip.checkUninit()
		}
		if opts.enabled(CheckDeadStore) {
			ip.checkDeadStore()
		}
		if opts.enabled(CheckCallConv) {
			ip.checkCallConv()
		}
	}
	if opts.enabled(CheckBadAccess) {
		ip.checkBadAccess()
	}
}

// state is one point of the abstract execution: an instruction address
// plus the ISA that will be active when it executes. viaSWT marks the
// first instruction of a SWITCHTARGET region so decode failures there
// are attributed to the switch (KB003) rather than to the word (KB001).
type state struct {
	addr    uint32
	isa     *isa.ISA
	viaSWT  bool
	swtAddr uint32
}

// edgeTarget is one static intra-text control-transfer successor
// recorded during the walk (branch target or non-linking jump target),
// with the ISA active when it executes.
type edgeTarget struct {
	addr uint32
	isa  *isa.ISA
}

type bundleInfo struct {
	instr   *decode.Instruction
	hasFall bool
	control bool     // ends a basic block
	fallISA *isa.ISA // ISA of the fall-through successor (changes at SWITCHTARGET)
	targets []edgeTarget
	calls   []*CallSite
}

type binAnalyzer struct {
	m    *isa.Model
	p    *sim.Program
	res  *Result
	text []byte

	visited map[uint64]bool   // state key → processed
	owner   map[uint64]uint32 // op-word key → owning bundle start
	bundles map[uint64]*bundleInfo
	leaders map[uint64]bool // state key → starts a basic block
	queue   []state
}

func key(addr uint32, a *isa.ISA) uint64 { return uint64(addr) | uint64(uint32(a.ID))<<32 }

func (b *binAnalyzer) diag(check string, sev Severity, addr uint32, a *isa.ISA, format string, args ...any) {
	d := Diagnostic{
		Check: check, Severity: sev,
		Addr: addr, HasAddr: true,
		Msg: fmt.Sprintf(format, args...),
	}
	if a != nil {
		d.ISA = a.Name
	}
	if fi := b.p.FuncAt(addr); fi != nil {
		d.Func = fi.Name
	}
	b.res.add(d)
}

func (b *binAnalyzer) loadWord(addr uint32) uint32 {
	off := addr - b.p.TextStart
	return binary.LittleEndian.Uint32(b.text[off:])
}

func (b *binAnalyzer) push(s state, leader bool) {
	if leader {
		b.leaders[key(s.addr, s.isa)] = true
	}
	if !b.visited[key(s.addr, s.isa)] {
		b.queue = append(b.queue, s)
	}
}

// seed enqueues the entry point and every function-table entry under
// its declared ISA. Functions the walk never reaches from the entry
// (link-time dead code) are still verified this way.
func (b *binAnalyzer) seed() {
	entryISA := b.m.ISAByID(b.p.EntryISA)
	if entryISA == nil {
		b.diag(CheckSwitch, Error, b.p.Entry, nil,
			"executable requires unknown entry ISA id %d", b.p.EntryISA)
	} else {
		b.push(state{addr: b.p.Entry, isa: entryISA}, true)
	}
	for i := range b.p.Funcs.Funcs {
		fi := &b.p.Funcs.Funcs[i]
		a := b.m.ISAByID(int(fi.ISA))
		if a == nil {
			b.diag(CheckSwitch, Error, fi.Start, nil,
				"function %s declares unknown ISA id %d", fi.Name, fi.ISA)
			continue
		}
		if fi.Start < b.p.TextStart || fi.Start >= b.p.TextEnd {
			b.diag(CheckBadTarget, Error, fi.Start, a,
				"function %s starts at %#x outside text [%#x,%#x)",
				fi.Name, fi.Start, b.p.TextStart, b.p.TextEnd)
			continue
		}
		b.push(state{addr: fi.Start, isa: a}, true)
	}
}

// step decodes and checks one instruction state, then enqueues its
// successors.
func (b *binAnalyzer) step(s state) {
	k := key(s.addr, s.isa)
	if b.visited[k] {
		return
	}
	b.visited[k] = true

	size := s.isa.InstrBytes()
	if s.addr < b.p.TextStart || s.addr+size > b.p.TextEnd {
		if s.viaSWT {
			b.diag(CheckSwitch, Error, s.addr, s.isa,
				"SWITCHTARGET at %#x: %s region at %#x extends outside text [%#x,%#x)",
				s.swtAddr, s.isa.Name, s.addr, b.p.TextStart, b.p.TextEnd)
		} else {
			b.diag(CheckUndecodable, Error, s.addr, s.isa,
				"instruction at %#x (ISA %s, %d bytes) extends past end of text (%#x)",
				s.addr, s.isa.Name, size, b.p.TextEnd)
		}
		return
	}

	instr, err := decode.Instr(s.isa, s.addr, b.loadWord)
	if err != nil {
		de := err.(*decode.Error)
		if s.viaSWT {
			b.diag(CheckSwitch, Error, de.Addr, s.isa,
				"code after SWITCHTARGET at %#x does not decode under target ISA %s: illegal operation word %#08x",
				s.swtAddr, s.isa.Name, de.Word)
		} else {
			b.diag(CheckUndecodable, Error, de.Addr, s.isa,
				"illegal operation word %#08x (slot %d)", de.Word, de.Slot)
		}
		return
	}

	// Overlap detection: a control transfer into the middle of an
	// already-decoded bundle (or a bundle landing on the interior of
	// another) means some branch target is misaligned for its ISA.
	for w := s.addr; w < s.addr+size; w += isa.OpWordBytes {
		wk := key(w, s.isa)
		if prev, ok := b.owner[wk]; ok && prev != s.addr {
			b.diag(CheckBadTarget, Error, s.addr, s.isa,
				"misaligned control flow: bundle at %#x (ISA %s) overlaps bundle at %#x",
				s.addr, s.isa.Name, prev)
			break
		}
		b.owner[wk] = s.addr
	}

	b.checkWAW(instr, s.isa)

	info := &bundleInfo{instr: instr, hasFall: true}
	b.bundles[k] = info

	// Successor computation. A SWITCHTARGET changes the ISA of the
	// *next* instruction (fall-through and, in the general case, any
	// control target of the same bundle).
	next := s.isa
	var fromSWT bool
	var swtAddr uint32
	noFall := false
	for i := range instr.Ops {
		o := &instr.Ops[i]
		switch o.Op.SemKey {
		case "swt":
			id := int(o.Operands.Imm)
			a := b.m.ISAByID(id)
			if a == nil {
				b.diag(CheckSwitch, Error, o.Addr, s.isa,
					"SWITCHTARGET to unknown ISA id %d", id)
				noFall = true
				continue
			}
			next, fromSWT, swtAddr = a, true, o.Addr
		case "halt":
			noFall = true
		}
		switch o.Op.Class {
		case isa.ClassBranch:
			info.control = true
			target := o.Addr + uint32(o.Operands.Imm)*isa.OpWordBytes
			if at := b.pushTarget(target, next, o, "branch"); at != nil {
				info.targets = append(info.targets, edgeTarget{addr: target, isa: at})
			}
		case isa.ClassJump:
			info.control = true
			links := b.linksReturn(o)
			if o.Op.ImmField != nil {
				target := uint32(o.Operands.Imm) * isa.OpWordBytes
				at := b.pushTarget(target, next, o, "jump")
				switch {
				case at == nil:
					// Invalid target; KB002/KB003 already reported.
				case links:
					info.calls = append(info.calls, &CallSite{
						Op: o, Target: target, TargetISA: at, Known: true,
					})
				default:
					info.targets = append(info.targets, edgeTarget{addr: target, isa: at})
				}
			} else if links {
				// Register-indirect call: unknown callee.
				info.calls = append(info.calls, &CallSite{Op: o})
			}
			if !links {
				noFall = true
			}
		}
	}

	info.fallISA = next
	if noFall {
		info.hasFall = false
		return
	}
	fall := state{addr: s.addr + size, isa: next, viaSWT: fromSWT, swtAddr: swtAddr}
	// An ISA change always starts a new basic block.
	b.push(fall, fromSWT || info.control)
}

// linksReturn reports whether a jump operation produces a return
// address (a call), so execution eventually resumes at its
// fall-through: an explicit link register other than the zero register,
// or an implicit write besides the instruction pointer (JAL's ra).
func (b *binAnalyzer) linksReturn(o *decode.Op) bool {
	return linksReturn(b.m.Regs.ZeroReg, o)
}

func linksReturn(zero int, o *decode.Op) bool {
	if o.Op.DstField != nil && int(o.Operands.Rd) != zero {
		return true
	}
	for _, r := range o.Op.ImplicitWrites {
		if r != isa.RegIP && r != zero {
			return true
		}
	}
	return false
}

// pushTarget validates a static control-transfer target and enqueues
// it, returning the ISA the walk continues under there (nil when the
// target is invalid). Calls landing on a function entry are checked
// against the function table's declared ISA (KB003): reaching a
// function under the wrong ISA means a missing or inconsistent
// SWITCHTARGET pair.
func (b *binAnalyzer) pushTarget(target uint32, cur *isa.ISA, o *decode.Op, kind string) *isa.ISA {
	if target < b.p.TextStart || target >= b.p.TextEnd {
		b.diag(CheckBadTarget, Error, o.Addr, cur,
			"%s at %#x targets %#x outside text [%#x,%#x)",
			kind, o.Addr, target, b.p.TextStart, b.p.TextEnd)
		return nil
	}
	next := cur
	if fi := b.p.FuncAt(target); fi != nil && fi.Start == target {
		if want := b.m.ISAByID(int(fi.ISA)); want != nil && want != cur {
			b.diag(CheckSwitch, Error, o.Addr, cur,
				"%s at %#x reaches %s (declared ISA %s) while ISA %s is active — missing SWITCHTARGET",
				kind, o.Addr, fi.Name, want.Name, cur.Name)
			// Continue the walk under the declared ISA: the function
			// body is encoded for it, and decoding it under the wrong
			// ISA would only cascade secondary diagnostics.
			next = want
		}
	}
	b.push(state{addr: target, isa: next}, true)
	return next
}

// checkWAW reports intra-bundle write-after-write hazards: two parallel
// operations of one VLIW instruction writing the same register. The
// paper's parallel-operation semantics (Sec. V-B) buffer all writes and
// apply them after the compute phase, so the final value is
// order-dependent — the interpreter happens to apply the last slot, but
// the hardware contract is undefined. Two instruction-pointer writers
// (two control transfers) are the special case the interpreter rejects
// at run time.
func (b *binAnalyzer) checkWAW(instr *decode.Instruction, a *isa.ISA) {
	writers := make(map[int]*decode.Op)
	for i := range instr.Ops {
		o := &instr.Ops[i]
		seen := make(map[int]bool) // dedupe within one operation
		regs := make([]int, 0, 4)
		if o.Op.DstField != nil {
			regs = append(regs, int(o.Operands.Rd))
		}
		regs = append(regs, o.Op.ImplicitWrites...)
		for _, r := range regs {
			if r == b.m.Regs.ZeroReg || seen[r] {
				continue
			}
			seen[r] = true
			if prev, ok := writers[r]; ok {
				if r == isa.RegIP {
					b.diag(CheckWAWHazard, Error, instr.Addr, a,
						"two control transfers in one instruction (%s in slot %d, %s in slot %d)",
						prev.Op.Name, prev.Slot, o.Op.Name, o.Slot)
				} else {
					b.diag(CheckWAWHazard, Error, instr.Addr, a,
						"write-after-write hazard: %s (slot %d) and %s (slot %d) both write %s — undefined under parallel-operation semantics",
						prev.Op.Name, prev.Slot, o.Op.Name, o.Slot, b.m.Regs.RegName(r))
				}
				continue
			}
			writers[r] = o
		}
	}
}
