// Package analysis is the static-analysis layer of the toolchain
// (cmd/klint, the kservd /v1/analyze endpoint, and the elaboration-time
// model checks of package targetgen). It verifies two kinds of
// artifacts:
//
//   - elaborated ADL models (CheckModel): ambiguous or shadowed
//     constant-field encodings in the operation tables, register-index
//     and immediate-width bounds — the properties the simulator's
//     detection loop silently assumes;
//   - linked executables (AnalyzeExecutable): a control-flow walk of the
//     text sections that statically decodes every reachable instruction
//     under the ISA that will be active when it executes (function-table
//     ISAs plus SWITCHTARGET transitions), reporting undecodable words,
//     bad control-transfer targets, SWITCHTARGET/ISA mismatches,
//     intra-bundle VLIW write-after-write hazards, and a static DOE
//     cycle lower bound per basic block.
//
// Diagnostics are structured (check ID, severity, address, ISA) so the
// CLI, the HTTP API and the CI gate all consume the same reports. The
// check catalogue is documented in docs/analysis.md.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info diagnostics are advisory measurements (the static DOE cycle
	// bounds); they never affect exit codes.
	Info Severity = iota
	// Warning diagnostics describe constructs that are suspicious but
	// cannot crash the simulator.
	Warning
	// Error diagnostics describe models or binaries the simulator will
	// reject (or execute incorrectly) at run time.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the lowercase severity names MarshalJSON emits.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	v, ok := ParseSeverity(name)
	if !ok {
		return fmt.Errorf("unknown severity %q", name)
	}
	*s = v
	return nil
}

// ParseSeverity maps the lowercase severity names back to values; it is
// the inverse of String for the three defined levels.
func ParseSeverity(s string) (Severity, bool) {
	switch s {
	case "info":
		return Info, true
	case "warning":
		return Warning, true
	case "error":
		return Error, true
	}
	return 0, false
}

// Check identifiers. KA checks apply to ADL models, KB checks to
// binaries; docs/analysis.md is the authoritative catalogue (cmd/kvet
// fails the build when an ID below is missing from it).
const (
	CheckAmbiguous       = "KA001" // two operations not distinguishable by constant fields
	CheckUnreachable     = "KA002" // operation shadowed by an earlier table entry
	CheckRegBounds       = "KA003" // register field can encode out-of-range indices
	CheckImmBounds       = "KA004" // immediate field bounds (branch displacement signedness, missing target)
	CheckUndecodable     = "KB001" // reachable operation word matches no table entry
	CheckBadTarget       = "KB002" // control transfer to out-of-text or misaligned address
	CheckSwitch          = "KB003" // SWITCHTARGET region or cross-ISA call inconsistency
	CheckWAWHazard       = "KB004" // intra-bundle VLIW write-after-write hazard
	CheckDOEBound        = "KB005" // static DOE cycle lower bound per basic block
	CheckUninit          = "KB006" // caller-saved register read before any write on some path
	CheckDeadStore       = "KB007" // caller-saved register written but never read
	CheckUnreachableCode = "KB008" // code never reached from the entry or any control path
	CheckCallConv        = "KB009" // cross-ISA call-site argument-register mismatch
	CheckBadAccess       = "KB010" // statically pinned data access outside the guest address space
)

// CheckInfo is one catalogue entry of the check registry: the SARIF
// rule metadata, the `klint -checks` vocabulary and the docs lockstep
// gate all derive from it.
type CheckInfo struct {
	ID       string   `json:"id"`
	Severity Severity `json:"severity"` // default severity of its diagnostics
	Summary  string   `json:"summary"`
}

// checkCatalogue lists every check in ID order.
var checkCatalogue = []CheckInfo{
	{CheckAmbiguous, Error, "two operations are not distinguishable by their constant encoding fields"},
	{CheckUnreachable, Warning, "operation shadowed by an earlier decode-table entry"},
	{CheckRegBounds, Error, "register field can encode indices outside the register file"},
	{CheckImmBounds, Warning, "immediate field bounds are inconsistent with the operation's use"},
	{CheckUndecodable, Error, "reachable operation word matches no decode-table entry"},
	{CheckBadTarget, Error, "control transfer to an out-of-text or misaligned address"},
	{CheckSwitch, Error, "SWITCHTARGET region or cross-ISA call inconsistency"},
	{CheckWAWHazard, Error, "intra-bundle VLIW write-after-write hazard"},
	{CheckDOEBound, Info, "static DOE cycle lower bound per basic block"},
	{CheckUninit, Warning, "caller-saved register read before any write on some path from the function entry"},
	{CheckDeadStore, Warning, "caller-saved register written but never read before it dies"},
	{CheckUnreachableCode, Warning, "code never reached from the entry, the function table or any control path"},
	{CheckCallConv, Warning, "cross-ISA call site never sets an argument register the callee reads"},
	{CheckBadAccess, Error, "statically pinned data access outside the guest address space or into text"},
}

// Checks returns the full check catalogue in ID order.
func Checks() []CheckInfo {
	out := make([]CheckInfo, len(checkCatalogue))
	copy(out, checkCatalogue)
	return out
}

// KnownCheck reports whether id names a catalogued check.
func KnownCheck(id string) bool {
	for _, c := range checkCatalogue {
		if c.ID == id {
			return true
		}
	}
	return false
}

// Diagnostic is one structured finding.
type Diagnostic struct {
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	// Addr is the instruction (or operation word) address for binary
	// checks; 0 for model checks (HasAddr distinguishes a real 0).
	Addr    uint32 `json:"addr,omitempty"`
	HasAddr bool   `json:"-"`
	// ISA names the instruction set the diagnostic applies under.
	ISA string `json:"isa,omitempty"`
	// Func is the enclosing function, when known.
	Func string `json:"func,omitempty"`
	Msg  string `json:"msg"`
}

// String renders the diagnostic in the klint line format:
//
//	error KB001 @0x100 [VLIW4] (main): illegal operation word ...
func (d Diagnostic) String() string {
	var sb strings.Builder
	sb.WriteString(d.Severity.String())
	sb.WriteString(" ")
	sb.WriteString(d.Check)
	if d.HasAddr {
		fmt.Fprintf(&sb, " @%#x", d.Addr)
	}
	if d.ISA != "" {
		fmt.Fprintf(&sb, " [%s]", d.ISA)
	}
	if d.Func != "" {
		fmt.Fprintf(&sb, " (%s)", d.Func)
	}
	sb.WriteString(": ")
	sb.WriteString(d.Msg)
	return sb.String()
}

// Report is an ordered collection of diagnostics.
type Report struct {
	Diags []Diagnostic `json:"diagnostics"`
}

func (r *Report) add(d Diagnostic) { r.Diags = append(r.Diags, d) }

func (r *Report) addf(check string, sev Severity, format string, args ...any) {
	r.add(Diagnostic{Check: check, Severity: sev, Msg: fmt.Sprintf(format, args...)})
}

// Count returns the number of diagnostics at the given severity.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// Errors returns the number of error-severity diagnostics.
func (r *Report) Errors() int { return r.Count(Error) }

// Warnings returns the number of warning-severity diagnostics.
func (r *Report) Warnings() int { return r.Count(Warning) }

// Clean reports whether the report carries no errors and no warnings.
func (r *Report) Clean() bool { return r.Errors() == 0 && r.Warnings() == 0 }

// Filter returns a copy of the report keeping diagnostics at or above
// the given severity.
func (r *Report) Filter(min Severity) *Report {
	out := &Report{}
	for _, d := range r.Diags {
		if d.Severity >= min {
			out.add(d)
		}
	}
	return out
}

// Sort orders diagnostics by severity (errors first), then address,
// then check ID — the stable order the CLI and the HTTP API present.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Check < b.Check
	})
}

// Merge appends all diagnostics of other.
func (r *Report) Merge(other *Report) {
	if other != nil {
		r.Diags = append(r.Diags, other.Diags...)
	}
}
