package analysis_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/analysis"
	"repro/internal/cycle"
	"repro/internal/isa"
	"repro/internal/kelf"
	"repro/internal/ktest"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/targetgen"
	"repro/internal/workloads"

	"repro/internal/driver"
)

func analyze(t *testing.T, p *sim.Program) *analysis.Result {
	t.Helper()
	return analysis.AnalyzeExecutable(ktest.Model(t), p, analysis.Options{})
}

// find returns the diagnostics with the given check ID.
func find(r *analysis.Report, check string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range r.Diags {
		if d.Check == check {
			out = append(out, d)
		}
	}
	return out
}

func wantCheck(t *testing.T, r *analysis.Report, check string, sub string) analysis.Diagnostic {
	t.Helper()
	ds := find(r, check)
	if len(ds) == 0 {
		t.Fatalf("no %s diagnostic; report:\n%s", check, dump(r))
	}
	for _, d := range ds {
		if strings.Contains(d.Msg, sub) {
			return d
		}
	}
	t.Fatalf("no %s diagnostic contains %q; report:\n%s", check, sub, dump(r))
	return analysis.Diagnostic{}
}

func dump(r *analysis.Report) string {
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString(d.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Binary checks (KB001..KB005), each over a program with that defect
// deliberately seeded.

func TestCleanProgram(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	li t0, 3
	li t1, 4
	add a0, t0, t1
	ret
	.endfunc
`)
	r := analyze(t, p)
	if !r.Clean() {
		t.Fatalf("clean program has findings:\n%s", dump(&r.Report))
	}
}

func TestUndecodableWord(t *testing.T) {
	// 0xFFFFFFFF sets NOP's opcode but a non-zero pad field, so it
	// matches no operation table entry (the seed of the simulator's
	// run-time illegal-instruction test, caught statically here).
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	.word 0xFFFFFFFF
	ret
	.endfunc
`)
	r := analyze(t, p)
	d := wantCheck(t, &r.Report, analysis.CheckUndecodable, "illegal operation word 0xffffffff")
	if d.Severity != analysis.Error {
		t.Fatalf("severity = %v, want error", d.Severity)
	}
	if d.Func != "main" {
		t.Fatalf("func = %q, want main", d.Func)
	}
}

// ScanText (the keep-going linear pass behind kdump) reports every bad
// word in the section, not just the first.
func TestScanTextKeepsGoing(t *testing.T) {
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	.word 0xFFFFFFFF
	li t0, 1
	.word 0xFFFFFFFF
	ret
	.endfunc
`)
	r := analysis.ScanText(ktest.Model(t), p)
	bad := find(r, analysis.CheckUndecodable)
	if len(bad) != 2 {
		t.Fatalf("ScanText found %d bad words, want 2; report:\n%s", len(bad), dump(r))
	}
	if bad[0].Addr == bad[1].Addr || bad[0].Func != "main" {
		t.Fatalf("diagnostics %+v", bad)
	}
}

// patchOp rewrites the first text word matching op with new operands.
func patchOp(t *testing.T, exe *kelf.File, m *isa.Model, opName string, o isa.Operands) uint32 {
	t.Helper()
	op := m.Op(opName)
	text := exe.Section(kelf.SecText)
	for off := 0; off+4 <= len(text.Data); off += 4 {
		w := uint32(text.Data[off]) | uint32(text.Data[off+1])<<8 |
			uint32(text.Data[off+2])<<16 | uint32(text.Data[off+3])<<24
		if !op.Match(w) {
			continue
		}
		nw, err := op.Encode(o)
		if err != nil {
			t.Fatal(err)
		}
		text.Data[off] = byte(nw)
		text.Data[off+1] = byte(nw >> 8)
		text.Data[off+2] = byte(nw >> 16)
		text.Data[off+3] = byte(nw >> 24)
		return text.Addr + uint32(off)
	}
	t.Fatalf("no %s word found in text", opName)
	return 0
}

func TestBranchOutOfText(t *testing.T) {
	exe := ktest.BuildExe(t, "RISC", `
	.global main
	.func main
main:
	beq zero, zero, done
done:
	li a0, 0
	ret
	.endfunc
`)
	// Retarget the branch far below the text base.
	addr := patchOp(t, exe, ktest.Model(t), "BEQ", isa.Operands{Imm: -0x4000})
	r := analyze(t, ktest.LoadExe(t, exe))
	d := wantCheck(t, &r.Report, analysis.CheckBadTarget, "outside text")
	if d.Addr != addr {
		t.Fatalf("diagnostic at %#x, want %#x", d.Addr, addr)
	}
}

func TestMisalignedJumpTarget(t *testing.T) {
	// A VLIW2 function whose call lands in the middle of a 2-word
	// bundle: the interior word decodes, but the bundle overlap is the
	// static signature of a misaligned target.
	exe := ktest.BuildExe(t, "VLIW2", `
	.isa VLIW2
	.global main
	.func main
main:
	jal helper
	{ add t0, t1, t2 ; add t3, t4, t5 }
	li a0, 0
	ret
	.endfunc
	.global helper
	.func helper
helper:
	ret
	.endfunc
`)
	m := ktest.Model(t)
	// Retarget main's `jal helper` into slot 1 of the following 2-word
	// bundle. crt0's own `jal main` comes first in text, so patch the
	// second JAL word.
	text := exe.Section(kelf.SecText)
	op := m.Op("JAL")
	var addrs []uint32
	for off := 0; off+4 <= len(text.Data); off += 4 {
		w := uint32(text.Data[off]) | uint32(text.Data[off+1])<<8 |
			uint32(text.Data[off+2])<<16 | uint32(text.Data[off+3])<<24
		if op.Match(w) {
			addrs = append(addrs, text.Addr+uint32(off))
		}
	}
	if len(addrs) < 2 {
		t.Fatalf("found %d JAL words, want >= 2", len(addrs))
	}
	jAddr := addrs[1]
	nw, err := op.Encode(isa.Operands{Imm: int32((jAddr + 12) / 4)})
	if err != nil {
		t.Fatal(err)
	}
	off := jAddr - text.Addr
	text.Data[off] = byte(nw)
	text.Data[off+1] = byte(nw >> 8)
	text.Data[off+2] = byte(nw >> 16)
	text.Data[off+3] = byte(nw >> 24)
	r := analyze(t, ktest.LoadExe(t, exe))
	wantCheck(t, &r.Report, analysis.CheckBadTarget, "overlaps")
}

func TestCrossISACallMismatch(t *testing.T) {
	// vliwfn is assembled (and declared in .kfuncs) as VLIW2, but main
	// calls it while RISC is active — the SWITCHTARGET is missing.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	jal vliwfn
	ret
	.endfunc

	.isa VLIW2
	.global vliwfn
	.func vliwfn
vliwfn:
	{ add t0, t1, t2 ; add t3, t4, t5 }
	ret
	.endfunc
`)
	r := analyze(t, p)
	d := wantCheck(t, &r.Report, analysis.CheckSwitch, "missing SWITCHTARGET")
	if d.ISA != "RISC" {
		t.Fatalf("diagnostic ISA = %q, want RISC", d.ISA)
	}
	if !strings.Contains(d.Msg, "vliwfn") || !strings.Contains(d.Msg, "VLIW2") {
		t.Fatalf("message lacks callee context: %s", d.Msg)
	}
}

func TestSwitchTargetBadRegion(t *testing.T) {
	// The code following the SWITCHTARGET does not decode under the
	// declared target ISA.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	swt VLIW2
	.word 0xFFFFFFFF
	.word 0xFFFFFFFF
	.endfunc
`)
	r := analyze(t, p)
	d := wantCheck(t, &r.Report, analysis.CheckSwitch, "does not decode under target ISA VLIW2")
	if d.ISA != "VLIW2" {
		t.Fatalf("diagnostic ISA = %q, want VLIW2", d.ISA)
	}
}

func TestWAWHazard(t *testing.T) {
	// The assembler refuses to emit two writers of one register in one
	// bundle, so seed the hazard by patching slot 1's destination (t3,
	// r11) to collide with slot 0's (t0, r8) — the defect a buggy
	// scheduler or hand-patched binary would carry.
	exe := ktest.BuildExe(t, "VLIW2", `
	.isa VLIW2
	.global main
	.func main
main:
	{ add t0, t1, zero ; add t3, t2, zero }
	li a0, 0
	ret
	.endfunc
`)
	m := ktest.Model(t)
	op := m.Op("ADD")
	text := exe.Section(kelf.SecText)
	patched := false
	for off := 0; off+4 <= len(text.Data); off += 4 {
		w := uint32(text.Data[off]) | uint32(text.Data[off+1])<<8 |
			uint32(text.Data[off+2])<<16 | uint32(text.Data[off+3])<<24
		if !op.Match(w) || op.DecodeOperands(w).Rd != 11 {
			continue
		}
		nw := op.Format.Field("rd").Insert(w, 8)
		text.Data[off] = byte(nw)
		text.Data[off+1] = byte(nw >> 8)
		text.Data[off+2] = byte(nw >> 16)
		text.Data[off+3] = byte(nw >> 24)
		patched = true
		break
	}
	if !patched {
		t.Fatal("no `add t3, ...` word found to patch")
	}
	r := analyze(t, ktest.LoadExe(t, exe))
	d := wantCheck(t, &r.Report, analysis.CheckWAWHazard, "both write t0")
	if d.Severity != analysis.Error {
		t.Fatalf("severity = %v, want error", d.Severity)
	}
}

func TestWAWZeroRegisterIsFine(t *testing.T) {
	// Discarding two results into the zero register is not a hazard.
	p := ktest.BuildProgram(t, "VLIW2", `
	.isa VLIW2
	.global main
	.func main
main:
	{ add zero, t1, t2 ; add zero, t3, t4 }
	li a0, 0
	ret
	.endfunc
`)
	r := analyze(t, p)
	if ds := find(&r.Report, analysis.CheckWAWHazard); len(ds) != 0 {
		t.Fatalf("zero-register writes flagged: %v", ds)
	}
}

// ---------------------------------------------------------------------
// Model checks (KA001..KA004) through the lenient elaboration path.

func lenient(t *testing.T, src string) *analysis.Report {
	t.Helper()
	doc, err := adl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, r, err := targetgen.ElaborateLenient(doc)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return r
}

const modelPrefix = `
architecture T
registers G { count 32 width 32 zero r0 }
format I {
  field opcode 31:26 const
  field rd 25:21 reg dst
  field rs1 20:16 reg src1
  field imm 15:0 imm imm signed
}
`

func TestModelAmbiguousEncoding(t *testing.T) {
	r := lenient(t, modelPrefix+`
operation A { format I set opcode = 1 class alu latency 1 sem addi }
operation B { format I set opcode = 1 class alu latency 1 sem addi }
isa R { id 0 issue 1 default }
`)
	d := wantCheck(t, r, analysis.CheckAmbiguous, "not distinguishable")
	if d.Severity != analysis.Error {
		t.Fatalf("severity = %v", d.Severity)
	}
	// Elaborate proper must refuse the same model.
	doc, _ := adl.Parse(modelPrefix + `
operation A { format I set opcode = 1 class alu latency 1 sem addi }
operation B { format I set opcode = 1 class alu latency 1 sem addi }
isa R { id 0 issue 1 default }
`)
	if _, err := targetgen.Elaborate(doc); err == nil ||
		!strings.Contains(err.Error(), "not distinguishable") {
		t.Fatalf("Elaborate err = %v", err)
	}
}

func TestModelShadowedOperation(t *testing.T) {
	// A's constant mask (opcode only) is a subset of B's (opcode+func):
	// every word encoding B is detected as A first.
	r := lenient(t, modelPrefix+`
format R {
  field opcode 31:26 const
  field rd 25:21 reg dst
  field rs1 20:16 reg src1
  field rs2 15:11 reg src2
  field func 10:0 const
}
operation A { format I set opcode = 0 class alu latency 1 sem addi }
operation B { format R set opcode = 0 set func = 3 class alu latency 1 sem add }
isa R { id 0 issue 1 default }
`)
	wantCheck(t, r, analysis.CheckUnreachable, "operation B is unreachable")
}

func TestModelRegisterFieldBounds(t *testing.T) {
	r := lenient(t, `
architecture T
registers G { count 32 width 32 zero r0 }
format W {
  field opcode 31:26 const
  field rd 25:20 reg dst
  field imm 19:0 imm imm signed
}
operation A { format W set opcode = 1 class alu latency 1 sem addi }
isa R { id 0 issue 1 default }
`)
	d := wantCheck(t, r, analysis.CheckRegBounds, "6-bit register field")
	if d.Severity != analysis.Error {
		t.Fatalf("severity = %v", d.Severity)
	}
}

func TestModelBranchImmShape(t *testing.T) {
	r := lenient(t, `
architecture T
registers G { count 32 width 32 zero r0 }
format B {
  field opcode 31:26 const
  field rs1 25:21 reg src1
  field rs2 20:16 reg src2
  field imm 15:0 imm imm
}
operation BEQ { format B set opcode = 1 class branch latency 1 sem beq writes ip }
isa R { id 0 issue 1 default }
`)
	d := wantCheck(t, r, analysis.CheckImmBounds, "unsigned")
	if d.Severity != analysis.Warning {
		t.Fatalf("severity = %v, want warning", d.Severity)
	}
}

func TestBuiltinModelClean(t *testing.T) {
	r := analysis.CheckModel(ktest.Model(t))
	if !r.Clean() {
		t.Fatalf("built-in model has findings:\n%s", dump(r))
	}
}

// ---------------------------------------------------------------------
// Corpus: every shipped workload must analyze clean (diagnostic-free
// modulo info), compiled at several entry ISAs.

func TestWorkloadsAnalyzeClean(t *testing.T) {
	m := ktest.Model(t)
	for _, w := range workloads.All() {
		for _, isaName := range []string{"RISC", "VLIW4"} {
			p, err := driver.Load(m, isaName, w.Sources...)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", w.Name, isaName, err)
			}
			r := analysis.AnalyzeExecutable(m, p, analysis.Options{})
			if !r.Clean() {
				t.Errorf("%s/%s: findings:\n%s", w.Name, isaName, dump(&r.Report))
			}
		}
	}
}

// ---------------------------------------------------------------------
// DOE lower bound: the static per-block bound must not exceed what the
// dynamic DOE model charges for an execution that runs the block.

func TestDOEBoundIsLowerBound(t *testing.T) {
	src := `
	.global main
	.func main
main:
	li t0, 1
	li t1, 2
	mul t2, t0, t1
	mul t3, t2, t2
	div t4, t3, t0
	add a0, t4, t3
	ret
	.endfunc
`
	p := ktest.BuildProgram(t, "RISC", src)
	res := analysis.AnalyzeExecutable(ktest.Model(t), p, analysis.Options{DOEBounds: true})
	if len(find(&res.Report, analysis.CheckDOEBound)) == 0 {
		t.Fatal("no KB005 diagnostics emitted")
	}

	// Locate main's entry block and check its bound against a real DOE
	// run: the multiply/divide dependency chain alone costs 3+3+12
	// cycles, and the dynamic model can never beat the static bound.
	fn := p.Funcs.Lookup(p.Entry)
	var mainStart uint32
	for i := range p.Funcs.Funcs {
		if p.Funcs.Funcs[i].Name == "main" {
			mainStart = p.Funcs.Funcs[i].Start
		}
	}
	_ = fn
	var blk *analysis.Block
	for _, b := range res.Blocks {
		if b.Start == mainStart {
			blk = b
		}
	}
	if blk == nil {
		t.Fatalf("no block at main %#x", mainStart)
	}
	if blk.DOEBound < 18 {
		t.Fatalf("main block bound = %d, want >= 18 (mul+mul+div chain)", blk.DOEBound)
	}

	doe := cycle.NewDOE(ktest.Model(t), mem.Flat(3))
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 1 << 20
	c := ktest.NewCPU(t, p, opts)
	c.Attach(doe)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if doe.Cycles() < blk.DOEBound {
		t.Fatalf("dynamic DOE cycles %d < static bound %d", doe.Cycles(), blk.DOEBound)
	}
}

// ---------------------------------------------------------------------
// Dataflow checks (KB006..KB010), each over a program seeding exactly
// that defect, mirroring the KB001..KB005 fixtures above.

func TestUninitTempRead(t *testing.T) {
	// t0 is caller-saved scratch: nothing defines it on any path from
	// main's entry, so reading it observes garbage.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	add a0, t0, zero
	ret
	.endfunc
`)
	r := analyze(t, p)
	d := wantCheck(t, &r.Report, analysis.CheckUninit, "not written on every path")
	if d.Severity != analysis.Warning {
		t.Fatalf("severity = %v, want warning", d.Severity)
	}
	if !strings.Contains(d.Msg, "t0") || d.Func != "main" {
		t.Fatalf("diagnostic lacks register/function context: %+v", d)
	}
}

func TestUninitBranchyPath(t *testing.T) {
	// t1 is defined on the taken path only; the fall-through reaches the
	// read with t1 still undefined, so the must-analysis flags it.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	li t0, 1
	beq t0, zero, skip
	li t1, 5
skip:
	add a0, t1, zero
	ret
	.endfunc
`)
	r := analyze(t, p)
	wantCheck(t, &r.Report, analysis.CheckUninit, "t1")
}

func TestDeadStore(t *testing.T) {
	// t5 is written and never read again before main exits; temps are
	// dead across returns, so the store is provably useless.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	li t5, 7
	li a0, 0
	ret
	.endfunc
`)
	r := analyze(t, p)
	d := wantCheck(t, &r.Report, analysis.CheckDeadStore, "dead store")
	if !strings.Contains(d.Msg, "t5") {
		t.Fatalf("message lacks register: %s", d.Msg)
	}
	if d.Severity != analysis.Warning {
		t.Fatalf("severity = %v, want warning", d.Severity)
	}
}

func TestUnreachableCode(t *testing.T) {
	// The instructions between the unconditional branch and its target
	// are never reached by any control path.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	li a0, 0
	b done
	li a0, 1
	li a0, 2
done:
	ret
	.endfunc
`)
	r := analyze(t, p)
	d := wantCheck(t, &r.Report, analysis.CheckUnreachableCode, "never reached")
	if !strings.Contains(d.Msg, "main") {
		t.Fatalf("message lacks function: %s", d.Msg)
	}
	if d.Severity != analysis.Warning {
		t.Fatalf("severity = %v, want warning", d.Severity)
	}
}

func TestCrossISACallMissingArg(t *testing.T) {
	// vfn (VLIW2) reads its argument registers, but the RISC caller
	// never writes a0 on any path to the call site.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	swt VLIW2
	jal vfn
	swt RISC
	li a0, 0
	ret
	.endfunc

	.isa VLIW2
	.global vfn
	.func vfn
vfn:
	{ add a0, a0, a1 ; add a1, a1, zero }
	ret
	.endfunc
`)
	r := analyze(t, p)
	d := wantCheck(t, &r.Report, analysis.CheckCallConv, "never writes on any path")
	if !strings.Contains(d.Msg, "vfn") || !strings.Contains(d.Msg, "VLIW2") {
		t.Fatalf("message lacks callee context: %s", d.Msg)
	}
	if d.Severity != analysis.Warning {
		t.Fatalf("severity = %v, want warning", d.Severity)
	}
}

func TestCrossISACallArgDefined(t *testing.T) {
	// Same shape, but the caller does write a0 before the call: the
	// may-analysis sees the definition and KB009 stays silent.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	li a0, 3
	li a1, 4
	swt VLIW2
	jal vfn
	swt RISC
	ret
	.endfunc

	.isa VLIW2
	.global vfn
	.func vfn
vfn:
	{ add a0, a0, a1 ; add a1, a1, zero }
	ret
	.endfunc
`)
	r := analyze(t, p)
	if ds := find(&r.Report, analysis.CheckCallConv); len(ds) != 0 {
		t.Fatalf("unexpected KB009 on a well-formed call:\n%s", dump(&r.Report))
	}
}

func TestBadAccessOutsideAddressSpace(t *testing.T) {
	// The load address is a compile-time constant (0) below the text
	// base: no execution can make it legal.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	lw a0, 0(zero)
	ret
	.endfunc
`)
	r := analyze(t, p)
	d := wantCheck(t, &r.Report, analysis.CheckBadAccess, "statically outside the guest address space")
	if d.Severity != analysis.Error {
		t.Fatalf("severity = %v, want error", d.Severity)
	}
}

func TestBadAccessTextOverwrite(t *testing.T) {
	// Storing through a constant address inside the text section is
	// self-modification, which the simulator does not support.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	la t0, main
	sw zero, 0(t0)
	li a0, 0
	ret
	.endfunc
`)
	r := analyze(t, p)
	d := wantCheck(t, &r.Report, analysis.CheckBadAccess, "overwrites the text section")
	if d.Severity != analysis.Error {
		t.Fatalf("severity = %v, want error", d.Severity)
	}
}

// ---------------------------------------------------------------------
// Options.Checks filtering and determinism.

func TestChecksFilter(t *testing.T) {
	// One program carrying two distinct defects; restricting Checks to
	// KB007 must keep the dead store and drop the bad access.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	li t5, 7
	lw a0, 0(zero)
	ret
	.endfunc
`)
	m := ktest.Model(t)
	full := analysis.AnalyzeExecutable(m, p, analysis.Options{})
	if len(find(&full.Report, analysis.CheckDeadStore)) == 0 || len(find(&full.Report, analysis.CheckBadAccess)) == 0 {
		t.Fatalf("fixture does not seed both defects:\n%s", dump(&full.Report))
	}
	only := analysis.AnalyzeExecutable(m, p, analysis.Options{Checks: []string{analysis.CheckDeadStore}})
	if len(find(&only.Report, analysis.CheckDeadStore)) == 0 {
		t.Fatalf("filtered run lost the requested check:\n%s", dump(&only.Report))
	}
	for _, d := range only.Report.Diags {
		if d.Check != analysis.CheckDeadStore {
			t.Fatalf("filtered run leaked %s:\n%s", d.Check, dump(&only.Report))
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	// Analyzing the same executable twice must yield byte-identical
	// reports: downstream caches key on the build fingerprint and serve
	// the first report verbatim.
	p := ktest.BuildProgram(t, "RISC", `
	.global main
	.func main
main:
	add a0, t0, zero
	li t5, 9
	b over
	li a1, 1
over:
	lw a2, 0(zero)
	ret
	.endfunc
`)
	m := ktest.Model(t)
	opts := analysis.Options{DOEBounds: true}
	first, err := json.Marshal(analysis.AnalyzeExecutable(m, p, opts).Report)
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(analysis.AnalyzeExecutable(m, p, opts).Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("reports differ between runs:\n%s\n---\n%s", first, second)
	}
}

func TestCheckCatalogue(t *testing.T) {
	checks := analysis.Checks()
	if len(checks) == 0 {
		t.Fatal("empty check catalogue")
	}
	seen := map[string]bool{}
	for _, c := range checks {
		if seen[c.ID] {
			t.Fatalf("duplicate catalogue entry %s", c.ID)
		}
		seen[c.ID] = true
		if !analysis.KnownCheck(c.ID) {
			t.Fatalf("catalogue entry %s not known", c.ID)
		}
		if c.Summary == "" {
			t.Fatalf("catalogue entry %s has no summary", c.ID)
		}
	}
	for _, id := range []string{analysis.CheckUninit, analysis.CheckDeadStore,
		analysis.CheckUnreachableCode, analysis.CheckCallConv, analysis.CheckBadAccess} {
		if !seen[id] {
			t.Fatalf("catalogue missing %s", id)
		}
	}
	if analysis.KnownCheck("KB999") {
		t.Fatal("KB999 reported as known")
	}
}
