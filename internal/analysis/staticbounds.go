package analysis

import (
	"fmt"
	"sort"
)

// Static-bounds cross-check: the KB005 DOE lower bounds are proved per
// basic block from operation latencies and intra-block dependencies
// alone, so they must be consistent with any measured DOE run that
// actually executed the block. The two invariants checked here are the
// sound ones — they hold for every interleaving and every shadowing of
// blocks by one another:
//
//  1. the run's total measured cycles are at least the static bound of
//     every block the run executed (one pass through the block alone
//     already costs that much);
//  2. the run's total measured cycles are at least its total executed
//     instructions (no model retires more than one bundle per cycle).
//
// Per-block attributed cycle deltas are deliberately NOT compared: the
// profiler attributes stall cycles to the instruction that observes
// them, which may sit in a different block than the dependency that
// caused them, so per-block attribution is not a sound lower-bound
// witness.

// StaticBoundViolation is one failed invariant.
type StaticBoundViolation struct {
	// Func and Start/End locate the offending block (empty/zero for the
	// whole-run instruction invariant).
	Func     string `json:"func,omitempty"`
	Start    uint32 `json:"start,omitempty"`
	End      uint32 `json:"end,omitempty"`
	Bound    uint64 `json:"bound"`    // the static lower bound violated
	Measured uint64 `json:"measured"` // the measured value that undercut it
	Msg      string `json:"msg"`
}

// StaticBoundFunc is one row of the informational per-function table:
// how much statically-proved work the run's executed blocks of that
// function carry.
type StaticBoundFunc struct {
	Func           string `json:"func"`
	ExecutedBlocks int    `json:"executed_blocks"`
	MaxBound       uint64 `json:"max_bound"` // largest bound among executed blocks
	SumBounds      uint64 `json:"sum_bounds"`
}

// StaticBoundsReport is the outcome of CheckStaticBounds.
type StaticBoundsReport struct {
	TotalCycles       uint64                 `json:"total_cycles"`
	TotalInstructions uint64                 `json:"total_instructions"`
	CheckedBlocks     int                    `json:"checked_blocks"`  // blocks with a recovered bound
	ExecutedBlocks    int                    `json:"executed_blocks"` // of those, blocks the run entered
	Funcs             []StaticBoundFunc      `json:"funcs,omitempty"`
	Violations        []StaticBoundViolation `json:"violations,omitempty"`
}

// OK reports whether every invariant held.
func (r *StaticBoundsReport) OK() bool { return len(r.Violations) == 0 }

// CheckStaticBounds cross-checks a measured DOE run against the static
// per-block bounds of res (which must come from AnalyzeExecutable over
// the same executable). counts maps instruction addresses to execution
// counts — a block counts as executed when any address in [Start, End)
// executed at least once. totalInstr and totalCycles are the run's
// whole-program totals under the DOE model.
//
// The caller is responsible for ensuring the measured cycles ARE DOE
// cycles; bounds proved for DOE say nothing about other models.
func CheckStaticBounds(res *Result, counts map[uint32]uint64, totalInstr, totalCycles uint64) *StaticBoundsReport {
	rep := &StaticBoundsReport{
		TotalCycles:       totalCycles,
		TotalInstructions: totalInstr,
	}
	byFn := map[string]*StaticBoundFunc{}
	for _, blk := range res.Blocks {
		rep.CheckedBlocks++
		executed := false
		for _, in := range blk.Instrs {
			if counts[in.Addr] > 0 {
				executed = true
				break
			}
		}
		if !executed {
			continue
		}
		rep.ExecutedBlocks++
		name := ""
		if blk.Fn != nil {
			name = blk.Fn.Name
		}
		row := byFn[name]
		if row == nil {
			row = &StaticBoundFunc{Func: name}
			byFn[name] = row
		}
		row.ExecutedBlocks++
		row.SumBounds += blk.DOEBound
		if blk.DOEBound > row.MaxBound {
			row.MaxBound = blk.DOEBound
		}
		if totalCycles < blk.DOEBound {
			rep.Violations = append(rep.Violations, StaticBoundViolation{
				Func:     name,
				Start:    blk.Start,
				End:      blk.End,
				Bound:    blk.DOEBound,
				Measured: totalCycles,
				Msg: fmt.Sprintf("block %#x..%#x (%s): static DOE bound %d cycles exceeds the run's total of %d",
					blk.Start, blk.End, name, blk.DOEBound, totalCycles),
			})
		}
	}
	if totalCycles < totalInstr {
		rep.Violations = append(rep.Violations, StaticBoundViolation{
			Bound:    totalInstr,
			Measured: totalCycles,
			Msg: fmt.Sprintf("run retired %d instructions in %d measured cycles — below one cycle per instruction",
				totalInstr, totalCycles),
		})
	}
	for _, row := range byFn {
		rep.Funcs = append(rep.Funcs, *row)
	}
	sort.Slice(rep.Funcs, func(i, j int) bool { return rep.Funcs[i].Func < rep.Funcs[j].Func })
	sort.Slice(rep.Violations, func(i, j int) bool {
		a, b := &rep.Violations[i], &rep.Violations[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Msg < b.Msg
	})
	return rep
}
