package analysis

import (
	"repro/internal/isa"
	"repro/internal/sim"
)

// emitDOEBounds records each recovered basic block's static DOE cycle
// lower bound as a KB005 info diagnostic. The blocks themselves are
// built unconditionally by buildCFG (cfg.go).
func (b *binAnalyzer) emitDOEBounds() {
	for _, blk := range b.res.Blocks {
		nops := 0
		for _, in := range blk.Instrs {
			nops += len(in.Ops)
		}
		b.diag(CheckDOEBound, Info, blk.Start, blk.ISA,
			"basic block %#x..%#x: %d instruction(s), %d operation(s), static DOE lower bound %d cycle(s)",
			blk.Start, blk.End, len(blk.Instrs), nops, blk.DOEBound)
	}
}

// blockDOEBound replays the DOE issue rules (internal/cycle, Sec. VI-C
// of the paper) over one basic block from a fresh timing state: in-order
// issue per slot (one cycle after the slot's previous operation), start
// delayed to the write cycle of every true register dependency, and
// completion after the operation's latency. Memory operations are
// charged zero delay — their real delay depends on the configured
// memory hierarchy and the dynamic address stream — so the result is a
// lower bound on the cycles the DOE model attributes to one pass
// through the block under any memory configuration.
func (b *binAnalyzer) blockDOEBound(blk *Block) uint64 {
	zero := b.m.Regs.ZeroReg
	var regWrite [33]uint64
	var slotLast [sim.MaxIssue]uint64
	var maxDone uint64
	for _, in := range blk.Instrs {
		for i := range in.Ops {
			o := &in.Ops[i]
			start := slotLast[o.Slot] + 1
			dep := func(r int) {
				if w := regWrite[r]; w > start {
					start = w
				}
			}
			if o.Op.Src1Field != nil && int(o.Operands.Rs1) != zero {
				dep(int(o.Operands.Rs1))
			}
			if o.Op.Src2Field != nil && int(o.Operands.Rs2) != zero {
				dep(int(o.Operands.Rs2))
			}
			for _, r := range o.Op.ImplicitReads {
				if r != zero && r != isa.RegIP {
					dep(r)
				}
			}
			done := start
			if !o.Op.Class.IsMem() {
				done = start + uint64(o.Op.Latency)
			}
			if o.Op.DstField != nil && int(o.Operands.Rd) != zero {
				regWrite[o.Operands.Rd] = done
			}
			for _, r := range o.Op.ImplicitWrites {
				if r != zero && r != isa.RegIP {
					regWrite[r] = done
				}
			}
			slotLast[o.Slot] = start
			if done > maxDone {
				maxDone = done
			}
		}
	}
	return maxDone
}
