package analysis

import (
	"sort"

	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/sim"
)

// Block is one recovered basic block: a maximal fall-through chain of
// decoded instructions under a single ISA, entered only at its head.
type Block struct {
	Start, End uint32 // [Start, End) byte range
	ISA        *isa.ISA
	Instrs     []*decode.Instruction
	// DOEBound is the static lower bound, in cycles, that the DOE model
	// charges for one pass through the block (see blockDOEBound).
	DOEBound uint64
}

// emitDOEBounds groups the walked bundles into basic blocks, computes
// each block's static DOE cycle lower bound and records it as a KB005
// info diagnostic.
func (b *binAnalyzer) emitDOEBounds() {
	keys := make([]uint64, 0, len(b.bundles))
	for k := range b.bundles {
		keys = append(keys, k)
	}
	// Address order, then ISA id: fall-through neighbours of the same
	// ISA become adjacent, so block construction is a single scan.
	sort.Slice(keys, func(i, j int) bool {
		ai, aj := uint32(keys[i]), uint32(keys[j])
		if ai != aj {
			return ai < aj
		}
		return keys[i]>>32 < keys[j]>>32
	})

	var cur *Block
	flush := func() {
		if cur == nil {
			return
		}
		cur.DOEBound = b.blockDOEBound(cur)
		b.res.Blocks = append(b.res.Blocks, cur)
		nops := 0
		for _, in := range cur.Instrs {
			nops += len(in.Ops)
		}
		b.diag(CheckDOEBound, Info, cur.Start, cur.ISA,
			"basic block %#x..%#x: %d instruction(s), %d operation(s), static DOE lower bound %d cycle(s)",
			cur.Start, cur.End, len(cur.Instrs), nops, cur.DOEBound)
		cur = nil
	}
	for _, k := range keys {
		info := b.bundles[k]
		in := info.instr
		if cur == nil || in.ISA != cur.ISA || in.Addr != cur.End || b.leaders[k] {
			flush()
			cur = &Block{Start: in.Addr, End: in.Addr, ISA: in.ISA}
		}
		cur.Instrs = append(cur.Instrs, in)
		cur.End = in.Addr + in.Size
		if info.control || !info.hasFall {
			flush()
		}
	}
	flush()
}

// blockDOEBound replays the DOE issue rules (internal/cycle, Sec. VI-C
// of the paper) over one basic block from a fresh timing state: in-order
// issue per slot (one cycle after the slot's previous operation), start
// delayed to the write cycle of every true register dependency, and
// completion after the operation's latency. Memory operations are
// charged zero delay — their real delay depends on the configured
// memory hierarchy and the dynamic address stream — so the result is a
// lower bound on the cycles the DOE model attributes to one pass
// through the block under any memory configuration.
func (b *binAnalyzer) blockDOEBound(blk *Block) uint64 {
	zero := b.m.Regs.ZeroReg
	var regWrite [33]uint64
	var slotLast [sim.MaxIssue]uint64
	var maxDone uint64
	for _, in := range blk.Instrs {
		for i := range in.Ops {
			o := &in.Ops[i]
			start := slotLast[o.Slot] + 1
			dep := func(r int) {
				if w := regWrite[r]; w > start {
					start = w
				}
			}
			if o.Op.Src1Field != nil && int(o.Operands.Rs1) != zero {
				dep(int(o.Operands.Rs1))
			}
			if o.Op.Src2Field != nil && int(o.Operands.Rs2) != zero {
				dep(int(o.Operands.Rs2))
			}
			for _, r := range o.Op.ImplicitReads {
				if r != zero && r != isa.RegIP {
					dep(r)
				}
			}
			done := start
			if !o.Op.Class.IsMem() {
				done = start + uint64(o.Op.Latency)
			}
			if o.Op.DstField != nil && int(o.Operands.Rd) != zero {
				regWrite[o.Operands.Rd] = done
			}
			for _, r := range o.Op.ImplicitWrites {
				if r != zero && r != isa.RegIP {
					regWrite[r] = done
				}
			}
			slotLast[o.Slot] = start
			if done > maxDone {
				maxDone = done
			}
		}
	}
	return maxDone
}
