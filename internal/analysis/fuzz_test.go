package analysis_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/analysis"
	"repro/internal/kelf"
	"repro/internal/sim"
	"repro/internal/targetgen"
)

// FuzzCFGWalk feeds arbitrary text sections, entry points and function
// tables to the binary analyzer. The walk must be total: whatever the
// bytes decode to — undecodable words, branches into bundle interiors,
// SWITCHTARGETs naming unknown ISAs, function tables whose ranges
// overlap or fall outside the text — AnalyzeExecutable must terminate
// without panicking and produce a deterministic report (analyzing the
// same program twice yields byte-identical JSON). These are the
// guarantees klint and /v1/analyze rely on when handed hostile inputs.
func FuzzCFGWalk(f *testing.F) {
	model := targetgen.MustKahrisma()

	// Seeds: all-nops (decodes everywhere), an undecodable word, a
	// backward branch loop shape, and degenerate entry/function values.
	nops := bytes.Repeat([]byte{0x00, 0x00, 0x00, 0xFC}, 8)
	f.Add(nops, uint16(0), uint8(0), uint32(0), uint32(16), uint8(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, uint16(0), uint8(0), uint32(0), uint32(4), uint8(1))
	f.Add(nops, uint16(8), uint8(2), uint32(4), uint32(0xFFFFFFFF), uint8(7))
	f.Add([]byte{0x01, 0x00, 0x48, 0x04, 0x00, 0x00, 0x00, 0xFC}, uint16(4), uint8(1), uint32(0), uint32(8), uint8(2))

	f.Fuzz(func(t *testing.T, raw []byte, entryOff uint16, entrySel uint8, fnStart, fnEnd uint32, fnISA uint8) {
		if len(raw) == 0 || len(raw) > 4096 {
			return // empty programs are rejected before analysis; cap work per input
		}
		text := raw[:len(raw)&^3]
		if len(text) == 0 {
			text = raw[:1] // keep sub-word tails: the walk must survive truncated bundles
		}
		const base = 0x1000
		file := kelf.New(kelf.TypeExec)
		if err := file.AddSection(&kelf.Section{
			Name: kelf.SecText, Type: kelf.SecProgbits, Addr: base, Data: text,
		}); err != nil {
			t.Fatal(err)
		}

		p := &sim.Program{
			File:      file,
			Entry:     base + uint32(entryOff)%uint32(len(text)),
			EntryISA:  int(entrySel) % (len(model.ISAs) + 1), // one past the end: unknown entry ISA
			TextStart: base,
			TextEnd:   base + uint32(len(text)),
			Funcs:     &kelf.FuncTable{},
		}
		// A deliberately unsanitized function record: Start/End may be
		// unaligned, inverted, or point outside the text section, and
		// the ISA id may be unknown — linker bugs the analyzer must
		// report, not trip over.
		p.Funcs.Add(kelf.FuncInfo{Name: "f0", Start: fnStart, End: fnEnd, ISA: fnISA})
		p.Funcs.Sort()

		opts := analysis.Options{DOEBounds: true}
		res := analysis.AnalyzeExecutable(model, p, opts)
		if res == nil {
			t.Fatal("AnalyzeExecutable returned nil")
		}
		first, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatalf("report not serializable: %v", err)
		}
		second, err := json.Marshal(analysis.AnalyzeExecutable(model, p, opts).Report)
		if err != nil {
			t.Fatalf("report not serializable: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("analysis not deterministic:\n first: %s\nsecond: %s", first, second)
		}
	})
}
