package analysis

import (
	"sort"

	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/kelf"
)

// Block is one recovered basic block: a maximal fall-through chain of
// decoded instructions under a single ISA, entered only at its head.
type Block struct {
	Start, End uint32 // [Start, End) byte range
	ISA        *isa.ISA
	Instrs     []*decode.Instruction
	// DOEBound is the static lower bound, in cycles, that the DOE model
	// charges for one pass through the block (see blockDOEBound).
	DOEBound uint64

	// Fn is the enclosing function-table entry, when any.
	Fn *kelf.FuncInfo
	// Succs/Preds are the intra-function CFG edges (fall-through,
	// branch targets, non-linking jump targets). Edges that cross a
	// function boundary are dropped and recorded as Escapes on the
	// source and extEntry on the target.
	Succs, Preds []*Block
	// Calls are the linking jumps the block ends with; control resumes
	// at the fall-through successor.
	Calls []*CallSite
	// Returns marks blocks ending in a return, a halt, or another
	// target-less non-linking transfer: function exits.
	Returns bool
	// Escapes marks blocks with a control transfer (or fall-through)
	// that leaves the function — tail jumps, falls into a neighbour, or
	// transfers whose target the walk could not decode. Dataflow treats
	// them as maximally conservative exits.
	Escapes bool

	// extEntry marks blocks additionally entered from outside their
	// function (another function's jump, or no recovered predecessor),
	// so intra-function solvers widen their boundary state.
	extEntry bool

	last *bundleInfo // terminator bundle, for edge wiring
}

// CallSite is one static call: a linking jump recorded during the CFG
// walk. Known is false for register-indirect calls, whose callee the
// walk cannot resolve.
type CallSite struct {
	Op        *decode.Op
	Block     *Block
	Target    uint32 // callee entry address, valid when Known
	TargetISA *isa.ISA
	Known     bool
}

// funcCFG is the per-function control-flow graph the dataflow solvers
// run on: the function's blocks in address order plus its entry block.
type funcCFG struct {
	fn     *kelf.FuncInfo
	isa    *isa.ISA // declared ISA (nil when unknown)
	entry  *Block
	blocks []*Block
}

// buildCFG groups the walked bundles into basic blocks, computes each
// block's static DOE bound, wires intra-function successor/predecessor
// edges and groups the blocks by enclosing function. It always runs —
// KB005 emission and the dataflow checks both consume its output.
func (b *binAnalyzer) buildCFG() []*funcCFG {
	keys := make([]uint64, 0, len(b.bundles))
	for k := range b.bundles {
		keys = append(keys, k)
	}
	// Address order, then ISA id: fall-through neighbours of the same
	// ISA become adjacent, so block construction is a single scan.
	sort.Slice(keys, func(i, j int) bool {
		ai, aj := uint32(keys[i]), uint32(keys[j])
		if ai != aj {
			return ai < aj
		}
		return keys[i]>>32 < keys[j]>>32
	})

	byKey := make(map[uint64]*Block)
	var cur *Block
	flush := func() {
		if cur == nil {
			return
		}
		cur.DOEBound = b.blockDOEBound(cur)
		b.res.Blocks = append(b.res.Blocks, cur)
		cur = nil
	}
	for _, k := range keys {
		info := b.bundles[k]
		in := info.instr
		if cur == nil || in.ISA != cur.ISA || in.Addr != cur.End || b.leaders[k] {
			flush()
			cur = &Block{Start: in.Addr, End: in.Addr, ISA: in.ISA, Fn: b.p.FuncAt(in.Addr)}
			byKey[k] = cur
		}
		cur.Instrs = append(cur.Instrs, in)
		cur.End = in.Addr + in.Size
		cur.last = info
		if info.control || !info.hasFall {
			flush()
		}
	}
	flush()

	for _, blk := range b.res.Blocks {
		b.wireBlock(blk, byKey)
	}
	for _, blk := range b.res.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}

	// Group by function, preserving address order within and across
	// functions (blocks are already address-sorted).
	var funcs []*funcCFG
	byFn := make(map[*kelf.FuncInfo]*funcCFG)
	for _, blk := range b.res.Blocks {
		if blk.Fn == nil {
			continue
		}
		f := byFn[blk.Fn]
		if f == nil {
			f = &funcCFG{fn: blk.Fn, isa: b.m.ISAByID(int(blk.Fn.ISA))}
			byFn[blk.Fn] = f
			funcs = append(funcs, f)
		}
		f.blocks = append(f.blocks, blk)
		if blk.Start == blk.Fn.Start && (f.entry == nil || blk.ISA == f.isa) {
			f.entry = blk
		}
	}
	return funcs
}

// wireBlock records one block's successor edges from its terminator
// bundle. Cross-function edges are dropped: the source escapes, the
// target becomes an external entry.
func (b *binAnalyzer) wireBlock(blk *Block, byKey map[uint64]*Block) {
	li := blk.last
	if li == nil {
		return
	}
	addEdge := func(addr uint32, a *isa.ISA) {
		if a == nil {
			blk.Escapes = true
			return
		}
		dst := byKey[key(addr, a)]
		if dst == nil {
			// Target never became a block (its decode failed); be
			// conservative.
			blk.Escapes = true
			return
		}
		if dst.Fn != blk.Fn || blk.Fn == nil {
			blk.Escapes = true
			dst.extEntry = true
			return
		}
		blk.Succs = append(blk.Succs, dst)
	}
	for _, cs := range li.calls {
		cs.Block = blk
		blk.Calls = append(blk.Calls, cs)
	}
	for _, t := range li.targets {
		addEdge(t.addr, t.isa)
	}
	if li.hasFall {
		addEdge(blk.End, li.fallISA)
	} else if len(li.targets) == 0 {
		// Return, halt, or an indirect transfer with no recoverable
		// target: a function exit.
		blk.Returns = true
	}
}

// checkUnreachable reports KB008 for byte ranges inside a function that
// no walked bundle covers: code past an unconditional transfer that
// nothing branches back into. Whole functions stay silent — the walk
// seeds every function-table entry, so an uncalled function is still
// verified rather than flagged.
func (b *binAnalyzer) checkUnreachable() {
	covered := make(map[uint32]bool, len(b.owner))
	for _, info := range b.bundles {
		in := info.instr
		for w := in.Addr; w < in.Addr+in.Size; w += isa.OpWordBytes {
			covered[w] = true
		}
	}
	for i := range b.p.Funcs.Funcs {
		fi := &b.p.Funcs.Funcs[i]
		start, end := fi.Start, fi.End
		if start < b.p.TextStart {
			start = b.p.TextStart
		}
		if end > b.p.TextEnd {
			end = b.p.TextEnd
		}
		a := b.m.ISAByID(int(fi.ISA))
		var gap uint32
		inGap := false
		flushGap := func(upto uint32) {
			if !inGap {
				return
			}
			inGap = false
			b.diag(CheckUnreachableCode, Warning, gap, a,
				"unreachable code: %#x..%#x (%d byte(s)) in %s is never reached from the entry, the function table or any control path",
				gap, upto, upto-gap, fi.Name)
		}
		for w := start; w+isa.OpWordBytes <= end; w += isa.OpWordBytes {
			if covered[w] {
				flushGap(w)
			} else if !inGap {
				inGap, gap = true, w
			}
		}
		flushGap(end)
	}
}
