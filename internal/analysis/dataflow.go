package analysis

import (
	"math/bits"

	"repro/internal/decode"
	"repro/internal/isa"
)

// RegSet is a bitset over the architectural registers: bit i is
// register index i, bit 32 the instruction pointer.
type RegSet uint64

// allDataRegs covers every general-purpose register (indices 0..31,
// excluding the instruction pointer).
const allDataRegs RegSet = (1 << 32) - 1

// Has reports membership.
func (s RegSet) Has(r int) bool { return r >= 0 && r < 64 && s&(1<<uint(r)) != 0 }

// With returns s with register r added.
func (s RegSet) With(r int) RegSet {
	if r < 0 || r >= 64 {
		return s
	}
	return s | 1<<uint(r)
}

// Count returns the number of registers in the set.
func (s RegSet) Count() int { return bits.OnesCount64(uint64(s)) }

// convention is the software calling convention recovered from the
// model's register aliases (the builtin ADL names): caller-saved
// scratch registers t0..t11, argument registers a0..a3, the link and
// stack registers. Dataflow checks that depend on it (KB006, KB007,
// KB009) stay silent on models that don't declare the aliases — a
// custom register file carries no convention to check against.
type convention struct {
	ok    bool
	temps RegSet // caller-saved scratch (t0..t11)
	args  RegSet // argument registers (a0..a3)
	ra    int
	sp    int
	zero  int
}

// callDefs is the set a call conservatively defines in the caller: the
// link register plus everything the callee is free to clobber or
// return through.
func (c convention) callDefs() RegSet { return (c.temps | c.args).With(c.ra) }

func newConvention(rf *isa.RegisterFile) convention {
	c := convention{ra: -1, sp: -1, zero: rf.ZeroReg}
	lookup := func(name string) (int, bool) {
		r, ok := rf.Lookup(name)
		if !ok || r == rf.ZeroReg || r < 0 || r > 31 {
			return 0, false
		}
		return r, true
	}
	for _, name := range []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11"} {
		r, ok := lookup(name)
		if !ok {
			return c
		}
		c.temps = c.temps.With(r)
	}
	for _, name := range []string{"a0", "a1", "a2", "a3"} {
		r, ok := lookup(name)
		if !ok {
			return c
		}
		c.args = c.args.With(r)
	}
	var ok bool
	if c.ra, ok = lookup("ra"); !ok {
		return c
	}
	if c.sp, ok = lookup("sp"); !ok {
		return c
	}
	c.ok = true
	return c
}

// opReads returns the registers one operation reads: explicit source
// fields plus implicit reads, excluding the zero register and the
// instruction pointer.
func opReads(zero int, o *decode.Op) RegSet {
	var s RegSet
	if o.Op.Src1Field != nil && int(o.Operands.Rs1) != zero {
		s = s.With(int(o.Operands.Rs1))
	}
	if o.Op.Src2Field != nil && int(o.Operands.Rs2) != zero {
		s = s.With(int(o.Operands.Rs2))
	}
	for _, r := range o.Op.ImplicitReads {
		if r != zero && r != isa.RegIP {
			s = s.With(r)
		}
	}
	return s
}

// opWrites returns the registers one operation writes: the explicit
// destination field plus implicit writes, excluding the zero register
// and the instruction pointer.
func opWrites(zero int, o *decode.Op) RegSet {
	var s RegSet
	if o.Op.DstField != nil && int(o.Operands.Rd) != zero {
		s = s.With(int(o.Operands.Rd))
	}
	for _, r := range o.Op.ImplicitWrites {
		if r != zero && r != isa.RegIP {
			s = s.With(r)
		}
	}
	return s
}

// isCall reports whether an operation is a linking jump.
func isCall(zero int, o *decode.Op) bool {
	return o.Op.Class == isa.ClassJump && linksReturn(zero, o)
}

// problem is one monotone dataflow problem over register bitsets. The
// lattice is finite (2^33 states per block) and the transfers are
// monotone, so the worklist iteration below always reaches a fixpoint;
// maxDataflowIters is a defensive backstop for fuzzed inputs, not a
// correctness requirement.
type problem struct {
	backward bool
	mayUnion bool   // meet is union (may-analysis); else intersection (must)
	boundary RegSet // state entering at the function boundary
	external RegSet // state assumed at external entries (extEntry, no-pred blocks)
	transfer func(b *Block, in RegSet) RegSet
}

const maxDataflowIters = 1 << 16

// solve runs the problem over one function's CFG to fixpoint and
// returns the per-block input states (in execution direction: block
// entry for forward problems, block exit for backward ones).
func solve(f *funcCFG, p problem) map[*Block]RegSet {
	in := make(map[*Block]RegSet, len(f.blocks))
	out := make(map[*Block]RegSet, len(f.blocks))

	meet := func(a, b RegSet) RegSet {
		if p.mayUnion {
			return a | b
		}
		return a & b
	}
	meetID := func() RegSet {
		if p.mayUnion {
			return 0
		}
		return ^RegSet(0)
	}

	// outOf reads a block's computed out-state, defaulting to the meet
	// identity while unvisited — must-analyses start optimistic (the
	// greatest fixpoint), may-analyses start empty.
	outOf := func(b *Block) RegSet {
		if v, ok := out[b]; ok {
			return v
		}
		return meetID()
	}
	// inputOf meets the states feeding b, plus the boundary
	// contributions.
	inputOf := func(b *Block) RegSet {
		acc := meetID()
		atBoundary := false
		external := false
		if p.backward {
			for _, s := range b.Succs {
				acc = meet(acc, outOf(s))
			}
			if b.Returns {
				atBoundary = true
			}
			if b.Escapes || (len(b.Succs) == 0 && !b.Returns) {
				external = true
			}
		} else {
			for _, pr := range b.Preds {
				acc = meet(acc, outOf(pr))
			}
			if b == f.entry {
				atBoundary = true
			}
			if b.extEntry || (b != f.entry && len(b.Preds) == 0) {
				external = true
			}
		}
		if atBoundary {
			acc = meet(acc, p.boundary)
		}
		if external {
			acc = meet(acc, p.external)
		}
		return acc
	}

	queue := make([]*Block, len(f.blocks))
	copy(queue, f.blocks)
	if p.backward {
		for i, j := 0, len(queue)-1; i < j; i, j = i+1, j-1 {
			queue[i], queue[j] = queue[j], queue[i]
		}
	}
	queued := make(map[*Block]bool, len(queue))
	for _, b := range queue {
		queued[b] = true
	}
	for iter := 0; len(queue) > 0 && iter < maxDataflowIters; iter++ {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		iv := inputOf(b)
		ov := p.transfer(b, iv)
		in[b] = iv
		prev, seen := out[b]
		if seen && prev == ov {
			continue
		}
		out[b] = ov
		next := b.Succs
		if p.backward {
			next = b.Preds
		}
		for _, n := range next {
			if !queued[n] {
				queued[n] = true
				queue = append(queue, n)
			}
		}
	}
	return in
}
