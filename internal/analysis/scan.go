package analysis

import (
	"encoding/binary"
	"fmt"

	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/kelf"
	"repro/internal/sim"
)

// ScanText linearly decodes every instruction of the program's text
// section under the ISA the function table declares for its address
// (the entry ISA where the table is silent), reporting each word that
// matches no operation-table entry as a KB001 diagnostic. Unlike
// AnalyzeExecutable's reachability walk it covers every byte —
// including link-time dead code — and it keeps scanning past bad
// words, so a dumper can show all of them at once. It backs kdump's
// disassembly diagnostics; klint's deeper walk subsumes it for
// reachable code.
func ScanText(m *isa.Model, p *sim.Program) *Report {
	r := &Report{}
	text := p.File.Section(kelf.SecText)
	if text == nil {
		return r
	}
	fallback := m.ISAByID(p.EntryISA)
	pc := p.TextStart
	for pc < p.TextEnd {
		a := fallback
		var fn string
		// region records which decode table the scan assumed and why,
		// so multi-ISA texts attribute each KB001 to the table tried.
		region := "entry-ISA fallback"
		if fi := p.FuncAt(pc); fi != nil {
			fn = fi.Name
			if fa := m.ISAByID(int(fi.ISA)); fa != nil {
				a = fa
				region = fmt.Sprintf("function %s declares %s", fi.Name, fa.Name)
			} else {
				region = fmt.Sprintf("entry-ISA fallback (function %s declares unknown ISA id %d)", fi.Name, fi.ISA)
			}
		}
		if a == nil {
			r.add(Diagnostic{Check: CheckSwitch, Severity: Error, Addr: pc, HasAddr: true, Func: fn,
				Msg: "no known ISA covers this address (bad entry or function-table ISA id)"})
			return r
		}
		size := a.InstrBytes()
		if pc+size > p.TextEnd {
			r.add(Diagnostic{Check: CheckUndecodable, Severity: Warning, Addr: pc, HasAddr: true,
				ISA: a.Name, Func: fn,
				Msg: fmt.Sprintf("%d stray byte(s) at end of text: too short for a %s instruction",
					p.TextEnd-pc, a.Name)})
			return r
		}
		for slot := 0; slot < a.Issue; slot++ {
			opAddr := pc + uint32(slot)*isa.OpWordBytes
			w := binary.LittleEndian.Uint32(text.Data[opAddr-p.TextStart:])
			if op, _ := decode.Word(a, w); op == nil {
				r.add(Diagnostic{Check: CheckUndecodable, Severity: Error, Addr: opAddr, HasAddr: true,
					ISA: a.Name, Func: fn,
					Msg: fmt.Sprintf("illegal operation word %#08x (slot %d) under the %s table (%s)", w, slot, a.Name, region)})
			}
		}
		pc += size
	}
	return r
}
