package analysis

import (
	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/kelf"
)

// interproc carries the whole-program state the dataflow checks share:
// the per-function CFGs, the recovered calling convention and the
// fixpoint of each function's argument needs across the call graph.
type interproc struct {
	b     *binAnalyzer
	conv  convention
	funcs []*funcCFG
	byFn  map[*kelf.FuncInfo]*funcCFG

	// needs maps each function to the argument registers it (or any
	// callee it forwards them to) reads before writing — the
	// interprocedural liveness fixpoint over the call graph.
	needs map[*funcCFG]RegSet
	// needsDirect is the same without propagating through calls: the
	// argument registers the function's own body reads before writing.
	needsDirect map[*funcCFG]RegSet
}

func newInterproc(b *binAnalyzer, funcs []*funcCFG) *interproc {
	ip := &interproc{
		b:     b,
		conv:  newConvention(b.m.Regs),
		funcs: funcs,
		byFn:  make(map[*kelf.FuncInfo]*funcCFG, len(funcs)),
	}
	for _, f := range funcs {
		ip.byFn[f.fn] = f
	}
	if ip.conv.ok {
		ip.solveNeeds()
	}
	return ip
}

// callee resolves a call site to its target function's CFG (nil for
// indirect calls or calls outside the function table).
func (ip *interproc) callee(cs *CallSite) *funcCFG {
	if !cs.Known {
		return nil
	}
	fi := ip.b.p.FuncAt(cs.Target)
	if fi == nil || fi.Start != cs.Target {
		return nil
	}
	return ip.byFn[fi]
}

// liveIn computes the registers live at a function's entry under a
// given model of what each call site reads. Calls additionally define
// the convention's caller-saved set, so a register is live-in only if
// some path reads it before any write.
func (ip *interproc) liveIn(f *funcCFG, callUse func(cs *CallSite) RegSet, exitLive RegSet) RegSet {
	out := solve(f, problem{
		backward: true,
		mayUnion: true,
		boundary: exitLive,
		external: allDataRegs,
		transfer: func(b *Block, live RegSet) RegSet {
			return ip.blockLiveIn(b, live, callUse)
		},
	})
	if f.entry == nil {
		return 0
	}
	// solve returned per-block exit states; re-run the entry block's
	// transfer to get its live-in set.
	return ip.blockLiveIn(f.entry, out[f.entry], callUse)
}

// blockLiveIn applies the backward liveness transfer over one block:
// VLIW bundles read all sources before applying any write, so within a
// bundle the kill happens strictly after the gen.
func (ip *interproc) blockLiveIn(b *Block, live RegSet, callUse func(cs *CallSite) RegSet) RegSet {
	zero := ip.conv.zero
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := b.Instrs[i]
		var reads, writes RegSet
		for j := range in.Ops {
			o := &in.Ops[j]
			reads |= opReads(zero, o)
			writes |= opWrites(zero, o)
			if isCall(zero, o) {
				writes |= ip.conv.callDefs()
				if cs := ip.callSiteOf(b, o); cs != nil {
					reads |= callUse(cs)
				} else {
					reads |= ip.conv.args
				}
			}
		}
		live = (live &^ writes) | reads
	}
	return live
}

// callSiteOf finds the recorded call site for an operation.
func (ip *interproc) callSiteOf(b *Block, o *decode.Op) *CallSite {
	for _, cs := range b.Calls {
		if cs.Op == o {
			return cs
		}
	}
	return nil
}

// solveNeeds iterates the per-function argument needs to a fixpoint
// over the call graph. Needs only grow (liveness is monotone in the
// call-use sets), so the iteration terminates within
// len(funcs)*len(args) rounds.
func (ip *interproc) solveNeeds() {
	ip.needs = make(map[*funcCFG]RegSet, len(ip.funcs))
	ip.needsDirect = make(map[*funcCFG]RegSet, len(ip.funcs))
	for _, f := range ip.funcs {
		ip.needsDirect[f] = ip.liveIn(f, func(*CallSite) RegSet { return 0 }, 0) & ip.conv.args
		ip.needs[f] = ip.needsDirect[f]
	}
	use := func(cs *CallSite) RegSet {
		if g := ip.callee(cs); g != nil {
			return ip.needs[g]
		}
		return ip.conv.args
	}
	maxRounds := len(ip.funcs)*ip.conv.args.Count() + 2
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, f := range ip.funcs {
			n := ip.liveIn(f, use, 0) & ip.conv.args
			if n != ip.needs[f] {
				ip.needs[f] = n
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// checkUninit reports KB006: a caller-saved register read before any
// write on some path from the function entry. Everything callee-saved
// (s-regs, sp, fp, arguments) is assumed defined at entry — arguments
// legitimately arrive there — so only the temps, which no convention
// preserves across calls or entry, are flagged. One finding per
// (function, register).
func (ip *interproc) checkUninit() {
	zero := ip.conv.zero
	defsOf := func(in *decode.Instruction) RegSet {
		var w RegSet
		for j := range in.Ops {
			o := &in.Ops[j]
			w |= opWrites(zero, o)
			if isCall(zero, o) {
				w |= ip.conv.callDefs()
			}
		}
		return w
	}
	for _, f := range ip.funcs {
		in := solve(f, problem{
			boundary: allDataRegs &^ ip.conv.temps,
			external: allDataRegs,
			transfer: func(b *Block, s RegSet) RegSet {
				for _, instr := range b.Instrs {
					s |= defsOf(instr)
				}
				return s
			},
		})
		seen := RegSet(0)
		for _, b := range f.blocks {
			s := in[b]
			for _, instr := range b.Instrs {
				for j := range instr.Ops {
					o := &instr.Ops[j]
					reads := opReads(zero, o) & ip.conv.temps &^ s &^ seen
					for r := 0; r < 32; r++ {
						if !reads.Has(r) {
							continue
						}
						seen = seen.With(r)
						ip.b.diag(CheckUninit, Warning, o.Addr, b.ISA,
							"%s reads %s, which is not written on every path from the entry of %s — caller-saved registers are undefined at function entry",
							o.Op.Name, ip.b.m.Regs.RegName(r), f.fn.Name)
					}
				}
				s |= defsOf(instr)
			}
		}
	}
}

// checkDeadStore reports KB007: an explicit write to a caller-saved
// register whose value no path reads before it is overwritten or the
// function exits. Calls conservatively read every register (the callee
// is opaque here), and everything callee-saved is live at exit, so a
// finding means the store can be deleted under any caller.
func (ip *interproc) checkDeadStore() {
	zero := ip.conv.zero
	allUse := func(*CallSite) RegSet { return allDataRegs }
	for _, f := range ip.funcs {
		out := solve(f, problem{
			backward: true,
			mayUnion: true,
			boundary: allDataRegs &^ ip.conv.temps,
			external: allDataRegs,
			transfer: func(b *Block, live RegSet) RegSet {
				return ip.blockLiveIn(b, live, allUse)
			},
		})
		for _, b := range f.blocks {
			live := out[b]
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				instr := b.Instrs[i]
				var reads, writes RegSet
				hasCall := false
				for j := range instr.Ops {
					o := &instr.Ops[j]
					reads |= opReads(zero, o)
					writes |= opWrites(zero, o)
					if isCall(zero, o) {
						hasCall = true
						reads |= allDataRegs
						writes |= ip.conv.callDefs()
					}
				}
				if !hasCall {
					for j := range instr.Ops {
						o := &instr.Ops[j]
						if o.Op.DstField == nil || o.Op.Class.IsControl() || o.Op.Class == isa.ClassSys {
							continue
						}
						r := int(o.Operands.Rd)
						if r == zero || !ip.conv.temps.Has(r) || live.Has(r) {
							continue
						}
						ip.b.diag(CheckDeadStore, Warning, o.Addr, b.ISA,
							"dead store: %s writes %s but no path reads it before it is overwritten or %s exits",
							o.Op.Name, ip.b.m.Regs.RegName(r), f.fn.Name)
					}
				}
				live = (live &^ writes) | reads
			}
		}
	}
}

// checkCallConv reports KB009: a cross-ISA call site (caller and callee
// declare different ISAs, bridged by a SWITCHTARGET pair) where the
// callee reads an argument register the caller provably never writes on
// any path to the call — and which isn't one of the caller's own
// incoming arguments being forwarded untouched.
func (ip *interproc) checkCallConv() {
	zero := ip.conv.zero
	for _, f := range ip.funcs {
		hasCross := false
		for _, b := range f.blocks {
			for _, cs := range b.Calls {
				if g := ip.callee(cs); g != nil && g.fn.ISA != f.fn.ISA {
					hasCross = true
				}
			}
		}
		if !hasCross {
			continue
		}
		// Maybe-assigned: registers some path from the entry writes.
		maybe := solve(f, problem{
			mayUnion: true,
			boundary: 0,
			external: allDataRegs,
			transfer: func(b *Block, s RegSet) RegSet {
				for _, instr := range b.Instrs {
					for j := range instr.Ops {
						o := &instr.Ops[j]
						s |= opWrites(zero, o)
						if isCall(zero, o) {
							s |= ip.conv.callDefs()
						}
					}
				}
				return s
			},
		})
		for _, b := range f.blocks {
			s := maybe[b]
			for i, instr := range b.Instrs {
				if i == len(b.Instrs)-1 {
					// Calls terminate blocks, so only the last bundle
					// can hold call sites; s is the maybe-set before it.
					for _, cs := range b.Calls {
						g := ip.callee(cs)
						if g == nil || g.fn.ISA == f.fn.ISA {
							continue
						}
						missing := ip.needs[g] &^ s &^ ip.needsDirect[f]
						for r := 0; r < 32; r++ {
							if !missing.Has(r) {
								continue
							}
							ip.b.diag(CheckCallConv, Warning, cs.Op.Addr, b.ISA,
								"cross-ISA call to %s (%s): callee reads argument register %s, which %s (%s) never writes on any path to this call",
								g.fn.Name, g.isaName(), ip.b.m.Regs.RegName(r), f.fn.Name, f.isaName())
						}
					}
				}
				for j := range instr.Ops {
					o := &instr.Ops[j]
					s |= opWrites(zero, o)
					if isCall(zero, o) {
						s |= ip.conv.callDefs()
					}
				}
			}
		}
	}
}

func (f *funcCFG) isaName() string {
	if f.isa != nil {
		return f.isa.Name
	}
	return "?"
}

// ---------------------------------------------------------------------
// KB010 — constant propagation over address-forming registers.

// cval is one register's abstract value in the constant lattice.
type cval struct {
	kind uint8 // cBot (unreached), cConst, cTop
	v    uint32
}

const (
	cBot uint8 = iota
	cConst
	cTop
)

func cc(v uint32) cval { return cval{kind: cConst, v: v} }

var top = cval{kind: cTop}

func cmeet(a, b cval) cval {
	switch {
	case a.kind == cBot:
		return b
	case b.kind == cBot:
		return a
	case a.kind == cConst && b.kind == cConst && a.v == b.v:
		return a
	}
	return top
}

// cstate is the abstract register file (indices 0..31; the zero
// register is pinned to 0 at read time, the instruction pointer is not
// tracked).
type cstate [32]cval

func (s *cstate) meet(o *cstate) (changed bool) {
	for i := range s {
		m := cmeet(s[i], o[i])
		if m != s[i] {
			s[i] = m
			changed = true
		}
	}
	return changed
}

var allTop = func() cstate {
	var s cstate
	for i := range s {
		s[i] = top
	}
	return s
}()

// checkBadAccess reports KB010: a load or store whose address the
// constant lattice pins to a value outside the guest address space
// ([TextStart, StackTop)), or a store whose pinned address lands inside
// the text section. Unlike the convention checks this needs no register
// aliases, only the zero register.
func (ip *interproc) checkBadAccess() {
	zero := ip.b.m.Regs.ZeroReg
	p := ip.b.p
	for _, f := range ip.funcs {
		in := ip.solveConsts(f, zero)
		for _, b := range f.blocks {
			s := in[b]
			for _, instr := range b.Instrs {
				for j := range instr.Ops {
					o := &instr.Ops[j]
					if !o.Op.Class.IsMem() || o.Op.Src1Field == nil || o.Op.ImmField == nil {
						continue
					}
					base := readVal(&s, zero, int(o.Operands.Rs1))
					if base.kind != cConst {
						continue
					}
					addr := base.v + uint32(o.Operands.Imm)
					width := accessWidth(o.Op.SemKey)
					store := o.Op.Class == isa.ClassStore
					switch {
					case addr < p.TextStart || addr > p.StackTop-width:
						ip.b.diag(CheckBadAccess, Error, o.Addr, b.ISA,
							"%s accesses %#x (%d byte(s)), statically outside the guest address space [%#x,%#x)",
							o.Op.Name, addr, width, p.TextStart, p.StackTop)
					case store && addr < p.TextEnd:
						ip.b.diag(CheckBadAccess, Error, o.Addr, b.ISA,
							"%s overwrites the text section at %#x — self-modifying guests are not supported",
							o.Op.Name, addr)
					}
				}
				ip.applyConsts(&s, []*decode.Instruction{instr}, zero)
			}
		}
	}
}

// solveConsts runs constant propagation over one function to fixpoint:
// entry and external blocks start all-Top (nothing about caller state
// is assumed), transfers mirror internal/sim/sem.go exactly for the
// pure ALU operations and smash everything else to Top.
func (ip *interproc) solveConsts(f *funcCFG, zero int) map[*Block]cstate {
	in := make(map[*Block]cstate, len(f.blocks))
	out := make(map[*Block]cstate, len(f.blocks))
	for _, b := range f.blocks {
		in[b] = cstate{} // all-bot until reached
	}
	queue := append([]*Block(nil), f.blocks...)
	queued := make(map[*Block]bool, len(queue))
	for _, b := range queue {
		queued[b] = true
	}
	for iter := 0; len(queue) > 0 && iter < maxDataflowIters; iter++ {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		var iv cstate
		if b == f.entry || b.extEntry || len(b.Preds) == 0 {
			iv = allTop
		}
		for _, pr := range b.Preds {
			pv := out[pr]
			iv.meet(&pv)
		}
		in[b] = iv
		ov := iv
		ip.applyConsts(&ov, b.Instrs, zero)
		prev, seen := out[b]
		if seen && prev == ov {
			continue
		}
		out[b] = ov
		for _, n := range b.Succs {
			if !queued[n] {
				queued[n] = true
				queue = append(queue, n)
			}
		}
	}
	return in
}

// applyConsts advances the abstract state across a bundle list with the
// interpreter's parallel semantics: all operand reads against the old
// state, all write-backs after.
func (ip *interproc) applyConsts(s *cstate, instrs []*decode.Instruction, zero int) {
	for _, instr := range instrs {
		old := *s
		for j := range instr.Ops {
			o := &instr.Ops[j]
			v := evalOp(&old, zero, o)
			if o.Op.DstField != nil && int(o.Operands.Rd) != zero {
				s[o.Operands.Rd&31] = v
			}
			for _, r := range o.Op.ImplicitWrites {
				if r != zero && r != isa.RegIP && r < 32 {
					s[r] = top
				}
			}
		}
	}
}

func readVal(s *cstate, zero, r int) cval {
	if r == zero {
		return cc(0)
	}
	if r < 0 || r >= 32 {
		return top
	}
	return s[r]
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// evalOp mirrors the pure ALU entries of internal/sim/sem.go over the
// constant lattice; anything with memory, control or unmodeled
// semantics evaluates to Top.
func evalOp(s *cstate, zero int, o *decode.Op) cval {
	imm := uint32(o.Operands.Imm)
	r1 := readVal(s, zero, int(o.Operands.Rs1))
	r2 := readVal(s, zero, int(o.Operands.Rs2))
	if o.Op.SemKey == "lui" {
		return cc(imm << 16)
	}
	if o.Op.Src1Field == nil || r1.kind != cConst {
		return top
	}
	a := r1.v
	switch o.Op.SemKey {
	case "addi":
		return cc(a + imm)
	case "andi":
		return cc(a & imm)
	case "ori":
		return cc(a | imm)
	case "xori":
		return cc(a ^ imm)
	case "slti":
		return cc(b2u32(int32(a) < o.Operands.Imm))
	case "sltiu":
		return cc(b2u32(a < imm))
	case "slli":
		return cc(a << (imm & 31))
	case "srli":
		return cc(a >> (imm & 31))
	case "srai":
		return cc(uint32(int32(a) >> (imm & 31)))
	}
	if r2.kind != cConst {
		return top
	}
	b := r2.v
	switch o.Op.SemKey {
	case "add":
		return cc(a + b)
	case "sub":
		return cc(a - b)
	case "mul":
		return cc(a * b)
	case "and":
		return cc(a & b)
	case "or":
		return cc(a | b)
	case "xor":
		return cc(a ^ b)
	case "sll":
		return cc(a << (b & 31))
	case "srl":
		return cc(a >> (b & 31))
	case "sra":
		return cc(uint32(int32(a) >> (b & 31)))
	case "slt":
		return cc(b2u32(int32(a) < int32(b)))
	case "sltu":
		return cc(b2u32(a < b))
	}
	return top
}

// accessWidth maps a memory operation's semantics key to its access
// width in bytes.
func accessWidth(sem string) uint32 {
	switch sem {
	case "lb", "lbu", "sb":
		return 1
	case "lh", "lhu", "sh":
		return 2
	}
	return 4
}
