package mem

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a hierarchy from a compact textual description,
// outermost module first, modules separated by '|':
//
//	limit:1|cache:2K,4,32,3|cache:256K,4,32,6|mem:18
//
// module forms:
//
//	limit:PORTS[,claim]     connection limit; "claim" makes completions
//	                        reserve the port too (strict Sec. VI-D)
//	cache:SIZE,ASSOC,LINE,DELAY   sizes accept a K suffix
//	mem:DELAY               fixed-delay main memory (must be last)
//
// The first two caches become Hierarchy.L1/L2; the first limit becomes
// Hierarchy.Lim.
func ParseSpec(spec string) (*Hierarchy, error) {
	parts := strings.Split(spec, "|")
	if len(parts) == 0 {
		return nil, fmt.Errorf("mem: empty hierarchy spec")
	}
	h := &Hierarchy{}

	// Build from the innermost module outwards.
	var cur Module
	for i := len(parts) - 1; i >= 0; i-- {
		p := strings.TrimSpace(parts[i])
		kind, args, _ := strings.Cut(p, ":")
		fields := strings.Split(args, ",")
		switch kind {
		case "mem":
			if cur != nil {
				return nil, fmt.Errorf("mem: %q must be the last module", p)
			}
			d, err := parseUint(fields[0])
			if err != nil {
				return nil, fmt.Errorf("mem: %q: %v", p, err)
			}
			m := NewMainMemory(d)
			h.Main = m
			cur = m
		case "cache":
			if len(fields) != 4 {
				return nil, fmt.Errorf("mem: %q: want cache:SIZE,ASSOC,LINE,DELAY", p)
			}
			if cur == nil {
				return nil, fmt.Errorf("mem: %q has no inner module", p)
			}
			size, err1 := parseSize(fields[0])
			assoc, err2 := parseUint(fields[1])
			line, err3 := parseSize(fields[2])
			delay, err4 := parseUint(fields[3])
			for _, err := range []error{err1, err2, err3, err4} {
				if err != nil {
					return nil, fmt.Errorf("mem: %q: %v", p, err)
				}
			}
			label := fmt.Sprintf("L%d", countCaches(parts[i+1:])+1)
			c, err := NewCache(label, uint32(size), uint32(line), int(assoc), delay, cur)
			if err != nil {
				return nil, fmt.Errorf("mem: %q: %v", p, err)
			}
			if h.L2 == nil && h.L1 != nil {
				h.L2 = h.L1
			}
			h.L1 = c
			cur = c
		case "limit":
			if len(fields) < 1 || len(fields) > 2 {
				return nil, fmt.Errorf("mem: %q: want limit:PORTS[,claim]", p)
			}
			if cur == nil {
				return nil, fmt.Errorf("mem: %q has no inner module", p)
			}
			ports, err := parseUint(fields[0])
			if err != nil {
				return nil, fmt.Errorf("mem: %q: %v", p, err)
			}
			l, err := NewConnLimit(int(ports), cur)
			if err != nil {
				return nil, fmt.Errorf("mem: %q: %v", p, err)
			}
			l.ClaimCompletion = len(fields) == 2 && strings.TrimSpace(fields[1]) == "claim"
			if h.Lim == nil {
				h.Lim = l
			}
			cur = l
		default:
			return nil, fmt.Errorf("mem: unknown module kind %q", kind)
		}
	}
	if h.Main == nil {
		return nil, fmt.Errorf("mem: hierarchy needs a mem:DELAY module")
	}
	// The loop assigns L1 to the OUTERMOST cache already (it overwrites
	// inner ones as it moves outwards) and pushed the previous one to L2.
	h.Top = cur
	return h, nil
}

func countCaches(inner []string) int {
	n := 0
	for _, p := range inner {
		if strings.HasPrefix(strings.TrimSpace(p), "cache:") {
			n++
		}
	}
	return n
}

func parseUint(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func parseSize(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult = 1024
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult = 1024 * 1024
		s = s[:len(s)-1]
	}
	v, err := parseUint(s)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// Spec renders the hierarchy in ParseSpec syntax (best effort, for
// reports).
func (h *Hierarchy) Spec() string {
	var parts []string
	var walk func(m Module)
	walk = func(m Module) {
		switch x := m.(type) {
		case *ConnLimit:
			p := fmt.Sprintf("limit:%d", x.Ports)
			if x.ClaimCompletion {
				p += ",claim"
			}
			parts = append(parts, p)
			walk(x.Sub)
		case *Cache:
			parts = append(parts, fmt.Sprintf("cache:%d,%d,%d,%d",
				x.SizeBytes, x.Assoc, x.LineSize, x.Delay))
			walk(x.Sub)
		case *MainMemory:
			parts = append(parts, fmt.Sprintf("mem:%d", x.Delay))
		}
	}
	walk(h.Top)
	return strings.Join(parts, "|")
}
