package mem_test

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestParseSpecPaperHierarchy(t *testing.T) {
	h, err := mem.ParseSpec("limit:1|cache:2K,4,32,3|cache:256K,4,32,6|mem:18")
	if err != nil {
		t.Fatal(err)
	}
	if h.L1 == nil || h.L1.SizeBytes != 2048 || h.L1.Delay != 3 {
		t.Fatalf("L1 = %+v", h.L1)
	}
	if h.L2 == nil || h.L2.SizeBytes != 256*1024 || h.L2.Delay != 6 {
		t.Fatalf("L2 = %+v", h.L2)
	}
	if h.Main == nil || h.Main.Delay != 18 {
		t.Fatalf("main = %+v", h.Main)
	}
	if h.Lim == nil || h.Lim.Ports != 1 || h.Lim.ClaimCompletion {
		t.Fatalf("limit = %+v", h.Lim)
	}
	// Behaves identically to the canonical constructor.
	ref := mem.Paper()
	for _, addr := range []uint32{0, 0x40, 0x1000, 0x40, 0x20000, 0} {
		a := h.Access(addr, false, 0, 0)
		b := ref.Access(addr, false, 0, 0)
		if a != b {
			t.Fatalf("addr %#x: spec %d vs canonical %d", addr, a, b)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"mem:7",
		"cache:1K,2,16,1|mem:9",
		"limit:2,claim|cache:4K,4,64,2|mem:20",
		"limit:1|cache:2048,4,32,3|cache:262144,4,32,6|mem:18",
	} {
		h, err := mem.ParseSpec(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		h2, err := mem.ParseSpec(h.Spec())
		if err != nil {
			t.Fatalf("re-parse %q: %v", h.Spec(), err)
		}
		if h2.Spec() != h.Spec() {
			t.Fatalf("spec not a fixed point: %q vs %q", h.Spec(), h2.Spec())
		}
	}
}

func TestParseSpecClaimCompletion(t *testing.T) {
	h, err := mem.ParseSpec("limit:1,claim|mem:5")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Lim.ClaimCompletion {
		t.Fatal("claim flag lost")
	}
	// Two same-cycle accesses: starts 0 and 1, completions 5 and 6;
	// with claims on completion a third start at 5 must slip past both
	// reserved completion slots to 7, completing at 12.
	h.Access(0, false, 0, 0)
	h.Access(4, false, 0, 0)
	if got := h.Access(8, false, 0, 5); got != 12 {
		t.Fatalf("third access completion = %d, want 12", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ spec, sub string }{
		{"", "unknown module"},
		{"mem:zz", "bad number"},
		{"cache:2K,4,32,3", "no inner module"},
		{"limit:1", "no inner module"},
		{"cache:2K,4,32|mem:1", "want cache"},
		{"limit:|mem:1", "bad number"},
		{"mem:1|mem:2", "must be the last"},
		{"warp:9|mem:1", "unknown module kind"},
		{"cache:2K,0,32,3|mem:1", "associativity"},
		{"limit:0|mem:1", "port"},
	}
	for _, tc := range cases {
		_, err := mem.ParseSpec(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("%q: err = %v, want %q", tc.spec, err, tc.sub)
		}
	}
}
