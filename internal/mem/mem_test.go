package mem_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestMainMemoryDelay(t *testing.T) {
	m := mem.NewMainMemory(18)
	if got := m.Access(0x100, false, 0, 10); got != 28 {
		t.Fatalf("completion = %d, want 28", got)
	}
	if m.Accesses != 1 {
		t.Fatalf("accesses = %d", m.Accesses)
	}
	m.Reset()
	if m.Accesses != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestCacheHitMiss(t *testing.T) {
	main := mem.NewMainMemory(18)
	c := mem.MustCache("L1", 2048, 32, 4, 3, main)
	// Cold miss: 3 (probe) + 18 (fetch) + 3 (fill) = 24.
	if got := c.Access(0x100, false, 0, 0); got != 24 {
		t.Fatalf("miss completion = %d, want 24", got)
	}
	if c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("stats = %d hits %d misses", c.Hits, c.Misses)
	}
	// Hit well after the fill: start+3.
	if got := c.Access(0x104, false, 0, 100); got != 103 {
		t.Fatalf("hit completion = %d, want 103", got)
	}
	// Out-of-order call: a hit whose start predates the line fill
	// completes no earlier than the fill cycle (paper: the write cycle
	// stored within each cache line).
	if got := c.Access(0x108, false, 0, 0); got != 24 {
		t.Fatalf("early hit completion = %d, want fill cycle 24", got)
	}
	if !c.Contains(0x11F) || c.Contains(0x120) {
		t.Fatal("Contains line-boundary check failed")
	}
}

func TestCacheWriteBack(t *testing.T) {
	main := mem.NewMainMemory(10)
	// Direct-mapped, 2 sets of 1 way, 32B lines, 64B cache.
	c := mem.MustCache("L1", 64, 32, 1, 1, main)
	c.Access(0x000, true, 0, 0) // dirty line in set 0
	if c.Writebacks != 0 {
		t.Fatal("unexpected writeback")
	}
	// Same set, different tag: evicts the dirty victim.
	// probe(1) + fetch(10) + writeback(10) + fill(1) = 22.
	if got := c.Access(0x100, false, 0, 0); got != 22 {
		t.Fatalf("eviction completion = %d, want 22", got)
	}
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Writebacks)
	}
	// Clean eviction has no writeback: probe+fetch+fill = 12.
	if got := c.Access(0x200, false, 0, 100); got != 112 {
		t.Fatalf("clean eviction completion = %d, want 112", got)
	}
	if c.Writebacks != 1 {
		t.Fatalf("writebacks after clean eviction = %d", c.Writebacks)
	}
}

func TestCacheLRU(t *testing.T) {
	main := mem.NewMainMemory(0)
	// One set, 2 ways.
	c := mem.MustCache("L1", 64, 32, 2, 0, main)
	c.Access(0x000, false, 0, 0) // A
	c.Access(0x040, false, 0, 0) // B (same set: 1 set, tag differs)
	c.Access(0x000, false, 0, 0) // touch A -> B is LRU
	c.Access(0x080, false, 0, 0) // C evicts B
	if !c.Contains(0x000) || c.Contains(0x040) || !c.Contains(0x080) {
		t.Fatalf("LRU eviction wrong: A=%v B=%v C=%v",
			c.Contains(0x000), c.Contains(0x040), c.Contains(0x080))
	}
}

func TestCacheMissRateWorkingSet(t *testing.T) {
	// Working set larger than the cache thrashes; smaller one hits.
	h := mem.Paper()
	for pass := 0; pass < 4; pass++ {
		for a := uint32(0); a < 1024; a += 4 {
			h.Access(a, false, 0, uint64(pass*1000)+uint64(a))
		}
	}
	if r := h.L1.MissRate(); r > 0.05 {
		t.Errorf("small working set L1 miss rate = %f", r)
	}
	h.Reset()
	for pass := 0; pass < 4; pass++ {
		for a := uint32(0); a < 64*1024; a += 32 {
			h.Access(a, false, 0, uint64(a))
		}
	}
	if r := h.L1.MissRate(); r < 0.9 {
		t.Errorf("thrashing working set L1 miss rate = %f, want ~1", r)
	}
}

func TestConnLimitSerializesPorts(t *testing.T) {
	main := mem.NewMainMemory(5)
	l := mem.MustConnLimit(1, main)
	// Three accesses wanting to start at cycle 10: starts 10, 11, 12;
	// completions 15, 16, 17 each claim a distinct completion slot.
	got := []uint64{
		l.Access(0, false, 0, 10),
		l.Access(4, false, 1, 10),
		l.Access(8, false, 2, 10),
	}
	want := []uint64{15, 16, 17}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("access %d completion = %d, want %d", i, got[i], want[i])
		}
	}
	// Only the two start cycles had to move; the completions landed on
	// distinct cycles already.
	if l.Delayed != 2 {
		t.Errorf("delayed = %d, want 2", l.Delayed)
	}
}

func TestConnLimitMultiPort(t *testing.T) {
	main := mem.NewMainMemory(5)
	l := mem.MustConnLimit(2, main)
	a := l.Access(0, false, 0, 10)
	b := l.Access(4, false, 1, 10)
	c := l.Access(8, false, 2, 10)
	if a != 15 || b != 15 || c != 16 {
		t.Fatalf("completions = %d,%d,%d want 15,15,16", a, b, c)
	}
}

func TestConfigValidation(t *testing.T) {
	main := mem.NewMainMemory(1)
	if _, err := mem.NewCache("x", 2048, 33, 4, 1, main); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := mem.NewCache("x", 2048, 32, 0, 1, main); err == nil {
		t.Error("zero associativity accepted")
	}
	if _, err := mem.NewCache("x", 100, 32, 4, 1, main); err == nil {
		t.Error("indivisible size accepted")
	}
	if _, err := mem.NewCache("x", 2048, 32, 4, 1, nil); err == nil {
		t.Error("nil submodule accepted")
	}
	if _, err := mem.NewConnLimit(0, main); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := mem.NewConnLimit(1, nil); err == nil {
		t.Error("nil submodule accepted")
	}
}

// Property: completion cycle is always >= start cycle (monotonicity),
// for the full paper hierarchy under random access streams.
func TestCompletionMonotonicQuick(t *testing.T) {
	h := mem.Paper()
	var lastStart uint64
	f := func(addr uint32, write bool, startDelta uint16) bool {
		lastStart += uint64(startDelta % 64)
		done := h.Access(addr%0x10000, write, int(addr%8), lastStart)
		return done >= lastStart
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: a cache never reports more hits+misses than accesses made,
// and a repeated access to the same line (with no interfering set
// pressure) is always a hit.
func TestRepeatedAccessHitsQuick(t *testing.T) {
	f := func(addr uint32) bool {
		main := mem.NewMainMemory(18)
		c := mem.MustCache("L1", 2048, 32, 4, 3, main)
		c.Access(addr, false, 0, 0)
		before := c.Hits
		c.Access(addr, false, 0, 1000)
		return c.Hits == before+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperHierarchyShape(t *testing.T) {
	h := mem.Paper()
	if h.L1.SizeBytes != 2048 || h.L1.Assoc != 4 || h.L1.Delay != 3 {
		t.Errorf("L1 = %s", h.L1.Name())
	}
	if h.L2.SizeBytes != 256*1024 || h.L2.Delay != 6 {
		t.Errorf("L2 = %s", h.L2.Name())
	}
	if h.Main.Delay != 18 {
		t.Errorf("main delay = %d", h.Main.Delay)
	}
	if h.Lim.Ports != 1 {
		t.Errorf("ports = %d", h.Lim.Ports)
	}
	// Cold L1 miss, L2 miss: 3 + (6 + 18 + 6) + 3 = 36.
	if got := h.Access(0x5000, false, 0, 0); got != 36 {
		t.Errorf("cold access completion = %d, want 36", got)
	}
}

func TestFlatHierarchy(t *testing.T) {
	h := mem.Flat(3)
	if got := h.Access(0, false, 0, 7); got != 10 {
		t.Fatalf("flat completion = %d, want 10", got)
	}
}
