// Package mem implements the memory-delay approximation of the
// simulator (Sec. VI-D of the paper): a memory hierarchy composed of
// three module types — caches, connection limits, and main memory —
// sharing one interface that computes the completion cycle of a memory
// access. Cache and connection-limit modules hold a pointer to the
// submodule that follows them in the hierarchy and forward misses.
//
// The delay functions may be called out of program-issue order (the DOE
// model issues memory operations in program order while the hardware
// executes them in issue order); the cache therefore stores, per cache
// line, the cycle the line was written, and a hit completes no earlier
// than that cycle.
package mem

import "fmt"

// Module is the common interface of all memory hierarchy modules: it
// calculates the completion cycle of a memory access. The memory
// address, access type (read or write), issue slot, and start cycle are
// the paper's input parameters.
type Module interface {
	// Access returns the completion cycle of the access.
	Access(addr uint32, write bool, slot int, start uint64) uint64
	// Reset clears all state (cache contents, port reservations).
	Reset()
	// Name identifies the module in reports.
	Name() string
}

// ---------------------------------------------------------------------
// Main memory

// MainMemory is the simplest module: a configurable fixed access delay.
type MainMemory struct {
	Delay    uint64
	Accesses uint64
}

// NewMainMemory returns a main-memory module with the given delay.
func NewMainMemory(delay uint64) *MainMemory { return &MainMemory{Delay: delay} }

// Access adds the fixed delay to the start cycle.
func (m *MainMemory) Access(addr uint32, write bool, slot int, start uint64) uint64 {
	m.Accesses++
	return start + m.Delay
}

// Reset clears the access counter.
func (m *MainMemory) Reset() { m.Accesses = 0 }

// Name implements Module.
func (m *MainMemory) Name() string { return fmt.Sprintf("mem(%d)", m.Delay) }

// ---------------------------------------------------------------------
// Cache

// Cache emulates an n-way set-associative cache with write-back write
// policy and least-recently-used replacement. Line size, associativity,
// cache size and access delay are configurable (Sec. VI-D).
type Cache struct {
	Label     string
	LineSize  uint32 // bytes, power of two
	Assoc     int
	SizeBytes uint32
	Delay     uint64
	Sub       Module // next module in the hierarchy

	sets     uint32
	lineBits uint32
	ways     []way // sets*assoc

	tick uint64 // LRU clock

	Hits, Misses, Writebacks uint64
}

type way struct {
	valid      bool
	dirty      bool
	tag        uint32
	writeCycle uint64 // cycle the line was (re)filled — for out-of-order calls
	lastUse    uint64
}

// NewCache builds a cache module. sizeBytes must be divisible by
// lineSize*assoc and lineSize must be a power of two.
func NewCache(label string, sizeBytes, lineSize uint32, assoc int, delay uint64, sub Module) (*Cache, error) {
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("mem: line size %d not a power of two", lineSize)
	}
	if assoc < 1 {
		return nil, fmt.Errorf("mem: associativity %d < 1", assoc)
	}
	if sizeBytes == 0 || sizeBytes%(lineSize*uint32(assoc)) != 0 {
		return nil, fmt.Errorf("mem: size %d not divisible by line*assoc=%d", sizeBytes, lineSize*uint32(assoc))
	}
	if sub == nil {
		return nil, fmt.Errorf("mem: cache %s needs a submodule", label)
	}
	c := &Cache{
		Label: label, LineSize: lineSize, Assoc: assoc, SizeBytes: sizeBytes,
		Delay: delay, Sub: sub,
	}
	c.sets = sizeBytes / (lineSize * uint32(assoc))
	for b := lineSize; b > 1; b >>= 1 {
		c.lineBits++
	}
	c.ways = make([]way, c.sets*uint32(assoc))
	return c, nil
}

// MustCache is NewCache panicking on bad configuration (for literals in
// tests and tools).
func MustCache(label string, sizeBytes, lineSize uint32, assoc int, delay uint64, sub Module) *Cache {
	c, err := NewCache(label, sizeBytes, lineSize, assoc, delay, sub)
	if err != nil {
		panic(err)
	}
	return c
}

// Access implements the paper's cache delay calculation:
//
//	current = start + delay
//	hit  -> return max(current, line write cycle)
//	miss -> forward (fetch) to the submodule, optionally write back the
//	        victim, add the cache delay again for the line fill, record
//	        the fill cycle in the line, return current.
func (c *Cache) Access(addr uint32, write bool, slot int, start uint64) uint64 {
	c.tick++
	cur := start + c.Delay
	tag := addr >> c.lineBits
	set := tag % c.sets
	base := set * uint32(c.Assoc)
	ws := c.ways[base : base+uint32(c.Assoc)]

	// Hit?
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			c.Hits++
			ws[i].lastUse = c.tick
			if write {
				ws[i].dirty = true
			}
			if ws[i].writeCycle > cur {
				cur = ws[i].writeCycle
			}
			return cur
		}
	}

	// Miss: choose LRU victim.
	c.Misses++
	victim := 0
	for i := 1; i < len(ws); i++ {
		if !ws[i].valid {
			victim = i
			break
		}
		if ws[i].lastUse < ws[victim].lastUse {
			victim = i
		}
	}
	// Fetch the missing line from the submodule.
	cur = c.Sub.Access(addr, false, slot, cur)
	// Write back the victim if required (second subaccess).
	if ws[victim].valid && ws[victim].dirty {
		c.Writebacks++
		victimAddr := ws[victim].tag << c.lineBits
		cur = c.Sub.Access(victimAddr, true, slot, cur)
	}
	// Store the fetched data inside the cache.
	cur += c.Delay
	ws[victim] = way{valid: true, dirty: write, tag: tag, writeCycle: cur, lastUse: c.tick}
	return cur
}

// Contains reports whether addr currently hits (without touching LRU or
// statistics) — used by tests and the RTL model's warm-up checks.
func (c *Cache) Contains(addr uint32) bool {
	tag := addr >> c.lineBits
	set := tag % c.sets
	base := set * uint32(c.Assoc)
	for i := 0; i < c.Assoc; i++ {
		if w := c.ways[base+uint32(i)]; w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// MissRate returns misses/(hits+misses), or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Reset clears contents and statistics (and the submodule).
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.tick = 0
	c.Hits, c.Misses, c.Writebacks = 0, 0, 0
	c.Sub.Reset()
}

// Name implements Module.
func (c *Cache) Name() string {
	return fmt.Sprintf("cache:%s(%dB,%d-way,%dB-line,%dcyc)", c.Label, c.SizeBytes, c.Assoc, c.LineSize, c.Delay)
}

// ---------------------------------------------------------------------
// Connection limit

// connWindow bounds the port-reservation bookkeeping. Reservations are
// tracked per cycle in a ring indexed by cycle number; entries whose
// stored cycle tag does not match are stale and treated as free. The
// window is large enough that, with the in-program-order calls the
// simulator performs, collisions cannot occur in practice.
const connWindow = 1 << 20

// ConnLimit models the resource constraint of a cache or memory port:
// only Ports accesses may start (and complete) in the same cycle. It is
// typically placed in front of a cache or memory module (Sec. VI-D).
//
// ClaimCompletion controls whether the completion cycle returned from
// the submodule also reserves a port ("The same mechanism is applied to
// the completion cycle", Sec. VI-D). The paper's evaluation describes
// the module in front of the L1 as limiting "the L1 memory access to
// one access per cycle", which only the start-side claim enforces;
// both behaviours are available and the ablation benchmarks compare
// them.
type ConnLimit struct {
	Ports           int
	ClaimCompletion bool
	Sub             Module

	cycleTag []uint64
	count    []uint16

	Delayed uint64 // accesses that had to move to a later start cycle
}

// NewConnLimit builds a connection-limit module with the given number
// of access ports in front of sub.
func NewConnLimit(ports int, sub Module) (*ConnLimit, error) {
	if ports < 1 {
		return nil, fmt.Errorf("mem: connection limit needs >= 1 port, got %d", ports)
	}
	if sub == nil {
		return nil, fmt.Errorf("mem: connection limit needs a submodule")
	}
	return &ConnLimit{
		Ports:           ports,
		ClaimCompletion: true,
		Sub:             sub,
		cycleTag:        make([]uint64, connWindow),
		count:           make([]uint16, connWindow),
	}, nil
}

// MustConnLimit is NewConnLimit panicking on bad configuration.
func MustConnLimit(ports int, sub Module) *ConnLimit {
	c, err := NewConnLimit(ports, sub)
	if err != nil {
		panic(err)
	}
	return c
}

// claim reserves a port at the first cycle >= c with a free port and
// returns that cycle.
func (l *ConnLimit) claim(c uint64) uint64 {
	for {
		i := c % connWindow
		if l.cycleTag[i] != c {
			l.cycleTag[i] = c
			l.count[i] = 1
			return c
		}
		if int(l.count[i]) < l.Ports {
			l.count[i]++
			return c
		}
		c++
	}
}

// Access checks (and reserves) a port for the start cycle, forwards to
// the submodule, then applies the same mechanism to the completion
// cycle returned from the submodule.
func (l *ConnLimit) Access(addr uint32, write bool, slot int, start uint64) uint64 {
	s := l.claim(start)
	if s != start {
		l.Delayed++
	}
	done := l.Sub.Access(addr, write, slot, s)
	if !l.ClaimCompletion {
		return done
	}
	d := l.claim(done)
	if d != done {
		l.Delayed++
	}
	return d
}

// Reset clears reservations and statistics (and the submodule).
func (l *ConnLimit) Reset() {
	for i := range l.cycleTag {
		l.cycleTag[i] = 0
		l.count[i] = 0
	}
	l.Delayed = 0
	l.Sub.Reset()
}

// Name implements Module.
func (l *ConnLimit) Name() string { return fmt.Sprintf("limit(%d)", l.Ports) }

// ---------------------------------------------------------------------
// Standard hierarchies

// Hierarchy bundles the top module with handles to the interesting
// levels for statistics.
type Hierarchy struct {
	Top  Module
	L1   *Cache
	L2   *Cache
	Main *MainMemory
	Lim  *ConnLimit
}

// Access forwards to the top module.
func (h *Hierarchy) Access(addr uint32, write bool, slot int, start uint64) uint64 {
	return h.Top.Access(addr, write, slot, start)
}

// Reset resets the whole hierarchy.
func (h *Hierarchy) Reset() { h.Top.Reset() }

// Name implements Module.
func (h *Hierarchy) Name() string { return h.Top.Name() }

// Paper returns the memory hierarchy of the paper's evaluation
// (Sec. VII): L1 2 KiB 4-way 3 cycles behind a one-port connection
// limit, L2 256 KiB 4-way 6 cycles, main memory 18 cycles. The paper
// does not state the line size; 32 bytes is used.
//
// The evaluation describes the limit module as restricting "the L1
// memory access to one access per cycle", so the port here claims the
// start cycle only (ClaimCompletion=false). The stricter Sec. VI-D
// behaviour — completions also reserve the port — remains the module
// default and is compared in the ablation benchmarks.
func Paper() *Hierarchy {
	main := NewMainMemory(18)
	l2 := MustCache("L2", 256*1024, 32, 4, 6, main)
	l1 := MustCache("L1", 2*1024, 32, 4, 3, l2)
	lim := MustConnLimit(1, l1)
	lim.ClaimCompletion = false
	return &Hierarchy{Top: lim, L1: l1, L2: l2, Main: main, Lim: lim}
}

// Flat returns a hierarchy with a single fixed-delay memory (the ILP
// model's ideal memory uses a plain 3-cycle delay instead).
func Flat(delay uint64) *Hierarchy {
	m := NewMainMemory(delay)
	return &Hierarchy{Top: m, Main: m}
}
