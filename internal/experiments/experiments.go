// Package experiments regenerates every table and figure of the
// paper's evaluation (Sec. VII):
//
//   - Table I  — simulator component costs and the MIPS progression of
//     the decode cache and instruction prediction, measured on the JPEG
//     encoder compiled for the RISC instance;
//   - Figure 4 — theoretical ILP versus measured operations/cycle of
//     the RISC and 2/4/6/8-issue VLIW instances for all applications;
//   - Table II — accuracy of the heuristic DOE model against the
//     cycle-accurate RTL reference on the DCT workload, plus the
//     speedup of the approximation over the reference.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cycle"
	"repro/internal/driver"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/simpool"
	"repro/internal/targetgen"
	"repro/internal/workloads"
)

// VLIWNames are the processor instances of the evaluation.
var VLIWNames = []string{"RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8"}

func model() (*isa.Model, error) { return targetgen.Kahrisma() }

// buildWorkload compiles a workload for one ISA (cached per call site;
// compilation is cheap next to simulation).
func buildWorkload(m *isa.Model, w *workloads.Workload, isaName string) (*sim.Program, error) {
	return driver.Load(m, isaName, w.Sources...)
}

func newCPU(m *isa.Model, p *sim.Program, opts sim.Options) (*sim.CPU, error) {
	if opts.MaxInstructions == 0 {
		opts.MaxInstructions = 2_000_000_000
	}
	opts.Stdout = io.Discard
	return sim.New(m, p, opts)
}

// runToCompletion runs and reports wall-clock time.
func runToCompletion(c *sim.CPU) (sim.ExitStatus, time.Duration, error) {
	start := time.Now()
	st, err := c.Run()
	return st, time.Since(start), err
}

// ---------------------------------------------------------------------
// Table I

// Table1 reproduces the simulator-performance measurement: MIPS with
// and without decode cache / instruction prediction, hit statistics,
// per-component execution times, and the cycle-model costs.
type Table1 struct {
	Instructions uint64

	MIPSNoCache float64 // detection+decode on every instruction
	MIPSCache   float64 // decode cache enabled
	MIPSPred    float64 // decode cache + instruction prediction (stepwise)
	MIPSSB      float64 // + superblock decode traces (docs/interp.md)

	MIPSILP float64 // functional + ILP measurement
	MIPSAIE float64 // functional + AIE + memory approximation
	MIPSDOE float64 // functional + DOE + memory approximation

	DecodeAvoidedPct float64 // detections avoided by the decode cache
	LookupAvoidedPct float64 // hash lookups avoided by prediction

	// Per-instruction component costs in nanoseconds (Table I rows).
	ExecuteNs      float64
	CacheAccessNs  float64
	DetectDecodeNs float64
	ILPNs          float64
	AIENs          float64
	DOENs          float64
	MemoryModelNs  float64

	MemOpsPct float64 // share of instructions accessing memory
}

// memRecorder captures the dynamic memory-access stream so the memory
// model's cost can be measured in isolation (the paper times the memory
// model separately from the DOE/AIE bookkeeping).
type memRecorder struct {
	addrs  []uint32
	writes []bool
	slots  []uint8
}

func (r *memRecorder) Instruction(rec *sim.ExecRecord) {
	for i := range rec.D.Ops {
		if m := rec.Mem[i]; m.Valid {
			r.addrs = append(r.addrs, m.Addr)
			r.writes = append(r.writes, m.Write)
			r.slots = append(r.slots, rec.D.Ops[i].Slot)
		}
	}
}

// RunTable1 measures the simulator on the JPEG encoder compiled for the
// KAHRISMA RISC processor instance (the paper's setup).
func RunTable1() (*Table1, error) {
	m, err := model()
	if err != nil {
		return nil, err
	}
	cjpeg := workloads.CJpeg()
	prog, err := buildWorkload(m, cjpeg, "RISC")
	if err != nil {
		return nil, err
	}

	t := &Table1{}
	timeRun := func(opts sim.Options, attach func(c *sim.CPU)) (float64, *sim.CPU, error) {
		c, err := newCPU(m, prog, opts)
		if err != nil {
			return 0, nil, err
		}
		if attach != nil {
			attach(c)
		}
		st, wall, err := runToCompletion(c)
		if err != nil {
			return 0, nil, err
		}
		t.Instructions = st.Instructions
		return float64(st.Instructions) / wall.Seconds() / 1e6, c, nil
	}

	if t.MIPSNoCache, _, err = timeRun(sim.Options{}, nil); err != nil {
		return nil, err
	}
	if t.MIPSCache, _, err = timeRun(sim.Options{DecodeCache: true}, nil); err != nil {
		return nil, err
	}
	// The paper's Table I measures the stepwise interpreter; the
	// component-cost math below depends on this run, so superblocks
	// stay off here and get their own row.
	var predCPU *sim.CPU
	if t.MIPSPred, predCPU, err = timeRun(sim.Options{DecodeCache: true, Prediction: true}, nil); err != nil {
		return nil, err
	}
	if t.MIPSSB, _, err = timeRun(sim.DefaultOptions(), nil); err != nil {
		return nil, err
	}
	s := predCPU.Stats
	t.DecodeAvoidedPct = 100 * (1 - float64(s.Detected)/float64(s.Instructions))
	t.LookupAvoidedPct = 100 * (1 - float64(s.CacheLookups)/float64(s.Instructions))

	if t.MIPSILP, _, err = timeRun(sim.DefaultOptions(), func(c *sim.CPU) {
		c.Attach(cycle.NewILP(m))
	}); err != nil {
		return nil, err
	}
	if t.MIPSAIE, _, err = timeRun(sim.DefaultOptions(), func(c *sim.CPU) {
		c.Attach(cycle.NewAIE(mem.Paper()))
	}); err != nil {
		return nil, err
	}
	if t.MIPSDOE, _, err = timeRun(sim.DefaultOptions(), func(c *sim.CPU) {
		c.Attach(cycle.NewDOE(m, mem.Paper()))
	}); err != nil {
		return nil, err
	}

	// Component costs per instruction, by differential timing (the
	// paper solves a linear system over the same measurements):
	//   execute       = cost with cache+prediction (the steady state is
	//                   a predicted decode pointer plus execution),
	//   cache access  = cache-only minus prediction run,
	//   detect&decode = no-cache minus prediction run,
	//   models        = model run minus prediction run.
	nsPer := func(mips float64) float64 { return 1e3 / mips }
	t.ExecuteNs = nsPer(t.MIPSPred)
	t.CacheAccessNs = nsPer(t.MIPSCache) - nsPer(t.MIPSPred)
	t.DetectDecodeNs = nsPer(t.MIPSNoCache) - nsPer(t.MIPSPred)
	t.ILPNs = nsPer(t.MIPSILP) - nsPer(t.MIPSPred)
	t.AIENs = nsPer(t.MIPSAIE) - nsPer(t.MIPSPred)
	t.DOENs = nsPer(t.MIPSDOE) - nsPer(t.MIPSPred)

	// Memory model in isolation: replay the recorded access stream.
	rec := &memRecorder{}
	c, err := newCPU(m, prog, sim.DefaultOptions())
	if err != nil {
		return nil, err
	}
	c.Attach(rec)
	st, _, err := runToCompletion(c)
	if err != nil {
		return nil, err
	}
	h := mem.Paper()
	start := time.Now()
	cur := uint64(0)
	for i := range rec.addrs {
		done := h.Access(rec.addrs[i], rec.writes[i], int(rec.slots[i]), cur)
		cur = done - 2 // keep pressure on the port limit, as in-model calls do
	}
	replay := time.Since(start)
	t.MemoryModelNs = float64(replay.Nanoseconds()) / float64(st.Instructions)
	t.MemOpsPct = 100 * float64(len(rec.addrs)) / float64(st.Instructions)
	return t, nil
}

// Render formats the result like the paper's Table I plus the MIPS
// progression from Sec. VII-A.
func (t *Table1) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I: simulator performance (cjpeg on RISC, %d instructions)\n", t.Instructions)
	fmt.Fprintf(&sb, "  %-28s %12s\n", "Simulator Component", "ns/instr")
	fmt.Fprintf(&sb, "  %-28s %12.1f\n", "Execute (1 operation)", t.ExecuteNs)
	fmt.Fprintf(&sb, "  %-28s %12.1f\n", "Cache Access", t.CacheAccessNs)
	fmt.Fprintf(&sb, "  %-28s %12.1f\n", "Detect & Decode", t.DetectDecodeNs)
	fmt.Fprintf(&sb, "  %-28s %12.1f\n", "ILP", t.ILPNs)
	fmt.Fprintf(&sb, "  %-28s %12.1f\n", "AIE (including memory)", t.AIENs)
	fmt.Fprintf(&sb, "  %-28s %12.1f\n", "DOE (including memory)", t.DOENs)
	fmt.Fprintf(&sb, "  %-28s %12.1f\n", "Memory Model", t.MemoryModelNs)
	fmt.Fprintf(&sb, "MIPS: no cache %.3f -> decode cache %.1f -> +prediction %.1f -> +superblocks %.1f\n",
		t.MIPSNoCache, t.MIPSCache, t.MIPSPred, t.MIPSSB)
	fmt.Fprintf(&sb, "MIPS with cycle models: ILP %.1f, AIE %.1f, DOE %.1f\n",
		t.MIPSILP, t.MIPSAIE, t.MIPSDOE)
	fmt.Fprintf(&sb, "decode cache avoided %.3f%% of detect&decode; prediction avoided %.1f%% of lookups\n",
		t.DecodeAvoidedPct, t.LookupAvoidedPct)
	fmt.Fprintf(&sb, "%.1f%% of instructions access memory\n", t.MemOpsPct)
	return sb.String()
}

// ---------------------------------------------------------------------
// Figure 4

// Figure4App is one application's series: the theoretical ILP upper
// bound and the measured operations/cycle per processor instance.
type Figure4App struct {
	Name    string
	ILP     float64            // theoretical upper bound (RISC input, Sec. VI-A)
	OPC     map[string]float64 // DOE-measured ops/cycle per ISA
	L1Miss  map[string]float64 // L1 miss ratio per ISA
	HighILP bool
}

// RunFigure4 measures every workload on every instance, running the
// whole sweep concurrently on GOMAXPROCS workers. Each (app, instance)
// cell is an independent simulation with its own CPU, DOE model and
// memory hierarchy, so the results are bit-identical to a serial sweep.
func RunFigure4(apps []*workloads.Workload) ([]*Figure4App, error) {
	return RunFigure4Workers(apps, 0)
}

// RunFigure4Workers is RunFigure4 with an explicit worker count
// (<= 0 selects GOMAXPROCS, 1 reproduces the serial sweep).
func RunFigure4Workers(apps []*workloads.Workload, workers int) ([]*Figure4App, error) {
	m, err := model()
	if err != nil {
		return nil, err
	}

	// Compilation stays on the caller (the compiler shares tuning
	// globals); the pool runs the simulations. Programs are built once
	// per cell and shared read-only with the worker that simulates them.
	pool := simpool.New(workers)
	defer pool.Close()

	simOpts := func() sim.Options {
		opts := sim.DefaultOptions()
		opts.MaxInstructions = 2_000_000_000
		opts.Stdout = io.Discard
		return opts
	}

	// One cell per (app × instance) plus one theoretical-ILP cell per
	// app; observers are created here and attached on the worker — each
	// is private to its job. The cells become one batch submission, so
	// the pool dispatches them in chunked runs and recycles CPU state.
	type cell struct {
		app     *Figure4App
		isaName string // "" marks the ILP cell
		ilp     *cycle.ILP
		doe     *cycle.DOE
		hier    *mem.Hierarchy
	}
	var cells []*cell
	var jobs []simpool.Job
	var out []*Figure4App
	for _, w := range apps {
		app := &Figure4App{
			Name: w.Name, HighILP: w.HighILP,
			OPC:    map[string]float64{},
			L1Miss: map[string]float64{},
		}
		out = append(out, app)
		// Theoretical ILP: simulate the RISC ISA as input (Sec. VI-A).
		riscProg, err := buildWorkload(m, w, "RISC")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		ilpCell := &cell{app: app, ilp: cycle.NewILP(m)}
		jobs = append(jobs, simpool.Job{
			Model: m, Prog: riscProg, Opts: simOpts(),
			Label:   w.Name + "/ILP",
			Recycle: true,
			Attach:  func(c *sim.CPU) error { c.Attach(ilpCell.ilp); return nil },
		})
		cells = append(cells, ilpCell)

		for _, isaName := range VLIWNames {
			prog, err := buildWorkload(m, w, isaName)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", w.Name, isaName, err)
			}
			h := mem.Paper()
			doeCell := &cell{app: app, isaName: isaName, doe: cycle.NewDOE(m, h), hier: h}
			jobs = append(jobs, simpool.Job{
				Model: m, Prog: prog, Opts: simOpts(),
				Label:   w.Name + "/" + isaName,
				Recycle: true,
				Attach:  func(c *sim.CPU) error { c.Attach(doeCell.doe); return nil },
			})
			cells = append(cells, doeCell)
		}
	}

	batch := pool.SubmitBatch(context.Background(), jobs)
	for i, res := range batch.Results() {
		if res.Err != nil {
			return nil, res.Err
		}
		cl := cells[i]
		if cl.isaName == "" {
			cl.app.ILP = cycle.OPC(cl.ilp)
			continue
		}
		cl.app.OPC[cl.isaName] = cycle.OPC(cl.doe)
		cl.app.L1Miss[cl.isaName] = cl.hier.L1.MissRate()
	}
	return out, nil
}

// RenderFigure4 prints the series as a text table (the figure's data).
func RenderFigure4(apps []*Figure4App) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: theoretical ILP vs measured operations/cycle (DOE model)\n")
	fmt.Fprintf(&sb, "  %-8s %8s", "app", "ILP")
	for _, n := range VLIWNames {
		fmt.Fprintf(&sb, " %8s", n)
	}
	fmt.Fprintf(&sb, " %10s\n", "L1miss@8")
	for _, a := range apps {
		fmt.Fprintf(&sb, "  %-8s %8.2f", a.Name, a.ILP)
		for _, n := range VLIWNames {
			fmt.Fprintf(&sb, " %8.2f", a.OPC[n])
		}
		fmt.Fprintf(&sb, " %9.1f%%\n", 100*a.L1Miss["VLIW8"])
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Table II

// Table2Row compares the heuristic DOE approximation against the
// cycle-accurate RTL reference for one configuration.
type Table2Row struct {
	Config   string
	Hardware uint64 // RTL reference cycles
	Approx   uint64 // DOE model cycles
	ErrPct   float64
}

// Table2 is the full accuracy result.
type Table2 struct {
	Rows []Table2Row
	// Speedup is the wall-clock ratio RTL-run / DOE-run of this
	// implementation (the paper reports ~100000x against an 8 ms/instr
	// VHDL simulation; both of our models are Go code, so the honest
	// ratio here is much smaller — see EXPERIMENTS.md).
	Speedup float64
}

// Table2Configs are the instances of the paper's Table II.
var Table2Configs = []string{"RISC", "VLIW2", "VLIW4", "VLIW8"}

// RunTable2 compares DOE and RTL on the DCT workload with perfect
// branch prediction on both sides (both consume the functional
// interpreter's resolved instruction stream).
func RunTable2() (*Table2, error) {
	m, err := model()
	if err != nil {
		return nil, err
	}
	dct := workloads.DCT()
	out := &Table2{}
	var doeWall, rtlWall time.Duration
	for _, cfg := range Table2Configs {
		prog, err := buildWorkload(m, dct, cfg)
		if err != nil {
			return nil, err
		}
		// DOE run.
		doe := cycle.NewDOE(m, mem.Paper())
		c, err := newCPU(m, prog, sim.DefaultOptions())
		if err != nil {
			return nil, err
		}
		c.Attach(doe)
		if _, wall, err := runToCompletion(c); err != nil {
			return nil, err
		} else {
			doeWall += wall
		}
		// RTL run.
		pipe := rtl.New(m, rtl.DefaultConfig())
		c2, err := newCPU(m, prog, sim.DefaultOptions())
		if err != nil {
			return nil, err
		}
		c2.Attach(pipe)
		if _, wall, err := runToCompletion(c2); err != nil {
			return nil, err
		} else {
			rtlWall += wall
		}
		pipe.Drain()

		hw, ap := pipe.Cycles(), doe.Cycles()
		errPct := 100 * abs(float64(ap)-float64(hw)) / float64(hw)
		out.Rows = append(out.Rows, Table2Row{Config: cfg, Hardware: hw, Approx: ap, ErrPct: errPct})
	}
	out.Speedup = rtlWall.Seconds() / doeWall.Seconds()
	return out, nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Render formats the result like the paper's Table II.
func (t *Table2) Render() string {
	var sb strings.Builder
	sb.WriteString("Table II: simulator accuracy of Dynamic Operation Execution (DCT)\n")
	fmt.Fprintf(&sb, "  %-10s %12s %14s %8s\n", "Config", "Hardware", "Approximation", "Error")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "  %-10s %12d %14d %7.1f%%\n", r.Config, r.Hardware, r.Approx, r.ErrPct)
	}
	fmt.Fprintf(&sb, "RTL reference / DOE wall-clock ratio: %.1fx\n", t.Speedup)
	return sb.String()
}

// MaxError returns the largest row error.
func (t *Table2) MaxError() float64 {
	max := 0.0
	for _, r := range t.Rows {
		if r.ErrPct > max {
			max = r.ErrPct
		}
	}
	return max
}
