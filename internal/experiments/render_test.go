package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// Golden-shape checks for the report renderers (the kbench output).
func TestRenderFigure4Layout(t *testing.T) {
	apps := []*experiments.Figure4App{
		{
			Name: "demo", ILP: 4.5,
			OPC:    map[string]float64{"RISC": 0.8, "VLIW2": 1.2, "VLIW4": 1.5, "VLIW6": 1.6, "VLIW8": 1.6},
			L1Miss: map[string]float64{"VLIW8": 0.14},
		},
	}
	out := experiments.RenderFigure4(apps)
	for _, want := range []string{"Figure 4", "demo", "4.50", "0.80", "14.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable2Layout(t *testing.T) {
	res := &experiments.Table2{
		Rows: []experiments.Table2Row{
			{Config: "RISC", Hardware: 21768, Approx: 22062, ErrPct: 1.4},
			{Config: "VLIW8", Hardware: 7774, Approx: 7992, ErrPct: 2.8},
		},
		Speedup: 3.5,
	}
	out := res.Render()
	for _, want := range []string{"Table II", "RISC", "21768", "22062", "1.4%", "3.5x"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if res.MaxError() != 2.8 {
		t.Errorf("MaxError = %f", res.MaxError())
	}
}

func TestRenderTable1Layout(t *testing.T) {
	res := &experiments.Table1{
		Instructions: 123, MIPSNoCache: 0.2, MIPSCache: 16, MIPSPred: 30,
		MIPSILP: 18, MIPSAIE: 19, MIPSDOE: 15,
		DecodeAvoidedPct: 99.99, LookupAvoidedPct: 99.2,
		ExecuteNs: 33.2, CacheAccessNs: 26, DetectDecodeNs: 5602,
		ILPNs: 21.5, AIENs: 19.7, DOENs: 32.3, MemoryModelNs: 9.5,
		MemOpsPct: 24.6,
	}
	out := res.Render()
	for _, want := range []string{
		"Table I", "Detect & Decode", "5602.0", "Memory Model",
		"99.990%", "99.2%", "24.6% of instructions access memory",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
