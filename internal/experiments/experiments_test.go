package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func TestTable2ShapeMatchesPaper(t *testing.T) {
	res, err := experiments.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper: max error 2.8%. Our substituted RTL is not the authors'
	// VHDL, so allow headroom, but the approximation must stay within a
	// few percent for the reproduction to hold.
	if res.MaxError() > 8.0 {
		t.Errorf("max DOE-vs-RTL error %.1f%%, want <= 8%%", res.MaxError())
	}
	// Wider instances need fewer cycles (the paper's rows decrease
	// monotonically from RISC 21768 to VLIW8 7774).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Hardware >= res.Rows[i-1].Hardware {
			t.Errorf("hardware cycles not decreasing: %s=%d then %s=%d",
				res.Rows[i-1].Config, res.Rows[i-1].Hardware,
				res.Rows[i].Config, res.Rows[i].Hardware)
		}
	}
	if !strings.Contains(res.Render(), "Table II") {
		t.Error("render header missing")
	}
}

func TestFigure4ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 4 sweep is slow")
	}
	apps, err := experiments.RunFigure4(workloads.All())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", experiments.RenderFigure4(apps))
	byName := map[string]*experiments.Figure4App{}
	for _, a := range apps {
		byName[a.Name] = a
	}
	// DCT and AES offer high ILP; FFT, jpeg and quicksort low (paper).
	for _, hi := range []string{"dct", "aes"} {
		for _, lo := range []string{"fft", "qsort", "cjpeg", "djpeg"} {
			if byName[hi].ILP <= byName[lo].ILP {
				t.Errorf("ILP(%s)=%.2f should exceed ILP(%s)=%.2f",
					hi, byName[hi].ILP, lo, byName[lo].ILP)
			}
		}
	}
	for _, a := range apps {
		// Wider instances never hurt operations/cycle...
		if a.OPC["VLIW8"] < a.OPC["RISC"]*0.9 {
			t.Errorf("%s: OPC degrades with width: RISC %.2f vs VLIW8 %.2f",
				a.Name, a.OPC["RISC"], a.OPC["VLIW8"])
		}
		// ...and the theoretical ILP bounds the measured values (small
		// tolerance: the bound uses ideal 3-cycle memory).
		if a.OPC["VLIW8"] > a.ILP*1.15 {
			t.Errorf("%s: measured OPC %.2f exceeds theoretical ILP %.2f",
				a.Name, a.OPC["VLIW8"], a.ILP)
		}
	}
	// AES's working set exceeds the 2 KiB L1 (paper: ~14% misses).
	if miss := byName["aes"].L1Miss["VLIW8"]; miss < 0.04 {
		t.Errorf("aes L1 miss ratio = %.1f%%, expected substantial misses", miss*100)
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("Table 1 timing run is slow")
	}
	res, err := experiments.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	// Shape assertions (absolute numbers are host-dependent):
	if res.MIPSCache < 2*res.MIPSNoCache {
		t.Errorf("decode cache should speed up simulation substantially: %.2f -> %.2f MIPS",
			res.MIPSNoCache, res.MIPSCache)
	}
	if res.MIPSPred < res.MIPSCache {
		t.Errorf("prediction made things slower: %.1f -> %.1f MIPS", res.MIPSCache, res.MIPSPred)
	}
	if res.DecodeAvoidedPct < 99.9 {
		t.Errorf("decode cache avoided only %.3f%% of decodes (paper: 99.991%%)", res.DecodeAvoidedPct)
	}
	if res.LookupAvoidedPct < 90 {
		t.Errorf("prediction avoided only %.1f%% of lookups (paper: 99.2%%)", res.LookupAvoidedPct)
	}
	if res.DetectDecodeNs < 5*res.ExecuteNs {
		t.Errorf("detect&decode (%.1f ns) should dwarf execute (%.1f ns)",
			res.DetectDecodeNs, res.ExecuteNs)
	}
	if res.MemOpsPct < 5 || res.MemOpsPct > 60 {
		t.Errorf("memory instruction share = %.1f%%, implausible", res.MemOpsPct)
	}
}
