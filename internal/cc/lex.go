// Package cc implements the retargetable MiniC compiler of the
// toolchain — the role the paper's LLVM-based retargetable C/C++
// compiler plays (Sec. IV): it translates a C subset into
// target-dependent assembly for any ISA of the architecture model,
// schedules VLIW instructions with the same pessimistic memory
// dependency model the simulator's ILP measurement assumes (no alias
// analysis: every memory operation depends on the last store), supports
// mixed-ISA programs via per-function ISA attributes with
// SWITCHTARGET insertion at cross-ISA call sites and ISA-prefixed
// function symbols, and emits `.loc` directives so the simulator can
// map instruction addresses back to source lines.
//
// MiniC: int/uint/char, pointers, one-dimensional arrays, functions
// (including recursion and varargs calls into the emulated C library),
// globals with initializers, string literals, if/else, while, for,
// break/continue, return, and the usual C expression operators.
package cc

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokPunct
	tokKeyword
)

var keywords = map[string]bool{
	"int": true, "uint": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
	"const": true, "__isa": true,
}

type token struct {
	kind tokKind
	text string
	val  int64 // numbers and char literals
	str  string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	file string
	src  string
	pos  int
	line int
}

func newLexer(file, src string) *lexer { return &lexer{file: file, src: src, line: 1} }

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", lx.file, lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			if lx.pos+1 >= len(lx.src) {
				return token{}, lx.errf("unterminated block comment")
			}
			lx.pos += 2
		case c == '#':
			// Preprocessor lines are not supported; skip harmless ones
			// like `#line` comments to be forgiving in test sources.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil

scan:
	c := lx.src[lx.pos]
	start := lx.pos
	switch {
	case isDigit(c):
		base := 10
		if c == '0' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == 'x' || lx.src[lx.pos+1] == 'X') {
			base = 16
			lx.pos += 2
		}
		var v int64
		for lx.pos < len(lx.src) {
			d := digitVal(lx.src[lx.pos])
			if d < 0 || d >= base {
				break
			}
			v = v*int64(base) + int64(d)
			if v > 1<<33 {
				return token{}, lx.errf("integer constant too large")
			}
			lx.pos++
		}
		if base == 16 && lx.pos == start+2 {
			return token{}, lx.errf("malformed hex constant")
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], val: v, line: lx.line}, nil

	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentChar(lx.src[lx.pos]) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		k := tokIdent
		if keywords[text] {
			k = tokKeyword
		}
		return token{kind: k, text: text, line: lx.line}, nil

	case c == '"':
		s, n, err := lx.scanString('"')
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: lx.src[start : start+n], str: s, line: lx.line}, nil

	case c == '\'':
		s, _, err := lx.scanString('\'')
		if err != nil {
			return token{}, err
		}
		if len(s) != 1 {
			return token{}, lx.errf("character literal must contain exactly one byte")
		}
		return token{kind: tokChar, text: "'" + s + "'", val: int64(s[0]), line: lx.line}, nil
	}

	// Punctuation, longest match first.
	for _, p := range []string{
		"...",
		"<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
		"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
		"+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "<", ">", "=",
		"(", ")", "{", "}", "[", "]", ";", ",",
	} {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.pos += len(p)
			return token{kind: tokPunct, text: p, line: lx.line}, nil
		}
	}
	return token{}, lx.errf("unexpected character %q", c)
}

// scanString scans a quoted string or char literal body with C escapes.
// It returns the decoded bytes and the number of source bytes consumed.
func (lx *lexer) scanString(quote byte) (string, int, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var out []byte
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case quote:
			lx.pos++
			return string(out), lx.pos - start, nil
		case '\n':
			return "", 0, lx.errf("unterminated literal")
		case '\\':
			lx.pos++
			if lx.pos >= len(lx.src) {
				return "", 0, lx.errf("unterminated escape")
			}
			e := lx.src[lx.pos]
			lx.pos++
			switch e {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case 'r':
				out = append(out, '\r')
			case '0':
				out = append(out, 0)
			case '\\', '\'', '"':
				out = append(out, e)
			default:
				return "", 0, lx.errf("unknown escape \\%c", e)
			}
		default:
			out = append(out, c)
			lx.pos++
		}
	}
	return "", 0, lx.errf("unterminated literal")
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || isDigit(c) }
