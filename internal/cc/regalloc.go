package cc

import (
	"fmt"
	"sort"
)

// Register pools. r30/r31 are reserved as spill scratch registers and
// never allocated; a0..a3 are used only at call boundaries; sp/ra/zero
// are fixed.
var (
	callerSavedPool = []int{8, 9, 10, 11, 12, 13, 14, 15, 28, 29} // t0..t7, t8, t9
	calleeSavedPool = []int{16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, regFP}
	scratch0        = 30 // t10
	scratch1        = 31 // t11
)

type interval struct {
	vreg       int
	start, end int
	crossCall  bool
	phys       int // assigned register, or -1
	spill      int // spill slot index, or -1
}

type raResult struct {
	// assignment: vreg -> phys (>= 0) or spilled (slot in spillOf).
	physOf  map[int]int
	spillOf map[int]int
	// usedCallee lists callee-saved registers that must be preserved.
	usedCallee []int
	spillSlots int
}

// allocate performs liveness analysis and linear-scan register
// allocation over the function, then rewrites all operations to
// physical registers, inserting spill code using the two reserved
// scratch registers.
func allocate(fn *mfunc) (*raResult, error) {
	type binfo struct {
		b          *mblock
		start, end int // op position range [start, end)
		succs      []int
		use, def   map[int]bool
		in, out    map[int]bool
	}
	labelIdx := map[string]int{}
	for i, b := range fn.blocks {
		if b.label != "" {
			labelIdx[b.label] = i
		}
	}
	infos := make([]*binfo, len(fn.blocks))
	pos := 0
	for i, b := range fn.blocks {
		bi := &binfo{b: b, start: pos, use: map[int]bool{}, def: map[int]bool{},
			in: map[int]bool{}, out: map[int]bool{}}
		pos += len(b.ops)
		bi.end = pos
		infos[i] = bi
	}
	// Successors.
	for i, bi := range infos {
		succ := func(label string) error {
			j, ok := labelIdx[label]
			if !ok {
				return fmt.Errorf("cc: %s: undefined label %q", fn.srcName, label)
			}
			bi.succs = append(bi.succs, j)
			return nil
		}
		// A block may end with several control transfers (a conditional
		// branch followed by an unconditional jump); scan the trailing
		// control operations for all successor edges.
		fall := true
	scan:
		for k := len(bi.b.ops) - 1; k >= 0; k-- {
			op := &bi.b.ops[k]
			switch {
			case op.Name == "j":
				if err := succ(op.Sym); err != nil {
					return nil, err
				}
				fall = false
			case op.Name == "ret":
				fall = false
			case isBranchName(op.Name):
				if err := succ(op.Sym); err != nil {
					return nil, err
				}
			default:
				break scan
			}
		}
		if fall && i+1 < len(infos) {
			bi.succs = append(bi.succs, i+1)
		}
	}
	// use/def sets (vregs only), in reverse op order per block.
	srcsOf := func(m *MOp) []int {
		var out []int
		if m.S1 >= vregBase {
			out = append(out, m.S1)
		}
		if m.S2 >= vregBase {
			out = append(out, m.S2)
		}
		for _, a := range m.Args {
			if a >= vregBase {
				out = append(out, a)
			}
		}
		return out
	}
	for _, bi := range infos {
		for oi := len(bi.b.ops) - 1; oi >= 0; oi-- {
			m := &bi.b.ops[oi]
			if m.Dst >= vregBase {
				bi.def[m.Dst] = true
				delete(bi.use, m.Dst)
			}
			for _, s := range srcsOf(m) {
				bi.use[s] = true
			}
		}
	}
	// Iterative liveness.
	for changed := true; changed; {
		changed = false
		for i := len(infos) - 1; i >= 0; i-- {
			bi := infos[i]
			for _, sj := range bi.succs {
				for v := range infos[sj].in {
					if !bi.out[v] {
						bi.out[v] = true
						changed = true
					}
				}
			}
			for v := range bi.out {
				if !bi.def[v] && !bi.in[v] {
					bi.in[v] = true
					changed = true
				}
			}
			for v := range bi.use {
				if !bi.in[v] {
					bi.in[v] = true
					changed = true
				}
			}
		}
	}

	// Intervals.
	ivs := map[int]*interval{}
	touch := func(v, p int) {
		iv, ok := ivs[v]
		if !ok {
			iv = &interval{vreg: v, start: p, end: p, phys: -1, spill: -1}
			ivs[v] = iv
			return
		}
		if p < iv.start {
			iv.start = p
		}
		if p > iv.end {
			iv.end = p
		}
	}
	var callPos []int
	p := 0
	for _, bi := range infos {
		for oi := range bi.b.ops {
			m := &bi.b.ops[oi]
			if m.Dst >= vregBase {
				touch(m.Dst, p)
			}
			for _, s := range srcsOf(m) {
				touch(s, p)
			}
			if m.Name == "call" || m.Name == "callisa" {
				callPos = append(callPos, p)
			}
			p++
		}
		for v := range bi.in {
			touch(v, bi.start)
		}
		for v := range bi.out {
			if bi.end > bi.start {
				touch(v, bi.end-1)
			}
		}
	}
	for _, iv := range ivs {
		for _, cp := range callPos {
			if iv.start < cp && iv.end > cp {
				iv.crossCall = true
				break
			}
		}
	}

	// Linear scan.
	list := make([]*interval, 0, len(ivs))
	for _, iv := range ivs {
		list = append(list, iv)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].start != list[j].start {
			return list[i].start < list[j].start
		}
		return list[i].vreg < list[j].vreg
	})

	res := &raResult{physOf: map[int]int{}, spillOf: map[int]int{}}
	freeCaller := append([]int(nil), callerSavedPool...)
	freeCallee := append([]int(nil), calleeSavedPool...)
	if len(callPos) == 0 {
		// Leaf function: the argument registers are allocatable too (no
		// call ever clobbers them). Intervals overlapping the entry
		// argument moves are excluded below.
		freeCaller = append(freeCaller, regA0, regA0+1, regA0+2, regA0+3)
	}
	usedCallee := map[int]bool{}
	var active []*interval

	expire := func(p int) {
		keep := active[:0]
		for _, iv := range active {
			if iv.end >= p {
				keep = append(keep, iv)
				continue
			}
			if iv.phys >= 0 {
				if isCalleeSaved(iv.phys) {
					freeCallee = append(freeCallee, iv.phys)
				} else {
					freeCaller = append(freeCaller, iv.phys)
				}
			}
		}
		active = keep
	}
	// take removes the first admissible register from the pool: the
	// argument registers (present only in leaf functions) are withheld
	// from intervals overlapping the entry argument moves.
	take := func(pool *[]int, iv *interval) int {
		for k, r := range *pool {
			if r >= regA0 && r <= regA0+3 && iv.start <= 4 {
				continue
			}
			*pool = append((*pool)[:k], (*pool)[k+1:]...)
			return r
		}
		return -1
	}
	for _, iv := range list {
		expire(iv.start)
		assigned := -1
		switch {
		case iv.crossCall:
			assigned = take(&freeCallee, iv)
		default:
			if assigned = take(&freeCaller, iv); assigned < 0 {
				assigned = take(&freeCallee, iv)
			}
		}
		if assigned >= 0 {
			iv.phys = assigned
		} else {
			// Spill the active interval with the furthest end among the
			// compatible ones, or this one.
			var victim *interval
			for _, a := range active {
				if a.phys < 0 {
					continue
				}
				if iv.crossCall && !isCalleeSaved(a.phys) {
					continue
				}
				if a.phys >= regA0 && a.phys <= regA0+3 && iv.start <= 4 {
					continue // see take: protect entry argument moves
				}
				if victim == nil || a.end > victim.end {
					victim = a
				}
			}
			if victim != nil && victim.end > iv.end {
				iv.phys = victim.phys
				victim.phys = -1
				victim.spill = res.spillSlots
				res.spillSlots++
			} else {
				iv.spill = res.spillSlots
				res.spillSlots++
			}
		}
		if iv.phys >= 0 && isCalleeSaved(iv.phys) {
			usedCallee[iv.phys] = true
		}
		active = append(active, iv)
	}
	for _, iv := range ivs {
		if iv.phys >= 0 {
			res.physOf[iv.vreg] = iv.phys
		} else {
			res.spillOf[iv.vreg] = iv.spill
		}
	}
	for r := range usedCallee {
		res.usedCallee = append(res.usedCallee, r)
	}
	sort.Ints(res.usedCallee)

	rewrite(fn, res)
	return res, nil
}

func isBranchName(name string) bool {
	switch name {
	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		return true
	}
	return false
}

func isCalleeSaved(r int) bool {
	return (r >= 16 && r <= 27) || r == regFP
}

// spillRef encodes a spilled call argument in MOp.Args.
func spillRef(slot int) int { return -(slot + 2) }
func isSpillRef(a int) bool { return a <= -2 }
func spillSlotOf(a int) int { return -a - 2 }

// rewrite replaces vregs with physical registers and inserts spill
// loads/stores around uses and definitions.
func rewrite(fn *mfunc, res *raResult) {
	for _, b := range fn.blocks {
		out := make([]MOp, 0, len(b.ops))
		for _, m := range b.ops {
			scratchNext := scratch0
			nextScratch := func() int {
				r := scratchNext
				if scratchNext == scratch0 {
					scratchNext = scratch1
				}
				return r
			}
			mapSrc := func(v int) int {
				if v < vregBase {
					return v
				}
				if phys, ok := res.physOf[v]; ok {
					return phys
				}
				slot := res.spillOf[v]
				s := nextScratch()
				out = append(out, MOp{Name: "lw", Dst: s, S1: regSP,
					Imm: int64(slot * 4), Ref: frameSpill, Line: m.Line})
				return s
			}
			m.S1 = mapSrc(m.S1)
			m.S2 = mapSrc(m.S2)
			for i, a := range m.Args {
				if a < vregBase {
					continue
				}
				if phys, ok := res.physOf[a]; ok {
					m.Args[i] = phys
				} else {
					m.Args[i] = spillRef(res.spillOf[a])
				}
			}
			storeAfter := -1
			if m.Dst >= vregBase {
				if phys, ok := res.physOf[m.Dst]; ok {
					m.Dst = phys
				} else {
					storeAfter = res.spillOf[m.Dst]
					m.Dst = scratch0
				}
			}
			out = append(out, m)
			if storeAfter >= 0 {
				out = append(out, MOp{Name: "sw", Dst: regNone, S1: regSP, S2: scratch0,
					Imm: int64(storeAfter * 4), Ref: frameSpill, Line: m.Line})
			}
		}
		b.ops = out
	}
}
