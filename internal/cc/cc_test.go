package cc_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/driver"
	"repro/internal/ktest"
	"repro/internal/sim"
)

// run compiles and runs a MiniC program on the given ISA, returning
// exit code and stdout.
func run(t *testing.T, isaName, src string) (int32, string) {
	t.Helper()
	m := ktest.Model(t)
	var out bytes.Buffer
	opts := sim.DefaultOptions()
	opts.Stdout = &out
	opts.MaxInstructions = 50_000_000
	_, st, err := driver.Run(m, isaName, opts, driver.CSource(t.Name()+".c", src))
	if err != nil {
		asmText, cerr := cc.Compile(m, cc.Options{ISA: isaName}, t.Name()+".c", src)
		if cerr == nil {
			t.Logf("generated assembly:\n%s", asmText)
		}
		t.Fatalf("run (%s): %v", isaName, err)
	}
	if !st.Halted {
		t.Fatalf("did not halt")
	}
	return st.ExitCode, out.String()
}

// runAll runs the program on every ISA and checks the results agree.
func runAll(t *testing.T, src string, wantExit int32, wantOut string) {
	t.Helper()
	for _, isaName := range []string{"RISC", "VLIW2", "VLIW4", "VLIW8"} {
		code, out := run(t, isaName, src)
		if code != wantExit {
			t.Errorf("%s: exit = %d, want %d", isaName, code, wantExit)
		}
		if out != wantOut {
			t.Errorf("%s: output = %q, want %q", isaName, out, wantOut)
		}
	}
}

func TestReturnConstant(t *testing.T) {
	runAll(t, "int main() { return 42; }", 42, "")
}

func TestArithmetic(t *testing.T) {
	runAll(t, `
int main() {
    int a = 7;
    int b = 3;
    return a*b + a/b - a%b + (a<<2) - (a>>1) + (a&b) + (a|b) + (a^b);
}`, 7*3+7/3-7%3+(7<<2)-(7>>1)+(7&3)+(7|3)+(7^3), "")
}

func TestUnsignedArithmetic(t *testing.T) {
	runAll(t, `
int main() {
    uint a = 0x80000000;
    uint b = a >> 4;           // logical shift
    int c = (int)a >> 4;       // arithmetic shift (sign bits)
    uint d = 0xFFFFFFFF;
    uint q = d / 16;
    if (b != 0x08000000) return 1;
    if ((uint)c != 0xF8000000) return 2;
    if (q != 0x0FFFFFFF) return 3;
    if (!(a > 100)) return 4;  // unsigned compare
    return 0;
}`, 0, "")
}

func TestIfElseChain(t *testing.T) {
	runAll(t, `
int classify(int x) {
    if (x < 0) return 0;
    else if (x == 0) return 1;
    else if (x < 10) return 2;
    else return 3;
}
int main() {
    return classify(-5)*1000 + classify(0)*100 + classify(5)*10 + classify(99);
}`, 123, "")
}

func TestLoopsAndBreakContinue(t *testing.T) {
	runAll(t, `
int main() {
    int sum = 0;
    for (int i = 0; i < 20; i++) {
        if (i % 2 == 0) continue;
        if (i > 13) break;
        sum += i;
    }
    int j = 0;
    while (j < 5) { sum += j; j++; }
    return sum; // 1+3+5+7+9+11+13 + 0+1+2+3+4 = 49+10 = 59
}`, 59, "")
}

func TestRecursionFib(t *testing.T) {
	runAll(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n-1) + fib(n-2);
}
int main() { return fib(12); }`, 144, "")
}

func TestGlobalArraysAndPointers(t *testing.T) {
	runAll(t, `
int tab[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int g = 100;
int sum(int* p, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += p[i];
    return s;
}
int main() {
    tab[2] = 30;
    int* p = &tab[4];
    *p = 50;
    p[1] = 60;
    return sum(tab, 8) + g; // 1+2+30+4+50+60+7+8 = 162 + 100
}`, 262, "")
}

func TestLocalArraysAndAddressOf(t *testing.T) {
	runAll(t, `
void bump(int* x) { *x = *x + 7; }
int main() {
    int a[4] = {10, 20, 30, 40};
    int v = 5;
    bump(&v);
    bump(&a[1]);
    return a[0] + a[1] + a[2] + a[3] + v; // 10+27+30+40+12 = 119
}`, 119, "")
}

func TestCharsAndStrings(t *testing.T) {
	runAll(t, `
char msg[] = "hello";
int main() {
    char buf[8];
    int n = strlen(msg);
    for (int i = 0; i < n; i++) buf[i] = msg[i] - 32; // upper-case
    buf[n] = 0;
    puts(buf);
    return buf[0]; // 'H'
}`, 'H', "HELLO\n")
}

func TestPrintfFormats(t *testing.T) {
	runAll(t, `
int main() {
    printf("%d %u %x %c %s %% %02x\n", -3, 7, 255, 'A', "ok", 5);
    return 0;
}`, 0, "-3 7 ff A ok % 05\n")
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	runAll(t, `
int main() {
    int x = 10;
    x += 5; x -= 2; x *= 3; x /= 2; x %= 11; // ((13*3)/2)%11 = 19%11 = 8
    x <<= 2; x >>= 1;                        // 16
    x |= 1; x &= 0xF; x ^= 2;                // 17&15=1^2=3
    int a[3] = {1, 2, 3};
    a[1] += 10;
    int i = 0;
    int pre = ++i;  // i=1 pre=1
    int post = i++; // post=1 i=2
    a[i]--;         // a[2] = 2
    return x*100 + a[1] + a[2] + pre + post + i; // 300+12+2+1+1+2
}`, 318, "")
}

func TestLogicalOps(t *testing.T) {
	runAll(t, `
int calls = 0;
int side(int v) { calls++; return v; }
int main() {
    int a = (side(0) && side(1)) + (side(1) || side(9)) * 10;
    // short-circuit: side(0), side(1) [for ||] -> calls = 2
    int b = !0 + !5 * 10; // 1 + 0
    return a*100 + calls*10 + b; // 1000 + 20 + 1
}`, 1021, "")
}

func TestManyArgsAndStackArgs(t *testing.T) {
	runAll(t, `
int sum7(int a, int b, int c, int d, int e, int f, int g) {
    return a + 10*b + 100*c + 1000*d + e + f + g;
}
int main() {
    return sum7(1, 2, 3, 4, 5, 6, 7); // 4321 + 18
}`, 4339, "")
}

func TestSpillPressure(t *testing.T) {
	// 30 simultaneously-live values force spilling.
	var b strings.Builder
	b.WriteString("int main() {\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "    int v%d = %d;\n", i, i+1)
	}
	b.WriteString("    int s = 0;\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "    s += v%d * v%d;\n", i, (i+7)%30)
	}
	b.WriteString("    return s & 0xFF;\n}\n")
	want := 0
	vals := make([]int, 30)
	for i := range vals {
		vals[i] = i + 1
	}
	for i := 0; i < 30; i++ {
		want += vals[i] * vals[(i+7)%30]
	}
	runAll(t, b.String(), int32(want&0xFF), "")
}

func TestMallocMemset(t *testing.T) {
	runAll(t, `
int main() {
    char* p = malloc(100);
    memset(p, 7, 100);
    char* q = malloc(100);
    memcpy(q, p, 100);
    int s = 0;
    for (int i = 0; i < 100; i++) s += q[i];
    return s == 700;
}`, 1, "")
}

func TestGlobalCharTable(t *testing.T) {
	runAll(t, `
const char hexdig[16] = {'0','1','2','3','4','5','6','7','8','9','a','b','c','d','e','f'};
int main() {
    putchar(hexdig[10]);
    putchar(hexdig[15]);
    putchar('\n');
    return hexdig[3];
}`, '3', "af\n")
}

func TestNestedLoopsMatrix(t *testing.T) {
	runAll(t, `
int a[16];
int b[16];
int c[16];
int main() {
    for (int i = 0; i < 16; i++) { a[i] = i; b[i] = 16 - i; }
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++) {
            int s = 0;
            for (int k = 0; k < 4; k++)
                s += a[i*4+k] * b[k*4+j];
            c[i*4+j] = s;
        }
    int sum = 0;
    for (int i = 0; i < 16; i++) sum += c[i];
    return sum & 0xFF;
}`, func() int32 {
		var a, b, c [16]int
		for i := 0; i < 16; i++ {
			a[i] = i
			b[i] = 16 - i
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				s := 0
				for k := 0; k < 4; k++ {
					s += a[i*4+k] * b[k*4+j]
				}
				c[i*4+j] = s
			}
		}
		sum := 0
		for i := 0; i < 16; i++ {
			sum += c[i]
		}
		return int32(sum & 0xFF)
	}(), "")
}

func TestCrossISACall(t *testing.T) {
	// main runs RISC; kernel runs VLIW4 via __isa attribute with
	// SWITCHTARGET pairs inserted by the compiler.
	m := ktest.Model(t)
	src := `
__isa(VLIW4) int kernel(int a, int b) {
    int x = a + b;
    int y = a - b;
    int z = a * b;
    return x + y + z;
}
int main() {
    return kernel(10, 4) + kernel(3, 2); // (14+6+40) + (5+1+6) = 72
}`
	var out bytes.Buffer
	opts := sim.DefaultOptions()
	opts.Stdout = &out
	opts.MaxInstructions = 1_000_000
	cpu, st, err := driver.Run(m, "RISC", opts, driver.CSource("x.c", src))
	if err != nil {
		t.Fatal(err)
	}
	if st.ExitCode != 72 {
		t.Fatalf("exit = %d, want 72", st.ExitCode)
	}
	if cpu.Stats.ISASwitches < 4 {
		t.Fatalf("ISA switches = %d, want >= 4", cpu.Stats.ISASwitches)
	}
}

func TestVLIWSchedulingImprovesDensity(t *testing.T) {
	// A block of independent operations should execute in far fewer
	// instructions on VLIW8 than on RISC.
	src := `
int a[64];
int main() {
    for (int i = 0; i < 64; i++) a[i] = i;
    int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
    for (int i = 0; i < 64; i += 4) {
        s0 += a[i];
        s1 += a[i+1];
        s2 += a[i+2];
        s3 += a[i+3];
    }
    return (s0 + s1 + s2 + s3) & 0xFF; // 2016 & 255 = 224
}`
	m := ktest.Model(t)
	counts := map[string]uint64{}
	for _, isaName := range []string{"RISC", "VLIW8"} {
		opts := sim.DefaultOptions()
		opts.MaxInstructions = 1_000_000
		cpu, st, err := driver.Run(m, isaName, opts, driver.CSource("x.c", src))
		if err != nil {
			t.Fatal(err)
		}
		if st.ExitCode != 224 {
			t.Fatalf("%s: exit = %d", isaName, st.ExitCode)
		}
		counts[isaName] = st.Instructions
		_ = cpu
	}
	if counts["VLIW8"]*3/2 > counts["RISC"] {
		t.Errorf("VLIW8 executed %d instructions vs RISC %d; packing looks ineffective",
			counts["VLIW8"], counts["RISC"])
	}
}

func TestCompileErrors(t *testing.T) {
	m := ktest.Model(t)
	cases := []struct{ src, sub string }{
		{"int main() { return x; }", "undefined variable"},
		{"int main() { nosuch(); }", "undefined function"},
		{"int main() { int a; int a; }", "redeclaration"},
		{"int main() { break; }", "break outside loop"},
		{"int main() { continue; }", "continue outside loop"},
		{"void f() { return 3; }", "return with value"},
		{"int f() { return; } int main() { return 0; }", "return without value"},
		{"int main() { int x; return *x; }", "dereference of non-pointer"},
		{"int main() { 5 = 3; }", "not an lvalue"},
		{"int main() { puts(1, 2); }", "expects 1 arguments"},
		{"int printf(int x) { return x; }", "shadows a C library function"},
		{"__isa(BOGUS) int f() { return 0; } int main() { return 0; }", "unknown ISA"},
		{"int main() { int* p; int* q; return p + q; }", "pointer-pointer"},
		{"int g = x; int main() { return 0; }", "not constant"},
	}
	for _, tc := range cases {
		_, err := cc.Compile(m, cc.Options{ISA: "RISC"}, "e.c", tc.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q", tc.src, tc.sub)
			continue
		}
		if !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("%q: error %q does not contain %q", tc.src, err, tc.sub)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, sub string }{
		{"int main() { return 0 }", `expected ";"`},
		{"int main( { }", "expected type"},
		{"int 3x;", "expected identifier"},
		{"int main() { int a[0]; }", "bad array length"},
		{"int main() { /* unterminated", "unterminated block comment"},
		{`int main() { char c = 'ab'; }`, "exactly one byte"},
		{`int main() { return "x`, "unterminated literal"},
		{"int a[2] = {1,2,3};", "3 initializers for array of 2"},
		{"@", "unexpected character"},
	}
	for _, tc := range cases {
		_, err := cc.Parse("e.c", tc.src)
		if err == nil {
			t.Errorf("%q: expected parse error %q", tc.src, tc.sub)
			continue
		}
		if !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("%q: error %q does not contain %q", tc.src, err, tc.sub)
		}
	}
}

func TestLocDirectivesEmitted(t *testing.T) {
	m := ktest.Model(t)
	asmText, err := cc.Compile(m, cc.Options{ISA: "RISC"}, "dbg.c", `
int main() {
    int x = 1;
    x = x + 2;
    return x;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, `.loc "dbg.c"`) {
		t.Fatalf("no .loc directives in output:\n%s", asmText)
	}
	if !strings.Contains(asmText, ".func main") {
		t.Fatal("no .func directive")
	}
}
