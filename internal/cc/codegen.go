package cc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Options configure a compilation.
type Options struct {
	// ISA is the default target ISA name for functions without an
	// __isa attribute (required).
	ISA string
	// FunctionISA overrides the target ISA per function name, as if the
	// source carried an __isa attribute — the hook the automatic ISA
	// selection (internal/isasel) uses to retarget individual functions
	// without editing sources. An explicit source attribute wins.
	FunctionISA map[string]string
}

// funcSig is a callable signature.
type funcSig struct {
	name    string
	symbol  string
	ret     *Type
	params  []Param
	vararg  bool
	isaName string
	builtin bool
}

type compiler struct {
	model *isa.Model
	opt   Options
	file  string

	funcs   map[string]*funcSig
	globals map[string]*VarDecl

	strLabels map[string]string
	strOrder  []string

	text, data, rodata, bss strings.Builder
	labelN                  int
	errs                    []error
}

// Compile translates one MiniC translation unit into mixed-ISA
// assembly text for the given architecture model.
func Compile(model *isa.Model, opt Options, file, src string) (string, error) {
	if model.ISAByName(opt.ISA) == nil {
		return "", fmt.Errorf("cc: unknown target ISA %q", opt.ISA)
	}
	unit, err := Parse(file, src)
	if err != nil {
		return "", err
	}
	c := &compiler{
		model:     model,
		opt:       opt,
		file:      file,
		funcs:     map[string]*funcSig{},
		globals:   map[string]*VarDecl{},
		strLabels: map[string]string{},
	}
	c.declareBuiltins()
	if err := c.collect(unit); err != nil {
		return "", err
	}
	c.emitGlobals(unit)
	for _, fd := range unit.Funcs {
		if fd.Body == nil {
			continue
		}
		c.genFunction(fd)
	}
	if len(c.errs) > 0 {
		var sb strings.Builder
		for i, e := range c.errs {
			if i > 0 {
				sb.WriteString("\n")
			}
			sb.WriteString(e.Error())
			if i == 19 && len(c.errs) > 20 {
				fmt.Fprintf(&sb, "\n... and %d more errors", len(c.errs)-20)
				break
			}
		}
		return "", fmt.Errorf("%s", sb.String())
	}

	var out strings.Builder
	if c.text.Len() > 0 {
		out.WriteString("\t.text\n")
		out.WriteString(c.text.String())
	}
	if c.rodata.Len() > 0 {
		out.WriteString("\t.rodata\n")
		out.WriteString(c.rodata.String())
	}
	if c.data.Len() > 0 {
		out.WriteString("\t.data\n")
		out.WriteString(c.data.String())
	}
	if c.bss.Len() > 0 {
		out.WriteString("\t.bss\n")
		out.WriteString(c.bss.String())
	}
	return out.String(), nil
}

func (c *compiler) errf(line int, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s:%d: %s", c.file, line, fmt.Sprintf(format, args...)))
}

// declareBuiltins registers the emulated C library (Sec. V-E).
func (c *compiler) declareBuiltins() {
	pc := ptrTo(typeChar)
	sig := func(name string, ret *Type, vararg bool, params ...*Type) {
		fs := &funcSig{name: name, symbol: name, ret: ret, vararg: vararg,
			isaName: c.opt.ISA, builtin: true}
		for i, p := range params {
			fs.params = append(fs.params, Param{Name: fmt.Sprintf("a%d", i), Type: p})
		}
		c.funcs[name] = fs
	}
	sig("exit", typeVoid, false, typeInt)
	sig("putchar", typeInt, false, typeInt)
	sig("puts", typeInt, false, pc)
	sig("printf", typeInt, true, pc)
	sig("malloc", pc, false, typeInt)
	sig("free", typeVoid, false, pc)
	sig("memcpy", pc, false, pc, pc, typeInt)
	sig("memset", pc, false, pc, typeInt, typeInt)
	sig("rand", typeInt, false)
	sig("srand", typeVoid, false, typeInt)
	sig("clock", typeInt, false)
	sig("abort", typeVoid, false)
	sig("strlen", typeInt, false, pc)
	sig("strcmp", typeInt, false, pc, pc)
	sig("getchar", typeInt, false)
}

// collect builds the symbol tables for globals and functions.
func (c *compiler) collect(u *Unit) error {
	for _, g := range u.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return fmt.Errorf("%s:%d: duplicate global %q", c.file, g.Line, g.Name)
		}
		c.globals[g.Name] = g
	}
	for _, fd := range u.Funcs {
		isaName := fd.ISA
		if isaName == "" {
			isaName = c.opt.FunctionISA[fd.Name]
		}
		if isaName == "" {
			isaName = c.opt.ISA
		}
		if c.model.ISAByName(isaName) == nil {
			return fmt.Errorf("%s:%d: function %s: unknown ISA %q", c.file, fd.Line, fd.Name, isaName)
		}
		symbol := fd.Name
		if isaName != c.opt.ISA {
			// The compiler "prefixes the function name symbols by the
			// target ISA identifier" (Sec. IV) for cross-ISA functions.
			symbol = isaName + "." + fd.Name
		}
		if prev, ok := c.funcs[fd.Name]; ok {
			if prev.builtin {
				return fmt.Errorf("%s:%d: %s shadows a C library function", c.file, fd.Line, fd.Name)
			}
			// Prototype followed by definition is fine; re-definition is
			// caught by duplicate body emission below.
		}
		c.funcs[fd.Name] = &funcSig{
			name: fd.Name, symbol: symbol, ret: fd.Ret,
			params: fd.Params, vararg: fd.Vararg, isaName: isaName,
		}
		if _, dup := c.globals[fd.Name]; dup {
			return fmt.Errorf("%s:%d: %s is both global and function", c.file, fd.Line, fd.Name)
		}
	}
	return nil
}

// strLabel interns a string literal in .rodata.
func (c *compiler) strLabel(s string) string {
	if l, ok := c.strLabels[s]; ok {
		return l
	}
	l := fmt.Sprintf(".Lstr%d", len(c.strOrder))
	c.strLabels[s] = l
	c.strOrder = append(c.strOrder, s)
	fmt.Fprintf(&c.rodata, "%s:\n\t.asciz %q\n", l, s)
	return l
}

// emitGlobals writes global variables to .data/.rodata/.bss.
func (c *compiler) emitGlobals(u *Unit) {
	for _, g := range u.Globals {
		buf := &c.data
		if g.Const {
			buf = &c.rodata
		}
		hasInit := g.Init != nil || len(g.InitList) > 0 || g.InitStr != ""
		if !hasInit {
			fmt.Fprintf(&c.bss, "\t.align 4\n\t.global %s\n%s:\n\t.space %d\n",
				g.Name, g.Name, c.globalSize(g))
			continue
		}
		fmt.Fprintf(buf, "\t.align 4\n\t.global %s\n%s:\n", g.Name, g.Name)
		switch {
		case g.InitStr != "":
			fmt.Fprintf(buf, "\t.ascii %q\n", g.InitStr)
			if pad := g.ArrayLen - len(g.InitStr); pad > 0 {
				fmt.Fprintf(buf, "\t.space %d\n", pad)
			}
		case len(g.InitList) > 0:
			word := g.Type.Size() == 4
			for _, e := range g.InitList {
				v, ok := foldConst(e)
				if !ok {
					c.errf(g.Line, "global %s: initializer element is not constant", g.Name)
					v = 0
				}
				if word {
					fmt.Fprintf(buf, "\t.word %d\n", int32(v))
				} else {
					fmt.Fprintf(buf, "\t.byte %d\n", uint8(v))
				}
			}
			if pad := g.ArrayLen - len(g.InitList); pad > 0 {
				fmt.Fprintf(buf, "\t.space %d\n", pad*g.Type.Size())
			}
		default:
			v, ok := foldConst(g.Init)
			if !ok {
				c.errf(g.Line, "global %s: initializer is not constant", g.Name)
			}
			if g.Type.Size() == 4 {
				fmt.Fprintf(buf, "\t.word %d\n", int32(v))
			} else {
				fmt.Fprintf(buf, "\t.byte %d\n", uint8(v))
			}
		}
	}
}

func (c *compiler) globalSize(g *VarDecl) int {
	n := g.Type.Size()
	if g.ArrayLen >= 0 {
		n *= g.ArrayLen
	}
	if n == 0 {
		n = 4
	}
	return n
}

// ---------------------------------------------------------------------
// Function code generation

type localVar struct {
	typ      *Type
	isArray  bool
	elems    int
	promoted bool
	vreg     int
	off      int64
}

type loopLabels struct{ brk, cont string }

type fgen struct {
	c         *compiler
	fd        *FuncDecl
	sig       *funcSig
	fn        *mfunc
	cur       *mblock
	scopes    []map[string]*localVar
	loops     []loopLabels
	addrTaken map[string]bool
	line      int
}

func (c *compiler) genFunction(fd *FuncDecl) {
	sig := c.funcs[fd.Name]
	g := &fgen{
		c:   c,
		fd:  fd,
		sig: sig,
		fn: &mfunc{
			name: sig.symbol, srcName: fd.Name,
			isa:      c.model.ISAByName(sig.isaName),
			nextVreg: vregBase,
			line:     fd.Line,
		},
	}
	g.cur = g.fn.newBlock("")
	g.pushScope()

	// Bind parameters: first four from a0..a3, the rest from the
	// caller's outgoing-argument area.
	for i, p := range fd.Params {
		lv := &localVar{typ: p.Type, promoted: true, vreg: g.fn.newVreg()}
		g.scope()[p.Name] = lv
		if i < 4 {
			g.emit(MOp{Name: "addi", Dst: lv.vreg, S1: regA0 + i, Imm: 0, Line: fd.Line})
		} else {
			g.emit(MOp{Name: "lw", Dst: lv.vreg, S1: regSP,
				Imm: int64((i - 4) * 4), Ref: frameIncoming, Line: fd.Line})
		}
	}

	addrTaken := map[string]bool{}
	scanAddrTaken(fd.Body, addrTaken)
	g.addrTaken = addrTaken

	g.genBlock(fd.Body)
	// Implicit return (void functions or falling off the end).
	g.emit(MOp{Name: "ret", Dst: regNone, S1: regNone, S2: regNone, Line: fd.Line})
	g.popScope()

	text, err := emitFunction(c.model, g.fn, c.file)
	if err != nil {
		c.errs = append(c.errs, err)
		return
	}
	c.text.WriteString(text)
}

// scanAddrTaken marks identifiers whose address is taken with &.
func scanAddrTaken(s Stmt, out map[string]bool) {
	var walkE func(Expr)
	walkE = func(e Expr) {
		switch x := e.(type) {
		case *Unary:
			if x.Op == "&" {
				if id, ok := x.X.(*Ident); ok {
					out[id.Name] = true
				}
			}
			walkE(x.X)
		case *Binary:
			walkE(x.L)
			walkE(x.R)
		case *Assign:
			walkE(x.LHS)
			walkE(x.RHS)
		case *IncDec:
			walkE(x.X)
		case *Call:
			for _, a := range x.Args {
				walkE(a)
			}
		case *Index:
			walkE(x.Arr)
			walkE(x.Idx)
		case *Cast:
			walkE(x.X)
		}
	}
	var walkS func(Stmt)
	walkS = func(s Stmt) {
		switch x := s.(type) {
		case *Block:
			for _, st := range x.Stmts {
				walkS(st)
			}
		case *ExprStmt:
			walkE(x.E)
		case *If:
			walkE(x.Cond)
			walkS(x.Then)
			if x.Else != nil {
				walkS(x.Else)
			}
		case *While:
			walkE(x.Cond)
			walkS(x.Body)
		case *For:
			if x.Init != nil {
				walkS(x.Init)
			}
			if x.Cond != nil {
				walkE(x.Cond)
			}
			if x.Post != nil {
				walkS(x.Post)
			}
			walkS(x.Body)
		case *Return:
			if x.E != nil {
				walkE(x.E)
			}
		case *DeclStmt:
			for _, d := range x.Decls {
				if d.Init != nil {
					walkE(d.Init)
				}
				for _, e := range d.InitList {
					walkE(e)
				}
			}
		}
	}
	if s != nil {
		walkS(s)
	}
}

func (g *fgen) pushScope() { g.scopes = append(g.scopes, map[string]*localVar{}) }
func (g *fgen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }
func (g *fgen) scope() map[string]*localVar {
	return g.scopes[len(g.scopes)-1]
}

func (g *fgen) lookup(name string) *localVar {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if lv, ok := g.scopes[i][name]; ok {
			return lv
		}
	}
	return nil
}

func (g *fgen) emit(m MOp) {
	if m.Line == 0 {
		m.Line = g.line
	}
	g.cur.ops = append(g.cur.ops, m)
}

func (g *fgen) newLabel() string {
	g.c.labelN++
	return fmt.Sprintf(".L%s_%d", g.fd.Name, g.c.labelN)
}

// startBlock begins a new labelled block (previous block falls
// through unless it ended with an unconditional transfer).
func (g *fgen) startBlock(label string) {
	g.cur = g.fn.newBlock(label)
}

func (g *fgen) errf(line int, format string, args ...any) {
	g.c.errf(line, format, args...)
}

// ---------------------------------------------------------------------
// Statements

func (g *fgen) genBlock(b *Block) {
	g.pushScope()
	for _, s := range b.Stmts {
		g.genStmt(s)
	}
	g.popScope()
}

func (g *fgen) genStmt(s Stmt) {
	g.line = s.stmtLine()
	switch x := s.(type) {
	case *Block:
		g.genBlock(x)
	case *ExprStmt:
		g.genExpr(x.E)
	case *DeclStmt:
		for _, d := range x.Decls {
			g.genLocalDecl(d)
		}
	case *If:
		lThen, lElse, lEnd := g.newLabel(), g.newLabel(), g.newLabel()
		g.genCond(x.Cond, lThen, lElse)
		g.startBlock(lThen)
		g.genStmt(x.Then)
		g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lEnd})
		g.startBlock(lElse)
		if x.Else != nil {
			g.genStmt(x.Else)
		}
		g.startBlock(lEnd)
	case *While:
		lHead, lBody, lEnd := g.newLabel(), g.newLabel(), g.newLabel()
		g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lHead})
		g.startBlock(lHead)
		g.genCond(x.Cond, lBody, lEnd)
		g.startBlock(lBody)
		g.loops = append(g.loops, loopLabels{brk: lEnd, cont: lHead})
		g.genStmt(x.Body)
		g.loops = g.loops[:len(g.loops)-1]
		g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lHead})
		g.startBlock(lEnd)
	case *For:
		lHead, lBody, lPost, lEnd := g.newLabel(), g.newLabel(), g.newLabel(), g.newLabel()
		g.pushScope()
		if x.Init != nil {
			g.genStmt(x.Init)
		}
		g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lHead})
		g.startBlock(lHead)
		if x.Cond != nil {
			g.genCond(x.Cond, lBody, lEnd)
		} else {
			g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lBody})
		}
		g.startBlock(lBody)
		g.loops = append(g.loops, loopLabels{brk: lEnd, cont: lPost})
		g.genStmt(x.Body)
		g.loops = g.loops[:len(g.loops)-1]
		g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lPost})
		g.startBlock(lPost)
		if x.Post != nil {
			g.genStmt(x.Post)
		}
		g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lHead})
		g.startBlock(lEnd)
		g.popScope()
	case *Return:
		val := regNone
		if x.E != nil {
			if g.fd.Ret.Kind == TVoid {
				g.errf(x.stmtLine(), "return with value in void function")
			}
			v, _ := g.genExpr(x.E)
			val = v
		} else if g.fd.Ret.Kind != TVoid {
			g.errf(x.stmtLine(), "return without value in non-void function")
		}
		g.emit(MOp{Name: "ret", Dst: regNone, S1: val, S2: regNone})
		g.startBlock(g.newLabel()) // unreachable continuation
	case *Break:
		if len(g.loops) == 0 {
			g.errf(x.stmtLine(), "break outside loop")
			return
		}
		g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: g.loops[len(g.loops)-1].brk})
		g.startBlock(g.newLabel())
	case *Continue:
		if len(g.loops) == 0 {
			g.errf(x.stmtLine(), "continue outside loop")
			return
		}
		g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: g.loops[len(g.loops)-1].cont})
		g.startBlock(g.newLabel())
	default:
		g.errf(s.stmtLine(), "unsupported statement %T", s)
	}
}

func (g *fgen) genLocalDecl(d *VarDecl) {
	if g.lookupCurrentScope(d.Name) {
		g.errf(d.Line, "redeclaration of %q", d.Name)
		return
	}
	if d.ArrayLen >= 0 || g.addrTaken[d.Name] {
		// Stack storage.
		size := int64(d.Type.Size())
		if d.ArrayLen >= 0 {
			size *= int64(d.ArrayLen)
		}
		off := (g.fn.localsTop + 3) &^ 3
		g.fn.localsTop = off + ((size + 3) &^ 3)
		lv := &localVar{typ: d.Type, isArray: d.ArrayLen >= 0, elems: d.ArrayLen, off: off}
		g.scope()[d.Name] = lv
		// Initializers.
		switch {
		case d.InitStr != "":
			for i := 0; i <= len(d.InitStr); i++ { // include NUL
				var b byte
				if i < len(d.InitStr) {
					b = d.InitStr[i]
				}
				v := g.loadImm(int64(b))
				g.emit(MOp{Name: "sb", Dst: regNone, S1: regSP, S2: v, Imm: off + int64(i), Ref: frameLocal})
			}
		case len(d.InitList) > 0:
			for i, e := range d.InitList {
				v, _ := g.genExpr(e)
				if d.Type.Size() == 1 {
					g.emit(MOp{Name: "sb", Dst: regNone, S1: regSP, S2: v, Imm: off + int64(i), Ref: frameLocal})
				} else {
					g.emit(MOp{Name: "sw", Dst: regNone, S1: regSP, S2: v, Imm: off + int64(i*4), Ref: frameLocal})
				}
			}
		case d.Init != nil:
			v, _ := g.genExpr(d.Init)
			if d.Type.Size() == 1 {
				g.emit(MOp{Name: "sb", Dst: regNone, S1: regSP, S2: v, Imm: off, Ref: frameLocal})
			} else {
				g.emit(MOp{Name: "sw", Dst: regNone, S1: regSP, S2: v, Imm: off, Ref: frameLocal})
			}
		}
		return
	}
	// Promoted scalar. An uninitialized local stays undefined until its
	// first assignment (C semantics) — emitting no initializer keeps the
	// live range from stretching to the declaration point.
	lv := &localVar{typ: d.Type, promoted: true, vreg: g.fn.newVreg()}
	g.scope()[d.Name] = lv
	if d.Init != nil {
		g.assignResult(lv.vreg, d.Init)
	}
}

func (g *fgen) lookupCurrentScope(name string) bool {
	_, ok := g.scope()[name]
	return ok
}
