package cc

// optimize runs the machine-level cleanup passes before register
// allocation ("All applications were compiled with maximum performance
// optimization", Sec. VII):
//
//   - block-local copy propagation: after `addi d, s, 0` (d, s virtual),
//     reads of d become reads of s until either is redefined;
//   - dead code elimination: side-effect-free operations whose virtual
//     destination is never read afterwards (and is not live out of the
//     block) are removed, iterated to a fixed point.
//
// Both passes work on virtual registers only; physical registers
// (sp, argument moves, call expansion) are never touched.
var optimizeEnabled = true

// SetOptimize toggles the optimization passes (ablation benchmarks).
func SetOptimize(on bool) { optimizeEnabled = on }

func optimize(fn *mfunc) {
	if !optimizeEnabled {
		return
	}
	for pass := 0; pass < 4; pass++ {
		changed := pruneUnreachable(fn)
		if copyPropagate(fn) {
			changed = true
		}
		if deadCodeEliminate(fn) {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// pruneUnreachable removes basic blocks no control path from the entry
// reaches: the continuation blocks codegen opens after return/break/
// continue (and the jumps and implicit epilogue that land in them) when
// every path already left the statement. Dead blocks cost text bytes
// and trip the binary analyzer's unreachable-code check (KB008) on
// every compiled program, so they die here rather than there.
func pruneUnreachable(fn *mfunc) bool {
	labelIdx := map[string]int{}
	for i, b := range fn.blocks {
		if b.label != "" {
			labelIdx[b.label] = i
		}
	}
	n := len(fn.blocks)
	reach := make([]bool, n)
	stack := []int{0}
	reach[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := fn.blocks[i]
		fall := true
		visit := func(j int) {
			if !reach[j] {
				reach[j] = true
				stack = append(stack, j)
			}
		}
		for k := range b.ops {
			op := &b.ops[k]
			switch {
			case op.Name == "j":
				if j, ok := labelIdx[op.Sym]; ok {
					visit(j)
				}
				fall = false
			case op.Name == "ret":
				fall = false
			case isBranchName(op.Name):
				if j, ok := labelIdx[op.Sym]; ok {
					visit(j)
				}
				fall = true
			default:
				// Straight-line op: a later transfer decides.
				fall = true
			}
		}
		if fall && i+1 < n {
			visit(i + 1)
		}
	}
	changed := false
	kept := fn.blocks[:0]
	for i, b := range fn.blocks {
		if reach[i] {
			kept = append(kept, b)
		} else {
			changed = true
		}
	}
	fn.blocks = kept
	return changed
}

// hasSideEffects reports whether removing the op could change observable
// behaviour (beyond its register result).
func hasSideEffects(m *MOp) bool {
	switch m.Name {
	case "sw", "sh", "sb", // memory writes
		"beq", "bne", "blt", "bge", "bltu", "bgeu", "j", "jal", "jalr",
		"call", "ret", "__call", "swt", "simcall", "halt":
		return true
	}
	// Writes to physical registers must stay (sp updates, arg moves).
	return m.Dst >= 0 && m.Dst < vregBase
}

// copyPropagate forwards block-local vreg-to-vreg copies.
func copyPropagate(fn *mfunc) bool {
	changed := false
	for _, b := range fn.blocks {
		alias := map[int]int{} // copy dst -> source
		invalidate := func(r int) {
			delete(alias, r)
			for d, s := range alias {
				if s == r {
					delete(alias, d)
				}
			}
		}
		resolve := func(r int) int {
			if s, ok := alias[r]; ok {
				return s
			}
			return r
		}
		for i := range b.ops {
			m := &b.ops[i]
			// Rewrite sources through the alias map.
			if m.S1 >= vregBase {
				if s := resolve(m.S1); s != m.S1 {
					m.S1 = s
					changed = true
				}
			}
			if m.S2 >= vregBase {
				if s := resolve(m.S2); s != m.S2 {
					m.S2 = s
					changed = true
				}
			}
			for k, a := range m.Args {
				if a >= vregBase {
					if s := resolve(a); s != a {
						m.Args[k] = s
						changed = true
					}
				}
			}
			// Record or invalidate copies.
			if m.Dst >= vregBase {
				invalidate(m.Dst)
				if m.Name == "addi" && m.Imm == 0 && m.S1 >= vregBase && m.Ref == frameNone {
					alias[m.Dst] = m.S1
				}
			}
		}
	}
	return changed
}

// deadCodeEliminate removes side-effect-free ops whose vreg result is
// never read. It reuses the block liveness computed the same way the
// allocator does.
func deadCodeEliminate(fn *mfunc) bool {
	liveOut, ok := blockLiveness(fn)
	if !ok {
		return false
	}
	changed := false
	for bi, b := range fn.blocks {
		live := map[int]bool{}
		for v := range liveOut[bi] {
			live[v] = true
		}
		// Walk backwards: an op whose vreg dst is not live (and that has
		// no side effects) dies.
		keep := make([]bool, len(b.ops))
		for i := len(b.ops) - 1; i >= 0; i-- {
			m := &b.ops[i]
			if m.Dst >= vregBase && !live[m.Dst] && !hasSideEffects(m) {
				keep[i] = false
				changed = true
				continue
			}
			// A call whose result nothing reads keeps its side effects
			// but drops the result move (a discarded expression
			// statement like `printf(...);`).
			if m.Name == "call" && m.Dst >= vregBase && !live[m.Dst] {
				m.Dst = regNone
				changed = true
			}
			keep[i] = true
			if m.Dst >= vregBase {
				delete(live, m.Dst)
			}
			if m.S1 >= vregBase {
				live[m.S1] = true
			}
			if m.S2 >= vregBase {
				live[m.S2] = true
			}
			for _, a := range m.Args {
				if a >= vregBase {
					live[a] = true
				}
			}
		}
		if changed {
			out := b.ops[:0]
			for i := range b.ops {
				if keep[i] {
					out = append(out, b.ops[i])
				}
			}
			b.ops = out
		}
	}
	return changed
}

// blockLiveness computes per-block live-out vreg sets (ok=false if the
// CFG references an unknown label; the allocator reports that error).
func blockLiveness(fn *mfunc) ([]map[int]bool, bool) {
	labelIdx := map[string]int{}
	for i, b := range fn.blocks {
		if b.label != "" {
			labelIdx[b.label] = i
		}
	}
	n := len(fn.blocks)
	succs := make([][]int, n)
	use := make([]map[int]bool, n)
	def := make([]map[int]bool, n)
	in := make([]map[int]bool, n)
	out := make([]map[int]bool, n)
	for i, b := range fn.blocks {
		use[i], def[i], in[i], out[i] = map[int]bool{}, map[int]bool{}, map[int]bool{}, map[int]bool{}
		fall := true
	scan:
		for k := len(b.ops) - 1; k >= 0; k-- {
			op := &b.ops[k]
			switch {
			case op.Name == "j":
				j, okL := labelIdx[op.Sym]
				if !okL {
					return nil, false
				}
				succs[i] = append(succs[i], j)
				fall = false
			case op.Name == "ret":
				fall = false
			case isBranchName(op.Name):
				j, okL := labelIdx[op.Sym]
				if !okL {
					return nil, false
				}
				succs[i] = append(succs[i], j)
			default:
				break scan
			}
		}
		if fall && i+1 < n {
			succs[i] = append(succs[i], i+1)
		}
		for k := len(b.ops) - 1; k >= 0; k-- {
			m := &b.ops[k]
			if m.Dst >= vregBase {
				def[i][m.Dst] = true
				delete(use[i], m.Dst)
			}
			if m.S1 >= vregBase {
				use[i][m.S1] = true
			}
			if m.S2 >= vregBase {
				use[i][m.S2] = true
			}
			for _, a := range m.Args {
				if a >= vregBase {
					use[i][a] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			for _, sj := range succs[i] {
				for v := range in[sj] {
					if !out[i][v] {
						out[i][v] = true
						changed = true
					}
				}
			}
			for v := range out[i] {
				if !def[i][v] && !in[i][v] {
					in[i][v] = true
					changed = true
				}
			}
			for v := range use[i] {
				if !in[i][v] {
					in[i][v] = true
					changed = true
				}
			}
		}
	}
	return out, true
}
