package cc_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The generative differential test: random MiniC programs (expression
// trees, assignments, fixed-trip-count loops over an array) are
// compiled and simulated on RISC and VLIW4, and the result is compared
// against direct evaluation with Go int32 semantics. This exercises the
// code generator, register allocator (including spills), scheduler and
// simulator semantics together.

type genState struct {
	rng  *rand.Rand
	vars []string
	vals map[string]int32
	buf  strings.Builder
}

// expr builds a random expression tree of the given depth and returns
// (source text, value) — value computed with the same int32 semantics
// the simulator implements.
func (g *genState) expr(depth int) (string, int32) {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		if g.rng.Intn(2) == 0 && len(g.vars) > 0 {
			v := g.vars[g.rng.Intn(len(g.vars))]
			return v, g.vals[v]
		}
		c := int32(g.rng.Intn(2001) - 1000)
		return fmt.Sprintf("%d", c), c
	}
	switch g.rng.Intn(10) {
	case 0: // unary minus
		s, v := g.expr(depth - 1)
		return fmt.Sprintf("(- %s)", s), -v
	case 1: // bitwise not
		s, v := g.expr(depth - 1)
		return fmt.Sprintf("(~%s)", s), ^v
	case 2: // comparison
		ls, lv := g.expr(depth - 1)
		rs, rv := g.expr(depth - 1)
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		op := ops[g.rng.Intn(len(ops))]
		var b bool
		switch op {
		case "<":
			b = lv < rv
		case "<=":
			b = lv <= rv
		case ">":
			b = lv > rv
		case ">=":
			b = lv >= rv
		case "==":
			b = lv == rv
		case "!=":
			b = lv != rv
		}
		r := int32(0)
		if b {
			r = 1
		}
		return fmt.Sprintf("(%s %s %s)", ls, op, rs), r
	case 3: // shift by small constant
		s, v := g.expr(depth - 1)
		sh := uint(g.rng.Intn(5))
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("(%s << %d)", s, sh), v << sh
		}
		return fmt.Sprintf("(%s >> %d)", s, sh), v >> sh
	default: // binary arithmetic / bitwise
		ls, lv := g.expr(depth - 1)
		rs, rv := g.expr(depth - 1)
		switch g.rng.Intn(6) {
		case 0:
			return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
		case 1:
			return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
		case 2:
			return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
		case 3:
			return fmt.Sprintf("(%s & %s)", ls, rs), lv & rv
		case 4:
			return fmt.Sprintf("(%s | %s)", ls, rs), lv | rv
		default:
			return fmt.Sprintf("(%s ^ %s)", ls, rs), lv ^ rv
		}
	}
}

// program emits a random function body and returns the expected exit
// code (masked to a byte so it fits the process exit convention).
func (g *genState) program() (string, int32) {
	g.buf.WriteString("int main() {\n")
	// Declarations.
	nv := 3 + g.rng.Intn(5)
	for i := 0; i < nv; i++ {
		name := fmt.Sprintf("v%d", i)
		val := int32(g.rng.Intn(201) - 100)
		g.vars = append(g.vars, name)
		g.vals[name] = val
		fmt.Fprintf(&g.buf, "    int %s = %d;\n", name, val)
	}
	// Random assignments.
	for i := 0; i < 6+g.rng.Intn(10); i++ {
		v := g.vars[g.rng.Intn(len(g.vars))]
		s, val := g.expr(3)
		fmt.Fprintf(&g.buf, "    %s = %s;\n", v, s)
		g.vals[v] = val
	}
	// A fixed-trip loop mixing the variables through an array.
	fmt.Fprintf(&g.buf, "    int arr[8];\n")
	arr := make([]int32, 8)
	for i := 0; i < 8; i++ {
		v := g.vars[i%len(g.vars)]
		fmt.Fprintf(&g.buf, "    arr[%d] = %s + %d;\n", i, v, i)
		arr[i] = g.vals[v] + int32(i)
	}
	fmt.Fprintf(&g.buf, "    int acc = 0;\n")
	var acc int32
	fmt.Fprintf(&g.buf, "    for (int i = 0; i < 8; i++) acc = acc * 3 + arr[i];\n")
	for i := 0; i < 8; i++ {
		acc = acc*3 + arr[i]
	}
	// Fold everything into the exit code.
	s, val := g.expr(3)
	fmt.Fprintf(&g.buf, "    return (acc ^ %s) & 0xFF;\n}\n", s)
	return g.buf.String(), (acc ^ val) & 0xFF
}

// newGen builds a seeded generator state.
func newGen(seed int64) *genState {
	return &genState{rng: rand.New(rand.NewSource(seed)), vals: map[string]int32{}}
}

func TestRandomProgramsDifferential(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		g := &genState{rng: rand.New(rand.NewSource(int64(1000 + trial))), vals: map[string]int32{}}
		src, want := g.program()
		for _, isaName := range []string{"RISC", "VLIW4"} {
			code, _ := run(t, isaName, src)
			if code != want {
				t.Fatalf("trial %d on %s: exit %d, reference %d\n%s",
					trial, isaName, code, want, src)
			}
		}
	}
}
