package cc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// emitFunction runs register allocation, frame layout, pseudo-op
// expansion and VLIW scheduling, and renders the function as assembly
// text (with .func/.loc debug directives and .isa switches).
func emitFunction(model *isa.Model, fn *mfunc, file string) (string, error) {
	optimize(fn)
	res, err := allocate(fn)
	if err != nil {
		return "", err
	}

	hasCall := false
	for _, b := range fn.blocks {
		for i := range b.ops {
			if b.ops[i].Name == "call" {
				hasCall = true
			}
		}
	}

	// Frame layout (from sp upward): outgoing args | spills | locals |
	// saved callee regs | ra.
	outBase := int64(0)
	spillBase := outBase + int64(fn.maxOutArg)
	localBase := spillBase + int64(res.spillSlots)*4
	saveBase := localBase + fn.localsTop
	raOff := saveBase + int64(len(res.usedCallee))*4
	frame := raOff
	if hasCall {
		frame += 4
	}
	frame = (frame + 15) &^ 15

	// Fix up frame-relative immediates.
	for _, b := range fn.blocks {
		for i := range b.ops {
			m := &b.ops[i]
			switch m.Ref {
			case frameLocal:
				m.Imm += localBase
			case frameSpill:
				m.Imm += spillBase
			case frameIncoming:
				m.Imm += frame
			}
			if m.Ref != frameNone {
				m.Ref = frameNone
				if m.Imm < -(1<<15) || m.Imm >= 1<<15 {
					return "", fmt.Errorf("cc: %s: frame offset %d exceeds 16-bit range (frame too large)",
						fn.srcName, m.Imm)
				}
			}
		}
	}

	// Expand prologue, call and ret pseudo ops.
	prologue := buildPrologue(frame, raOff, saveBase, res.usedCallee, hasCall, fn.line)
	for bi, b := range fn.blocks {
		var out []MOp
		if bi == 0 {
			out = append(out, prologue...)
		}
		for _, m := range b.ops {
			switch m.Name {
			case "call":
				out = append(out, expandCall(m, spillBase)...)
			case "ret":
				out = append(out, expandRet(m, frame, raOff, saveBase, res.usedCallee, hasCall)...)
			default:
				out = append(out, m)
			}
		}
		b.ops = out
	}

	// Schedule and render.
	var sb strings.Builder
	fmt.Fprintf(&sb, "\t.isa %s\n", fn.isa.Name)
	fmt.Fprintf(&sb, "\t.global %s\n\t.func %s\n%s:\n", fn.name, fn.name, fn.name)
	lastLine := -1
	for _, b := range fn.blocks {
		if b.label != "" {
			fmt.Fprintf(&sb, "%s:\n", b.label)
		}
		bundles := scheduleBlock(model, b.ops, fn.isa.Issue)
		for _, bundle := range bundles {
			if line := bundleLine(bundle); line > 0 && line != lastLine {
				fmt.Fprintf(&sb, "\t.loc %q %d\n", file, line)
				lastLine = line
			}
			renderBundle(&sb, model, fn, bundle)
		}
	}
	sb.WriteString("\t.endfunc\n")
	return sb.String(), nil
}

func buildPrologue(frame, raOff, saveBase int64, usedCallee []int, hasCall bool, line int) []MOp {
	var out []MOp
	if frame == 0 {
		return nil
	}
	out = append(out, MOp{Name: "addi", Dst: regSP, S1: regSP, Imm: -frame, Line: line})
	if hasCall {
		out = append(out, MOp{Name: "sw", Dst: regNone, S1: regSP, S2: regRA, Imm: raOff, Line: line})
	}
	for i, r := range usedCallee {
		out = append(out, MOp{Name: "sw", Dst: regNone, S1: regSP, S2: r,
			Imm: saveBase + int64(i)*4, Line: line})
	}
	return out
}

// expandCall lowers the call pseudo-op into argument moves, the call
// marker (rendered as jal, possibly wrapped in SWITCHTARGET), and the
// result move.
func expandCall(m MOp, spillBase int64) []MOp {
	var out []MOp
	scratchNext := scratch0
	nextScratch := func() int {
		r := scratchNext
		if scratchNext == scratch0 {
			scratchNext = scratch1
		} else {
			scratchNext = scratch0
		}
		return r
	}
	for i, a := range m.Args {
		src := a
		if isSpillRef(a) {
			s := nextScratch()
			out = append(out, MOp{Name: "lw", Dst: s, S1: regSP,
				Imm: spillBase + int64(spillSlotOf(a)*4), Line: m.Line})
			src = s
		}
		if i < 4 {
			out = append(out, MOp{Name: "addi", Dst: regA0 + i, S1: src, Imm: 0, Line: m.Line})
		} else {
			out = append(out, MOp{Name: "sw", Dst: regNone, S1: regSP, S2: src,
				Imm: int64((i - 4) * 4), Line: m.Line})
		}
	}
	out = append(out, MOp{Name: "__call", Dst: regNone, S1: regNone, S2: regNone,
		Sym: m.Sym, SymOff: m.SymOff, Line: m.Line})
	if m.Dst != regNone {
		out = append(out, MOp{Name: "addi", Dst: m.Dst, S1: regA0, Imm: 0, Line: m.Line})
	}
	return out
}

func expandRet(m MOp, frame, raOff, saveBase int64, usedCallee []int, hasCall bool) []MOp {
	var out []MOp
	if m.S1 != regNone {
		out = append(out, MOp{Name: "addi", Dst: regA0, S1: m.S1, Imm: 0, Line: m.Line})
	}
	for i, r := range usedCallee {
		out = append(out, MOp{Name: "lw", Dst: r, S1: regSP,
			Imm: saveBase + int64(i)*4, Line: m.Line})
	}
	if hasCall {
		out = append(out, MOp{Name: "lw", Dst: regRA, S1: regSP, Imm: raOff, Line: m.Line})
	}
	if frame != 0 {
		out = append(out, MOp{Name: "addi", Dst: regSP, S1: regSP, Imm: frame, Line: m.Line})
	}
	out = append(out, MOp{Name: "jalr", Dst: regZero, S1: regRA, Line: m.Line})
	return out
}

func bundleLine(bundle []MOp) int {
	line := 0
	for i := range bundle {
		if l := bundle[i].Line; l > 0 && (line == 0 || l < line) {
			line = l
		}
	}
	return line
}

// renderBundle writes one scheduled instruction as assembly text,
// expanding the __call marker into its (possibly cross-ISA) sequence.
func renderBundle(sb *strings.Builder, model *isa.Model, fn *mfunc, bundle []MOp) {
	if len(bundle) == 1 && bundle[0].Name == "__call" {
		m := bundle[0]
		if m.SymOff != 0 {
			callee := model.ISAByID(int(m.SymOff - 1))
			fmt.Fprintf(sb, "\tswt %s\n", callee.Name)
			fmt.Fprintf(sb, "\t.isa %s\n", callee.Name)
			fmt.Fprintf(sb, "\tjal %s\n", m.Sym)
			fmt.Fprintf(sb, "\tswt %s\n", fn.isa.Name)
			fmt.Fprintf(sb, "\t.isa %s\n", fn.isa.Name)
		} else {
			fmt.Fprintf(sb, "\tjal %s\n", m.Sym)
		}
		return
	}
	if fn.isa.Issue == 1 || len(bundle) == 1 {
		for i := range bundle {
			fmt.Fprintf(sb, "\t%s\n", renderOp(&bundle[i]))
		}
		return
	}
	parts := make([]string, len(bundle))
	for i := range bundle {
		parts[i] = renderOp(&bundle[i])
	}
	fmt.Fprintf(sb, "\t{ %s }\n", strings.Join(parts, " ; "))
}

// renderOp formats one machine op as assembly text.
func renderOp(m *MOp) string {
	r := func(x int) string { return fmt.Sprintf("r%d", x) }
	symImm := func() string {
		if m.Sym == "" {
			return fmt.Sprintf("%d", m.Imm)
		}
		if m.SymOff != 0 {
			return fmt.Sprintf("%s%+d", m.Sym, m.SymOff)
		}
		return m.Sym
	}
	switch m.Name {
	case "lui":
		if m.Sym != "" {
			return fmt.Sprintf("lui %s, %%hi(%s)", r(m.Dst), symImm())
		}
		return fmt.Sprintf("lui %s, %d", r(m.Dst), m.Imm)
	case "ori", "andi", "xori", "addi", "slti", "sltiu", "slli", "srli", "srai":
		if m.Sym != "" && m.Name == "ori" {
			return fmt.Sprintf("ori %s, %s, %%lo(%s)", r(m.Dst), r(m.S1), symImm())
		}
		return fmt.Sprintf("%s %s, %s, %d", m.Name, r(m.Dst), r(m.S1), m.Imm)
	case "lw", "lh", "lhu", "lb", "lbu":
		return fmt.Sprintf("%s %s, %d(%s)", m.Name, r(m.Dst), m.Imm, r(m.S1))
	case "sw", "sh", "sb":
		return fmt.Sprintf("%s %s, %d(%s)", m.Name, r(m.S2), m.Imm, r(m.S1))
	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		return fmt.Sprintf("%s %s, %s, %s", m.Name, r(m.S1), r(m.S2), m.Sym)
	case "j":
		return fmt.Sprintf("j %s", m.Sym)
	case "jal":
		return fmt.Sprintf("jal %s", m.Sym)
	case "jalr":
		return fmt.Sprintf("jalr %s, %s", r(m.Dst), r(m.S1))
	case "nop", "halt":
		return m.Name
	case "swt", "simcall":
		return fmt.Sprintf("%s %d", m.Name, m.Imm)
	default:
		// Three-register format.
		return fmt.Sprintf("%s %s, %s, %s", m.Name, r(m.Dst), r(m.S1), r(m.S2))
	}
}
