package cc

import (
	"fmt"
)

type parser struct {
	file  string
	lx    *lexer
	tok   token
	ahead []token
}

// Parse parses one MiniC translation unit.
func Parse(file, src string) (*Unit, error) {
	p := &parser{file: file, lx: newLexer(file, src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	u := &Unit{File: file}
	for p.tok.kind != tokEOF {
		if err := p.topLevel(u); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	if len(p.ahead) > 0 {
		p.tok = p.ahead[0]
		p.ahead = p.ahead[1:]
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peek looks n tokens ahead (n >= 1).
func (p *parser) peek(n int) (token, error) {
	for len(p.ahead) < n {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.ahead = append(p.ahead, t)
	}
	return p.ahead[n-1], nil
}

func (p *parser) isPunct(s string) bool { return p.tok.kind == tokPunct && p.tok.text == s }
func (p *parser) isKw(s string) bool    { return p.tok.kind == tokKeyword && p.tok.text == s }

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, got %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected identifier, got %s", p.tok)
	}
	s := p.tok.text
	return s, p.advance()
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	return p.isKw("int") || p.isKw("uint") || p.isKw("char") || p.isKw("void") || p.isKw("const")
}

// parseType parses `[const] base *...`.
func (p *parser) parseType() (*Type, bool, error) {
	isConst := false
	if p.isKw("const") {
		isConst = true
		if err := p.advance(); err != nil {
			return nil, false, err
		}
	}
	var t *Type
	switch {
	case p.isKw("int"):
		t = typeInt
	case p.isKw("uint"):
		t = typeUint
	case p.isKw("char"):
		t = typeChar
	case p.isKw("void"):
		t = typeVoid
	default:
		return nil, false, p.errf("expected type, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, false, err
	}
	for p.isPunct("*") {
		t = ptrTo(t)
		if err := p.advance(); err != nil {
			return nil, false, err
		}
	}
	return t, isConst, nil
}

// topLevel parses one global declaration or function definition.
func (p *parser) topLevel(u *Unit) error {
	isaAttr := ""
	if p.isKw("__isa") {
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		isaAttr = name
		if err := p.expectPunct(")"); err != nil {
			return err
		}
	}
	line := p.tok.line
	t, isConst, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.isPunct("(") {
		return p.funcRest(u, t, name, isaAttr, line)
	}
	if isaAttr != "" {
		return p.errf("__isa attribute only applies to functions")
	}
	// Global variable(s).
	for {
		vd, err := p.varRest(t, name, isConst, line)
		if err != nil {
			return err
		}
		u.Globals = append(u.Globals, vd)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return err
			}
			if name, err = p.expectIdent(); err != nil {
				return err
			}
			continue
		}
		break
	}
	return p.expectPunct(";")
}

// varRest parses the part of a variable declaration after the name:
// optional [len] and initializer.
func (p *parser) varRest(t *Type, name string, isConst bool, line int) (*VarDecl, error) {
	if t.Kind == TVoid {
		return nil, p.errf("variable %s has void type", name)
	}
	vd := &VarDecl{Name: name, Type: t, ArrayLen: -1, Const: isConst, Line: line}
	if p.isPunct("[") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct("]") {
			vd.ArrayLen = 0 // from initializer
		} else {
			n, err := p.constExpr()
			if err != nil {
				return nil, err
			}
			if n <= 0 || n > 1<<24 {
				return nil, p.errf("bad array length %d", n)
			}
			vd.ArrayLen = int(n)
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.isPunct("=") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.isPunct("{"):
			if vd.ArrayLen < 0 {
				return nil, p.errf("brace initializer on scalar %s", name)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			for !p.isPunct("}") {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				vd.InitList = append(vd.InitList, e)
				if p.isPunct(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if vd.ArrayLen == 0 {
				vd.ArrayLen = len(vd.InitList)
			}
			if len(vd.InitList) > vd.ArrayLen {
				return nil, p.errf("%d initializers for array of %d", len(vd.InitList), vd.ArrayLen)
			}
		case p.tok.kind == tokString && vd.ArrayLen >= 0 && t.Kind == TChar:
			vd.InitStr = p.tok.str
			if vd.ArrayLen == 0 {
				vd.ArrayLen = len(vd.InitStr) + 1
			}
			if len(vd.InitStr)+1 > vd.ArrayLen {
				return nil, p.errf("string too long for array %s", name)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			vd.Init = e
		}
	}
	if vd.ArrayLen == 0 {
		return nil, p.errf("array %s needs a length or initializer", name)
	}
	return vd, nil
}

// constExpr parses and folds a constant expression (globals, array
// lengths).
func (p *parser) constExpr() (int64, error) {
	e, err := p.assignExpr()
	if err != nil {
		return 0, err
	}
	v, ok := foldConst(e)
	if !ok {
		return 0, p.errf("expression is not constant")
	}
	return v, nil
}

// foldConst evaluates a constant expression tree.
func foldConst(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *NumLit:
		return x.Val, true
	case *Unary:
		v, ok := foldConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "-":
			return int64(int32(-v)), true
		case "~":
			return int64(^uint32(v)), true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Binary:
		l, ok1 := foldConst(x.L)
		r, ok2 := foldConst(x.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		a, b := uint32(l), uint32(r)
		switch x.Op {
		case "+":
			return int64(int32(a + b)), true
		case "-":
			return int64(int32(a - b)), true
		case "*":
			return int64(int32(a * b)), true
		case "/":
			if b == 0 {
				return 0, false
			}
			return int64(int32(a) / int32(b)), true
		case "%":
			if b == 0 {
				return 0, false
			}
			return int64(int32(a) % int32(b)), true
		case "<<":
			return int64(int32(a << (b & 31))), true
		case ">>":
			return int64(int32(a) >> (b & 31)), true
		case "&":
			return int64(int32(a & b)), true
		case "|":
			return int64(int32(a | b)), true
		case "^":
			return int64(int32(a ^ b)), true
		}
	case *Cast:
		v, ok := foldConst(x.X)
		if !ok {
			return 0, false
		}
		if x.To.Kind == TChar {
			return int64(uint8(v)), true
		}
		return int64(int32(v)), true
	}
	return 0, false
}

// funcRest parses a function definition or prototype after the name.
func (p *parser) funcRest(u *Unit, ret *Type, name, isaAttr string, line int) error {
	fd := &FuncDecl{Name: name, Ret: ret, ISA: isaAttr, Line: line}
	if err := p.advance(); err != nil { // consume '('
		return err
	}
	if p.isKw("void") {
		if nxt, err := p.peek(1); err == nil && nxt.kind == tokPunct && nxt.text == ")" {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	for !p.isPunct(")") {
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind == tokPunct && p.tok.text == "*" {
			return p.errf("unexpected *")
		}
		if p.tok.text == "." || p.tok.text == "..." {
			fd.Vararg = true
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		t, _, err := p.parseType()
		if err != nil {
			return err
		}
		pname := ""
		if p.tok.kind == tokIdent {
			if pname, err = p.expectIdent(); err != nil {
				return err
			}
		}
		// Array parameters decay to pointers.
		if p.isPunct("[") {
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind == tokNumber {
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return err
			}
			t = ptrTo(t)
		}
		fd.Params = append(fd.Params, Param{Name: pname, Type: t})
	}
	if err := p.advance(); err != nil { // consume ')'
		return err
	}
	if p.isPunct(";") {
		u.Funcs = append(u.Funcs, fd) // prototype
		return p.advance()
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	fd.Body = body
	u.Funcs = append(u.Funcs, fd)
	return nil
}

// ---------------------------------------------------------------------
// Statements

func (p *parser) block() (*Block, error) {
	b := &Block{stmtBase: stmtBase{p.tok.line}}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.tok.kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, p.advance()
}

func (p *parser) stmt() (Stmt, error) {
	line := p.tok.line
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.isPunct(";"):
		return &Block{stmtBase: stmtBase{line}}, p.advance()
	case p.isTypeStart():
		return p.declStmt()
	case p.isKw("if"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.isKw("else") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if els, err = p.stmt(); err != nil {
				return nil, err
			}
		}
		return &If{stmtBase{line}, cond, then, els}, nil
	case p.isKw("while"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{stmtBase{line}, cond, body}, nil
	case p.isKw("for"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var init, post Stmt
		var cond Expr
		var err error
		if !p.isPunct(";") {
			if p.isTypeStart() {
				init, err = p.declStmt()
				if err != nil {
					return nil, err
				}
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				init = &ExprStmt{stmtBase{line}, e}
				if err := p.expectPunct(";"); err != nil {
					return nil, err
				}
			}
		} else if err = p.advance(); err != nil {
			return nil, err
		}
		if !p.isPunct(";") {
			if cond, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			post = &ExprStmt{stmtBase{line}, e}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &For{stmtBase{line}, init, cond, post, body}, nil
	case p.isKw("return"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		var e Expr
		var err error
		if !p.isPunct(";") {
			if e, err = p.expr(); err != nil {
				return nil, err
			}
		}
		return &Return{stmtBase{line}, e}, p.expectPunct(";")
	case p.isKw("break"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Break{stmtBase{line}}, p.expectPunct(";")
	case p.isKw("continue"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Continue{stmtBase{line}}, p.expectPunct(";")
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{stmtBase{line}, e}, p.expectPunct(";")
	}
}

// declStmt parses `type name [len] [= init] {, name ...} ;`.
func (p *parser) declStmt() (Stmt, error) {
	line := p.tok.line
	t, isConst, err := p.parseType()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{stmtBase: stmtBase{line}}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		vd, err := p.varRest(t, name, isConst, line)
		if err != nil {
			return nil, err
		}
		ds.Decls = append(ds.Decls, vd)
		if !p.isPunct(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return ds, p.expectPunct(";")
}

// ---------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Expr, error) {
	line := p.tok.line
	lhs, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokPunct {
		switch p.tok.text {
		case "=":
			if err := p.advance(); err != nil {
				return nil, err
			}
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{exprBase{line}, "", lhs, rhs}, nil
		case "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
			op := p.tok.text[:len(p.tok.text)-1]
			if err := p.advance(); err != nil {
				return nil, err
			}
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{exprBase{line}, op, lhs, rhs}, nil
		}
	}
	return lhs, nil
}

var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binExpr(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.unaryExpr()
	}
	line := p.tok.line
	lhs, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		if p.tok.kind == tokPunct {
			for _, op := range binLevels[level] {
				if p.tok.text == op {
					matched = op
					break
				}
			}
		}
		if matched == "" {
			return lhs, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.binExpr(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase{line}, matched, lhs, rhs}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	line := p.tok.line
	if p.tok.kind == tokPunct {
		switch p.tok.text {
		case "-", "!", "~", "*", "&":
			op := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase{line}, op, x}, nil
		case "+":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.unaryExpr()
		case "++", "--":
			dec := p.tok.text == "--"
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &IncDec{exprBase{line}, x, dec, false}, nil
		case "(":
			// Cast?
			nxt, err := p.peek(1)
			if err != nil {
				return nil, err
			}
			if nxt.kind == tokKeyword && (nxt.text == "int" || nxt.text == "uint" || nxt.text == "char" || nxt.text == "void") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				t, _, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.unaryExpr()
				if err != nil {
					return nil, err
				}
				return &Cast{exprBase{line}, t, x}, nil
			}
		}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		line := p.tok.line
		switch {
		case p.isPunct("["):
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &Index{exprBase{line}, e, idx}
		case p.isPunct("++"), p.isPunct("--"):
			dec := p.tok.text == "--"
			if err := p.advance(); err != nil {
				return nil, err
			}
			e = &IncDec{exprBase{line}, e, dec, true}
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (Expr, error) {
	line := p.tok.line
	switch {
	case p.tok.kind == tokNumber, p.tok.kind == tokChar:
		v := p.tok.val
		return &NumLit{exprBase{line}, v}, p.advance()
	case p.tok.kind == tokString:
		s := p.tok.str
		return &StrLit{exprBase{line}, s}, p.advance()
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &Call{exprBase{line}, name, nil}
			for !p.isPunct(")") {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.isPunct(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			return call, p.advance()
		}
		return &Ident{exprBase{line}, name}, nil
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	}
	return nil, p.errf("expected expression, got %s", p.tok)
}
