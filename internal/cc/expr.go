package cc

// addr describes a memory location: sym(+symOff) + base + off, where
// any component may be absent. Ref tags frame-relative offsets.
type addrDesc struct {
	sym    string
	symOff int64
	base   int
	off    int64
	ref    frameRef
}

// loadImm materializes a 32-bit constant in a fresh vreg.
func (g *fgen) loadImm(v int64) int {
	d := g.fn.newVreg()
	v32 := uint32(v)
	sv := int64(int32(v32))
	if sv >= -(1<<15) && sv < 1<<15 {
		g.emit(MOp{Name: "addi", Dst: d, S1: regZero, Imm: sv})
		return d
	}
	hi := int64(v32 >> 16)
	lo := int64(v32 & 0xFFFF)
	g.emit(MOp{Name: "lui", Dst: d, S1: regNone, Imm: hi})
	if lo != 0 {
		g.emit(MOp{Name: "ori", Dst: d, S1: d, Imm: lo})
	}
	return d
}

// loadSym materializes the address sym+off in a fresh vreg.
func (g *fgen) loadSym(sym string, off int64) int {
	d := g.fn.newVreg()
	g.emit(MOp{Name: "lui", Dst: d, S1: regNone, Sym: sym, SymOff: off, Imm: 0})
	g.emit(MOp{Name: "ori", Dst: d, S1: d, Sym: sym, SymOff: off, Imm: 0})
	return d
}

func (g *fgen) mov(dst, src int) {
	g.emit(MOp{Name: "addi", Dst: dst, S1: src, Imm: 0})
}

// assignResult evaluates e and routes the result into dstVreg,
// retargeting the final producing operation instead of emitting a copy
// whenever the result is a fresh temporary defined by the last
// operation of the current block (move coalescing).
func (g *fgen) assignResult(dstVreg int, e Expr) {
	mark := g.fn.nextVreg
	v, _ := g.genExpr(e)
	ops := g.cur.ops
	if v >= mark && len(ops) > 0 && ops[len(ops)-1].Dst == v {
		g.cur.ops[len(ops)-1].Dst = dstVreg
		return
	}
	g.mov(dstVreg, v)
}

// materialize turns an address descriptor into a single register plus a
// small immediate offset suitable for a load/store.
func (g *fgen) materialize(a addrDesc) (base int, off int64, ref frameRef) {
	if a.sym != "" {
		v := g.loadSym(a.sym, a.symOff+a.off)
		if a.base != regNone {
			d := g.fn.newVreg()
			g.emit(MOp{Name: "add", Dst: d, S1: v, S2: a.base})
			return d, 0, frameNone
		}
		return v, 0, frameNone
	}
	if a.base == regNone {
		return g.loadImm(a.off), 0, frameNone
	}
	if a.ref != frameNone {
		return a.base, a.off, a.ref
	}
	if a.off >= -(1<<15) && a.off < 1<<15 {
		return a.base, a.off, frameNone
	}
	v := g.loadImm(a.off)
	d := g.fn.newVreg()
	g.emit(MOp{Name: "add", Dst: d, S1: a.base, S2: v})
	return d, 0, frameNone
}

// loadFrom loads a value of type t from the address.
func (g *fgen) loadFrom(a addrDesc, t *Type) int {
	base, off, ref := g.materialize(a)
	d := g.fn.newVreg()
	name := "lw"
	if t.Size() == 1 {
		name = "lbu"
	}
	g.emit(MOp{Name: name, Dst: d, S1: base, Imm: off, Ref: ref})
	return d
}

// storeTo stores v (of type t) to the address.
func (g *fgen) storeTo(a addrDesc, t *Type, v int) {
	base, off, ref := g.materialize(a)
	name := "sw"
	if t.Size() == 1 {
		name = "sb"
	}
	g.emit(MOp{Name: name, Dst: regNone, S1: base, S2: v, Imm: off, Ref: ref})
}

// genAddr computes the location of an lvalue expression and its element
// type. Promoted locals have no address (caller handles them first).
func (g *fgen) genAddr(e Expr) (addrDesc, *Type) {
	switch x := e.(type) {
	case *Ident:
		if lv := g.lookup(x.Name); lv != nil {
			if lv.promoted {
				g.errf(x.exprLine(), "internal: address of promoted variable %q", x.Name)
				return addrDesc{base: regNone}, typeInt
			}
			return addrDesc{base: regSP, off: lv.off, ref: frameLocal}, lv.typ
		}
		if gd, ok := g.c.globals[x.Name]; ok {
			return addrDesc{sym: x.Name, base: regNone}, gd.Type
		}
		g.errf(x.exprLine(), "undefined variable %q", x.Name)
		return addrDesc{base: regNone}, typeInt
	case *Index:
		return g.genIndexAddr(x)
	case *Unary:
		if x.Op == "*" {
			v, t := g.genExpr(x.X)
			if t.Kind != TPtr {
				g.errf(x.exprLine(), "dereference of non-pointer (%s)", t)
				return addrDesc{base: v}, typeInt
			}
			return addrDesc{base: v}, t.Elem
		}
	}
	g.errf(e.exprLine(), "expression is not an lvalue")
	return addrDesc{base: regNone}, typeInt
}

// genIndexAddr computes &a[i] with constant-offset folding.
func (g *fgen) genIndexAddr(x *Index) (addrDesc, *Type) {
	var a addrDesc
	var elem *Type

	switch arr := x.Arr.(type) {
	case *Ident:
		if lv := g.lookup(arr.Name); lv != nil {
			switch {
			case lv.isArray:
				a = addrDesc{base: regSP, off: lv.off, ref: frameLocal}
				elem = lv.typ
			case lv.typ.Kind == TPtr:
				var pv int
				if lv.promoted {
					pv = lv.vreg
				} else {
					pv = g.loadFrom(addrDesc{base: regSP, off: lv.off, ref: frameLocal}, lv.typ)
				}
				a = addrDesc{base: pv}
				elem = lv.typ.Elem
			default:
				g.errf(x.exprLine(), "%q is not indexable", arr.Name)
				return addrDesc{base: regNone}, typeInt
			}
		} else if gd, ok := g.c.globals[arr.Name]; ok {
			if gd.ArrayLen >= 0 {
				a = addrDesc{sym: arr.Name, base: regNone}
				elem = gd.Type
			} else if gd.Type.Kind == TPtr {
				pv := g.loadFrom(addrDesc{sym: arr.Name, base: regNone}, gd.Type)
				a = addrDesc{base: pv}
				elem = gd.Type.Elem
			} else {
				g.errf(x.exprLine(), "%q is not indexable", arr.Name)
				return addrDesc{base: regNone}, typeInt
			}
		} else {
			g.errf(x.exprLine(), "undefined variable %q", arr.Name)
			return addrDesc{base: regNone}, typeInt
		}
	default:
		v, t := g.genExpr(x.Arr)
		if t.Kind != TPtr {
			g.errf(x.exprLine(), "indexed expression is not a pointer (%s)", t)
			return addrDesc{base: regNone}, typeInt
		}
		a = addrDesc{base: v}
		elem = t.Elem
	}

	size := int64(elem.Size())
	if cv, ok := foldConst(x.Idx); ok {
		a.off += cv * size
		if a.sym != "" {
			a.symOff += cv * size
			a.off -= cv * size
		}
		return a, elem
	}
	iv, _ := g.genExpr(x.Idx)
	scaled := iv
	if size > 1 {
		scaled = g.fn.newVreg()
		shift := int64(2)
		g.emit(MOp{Name: "slli", Dst: scaled, S1: iv, Imm: shift})
	}
	if a.base == regNone {
		a.base = scaled
		return a, elem
	}
	// base+scaled must collapse into one register; frame offsets are
	// preserved by adding sp-relative later.
	if a.ref != frameNone {
		d := g.fn.newVreg()
		g.emit(MOp{Name: "addi", Dst: d, S1: a.base, Imm: a.off, Ref: a.ref})
		a = addrDesc{base: d}
	}
	d := g.fn.newVreg()
	g.emit(MOp{Name: "add", Dst: d, S1: a.base, S2: scaled})
	a.base = d
	if a.ref == frameNone && a.sym == "" {
		// keep remaining constant offset
	} else {
		a.off = 0
	}
	return a, elem
}

// ---------------------------------------------------------------------
// Expressions

// genExpr evaluates an expression into a fresh (or promoted) register.
func (g *fgen) genExpr(e Expr) (int, *Type) {
	switch x := e.(type) {
	case *NumLit:
		return g.loadImm(x.Val), typeInt
	case *StrLit:
		return g.loadSym(g.c.strLabel(x.Val), 0), ptrTo(typeChar)
	case *Ident:
		if lv := g.lookup(x.Name); lv != nil {
			if lv.promoted {
				return lv.vreg, lv.typ
			}
			if lv.isArray {
				d := g.fn.newVreg()
				g.emit(MOp{Name: "addi", Dst: d, S1: regSP, Imm: lv.off, Ref: frameLocal})
				return d, ptrTo(lv.typ)
			}
			return g.loadFrom(addrDesc{base: regSP, off: lv.off, ref: frameLocal}, lv.typ), lv.typ
		}
		if gd, ok := g.c.globals[x.Name]; ok {
			if gd.ArrayLen >= 0 {
				return g.loadSym(x.Name, 0), ptrTo(gd.Type)
			}
			return g.loadFrom(addrDesc{sym: x.Name, base: regNone}, gd.Type), gd.Type
		}
		g.errf(x.exprLine(), "undefined variable %q", x.Name)
		return g.loadImm(0), typeInt
	case *Unary:
		return g.genUnary(x)
	case *Binary:
		return g.genBinary(x)
	case *Assign:
		return g.genAssign(x)
	case *IncDec:
		return g.genIncDec(x)
	case *Call:
		return g.genCall(x)
	case *Index:
		a, elem := g.genIndexAddr(x)
		return g.loadFrom(a, elem), elem
	case *Cast:
		v, _ := g.genExpr(x.X)
		if x.To.Kind == TChar {
			d := g.fn.newVreg()
			g.emit(MOp{Name: "andi", Dst: d, S1: v, Imm: 0xFF})
			return d, typeChar
		}
		return v, x.To
	case *vregExpr:
		return x.v, x.t
	}
	g.errf(e.exprLine(), "unsupported expression %T", e)
	return g.loadImm(0), typeInt
}

func (g *fgen) genUnary(x *Unary) (int, *Type) {
	switch x.Op {
	case "-":
		v, t := g.genExpr(x.X)
		d := g.fn.newVreg()
		g.emit(MOp{Name: "sub", Dst: d, S1: regZero, S2: v})
		return d, t
	case "~":
		v, t := g.genExpr(x.X)
		ones := g.loadImm(-1)
		d := g.fn.newVreg()
		g.emit(MOp{Name: "xor", Dst: d, S1: v, S2: ones})
		return d, t
	case "!":
		v, _ := g.genExpr(x.X)
		d := g.fn.newVreg()
		g.emit(MOp{Name: "sltiu", Dst: d, S1: v, Imm: 1})
		return d, typeInt
	case "*":
		v, t := g.genExpr(x.X)
		if t.Kind != TPtr {
			g.errf(x.exprLine(), "dereference of non-pointer (%s)", t)
			return v, typeInt
		}
		return g.loadFrom(addrDesc{base: v}, t.Elem), t.Elem
	case "&":
		if id, ok := x.X.(*Ident); ok {
			if lv := g.lookup(id.Name); lv != nil {
				d := g.fn.newVreg()
				g.emit(MOp{Name: "addi", Dst: d, S1: regSP, Imm: lv.off, Ref: frameLocal})
				return d, ptrTo(lv.typ)
			}
			if gd, ok := g.c.globals[id.Name]; ok {
				return g.loadSym(id.Name, 0), ptrTo(gd.Type)
			}
			g.errf(x.exprLine(), "undefined variable %q", id.Name)
			return g.loadImm(0), ptrTo(typeInt)
		}
		a, t := g.genAddr(x.X)
		base, off, ref := g.materialize(a)
		if off == 0 && ref == frameNone {
			return base, ptrTo(t)
		}
		d := g.fn.newVreg()
		g.emit(MOp{Name: "addi", Dst: d, S1: base, Imm: off, Ref: ref})
		return d, ptrTo(t)
	}
	g.errf(x.exprLine(), "unsupported unary %q", x.Op)
	return g.loadImm(0), typeInt
}

var cmpOps = map[string]bool{"<": true, "<=": true, ">": true, ">=": true, "==": true, "!=": true}

func (g *fgen) genBinary(x *Binary) (int, *Type) {
	switch x.Op {
	case "&&", "||":
		lTrue, lFalse, lEnd := g.newLabel(), g.newLabel(), g.newLabel()
		d := g.fn.newVreg()
		g.genCond(x, lTrue, lFalse)
		g.startBlock(lTrue)
		g.emit(MOp{Name: "addi", Dst: d, S1: regZero, Imm: 1})
		g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lEnd})
		g.startBlock(lFalse)
		g.emit(MOp{Name: "addi", Dst: d, S1: regZero, Imm: 0})
		g.startBlock(lEnd)
		return d, typeInt
	}
	if cmpOps[x.Op] {
		return g.genCmpValue(x)
	}

	lv, lt := g.genExpr(x.L)
	// Constant-fold small immediates into the I-format where natural.
	if cv, ok := foldConst(x.R); ok {
		if d, t, ok2 := g.genBinImm(x.Op, lv, lt, cv); ok2 {
			return d, t
		}
	}
	rv, rt := g.genExpr(x.R)
	return g.genBinReg(x, lv, lt, rv, rt)
}

// genBinImm handles op with a constant right operand using I-format
// operations where possible. Returns ok=false to fall back.
func (g *fgen) genBinImm(op string, lv int, lt *Type, cv int64) (int, *Type, bool) {
	fitsS := cv >= -(1<<15) && cv < 1<<15
	fitsU := cv >= 0 && cv < 1<<16
	d := g.fn.newVreg()
	switch op {
	case "+":
		if lt.Kind == TPtr {
			scaled := cv * int64(lt.Elem.Size())
			if scaled >= -(1<<15) && scaled < 1<<15 {
				g.emit(MOp{Name: "addi", Dst: d, S1: lv, Imm: scaled})
				return d, lt, true
			}
			return 0, nil, false
		}
		if fitsS {
			g.emit(MOp{Name: "addi", Dst: d, S1: lv, Imm: cv})
			return d, lt, true
		}
	case "-":
		if lt.Kind == TPtr {
			scaled := -cv * int64(lt.Elem.Size())
			if scaled >= -(1<<15) && scaled < 1<<15 {
				g.emit(MOp{Name: "addi", Dst: d, S1: lv, Imm: scaled})
				return d, lt, true
			}
			return 0, nil, false
		}
		if cv > -(1<<15) && cv <= 1<<15 {
			g.emit(MOp{Name: "addi", Dst: d, S1: lv, Imm: -cv})
			return d, lt, true
		}
	case "&":
		if fitsU {
			g.emit(MOp{Name: "andi", Dst: d, S1: lv, Imm: cv})
			return d, lt, true
		}
	case "|":
		if fitsU {
			g.emit(MOp{Name: "ori", Dst: d, S1: lv, Imm: cv})
			return d, lt, true
		}
	case "^":
		if fitsU {
			g.emit(MOp{Name: "xori", Dst: d, S1: lv, Imm: cv})
			return d, lt, true
		}
	case "<<":
		g.emit(MOp{Name: "slli", Dst: d, S1: lv, Imm: cv & 31})
		return d, lt, true
	case ">>":
		if lt.Unsigned() {
			g.emit(MOp{Name: "srli", Dst: d, S1: lv, Imm: cv & 31})
		} else {
			g.emit(MOp{Name: "srai", Dst: d, S1: lv, Imm: cv & 31})
		}
		return d, lt, true
	}
	return 0, nil, false
}

func (g *fgen) genBinReg(x *Binary, lv int, lt *Type, rv int, rt *Type) (int, *Type) {
	// Pointer arithmetic scaling.
	resType := lt
	if lt.Kind == TPtr && rt.IsInteger() && (x.Op == "+" || x.Op == "-") {
		size := lt.Elem.Size()
		if size > 1 {
			s := g.fn.newVreg()
			g.emit(MOp{Name: "slli", Dst: s, S1: rv, Imm: 2})
			rv = s
		}
	} else if rt.Kind == TPtr && lt.IsInteger() && x.Op == "+" {
		size := rt.Elem.Size()
		if size > 1 {
			s := g.fn.newVreg()
			g.emit(MOp{Name: "slli", Dst: s, S1: lv, Imm: 2})
			lv = s
		}
		resType = rt
	} else if lt.Kind == TPtr && rt.Kind == TPtr {
		g.errf(x.exprLine(), "pointer-pointer arithmetic is not supported")
	} else if rt.Kind == TUint || lt.Kind == TUint {
		resType = typeUint
	} else {
		resType = typeInt
	}

	unsigned := lt.Unsigned() || rt.Unsigned()
	d := g.fn.newVreg()
	name := ""
	switch x.Op {
	case "+":
		name = "add"
	case "-":
		name = "sub"
	case "*":
		name = "mul"
	case "/":
		name = "div"
		if unsigned {
			name = "divu"
		}
	case "%":
		name = "rem"
		if unsigned {
			name = "remu"
		}
	case "&":
		name = "and"
	case "|":
		name = "or"
	case "^":
		name = "xor"
	case "<<":
		name = "sll"
	case ">>":
		name = "sra"
		if unsigned {
			name = "srl"
		}
	default:
		g.errf(x.exprLine(), "unsupported operator %q", x.Op)
		name = "add"
	}
	g.emit(MOp{Name: name, Dst: d, S1: lv, S2: rv})
	return d, resType
}

// genCmpValue materializes a comparison as 0/1.
func (g *fgen) genCmpValue(x *Binary) (int, *Type) {
	lv, lt := g.genExpr(x.L)
	rv, rt := g.genExpr(x.R)
	unsigned := lt.Unsigned() || rt.Unsigned()
	slt := "slt"
	if unsigned {
		slt = "sltu"
	}
	d := g.fn.newVreg()
	switch x.Op {
	case "<":
		g.emit(MOp{Name: slt, Dst: d, S1: lv, S2: rv})
	case ">":
		g.emit(MOp{Name: slt, Dst: d, S1: rv, S2: lv})
	case "<=":
		t := g.fn.newVreg()
		g.emit(MOp{Name: slt, Dst: t, S1: rv, S2: lv})
		g.emit(MOp{Name: "xori", Dst: d, S1: t, Imm: 1})
	case ">=":
		t := g.fn.newVreg()
		g.emit(MOp{Name: slt, Dst: t, S1: lv, S2: rv})
		g.emit(MOp{Name: "xori", Dst: d, S1: t, Imm: 1})
	case "==":
		t := g.fn.newVreg()
		g.emit(MOp{Name: "sub", Dst: t, S1: lv, S2: rv})
		g.emit(MOp{Name: "sltiu", Dst: d, S1: t, Imm: 1})
	case "!=":
		t := g.fn.newVreg()
		g.emit(MOp{Name: "sub", Dst: t, S1: lv, S2: rv})
		g.emit(MOp{Name: "sltu", Dst: d, S1: regZero, S2: t})
	}
	return d, typeInt
}

// genCond lowers a boolean expression into branches to lTrue/lFalse,
// terminating the current block.
func (g *fgen) genCond(e Expr, lTrue, lFalse string) {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "&&":
			mid := g.newLabel()
			g.genCond(x.L, mid, lFalse)
			g.startBlock(mid)
			g.genCond(x.R, lTrue, lFalse)
			return
		case "||":
			mid := g.newLabel()
			g.genCond(x.L, lTrue, mid)
			g.startBlock(mid)
			g.genCond(x.R, lTrue, lFalse)
			return
		}
		if cmpOps[x.Op] {
			lv, lt := g.genExpr(x.L)
			rv, rt := g.genExpr(x.R)
			unsigned := lt.Unsigned() || rt.Unsigned()
			var name string
			s1, s2 := lv, rv
			switch x.Op {
			case "==":
				name = "beq"
			case "!=":
				name = "bne"
			case "<":
				name = "blt"
			case ">=":
				name = "bge"
			case ">":
				name, s1, s2 = "blt", rv, lv
			case "<=":
				name, s1, s2 = "bge", rv, lv
			}
			if unsigned {
				switch name {
				case "blt":
					name = "bltu"
				case "bge":
					name = "bgeu"
				}
			}
			g.emit(MOp{Name: name, Dst: regNone, S1: s1, S2: s2, Sym: lTrue})
			g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lFalse})
			return
		}
	case *Unary:
		if x.Op == "!" {
			g.genCond(x.X, lFalse, lTrue)
			return
		}
	case *NumLit:
		if x.Val != 0 {
			g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lTrue})
		} else {
			g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lFalse})
		}
		return
	}
	v, _ := g.genExpr(e)
	g.emit(MOp{Name: "bne", Dst: regNone, S1: v, S2: regZero, Sym: lTrue})
	g.emit(MOp{Name: "j", Dst: regNone, S1: regNone, S2: regNone, Sym: lFalse})
}

// genAssign handles = and compound assignment.
func (g *fgen) genAssign(x *Assign) (int, *Type) {
	// Promoted-local fast path (with move coalescing).
	if id, ok := x.LHS.(*Ident); ok {
		if lv := g.lookup(id.Name); lv != nil && lv.promoted {
			if x.Op == "" {
				g.assignResult(lv.vreg, x.RHS)
			} else {
				mark := g.fn.nextVreg
				v, _ := g.genCompound(x, lv.vreg, lv.typ)
				ops := g.cur.ops
				if v >= mark && len(ops) > 0 && ops[len(ops)-1].Dst == v {
					g.cur.ops[len(ops)-1].Dst = lv.vreg
				} else {
					g.mov(lv.vreg, v)
				}
			}
			return lv.vreg, lv.typ
		}
	}
	a, t := g.genAddr(x.LHS)
	var v int
	if x.Op == "" {
		v, _ = g.genExpr(x.RHS)
	} else {
		old := g.loadFrom(a, t)
		v, _ = g.genCompound(x, old, t)
	}
	g.storeTo(a, t, v)
	return v, t
}

// genCompound computes `old <op> rhs`.
func (g *fgen) genCompound(x *Assign, old int, t *Type) (int, *Type) {
	bin := &Binary{exprBase{x.exprLine()}, x.Op, &vregExpr{exprBase{x.exprLine()}, old, t}, x.RHS}
	return g.genBinary(bin)
}

// vregExpr injects an already-computed register into expression
// generation (used for compound assignment).
type vregExpr struct {
	exprBase
	v int
	t *Type
}

func (g *fgen) genIncDec(x *IncDec) (int, *Type) {
	delta := int64(1)
	if id, ok := x.X.(*Ident); ok {
		if lv := g.lookup(id.Name); lv != nil && lv.promoted {
			if lv.typ.Kind == TPtr {
				delta = int64(lv.typ.Elem.Size())
			}
			if x.Dec {
				delta = -delta
			}
			var result int
			if x.Post {
				result = g.fn.newVreg()
				g.mov(result, lv.vreg)
			}
			g.emit(MOp{Name: "addi", Dst: lv.vreg, S1: lv.vreg, Imm: delta})
			if !x.Post {
				result = lv.vreg
			}
			return result, lv.typ
		}
	}
	a, t := g.genAddr(x.X)
	if t.Kind == TPtr {
		delta = int64(t.Elem.Size())
	}
	if x.Dec {
		delta = -delta
	}
	old := g.loadFrom(a, t)
	nw := g.fn.newVreg()
	g.emit(MOp{Name: "addi", Dst: nw, S1: old, Imm: delta})
	g.storeTo(a, t, nw)
	if x.Post {
		return old, t
	}
	return nw, t
}

// genCall evaluates arguments and emits the call pseudo-op. Cross-ISA
// calls are tagged with the callee ISA; the emitter inserts the
// SWITCHTARGET pair (Sec. V-D).
func (g *fgen) genCall(x *Call) (int, *Type) {
	sig, ok := g.c.funcs[x.Name]
	if !ok {
		g.errf(x.exprLine(), "call to undefined function %q", x.Name)
		return g.loadImm(0), typeInt
	}
	if len(x.Args) < len(sig.params) || (!sig.vararg && len(x.Args) > len(sig.params)) {
		g.errf(x.exprLine(), "%s expects %d arguments, got %d", x.Name, len(sig.params), len(x.Args))
	}
	var args []int
	for _, a := range x.Args {
		v, _ := g.genExpr(a)
		args = append(args, v)
	}
	if len(args) > 4 {
		need := (len(args) - 4) * 4
		if need > g.fn.maxOutArg {
			g.fn.maxOutArg = need
		}
	}
	m := MOp{Name: "call", Dst: regNone, S1: regNone, S2: regNone,
		Sym: sig.symbol, Args: args}
	if sig.isaName != g.sig.isaName {
		// Cross-ISA call: SymOff carries calleeISA+1 (0 = same ISA); the
		// emitter wraps the jal in a SWITCHTARGET pair (Sec. V-D).
		m.SymOff = int64(g.c.model.ISAByName(sig.isaName).ID) + 1
	}
	var d int
	if sig.ret.Kind != TVoid {
		d = g.fn.newVreg()
		m.Dst = d
	} else {
		d = regNone
	}
	g.emit(m)
	if sig.ret.Kind == TVoid {
		return regZero, typeVoid
	}
	return d, sig.ret
}
