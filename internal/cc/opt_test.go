package cc_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/ktest"
)

// countTextOps compiles for RISC and counts emitted operations.
func countTextOps(t *testing.T, src string) int {
	t.Helper()
	asmText, err := cc.Compile(ktest.Model(t), cc.Options{ISA: "RISC"}, "o.c", src)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	inText := true
	for _, line := range strings.Split(asmText, "\n") {
		s := strings.TrimSpace(line)
		if strings.HasPrefix(s, ".rodata") || strings.HasPrefix(s, ".data") || strings.HasPrefix(s, ".bss") {
			inText = false
		}
		if !inText || s == "" || strings.HasPrefix(s, ".") || strings.HasSuffix(s, ":") {
			continue
		}
		n++
	}
	return n
}

func TestOptimizerRemovesDeadCode(t *testing.T) {
	src := `
int main() {
    int dead1 = 12345;        // never used
    int dead2 = dead1 * 99;   // chain of dead values
    int live = 7;
    int dead3 = live + dead2; // still dead
    return live;
}`
	cc.SetOptimize(false)
	before := countTextOps(t, src)
	cc.SetOptimize(true)
	after := countTextOps(t, src)
	if after >= before {
		t.Fatalf("optimizer removed nothing: %d -> %d ops", before, after)
	}
	// Behaviour is unchanged.
	code, _ := run(t, "RISC", src)
	if code != 7 {
		t.Fatalf("exit = %d", code)
	}
}

func TestOptimizerCoalescesCopies(t *testing.T) {
	// Chained plain copies collapse; the value still flows correctly.
	src := `
int main() {
    int a = 41;
    int b = a;
    int c = b;
    int d = c;
    return d + 1;
}`
	code, _ := run(t, "RISC", src)
	if code != 42 {
		t.Fatalf("exit = %d", code)
	}
	cc.SetOptimize(false)
	defer cc.SetOptimize(true)
	codeOff, _ := run(t, "RISC", src)
	if codeOff != 42 {
		t.Fatalf("unoptimized exit = %d", codeOff)
	}
}

// The whole differential battery must agree with the optimizer off —
// guarding the passes against miscompilation in both directions.
func TestRandomProgramsUnoptimizedDifferential(t *testing.T) {
	cc.SetOptimize(false)
	defer cc.SetOptimize(true)
	for trial := 40; trial < 50; trial++ {
		g := newGen(int64(1000 + trial))
		src, want := g.program()
		code, _ := run(t, "VLIW4", src)
		if code != want {
			t.Fatalf("trial %d (unoptimized): exit %d, reference %d\n%s", trial, code, want, src)
		}
	}
}

func TestOptimizerKeepsSideEffects(t *testing.T) {
	// A store whose loaded-back value is unused must still happen; a
	// call whose result is ignored must still run.
	src := `
int g = 0;
int bump() { g++; return g; }
int main() {
    int arr[2];
    arr[0] = 11;          // observable through arr[0] below
    int unused = bump();  // call must still execute
    bump();
    return arr[0] + g;    // 11 + 2
}`
	runAll(t, src, 13, "")
}
