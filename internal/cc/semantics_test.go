package cc_test

import "testing"

// Additional semantic coverage: pointers to pointers, pointer walks,
// global pointers, nested calls, casts, and mixed signedness.

func TestPointerToPointer(t *testing.T) {
	runAll(t, `
int g = 5;
int main() {
    int x = 10;
    int* p = &x;
    int** pp = &p;
    **pp = 42;          // through two levels
    *pp = &g;           // repoint p at g
    **pp += 1;          // g = 6
    return x * 10 + g;  // 426
}`, 426, "")
}

func TestPointerWalkOverCharArray(t *testing.T) {
	runAll(t, `
char s[] = "abcdef";
int main() {
    char* p = s;
    int sum = 0;
    while (*p) {
        sum += *p;
        p++;
    }
    return sum - ('a'+'b'+'c'+'d'+'e'+'f'-'a'); // 'a' remains
}`, 'a', "")
}

func TestGlobalPointerVariable(t *testing.T) {
	runAll(t, `
int a[4] = {1, 2, 3, 4};
int* cursor;
int next() {
    int v = *cursor;
    cursor = cursor + 1;
    return v;
}
int main() {
    cursor = a;
    return next()*1000 + next()*100 + next()*10 + next();
}`, 1234, "")
}

func TestNestedCallsAsArguments(t *testing.T) {
	runAll(t, `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int main() {
    return add(mul(add(1, 2), 4), mul(2, add(3, 4))); // 12 + 14
}`, 26, "")
}

func TestCastsBetweenTypes(t *testing.T) {
	runAll(t, `
int main() {
    int big = 0x1234;
    char low = (char)big;          // 0x34
    uint u = (uint)(-1);
    int back = (int)(u >> 28);     // 0xF
    return (int)low + back;        // 52 + 15
}`, 67, "")
}

func TestMixedSignedComparisons(t *testing.T) {
	runAll(t, `
int main() {
    int neg = -1;
    uint big = 0x80000000;
    int r = 0;
    if (neg < 0) r += 1;             // signed compare
    if ((uint)neg > big) r += 10;    // unsigned: 0xFFFFFFFF > 0x80000000
    if (big > 100) r += 100;         // unsigned
    return r;
}`, 111, "")
}

func TestCharArithmeticWrap(t *testing.T) {
	runAll(t, `
int main() {
    char c = (char)250;
    c = (char)(c + 10);   // wraps to 4
    char buf[2];
    buf[0] = c;
    return buf[0];
}`, 4, "")
}

func TestShadowingInNestedScopes(t *testing.T) {
	runAll(t, `
int main() {
    int x = 1;
    {
        int x = 2;
        {
            int x = 3;
            if (x != 3) return 1;
        }
        if (x != 2) return 2;
        x = 20;
        if (x != 20) return 3;
    }
    return x; // outer x untouched
}`, 1, "")
}

func TestEarlyReturnsAndDeadCode(t *testing.T) {
	runAll(t, `
int pick(int v) {
    if (v > 10) {
        return 100;
        v = 999; // dead
    }
    return v;
}
int main() { return pick(50) + pick(7); }`, 107, "")
}

func TestRecursiveMutual(t *testing.T) {
	runAll(t, `
int odd(int n);
int even(int n) {
    if (n == 0) return 1;
    return odd(n - 1);
}
int odd(int n) {
    if (n == 0) return 0;
    return even(n - 1);
}
int main() { return even(10)*10 + odd(7); }`, 11, "")
}

func TestArrayOfPointersViaMalloc(t *testing.T) {
	runAll(t, `
int main() {
    int* rows[4];
    for (int i = 0; i < 4; i++) {
        rows[i] = (int*)malloc(16);
        for (int j = 0; j < 4; j++) rows[i][j] = i * 4 + j;
    }
    int sum = 0;
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            sum += rows[i][j];
    return sum; // 0+1+...+15 = 120
}`, 120, "")
}

func TestLargeImmediatesAndGlobals(t *testing.T) {
	runAll(t, `
int big = 0x7FFFFFFF;
int main() {
    int x = 1000000;
    int y = x * 2 + 345678;
    if (big != 0x7FFFFFFF) return 1;
    uint h = 0xDEADBEEF;
    if ((h >> 16) != 0xDEAD) return 2;
    if ((h & 0xFFFF) != 0xBEEF) return 3;
    return (y == 2345678);
}`, 1, "")
}

func TestWhileWithComplexCondition(t *testing.T) {
	runAll(t, `
int main() {
    int i = 0;
    int j = 20;
    int steps = 0;
    while (i < 10 && j > 12 || steps == 0) {
        i++;
        j--;
        steps++;
    }
    return steps; // && binds tighter: loop while (i<10 && j>12) or first pass
}`, func() int32 {
		i, j, steps := int32(0), int32(20), int32(0)
		for (i < 10 && j > 12) || steps == 0 {
			i++
			j--
			steps++
		}
		return steps
	}(), "")
}
