package cc

import (
	"repro/internal/isa"
)

// scheduleBlock packs the straight-line operations of one basic block
// into VLIW instructions (bundles) for the given issue width using
// greedy list scheduling with critical-path priority.
//
// Dependence model:
//   - true (RAW) and output (WAW) register dependencies separate
//     bundles;
//   - anti (WAR) dependencies may share a bundle (all registers of the
//     parallel operations are read before any result is written back —
//     the simulator's Sec. V-B semantics);
//   - memory operations use the pessimistic model of the paper (the
//     compiler has no alias analysis): every memory operation depends
//     on the last store, and a store depends on every earlier memory
//     operation;
//   - calls, returns and system operations are scheduling barriers;
//   - at most one control transfer per bundle; multiply/divide
//     operations are limited to one per slot pair (the EDPE pairs share
//     a multiplier). Memory operations pack freely: the single L1 port
//     is a dynamic resource resolved by the connection-limit module of
//     the memory approximation (Sec. VI-D), not a static packing rule
//     (only independent loads can ever share a bundle here, because the
//     pessimistic store ordering already separates everything else).
func scheduleBlock(model *isa.Model, ops []MOp, issue int) [][]MOp {
	n := len(ops)
	if n == 0 {
		return nil
	}
	if issue == 1 {
		out := make([][]MOp, n)
		for i := range ops {
			out[i] = ops[i : i+1]
		}
		return out
	}

	// l1Delay is the L1 hit latency the compiler schedules for ("All
	// applications were compiled with maximum performance optimization",
	// Sec. VII): consumers of a load are placed at least this many
	// instructions later so the dynamic issue logic rarely stalls.
	const l1Delay = 3

	type meta struct {
		reads, writes                    []int
		isMem, isStore, isCtl, isBarrier bool
		isMulDiv                         bool
		latency                          int
	}
	metas := make([]meta, n)
	for i := range ops {
		m := &ops[i]
		mt := meta{latency: 1}
		switch m.Name {
		case "__call", "jalr", "swt", "simcall", "halt":
			mt.isBarrier = true
			mt.isCtl = true
		case "j", "jal":
			mt.isCtl = true
		case "beq", "bne", "blt", "bge", "bltu", "bgeu":
			mt.isCtl = true
		}
		if !mt.isBarrier {
			info := classify(model, m.Name)
			mt.latency = info.latency
			switch info.class {
			case isa.ClassLoad:
				mt.isMem = true
				mt.latency = l1Delay
			case isa.ClassStore:
				mt.isMem, mt.isStore = true, true
			case isa.ClassMul, isa.ClassDiv:
				mt.isMulDiv = true
			}
		}
		if m.S1 >= 0 {
			mt.reads = append(mt.reads, m.S1)
		}
		if m.S2 >= 0 {
			mt.reads = append(mt.reads, m.S2)
		}
		if m.Dst > 0 { // writes to r0 carry no dependence
			mt.writes = append(mt.writes, m.Dst)
		}
		metas[i] = mt
	}

	// Dependence edges i -> j (i < j) with minimum bundle gap.
	type edge struct {
		to  int
		gap int
	}
	succs := make([][]edge, n)
	npred := make([]int, n)
	addEdge := func(i, j, gap int) {
		succs[i] = append(succs[i], edge{j, gap})
		npred[j]++
	}
	intersects := func(a, b []int) bool {
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return true
				}
			}
		}
		return false
	}
	for j := 1; j < n; j++ {
		for i := j - 1; i >= 0; i-- {
			gap := -1
			switch {
			case metas[i].isBarrier || metas[j].isBarrier:
				gap = 1
			case intersects(metas[i].writes, metas[j].reads): // RAW
				gap = metas[i].latency
			case intersects(metas[i].writes, metas[j].writes): // WAW
				gap = 1
			case metas[i].isMem && metas[j].isMem && (metas[i].isStore || metas[j].isStore):
				gap = 1 // pessimistic memory ordering
			case metas[i].isCtl && metas[j].isCtl:
				gap = 1 // control transfers execute in program order
			case intersects(metas[i].reads, metas[j].writes): // WAR
				gap = 0
			case metas[j].isCtl:
				gap = 0 // a control transfer never moves above earlier ops
			}
			if gap >= 0 {
				addEdge(i, j, gap)
			}
		}
	}

	// Critical-path heights.
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, e := range succs[i] {
			if v := height[e.to] + e.gap; v > h {
				h = v
			}
		}
		height[i] = h
	}

	earliest := make([]int, n)
	scheduled := make([]bool, n)
	bundleOf := make([]int, n)
	remaining := n
	var bundles [][]MOp
	cycle := 0
	mulLimit := (issue + 1) / 2

	for remaining > 0 {
		var cur []MOp
		var curIdx []int
		ctlUsed, mulUsed, memUsed := 0, 0, 0
		writesInBundle := map[int]bool{}
		sysInBundle := false
		for {
			best := -1
			for i := 0; i < n; i++ {
				if scheduled[i] || npred[i] > 0 || earliest[i] > cycle {
					continue
				}
				mt := &metas[i]
				if len(cur) >= issue {
					continue
				}
				if mt.isBarrier && len(cur) > 0 {
					continue
				}
				if sysInBundle {
					continue
				}
				if mt.isCtl && ctlUsed >= 1 {
					continue
				}
				if mt.isMem && memCapPerBundle > 0 && memUsed >= memCapPerBundle {
					continue
				}
				if mt.isMulDiv && mulUsed >= mulLimit {
					continue
				}
				conflict := false
				for _, w := range mt.writes {
					if writesInBundle[w] {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
				if best < 0 || height[i] > height[best] || (height[i] == height[best] && i < best) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			mt := &metas[best]
			scheduled[best] = true
			bundleOf[best] = cycle
			remaining--
			cur = append(cur, ops[best])
			curIdx = append(curIdx, best)
			if mt.isCtl {
				ctlUsed++
			}
			if mt.isMem {
				memUsed++
			}
			if mt.isMulDiv {
				mulUsed++
			}
			if mt.isBarrier {
				sysInBundle = true
			}
			for _, w := range mt.writes {
				writesInBundle[w] = true
			}
			for _, e := range succs[best] {
				npred[e.to]--
				if v := cycle + e.gap; v > earliest[e.to] {
					earliest[e.to] = v
				}
			}
			if mt.isBarrier {
				break
			}
		}
		if len(cur) > 0 {
			bundles = append(bundles, cur)
		}
		cycle++
		if cycle > 4*n+16 {
			// Cannot happen with a well-formed DAG; avoid livelock.
			panic("cc: scheduler failed to converge")
		}
	}
	return bundles
}
