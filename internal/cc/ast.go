package cc

import "fmt"

// TypeKind enumerates MiniC types.
type TypeKind int

const (
	TVoid TypeKind = iota
	TInt           // 32-bit signed
	TUint          // 32-bit unsigned
	TChar          // 8-bit unsigned
	TPtr
)

// Type is a MiniC type.
type Type struct {
	Kind TypeKind
	Elem *Type // pointee for TPtr
}

var (
	typeVoid = &Type{Kind: TVoid}
	typeInt  = &Type{Kind: TInt}
	typeUint = &Type{Kind: TUint}
	typeChar = &Type{Kind: TChar}
)

// Ptr returns the pointer type to t.
func ptrTo(t *Type) *Type { return &Type{Kind: TPtr, Elem: t} }

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TChar:
		return 1
	case TVoid:
		return 0
	default:
		return 4
	}
}

// IsInteger reports whether t is an arithmetic type.
func (t *Type) IsInteger() bool {
	return t.Kind == TInt || t.Kind == TUint || t.Kind == TChar
}

// Unsigned reports whether arithmetic on t is unsigned.
func (t *Type) Unsigned() bool {
	return t.Kind == TUint || t.Kind == TChar || t.Kind == TPtr
}

func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TUint:
		return "uint"
	case TChar:
		return "char"
	case TPtr:
		return t.Elem.String() + "*"
	}
	return fmt.Sprintf("type(%d)", int(t.Kind))
}

func sameType(a, b *Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == TPtr {
		return sameType(a.Elem, b.Elem)
	}
	return true
}

// ---------------------------------------------------------------------
// Expressions

// Expr is a MiniC expression node.
type Expr interface{ exprLine() int }

type exprBase struct{ line int }

func (e exprBase) exprLine() int { return e.line }

// NumLit is an integer or character constant.
type NumLit struct {
	exprBase
	Val int64
}

// StrLit is a string literal (value: address of an interned .rodata
// NUL-terminated byte array).
type StrLit struct {
	exprBase
	Val string
}

// Ident references a variable or function name.
type Ident struct {
	exprBase
	Name string
}

// Unary is -x, !x, ~x, *p, &lv.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is a binary operator (including && and ||, which
// short-circuit).
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is lhs = rhs, or a compound assignment when Op != "" (e.g.
// Op "+" for +=).
type Assign struct {
	exprBase
	Op       string
	LHS, RHS Expr
}

// IncDec is ++x, --x, x++, x--.
type IncDec struct {
	exprBase
	X    Expr
	Dec  bool
	Post bool
}

// Call invokes a named function.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// Index is a[i].
type Index struct {
	exprBase
	Arr, Idx Expr
}

// Cast is (type)x.
type Cast struct {
	exprBase
	To *Type
	X  Expr
}

// Cond is c ? a : b.
type Cond struct {
	exprBase
	C, A, B Expr
}

// ---------------------------------------------------------------------
// Statements

// Stmt is a MiniC statement node.
type Stmt interface{ stmtLine() int }

type stmtBase struct{ line int }

func (s stmtBase) stmtLine() int { return s.line }

// Block is { ... }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	stmtBase
	E Expr
}

// If is if/else.
type If struct {
	stmtBase
	Cond       Expr
	Then, Else Stmt
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// For is for(init; cond; post) body. Init/Post/Cond may be nil.
type For struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// Return returns from the function (E may be nil).
type Return struct {
	stmtBase
	E Expr
}

// Break exits the innermost loop.
type Break struct{ stmtBase }

// Continue re-tests the innermost loop.
type Continue struct{ stmtBase }

// DeclStmt declares local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// ---------------------------------------------------------------------
// Declarations

// VarDecl declares a variable (global or local). ArrayLen < 0 means a
// scalar; otherwise the variable is an array of ArrayLen elements.
type VarDecl struct {
	Name     string
	Type     *Type // element type for arrays
	ArrayLen int
	Init     Expr   // scalar initializer
	InitList []Expr // array initializer
	InitStr  string // char-array string initializer
	Const    bool
	Line     int
}

// Param is one function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl is a function definition (Body == nil for a prototype).
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []Param
	Body   *Block
	ISA    string // __isa(NAME) attribute; "" = the compilation target
	Vararg bool
	Line   int
}

// Unit is one translation unit.
type Unit struct {
	File    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
}
