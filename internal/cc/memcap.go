package cc

// memCapPerBundle bounds memory operations per bundle in the list
// scheduler; 0 means unlimited. Exposed as a variable for the ablation
// benchmarks (bench_test.go) and tuned to spread accesses across the
// single L1 port.
var memCapPerBundle = 2

// SetMemCap sets the scheduler's memory-ops-per-bundle cap (testing and
// ablation use).
func SetMemCap(n int) { memCapPerBundle = n }
