package cc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Register numbering: 0..31 are the physical K-ISA registers; virtual
// registers start at vregBase. regNone marks an absent operand.
const (
	regNone  = -1
	regZero  = 0
	regRA    = 1
	regSP    = 2
	regFP    = 3
	regA0    = 4
	vregBase = 64
)

// frameRef tags immediates that are frame-relative and fixed up once
// the final frame layout is known (after register allocation).
type frameRef int

const (
	frameNone     frameRef = iota
	frameLocal             // imm is an offset into the locals area
	frameSpill             // imm is a spill slot index (bytes assigned later)
	frameIncoming          // imm is a byte offset into the caller's outgoing args
)

// MOp is one machine operation on virtual or physical registers, plus
// the pseudo operations "call" and "ret" that are expanded after
// register allocation.
type MOp struct {
	Name        string // K-ISA mnemonic (lowercase) or "call"/"ret"
	Dst, S1, S2 int
	Imm         int64
	Sym         string // la %hi/%lo target, call target, branch label
	SymOff      int64  // constant offset folded into Sym
	Args        []int  // call: argument registers in order
	Ref         frameRef
	Line        int
}

func (m *MOp) String() string {
	var sb strings.Builder
	sb.WriteString(m.Name)
	r := func(x int) string {
		if x >= vregBase {
			return fmt.Sprintf("v%d", x-vregBase)
		}
		return fmt.Sprintf("r%d", x)
	}
	if m.Dst != regNone {
		fmt.Fprintf(&sb, " d=%s", r(m.Dst))
	}
	if m.S1 != regNone {
		fmt.Fprintf(&sb, " s1=%s", r(m.S1))
	}
	if m.S2 != regNone {
		fmt.Fprintf(&sb, " s2=%s", r(m.S2))
	}
	if m.Sym != "" {
		fmt.Fprintf(&sb, " sym=%s%+d", m.Sym, m.SymOff)
	}
	fmt.Fprintf(&sb, " imm=%d", m.Imm)
	return sb.String()
}

// opInfo classifies an operation for the allocator and scheduler.
type opInfo struct {
	class   isa.OpClass
	latency int
}

// classify resolves an MOp against the architecture model. Pseudo ops
// map to the classes of their expansions.
func classify(model *isa.Model, name string) opInfo {
	switch name {
	case "call", "ret":
		return opInfo{class: isa.ClassJump, latency: 1}
	}
	op := model.Op(strings.ToUpper(name))
	if op == nil {
		panic("cc: unknown machine op " + name)
	}
	return opInfo{class: op.Class, latency: op.Latency}
}

// mblock is one basic block: a label, straight-line ops, and an
// implicit fallthrough to the next block unless the last op is an
// unconditional control transfer.
type mblock struct {
	label string
	ops   []MOp
}

// mfunc is a function in machine form.
type mfunc struct {
	name      string // emitted symbol name (possibly ISA-prefixed)
	srcName   string
	isa       *isa.ISA
	blocks    []*mblock
	nextVreg  int
	localsTop int64 // bytes of stack locals (arrays, addressed vars)
	maxOutArg int   // max stack-arg bytes needed by calls in this body
	line      int
}

func (f *mfunc) newVreg() int {
	v := f.nextVreg
	f.nextVreg++
	return v
}

func (f *mfunc) newBlock(label string) *mblock {
	b := &mblock{label: label}
	f.blocks = append(f.blocks, b)
	return b
}
