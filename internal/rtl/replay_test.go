package rtl_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ktest"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// A trace replayed into the pipeline must reproduce the cycle count of
// the pipeline attached to the live simulation — the trace carries
// everything the hardware model needs (the paper's stimuli use case).
func TestReplayTraceMatchesLivePipeline(t *testing.T) {
	m := ktest.Model(t)
	for _, isaName := range []string{"RISC", "VLIW4"} {
		src := `
	.global main
main:
	addi sp, sp, -32
	li t0, 0
	li t1, 25
	li a0, 0
loop:
	slli t2, t0, 2
	add t3, sp, t2
	sw t0, 0(t3)
	lw t4, 0(t3)
	add a0, a0, t4
	addi t0, t0, 1
	bne t0, t1, loop
	addi sp, sp, 32
	andi a0, a0, 0xff
	ret
`
		prog := ktest.BuildProgram(t, isaName, src)

		// Live run: pipeline attached, trace captured.
		var buf bytes.Buffer
		opts := sim.DefaultOptions()
		opts.MaxInstructions = 100000
		cpu := ktest.NewCPU(t, prog, opts)
		live := rtl.New(m, flatCfg())
		cpu.Attach(live)
		cpu.SetTrace(trace.NewWriter(&buf))
		if _, err := cpu.Run(); err != nil {
			t.Fatal(err)
		}
		live.Drain()

		events, err := trace.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := rtl.ReplayTrace(m, m.ISAByName(isaName), events, flatCfg())
		if err != nil {
			t.Fatal(err)
		}
		if replayed.Cycles() != live.Cycles() {
			t.Errorf("%s: replay %d cycles, live %d", isaName, replayed.Cycles(), live.Cycles())
		}
		if replayed.Ops() != live.Ops() {
			t.Errorf("%s: replay %d ops, live %d", isaName, replayed.Ops(), live.Ops())
		}
	}
}

func TestReplayTraceRejectsUnknownOp(t *testing.T) {
	m := ktest.Model(t)
	evs := []trace.Event{{Op: "WARP", Addr: 0x1000}}
	if _, err := rtl.ReplayTrace(m, m.ISAByName("RISC"), evs, flatCfg()); err == nil ||
		!strings.Contains(err.Error(), "unknown operation") {
		t.Fatalf("err = %v", err)
	}
}
