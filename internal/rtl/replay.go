package rtl

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ReplayTrace drives a pipeline from a trace file instead of a live
// simulation — the paper's stimuli use case: "The trace file can also
// serve as stimuli values for simulations of partial implementations of
// the ISA and is therefore very useful for early evaluation of hardware
// components" (Sec. IV).
//
// The trace carries, per executed operation, the opcode, the input and
// output register numbers and values, and the immediate (Sec. V).
// Memory addresses are reconstructed from the recorded input register
// values (base + immediate), and instruction boundaries from the slot
// numbers (a new instruction starts whenever the slot does not
// increase). The trace must come from a single-ISA run of the given
// ISA.
func ReplayTrace(m *isa.Model, a *isa.ISA, events []trace.Event, cfg Config) (*Pipeline, error) {
	p := New(m, cfg)
	feed := newTraceFeeder(m, a, p)
	for i := range events {
		if err := feed.event(&events[i]); err != nil {
			return nil, fmt.Errorf("rtl: replay event %d: %w", i, err)
		}
	}
	if err := feed.flush(); err != nil {
		return nil, err
	}
	p.Drain()
	return p, nil
}

type traceFeeder struct {
	m    *isa.Model
	isa  *isa.ISA
	pipe *Pipeline

	ops      []sim.DecodedOp
	mem      [sim.MaxIssue]sim.MemAccess
	lastSlot int
	have     bool
	addr     uint32
}

func newTraceFeeder(m *isa.Model, a *isa.ISA, p *Pipeline) *traceFeeder {
	return &traceFeeder{m: m, isa: a, pipe: p, lastSlot: -1}
}

func (f *traceFeeder) event(e *trace.Event) error {
	op := f.m.Op(e.Op)
	if op == nil {
		return fmt.Errorf("unknown operation %q", e.Op)
	}
	if int(e.Slot) <= f.lastSlot || !f.have {
		if err := f.flush(); err != nil {
			return err
		}
		f.have = true
		f.addr = e.Addr - uint32(e.Slot)*isa.OpWordBytes
	}
	f.lastSlot = int(e.Slot)

	d := sim.DecodedOp{Op: op, Slot: e.Slot, Imm: e.Imm, Addr: e.Addr}
	// Register numbers from the recorded values, by role order: src1
	// first, then src2 (captureInputs order); the output is the
	// destination.
	ins := e.In
	if op.Src1Field != nil && len(ins) > 0 {
		d.Rs1 = ins[0].Reg
		ins = ins[1:]
	}
	if op.Src2Field != nil && len(ins) > 0 {
		d.Rs2 = ins[0].Reg
	}
	if op.HasDst() && len(e.Out) > 0 {
		d.Rd = e.Out[0].Reg
	}
	idx := len(f.ops)
	if idx >= sim.MaxIssue {
		return fmt.Errorf("more than %d operations in one instruction", sim.MaxIssue)
	}
	// Memory address reconstruction: base register value + immediate.
	if op.Class.IsMem() && len(e.In) > 0 {
		base := e.In[0].Val // src1 is the base register for loads/stores
		f.mem[idx] = sim.MemAccess{
			Valid: true,
			Write: op.Class == isa.ClassStore,
			Addr:  base + uint32(e.Imm),
		}
	}
	f.ops = append(f.ops, d)
	return nil
}

// flush hands the accumulated instruction to the pipeline.
func (f *traceFeeder) flush() error {
	if !f.have {
		return nil
	}
	d := &sim.Decoded{
		Addr: f.addr,
		ISA:  f.isa,
		Size: f.isa.InstrBytes(),
		Ops:  append([]sim.DecodedOp(nil), f.ops...),
	}
	rec := &sim.ExecRecord{D: d}
	copy(rec.Mem[:], f.mem[:len(f.ops)])
	f.pipe.Instruction(rec)
	f.ops = f.ops[:0]
	f.mem = [sim.MaxIssue]sim.MemAccess{}
	f.lastSlot = -1
	f.have = false
	return nil
}
