// Package rtl is the cycle-accurate reference model of the KAHRISMA
// Dynamic Operation Execution microarchitecture — the role the authors'
// VHDL RTL simulation plays in Table II of the paper. It simulates the
// pipeline cycle by cycle and models precisely the three effects the
// heuristic DOE cycle model leaves out (Sec. VI-C):
//
//  1. resource constraints — one multiplier (and one divider) is shared
//     between each pair of neighbouring slots/EDPEs;
//  2. bounded slot drift — hardware limits how far issue slots may
//     drift apart to enable precise interrupts;
//  3. memory ordering — memory operations reach the (single-ported)
//     memory hierarchy when they issue, not in program order.
//
// Like the paper's Table II setup, it relies on perfect branch
// prediction (the functional interpreter resolves all control flow and
// the pipeline consumes the resulting dynamic instruction stream, so no
// misprediction ever occurs on either side of the comparison).
package rtl

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Config parameterizes the pipeline.
type Config struct {
	// QueueDepth is the per-slot issue queue capacity in instructions;
	// it also bounds run-ahead of the fetch unit.
	QueueDepth int
	// MaxDriftInstrs bounds the drift between issue slots: an operation
	// of instruction i may issue only once every operation of
	// instruction i-MaxDriftInstrs has issued.
	MaxDriftInstrs int
	// SharedMulPair models one multiplier/divider shared between slot
	// pairs (2k, 2k+1).
	SharedMulPair bool
	// Hierarchy is the memory system (single L1 port modelled by its
	// connection limit module).
	Hierarchy *mem.Hierarchy
}

// DefaultConfig mirrors the hardware parameters used for Table II.
func DefaultConfig() Config {
	return Config{
		QueueDepth:     8,
		MaxDriftInstrs: 8,
		SharedMulPair:  true,
		Hierarchy:      mem.Paper(),
	}
}

// microOp is one operation in flight.
type microOp struct {
	instr   uint64 // dynamic instruction index
	op      *sim.DecodedOp
	mem     sim.MemAccess
	fetched uint64 // cycle the instruction entered the queue
}

// Pipeline is the cycle-accurate DOE pipeline. It implements
// sim.Observer: attach it to a CPU and it consumes the dynamic
// instruction stream, advancing its clock as the queues fill. Call
// Drain after the run to retire the remaining operations.
type Pipeline struct {
	cfg  Config
	zero int

	now       uint64
	issue     int // current issue width (slots)
	slotQ     [][]microOp
	fetched   uint64 // instructions fetched so far
	lastFetch uint64 // cycle of the last fetch
	regReady  [33]uint64
	lastIssue []uint64 // per slot
	mulBusy   []uint64 // per slot pair: next cycle the shared unit is free
	maxDone   uint64
	instrs    uint64
	ops       uint64

	// issuedThrough tracks the highest instruction index i such that
	// every operation of all instructions <= i has issued (drift bound).
	remaining map[uint64]int
	issuedLow uint64
}

// New builds a pipeline.
func New(m *isa.Model, cfg Config) *Pipeline {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.MaxDriftInstrs <= 0 {
		cfg.MaxDriftInstrs = 8
	}
	if cfg.Hierarchy == nil {
		cfg.Hierarchy = mem.Paper()
	}
	return &Pipeline{
		cfg:       cfg,
		zero:      m.Regs.ZeroReg,
		remaining: make(map[uint64]int),
	}
}

// Name identifies the model in reports.
func (p *Pipeline) Name() string { return "RTL" }

// Cycles returns the hardware cycle count (call Drain first).
func (p *Pipeline) Cycles() uint64 { return p.maxDone }

// Ops returns the number of operations retired.
func (p *Pipeline) Ops() uint64 { return p.ops }

// Instructions returns the number of instructions consumed.
func (p *Pipeline) Instructions() uint64 { return p.instrs }

// Reset clears all pipeline state.
func (p *Pipeline) Reset() {
	h := p.cfg.Hierarchy
	h.Reset()
	cfg := p.cfg
	zero := p.zero
	*p = Pipeline{cfg: cfg, zero: zero, remaining: make(map[uint64]int)}
}

// reconfigure adapts the slot structures to a new issue width (run-time
// ISA switching changes the processor instance shape).
func (p *Pipeline) reconfigure(issue int) {
	p.drainAll()
	p.issue = issue
	p.slotQ = make([][]microOp, issue)
	p.lastIssue = make([]uint64, issue)
	p.mulBusy = make([]uint64, (issue+1)/2)
}

// Instruction implements sim.Observer: fetch the instruction into the
// slot queues, then advance the clock until the queues have room again
// (so memory stays bounded on arbitrarily long runs).
func (p *Pipeline) Instruction(rec *sim.ExecRecord) {
	if p.issue != rec.D.ISA.Issue {
		p.reconfigure(rec.D.ISA.Issue)
	}
	idx := p.instrs
	p.instrs++

	// Fetch: one instruction per cycle enters the queues.
	fetchCycle := p.now
	if p.fetched > 0 && fetchCycle <= p.lastFetch {
		fetchCycle = p.lastFetch + 1
	}
	p.lastFetch = fetchCycle
	p.fetched++

	nops := len(rec.D.Ops)
	if nops > 0 {
		p.remaining[idx] = nops
	} else {
		// An all-NOP instruction issues trivially.
		if idx == p.issuedLow {
			p.bumpIssuedLow()
		}
	}
	for i := range rec.D.Ops {
		op := &rec.D.Ops[i]
		p.slotQ[op.Slot] = append(p.slotQ[op.Slot], microOp{
			instr: idx, op: op, mem: rec.Mem[i], fetched: fetchCycle,
		})
	}

	// Advance the clock until every queue is within capacity (stepCycle
	// advances time even when nothing issues, so waits on fetch cycles,
	// register readiness and the drift window always resolve).
	for p.queuesFull() {
		p.stepCycle()
	}
}

func (p *Pipeline) queuesFull() bool {
	for _, q := range p.slotQ {
		if len(q) > p.cfg.QueueDepth {
			return true
		}
	}
	return false
}

// Drain retires everything still in flight; call it when the run ends.
func (p *Pipeline) Drain() { p.drainAll() }

func (p *Pipeline) drainAll() {
	for p.pending() {
		p.stepCycle()
	}
}

func (p *Pipeline) pending() bool {
	for _, q := range p.slotQ {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// bumpIssuedLow advances the fully-issued watermark.
func (p *Pipeline) bumpIssuedLow() {
	for {
		if _, ok := p.remaining[p.issuedLow]; ok {
			return
		}
		if p.issuedLow >= p.instrs {
			return
		}
		p.issuedLow++
	}
}

// stepCycle performs one hardware cycle: every slot may issue its head
// operation if its dependencies, drift window, fetch time and shared
// resources allow. Returns whether any operation issued.
func (p *Pipeline) stepCycle() bool {
	issued := false
	for s := 0; s < p.issue; s++ {
		q := p.slotQ[s]
		if len(q) == 0 {
			continue
		}
		mo := &q[0]
		if !p.canIssue(mo, s) {
			continue
		}
		p.issueOp(mo, s)
		p.slotQ[s] = q[1:]
		issued = true
	}
	p.now++
	return issued
}

func (p *Pipeline) canIssue(mo *microOp, slot int) bool {
	// Not before it was fetched.
	if p.now < mo.fetched {
		return false
	}
	// In-order within the slot, one op per cycle.
	if p.lastIssue[slot] == p.now && p.now != 0 {
		return false
	}
	// Bounded drift: instruction i may issue only when every operation
	// of instruction i-D has issued.
	if mo.instr > p.issuedLow && mo.instr-p.issuedLow > uint64(p.cfg.MaxDriftInstrs) {
		return false
	}
	// True data dependencies.
	ready := true
	srcRegsRTL(mo.op, p.zero, func(r int) {
		if p.regReady[r] > p.now {
			ready = false
		}
	})
	if !ready {
		return false
	}
	// Structural hazard: shared multiplier/divider per slot pair.
	if p.cfg.SharedMulPair {
		cls := mo.op.Op.Class
		if cls == isa.ClassMul || cls == isa.ClassDiv {
			if p.mulBusy[slot/2] > p.now {
				return false
			}
		}
	}
	return true
}

func (p *Pipeline) issueOp(mo *microOp, slot int) {
	p.ops++
	p.lastIssue[slot] = p.now
	var done uint64
	if mo.mem.Valid {
		// Memory operations reach the hierarchy at issue time — i.e. in
		// dynamic issue order, the behaviour the heuristic model only
		// approximates.
		done = p.cfg.Hierarchy.Access(mo.mem.Addr, mo.mem.Write, slot, p.now)
	} else {
		done = p.now + uint64(mo.op.Op.Latency)
	}
	cls := mo.op.Op.Class
	if p.cfg.SharedMulPair && (cls == isa.ClassMul || cls == isa.ClassDiv) {
		// The shared unit accepts one operation per cycle (pipelined
		// multiplier; iterative divider blocks for its latency).
		if cls == isa.ClassDiv {
			p.mulBusy[slot/2] = done
		} else {
			p.mulBusy[slot/2] = p.now + 1
		}
	}
	dstRegsRTL(mo.op, p.zero, func(r int) { p.regReady[r] = done })
	if done > p.maxDone {
		p.maxDone = done
	}
	// Retire bookkeeping for the drift window.
	if rem, ok := p.remaining[mo.instr]; ok {
		if rem <= 1 {
			delete(p.remaining, mo.instr)
			if mo.instr == p.issuedLow {
				p.bumpIssuedLow()
			}
		} else {
			p.remaining[mo.instr] = rem - 1
		}
	}
}

func srcRegsRTL(op *sim.DecodedOp, zero int, f func(r int)) {
	if op.Op.Src1Field != nil && int(op.Rs1) != zero {
		f(int(op.Rs1))
	}
	if op.Op.Src2Field != nil && int(op.Rs2) != zero {
		f(int(op.Rs2))
	}
	for _, r := range op.Op.ImplicitReads {
		if r != zero && r != isa.RegIP {
			f(r)
		}
	}
}

func dstRegsRTL(op *sim.DecodedOp, zero int, f func(r int)) {
	if op.Op.DstField != nil && int(op.Rd) != zero {
		f(int(op.Rd))
	}
	for _, r := range op.Op.ImplicitWrites {
		if r != zero && r != isa.RegIP {
			f(r)
		}
	}
}

// Describe summarizes the configuration for reports.
func (p *Pipeline) Describe() string {
	return fmt.Sprintf("rtl(queue=%d,drift=%d,sharedMul=%v,%s)",
		p.cfg.QueueDepth, p.cfg.MaxDriftInstrs, p.cfg.SharedMulPair, p.cfg.Hierarchy.Name())
}
